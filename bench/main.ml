(* Benchmark harness regenerating the paper's evaluation (PLDI 2005, §7):

     Table 1  time to detection of error (methods checked before the first
              refinement violation), I/O vs view refinement
     Table 2  overhead of logging (program alone / I/O-level / view-level)
     Table 3  running-time breakdown (program alone / + logging /
              + logging and online VYRD / VYRD alone offline)

   plus ablations and baselines:

     ablation-incremental  full vs keyed (incremental) view computation (§6.4)
     ablation-naive        naive serialization enumeration vs commit-order
                           witness (§2's "4! ways")
     baseline-atomizer     Lipton-reduction atomicity vs refinement (§8)

   Absolute numbers are not comparable to the paper's 2005 hardware; the
   shapes (who wins, by roughly what factor) are what EXPERIMENTS.md tracks.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- table1    # one experiment
*)

open Vyrd
open Vyrd_harness
module Prng = Vyrd_sched.Prng

(* ---------------------------------------------------------------- timing *)

(* One Bechamel measurement: estimated wall-clock nanoseconds per run. *)
let measure_ns ?(quota = 0.6) name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |])
      Toolkit.Instance.monotonic_clock raw
  in
  match Hashtbl.fold (fun _ v acc -> v :: acc) ols [] with
  | [ est ] -> (
    match Analyze.OLS.estimates est with
    | Some [ ns ] -> ns
    | Some _ | None -> nan)
  | _ -> nan

let pp_ms ppf ns =
  if Float.is_nan ns then Fmt.string ppf "-" else Fmt.pf ppf "%.2f" (ns /. 1e6)

let line width = String.make width '-'

(* ------------------------------------------------------------- Table 1 *)

let run_buggy (s : Subjects.t) ~threads ~ops ~seed =
  Harness.run
    { Harness.default with threads; ops_per_thread = ops; key_pool = 12; key_range = 16; seed }
    (s.build ~bug:true)

(* Sweep seeds; collect methods-to-detection for each refinement mode on
   seeds where the respective mode detects the bug, plus total checking CPU
   time for the view/io cost ratio. *)
let table1_row (s : Subjects.t) ~threads ~ops ~max_seeds ~want =
  let io_hits = ref 0
  and io_methods = ref 0
  and view_hits = ref 0
  and view_methods = ref 0
  and io_cpu = ref 0.
  and view_cpu = ref 0.
  and runs = ref 0 in
  let seed = ref 0 in
  while !view_hits < want && !seed < max_seeds do
    let log = run_buggy s ~threads ~ops ~seed:!seed in
    incr runs;
    let t0 = Sys.time () in
    let io = Checker.check ~mode:`Io log s.spec in
    let t1 = Sys.time () in
    let view = Checker.check ~mode:`View ~view:s.view log s.spec in
    let t2 = Sys.time () in
    io_cpu := !io_cpu +. (t1 -. t0);
    view_cpu := !view_cpu +. (t2 -. t1);
    (if not (Report.is_pass io) then begin
       incr io_hits;
       io_methods := !io_methods + io.Report.stats.methods_checked
     end);
    if not (Report.is_pass view) then begin
      incr view_hits;
      view_methods := !view_methods + view.Report.stats.methods_checked
    end;
    incr seed
  done;
  let avg hits total = if hits = 0 then nan else float_of_int total /. float_of_int hits in
  ( avg !io_hits !io_methods,
    !io_hits,
    avg !view_hits !view_methods,
    !view_hits,
    (if !io_cpu > 0. then !view_cpu /. !io_cpu else nan),
    !runs )

let pp_avg ppf v = if Float.is_nan v then Fmt.string ppf "-" else Fmt.pf ppf "%.0f" v

let table1 () =
  Fmt.pr "@.Table 1: time to detection of error@.";
  Fmt.pr "(average number of methods checked before the first violation;@.";
  Fmt.pr " detections / buggy runs in parentheses; CPU ratio = view/io checking time)@.@.";
  Fmt.pr "%-22s %-46s %5s  %18s %18s %9s@." "Program" "Error" "#Thrd" "#Mthds to-detect"
    "#Mthds to-detect" "CPU";
  Fmt.pr "%-22s %-46s %5s  %18s %18s %9s@." "" "" "" "I/O refinement" "view refinement"
    "ratio";
  Fmt.pr "%s@." (line 124);
  let subjects =
    [ Subjects.multiset_vector; Subjects.multiset_btree; Subjects.jvector;
      Subjects.string_buffer; Subjects.blink_tree; Subjects.cache; Subjects.scanfs ]
  in
  List.iter
    (fun (s : Subjects.t) ->
      List.iteri
        (fun i threads ->
          let io_avg, io_hits, view_avg, view_hits, ratio, runs =
            table1_row s ~threads ~ops:30 ~max_seeds:250 ~want:12
          in
          let cell avg hits =
            Fmt.str "%a (%d/%d)" pp_avg avg hits runs
          in
          Fmt.pr "%-22s %-46s %5d  %18s %18s %9s@."
            (if i = 0 then s.name else "")
            (if i = 0 then s.bug_description else "")
            threads (cell io_avg io_hits) (cell view_avg view_hits)
            (if Float.is_nan ratio then "-" else Printf.sprintf "%.2f" ratio))
        [ 4; 8; 16; 32 ];
      Fmt.pr "%s@." (line 124))
    subjects;
  Fmt.pr
    "@.Shape check vs the paper: view refinement detects state-corrupting bugs@.\
     (FindSlot, BinaryTree, BLinkTree, Cache, ScanFS, StringBuffer) in far fewer@.\
     methods than I/O refinement; the Vector bug lives in an observer, so view@.\
     refinement is no better there (§7.5).@."

(* ------------------------------------------------------------- Table 2 *)

let table2 () =
  Fmt.pr "@.Table 2: overhead of logging (ms per workload; %d threads x %d calls)@.@."
    8 80;
  let cfg level seed =
    { Harness.threads = 8; ops_per_thread = 80; key_pool = 12; key_range = 32;
      seed; log_level = level }
  in
  Fmt.pr "%-22s %12s %12s %12s %10s %10s@." "Implementation" "Prog. alone"
    "I/O logging" "View logging" "io ovh" "view ovh";
  Fmt.pr "%s@." (line 84);
  List.iter
    (fun (s : Subjects.t) ->
      let time level =
        measure_ns
          (s.name ^ "/table2")
          (fun () -> ignore (Harness.run (cfg level 1) (s.build ~bug:false)))
      in
      let plain = time `None in
      let io = time `Io in
      let view = time `View in
      Fmt.pr "%-22s %12s %12s %12s %9.2fx %9.2fx@." s.name (Fmt.str "%a" pp_ms plain)
        (Fmt.str "%a" pp_ms io) (Fmt.str "%a" pp_ms view) (io /. plain) (view /. plain))
    Subjects.all;
  Fmt.pr
    "@.Shape check vs the paper: view-level logging costs visibly more than@.\
     I/O-level logging for subjects whose mutators perform many shared writes@.\
     (multisets, Cache, ScanFS) and little more for the others (Table 2).@."

(* ------------------------------------------------------------- Table 3 *)

let table3 () =
  Fmt.pr "@.Table 3: running time breakdown (ms per workload; %d threads x %d calls)@.@."
    8 80;
  let cfg level seed =
    { Harness.threads = 8; ops_per_thread = 80; key_pool = 12; key_range = 32;
      seed; log_level = level }
  in
  Fmt.pr "%-22s %12s %12s %16s %14s@." "Program" "Prog. alone" "Prog.+logging"
    "Prog.+log+VYRD" "VYRD offline";
  Fmt.pr "%s@." (line 84);
  let subjects =
    [ Subjects.jvector; Subjects.string_buffer; Subjects.blink_tree; Subjects.cache;
      Subjects.scanfs ]
  in
  List.iter
    (fun (s : Subjects.t) ->
      let alone =
        measure_ns (s.name ^ "/alone") (fun () ->
            ignore (Harness.run (cfg `None 1) (s.build ~bug:false)))
      in
      let logged =
        measure_ns (s.name ^ "/logged") (fun () ->
            ignore (Harness.run (cfg `View 1) (s.build ~bug:false)))
      in
      let online =
        measure_ns ~quota:0.8 (s.name ^ "/online") (fun () ->
            let log = Log.create ~level:`View () in
            let o = Online.start ~mode:`View ~view:s.view log s.spec in
            Vyrd_sched.Coop.run ~seed:1 ~max_steps:200_000_000 (fun sched ->
                let ctx = Instrument.make sched log in
                let b = (s.build ~bug:false) ctx in
                let stop = ref false in
                (match b.Harness.daemon with
                | Some step ->
                  sched.Vyrd_sched.Sched.spawn (fun () ->
                      while not !stop do
                        step ();
                        sched.Vyrd_sched.Sched.yield ()
                      done)
                | None -> ());
                let remaining = ref 8 in
                for t = 1 to 8 do
                  sched.Vyrd_sched.Sched.spawn (fun () ->
                      let rng = Prng.create ((1 * 7919) + t) in
                      for _ = 1 to 80 do
                        b.Harness.random_op rng (Prng.int rng 32)
                      done;
                      decr remaining;
                      if !remaining = 0 then stop := true)
                done);
            ignore (Online.finish o))
      in
      let recorded = Harness.run (cfg `View 1) (s.build ~bug:false) in
      let offline =
        measure_ns (s.name ^ "/offline") (fun () ->
            ignore (Checker.check ~mode:`View ~view:s.view recorded s.spec))
      in
      Fmt.pr "%-22s %12s %12s %16s %14s@." s.name (Fmt.str "%a" pp_ms alone)
        (Fmt.str "%a" pp_ms logged) (Fmt.str "%a" pp_ms online)
        (Fmt.str "%a" pp_ms offline))
    subjects;
  Fmt.pr
    "@.Shape check vs the paper: logging alone keeps the instrumented run close@.\
     to the native run; adding the online verification thread costs more but@.\
     stays within a small factor; offline checking is comparable to the@.\
     original execution (Table 3).@."

(* -------------------------------------------------- ablation: §6.4 views *)

let ablation_incremental () =
  Fmt.pr "@.Ablation (§6.4): full re-traversal vs incremental (keyed) views@.@.";
  let chunks = 64 and buf_size = 8 in
  let spec = Vyrd_boxwood.Cache.spec ~chunks in
  let full_view = Vyrd_boxwood.Cache.viewdef ~chunks ~buf_size in
  let keyed_view = Vyrd_boxwood.Cache.viewdef_keyed in
  let make_log seed =
    let log = Log.create ~level:`View () in
    Vyrd_sched.Coop.run ~seed (fun s ->
        let ctx = Instrument.make s log in
        let cm = Vyrd_boxwood.Chunk_manager.create ~chunks ctx in
        let cache = Vyrd_boxwood.Cache.create ~buf_size ctx cm in
        let stop = ref false in
        s.spawn (fun () ->
            while not !stop do
              Vyrd_boxwood.Cache.flush cache;
              s.yield ()
            done);
        let remaining = ref 6 in
        for t = 1 to 6 do
          s.spawn (fun () ->
              let rng = Prng.create (seed + (31 * t)) in
              for _ = 1 to 150 do
                let h = Prng.int rng chunks in
                match Prng.int rng 10 with
                | 0 | 1 | 2 | 3 ->
                  Vyrd_boxwood.Cache.write cache h
                    (String.init buf_size (fun _ -> Char.chr (97 + Prng.int rng 26)))
                | 4 | 5 | 6 | 7 -> ignore (Vyrd_boxwood.Cache.read cache h)
                | _ -> Vyrd_boxwood.Cache.evict cache h
              done;
              decr remaining;
              if !remaining = 0 then stop := true)
        done);
    log
  in
  let log = make_log 3 in
  Fmt.pr "workload: %d-handle store, %d events, checking in `View mode@.@."
    chunks (Log.length log);
  let full_ns =
    measure_ns "view/full" (fun () ->
        ignore (Checker.check ~mode:`View ~view:full_view log spec))
  in
  let keyed_ns =
    measure_ns "view/keyed" (fun () ->
        ignore (Checker.check ~mode:`View ~view:keyed_view log spec))
  in
  let keyed_checker = Checker.create ~mode:`View ~view:keyed_view spec in
  Log.iter (fun ev -> ignore (Checker.feed keyed_checker ev)) log;
  let commits = (Checker.report keyed_checker).Report.stats.commits_resolved in
  Fmt.pr "%-28s %10s@." "view computation" "ms/check";
  Fmt.pr "%s@." (line 40);
  Fmt.pr "%-28s %10s@." "full re-traversal" (Fmt.str "%a" pp_ms full_ns);
  Fmt.pr "%-28s %10s@." "incremental (keyed)" (Fmt.str "%a" pp_ms keyed_ns);
  Fmt.pr "@.speedup: %.2fx; keyed recomputed %d key projections over %d commits@."
    (full_ns /. keyed_ns)
    (Checker.view_projections keyed_checker)
    commits;
  Fmt.pr "(full mode recomputes all %d keys at each of the %d commits)@." chunks commits

(* ---------------------------------------------- ablation: §2 naive search *)

let ablation_naive () =
  Fmt.pr "@.Ablation (§2): naive serialization search vs commit-order witness@.@.";
  Fmt.pr
    "k overlapping insert executions plus one overlapping lookup with an@.\
     unjustifiable return value: a black-box checker explores the whole@.\
     permutation tree; VYRD walks the annotated trace once.@.@.";
  let open Vyrd_baselines in
  let ev_call tid mid args = Event.Call { tid; mid; args } in
  let ev_ret tid mid v = Event.Return { tid; mid; value = v } in
  let ev_commit tid = Event.Commit { tid } in
  let naive_log k =
    let calls = List.init k (fun i -> ev_call (i + 1) "insert" [ Repr.Int i ]) in
    let rets = List.init k (fun i -> ev_ret (i + 1) "insert" Repr.success) in
    Log.of_events
      ([ ev_call 99 "lookup" [ Repr.Int 999 ] ]
      @ calls @ rets
      @ [ ev_ret 99 "lookup" (Repr.Bool true) ])
  in
  let vyrd_log k =
    let calls = List.init k (fun i -> ev_call (i + 1) "insert" [ Repr.Int i ]) in
    let rest =
      List.concat
        (List.init k (fun i ->
             [ ev_commit (i + 1); ev_ret (i + 1) "insert" Repr.success ]))
    in
    Log.of_events
      ([ ev_call 99 "lookup" [ Repr.Int 999 ] ]
      @ calls @ rest
      @ [ ev_ret 99 "lookup" (Repr.Bool true) ])
  in
  let spec = Vyrd_multiset.Multiset_spec.spec in
  Fmt.pr "%3s %20s %20s@." "k" "naive transitions" "VYRD transitions";
  Fmt.pr "%s@." (line 46);
  List.iter
    (fun k ->
      let naive = Linearize.cost (Linearize.check ~budget:30_000_000 (naive_log k) spec) in
      let vyrd =
        let r = Checker.check ~mode:`Io (vyrd_log k) spec in
        r.Report.stats.methods_checked + 1
      in
      Fmt.pr "%3d %20d %20d@." k naive vyrd)
    [ 2; 3; 4; 5; 6; 7; 8; 9 ];
  Fmt.pr "@.(both checkers reject the trace; the naive cost grows as ~e-k!@.\
          while the witness-driven cost is linear in the number of methods)@."

(* -------------------------------------- extension: schedule exploration *)

let explore_bounds () =
  Fmt.pr "@.Extension: bounded verification (CHESS-style preemption bounding)@.@.";
  Fmt.pr
    "insert(1) || insert_pair(1,2) on the multiset: schedules needed to@.\
     exhaust the space at each preemption bound, for the correct and the@.\
     buggy (Fig. 5) implementation.@.@.";
  let scenario ~bugs on_log () =
    let log = Log.create ~level:`View () in
    let finished = ref 0 in
    fun (s : Vyrd_sched.Sched.t) ->
      let ctx = Instrument.make s log in
      let ms = Vyrd_multiset.Multiset_vector.create ~bugs ~capacity:4 ctx in
      let done_one () =
        incr finished;
        if !finished = 2 then on_log log
      in
      s.Vyrd_sched.Sched.spawn (fun () ->
          ignore (Vyrd_multiset.Multiset_vector.insert ms 1);
          done_one ());
      s.Vyrd_sched.Sched.spawn (fun () ->
          ignore (Vyrd_multiset.Multiset_vector.insert_pair ms 1 2);
          done_one ())
  in
  let view = Vyrd_multiset.Multiset_vector.viewdef ~capacity:4 in
  let spec = Vyrd_multiset.Multiset_spec.spec in
  Fmt.pr "%6s %20s %22s@." "bound" "correct: schedules" "buggy: violations/schd";
  Fmt.pr "%s@." (line 52);
  List.iter
    (fun pb ->
      let failures = ref 0 in
      let check log =
        if not (Report.is_pass (Checker.check ~mode:`View ~view log spec)) then
          incr failures
      in
      let correct =
        Vyrd_sched.Explore.explore ~preemption_bound:pb ~max_schedules:100_000
          (scenario ~bugs:[] check)
      in
      let correct_cell =
        Fmt.str "%d%s" correct.Vyrd_sched.Explore.schedules
          (if correct.Vyrd_sched.Explore.exhausted then "" else "+")
      in
      let bfailures = ref 0 in
      let bcheck log =
        if not (Report.is_pass (Checker.check ~mode:`View ~view log spec)) then
          incr bfailures
      in
      let buggy =
        Vyrd_sched.Explore.explore ~preemption_bound:pb ~max_schedules:100_000
          (scenario ~bugs:[ Vyrd_multiset.Multiset_vector.Racy_find_slot ] bcheck)
      in
      Fmt.pr "%6d %20s %15d/%d@." pb correct_cell !bfailures
        buggy.Vyrd_sched.Explore.schedules)
    [ 0; 1; 2; 3 ];
  Fmt.pr
    "@.Unbounded, the same scenario exceeds 200k schedules; with bound 1 the@.\
     space is exhausted in a couple dozen runs and already reaches the bug.@."

(* -------------------------------- ground truth: mutant detection matrix *)

(* Table 1 measures time-to-detection against the paper's injected bugs;
   the lib/faults registry re-measures it against mutants whose ground truth
   we control, and fails loudly if any mutant escapes deterministic
   view-mode detection — the checker validating itself. *)
let mutants ~json_out () =
  Fmt.pr "@.Ground truth: seeded-mutant detection matrix (lib/faults)@.@.";
  let rows = Vyrd_harness.Mutants.run_all Vyrd_harness.Mutants.full in
  Fmt.pr "%a@." Vyrd_harness.Mutants.pp_matrix rows;
  (match json_out with
  | Some file -> (
    match open_out file with
    | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Vyrd_harness.Mutants.to_json rows));
      Fmt.pr "matrix written to %s@." file
    | exception Sys_error msg -> Fmt.epr "cannot write %s: %s@." file msg)
  | None -> ());
  let detected = List.filter Vyrd_harness.Mutants.deterministic_view_detection rows in
  let beats = List.filter Vyrd_harness.Mutants.view_beats_io rows in
  Fmt.pr
    "@.%d/%d mutants deterministically detected in `View mode; view-mode@.\
     time-to-detection <= io-mode (or io missed outright) for %d/%d —@.\
     Table 1's asymmetry reproduced with ground truth.@."
    (List.length detected) (List.length rows) (List.length beats) (List.length rows);
  if List.length detected < List.length rows then exit 1

(* ---------------------------------------------- baseline: §8 atomicity *)

let baseline_atomizer () =
  Fmt.pr "@.Baseline (§8): Lipton-reduction atomicity vs refinement checking@.@.";
  let open Vyrd_baselines in
  let log = Log.create ~level:`Full () in
  Vyrd_sched.Coop.run ~seed:0 (fun s ->
      let ctx = Instrument.make s log in
      let ms = Vyrd_multiset.Multiset_vector.create ~capacity:8 ctx in
      for t = 1 to 4 do
        s.spawn (fun () ->
            let rng = Prng.create (31 * t) in
            for _ = 1 to 12 do
              let x = Prng.int rng 5 in
              match Prng.int rng 4 with
              | 0 -> ignore (Vyrd_multiset.Multiset_vector.insert ms x)
              | 1 -> ignore (Vyrd_multiset.Multiset_vector.insert_pair ms x (x + 1))
              | 2 -> ignore (Vyrd_multiset.Multiset_vector.delete ms x)
              | _ -> ignore (Vyrd_multiset.Multiset_vector.lookup ms x)
            done)
      done);
  let r = Reduction.analyze log in
  Fmt.pr "correct multiset, %d events at `Full granularity@.@." (Log.length log);
  Fmt.pr "%a@.@." Reduction.pp r;
  let refinement = Checker.check ~mode:`Io log Vyrd_multiset.Multiset_spec.spec in
  Fmt.pr "refinement checking on the same trace: %s@.@." (Report.tag refinement);
  Fmt.pr
    "As §8 argues: insert/insert_pair acquire locks again after releasing@.\
     others, so reduction cannot prove them atomic — a false alarm — while@.\
     refinement accepts the implementation against its specification.@."

(* -------------------------------------------------- analyzer throughput *)

(* Offline analyses are meant to run off the critical path over very large
   logs, so their unit of merit is events/second of log consumed.  Compares
   the passes of `vyrd-check analyze`: FastTrack happens-before race
   detection, the log-discipline linter, the deadlock-potential lock-order
   graph, and lockset+reduction. *)
let analyze_perf () =
  Fmt.pr "@.Analyzer throughput on generated `Full-level logs@.@.";
  let subjects =
    [ Subjects.multiset_vector; Subjects.multiset_btree; Subjects.cache ]
  in
  Fmt.pr "%-22s %-22s %10s %12s@." "subject" "analysis" "ms/log" "events/s";
  Fmt.pr "%s@." (line 70);
  List.iter
    (fun (s : Subjects.t) ->
      let log =
        Harness.run
          {
            Harness.default with
            threads = 4;
            ops_per_thread = 150;
            log_level = `Full;
            seed = 7;
          }
          (s.build ~bug:false)
      in
      let n = Log.length log in
      let row name f =
        let ns = measure_ns name f in
        Fmt.pr "%-22s %-22s %10s %12s@."
          (Fmt.str "%s (%d ev)" s.name n)
          name
          (Fmt.str "%a" pp_ms ns)
          (if Float.is_nan ns then "-"
           else Fmt.str "%.2fM" (float_of_int n /. ns *. 1e9 /. 1e6))
      in
      row "hb-race (FastTrack)" (fun () ->
          ignore (Vyrd_analysis.Racedetect.analyze log));
      row "log lint" (fun () -> ignore (Vyrd_analysis.Lint.check log));
      row "lock-order graph" (fun () ->
          ignore (Vyrd_analysis.Lockgraph.analyze log));
      row "lockset+reduction" (fun () ->
          ignore (Vyrd_baselines.Reduction.analyze log)))
    subjects;
  Fmt.pr "%s@." (line 70)

(* ------------------------------------------------- pipeline experiments *)

module Bincodec = Vyrd_pipeline.Bincodec
module Farm = Vyrd_pipeline.Farm
module Pmetrics = Vyrd_pipeline.Metrics
module Wire = Vyrd_net.Wire
module Server = Vyrd_net.Server
module Client = Vyrd_net.Client

(* Machine-readable sidecars (BENCH_pipeline.json, BENCH_net.json) so CI can
   track throughput without scraping the tables. *)
let write_json file fields =
  match open_out file with
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc "{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then output_string oc ",";
            Printf.fprintf oc "%S:%s" k v)
          fields;
        output_string oc "}\n");
    Fmt.pr "wrote %s@." file
  | exception Sys_error msg -> Fmt.epr "cannot write %s: %s@." file msg

let jnum f = if Float.is_nan f then "null" else Printf.sprintf "%.2f" f

(* Disjoint method namespaces, as the farm router requires. *)
let pipeline_subjects =
  [ Subjects.multiset_vector; Subjects.jvector; Subjects.string_buffer ]

let composed () =
  match pipeline_subjects with
  | [] -> assert false
  | s0 :: rest ->
    List.fold_left
      (fun (spec, view) (s : Subjects.t) ->
        (Spec_compose.pair spec s.spec, Spec_compose.pair_views view s.view))
      (s0.spec, s0.view) rest

let multi_log ~threads ~ops ~seed ~level =
  let log = Log.create ~level () in
  Harness.run_into ~log
    { Harness.threads; ops_per_thread = ops; key_pool = 12; key_range = 32;
      seed; log_level = level }
    (List.map (fun (s : Subjects.t) -> s.build ~bug:false) pipeline_subjects);
  log

let farm_shards () =
  List.map
    (fun (s : Subjects.t) -> Farm.shard ~mode:`View ~view:s.view s.name s.spec)
    pipeline_subjects

let pipeline_codec () =
  Fmt.pr "@.Pipeline: binary vs textual codec throughput@.@.";
  let log = multi_log ~threads:8 ~ops:2000 ~seed:3 ~level:`Full in
  let events = Log.snapshot log in
  let n = Array.length events in
  let lines = Array.map Event.to_line events in
  let text_bytes = Array.fold_left (fun a l -> a + String.length l + 1) 0 lines in
  let buf = Buffer.create (n * 16) in
  Array.iter (Bincodec.put_event buf) events;
  let bin = Buffer.contents buf in
  let enc_text =
    measure_ns "codec/text-encode" (fun () ->
        Array.iter (fun ev -> ignore (Event.to_line ev)) events)
  in
  let enc_bin =
    measure_ns "codec/bin-encode" (fun () ->
        Buffer.clear buf;
        Array.iter (Bincodec.put_event buf) events)
  in
  let dec_text =
    measure_ns "codec/text-decode" (fun () ->
        Array.iter (fun l -> ignore (Event.of_line l)) lines)
  in
  let dec_bin =
    measure_ns "codec/bin-decode" (fun () ->
        let pos = ref 0 in
        let len = String.length bin in
        while !pos < len do
          let _, p = Bincodec.get_event bin !pos in
          pos := p
        done)
  in
  Fmt.pr "%d events at `Full level; %d bytes text, %d bytes binary (%.2fx smaller)@.@."
    n text_bytes (String.length bin)
    (float_of_int text_bytes /. float_of_int (String.length bin));
  Fmt.pr "%-26s %10s %12s@." "codec" "ms/log" "events/s";
  Fmt.pr "%s@." (line 50);
  let row name ns =
    Fmt.pr "%-26s %10s %12s@." name
      (Fmt.str "%a" pp_ms ns)
      (if Float.is_nan ns then "-"
       else Fmt.str "%.2fM" (float_of_int n /. ns *. 1e9 /. 1e6))
  in
  row "text encode (to_line)" enc_text;
  row "binary encode" enc_bin;
  row "text decode (of_line)" dec_text;
  row "binary decode" dec_bin;
  row "text round trip" (enc_text +. dec_text);
  row "binary round trip" (enc_bin +. dec_bin);
  Fmt.pr "@.encode speedup: %.1fx, decode speedup: %.1fx, round trip: %.1fx@."
    (enc_text /. enc_bin) (dec_text /. dec_bin)
    ((enc_text +. dec_text) /. (enc_bin +. dec_bin))

let pipeline_scaling () =
  let k = List.length pipeline_subjects in
  Fmt.pr "@.Pipeline: checker-domain scaling (same stream, 1 vs %d domains)@.@." k;
  let log = multi_log ~threads:8 ~ops:2000 ~seed:5 ~level:`View in
  let events = Log.snapshot log in
  let n = Array.length events in
  let spec, view = composed () in
  let run_farm shards () =
    let farm = Farm.start ~capacity:8192 ~level:`View shards in
    Array.iter (Farm.feed farm) events;
    ignore (Farm.finish farm)
  in
  let offline =
    measure_ns "farm/offline" (fun () ->
        ignore (Checker.check ~mode:`View ~view log spec))
  in
  let one_ns =
    measure_ns ~quota:1.0 "farm/1-domain"
      (run_farm [ Farm.shard ~mode:`View ~view "composite" spec ])
  in
  let many_ns = measure_ns ~quota:1.0 "farm/n-domain" (run_farm (farm_shards ())) in
  Fmt.pr "%d events at `View level@.@." n;
  Fmt.pr "%-30s %10s %12s@." "configuration" "ms/check" "events/s";
  Fmt.pr "%s@." (line 54);
  let row name ns =
    Fmt.pr "%-30s %10s %12s@." name
      (Fmt.str "%a" pp_ms ns)
      (if Float.is_nan ns then "-"
       else Fmt.str "%.2fM" (float_of_int n /. ns *. 1e9 /. 1e6))
  in
  row "offline, in-process" offline;
  row "farm, 1 domain (composite)" one_ns;
  row (Printf.sprintf "farm, %d domains" k) many_ns;
  Fmt.pr "@.%d-domain speedup over 1 domain: %.2fx@." k (one_ns /. many_ns)

let pipeline_backpressure () =
  Fmt.pr "@.Pipeline: backpressure stall vs ring capacity@.@.";
  let log = multi_log ~threads:8 ~ops:2000 ~seed:7 ~level:`View in
  let events = Log.snapshot log in
  Fmt.pr "%d events; the producer blocks whenever a shard's ring is full@.@."
    (Array.length events);
  Fmt.pr "%8s %10s %12s %12s@." "capacity" "wall ms" "high-water" "stall ms";
  Fmt.pr "%s@." (line 46);
  List.iter
    (fun capacity ->
      let farm = Farm.start ~capacity ~level:`View (farm_shards ()) in
      let t0 = Unix.gettimeofday () in
      Array.iter (Farm.feed farm) events;
      let r = Farm.finish farm in
      let dt = (Unix.gettimeofday () -. t0) *. 1e3 in
      let hw =
        List.fold_left (fun a (sr : Farm.shard_result) -> max a sr.Farm.sr_high_water)
          0 r.Farm.shards
      in
      let stall =
        List.fold_left (fun a (sr : Farm.shard_result) -> a + sr.Farm.sr_stall_ns)
          0 r.Farm.shards
      in
      Fmt.pr "%8d %10.2f %12d %12.2f@." capacity dt hw
        (float_of_int stall /. 1e6))
    [ 16; 64; 256; 1024; 8192 ];
  Fmt.pr
    "@.(small rings bound memory hard and surface as stall time; once the@.\
     capacity covers the checkers' burst lag the stall disappears)@."

let pipeline_drain ?(ops = 20_000) () =
  Fmt.pr "@.Pipeline: bounded-memory drain of a large streamed harness run@.@.";
  let capacity = 4096 in
  let level = `View in
  let metrics = Pmetrics.create () in
  let farm = Farm.start ~capacity ~metrics ~level (farm_shards ()) in
  let log = Log.create ~level () in
  Farm.attach farm log;
  (* wire-equivalent byte accounting for the bytes/s sidecar figure *)
  let bin_bytes = ref 0 in
  let bin_buf = Buffer.create 64 in
  Log.subscribe log (fun ev ->
      Buffer.clear bin_buf;
      Bincodec.put_event bin_buf ev;
      bin_bytes := !bin_bytes + Buffer.length bin_buf);
  let cfg =
    { Harness.threads = 8; ops_per_thread = ops; key_pool = 12; key_range = 32;
      seed = 11; log_level = level }
  in
  let t0 = Unix.gettimeofday () in
  Harness.run_into ~log cfg
    (List.map (fun (s : Subjects.t) -> s.build ~bug:false) pipeline_subjects);
  let result = Farm.finish farm in
  let dt = Unix.gettimeofday () -. t0 in
  let n = result.Farm.fed in
  Fmt.pr "%d events streamed through %d checker domains in %.2fs (%.0f ev/s)@.@."
    n
    (List.length result.Farm.shards)
    dt
    (float_of_int n /. dt);
  List.iter
    (fun (sr : Farm.shard_result) ->
      Fmt.pr "  %-22s %-6s events %-8d high-water %-6d (cap %d) stall %.1f ms@."
        sr.Farm.sr_name
        (Report.tag sr.Farm.sr_report)
        sr.Farm.sr_events sr.Farm.sr_high_water capacity
        (float_of_int sr.Farm.sr_stall_ns /. 1e6))
    result.Farm.shards;
  let high_water =
    List.fold_left
      (fun a (sr : Farm.shard_result) -> max a sr.Farm.sr_high_water)
      0 result.Farm.shards
  in
  let bounded = high_water <= capacity in
  let spec, view = composed () in
  let offline = Checker.check ~mode:`View ~view log spec in
  let agree = Report.is_pass offline = Report.is_pass result.Farm.merged in
  Fmt.pr "@.bounded memory: %s (every queue high-water <= capacity %d)@."
    (if bounded then "yes" else "NO")
    capacity;
  Fmt.pr "verdict equality with the offline checker: %s (farm %s, offline %s)@."
    (if agree then "yes" else "NO")
    (Report.tag result.Farm.merged) (Report.tag offline);
  if not (bounded && agree) then exit 1;
  (n, dt, !bin_bytes, high_water)

let pipeline ?(json_out = Some "BENCH_pipeline.json") () =
  pipeline_codec ();
  pipeline_scaling ();
  pipeline_backpressure ();
  let events, dt, bytes, high_water = pipeline_drain () in
  match json_out with
  | None -> ()
  | Some file ->
    write_json file
      [
        ("experiment", "\"pipeline-drain\"");
        ("events", string_of_int events);
        ("bytes", string_of_int bytes);
        ("seconds", jnum dt);
        ("events_per_sec", jnum (float_of_int events /. dt));
        ("bytes_per_sec", jnum (float_of_int bytes /. dt));
        ("queue_high_water", string_of_int high_water);
      ]

(* ----------------------------------------------------- net loopback bench *)

(* Same workload checked three ways — offline in-process, farm in-process,
   and streamed over a loopback Unix socket into a vyrdd server — so the
   socket + framing + flow-control tax is directly visible.  EXPERIMENTS.md
   tracks the shape; BENCH_net.json carries the raw numbers for CI. *)
let net_bench ?(json_out = Some "BENCH_net.json") () =
  Fmt.pr "@.Net: loopback submit throughput vs in-process checking@.@.";
  let level = `View in
  let log = multi_log ~threads:8 ~ops:2000 ~seed:9 ~level in
  let n = Log.length log in
  let spec, view = composed () in
  let t0 = Unix.gettimeofday () in
  ignore (Checker.check ~mode:`View ~view log spec);
  let offline_dt = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let farm = Farm.start ~capacity:4096 ~level (farm_shards ()) in
  Log.iter (Farm.feed farm) log;
  let farm_result = Farm.finish farm in
  let farm_dt = Unix.gettimeofday () -. t0 in
  let sock = Filename.temp_file "vyrdd-bench" ".sock" in
  let metrics = Pmetrics.create () in
  let server =
    Server.start
      (Server.config ~capacity:4096 ~metrics ~addr:(Wire.Unix_socket sock)
         (fun _level -> farm_shards ()))
  in
  let t0 = Unix.gettimeofday () in
  let client = Client.connect ~level ~batch_events:256 (Server.addr server) in
  Log.iter (Client.send client) log;
  let outcome = Client.finish client in
  let net_dt = Unix.gettimeofday () -. t0 in
  let bytes = Client.bytes_sent client in
  Server.stop server;
  let high_water, net_tag =
    match outcome with
    | Client.Checked { report; _ } ->
      (report.Report.stats.queue_high_water, Report.tag report)
    | Client.Spilled _ -> (0, "spilled")
  in
  let evs dt = float_of_int n /. dt in
  Fmt.pr "%d events at `View level, batches of 256 over a Unix socket@.@." n;
  Fmt.pr "%-30s %10s %12s@." "configuration" "wall ms" "events/s";
  Fmt.pr "%s@." (line 54);
  let row name dt =
    Fmt.pr "%-30s %10.2f %12s@." name (dt *. 1e3) (Fmt.str "%.2fM" (evs dt /. 1e6))
  in
  row "offline, in-process" offline_dt;
  row "farm, in-process" farm_dt;
  row "farm, loopback socket" net_dt;
  Fmt.pr
    "@.loopback: %d wire bytes (%.1f MB/s), verdicts agree: %s (farm %s, net %s)@."
    bytes
    (float_of_int bytes /. net_dt /. 1e6)
    (if String.equal net_tag (Report.tag farm_result.Farm.merged) then "yes"
     else "NO")
    (Report.tag farm_result.Farm.merged)
    net_tag;
  if not (String.equal net_tag (Report.tag farm_result.Farm.merged)) then exit 1;
  match json_out with
  | None -> ()
  | Some file ->
    write_json file
      [
        ("experiment", "\"net-loopback\"");
        ("events", string_of_int n);
        ("bytes", string_of_int bytes);
        ("seconds", jnum net_dt);
        ("events_per_sec", jnum (evs net_dt));
        ("bytes_per_sec", jnum (float_of_int bytes /. net_dt));
        ("queue_high_water", string_of_int high_water);
        ("farm_events_per_sec", jnum (evs farm_dt));
        ("offline_events_per_sec", jnum (evs offline_dt));
      ]

(* ------------------------------------------------------- hot-path bench *)

(* Pull one numeric field back out of a flat sidecar written by
   [write_json]; [nan] when the file or the key is missing. *)
let read_json_field file key =
  match open_in file with
  | exception Sys_error _ -> nan
  | ic ->
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let pat = Printf.sprintf "%S:" key in
    let rec find i =
      if i + String.length pat > String.length s then nan
      else if String.sub s i (String.length pat) = pat then begin
        let j = i + String.length pat in
        let k = ref j in
        while
          !k < String.length s
          && (match s.[!k] with '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true | _ -> false)
        do
          incr k
        done;
        match float_of_string_opt (String.sub s j (!k - j)) with
        | Some f -> f
        | None -> nan
      end
      else find (i + 1)
    in
    find 0

(* The flattened feed path end to end: batched ring hand-off, slice-draining
   lanes, flat spec transitions.  Gates (any failure exits 1):

   - verdict + first-violation index identical to the indexed reference
     oracle in io mode on the full workload, and on a fault-seeded
     single-structure view workload across offline, farm, and reference;
   - farm snapshot/restore still round-trips mid-drain on the big workload;
   - best-of-N farm io-mode drain throughput >= --min-evps (default 1M);
   - when --baseline BENCH_hotpath.json is given, farm io-mode drain not
     more than --max-regress percent below the committed number. *)
let hotpath ?(json_out = Some "BENCH_hotpath.json") ~baseline ~max_regress
    ~min_evps ~ops () =
  let module Faults = Vyrd_faults.Faults in
  Fmt.pr "@.Hot path: flattened batched feed path (gate: farm io drain >= %.2fM ev/s)@.@."
    (min_evps /. 1e6);
  let level = `View in
  let log = multi_log ~threads:8 ~ops ~seed:11 ~level in
  let events = Log.snapshot log in
  let n = Array.length events in
  let spec, view = composed () in
  Fmt.pr "%d events at `View level (8 threads x %d ops x %d subjects)@.@." n ops
    (List.length pipeline_subjects);
  let failures = ref [] in
  let gate name ok =
    Fmt.pr "gate: %-52s %s@." name (if ok then "ok" else "FAIL");
    if not ok then failures := name :: !failures
  in
  (* -- correctness: offline io vs the indexed reference oracle ------------ *)
  let io_report, io_idx = Checker.check_indexed ~mode:`Io log spec in
  gate "offline io verdict+index = indexed reference"
    (match Reference.check_indexed log spec with
    | Ok () -> Report.is_pass io_report && io_idx = None
    | Error f ->
      (not (Report.is_pass io_report))
      && io_idx = Some f.Reference.f_index
      && Report.tag io_report = f.Reference.f_kind);
  let view_report = Checker.check ~mode:`View ~view log spec in
  let io_shards () =
    List.map (fun (s : Subjects.t) -> Farm.shard s.name s.spec) pipeline_subjects
  in
  let drain shards =
    let farm = Farm.start ~capacity:8192 ~level shards in
    Array.iter (Farm.feed farm) events;
    Farm.finish farm
  in
  let farm_io = drain (io_shards ()) in
  gate "farm io verdict = offline io verdict"
    (Report.is_pass farm_io.Farm.merged = Report.is_pass io_report
    && (not (Report.is_pass io_report)) = (Farm.min_fail_index farm_io <> None));
  let farm_view = drain (farm_shards ()) in
  gate "farm view verdict = offline view verdict"
    (Report.is_pass farm_view.Farm.merged = Report.is_pass view_report);
  (* -- correctness: fault-seeded single-structure run, exact index -------- *)
  let msubj = Subjects.multiset_vector in
  let mutant_log =
    let run seed =
      Faults.with_armed Instrument.fault_dropped_block (fun () ->
          Harness.run
            { Harness.threads = 4; ops_per_thread = 60; key_pool = 12;
              key_range = 16; seed; log_level = `View }
            (msubj.Subjects.build ~bug:false))
    in
    let rec find seed =
      if seed > 50 then None
      else
        let l = run seed in
        if Report.is_pass (Checker.check ~mode:`View ~view:msubj.Subjects.view l msubj.Subjects.spec)
        then find (seed + 1)
        else Some l
    in
    find 0
  in
  gate "fault-seeded index: offline = farm = reference"
    (match mutant_log with
    | None -> false
    | Some mlog -> (
      let mr, midx =
        Checker.check_indexed ~mode:`View ~view:msubj.Subjects.view mlog
          msubj.Subjects.spec
      in
      let farm =
        Farm.start ~level:`View
          [ Farm.shard ~mode:`View ~view:msubj.Subjects.view msubj.Subjects.name
              msubj.Subjects.spec ]
      in
      Log.iter (Farm.feed farm) mlog;
      let fr = Farm.finish farm in
      match Reference.check_indexed ~view:msubj.Subjects.view mlog msubj.Subjects.spec with
      | Ok () -> false
      | Error f ->
        (not (Report.is_pass mr))
        && midx = Some f.Reference.f_index
        && Report.tag mr = f.Reference.f_kind
        && Farm.min_fail_index fr = midx
        && Report.tag fr.Farm.merged = Report.tag mr));
  (* -- correctness: farm snapshot/restore round-trips mid-drain ----------- *)
  gate "farm checkpoint mid-drain round-trips"
    (let farm = Farm.start ~capacity:8192 ~level (farm_shards ()) in
     let snap = ref None in
     Array.iteri
       (fun i ev ->
         Farm.feed farm ev;
         if i = n / 2 then snap := Farm.checkpoint farm)
       events;
     let straight = Farm.finish farm in
     match !snap with
     | None -> false
     | Some st ->
       let f2 = Farm.start ~restore:st ~capacity:8192 ~level (farm_shards ()) in
       for i = (n / 2) + 1 to n - 1 do
         Farm.feed f2 events.(i)
       done;
       let resumed = Farm.finish f2 in
       Report.tag straight.Farm.merged = Report.tag resumed.Farm.merged
       && Farm.min_fail_index straight = Farm.min_fail_index resumed
       && straight.Farm.merged.Report.stats.Report.events_processed
          = resumed.Farm.merged.Report.stats.Report.events_processed);
  (* -- throughput: best of N trials, wall clock --------------------------- *)
  let trials = 3 in
  Fmt.pr "@.%-30s %10s %12s   (best of %d)@." "configuration" "wall ms" "events/s"
    trials;
  Fmt.pr "%s@." (line 60);
  let best label f =
    let best = ref infinity in
    for _ = 1 to trials do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    Fmt.pr "%-30s %10.2f %12s@." label
      (!best *. 1e3)
      (Fmt.str "%.2fM" (float_of_int n /. !best /. 1e6));
    !best
  in
  let offline_io_dt =
    best "offline io, in-process" (fun () ->
        ignore (Checker.check ~mode:`Io log spec : Report.t))
  in
  let offline_view_dt =
    best "offline view, in-process" (fun () ->
        ignore (Checker.check ~mode:`View ~view log spec : Report.t))
  in
  let farm_io_dt =
    best "farm io drain" (fun () -> ignore (drain (io_shards ()) : Farm.result))
  in
  let farm_view_dt =
    best "farm view drain" (fun () -> ignore (drain (farm_shards ()) : Farm.result))
  in
  let loopback_dt, loopback_tag =
    let sock = Filename.temp_file "vyrdd-hotpath" ".sock" in
    let server =
      Server.start
        (Server.config ~capacity:8192 ~addr:(Wire.Unix_socket sock)
           (fun _level -> farm_shards ()))
    in
    let t0 = Unix.gettimeofday () in
    let client = Client.connect ~level ~batch_events:256 (Server.addr server) in
    Array.iter (Client.send client) events;
    let outcome = Client.finish client in
    let dt = Unix.gettimeofday () -. t0 in
    Server.stop server;
    Fmt.pr "%-30s %10.2f %12s@." "farm view, loopback socket" (dt *. 1e3)
      (Fmt.str "%.2fM" (float_of_int n /. dt /. 1e6));
    ( dt,
      match outcome with
      | Client.Checked { report; _ } -> Report.tag report
      | Client.Spilled _ -> "spilled" )
  in
  gate "loopback verdict = farm view verdict"
    (String.equal loopback_tag (Report.tag farm_view.Farm.merged));
  let farm_io_evps = float_of_int n /. farm_io_dt in
  gate
    (Printf.sprintf "farm io drain %.2fM ev/s >= %.2fM" (farm_io_evps /. 1e6)
       (min_evps /. 1e6))
    (farm_io_evps >= min_evps);
  (match baseline with
  | None -> ()
  | Some file ->
    let old = read_json_field file "farm_io_events_per_sec" in
    if Float.is_nan old then
      Fmt.pr "gate: baseline %s unreadable — skipping the regression gate@." file
    else
      let floor = old *. (1. -. (max_regress /. 100.)) in
      gate
        (Printf.sprintf "farm io drain %.2fM >= %.2fM (baseline %.2fM - %.0f%%)"
           (farm_io_evps /. 1e6) (floor /. 1e6) (old /. 1e6) max_regress)
        (farm_io_evps >= floor));
  (match json_out with
  | None -> ()
  | Some file ->
    write_json file
      [
        ("experiment", "\"hotpath\"");
        ("events", string_of_int n);
        ("trials", string_of_int trials);
        ("farm_io_events_per_sec", jnum farm_io_evps);
        ("farm_view_events_per_sec", jnum (float_of_int n /. farm_view_dt));
        ("offline_io_events_per_sec", jnum (float_of_int n /. offline_io_dt));
        ("offline_view_events_per_sec", jnum (float_of_int n /. offline_view_dt));
        ("loopback_events_per_sec", jnum (float_of_int n /. loopback_dt));
        ("min_evps_gate", jnum min_evps);
      ]);
  if !failures <> [] then begin
    Fmt.epr "@.hotpath gates failed:@.";
    List.iter (fun f -> Fmt.epr "  - %s@." f) (List.rev !failures);
    exit 1
  end;
  Fmt.pr "@.all hotpath gates passed@."

(* ---------------------------------------------- checkpoint/resume bench *)

(* The replay work the checkpoint frames save: spool a ~1M-event composed
   workload with a checkpoint frame every n/10 events, then compare a full
   re-check of the recovered spool against resuming from the frame at the
   90% mark (only the final tenth is replayed).  Both sides run over the
   same pre-read [Segment.resumable] through the same feed loop, so the
   ratio isolates checking work from disk recovery.  EXPERIMENTS.md tracks
   the shape; BENCH_checkpoint.json carries the raw numbers for CI. *)
let checkpoint_bench ?(json_out = Some "BENCH_checkpoint.json") ?(ops = 20_000) () =
  Fmt.pr "@.Checkpoint: resume at the 90%% frame vs full re-check of a spool@.@.";
  let module Resume = Vyrd_pipeline.Resume in
  let module Segment = Vyrd_pipeline.Segment in
  let level = `View in
  let log = multi_log ~threads:8 ~ops ~seed:13 ~level in
  let n = Log.length log in
  let every = max 1 (n / 10) in
  let spec, view = composed () in
  let path = Filename.temp_file "vyrd-bench-ckpt" ".seg" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let spool = Resume.check_to_spool ~mode:`View ~view ~every ~path log spec in
  Fmt.pr "%d events spooled with %d checkpoint frame(s) (every %d events)@.@." n
    spool.Resume.checkpoints every;
  let rz = Segment.read_from_checkpoint path in
  (* [at:0] admits no checkpoint, so this is the full replay through the
     identical code path *)
  let t0 = Unix.gettimeofday () in
  let full = Resume.resume_recovered ~mode:`View ~view ~at:0 rz spec in
  let full_dt = Unix.gettimeofday () -. t0 in
  let at = n * 9 / 10 in
  let t0 = Unix.gettimeofday () in
  let resumed = Resume.resume_recovered ~mode:`View ~view ~at rz spec in
  let resume_dt = Unix.gettimeofday () -. t0 in
  let speedup = full_dt /. resume_dt in
  Fmt.pr "%-30s %10s %12s %12s@." "configuration" "wall ms" "events/s" "replayed";
  Fmt.pr "%s@." (line 68);
  let row name dt replayed =
    Fmt.pr "%-30s %10.2f %12s %12d@." name (dt *. 1e3)
      (Fmt.str "%.2fM" (float_of_int n /. dt /. 1e6))
      replayed
  in
  row "full re-check" full_dt full.Resume.replayed;
  row "resume at 90%" resume_dt resumed.Resume.replayed;
  let agree =
    String.equal (Report.tag full.Resume.report) (Report.tag resumed.Resume.report)
    && full.Resume.fail_index = resumed.Resume.fail_index
  in
  Fmt.pr
    "@.resumed at event %s, replayed %d of %d; verdicts agree: %s; speedup: \
     %.1fx@."
    (match resumed.Resume.resumed_at with
    | Some i -> string_of_int i
    | None -> "NONE (no usable checkpoint)")
    resumed.Resume.replayed n
    (if agree then "yes" else "NO")
    speedup;
  if not agree then exit 1;
  if resumed.Resume.resumed_at = None then exit 1;
  if speedup < 5.0 then begin
    Fmt.epr "resume speedup %.1fx below the 5x floor@." speedup;
    exit 1
  end;
  match json_out with
  | None -> ()
  | Some file ->
    write_json file
      [
        ("experiment", "\"checkpoint-resume\"");
        ("events", string_of_int n);
        ("checkpoint_every", string_of_int every);
        ("checkpoints", string_of_int spool.Resume.checkpoints);
        ("full_seconds", jnum full_dt);
        ("resume_seconds", jnum resume_dt);
        ("speedup", jnum speedup);
        ( "resumed_at",
          match resumed.Resume.resumed_at with
          | Some i -> string_of_int i
          | None -> "null" );
        ("replayed", string_of_int resumed.Resume.replayed);
      ]

(* --------------------------------------------- in-service analysis bench *)

(* What `--analyze` costs on the hot path: the same ~1.1M-event composed
   `View workload as the hotpath bench, drained through the farm with and
   without the level's analysis passes (lint + lockgraph at `View) on the
   dedicated analysis lane.  Gates (any failure exits 1):

   - refinement verdict identical with and without passes attached;
   - every pass saw the whole stream and came back clean on the correct
     workload;
   - passes-attached drain within --max-overhead percent of the plain
     drain (default 15, the in-service budget);
   - when --baseline BENCH_analyze.json is given, the passes-attached
     drain not more than --max-regress percent below the committed number.

   Also reports standalone Lockgraph.analyze throughput over a `Full-level
   log — the lock-order graph needs Acquire/Release events, which `View
   traces do not carry. *)
let analyze_bench ?(json_out = Some "BENCH_analyze.json") ~baseline
    ~max_regress ~max_overhead ~ops () =
  Fmt.pr
    "@.In-service analysis: farm drain with vs without --analyze passes \
     (gate: <= %.0f%% overhead)@.@."
    max_overhead;
  let level = `View in
  let log = multi_log ~threads:8 ~ops ~seed:11 ~level in
  let events = Log.snapshot log in
  let n = Array.length events in
  let passes () = Vyrd_analysis.Pass.for_level level in
  Fmt.pr "%d events at `View level; passes: %s@.@." n
    (String.concat ", "
       (List.map (fun (p : Vyrd_analysis.Pass.t) -> p.Vyrd_analysis.Pass.name)
          (passes ())));
  let failures = ref [] in
  let gate name ok =
    Fmt.pr "gate: %-52s %s@." name (if ok then "ok" else "FAIL");
    if not ok then failures := name :: !failures
  in
  let drain ?passes () =
    let farm = Farm.start ~capacity:8192 ?passes ~level (farm_shards ()) in
    Array.iter (Farm.feed farm) events;
    Farm.finish farm
  in
  (* -- correctness: the analysis lane must not perturb the verdict -------- *)
  let plain = drain () in
  let analyzed = drain ~passes:(passes ()) () in
  gate "verdict identical with and without passes"
    (String.equal (Report.tag plain.Farm.merged) (Report.tag analyzed.Farm.merged)
    && Farm.min_fail_index plain = Farm.min_fail_index analyzed);
  gate "every pass saw the whole stream"
    (analyzed.Farm.analysis <> []
    && List.for_all
         (fun (s : Vyrd_analysis.Pass.summary) ->
           s.Vyrd_analysis.Pass.events = n)
         analyzed.Farm.analysis);
  gate "passes clean on the correct workload"
    (List.for_all Vyrd_analysis.Pass.clean analyzed.Farm.analysis);
  (* -- throughput: best of N trials, wall clock --------------------------- *)
  let trials = 3 in
  Fmt.pr "@.%-30s %10s %12s   (best of %d)@." "configuration" "wall ms"
    "events/s" trials;
  Fmt.pr "%s@." (line 60);
  let best label count f =
    let best = ref infinity in
    for _ = 1 to trials do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    Fmt.pr "%-30s %10.2f %12s@." label
      (!best *. 1e3)
      (Fmt.str "%.2fM" (float_of_int count /. !best /. 1e6));
    !best
  in
  (* Paired trials: each trial times the plain and the --analyze drain
     back-to-back.  The overhead gate takes the best of the per-pair
     ratios and the ratio of the per-side minima — on a loaded
     single-core CI box a scheduling spike can hit either side of any
     pair, and both statistics discard a different kind of spike, so
     together they approach the true steady-state overhead from above. *)
  let pairs = 5 in
  let plain_dt = ref infinity and passes_dt = ref infinity in
  let pair_ratio = ref infinity in
  for _ = 1 to pairs do
    let t0 = Unix.gettimeofday () in
    ignore (drain () : Farm.result);
    let p = Unix.gettimeofday () -. t0 in
    let t0 = Unix.gettimeofday () in
    ignore (drain ~passes:(passes ()) () : Farm.result);
    let a = Unix.gettimeofday () -. t0 in
    if p < !plain_dt then plain_dt := p;
    if a < !passes_dt then passes_dt := a;
    if a /. p < !pair_ratio then pair_ratio := a /. p
  done;
  let ratio = ref (Float.min !pair_ratio (!passes_dt /. !plain_dt)) in
  let row label dt =
    Fmt.pr "%-30s %10.2f %12s@." label (dt *. 1e3)
      (Fmt.str "%.2fM" (float_of_int n /. dt /. 1e6))
  in
  row "farm view drain, no passes" !plain_dt;
  row "farm view drain, --analyze" !passes_dt;
  let plain_dt = !plain_dt and passes_dt = !passes_dt in
  let full_log =
    multi_log ~threads:8 ~ops:(max 1 (ops / 10)) ~seed:3 ~level:`Full
  in
  let fn = Log.length full_log in
  let lock_dt =
    best (Fmt.str "lockgraph alone, %d ev `Full" fn) fn (fun () ->
        ignore (Vyrd_analysis.Lockgraph.analyze full_log
                 : Vyrd_analysis.Lockgraph.result))
  in
  let overhead_pct = (!ratio -. 1.) *. 100. in
  gate
    (Printf.sprintf "--analyze overhead %.1f%% <= %.0f%% (best of %d pairs)"
       overhead_pct max_overhead pairs)
    (!ratio <= 1. +. (max_overhead /. 100.));
  let passes_evps = float_of_int n /. passes_dt in
  (match baseline with
  | None -> ()
  | Some file ->
    let old = read_json_field file "farm_passes_events_per_sec" in
    if Float.is_nan old then
      Fmt.pr "gate: baseline %s unreadable — skipping the regression gate@."
        file
    else
      let floor = old *. (1. -. (max_regress /. 100.)) in
      gate
        (Printf.sprintf
           "--analyze drain %.2fM >= %.2fM (baseline %.2fM - %.0f%%)"
           (passes_evps /. 1e6) (floor /. 1e6) (old /. 1e6) max_regress)
        (passes_evps >= floor));
  (match json_out with
  | None -> ()
  | Some file ->
    write_json file
      [
        ("experiment", "\"analyze\"");
        ("events", string_of_int n);
        ("trials", string_of_int trials);
        ("pairs", string_of_int pairs);
        ("farm_plain_events_per_sec", jnum (float_of_int n /. plain_dt));
        ("farm_passes_events_per_sec", jnum passes_evps);
        ("overhead_pct", jnum overhead_pct);
        ("lockgraph_events", string_of_int fn);
        ("lockgraph_events_per_sec", jnum (float_of_int fn /. lock_dt));
        ("max_overhead_pct_gate", jnum max_overhead);
      ]);
  if !failures <> [] then begin
    Fmt.epr "@.analyze gates failed:@.";
    List.iter (fun f -> Fmt.epr "  - %s@." f) (List.rev !failures);
    exit 1
  end;
  Fmt.pr "@.all analyze gates passed@."

(* ------------------------------------------------------ lin oracle bench *)

module Lin = Vyrd_lin.Backend

(* What the annotation-free linearizability backend costs next to
   refinement checking, on the same ~1.1M-event composed `View workload as
   the hotpath bench.  Gates (any failure exits 1):

   - lin clean and conclusive on the correct workload — zero budget
     exhaustions, every structure's history linearizable;
   - agreement on a seeded buggy log: refinement convicts and so does lin,
     from calls and returns alone;
   - lin throughput at least --min-evps events/second (default 0.5M — the
     greedy path never snapshots, so the clean-log JIT is nearly linear);
   - when --baseline BENCH_lin.json is given, lin throughput not more than
     --max-regress percent below the committed number.

   The cost table puts refinement (farm view drain, farm io drain) and the
   lin backend side by side over the identical stream — the measured price
   of dropping commit annotations. *)
let lin_bench ?(json_out = Some "BENCH_lin.json") ~baseline ~max_regress
    ~min_evps ~ops () =
  Fmt.pr
    "@.Lin backend: JIT linearizability vs refinement on the hotpath \
     workload@.@.";
  let level = `View in
  let log = multi_log ~threads:8 ~ops ~seed:11 ~level in
  let events = Log.snapshot log in
  let n = Array.length events in
  let specs = List.map (fun (s : Subjects.t) -> (s.name, s.spec)) pipeline_subjects in
  Fmt.pr "%d events at `View level; structures: %s@.@." n
    (String.concat ", " (List.map fst specs));
  let failures = ref [] in
  let gate name ok =
    Fmt.pr "gate: %-52s %s@." name (if ok then "ok" else "FAIL");
    if not ok then failures := name :: !failures
  in
  (* -- correctness -------------------------------------------------------- *)
  let lin = Lin.check_log ~specs log in
  gate "lin clean and conclusive on the correct workload"
    (Lin.clean lin);
  let total f = List.fold_left (fun a r -> a + f r) 0 lin.Lin.structures in
  Fmt.pr "  %d ops, %d pending, %d nodes, %d undos, %d memo hits@."
    (total (fun r -> r.Lin.ls_ops))
    (total (fun r -> r.Lin.ls_pending))
    (total (fun r -> r.Lin.ls_stats.Vyrd_lin.Jit.nodes))
    (total (fun r -> r.Lin.ls_stats.Vyrd_lin.Jit.undos))
    (total (fun r -> r.Lin.ls_stats.Vyrd_lin.Jit.memo_hits));
  let buggy = run_buggy Subjects.multiset_vector ~threads:4 ~ops:60 ~seed:1 in
  let ref_buggy =
    Checker.check ~mode:`View ~view:Subjects.multiset_vector.Subjects.view
      buggy Subjects.multiset_vector.Subjects.spec
  in
  let lin_buggy =
    Lin.check_log
      ~specs:[ (Subjects.multiset_vector.Subjects.name,
                Subjects.multiset_vector.Subjects.spec) ]
      buggy
  in
  gate "both oracles convict the seeded buggy log"
    ((not (Report.is_pass ref_buggy)) && Lin.violations lin_buggy <> []);
  (* -- throughput: best of N trials, wall clock --------------------------- *)
  let trials = 3 in
  Fmt.pr "@.%-30s %10s %12s   (best of %d)@." "oracle" "wall ms" "events/s"
    trials;
  Fmt.pr "%s@." (line 60);
  let best label count f =
    let best = ref infinity in
    for _ = 1 to trials do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    Fmt.pr "%-30s %10.2f %12s@." label
      (!best *. 1e3)
      (Fmt.str "%.2fM" (float_of_int count /. !best /. 1e6));
    !best
  in
  let drain mode =
    let shards =
      match mode with
      | `View -> farm_shards ()
      | `Io ->
        List.map
          (fun (s : Subjects.t) -> Farm.shard ~mode:`Io s.name s.spec)
          pipeline_subjects
    in
    let farm = Farm.start ~capacity:8192 ~level shards in
    Array.iter (Farm.feed farm) events;
    ignore (Farm.finish farm : Farm.result)
  in
  let view_dt = best "refinement farm, view mode" n (fun () -> drain `View) in
  let io_dt = best "refinement farm, io mode" n (fun () -> drain `Io) in
  let lin_dt =
    best "lin backend (JIT, no commits)" n (fun () ->
        ignore (Lin.check_log ~specs log : Lin.t))
  in
  let lin_evps = float_of_int n /. lin_dt in
  Fmt.pr "@.lin costs %.2fx the view drain, %.2fx the io drain@."
    (lin_dt /. view_dt) (lin_dt /. io_dt);
  gate
    (Printf.sprintf "lin throughput %.2fM >= %.2fM ev/s" (lin_evps /. 1e6)
       (min_evps /. 1e6))
    (lin_evps >= min_evps);
  (match baseline with
  | None -> ()
  | Some file ->
    let old = read_json_field file "lin_events_per_sec" in
    if Float.is_nan old then
      Fmt.pr "gate: baseline %s unreadable — skipping the regression gate@."
        file
    else
      let floor = old *. (1. -. (max_regress /. 100.)) in
      gate
        (Printf.sprintf "lin %.2fM >= %.2fM (baseline %.2fM - %.0f%%)"
           (lin_evps /. 1e6) (floor /. 1e6) (old /. 1e6) max_regress)
        (lin_evps >= floor));
  (match json_out with
  | None -> ()
  | Some file ->
    write_json file
      [
        ("experiment", "\"lin\"");
        ("events", string_of_int n);
        ("trials", string_of_int trials);
        ("ops", string_of_int (total (fun r -> r.Lin.ls_ops)));
        ("nodes", string_of_int (total (fun r -> r.Lin.ls_stats.Vyrd_lin.Jit.nodes)));
        ("lin_events_per_sec", jnum lin_evps);
        ("farm_view_events_per_sec", jnum (float_of_int n /. view_dt));
        ("farm_io_events_per_sec", jnum (float_of_int n /. io_dt));
        ("lin_vs_view_cost", jnum (lin_dt /. view_dt));
        ("min_evps_gate", jnum min_evps);
      ]);
  if !failures <> [] then begin
    Fmt.epr "@.lin gates failed:@.";
    List.iter (fun f -> Fmt.epr "  - %s@." f) (List.rev !failures);
    exit 1
  end;
  Fmt.pr "@.all lin gates passed@."

(* -------------------------------------------------------- cluster bench *)

module Coordinator = Vyrd_cluster.Coordinator

(* Hidden re-exec mode: one vyrdd worker process per ring member, so the
   scaling the bench measures is real multicore scaling (every in-process
   thread multiplexes domain 0 — only separate processes give each worker
   its own runtime).  The parent SIGTERMs us when the run is over. *)
let cluster_worker_main sock =
  ignore
    (Server.start
       (Server.config ~capacity:8192 ~max_sessions:64 ~idle_timeout:300.
          ~addr:(Wire.Unix_socket sock) (fun _level -> farm_shards ()))
      : Server.t);
  while true do
    Thread.delay 3600.
  done

(* The same N-session workload pushed through a coordinator fronting 1, 2,
   and 4 worker processes.  Gates (any failure exits 1):

   - every session's verdict and first-violation index identical to offline
     single-process checking, at every cluster width;
   - with >= 4 cores visible, 2 workers at least --min-speedup (default
     1.8x) faster than 1 (skipped, not failed, on smaller machines: the
     coordinator and the workers would just timeshare one core);
   - when --baseline BENCH_cluster.json is given, 2-worker throughput not
     more than --max-regress percent below the committed number. *)
let cluster_bench ?(json_out = Some "BENCH_cluster.json") ~baseline ~max_regress
    ~min_speedup ~sessions () =
  Fmt.pr "@.Cluster: coordinator fronting 1, 2, 4 vyrdd worker processes@.@.";
  let level = `View in
  (* the hotpath-scale aggregate (~1.1M events: 8 threads x 20k ops x 3
     structures) split across the sessions, so widths are compared on the
     same total stream the single-process benches drain *)
  let logs =
    Array.init sessions (fun i ->
        multi_log ~threads:8 ~ops:(max 1 (20_000 / sessions)) ~seed:(101 + i)
          ~level)
  in
  let total = Array.fold_left (fun a l -> a + Log.length l) 0 logs in
  let spec, view = composed () in
  let reference =
    Array.map (fun l -> Checker.check_indexed ~mode:`View ~view l spec) logs
  in
  let cores = Domain.recommended_domain_count () in
  Fmt.pr "%d sessions, %d events total, %d core(s) visible@.@." sessions total
    cores;
  let failures = ref [] in
  let gate name ok =
    Fmt.pr "gate: %-52s %s@." name (if ok then "ok" else "FAIL");
    if not ok then failures := name :: !failures
  in
  let run_with workers =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "vyrd-bench-cluster-%d-w%d" (Unix.getpid ()) workers)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let members =
      List.init workers (fun i ->
          let sock = Filename.concat dir (Printf.sprintf "w%d.sock" i) in
          let pid =
            Unix.create_process Sys.executable_name
              [| Sys.executable_name; "cluster-worker"; sock |]
              Unix.stdin Unix.stdout Unix.stderr
          in
          (i, sock, pid))
    in
    let coord =
      Coordinator.start
        (Coordinator.config
           ~worker_slots:(max 1 ((sessions + workers - 1) / workers))
           ~metrics:(Pmetrics.create ())
           ~addr:(Wire.Unix_socket (Filename.concat dir "vyrdc.sock"))
           ~spool_dir:dir ())
    in
    List.iter
      (fun (i, sock, _) ->
        Coordinator.attach coord ~name:(Printf.sprintf "w%d" i)
          ~addr:(Wire.Unix_socket sock))
      members;
    let outcomes = Array.make sessions None in
    let t0 = Unix.gettimeofday () in
    let threads =
      List.init sessions (fun i ->
          Thread.create
            (fun () ->
              match
                Client.submit_log ~batch_events:256
                  ~producer:(Printf.sprintf "bench-%d" i)
                  (Coordinator.addr coord) logs.(i)
              with
              | outcome -> outcomes.(i) <- Some outcome
              | exception (Client.Server_error _ | Unix.Unix_error _) -> ())
            ())
    in
    List.iter Thread.join threads;
    let dt = Unix.gettimeofday () -. t0 in
    Coordinator.stop coord;
    List.iter
      (fun (_, _, pid) ->
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      members;
    (try
       Array.iter
         (fun f ->
           try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
         (Sys.readdir dir);
       Unix.rmdir dir
     with Sys_error _ | Unix.Unix_error _ -> ());
    let agree = ref true in
    Array.iteri
      (fun i outcome ->
        let rref, ridx = reference.(i) in
        match outcome with
        | Some (Client.Checked { report; fail_index }) ->
          if
            not
              (String.equal (Report.tag report) (Report.tag rref)
              && fail_index = ridx)
          then agree := false
        | Some (Client.Spilled _) | None -> agree := false)
      outcomes;
    (dt, !agree)
  in
  Fmt.pr "%-30s %10s %12s %9s@." "configuration" "wall ms" "events/s" "speedup";
  Fmt.pr "%s@." (line 64);
  let evps dt = float_of_int total /. dt in
  let measure base workers =
    let dt, agree = run_with workers in
    Fmt.pr "%-30s %10.2f %12s %9s@."
      (Printf.sprintf "%d worker(s)" workers)
      (dt *. 1e3)
      (Fmt.str "%.2fM" (evps dt /. 1e6))
      (match base with
      | None -> "1.00x"
      | Some b -> Fmt.str "%.2fx" (b /. dt));
    gate
      (Printf.sprintf "every verdict+index = offline at %d worker(s)" workers)
      agree;
    dt
  in
  let dt1 = measure None 1 in
  let dt2 = measure (Some dt1) 2 in
  let dt4 = measure (Some dt1) 4 in
  let speedup2 = dt1 /. dt2 and speedup4 = dt1 /. dt4 in
  if cores >= 4 then
    gate
      (Printf.sprintf "2-worker speedup %.2fx >= %.2fx" speedup2 min_speedup)
      (speedup2 >= min_speedup)
  else
    Fmt.pr "gate: 2-worker speedup %.2fx >= %.2fx%s@." speedup2 min_speedup
      (Printf.sprintf " skipped (%d core(s): nothing to parallelize onto)" cores);
  (match baseline with
  | None -> ()
  | Some file ->
    let old = read_json_field file "events_per_sec_w2" in
    if Float.is_nan old then
      Fmt.pr "gate: baseline %s unreadable — skipping the regression gate@." file
    else
      let floor = old *. (1. -. (max_regress /. 100.)) in
      gate
        (Printf.sprintf
           "2-worker %.2fM ev/s >= %.2fM (baseline %.2fM - %.0f%%)"
           (evps dt2 /. 1e6) (floor /. 1e6) (old /. 1e6) max_regress)
        (evps dt2 >= floor));
  (match json_out with
  | None -> ()
  | Some file ->
    write_json file
      [
        ("experiment", "\"cluster\"");
        ("events", string_of_int total);
        ("sessions", string_of_int sessions);
        ("cores", string_of_int cores);
        ("seconds_w1", jnum dt1);
        ("seconds_w2", jnum dt2);
        ("seconds_w4", jnum dt4);
        ("events_per_sec_w1", jnum (evps dt1));
        ("events_per_sec_w2", jnum (evps dt2));
        ("events_per_sec_w4", jnum (evps dt4));
        ("speedup_w2", jnum speedup2);
        ("speedup_w4", jnum speedup4);
        ("min_speedup_gate", jnum min_speedup);
      ]);
  if !failures <> [] then begin
    Fmt.epr "@.cluster gates failed:@.";
    List.iter (fun f -> Fmt.epr "  - %s@." f) (List.rev !failures);
    exit 1
  end;
  Fmt.pr "@.all cluster gates passed@."

(* ------------------------------------------------- monitor-lane overhead *)

module Monitor = Vyrd_monitor.Monitor

(* What the temporal-monitor lane costs on the hotpath workload: the same
   ~1.1M-event composed `View drain with and without the built-in pack
   (lock reversal + resource leak) attached as a farm pass.  Gates (any
   failure exits 1):

   - verdict identical with and without the monitor pass;
   - the pass saw the whole stream and every built-in stayed clean on the
     correct workload;
   - monitor-lane overhead at most --max-overhead percent over the plain
     drain (paired trials, same two spike-discarding statistics as the
     analyze bench);
   - when --baseline BENCH_monitor.json is given, the monitored drain not
     more than --max-regress percent below the committed number.

   Also reports standalone monitor feed throughput over a `Full-level log —
   the built-in packs key on Acquire/Release events, which `View traces do
   not carry, so that row is the packs' real per-event cost. *)
let monitor_bench ?(json_out = Some "BENCH_monitor.json") ~baseline
    ~max_regress ~max_overhead ~ops () =
  Fmt.pr
    "@.Temporal monitors: farm drain with vs without the built-in pack \
     (gate: <= %.0f%% overhead)@.@."
    max_overhead;
  let level = `View in
  let log = multi_log ~threads:8 ~ops ~seed:11 ~level in
  let events = Log.snapshot log in
  let n = Array.length events in
  let passes () = [ Monitor.pass (Monitor.builtins ()) ] in
  Fmt.pr "%d events at `View level; monitors: %s@.@." n
    (String.concat ", " Monitor.builtin_names);
  let failures = ref [] in
  let gate name ok =
    Fmt.pr "gate: %-52s %s@." name (if ok then "ok" else "FAIL");
    if not ok then failures := name :: !failures
  in
  let drain ?passes () =
    let farm = Farm.start ~capacity:8192 ?passes ~level (farm_shards ()) in
    Array.iter (Farm.feed farm) events;
    Farm.finish farm
  in
  (* -- correctness: the monitor lane must not perturb the verdict --------- *)
  let plain = drain () in
  let monitored = drain ~passes:(passes ()) () in
  gate "verdict identical with and without monitors"
    (String.equal (Report.tag plain.Farm.merged)
       (Report.tag monitored.Farm.merged)
    && Farm.min_fail_index plain = Farm.min_fail_index monitored);
  gate "the monitor pass saw the whole stream"
    (monitored.Farm.analysis <> []
    && List.for_all
         (fun (s : Vyrd_analysis.Pass.summary) ->
           s.Vyrd_analysis.Pass.events = n)
         monitored.Farm.analysis);
  gate "built-ins clean on the correct workload"
    (List.for_all Vyrd_analysis.Pass.clean monitored.Farm.analysis);
  (* -- throughput: paired trials, spike-discarding (see analyze_bench) ---- *)
  let pairs = 5 in
  let plain_dt = ref infinity and mon_dt = ref infinity in
  let pair_ratio = ref infinity in
  for _ = 1 to pairs do
    let t0 = Unix.gettimeofday () in
    ignore (drain () : Farm.result);
    let p = Unix.gettimeofday () -. t0 in
    let t0 = Unix.gettimeofday () in
    ignore (drain ~passes:(passes ()) () : Farm.result);
    let m = Unix.gettimeofday () -. t0 in
    if p < !plain_dt then plain_dt := p;
    if m < !mon_dt then mon_dt := m;
    if m /. p < !pair_ratio then pair_ratio := m /. p
  done;
  let ratio = Float.min !pair_ratio (!mon_dt /. !plain_dt) in
  Fmt.pr "@.%-30s %10s %12s   (best of %d pairs)@." "configuration" "wall ms"
    "events/s" pairs;
  Fmt.pr "%s@." (line 60);
  let row label dt count =
    Fmt.pr "%-30s %10.2f %12s@." label (dt *. 1e3)
      (Fmt.str "%.2fM" (float_of_int count /. dt /. 1e6))
  in
  row "farm view drain, no monitors" !plain_dt n;
  row "farm view drain, --monitor" !mon_dt n;
  (* standalone feed cost on a lock-bearing `Full trace *)
  let full_log =
    multi_log ~threads:8 ~ops:(max 1 (ops / 10)) ~seed:3 ~level:`Full
  in
  let full_events = Log.snapshot full_log in
  let fn = Array.length full_events in
  let feed_dt = ref infinity in
  for _ = 1 to 3 do
    let ms = Monitor.builtins () in
    let t0 = Unix.gettimeofday () in
    Array.iter (fun ev -> List.iter (fun m -> Monitor.feed m ev) ms) full_events;
    List.iter (fun m -> ignore (Monitor.finish m : Monitor.verdict)) ms;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !feed_dt then feed_dt := dt
  done;
  row (Fmt.str "builtin feed, %d ev `Full" fn) !feed_dt fn;
  let overhead_pct = (ratio -. 1.) *. 100. in
  gate
    (Printf.sprintf "--monitor overhead %.1f%% <= %.0f%% (best of %d pairs)"
       overhead_pct max_overhead pairs)
    (ratio <= 1. +. (max_overhead /. 100.));
  let mon_evps = float_of_int n /. !mon_dt in
  (match baseline with
  | None -> ()
  | Some file ->
    let old = read_json_field file "farm_monitor_events_per_sec" in
    if Float.is_nan old then
      Fmt.pr "gate: baseline %s unreadable — skipping the regression gate@."
        file
    else
      let floor = old *. (1. -. (max_regress /. 100.)) in
      gate
        (Printf.sprintf
           "--monitor drain %.2fM >= %.2fM (baseline %.2fM - %.0f%%)"
           (mon_evps /. 1e6) (floor /. 1e6) (old /. 1e6) max_regress)
        (mon_evps >= floor));
  (match json_out with
  | None -> ()
  | Some file ->
    write_json file
      [
        ("experiment", "\"monitor\"");
        ("events", string_of_int n);
        ("pairs", string_of_int pairs);
        ("farm_plain_events_per_sec", jnum (float_of_int n /. !plain_dt));
        ("farm_monitor_events_per_sec", jnum mon_evps);
        ("overhead_pct", jnum overhead_pct);
        ("feed_full_events", string_of_int fn);
        ("feed_full_events_per_sec", jnum (float_of_int fn /. !feed_dt));
        ("max_overhead_pct_gate", jnum max_overhead);
      ]);
  if !failures <> [] then begin
    Fmt.epr "@.monitor gates failed:@.";
    List.iter (fun f -> Fmt.epr "  - %s@." f) (List.rev !failures);
    exit 1
  end;
  Fmt.pr "@.all monitor gates passed@."

(* ------------------------------------------------------------------ CLI *)

let all () =
  table1 ();
  table2 ();
  table3 ();
  ablation_incremental ();
  ablation_naive ();
  baseline_atomizer ();
  explore_bounds ();
  analyze_perf ();
  pipeline ();
  net_bench ();
  checkpoint_bench ();
  cluster_bench ~baseline:None ~max_regress:40. ~min_speedup:1.8 ~sessions:16 ();
  hotpath ~baseline:None ~max_regress:20. ~min_evps:1e6 ~ops:20_000 ();
  analyze_bench ~baseline:None ~max_regress:25. ~max_overhead:15. ~ops:20_000 ();
  monitor_bench ~baseline:None ~max_regress:25. ~max_overhead:15. ~ops:20_000 ();
  lin_bench ~baseline:None ~max_regress:30. ~min_evps:5e5 ~ops:20_000 ();
  mutants ~json_out:(Some "detection_matrix.json") ()

let () =
  (* hidden re-exec mode for [cluster_bench]'s worker processes; never
     returns *)
  if Array.length Sys.argv >= 3 && Sys.argv.(1) = "cluster-worker" then
    cluster_worker_main Sys.argv.(2);
  let open Cmdliner in
  let cmd name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ const ()) in
  let group =
    Cmd.group
      ~default:Term.(const all $ const ())
      (Cmd.info "vyrd-bench" ~doc:"Regenerate the paper's tables and ablations.")
      [
        cmd "table1" "Time to detection of error (Table 1)." table1;
        cmd "table2" "Overhead of logging (Table 2)." table2;
        cmd "table3" "Running time breakdown (Table 3)." table3;
        cmd "ablation-incremental" "Full vs incremental views (§6.4)."
          ablation_incremental;
        cmd "ablation-naive" "Naive serialization search vs witness (§2)."
          ablation_naive;
        cmd "baseline-atomizer" "Reduction-based atomicity vs refinement (§8)."
          baseline_atomizer;
        cmd "explore-bounds" "Bounded verification at several preemption bounds."
          explore_bounds;
        cmd "analyze-perf"
          "Offline-analyzer throughput (events/sec): happens-before race \
           detection, log lint, lock-order graph, lockset+reduction."
          analyze_perf;
        cmd "pipeline"
          "Streaming pipeline: binary-vs-text codec throughput, 1-vs-N \
           checker-domain scaling, backpressure stall time, and a large \
           bounded-memory drain with verdict equality (writes \
           BENCH_pipeline.json)."
          (fun () -> pipeline ());
        cmd "net"
          "Loopback vyrdd submit throughput vs in-process checking (writes \
           BENCH_net.json)."
          (fun () -> net_bench ());
        cmd "checkpoint"
          "Checkpointed resume: full re-check of a ~1M-event spool vs \
           resuming from the 90% checkpoint frame, with verdict-equality \
           and speedup gates (writes BENCH_checkpoint.json)."
          (fun () -> checkpoint_bench ());
        Cmd.v
          (Cmd.info "hotpath"
             ~doc:
               "Flattened feed path: differential correctness gates (indexed \
                reference oracle, farm index equality, checkpoint round-trip) \
                plus best-of-3 throughput with a >= 1M ev/s farm io-drain \
                gate and an optional baseline regression gate (writes \
                BENCH_hotpath.json).")
          Term.(
            const (fun baseline max_regress min_evps ops ->
                hotpath ~baseline ~max_regress ~min_evps ~ops ())
            $ Arg.(
                value
                & opt (some string) None
                & info [ "baseline" ] ~docv:"FILE"
                    ~doc:
                      "Committed BENCH_hotpath.json to gate against: fail if \
                       farm io drain drops more than $(b,--max-regress) \
                       percent below it.")
            $ Arg.(
                value & opt float 20.
                & info [ "max-regress" ] ~docv:"PCT"
                    ~doc:"Allowed regression vs the baseline, in percent.")
            $ Arg.(
                value & opt float 1e6
                & info [ "min-evps" ] ~docv:"EV_PER_S"
                    ~doc:"Absolute farm io-drain floor in events/second.")
            $ Arg.(
                value & opt int 20_000
                & info [ "ops" ] ~docv:"N" ~doc:"Operations per thread."));
        Cmd.v
          (Cmd.info "analyze"
             ~doc:
               "In-service analysis overhead: farm view drain with vs \
                without the level's analysis passes (lint + lock-order \
                graph) on the hotpath workload, gated at --max-overhead \
                percent, plus standalone lock-order-graph throughput and an \
                optional baseline regression gate (writes \
                BENCH_analyze.json).")
          Term.(
            const (fun baseline max_regress max_overhead ops ->
                analyze_bench ~baseline ~max_regress ~max_overhead ~ops ())
            $ Arg.(
                value
                & opt (some string) None
                & info [ "baseline" ] ~docv:"FILE"
                    ~doc:
                      "Committed BENCH_analyze.json to gate against: fail if \
                       the passes-attached drain drops more than \
                       $(b,--max-regress) percent below it.")
            $ Arg.(
                value & opt float 25.
                & info [ "max-regress" ] ~docv:"PCT"
                    ~doc:"Allowed regression vs the baseline, in percent.")
            $ Arg.(
                value & opt float 15.
                & info [ "max-overhead" ] ~docv:"PCT"
                    ~doc:
                      "Allowed analysis-lane overhead over the plain drain, \
                       in percent.")
            $ Arg.(
                value & opt int 20_000
                & info [ "ops" ] ~docv:"N" ~doc:"Operations per thread."));
        Cmd.v
          (Cmd.info "monitor"
             ~doc:
               "Temporal-monitor overhead: farm view drain with vs without \
                the built-in pack (lock reversal + resource leak) on the \
                hotpath workload, gated at --max-overhead percent with a \
                verdict-equality gate, plus standalone pack feed throughput \
                over a `Full trace and an optional baseline regression gate \
                (writes BENCH_monitor.json).")
          Term.(
            const (fun baseline max_regress max_overhead ops ->
                monitor_bench ~baseline ~max_regress ~max_overhead ~ops ())
            $ Arg.(
                value
                & opt (some string) None
                & info [ "baseline" ] ~docv:"FILE"
                    ~doc:
                      "Committed BENCH_monitor.json to gate against: fail if \
                       the monitored drain drops more than \
                       $(b,--max-regress) percent below it.")
            $ Arg.(
                value & opt float 25.
                & info [ "max-regress" ] ~docv:"PCT"
                    ~doc:"Allowed regression vs the baseline, in percent.")
            $ Arg.(
                value & opt float 15.
                & info [ "max-overhead" ] ~docv:"PCT"
                    ~doc:
                      "Allowed monitor-lane overhead over the plain drain, \
                       in percent.")
            $ Arg.(
                value & opt int 20_000
                & info [ "ops" ] ~docv:"N" ~doc:"Operations per thread."));
        Cmd.v
          (Cmd.info "lin"
             ~doc:
               "Annotation-free linearizability backend: correctness gates \
                (clean+conclusive on the correct hotpath workload, \
                refinement/lin agreement on a seeded buggy log) plus \
                best-of-3 throughput next to the farm's view and io drains, \
                with a --min-evps floor and an optional baseline regression \
                gate (writes BENCH_lin.json).")
          Term.(
            const (fun baseline max_regress min_evps ops ->
                lin_bench ~baseline ~max_regress ~min_evps ~ops ())
            $ Arg.(
                value
                & opt (some string) None
                & info [ "baseline" ] ~docv:"FILE"
                    ~doc:
                      "Committed BENCH_lin.json to gate against: fail if lin \
                       throughput drops more than $(b,--max-regress) percent \
                       below it.")
            $ Arg.(
                value & opt float 30.
                & info [ "max-regress" ] ~docv:"PCT"
                    ~doc:"Allowed regression vs the baseline, in percent.")
            $ Arg.(
                value & opt float 5e5
                & info [ "min-evps" ] ~docv:"EV_PER_S"
                    ~doc:"Absolute lin-throughput floor in events/second.")
            $ Arg.(
                value & opt int 20_000
                & info [ "ops" ] ~docv:"N" ~doc:"Operations per thread."));
        Cmd.v
          (Cmd.info "cluster"
             ~doc:
               "Coordinator scaling: the same N-session workload through 1, \
                2, and 4 vyrdd worker processes, with verdict-equality gates \
                at every width, a cores-gated 2-worker speedup floor, and an \
                optional baseline regression gate (writes \
                BENCH_cluster.json).")
          Term.(
            const (fun baseline max_regress min_speedup sessions ->
                cluster_bench ~baseline ~max_regress ~min_speedup ~sessions ())
            $ Arg.(
                value
                & opt (some string) None
                & info [ "baseline" ] ~docv:"FILE"
                    ~doc:
                      "Committed BENCH_cluster.json to gate against: fail if \
                       2-worker throughput drops more than \
                       $(b,--max-regress) percent below it.")
            $ Arg.(
                value & opt float 40.
                & info [ "max-regress" ] ~docv:"PCT"
                    ~doc:"Allowed regression vs the baseline, in percent.")
            $ Arg.(
                value & opt float 1.8
                & info [ "min-speedup" ] ~docv:"X"
                    ~doc:
                      "2-worker speedup floor over 1 worker (enforced only \
                       when >= 4 cores are visible).")
            $ Arg.(
                value & opt int 16
                & info [ "sessions" ] ~docv:"N" ~doc:"Concurrent sessions."));
        Cmd.v
          (Cmd.info "mutants"
             ~doc:
               "Seeded-mutant detection matrix: every lib/faults mutant vs \
                regime and refinement mode (ground truth for Table 1).")
          Term.(
            const (fun json -> mutants ~json_out:json ())
            $ Arg.(
                value
                & opt (some string) None
                & info [ "json" ] ~docv:"FILE" ~doc:"Also write the matrix as JSON."));
        cmd "all" "Run every experiment." all;
      ]
  in
  exit (Cmd.eval group)
