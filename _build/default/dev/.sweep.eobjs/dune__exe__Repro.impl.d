dev/repro.ml: Blink_tree Bnode Checker Coop Event Fmt Instrument List Log Prng Replay Report Repr String Vyrd Vyrd_boxwood Vyrd_sched
