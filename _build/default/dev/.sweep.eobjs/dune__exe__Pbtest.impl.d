dev/pbtest.ml: Checker Explore Fmt Instrument List Log Multiset_spec Multiset_vector Report Sched Vyrd Vyrd_multiset Vyrd_sched
