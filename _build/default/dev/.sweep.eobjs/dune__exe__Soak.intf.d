dev/soak.mli:
