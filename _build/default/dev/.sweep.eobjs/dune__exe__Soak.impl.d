dev/soak.ml: Array Checker Fmt Harness List Report String Subjects Sys Vyrd Vyrd_harness
