dev/repro.mli:
