dev/sweep.ml: Checker Coop Fmt Instrument Log Multiset_btree Multiset_spec Multiset_vector Printf Prng Report Vyrd Vyrd_boxwood Vyrd_multiset Vyrd_sched
