dev/pbtest.mli:
