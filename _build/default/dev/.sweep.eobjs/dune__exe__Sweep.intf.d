dev/sweep.mli:
