(* quick measurement: schedule-space sizes with and without preemption
   bounding on the insert || insert_pair scenario *)
open Vyrd
open Vyrd_sched
open Vyrd_multiset

let scenario ~bugs check () =
  let log = Log.create ~level:`View () in
  let finished = ref 0 in
  fun (s : Sched.t) ->
    let ctx = Instrument.make s log in
    let ms = Multiset_vector.create ~bugs ~capacity:4 ctx in
    let done_one () =
      incr finished;
      if !finished = 2 then check log
    in
    s.spawn (fun () ->
        ignore (Multiset_vector.insert ms 1);
        done_one ());
    s.spawn (fun () ->
        ignore (Multiset_vector.insert_pair ms 1 2);
        done_one ())

let () =
  let view = Multiset_vector.viewdef ~capacity:4 in
  List.iter
    (fun pb ->
      let failures = ref 0 in
      let check log =
        if
          not
            (Report.is_pass (Checker.check ~mode:`View ~view log Multiset_spec.spec))
        then incr failures
      in
      let r =
        Explore.explore ?preemption_bound:pb ~max_schedules:500_000
          (scenario ~bugs:[] check)
      in
      Fmt.pr "correct, pb=%s: %d schedules, exhausted=%b, violations=%d@."
        (match pb with None -> "inf" | Some b -> string_of_int b)
        r.Explore.schedules r.Explore.exhausted !failures)
    [ Some 0; Some 1; Some 2; Some 3; None ];
  (* buggy: violation must be reachable within small bounds *)
  List.iter
    (fun pb ->
      let failures = ref 0 in
      let check log =
        if
          not
            (Report.is_pass (Checker.check ~mode:`View ~view log Multiset_spec.spec))
        then incr failures
      in
      let r =
        Explore.explore ?preemption_bound:pb ~max_schedules:500_000
          (scenario ~bugs:[ Multiset_vector.Racy_find_slot ] check)
      in
      Fmt.pr "buggy,   pb=%s: %d schedules, exhausted=%b, violations=%d@."
        (match pb with None -> "inf" | Some b -> string_of_int b)
        r.Explore.schedules r.Explore.exhausted !failures)
    [ Some 0; Some 1; Some 2 ]
