(* robustness sweep: correct impls must pass across many seeds *)
open Vyrd
open Vyrd_sched
open Vyrd_multiset

let () =
  let fails = ref 0 in
  for seed = 0 to 400 do
    let log = Log.create ~level:`View () in
    Coop.run ~seed (fun s ->
        let ctx = Instrument.make s log in
        let ms = Multiset_vector.create ~capacity:16 ctx in
        for t = 1 to 6 do
          s.spawn (fun () ->
              let rng = Prng.create ((seed * 7919) + t) in
              for _ = 1 to 40 do
                let x = Prng.int rng 6 in
                match Prng.int rng 10 with
                | 0 | 1 | 2 -> ignore (Multiset_vector.insert ms x)
                | 3 | 4 -> ignore (Multiset_vector.insert_pair ms x (Prng.int rng 6))
                | 5 | 6 -> ignore (Multiset_vector.delete ms x)
                | 7 | 8 -> ignore (Multiset_vector.lookup ms x)
                | _ -> ignore (Multiset_vector.count ms x)
              done)
        done);
    let io = Checker.check ~mode:`Io log Multiset_spec.spec in
    let view =
      Checker.check ~mode:`View ~view:(Multiset_vector.viewdef ~capacity:16) log
        Multiset_spec.spec
    in
    if not (Report.is_pass io) then begin
      incr fails;
      Fmt.pr "seed %d io: %a@." seed Report.pp io
    end;
    if not (Report.is_pass view) then begin
      incr fails;
      Fmt.pr "seed %d view: %a@." seed Report.pp view
    end
  done;
  (* btree sweep *)
  for seed = 0 to 200 do
    let log = Log.create ~level:`View () in
    Coop.run ~seed (fun s ->
        let ctx = Instrument.make s log in
        let ms = Multiset_btree.create ctx in
        let stop = ref false in
        s.spawn (fun () -> while not !stop do Multiset_btree.compress ms; s.yield () done);
        let remaining = ref 5 in
        for t = 1 to 5 do
          s.spawn (fun () ->
              let rng = Prng.create ((seed * 31) + t) in
              for _ = 1 to 30 do
                let x = Prng.int rng 6 in
                (match Prng.int rng 10 with
                | 0 | 1 | 2 | 3 -> ignore (Multiset_btree.insert ms x)
                | 4 | 5 -> ignore (Multiset_btree.delete ms x)
                | 6 | 7 -> ignore (Multiset_btree.lookup ms x)
                | _ -> ignore (Multiset_btree.count ms x))
              done;
              decr remaining;
              if !remaining = 0 then stop := true)
        done);
    let view =
      Checker.check ~mode:`View ~view:Multiset_btree.viewdef log Multiset_spec.spec
    in
    if not (Report.is_pass view) then begin
      incr fails;
      Fmt.pr "btree seed %d view: %a@." seed Report.pp view
    end
  done;
  (* blink tree sweep *)
  let module BW = Vyrd_boxwood in
  for seed = 0 to 200 do
    let log = Log.create ~level:`View () in
    Coop.run ~seed (fun s ->
        let ctx = Instrument.make s log in
        let tree = BW.Blink_tree.create ~order:2 (BW.Bnode.mem_store ctx) ctx in
        let stop = ref false in
        s.spawn (fun () ->
            while not !stop do
              BW.Blink_tree.compress tree;
              s.yield ()
            done);
        let remaining = ref 5 in
        for t = 1 to 5 do
          s.spawn (fun () ->
              let rng = Prng.create ((seed * 2357) + t) in
              for _ = 1 to 40 do
                let k = Prng.int rng 20 in
                match Prng.int rng 10 with
                | 0 | 1 | 2 | 3 -> BW.Blink_tree.insert tree k (Prng.int rng 1000)
                | 4 | 5 -> ignore (BW.Blink_tree.delete tree k)
                | _ -> ignore (BW.Blink_tree.lookup tree k)
              done;
              decr remaining;
              if !remaining = 0 then stop := true)
        done);
    let view =
      Checker.check ~mode:`View ~view:BW.Blink_tree.viewdef log BW.Blink_tree.spec
    in
    if not (Report.is_pass view) then begin
      incr fails;
      Fmt.pr "blink seed %d view: %a@." seed Report.pp view
    end;
    let io = Checker.check ~mode:`Io log BW.Blink_tree.spec in
    if not (Report.is_pass io) then begin
      incr fails;
      Fmt.pr "blink seed %d io: %a@." seed Report.pp io
    end
  done;
  if !fails = 0 then print_endline "SWEEP CLEAN" else Printf.printf "%d failures\n" !fails
