(* debug: reproduce the order-2 compress view violation *)
open Vyrd
open Vyrd_sched
open Vyrd_boxwood

let () =
  let seed = 0 in
  let log = Log.create ~level:`View () in
  Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let tree = Blink_tree.create ~order:2 (Bnode.mem_store ctx) ctx in
      let stop = ref false in
      s.spawn (fun () ->
          while not !stop do
            Blink_tree.compress tree;
            s.yield ()
          done);
      let remaining = ref 5 in
      for t = 1 to 5 do
        s.spawn (fun () ->
            let rng = Prng.create ((seed * 2357) + t) in
            for _ = 1 to 25 do
              let k = Prng.int rng 20 in
              match Prng.int rng 10 with
              | 0 | 1 | 2 | 3 -> Blink_tree.insert tree k (Prng.int rng 1000)
              | 4 | 5 -> ignore (Blink_tree.delete tree k)
              | _ -> ignore (Blink_tree.lookup tree k)
            done;
            decr remaining;
            if !remaining = 0 then stop := true)
      done);
  let report = Checker.check ~mode:`View ~view:Blink_tree.viewdef log Blink_tree.spec in
  Fmt.pr "%a@." Report.pp report;
  (* replay events up to the failing commit and dump every node *)
  let failing_commit = 16 in
  let replay = Replay.create () in
  let commits = ref 0 in
  (try
     Log.iter
       (fun ev ->
         (match ev with
         | Event.Write { tid; var; value } -> Replay.write replay tid var value
         | Event.Block_begin { tid } -> Replay.block_begin replay tid
         | Event.Block_end { tid } -> Replay.block_end replay tid
         | Event.Commit { tid } ->
           Replay.commit replay tid;
           incr commits
         | _ -> ());
         if !commits >= failing_commit then raise Exit)
       log
   with Exit -> ());
  Fmt.pr "--- shadow state after commit %d ---@." !commits;
  (match Replay.lookup replay "tree.root" with
  | Some r -> Fmt.pr "root: %a@." Repr.pp r
  | None -> Fmt.pr "no root@.");
  Replay.fold
    (fun var v () ->
      if String.length var > 4 && String.sub var 0 4 = "node" then
        Fmt.pr "%s = %a@." var Repr.pp v)
    replay ();
  (* also print the event log tail *)
  Fmt.pr "--- events ---@.";
  List.iteri (fun i ev -> Fmt.pr "%3d %a@." i Event.pp ev) (Log.events log)
