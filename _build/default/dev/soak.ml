(* Long randomized campaign across every subject: correct variants must
   pass, buggy variants are swept until detection; prints a summary table.
   Development/release tool — not part of the test suite because of its
   runtime.

     dune exec dev/soak.exe [seeds-per-config]
*)

open Vyrd
open Vyrd_harness

let () =
  let seeds = try int_of_string Sys.argv.(1) with _ -> 100 in
  let any_failure = ref false in
  Fmt.pr "soak: %d seeds per configuration@.@." seeds;
  Fmt.pr "%-22s %12s %12s %14s %14s@." "subject" "correct io" "correct view"
    "bug seen (io)" "bug seen (view)";
  Fmt.pr "%s@." (String.make 80 '-');
  List.iter
    (fun (s : Subjects.t) ->
      let correct_io = ref 0 and correct_view = ref 0 in
      let bug_io = ref 0 and bug_view = ref 0 in
      for seed = 0 to seeds - 1 do
        let cfg =
          { Harness.default with threads = 5; ops_per_thread = 30; key_pool = 10;
            key_range = 16; seed }
        in
        let log = Harness.run cfg (s.build ~bug:false) in
        let io = Checker.check ~mode:`Io log s.spec in
        let view =
          Checker.check ~mode:`View ~view:s.view ~invariants:s.invariants log s.spec
        in
        if Report.is_pass io then incr correct_io
        else begin
          any_failure := true;
          Fmt.pr "!! %s seed %d io: %a@." s.name seed Report.pp io
        end;
        if Report.is_pass view then incr correct_view
        else begin
          any_failure := true;
          Fmt.pr "!! %s seed %d view: %a@." s.name seed Report.pp view
        end;
        let blog = Harness.run cfg (s.build ~bug:true) in
        if not (Report.is_pass (Checker.check ~mode:`Io blog s.spec)) then incr bug_io;
        if
          not
            (Report.is_pass
               (Checker.check ~mode:`View ~view:s.view ~invariants:s.invariants blog
                  s.spec))
        then incr bug_view
      done;
      Fmt.pr "%-22s %9d/%d %9d/%d %11d/%d %11d/%d@." s.name !correct_io seeds
        !correct_view seeds !bug_io seeds !bug_view seeds)
    Subjects.all;
  if !any_failure then begin
    Fmt.pr "@.SOAK FAILED@.";
    exit 1
  end
  else Fmt.pr "@.SOAK CLEAN@."
