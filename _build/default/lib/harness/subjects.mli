(** The benchmark subjects of the paper's evaluation (§7, Tables 1–3): one
    entry per program, each with its specification, its [viewI] definition,
    its random-operation mix, and its injectable bug. *)

type t = {
  name : string;  (** as it appears in the paper's tables *)
  bug_description : string;  (** Table 1's "error" column *)
  spec : Vyrd.Spec.t;
  view : Vyrd.View.t;
  invariants : Vyrd.Checker.invariant list;  (** extra runtime invariants (§7.2.1) *)
  build : bug:bool -> Vyrd.Instrument.ctx -> Harness.built;
}

val multiset_vector : t
val multiset_btree : t
val jvector : t
val string_buffer : t
val blink_tree : t
val cache : t
val scanfs : t

(** All subjects, in the paper's Table 1 order (plus ScanFS). *)
val all : t list

(** @raise Not_found for unknown names. *)
val find : string -> t
