lib/harness/harness.mli: Vyrd Vyrd_sched
