lib/harness/subjects.mli: Harness Vyrd
