lib/harness/harness.ml: Array Instrument Log Vyrd Vyrd_sched
