open Vyrd
module Prng = Vyrd_sched.Prng

type t = {
  name : string;
  bug_description : string;
  spec : Spec.t;
  view : View.t;
  invariants : Checker.invariant list;
  build : bug:bool -> Instrument.ctx -> Harness.built;
}

(* --- Multiset-Vector ---------------------------------------------------- *)

let ms_vector_capacity = 32

let multiset_vector =
  let open Vyrd_multiset in
  {
    name = "Multiset-Vector";
    bug_description = "Moving acquire in FindSlot";
    spec = Multiset_spec.spec;
    view = Multiset_vector.viewdef ~capacity:ms_vector_capacity;
    invariants = [];
    build =
      (fun ~bug ctx ->
        let bugs = if bug then [ Multiset_vector.Racy_find_slot ] else [] in
        let ms = Multiset_vector.create ~bugs ~capacity:ms_vector_capacity ctx in
        let random_op rng key =
          match Prng.int rng 10 with
          | 0 | 1 | 2 -> ignore (Multiset_vector.insert ms key)
          | 3 | 4 -> ignore (Multiset_vector.insert_pair ms key (key + 1))
          | 5 | 6 -> ignore (Multiset_vector.delete ms key)
          | 7 | 8 -> ignore (Multiset_vector.lookup ms key)
          | _ -> ignore (Multiset_vector.count ms key)
        in
        { Harness.random_op; daemon = None });
  }

(* --- Multiset-BinaryTree ------------------------------------------------- *)

let multiset_btree =
  let open Vyrd_multiset in
  {
    name = "Multiset-BinaryTree";
    bug_description = "Unlocking parent before insertion";
    spec = Multiset_spec.spec;
    view = Multiset_btree.viewdef;
    invariants = [];
    build =
      (fun ~bug ctx ->
        let bugs = if bug then [ Multiset_btree.Unlock_parent_early ] else [] in
        let ms = Multiset_btree.create ~bugs ctx in
        let random_op rng key =
          match Prng.int rng 10 with
          | 0 | 1 | 2 | 3 -> ignore (Multiset_btree.insert ms key)
          | 4 | 5 -> ignore (Multiset_btree.delete ms key)
          | 6 | 7 -> ignore (Multiset_btree.lookup ms key)
          | _ -> ignore (Multiset_btree.count ms key)
        in
        { Harness.random_op; daemon = Some (fun () -> Multiset_btree.compress ms) });
  }

(* --- java.util.Vector ----------------------------------------------------- *)

let jvector_capacity = 64

let jvector =
  let open Vyrd_jlib in
  {
    name = "java.util.Vector";
    bug_description = "Taking length non-atomically in lastIndexOf()";
    spec = Vector.spec;
    view = Vector.viewdef ~capacity:jvector_capacity;
    invariants = [];
    build =
      (fun ~bug ctx ->
        let bugs = if bug then [ Vector.Non_atomic_last_index_of ] else [] in
        let v = Vector.create ~bugs ~capacity:jvector_capacity ctx in
        let random_op rng key =
          try
            match Prng.int rng 13 with
            | 0 | 1 | 2 -> ignore (Vector.add v key)
            | 3 | 4 -> ignore (Vector.remove_last v)
            | 5 -> ignore (Vector.get v (Prng.int rng 8))
            | 6 -> ignore (Vector.size v)
            | 7 -> ignore (Vector.contains v key)
            | 8 -> ignore (Vector.insert_at v (Prng.int rng 6) key)
            | 9 -> ignore (Vector.remove_at v (Prng.int rng 6))
            | 10 -> ignore (Vector.set v (Prng.int rng 6) key)
            | 11 -> ignore (Vector.index_of v key)
            | _ -> ignore (Vector.last_index_of v key)
          with Vector.Index_out_of_bounds -> ()
        in
        { Harness.random_op; daemon = None });
  }

(* --- java.util.StringBuffer ----------------------------------------------- *)

let sb_buffers = 3
let sb_capacity = 64

let string_buffer =
  let open Vyrd_jlib in
  {
    name = "java.util.StringBuffer";
    bug_description = "Copying from an unprotected StringBuffer";
    spec = String_buffer.spec ~buffers:sb_buffers;
    view = String_buffer.viewdef ~buffers:sb_buffers ~buf_capacity:sb_capacity;
    invariants = [];
    build =
      (fun ~bug ctx ->
        let bugs = if bug then [ String_buffer.Unprotected_append_source ] else [] in
        let p =
          String_buffer.create ~bugs ~buffers:sb_buffers ~buf_capacity:sb_capacity ctx
        in
        let random_op rng key =
          let b = key mod sb_buffers in
          match Prng.int rng 13 with
          | 0 | 1 | 2 ->
            ignore
              (String_buffer.append_str p b
                 (String.make (1 + Prng.int rng 3) (Char.chr (97 + (key mod 26)))))
          | 3 | 4 | 5 ->
            ignore (String_buffer.append_sb p ~dst:b ~src:(Prng.int rng sb_buffers))
          | 6 -> ignore (String_buffer.truncate p b (Prng.int rng 4))
          | 7 | 8 -> ignore (String_buffer.to_string p b)
          | 9 -> ignore (String_buffer.set_char p b (Prng.int rng 5) 'q')
          | 10 ->
            ignore
              (String_buffer.delete_range p b ~pos:(Prng.int rng 4)
                 ~len:(Prng.int rng 3))
          | 11 -> ignore (String_buffer.char_at p b (Prng.int rng 6))
          | _ -> ignore (String_buffer.length p b)
        in
        { Harness.random_op; daemon = None });
  }

(* --- BLinkTree ------------------------------------------------------------ *)

let blink_tree =
  let open Vyrd_boxwood in
  {
    name = "BLinkTree";
    bug_description = "Allowing duplicated data nodes";
    spec = Blink_tree.spec;
    view = Blink_tree.viewdef;
    invariants = [];
    build =
      (fun ~bug ctx ->
        let bugs = if bug then [ Blink_tree.Duplicate_data_nodes ] else [] in
        let tree = Blink_tree.create ~bugs ~order:4 (Bnode.mem_store ctx) ctx in
        let random_op rng key =
          match Prng.int rng 10 with
          | 0 | 1 | 2 | 3 -> Blink_tree.insert tree key (Prng.int rng 1000)
          | 4 | 5 -> ignore (Blink_tree.delete tree key)
          | _ -> ignore (Blink_tree.lookup tree key)
        in
        { Harness.random_op; daemon = Some (fun () -> Blink_tree.compress tree) });
  }

(* --- Cache ----------------------------------------------------------------- *)

let cache_chunks = 8
let cache_buf_size = 8

let cache =
  let open Vyrd_boxwood in
  {
    name = "Cache";
    bug_description = "Writing an unprotected dirty cache entry";
    spec = Cache.spec ~chunks:cache_chunks;
    view = Cache.viewdef ~chunks:cache_chunks ~buf_size:cache_buf_size;
    invariants =
      [ Cache.invariant_clean_matches_chunk ~chunks:cache_chunks ~buf_size:cache_buf_size ];
    build =
      (fun ~bug ctx ->
        let bugs = if bug then [ Cache.Unprotected_dirty_copy ] else [] in
        let cm = Chunk_manager.create ~chunks:cache_chunks ctx in
        let c = Cache.create ~bugs ~buf_size:cache_buf_size ctx cm in
        let payload rng key =
          String.init cache_buf_size (fun i ->
              Char.chr (97 + ((key + i + Prng.int rng 26) mod 26)))
        in
        (* write-heavy mix: the paper's point is that corrupted state can
           sit in the store long before any read exposes it *)
        let random_op rng key =
          let h = key mod cache_chunks in
          match Prng.int rng 10 with
          | 0 | 1 | 2 | 3 | 4 | 5 -> Cache.write c h (payload rng key)
          | 6 -> ignore (Cache.read c h)
          | _ -> Cache.evict c h
        in
        { Harness.random_op; daemon = Some (fun () -> Cache.flush c) });
  }

(* --- ScanFS ----------------------------------------------------------------- *)

let fs_disk_blocks = 24
let fs_names = [| "alpha"; "beta"; "gamma"; "delta"; "epsilon" |]

let scanfs =
  let open Vyrd_scanfs in
  {
    name = "ScanFS";
    bug_description = "Writing an unprotected dirty cache block";
    spec = Scanfs.spec;
    view = Scanfs.viewdef;
    invariants = [ Scanfs.invariant_clean_matches_disk ~disk_blocks:fs_disk_blocks ];
    build =
      (fun ~bug ctx ->
        let bugs = if bug then [ Scanfs.Unprotected_dirty_copy ] else [] in
        let fs = Scanfs.create_fs ~bugs ~disk_blocks:fs_disk_blocks ctx in
        let payload rng key =
          String.init
            (1 + Prng.int rng Scanfs.file_size)
            (fun i -> Char.chr (97 + ((key + i) mod 26)))
        in
        let random_op rng key =
          let name = fs_names.(key mod Array.length fs_names) in
          match Prng.int rng 12 with
          | 0 | 1 -> ignore (Scanfs.create fs name)
          | 2 | 3 | 4 -> ignore (Scanfs.write fs name (payload rng key))
          | 5 | 6 -> ignore (Scanfs.read fs name)
          | 7 -> ignore (Scanfs.exists fs name)
          | 8 -> ignore (Scanfs.delete fs name)
          | 9 -> ignore (Scanfs.append fs name (String.make (1 + Prng.int rng 3) 'y'))
          | 10 ->
            ignore
              (Scanfs.rename fs
                 ~src:fs_names.(Prng.int rng (Array.length fs_names))
                 ~dst:fs_names.(Prng.int rng (Array.length fs_names)))
          | _ -> Scanfs.evict fs (Prng.int rng fs_disk_blocks)
        in
        { Harness.random_op; daemon = Some (fun () -> Scanfs.sync fs) });
  }

let all =
  [ multiset_vector; multiset_btree; jvector; string_buffer; blink_tree; cache; scanfs ]

let find name = List.find (fun s -> s.name = name) all
