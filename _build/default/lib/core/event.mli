(** Log events.

    The instrumented implementation records these during execution (paper
    §4.2, §5.1); the verification thread replays them.  Call, return and
    commit actions support I/O refinement; writes and commit-block brackets
    additionally support view refinement; reads and lock events are recorded
    only at the [`Full] level for the reduction (Atomizer-style) baseline. *)

type t =
  | Call of { tid : Vyrd_sched.Tid.t; mid : string; args : Repr.t list }
      (** invocation of public method [mid] *)
  | Return of { tid : Vyrd_sched.Tid.t; mid : string; value : Repr.t }
  | Commit of { tid : Vyrd_sched.Tid.t }
      (** the commit action of [tid]'s currently executing method *)
  | Write of { tid : Vyrd_sched.Tid.t; var : string; value : Repr.t }
      (** update of a shared variable in [supp(view)] *)
  | Block_begin of { tid : Vyrd_sched.Tid.t }  (** start of a commit block (§5.2) *)
  | Block_end of { tid : Vyrd_sched.Tid.t }
  | Read of { tid : Vyrd_sched.Tid.t; var : string }
  | Acquire of { tid : Vyrd_sched.Tid.t; lock : string }
  | Release of { tid : Vyrd_sched.Tid.t; lock : string }

val tid : t -> Vyrd_sched.Tid.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** One event per line; inverse of {!of_line}. *)
val to_line : t -> string

(** @raise Repr.Parse_error on malformed input. *)
val of_line : string -> t
