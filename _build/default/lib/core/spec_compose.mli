(** Compositional specifications: check several independent data structures
    that share one log in a single refinement run.

    The paper verifies Boxwood modularly — Cache+Chunk Manager separately
    from the B-link tree (§7.2).  Composition is the complementary tool:
    when two structures are exercised by the same program, the product
    specification drives both at once.  Method-name spaces must be disjoint
    (each method is routed to the component that knows it), and the
    composite view is the {!View.Pair} of the components' views. *)

(** [pair a b] is the product specification.
    @raise Invalid_argument at checking time for methods neither component
    knows. *)
val pair : Spec.t -> Spec.t -> Spec.t

(** [pair_views va vb] is the matching implementation-view composition —
    the components' variable spaces must be disjoint. *)
val pair_views : View.t -> View.t -> View.t
