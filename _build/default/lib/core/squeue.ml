type 'a t = { q : 'a Queue.t; lock : Mutex.t; nonempty : Condition.t }

let create () = { q = Queue.create (); lock = Mutex.create (); nonempty = Condition.create () }

let push t x =
  Mutex.lock t.lock;
  Queue.push x t.q;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

let pop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.q do
    Condition.wait t.nonempty t.lock
  done;
  let x = Queue.pop t.q in
  Mutex.unlock t.lock;
  x

let length t =
  Mutex.lock t.lock;
  let n = Queue.length t.q in
  Mutex.unlock t.lock;
  n
