(** Atomized implementations as specifications (paper §4.4).

    When no separate specification exists, a sequential ("atomized")
    interpretation of the implementation serves as one: methods run one at a
    time, take the observed return value as an extra input, and compute the
    new abstract state.  This adapter packages such an interpretation as a
    {!Spec.S} module; [copy] provides the state snapshots the checker needs
    for observer windows. *)

type 'impl ops = {
  az_name : string;
  az_create : unit -> 'impl;
  az_copy : 'impl -> 'impl;
  az_kind : string -> Spec.kind;
  az_apply : 'impl -> mid:string -> args:Repr.t list -> ret:Repr.t -> (unit, string) result;
      (** mutate [impl] in place according to the atomized method *)
  az_observe : 'impl -> mid:string -> args:Repr.t list -> ret:Repr.t -> bool;
  az_view : 'impl -> Repr.t;
}

val spec : 'impl ops -> Spec.t
