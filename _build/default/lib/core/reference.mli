(** Reference refinement checker — a direct, clarity-first transcription of
    the paper's definitions (§4, §5), used as a test oracle.

    Unlike {!Checker}, which resolves everything incrementally in one pass,
    this implementation works in whole phases over a complete log:

    + match calls and returns into method executions and collect the commit
      actions (rejecting ill-formed logs);
    + sort committed executions by commit position — the witness
      interleaving — and fold the specification over it;
    + for view refinement, rebuild the shadow state {e from scratch} for
      every commit prefix and compare [viewI] with [viewS];
    + validate every non-committing execution against each specification
      state in its window.

    It is quadratic and allocation-happy by design; its only job is to be
    obviously faithful to the paper so the fast checker can be validated
    against it ([test/test_oracle.ml]). *)

(** [check ?view log spec] returns [Ok ()] or a description of the first
    problem found (phase order, not log order — agreement with {!Checker}
    is on pass/fail only). *)
val check : ?view:View.t -> Log.t -> Spec.t -> (unit, string) result

(** Convenience: agreement on the pass/fail verdict with a {!Checker} run
    in the same mode. *)
val agrees_with_checker : ?view:View.t -> Log.t -> Spec.t -> bool
