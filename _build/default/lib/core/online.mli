(** Online refinement checking (paper §4.2, Table 3).

    [start log spec] subscribes to [log] and spawns a verification domain
    that feeds every subsequently appended event to a {!Checker.t}
    concurrently with the instrumented program, mirroring the paper's
    separate verification thread reading the log tail.

    Call {!finish} after the program completes: it closes the stream, joins
    the verifier and returns the report. *)

type t

val start : ?mode:Checker.mode -> ?view:View.t -> Log.t -> Spec.t -> t
val finish : t -> Report.t
