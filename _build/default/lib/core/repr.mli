(** Universal value representation.

    Everything that crosses the instrumentation boundary — method arguments,
    return values, logged shared-variable contents, views — is encoded as a
    {!t}.  This plays the role of the .NET binary serialization used by the
    original VYRD tool (§6.1): values survive a round trip through the log
    and can be compared structurally by the verification thread.

    Values contain no functions or cycles, so structural equality and
    [Stdlib.compare] are total and meaningful. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Conveniences} *)

val unit : t
val bool : bool -> t
val int : int -> t
val str : string -> t
val pair : t -> t -> t
val list : t list -> t

(** Bytes are stored as an immutable string copy. *)
val of_bytes : bytes -> t

(** Method outcome conventions used throughout the substrates: mirrors the
    paper's [success] / [failure] return values. *)
val success : t

val failure : t
val is_success : t -> bool

(** [sorted_list vs] builds a canonical set/multiset representation: the
    elements in nondecreasing order.  Views use this so that structurally
    equal abstract states compare equal. *)
val sorted_list : t list -> t

(** {1 Textual serialization}

    A small s-expression-like grammar:
    [u] (unit), [t]/[f] (booleans), decimal integers, double-quoted strings
    with escapes, [(P v v)] pairs and [(L v ...)] lists. *)

val to_text : t -> string

(** [of_text s] parses a value back.
    @raise Parse_error on malformed input. *)
val of_text : string -> t

exception Parse_error of string

(** [of_text_sub s pos] parses one value starting at [pos]; returns the value
    and the first position after it (used by the log parser). *)
val of_text_sub : string -> int -> t * int
