module Tid = Vyrd_sched.Tid

type exec = {
  x_tid : Tid.t;
  x_mid : string;
  x_args : Repr.t list;
  x_ret : Repr.t;
  x_kind : Spec.kind;
  x_call_at : int;
  x_ret_at : int;
  x_commit_at : int option;  (* log index of the commit action, if any *)
}

let ( let* ) = Result.bind
let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

(* Phase 1: structure the log into method executions (§3.2 well-formedness
   and the §4.1 commit-annotation rules). *)
let executions (module Sp : Spec.S) events =
  let open_calls : (Tid.t, string * Repr.t list * int * int option) Hashtbl.t =
    Hashtbl.create 16
  in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | ev :: rest -> (
      match ev with
      | Event.Call { tid; mid; args } ->
        if Hashtbl.mem open_calls tid then
          fail "event %d: %s calls %s inside another execution" i
            (Tid.to_string tid) mid
        else (
          match Sp.kind mid with
          | _ ->
            Hashtbl.replace open_calls tid (mid, args, i, None);
            go (i + 1) acc rest
          | exception Invalid_argument m -> Error m)
      | Event.Commit { tid } -> (
        match Hashtbl.find_opt open_calls tid with
        | None -> fail "event %d: %s commits outside any execution" i (Tid.to_string tid)
        | Some (mid, _, _, Some _) ->
          fail "event %d: second commit in %s's execution of %s" i (Tid.to_string tid)
            mid
        | Some (mid, args, call_at, None) ->
          if Sp.kind mid = Spec.Observer then
            fail "event %d: observer %s carries a commit annotation" i mid
          else begin
            Hashtbl.replace open_calls tid (mid, args, call_at, Some i);
            go (i + 1) acc rest
          end)
      | Event.Return { tid; mid; value } -> (
        match Hashtbl.find_opt open_calls tid with
        | None ->
          fail "event %d: %s returns from %s without a call" i (Tid.to_string tid) mid
        | Some (mid', _, _, _) when mid' <> mid ->
          fail "event %d: %s returns from %s while executing %s" i (Tid.to_string tid)
            mid mid'
        | Some (_, args, call_at, commit_at) ->
          Hashtbl.remove open_calls tid;
          let x =
            { x_tid = tid; x_mid = mid; x_args = args; x_ret = value;
              x_kind = Sp.kind mid; x_call_at = call_at; x_ret_at = i;
              x_commit_at = commit_at }
          in
          go (i + 1) (x :: acc) rest)
      | Event.Write _ | Event.Block_begin _ | Event.Block_end _ | Event.Read _
      | Event.Acquire _ | Event.Release _ -> go (i + 1) acc rest)
  in
  go 0 [] events

(* The shadow state after the first [upto] events, rebuilt from scratch
   (exclusive bound). *)
let shadow_at events ~upto =
  let replay = Replay.create () in
  List.iteri
    (fun i ev ->
      if i < upto then
        match ev with
        | Event.Write { tid; var; value } -> Replay.write replay tid var value
        | Event.Block_begin { tid } -> Replay.block_begin replay tid
        | Event.Block_end { tid } -> Replay.block_end replay tid
        | Event.Commit { tid } -> Replay.commit replay tid
        | _ -> ())
    events;
  replay

let check ?view log spec =
  let module Sp = (val spec : Spec.S) in
  let events = Log.events log in
  let* execs = executions (module Sp) events in
  let committed =
    List.filter (fun x -> x.x_commit_at <> None) execs
    |> List.sort (fun a b -> compare a.x_commit_at b.x_commit_at)
  in
  (* Phase 2: fold the specification along the witness interleaving,
     checking viewI = viewS at every commit when a view is given. *)
  let* states =
    (* states.(i) = state after i commits; returned in reverse fold order *)
    List.fold_left
      (fun acc x ->
        let* states = acc in
        let current = List.hd states in
        match Sp.apply current ~mid:x.x_mid ~args:x.x_args ~ret:x.x_ret with
        | Error reason ->
          fail "commit of %s %s: %s" (Tid.to_string x.x_tid) x.x_mid reason
        | Ok next ->
          let next = Sp.snapshot next in
          let* () =
            match view with
            | None -> Ok ()
            | Some v ->
              let commit_at = Option.get x.x_commit_at in
              let replay =
                (* include the commit event itself so the committing
                   thread's block is published *)
                shadow_at events ~upto:(commit_at + 1)
              in
              let view_i = View.recompute (View.make_eval v) replay in
              let view_s = Sp.view next in
              if Repr.equal view_i view_s then Ok ()
              else
                fail "view mismatch at commit of %s %s: viewI %s, viewS %s"
                  (Tid.to_string x.x_tid) x.x_mid (Repr.to_string view_i)
                  (Repr.to_string view_s)
          in
          Ok (next :: states))
      (Ok [ Sp.snapshot (Sp.init ()) ])
      committed
  in
  let states = Array.of_list (List.rev states) in
  (* commit ordinal of the i-th committed execution = i + 1; map a log
     position to the number of commits at or before it *)
  let commits_before pos =
    List.length (List.filter (fun x -> Option.get x.x_commit_at < pos) committed)
  in
  (* Phase 3: window checks for observers and non-committing executions. *)
  let check_window x =
    let lo = commits_before x.x_call_at in
    let hi = commits_before x.x_ret_at in
    let rec any i =
      i <= hi
      && (Sp.observe states.(i) ~mid:x.x_mid ~args:x.x_args ~ret:x.x_ret
         || any (i + 1))
    in
    if any lo then Ok ()
    else
      fail "no state in window [%d..%d] admits %s %s -> %s" lo hi
        (Tid.to_string x.x_tid) x.x_mid (Repr.to_string x.x_ret)
  in
  List.fold_left
    (fun acc x ->
      let* () = acc in
      if x.x_commit_at = None then check_window x else Ok ())
    (Ok ()) execs

let agrees_with_checker ?view log spec =
  let reference = Result.is_ok (check ?view log spec) in
  let fast =
    let mode = match view with None -> `Io | Some _ -> `View in
    Report.is_pass (Checker.check ~mode ?view log spec)
  in
  reference = fast
