lib/core/squeue.mli:
