lib/core/online.ml: Checker Domain Event Log Report Squeue
