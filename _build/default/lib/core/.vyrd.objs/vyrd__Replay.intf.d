lib/core/replay.mli: Repr Vyrd_sched
