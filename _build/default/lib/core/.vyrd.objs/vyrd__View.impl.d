lib/core/view.ml: Hashtbl List Replay Repr
