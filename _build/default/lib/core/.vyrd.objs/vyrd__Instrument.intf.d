lib/core/instrument.mli: Log Repr Vyrd_sched
