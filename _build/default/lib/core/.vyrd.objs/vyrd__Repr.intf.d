lib/core/repr.mli: Format
