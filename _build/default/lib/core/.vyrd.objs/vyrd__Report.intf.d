lib/core/report.mli: Event Format Repr Vyrd_sched
