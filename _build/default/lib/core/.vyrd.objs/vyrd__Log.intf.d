lib/core/log.mli: Event
