lib/core/online.mli: Checker Log Report Spec View
