lib/core/log.ml: Event Fun List Mutex String Vyrd_sched
