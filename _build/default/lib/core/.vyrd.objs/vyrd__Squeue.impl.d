lib/core/squeue.ml: Condition Mutex Queue
