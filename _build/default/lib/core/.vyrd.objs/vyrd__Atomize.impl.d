lib/core/atomize.ml: Repr Spec
