lib/core/event.ml: Fmt Printf Repr String Vyrd_sched
