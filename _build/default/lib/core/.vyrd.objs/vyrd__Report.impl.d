lib/core/report.ml: Event Fmt Repr Vyrd_sched
