lib/core/repr.ml: Buffer Bytes Char Fmt List Printf Stdlib String
