lib/core/timeline.ml: Buffer Event Fmt Hashtbl List Log Printf Repr String Vyrd_sched
