lib/core/spec.ml: Fmt Repr
