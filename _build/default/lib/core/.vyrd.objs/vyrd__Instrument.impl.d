lib/core/instrument.ml: Event Log Repr Vyrd_sched
