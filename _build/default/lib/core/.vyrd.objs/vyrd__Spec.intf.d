lib/core/spec.mli: Format Repr
