lib/core/timeline.mli: Event Log
