lib/core/spec_compose.ml: Repr Result Spec View
