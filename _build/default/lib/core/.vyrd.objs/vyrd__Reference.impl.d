lib/core/reference.ml: Array Checker Event Hashtbl List Log Option Printf Replay Report Repr Result Spec View Vyrd_sched
