lib/core/atomize.mli: Repr Spec
