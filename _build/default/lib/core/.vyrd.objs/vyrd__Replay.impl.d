lib/core/replay.ml: Hashtbl Repr Vyrd_sched
