lib/core/event.mli: Format Repr Vyrd_sched
