lib/core/reference.mli: Log Spec View
