lib/core/view.mli: Replay Repr
