lib/core/checker.mli: Event Log Report Spec View
