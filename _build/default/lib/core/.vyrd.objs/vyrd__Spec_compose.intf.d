lib/core/spec_compose.mli: Spec View
