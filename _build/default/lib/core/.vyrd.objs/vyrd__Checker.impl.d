lib/core/checker.ml: Event Hashtbl List Log Option Printf Queue Replay Report Repr Spec View Vyrd_sched
