module Tid = Vyrd_sched.Tid

type t =
  | Call of { tid : Tid.t; mid : string; args : Repr.t list }
  | Return of { tid : Tid.t; mid : string; value : Repr.t }
  | Commit of { tid : Tid.t }
  | Write of { tid : Tid.t; var : string; value : Repr.t }
  | Block_begin of { tid : Tid.t }
  | Block_end of { tid : Tid.t }
  | Read of { tid : Tid.t; var : string }
  | Acquire of { tid : Tid.t; lock : string }
  | Release of { tid : Tid.t; lock : string }

let tid = function
  | Call { tid; _ }
  | Return { tid; _ }
  | Commit { tid }
  | Write { tid; _ }
  | Block_begin { tid }
  | Block_end { tid }
  | Read { tid; _ }
  | Acquire { tid; _ }
  | Release { tid; _ } -> tid

let equal = ( = )

let pp ppf = function
  | Call { tid; mid; args } ->
    Fmt.pf ppf "%s: call %s(%a)" (Tid.to_string tid) mid
      Fmt.(list ~sep:comma Repr.pp)
      args
  | Return { tid; mid; value } ->
    Fmt.pf ppf "%s: ret %s -> %a" (Tid.to_string tid) mid Repr.pp value
  | Commit { tid } -> Fmt.pf ppf "%s: commit" (Tid.to_string tid)
  | Write { tid; var; value } ->
    Fmt.pf ppf "%s: write %s := %a" (Tid.to_string tid) var Repr.pp value
  | Block_begin { tid } -> Fmt.pf ppf "%s: block-begin" (Tid.to_string tid)
  | Block_end { tid } -> Fmt.pf ppf "%s: block-end" (Tid.to_string tid)
  | Read { tid; var } -> Fmt.pf ppf "%s: read %s" (Tid.to_string tid) var
  | Acquire { tid; lock } -> Fmt.pf ppf "%s: acquire %s" (Tid.to_string tid) lock
  | Release { tid; lock } -> Fmt.pf ppf "%s: release %s" (Tid.to_string tid) lock

let to_line ev =
  let name s = Repr.to_text (Repr.Str s) in
  match ev with
  | Call { tid; mid; args } ->
    Printf.sprintf "call %d %s %s" tid (name mid) (Repr.to_text (Repr.List args))
  | Return { tid; mid; value } ->
    Printf.sprintf "ret %d %s %s" tid (name mid) (Repr.to_text value)
  | Commit { tid } -> Printf.sprintf "commit %d" tid
  | Write { tid; var; value } ->
    Printf.sprintf "write %d %s %s" tid (name var) (Repr.to_text value)
  | Block_begin { tid } -> Printf.sprintf "bbegin %d" tid
  | Block_end { tid } -> Printf.sprintf "bend %d" tid
  | Read { tid; var } -> Printf.sprintf "read %d %s" tid (name var)
  | Acquire { tid; lock } -> Printf.sprintf "acq %d %s" tid (name lock)
  | Release { tid; lock } -> Printf.sprintf "rel %d %s" tid (name lock)

let parse_tid s i =
  let n = String.length s in
  let rec scan j = if j < n && s.[j] >= '0' && s.[j] <= '9' then scan (j + 1) else j in
  let j = scan i in
  if j = i then raise (Repr.Parse_error ("expected thread id in: " ^ s))
  else (int_of_string (String.sub s i (j - i)), j)

let parse_name s i =
  match Repr.of_text_sub s i with
  | Repr.Str name, j -> (name, j)
  | _ -> raise (Repr.Parse_error ("expected quoted name in: " ^ s))
  | exception Repr.Parse_error m -> raise (Repr.Parse_error (m ^ " in: " ^ s))

let of_line line =
  let space =
    match String.index_opt line ' ' with
    | Some i -> i
    | None -> String.length line
  in
  let keyword = String.sub line 0 space in
  let rest_at = min (space + 1) (String.length line) in
  let tid, i = parse_tid line rest_at in
  let expect_done j =
    if String.trim (String.sub line j (String.length line - j)) <> "" then
      raise (Repr.Parse_error ("trailing garbage in: " ^ line))
  in
  match keyword with
  | "call" ->
    let mid, j = parse_name line (i + 1) in
    (match Repr.of_text_sub line j with
    | Repr.List args, j' ->
      expect_done j';
      Call { tid; mid; args }
    | _ -> raise (Repr.Parse_error ("expected argument list in: " ^ line)))
  | "ret" ->
    let mid, j = parse_name line (i + 1) in
    let value, j' = Repr.of_text_sub line j in
    expect_done j';
    Return { tid; mid; value }
  | "commit" ->
    expect_done i;
    Commit { tid }
  | "write" ->
    let var, j = parse_name line (i + 1) in
    let value, j' = Repr.of_text_sub line j in
    expect_done j';
    Write { tid; var; value }
  | "bbegin" ->
    expect_done i;
    Block_begin { tid }
  | "bend" ->
    expect_done i;
    Block_end { tid }
  | "read" ->
    let var, j = parse_name line (i + 1) in
    expect_done j;
    Read { tid; var }
  | "acq" ->
    let lock, j = parse_name line (i + 1) in
    expect_done j;
    Acquire { tid; lock }
  | "rel" ->
    let lock, j = parse_name line (i + 1) in
    expect_done j;
    Release { tid; lock }
  | kw -> raise (Repr.Parse_error ("unknown event keyword " ^ kw))
