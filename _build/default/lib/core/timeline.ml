module Tid = Vyrd_sched.Tid

type options = { col_width : int; show_writes : bool; max_events : int option }

let default = { col_width = 22; show_writes = false; max_events = None }

let clip width s =
  let s = String.map (function '\n' | '\r' -> ' ' | c -> c) s in
  if String.length s <= width then s else String.sub s 0 width

let cell_text ev =
  match ev with
  | Event.Call { mid; args; _ } ->
    Some (Fmt.str "call %s(%a)" mid Fmt.(list ~sep:comma Repr.pp) args)
  | Event.Return { mid; value; _ } -> Some (Fmt.str "ret %s=%a" mid Repr.pp value)
  | Event.Commit _ -> Some "* COMMIT"
  | Event.Write { var; value; _ } -> Some (Fmt.str "%s:=%a" var Repr.pp value)
  | Event.Block_begin _ -> Some "[ block"
  | Event.Block_end _ -> Some "] block"
  | Event.Read { var; _ } -> Some (Fmt.str "read %s" var)
  | Event.Acquire { lock; _ } -> Some (Fmt.str "acq %s" lock)
  | Event.Release { lock; _ } -> Some (Fmt.str "rel %s" lock)

let visible options ev =
  match ev with
  | Event.Call _ | Event.Return _ | Event.Commit _ -> true
  | Event.Write _ | Event.Block_begin _ | Event.Block_end _ -> options.show_writes
  | Event.Read _ | Event.Acquire _ | Event.Release _ -> options.show_writes

let render_events ?(options = default) evs =
  let evs =
    match options.max_events with
    | Some n -> List.filteri (fun i _ -> i < n) evs
    | None -> evs
  in
  let evs = List.filter (visible options) evs in
  (* columns in order of first appearance *)
  let tids =
    List.fold_left
      (fun acc ev ->
        let tid = Event.tid ev in
        if List.mem tid acc then acc else tid :: acc)
      [] evs
    |> List.rev
  in
  let col tid =
    let rec idx i = function
      | [] -> assert false
      | t :: _ when Tid.equal t tid -> i
      | _ :: rest -> idx (i + 1) rest
    in
    idx 0 tids
  in
  let w = options.col_width in
  let buf = Buffer.create 1024 in
  let pad s = Printf.sprintf "%-*s" w (clip (w - 1) s) in
  (* header *)
  Buffer.add_string buf "time  ";
  List.iter (fun tid -> Buffer.add_string buf (pad (Tid.to_string tid))) tids;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "      ";
  List.iter (fun _ -> Buffer.add_string buf (pad (String.make (w - 2) '-'))) tids;
  Buffer.add_char buf '\n';
  List.iteri
    (fun i ev ->
      match cell_text ev with
      | None -> ()
      | Some text ->
        Buffer.add_string buf (Printf.sprintf "%4d  " i);
        let c = col (Event.tid ev) in
        for j = 0 to List.length tids - 1 do
          Buffer.add_string buf (pad (if j = c then text else "."))
        done;
        Buffer.add_char buf '\n')
    evs;
  Buffer.contents buf

let render ?options log = render_events ?options (Log.events log)

let tail ?(options = default) ?(window = 25) log ~until =
  let evs = Log.events log in
  let until = min until (List.length evs) in
  let start = max 0 (until - window) in
  let slice =
    List.filteri (fun i _ -> i >= start && i < until) evs
  in
  Printf.sprintf "events %d..%d of %d:\n%s" start (until - 1) (List.length evs)
    (render_events ~options slice)

let witness log =
  (* pair commits with their executions, in commit order *)
  let open_calls : (Tid.t, string * Repr.t list) Hashtbl.t = Hashtbl.create 16 in
  let commits = ref [] in
  (* (ordinal, tid, mid, args, ret option filled later) *)
  let pending : (Tid.t * Repr.t option ref) list ref = ref [] in
  let ordinal = ref 0 in
  Log.iter
    (fun ev ->
      match ev with
      | Event.Call { tid; mid; args } -> Hashtbl.replace open_calls tid (mid, args)
      | Event.Commit { tid } -> (
        match Hashtbl.find_opt open_calls tid with
        | Some (mid, args) ->
          incr ordinal;
          let ret = ref None in
          commits := (!ordinal, tid, mid, args, ret) :: !commits;
          pending := (tid, ret) :: !pending
        | None -> ())
      | Event.Return { tid; value; _ } -> (
        Hashtbl.remove open_calls tid;
        match List.assoc_opt tid !pending with
        | Some ret ->
          ret := Some value;
          pending := List.filter (fun (t, _) -> not (Tid.equal t tid)) !pending
        | None -> ())
      | _ -> ())
    log;
  let buf = Buffer.create 256 in
  Buffer.add_string buf "witness interleaving (commit order):\n";
  List.iter
    (fun (i, tid, mid, args, ret) ->
      Buffer.add_string buf
        (Fmt.str "  %2d. %s %s(%a)%s\n" i (Tid.to_string tid) mid
           Fmt.(list ~sep:comma Repr.pp)
           args
           (match !ret with
           | Some v -> Fmt.str " -> %a" Repr.pp v
           | None -> " -> ?")))
    (List.rev !commits);
  Buffer.contents buf
