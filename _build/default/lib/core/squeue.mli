(** Unbounded blocking queue used to hand events from the instrumented
    program to the online verification domain. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit

(** [pop t] blocks until an element is available. *)
val pop : 'a t -> 'a

val length : 'a t -> int
