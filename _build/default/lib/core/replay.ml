module Tid = Vyrd_sched.Tid
module Vec = Vyrd_sched.Vec

exception Ill_formed of string

type block = { buffered : (string * Repr.t) Vec.t; mutable published : bool }

type t = {
  visible : (string, Repr.t) Hashtbl.t;
  blocks : (Tid.t, block) Hashtbl.t;
  dirty : (string, unit) Hashtbl.t;
}

let create () =
  { visible = Hashtbl.create 64; blocks = Hashtbl.create 8; dirty = Hashtbl.create 64 }

let publish t var v =
  let unchanged =
    match Hashtbl.find_opt t.visible var with Some v0 -> Repr.equal v0 v | None -> false
  in
  if not unchanged then begin
    Hashtbl.replace t.visible var v;
    Hashtbl.replace t.dirty var ()
  end

let write t tid var v =
  match Hashtbl.find_opt t.blocks tid with
  | Some b when not b.published -> Vec.push b.buffered (var, v)
  | Some _ | None -> publish t var v

let block_begin t tid =
  if Hashtbl.mem t.blocks tid then
    raise (Ill_formed (Tid.to_string tid ^ ": nested commit block"));
  Hashtbl.replace t.blocks tid { buffered = Vec.create (); published = false }

let drain t b =
  Vec.iter (fun (var, v) -> publish t var v) b.buffered;
  Vec.clear b.buffered;
  b.published <- true

let commit t tid =
  match Hashtbl.find_opt t.blocks tid with
  | Some b when not b.published -> drain t b
  | Some _ | None -> ()

let block_end t tid =
  match Hashtbl.find_opt t.blocks tid with
  | Some b ->
    if not b.published then drain t b;
    Hashtbl.remove t.blocks tid
  | None -> raise (Ill_formed (Tid.to_string tid ^ ": block end without begin"))

let lookup t var = Hashtbl.find_opt t.visible var
let fold f t acc = Hashtbl.fold f t.visible acc

let take_dirty t =
  let vars = Hashtbl.fold (fun var () acc -> var :: acc) t.dirty [] in
  Hashtbl.reset t.dirty;
  vars
