(** Textual rendering of a log as a per-thread timeline — the style of the
    paper's Fig. 3 and Fig. 6, with time flowing downward, one column per
    thread, and commit actions marked.

    Used by the examples to regenerate the paper's figures from real logs,
    and handy when debugging a refinement violation: render the prefix up to
    the failing commit to see which executions were in flight. *)

type options = {
  col_width : int;  (** characters per thread column (default 22) *)
  show_writes : bool;  (** include [Write]/block events (default false) *)
  max_events : int option;  (** truncate long logs (default [None]) *)
}

val default : options

(** [render ?options log] lays the events out as a grid, one row per
    rendered event, one column per thread (in order of first appearance). *)
val render : ?options:options -> Log.t -> string

(** [render_events evs] is {!render} on an ad-hoc event list. *)
val render_events : ?options:options -> Event.t list -> string

(** [tail ?window log ~until] renders the last [window] (default 25)
    events up to log position [until] (exclusive) — for explaining a
    violation, pass [Report.stats.events_processed]. *)
val tail : ?options:options -> ?window:int -> Log.t -> until:int -> string

(** [witness log] summarizes the witness interleaving: the method
    executions in commit-action order, one line each — the serialization
    the checker validates the specification against (§4). *)
val witness : Log.t -> string
