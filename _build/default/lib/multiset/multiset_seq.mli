(** Sequential multiset used as an atomized specification (paper §4.4).

    When a separate specification is not available, the implementation's own
    atomized interpretation serves as one: methods run atomically, take the
    observed return value as an extra input, and update a plain imperative
    bag.  {!spec} packages this interpretation through {!Vyrd.Atomize}. *)

type t

val create : unit -> t
val multiplicity : t -> int -> int

(** The multiset specification derived from the atomized sequential code.
    Behaviourally equivalent to {!Multiset_spec.spec}; tests check that the
    two are interchangeable. *)
val spec : Vyrd.Spec.t
