open Vyrd

type t = (int, int) Hashtbl.t

let create () : t = Hashtbl.create 16
let multiplicity t x = Option.value ~default:0 (Hashtbl.find_opt t x)

let add t x = Hashtbl.replace t x (multiplicity t x + 1)

let remove t x =
  match multiplicity t x with
  | 0 -> false
  | 1 ->
    Hashtbl.remove t x;
    true
  | n ->
    Hashtbl.replace t x (n - 1);
    true

let bad fmt = Printf.ksprintf (fun m -> Error m) fmt

let az_apply t ~mid ~args ~ret =
  match (mid, args, ret) with
  | "insert", [ Repr.Int x ], ret when Repr.is_success ret ->
    add t x;
    Ok ()
  | "insert", [ Repr.Int _ ], ret when Repr.equal ret Repr.failure -> Ok ()
  | "insert_pair", [ Repr.Int x; Repr.Int y ], ret when Repr.is_success ret ->
    add t x;
    add t y;
    Ok ()
  | "insert_pair", [ Repr.Int _; Repr.Int _ ], ret when Repr.equal ret Repr.failure ->
    Ok ()
  | "delete", [ Repr.Int x ], Repr.Bool true ->
    if remove t x then Ok ()
    else bad "delete(%d) returned true but %d is not in the multiset" x x
  | "delete", [ Repr.Int x ], Repr.Bool false ->
    if multiplicity t x = 0 then Ok ()
    else bad "delete(%d) returned false but %d is in the multiset" x x
  | "compress", [], Repr.Unit -> Ok ()
  | mid, _, _ -> bad "atomized multiset: no %s transition matches" mid

let az_observe t ~mid ~args ~ret =
  match (mid, args, ret) with
  | "lookup", [ Repr.Int x ], Repr.Bool b -> b = (multiplicity t x > 0)
  | "count", [ Repr.Int x ], Repr.Int n -> n = multiplicity t x
  (* Non-committing executions of mutators: exceptional terminations are
     always allowed; mutating return values are not. *)
  | ("insert" | "insert_pair"), _, ret -> Repr.equal ret Repr.failure
  | "delete", [ Repr.Int x ], Repr.Bool false -> multiplicity t x = 0
  | _ -> false

let az_view t =
  View.canonical_of_assoc
    (Hashtbl.fold (fun x n acc -> (Repr.Int x, Repr.Int n) :: acc) t [])

let spec =
  Atomize.spec
    {
      Atomize.az_name = "multiset-atomized";
      az_create = create;
      az_copy = Hashtbl.copy;
      az_kind =
        (fun mid ->
          match mid with
          | "insert" | "insert_pair" | "delete" -> Spec.Mutator
          | "lookup" | "count" -> Spec.Observer
          | "compress" -> Spec.Internal
          | m -> invalid_arg ("atomized multiset: unknown method " ^ m));
      az_apply;
      az_observe;
      az_view;
    }
