lib/multiset/multiset_vector.ml: Array Hashtbl Instrument List Multiset_spec Option Printf Repr View Vyrd Vyrd_sched
