lib/multiset/multiset_vector.mli: Vyrd
