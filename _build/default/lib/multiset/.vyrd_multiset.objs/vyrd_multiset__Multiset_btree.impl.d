lib/multiset/multiset_btree.ml: Hashtbl Instrument List Multiset_spec Multiset_vector Option Printf Repr View Vyrd Vyrd_sched
