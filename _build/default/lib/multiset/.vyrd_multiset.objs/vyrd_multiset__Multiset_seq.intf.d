lib/multiset/multiset_seq.mli: Vyrd
