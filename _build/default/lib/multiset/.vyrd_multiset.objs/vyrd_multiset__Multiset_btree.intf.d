lib/multiset/multiset_btree.mli: Multiset_vector Vyrd
