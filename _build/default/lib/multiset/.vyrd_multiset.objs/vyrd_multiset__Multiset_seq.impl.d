lib/multiset/multiset_seq.ml: Atomize Hashtbl Option Printf Repr Spec View Vyrd
