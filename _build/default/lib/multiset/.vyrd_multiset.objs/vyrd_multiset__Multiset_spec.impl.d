lib/multiset/multiset_spec.ml: Int Map Printf Repr Spec View Vyrd
