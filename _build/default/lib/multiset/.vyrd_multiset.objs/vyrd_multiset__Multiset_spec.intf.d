lib/multiset/multiset_spec.mli: Int Map Vyrd
