(** Executable specification of the multiset (paper Fig. 1, §2.1).

    Abstract state: a bag of integers.  Methods:

    - ["insert"] [x] → [success] adds one occurrence of [x]; [failure]
      (resource contention / full array) leaves the bag unchanged;
    - ["insert_pair"] [x y] → [success] adds one occurrence of each;
      [failure] leaves the bag unchanged — inserting only one of the two is
      a refinement violation;
    - ["delete"] [x] → [true] removes one occurrence (only allowed when
      present); [false] is allowed only when [x] is absent;
    - ["lookup"] [x] (observer) → membership;
    - ["count"] [x] (observer) → multiplicity;
    - ["compress"] (internal) → identity on the abstract state. *)

val spec : Vyrd.Spec.t

(** The abstract bag, exposed for white-box tests. *)
type state = int Map.Make(Int).t

val view_of_state : state -> Vyrd.Repr.t

(** {1 Method-call encodings} — shared by implementations and tests. *)

val mid_insert : string
val mid_insert_pair : string
val mid_delete : string
val mid_lookup : string
val mid_count : string
val mid_compress : string
