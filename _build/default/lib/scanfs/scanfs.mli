(** Model of the Scan file system (paper §7.3, [9, 13]).

    The real Scan FS is a closed-source, write-optimized Windows NT
    filesystem of about 5 KLOC; the paper reports that an earlier VYRD
    prototype found several concurrency bugs in it, all in its cache module
    and "very similar to those found in Boxwood's Cache".  This module is
    the substitution documented in DESIGN.md: a small filesystem with the
    same architecture — a directory of fixed-size files whose blocks live
    behind a write-back block cache, flushed by a background thread that
    sweeps the blocks in ascending order (the "scan" discipline that gives
    the filesystem its name).

    Files have a fixed capacity of [blocks_per_file] blocks of [block_size]
    bytes; [write] pads its payload.  Every public file operation appears
    atomic: its block-cache writes and the directory update are bracketed in
    one commit block whose commit action is the directory write.

    The injectable bug mirrors §7.2.2: overwriting an already-dirty cached
    block copies bytes in place without the cache's lock, so the scan flush
    can push a torn block to disk and mark the entry clean; the corruption
    surfaces when the clean entry is evicted without write-back. *)

type bug = Unprotected_dirty_copy

type t

val block_size : int
val blocks_per_file : int

(** Content capacity of a file in bytes. *)
val file_size : int

(** [create_fs ?bugs ~disk_blocks ctx] — an empty filesystem over a disk of
    [disk_blocks] blocks. *)
val create_fs : ?bugs:bug list -> disk_blocks:int -> Vyrd.Instrument.ctx -> t

(** [create t name] makes an empty file; [false] if it exists. *)
val create : t -> string -> bool

(** [write t name data] replaces the contents ([data] padded/truncated to
    {!file_size}) via freshly allocated blocks (write-optimized,
    copy-on-write); [false] if the file does not exist or the disk is
    full. *)
val write : t -> string -> string -> bool

(** [read t name] returns the contents, or [None] for a missing file. *)
val read : t -> string -> string option

(** [append t name data] appends within the file's fixed capacity; [false]
    if the file is missing or the data does not fit.  Copy-on-write like
    {!write}. *)
val append : t -> string -> string -> bool

(** [rename t ~src ~dst] atomically moves a file: a two-directory-entry
    update published by one commit block (the multi-resource pattern of the
    paper's [InsertPair], §2.1).  [false] if [src] is missing or [dst]
    exists. *)
val rename : t -> src:string -> dst:string -> bool

val delete : t -> string -> bool
val exists : t -> string -> bool

(** One scan pass of the flush daemon: writes dirty blocks to disk in
    ascending block order and marks them clean.  Internal method. *)
val sync : t -> unit

(** Drop block [b]'s cache entry (write-back only when dirty).  Internal. *)
val evict : t -> int -> unit

val viewdef : Vyrd.View.t
val spec : Vyrd.Spec.t

(** The cache-consistency invariant the Scan prototype checked (cf. §7.2.1
    invariant (i)): a clean cached block holds exactly the disk's bytes.
    Catches the torn-flush corruption at the flush itself, before any evict
    or read exposes it. *)
val invariant_clean_matches_disk : disk_blocks:int -> Vyrd.Checker.invariant
