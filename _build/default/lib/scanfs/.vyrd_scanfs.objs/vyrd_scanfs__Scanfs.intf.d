lib/scanfs/scanfs.mli: Vyrd
