lib/scanfs/scanfs.ml: Array Checker Fun Hashtbl Instrument List Map Option Printf Repr Spec String View Vyrd Vyrd_sched
