(** Deterministic pseudo-random number generator (splitmix64).

    The cooperative scheduler must be a pure function of its seed, so it
    cannot share the global [Random] state with user code.  This generator is
    small, fast, and completely self-contained. *)

type t

val create : int -> t

(** [int t bound] returns a uniform value in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [bool t] returns a uniform boolean. *)
val bool : t -> bool

(** [bits64 t] returns the next raw 64-bit output. *)
val bits64 : t -> int64

(** [split t] derives an independent generator; the parent advances. *)
val split : t -> t

(** [copy t] duplicates the current state. *)
val copy : t -> t
