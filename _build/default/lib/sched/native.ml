type state = {
  registry : Mutex.t;
  tids : (int, Tid.t) Hashtbl.t;  (* Thread.id -> our tid *)
  mutable next_tid : int;
  mutable threads : Thread.t list;
  mutable first_exn : (exn * Printexc.raw_backtrace) option;
  global : Mutex.t;  (* backs [atomically] *)
}

let with_mutex m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

let self st () =
  with_mutex st.registry (fun () ->
      match Hashtbl.find_opt st.tids (Thread.id (Thread.self ())) with
      | Some t -> t
      | None -> invalid_arg "Native.self: thread not managed by this engine")

let no_owner = -1

type nmutex = {
  nm : Mutex.t;
  mutable nm_owner : int;  (* our tid, or [no_owner] *)
  mutable nm_depth : int;
}

let new_mutex st ?(name = "mutex") () : Sched.mutex =
  let m = { nm = Mutex.create (); nm_owner = no_owner; nm_depth = 0 } in
  let lock () =
    let me = self st () in
    if m.nm_owner = me then m.nm_depth <- m.nm_depth + 1
    else begin
      Mutex.lock m.nm;
      m.nm_owner <- me;
      m.nm_depth <- 1
    end
  in
  let unlock () =
    let me = self st () in
    if m.nm_owner <> me then
      invalid_arg (Printf.sprintf "unlock: mutex %S not held by caller" name);
    m.nm_depth <- m.nm_depth - 1;
    if m.nm_depth = 0 then begin
      m.nm_owner <- no_owner;
      Mutex.unlock m.nm
    end
  in
  let try_lock () =
    let me = self st () in
    if m.nm_owner = me then begin
      m.nm_depth <- m.nm_depth + 1;
      true
    end
    else if Mutex.try_lock m.nm then begin
      m.nm_owner <- me;
      m.nm_depth <- 1;
      true
    end
    else false
  in
  let holder () = if m.nm_owner = no_owner then None else Some m.nm_owner in
  { lock; unlock; try_lock; holder; mutex_name = name }

type nrwlock = {
  rw : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable readers : int;
  mutable writing : bool;
  mutable writers_waiting : int;
}

let new_rwlock _st ?(name = "rwlock") () : Sched.rwlock =
  let l =
    {
      rw = Mutex.create ();
      can_read = Condition.create ();
      can_write = Condition.create ();
      readers = 0;
      writing = false;
      writers_waiting = 0;
    }
  in
  let begin_read () =
    with_mutex l.rw (fun () ->
        while l.writing || l.writers_waiting > 0 do
          Condition.wait l.can_read l.rw
        done;
        l.readers <- l.readers + 1)
  in
  let end_read () =
    with_mutex l.rw (fun () ->
        if l.readers <= 0 then
          invalid_arg (Printf.sprintf "end_read: rwlock %S has no readers" name);
        l.readers <- l.readers - 1;
        if l.readers = 0 then Condition.signal l.can_write)
  in
  let begin_write () =
    with_mutex l.rw (fun () ->
        l.writers_waiting <- l.writers_waiting + 1;
        while l.writing || l.readers > 0 do
          Condition.wait l.can_write l.rw
        done;
        l.writers_waiting <- l.writers_waiting - 1;
        l.writing <- true)
  in
  let end_write () =
    with_mutex l.rw (fun () ->
        if not l.writing then
          invalid_arg (Printf.sprintf "end_write: rwlock %S not write-held" name);
        l.writing <- false;
        if l.writers_waiting > 0 then Condition.signal l.can_write
        else Condition.broadcast l.can_read)
  in
  { begin_read; end_read; begin_write; end_write; rwlock_name = name }

let run main =
  let st =
    {
      registry = Mutex.create ();
      tids = Hashtbl.create 16;
      next_tid = 0;
      threads = [];
      first_exn = None;
      global = Mutex.create ();
    }
  in
  let record_exn e bt =
    with_mutex st.registry (fun () ->
        if st.first_exn = None then st.first_exn <- Some (e, bt))
  in
  let fresh_tid () =
    with_mutex st.registry (fun () ->
        let t = st.next_tid in
        st.next_tid <- t + 1;
        t)
  in
  let register_current tid =
    with_mutex st.registry (fun () ->
        Hashtbl.replace st.tids (Thread.id (Thread.self ())) tid)
  in
  let spawn ?tname f =
    ignore tname;
    let tid = fresh_tid () in
    let body () =
      register_current tid;
      try f ()
      with e -> record_exn e (Printexc.get_raw_backtrace ())
    in
    let th = Thread.create body () in
    with_mutex st.registry (fun () -> st.threads <- th :: st.threads)
  in
  let atomically : Sched.atomically =
    { run_atomically = (fun f -> with_mutex st.global f) }
  in
  let sched : Sched.t =
    {
      engine = "native";
      spawn;
      yield = Thread.yield;
      self = self st;
      new_mutex = (fun ?name () -> new_mutex st ?name ());
      new_rwlock = (fun ?name () -> new_rwlock st ?name ());
      atomically;
    }
  in
  let main_tid = fresh_tid () in
  register_current main_tid;
  (try main sched with e -> record_exn e (Printexc.get_raw_backtrace ()));
  (* Threads may spawn further threads; drain until the list is stable. *)
  let rec drain () =
    let batch =
      with_mutex st.registry (fun () ->
          let ts = st.threads in
          st.threads <- [];
          ts)
    in
    if batch <> [] then begin
      List.iter Thread.join batch;
      drain ()
    end
  in
  drain ();
  match st.first_exn with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()
