(** Thread identifiers.

    Both scheduler engines assign small consecutive integers to the threads
    they manage; identifier [0] always denotes the main thread of a run. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** [to_string t] renders as ["T<n>"], the notation used in the paper's
    figures. *)
val to_string : t -> string
