lib/sched/native.mli: Sched
