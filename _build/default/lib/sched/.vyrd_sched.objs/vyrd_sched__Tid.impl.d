lib/sched/tid.ml: Format Int
