lib/sched/vec.ml: Array List Printf
