lib/sched/explore.ml: Array Coop List Option Tid
