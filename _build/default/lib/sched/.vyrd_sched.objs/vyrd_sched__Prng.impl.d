lib/sched/prng.ml: Int64
