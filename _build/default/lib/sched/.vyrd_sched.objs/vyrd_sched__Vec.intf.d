lib/sched/vec.mli:
