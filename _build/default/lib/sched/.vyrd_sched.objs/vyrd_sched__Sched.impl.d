lib/sched/sched.ml: Tid
