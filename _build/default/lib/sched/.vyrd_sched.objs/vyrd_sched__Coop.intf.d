lib/sched/coop.mli: Sched Tid
