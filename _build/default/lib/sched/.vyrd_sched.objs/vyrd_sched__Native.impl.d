lib/sched/native.ml: Condition Hashtbl List Mutex Printexc Printf Sched Thread Tid
