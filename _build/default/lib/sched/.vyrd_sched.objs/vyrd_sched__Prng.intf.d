lib/sched/prng.mli:
