lib/sched/explore.mli: Sched
