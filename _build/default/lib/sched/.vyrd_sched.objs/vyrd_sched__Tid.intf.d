lib/sched/tid.mli: Format
