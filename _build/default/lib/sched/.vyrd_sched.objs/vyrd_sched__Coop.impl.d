lib/sched/coop.ml: Array Buffer Effect List Printexc Printf Prng Sched String Tid Vec
