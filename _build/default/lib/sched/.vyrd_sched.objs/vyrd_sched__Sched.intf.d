lib/sched/sched.mli: Tid
