(** Preemptive engine backed by real system threads.

    Interleavings are whatever the operating system produces, so runs are
    not reproducible; this engine exists to demonstrate that the library and
    the instrumented data structures are engine-independent, and to measure
    logging overhead under genuine preemption.

    [yield] maps to [Thread.yield]; mutexes are reentrant wrappers over
    [Mutex.t]; [atomically] is a single global lock. *)

(** [run main] executes [main sched], waits for every spawned thread, and
    re-raises the first exception any thread raised. *)
val run : (Sched.t -> unit) -> unit
