(** Deterministic cooperative scheduling engine.

    Threads are fibers multiplexed on the host thread with OCaml 5 effect
    handlers.  Control transfers only at scheduling points — {!Sched.t.yield},
    lock acquisition, and thread spawn — and every choice among runnable
    fibers (and among lock waiters) is drawn from a seeded PRNG, so an entire
    concurrent execution is a deterministic function of [seed].

    This is what makes the paper's measurements reproducible: "number of
    methods executed before the first refinement violation" (Table 1) is
    obtained by sweeping seeds rather than by racing a real machine. *)

exception Deadlock of string
(** All unfinished threads are blocked on locks. *)

exception Livelock of int
(** More scheduling points than [max_steps] were executed. *)

type stats = {
  steps : int;  (** scheduling points executed *)
  threads : int;  (** total threads created, including the main thread *)
}

(** One scheduling decision: pick an index into [candidates] (the thread
    each choice would run).  For run-queue picks, [running] is the thread
    whose slice just ended, when it is still a candidate — choosing anything
    else is a {e preemption}.  Lock-waiter wake-ups have [running = None]. *)
type choice = { candidates : Tid.t array; running : Tid.t option }

(** [run ?seed ?max_steps ?decide main] executes [main sched] plus
    everything it spawns to completion.  The first exception raised by any
    thread is re-raised after the run winds down.

    Every scheduling decision — which runnable fiber continues, which lock
    waiter is woken — draws from [decide choice] (an index into
    [choice.candidates]).  The default derives decisions from [seed]'s PRNG;
    {!Explore} supplies scripted policies to enumerate schedules
    systematically.

    @param seed scheduling seed (default [0]); ignored when [decide] is given
    @param max_steps livelock guard (default [20_000_000]) *)
val run :
  ?seed:int -> ?max_steps:int -> ?decide:(choice -> int) -> (Sched.t -> unit) -> unit

(** Same as {!run} but also returns scheduling statistics. *)
val run_with_stats :
  ?seed:int -> ?max_steps:int -> ?decide:(choice -> int) -> (Sched.t -> unit) -> stats
