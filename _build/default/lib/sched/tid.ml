type t = int

let equal = Int.equal
let compare = Int.compare
let to_string t = "T" ^ string_of_int t
let pp ppf t = Format.pp_print_string ppf (to_string t)
