type mutex = {
  lock : unit -> unit;
  unlock : unit -> unit;
  try_lock : unit -> bool;
  holder : unit -> Tid.t option;
  mutex_name : string;
}

type rwlock = {
  begin_read : unit -> unit;
  end_read : unit -> unit;
  begin_write : unit -> unit;
  end_write : unit -> unit;
  rwlock_name : string;
}

type t = {
  engine : string;
  spawn : ?tname:string -> (unit -> unit) -> unit;
  yield : unit -> unit;
  self : unit -> Tid.t;
  new_mutex : ?name:string -> unit -> mutex;
  new_rwlock : ?name:string -> unit -> rwlock;
  atomically : atomically;
}

and atomically = { run_atomically : 'a. (unit -> 'a) -> 'a }

let with_lock m f =
  m.lock ();
  match f () with
  | v ->
    m.unlock ();
    v
  | exception e ->
    m.unlock ();
    raise e

let with_read l f =
  l.begin_read ();
  match f () with
  | v ->
    l.end_read ();
    v
  | exception e ->
    l.end_read ();
    raise e

let with_write l f =
  l.begin_write ();
  match f () with
  | v ->
    l.end_write ();
    v
  | exception e ->
    l.end_write ();
    raise e

let atomic t f = t.atomically.run_atomically f
