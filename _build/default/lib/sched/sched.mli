(** Engine-independent scheduler interface.

    Every concurrent data structure in this repository is written against a
    {!t} handle rather than a concrete threading library, so the same code
    runs under the deterministic cooperative engine ({!Coop}) used for
    reproducible experiments and under real system threads ({!Native}).

    Mutexes are reentrant, matching the [synchronized] blocks of the paper's
    Java/C# pseudocode. *)

type mutex = {
  lock : unit -> unit;
  unlock : unit -> unit;
  try_lock : unit -> bool;
  holder : unit -> Tid.t option;  (** owning thread, if any (diagnostics) *)
  mutex_name : string;
}

(** Reader/writer lock with writer preference, as used by Boxwood's
    RECLAIMLOCK. *)
type rwlock = {
  begin_read : unit -> unit;
  end_read : unit -> unit;
  begin_write : unit -> unit;
  end_write : unit -> unit;
  rwlock_name : string;
}

type t = {
  engine : string;  (** ["coop"] or ["native"] *)
  spawn : ?tname:string -> (unit -> unit) -> unit;
      (** start a new thread; the run terminates when all threads finish *)
  yield : unit -> unit;  (** scheduling point *)
  self : unit -> Tid.t;
  new_mutex : ?name:string -> unit -> mutex;
  new_rwlock : ?name:string -> unit -> rwlock;
  atomically : atomically;
      (** run a thunk with no scheduling point inside; used to couple a
          shared-memory action with its log record (paper §4.2) *)
}

and atomically = { run_atomically : 'a. (unit -> 'a) -> 'a }

(** [with_lock m f] runs [f ()] while holding [m], releasing it on any exit
    (the [synchronized] statement). *)
val with_lock : mutex -> (unit -> 'a) -> 'a

(** [with_read l f] / [with_write l f]: scoped reader/writer sections. *)
val with_read : rwlock -> (unit -> 'a) -> 'a

val with_write : rwlock -> (unit -> 'a) -> 'a

(** [atomic t f] is [t.atomically.run_atomically f]. *)
val atomic : t -> (unit -> 'a) -> 'a
