type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let raw = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  raw mod bound

let bool t = Int64.logand (bits64 t) 1L = 1L
let split t = { state = mix64 (bits64 t) }
let copy t = { state = t.state }
