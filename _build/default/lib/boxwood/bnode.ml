open Vyrd
module Sched = Vyrd_sched.Sched

type t = {
  level : int;
  keys : int list;
  vals : int list;
  vers : int list;
  children : int list;
  high : int;
  right : int option;
  dead : bool;
}

let leaf n = n.level = 0

let empty_leaf =
  { level = 0; keys = []; vals = []; vers = []; children = []; high = max_int;
    right = None; dead = false }

let var h = Printf.sprintf "node[%d]" h

let ints xs = Repr.List (List.map (fun i -> Repr.Int i) xs)

let to_repr n =
  Repr.List
    [
      Repr.Int n.level;
      ints n.keys;
      ints n.vals;
      ints n.vers;
      ints n.children;
      Repr.Int n.high;
      (match n.right with None -> Repr.Unit | Some h -> Repr.Int h);
      Repr.Bool n.dead;
    ]

let bad () = raise (Repr.Parse_error "not a B-link node encoding")

let int_list = function
  | Repr.List vs ->
    List.map (function Repr.Int i -> i | _ -> bad ()) vs
  | _ -> bad ()

let of_repr = function
  | Repr.List
      [ Repr.Int level; keys; vals; vers; children; Repr.Int high; right; Repr.Bool dead ]
    ->
    let right = match right with Repr.Unit -> None | Repr.Int h -> Some h | _ -> bad () in
    { level; keys = int_list keys; vals = int_list vals; vers = int_list vers;
      children = int_list children; high; right; dead }
  | _ -> bad ()

let serialize n = Repr.to_text (to_repr n)

let deserialize bytes =
  (* stored buffers are NUL-padded to a fixed size *)
  let v, _ = Repr.of_text_sub bytes 0 in
  of_repr v

type store = {
  alloc : unit -> int;
  read_node : int -> t;
  write_node : int -> t -> unit;
  write_node_commit : int -> t -> unit;
}

let mem_store ctx =
  let sched = ctx.Instrument.sched in
  let nodes : (int, t) Hashtbl.t = Hashtbl.create 64 in
  let next = ref 0 in
  let alloc () =
    Sched.atomic sched (fun () ->
        let h = !next in
        incr next;
        Hashtbl.replace nodes h empty_leaf;
        h)
  in
  let read_node h =
    sched.Sched.yield ();
    match Sched.atomic sched (fun () -> Hashtbl.find_opt nodes h) with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "mem_store: unallocated handle %d" h)
  in
  let write_node h n =
    sched.Sched.yield ();
    Sched.atomic sched (fun () ->
        Hashtbl.replace nodes h n;
        Instrument.log_write ctx ~var:(var h) (to_repr n))
  in
  let write_node_commit h n =
    sched.Sched.yield ();
    Sched.atomic sched (fun () ->
        Hashtbl.replace nodes h n;
        Instrument.log_write ctx ~var:(var h) (to_repr n);
        Instrument.commit ctx)
  in
  { alloc; read_node; write_node; write_node_commit }
