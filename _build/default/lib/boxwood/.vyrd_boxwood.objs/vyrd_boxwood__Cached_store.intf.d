lib/boxwood/cached_store.mli: Bnode Cache Vyrd
