lib/boxwood/blink_tree.mli: Bnode Vyrd
