lib/boxwood/blink_tree.ml: Bnode Hashtbl Instrument Int List Map Option Printf Repr Spec View Vyrd Vyrd_sched
