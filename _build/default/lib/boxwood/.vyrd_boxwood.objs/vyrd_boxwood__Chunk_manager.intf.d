lib/boxwood/chunk_manager.mli: Vyrd
