lib/boxwood/cache.ml: Array Checker Chunk_manager Fun Instrument Int List Map Printf Repr Spec String View Vyrd Vyrd_sched
