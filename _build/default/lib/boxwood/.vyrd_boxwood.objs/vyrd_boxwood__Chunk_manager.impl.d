lib/boxwood/chunk_manager.ml: Array Instrument Printf Repr Vyrd Vyrd_sched
