lib/boxwood/bnode.ml: Hashtbl Instrument List Printf Repr Vyrd Vyrd_sched
