lib/boxwood/bnode.mli: Vyrd
