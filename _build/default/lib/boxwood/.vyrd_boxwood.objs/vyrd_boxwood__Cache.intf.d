lib/boxwood/cache.mli: Chunk_manager Vyrd
