lib/boxwood/cached_store.ml: Bnode Cache Instrument Printf Vyrd Vyrd_sched
