(** Node store backed by the Boxwood Cache + Chunk Manager (Fig. 10).

    Nodes are serialized into fixed-size byte arrays and stored through
    {!Cache.write}/{!Cache.read}.  Following the paper's modular
    verification (§7.2), the cache layer is treated as a correct substrate:
    instantiate it on a context whose log has level [`None], and give this
    store the {e tree}'s context — node writes then appear in the tree's
    log as single coarse-grained events (§6.2) while cache internals stay
    unlogged. *)

(** [make cache ~tree_ctx] @raise Invalid_argument if the cache's buffers
    are too small to hold a serialized node ([buf_size] of 512 is ample for
    the default tree order). *)
val make : Cache.t -> tree_ctx:Vyrd.Instrument.ctx -> Bnode.store
