(** B-link tree nodes and the node store abstraction (paper §7.2.3, [12]).

    Nodes follow Sagiv's B-link structure: every node carries an exclusive
    upper bound ([high]) and a link to its right sibling, which lets
    concurrent operations recover from splits by "moving right".  Leaves
    hold the (key, value) pairs; internal nodes hold separators and child
    handles.  A leaf emptied by the compression thread is marked [dead] and
    keeps its right link so in-flight traversals can pass through it.

    A {!store} abstracts where nodes live.  {!mem_store} keeps them in
    memory; {!Blink_tree.cached_store} keeps them serialized as byte arrays
    behind the Boxwood Cache + Chunk Manager, mirroring Fig. 10.  Either
    way, node writes are logged as single coarse-grained events named
    ["node[h]"] (§6.2) in the {e tree}'s log. *)

type t = {
  level : int;  (** 0 = leaf *)
  keys : int list;  (** leaf: pair keys; internal: separators *)
  vals : int list;  (** leaf only; same length as [keys] *)
  vers : int list;
      (** leaf only; per-pair version numbers, bumped on overwrite —
          the paper's §7.2.4 view includes them *)
  children : int list;  (** internal only; length [keys]+1 *)
  high : int;  (** exclusive upper bound; [max_int] on the right spine *)
  right : int option;  (** right sibling handle *)
  dead : bool;
}

val leaf : t -> bool
val empty_leaf : t

(** Canonical value logged to / replayed from the log. *)
val to_repr : t -> Vyrd.Repr.t

(** @raise Vyrd.Repr.Parse_error on values that do not encode a node. *)
val of_repr : Vyrd.Repr.t -> t

(** Byte-array (de)serialization for storage behind the chunk manager. *)
val serialize : t -> string

val deserialize : string -> t

(** Log variable name for handle [h]. *)
val var : int -> string

type store = {
  alloc : unit -> int;
  read_node : int -> t;
  write_node : int -> t -> unit;  (** logged, no commit *)
  write_node_commit : int -> t -> unit;  (** logged write + commit, atomic *)
}

(** In-memory store logging into [ctx]'s log. *)
val mem_store : Vyrd.Instrument.ctx -> store
