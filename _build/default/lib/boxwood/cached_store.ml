open Vyrd
module Sched = Vyrd_sched.Sched

let make cache ~tree_ctx =
  let sched = tree_ctx.Instrument.sched in
  let next = ref 0 in
  let alloc () =
    Sched.atomic sched (fun () ->
        let h = !next in
        incr next;
        h)
  in
  let read_node h =
    let bytes = Cache.read cache h in
    if bytes = "" then
      invalid_arg (Printf.sprintf "cached_store: handle %d was never written" h)
    else Bnode.deserialize bytes
  in
  let store h n =
    let bytes = Bnode.serialize n in
    Cache.write cache h bytes
  in
  let write_node h n =
    store h n;
    Instrument.log_write tree_ctx ~var:(Bnode.var h) (Bnode.to_repr n)
  in
  let write_node_commit h n =
    store h n;
    Instrument.log_write_commit tree_ctx ~var:(Bnode.var h) (Bnode.to_repr n)
  in
  { Bnode.alloc; read_node; write_node; write_node_commit }
