lib/baselines/linearize.mli: Vyrd Vyrd_sched
