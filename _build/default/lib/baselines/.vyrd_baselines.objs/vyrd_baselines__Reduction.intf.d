lib/baselines/reduction.mli: Format Vyrd
