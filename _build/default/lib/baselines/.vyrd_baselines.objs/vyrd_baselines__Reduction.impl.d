lib/baselines/reduction.ml: Event Fmt Hashtbl List Log Option Set String Vyrd Vyrd_sched
