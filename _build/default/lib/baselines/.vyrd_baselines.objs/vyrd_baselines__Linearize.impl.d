lib/baselines/linearize.ml: Array Event Hashtbl List Log Repr Spec Vyrd Vyrd_sched
