(** Naive linearizability checking — the strawman of paper §2.

    Without commit-point annotations, a black-box checker must search the
    serializations of the overlapping method executions ("they could be
    serialized in any one of 4! ways ... this method would not scale").
    This module implements that search: a DFS over real-time-consistent
    serialization prefixes, pruned against the specification, with a node
    budget.  The ablation benchmark compares its exponential cost with
    VYRD's single pass down the commit-order witness. *)

type exec = {
  x_tid : Vyrd_sched.Tid.t;
  x_mid : string;
  x_args : Vyrd.Repr.t list;
  x_ret : Vyrd.Repr.t;
  x_call : int;  (** log index of the call event *)
  x_ret_at : int;  (** log index of the return event *)
}

(** Completed method executions of a log, in call order.  Executions still
    open at the end of the log are dropped. *)
val executions : Vyrd.Log.t -> exec list

type result =
  | Linearizable of int  (** spec transitions explored *)
  | Not_linearizable of int
  | Budget_exhausted of int

(** [check ?budget log spec] searches for a serialization accepted by
    [spec].  [budget] bounds the number of spec transitions explored
    (default [1_000_000]). *)
val check : ?budget:int -> Vyrd.Log.t -> Vyrd.Spec.t -> result

(** Transitions explored, regardless of outcome. *)
val cost : result -> int
