open Vyrd
module Tid = Vyrd_sched.Tid

type exec = {
  x_tid : Tid.t;
  x_mid : string;
  x_args : Repr.t list;
  x_ret : Repr.t;
  x_call : int;
  x_ret_at : int;
}

let executions log =
  let open_calls : (Tid.t, string * Repr.t list * int) Hashtbl.t = Hashtbl.create 16 in
  let execs = ref [] in
  List.iteri
    (fun i ev ->
      match ev with
      | Event.Call { tid; mid; args } -> Hashtbl.replace open_calls tid (mid, args, i)
      | Event.Return { tid; mid; value } -> (
        match Hashtbl.find_opt open_calls tid with
        | Some (mid', args, call) when mid = mid' ->
          Hashtbl.remove open_calls tid;
          execs :=
            { x_tid = tid; x_mid = mid; x_args = args; x_ret = value; x_call = call;
              x_ret_at = i }
            :: !execs
        | Some _ | None -> ())
      | _ -> ())
    (Log.events log);
  List.sort (fun a b -> compare a.x_call b.x_call) !execs

type result =
  | Linearizable of int
  | Not_linearizable of int
  | Budget_exhausted of int

let cost = function
  | Linearizable n | Not_linearizable n | Budget_exhausted n -> n

exception Found
exception Out_of_budget

let check ?(budget = 1_000_000) log spec =
  let module Sp = (val spec : Spec.S) in
  let execs = Array.of_list (executions log) in
  let n = Array.length execs in
  let used = Array.make n false in
  let explored = ref 0 in
  (* [e] may come next iff every unserialized execution that returned before
     [e]'s call has already been serialized (real-time order). *)
  let minimal i =
    let e = execs.(i) in
    let blocked = ref false in
    for j = 0 to n - 1 do
      if (not !blocked) && (not used.(j)) && j <> i && execs.(j).x_ret_at < e.x_call
      then blocked := true
    done;
    not !blocked
  in
  let step state e k =
    incr explored;
    if !explored > budget then raise Out_of_budget;
    match Sp.kind e.x_mid with
    | Spec.Observer ->
      if Sp.observe state ~mid:e.x_mid ~args:e.x_args ~ret:e.x_ret then k state
    | Spec.Mutator | Spec.Internal -> (
      match Sp.apply state ~mid:e.x_mid ~args:e.x_args ~ret:e.x_ret with
      | Ok state' -> k (Sp.snapshot state')
      | Error _ ->
        (* a black-box checker cannot see commits, so an execution that
           performed no transition is also tried as a pure observation *)
        if Sp.observe state ~mid:e.x_mid ~args:e.x_args ~ret:e.x_ret then k state)
  in
  let rec dfs state depth =
    if depth = n then raise Found;
    for i = 0 to n - 1 do
      if (not used.(i)) && minimal i then begin
        used.(i) <- true;
        step state execs.(i) (fun state' -> dfs state' (depth + 1));
        used.(i) <- false
      end
    done
  in
  match dfs (Sp.snapshot (Sp.init ())) 0 with
  | () -> Not_linearizable !explored
  | exception Found -> Linearizable !explored
  | exception Out_of_budget -> Budget_exhausted !explored
