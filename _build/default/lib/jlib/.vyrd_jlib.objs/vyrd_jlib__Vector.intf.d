lib/jlib/vector.mli: Vyrd
