lib/jlib/string_buffer.ml: Array Fun Instrument Int List Map Printf Repr Spec String View Vyrd Vyrd_sched
