lib/jlib/string_buffer.mli: Vyrd
