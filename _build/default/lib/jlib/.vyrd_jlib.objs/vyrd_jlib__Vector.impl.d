lib/jlib/vector.ml: Array Instrument List Printf Repr Spec View Vyrd Vyrd_sched
