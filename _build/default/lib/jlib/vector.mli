(** Model of [java.util.Vector] with the published concurrency bug in
    [lastIndexOf] (paper §7.4.1, Table 1 row "Taking length non-atomically
    in lastIndexOf()").

    All methods synchronize on the vector's monitor.  The buggy variant's
    [last_index_of] reads the element count in one synchronized section and
    scans the backing array in another: if the vector shrinks in between,
    the scan walks stale slots beyond the current size and can answer with
    an index that never existed.  The bug lives in an observer and corrupts
    no state, which is why the paper finds view refinement no better than
    I/O refinement at catching it (§7.5). *)

type bug = Non_atomic_last_index_of

type t

val create : ?bugs:bug list -> capacity:int -> Vyrd.Instrument.ctx -> t

type outcome = Success | Failure  (** [Failure] = capacity exhausted *)

val add : t -> int -> outcome
val remove_last : t -> bool

(** [insert_at t i x] shifts the suffix right; [Failure] when [i] is out of
    bounds or the vector is full. *)
val insert_at : t -> int -> int -> outcome

(** [remove_at t i] shifts the suffix left; [false] when out of bounds. *)
val remove_at : t -> int -> bool

(** [set t i x] overwrites index [i]; [false] when out of bounds. *)
val set : t -> int -> int -> bool

(** [clear t] removes every element. *)
val clear : t -> unit

val get : t -> int -> int option
val size : t -> int
val is_empty : t -> bool
val contains : t -> int -> bool

(** Lowest index holding the element, or [-1]. *)
val index_of : t -> int -> int

(** Raised by the buggy [last_index_of] when the vector shrinks between its
    two synchronized sections (the JDK's [IndexOutOfBoundsException]). *)
exception Index_out_of_bounds

(** Highest index holding the element, or [-1].
    @raise Index_out_of_bounds in the buggy variant's race window. *)
val last_index_of : t -> int -> int

val viewdef : capacity:int -> Vyrd.View.t

(** The sequence specification: state is the list of elements in order. *)
val spec : Vyrd.Spec.t

val unsafe_contents : t -> int list
