(** Model of [java.util.StringBuffer] with the published [append] race
    (paper §7.4.1, Table 1 row "Copying from an unprotected StringBuffer").

    The data structure instance is a fixed pool of buffers so that the
    two-object operation [append_sb dst src] is expressible in one
    specification.  Every method synchronizes on its buffer's monitor; the
    buggy [append_sb] reads the source's length under the source monitor,
    releases it, and later copies that many characters in a second critical
    section — if the source shrank in between, stale characters beyond its
    current length are appended, corrupting [dst].  Unlike the [Vector] bug
    this one corrupts state, so view refinement catches it at the append's
    commit, long before a [to_string] exposes it. *)

type bug = Unprotected_append_source

type pool

(** [create ~buffers ~buf_capacity ctx] makes a pool of empty buffers with
    ids [0 .. buffers-1]. *)
val create :
  ?bugs:bug list -> buffers:int -> buf_capacity:int -> Vyrd.Instrument.ctx -> pool

type outcome = Success | Failure  (** [Failure] = capacity exhausted *)

val append_str : pool -> int -> string -> outcome
val append_sb : pool -> dst:int -> src:int -> outcome

(** [truncate p b n] shortens buffer [b] to length [n]; [false] if [n]
    exceeds the current length. *)
val truncate : pool -> int -> int -> bool

(** [set_char p b i c] overwrites position [i]; [false] out of bounds. *)
val set_char : pool -> int -> int -> char -> bool

(** [delete_range p b ~pos ~len] removes [len] characters starting at
    [pos] (the JDK's [delete]); [false] when the range is invalid. *)
val delete_range : pool -> int -> pos:int -> len:int -> bool

(** [reverse p b] reverses the contents in place. *)
val reverse : pool -> int -> unit

val to_string : pool -> int -> string
val length : pool -> int -> int

(** [char_at p b i] returns [None] out of bounds (the JDK throws). *)
val char_at : pool -> int -> int -> char option
val viewdef : buffers:int -> buf_capacity:int -> Vyrd.View.t
val spec : buffers:int -> Vyrd.Spec.t
val unsafe_contents : pool -> int -> string
