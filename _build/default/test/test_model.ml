(* Model-based sequential testing: each implementation, driven by random
   single-threaded operation sequences, must agree call-by-call with a plain
   functional model.  Independent of the refinement checker — this validates
   the substrates themselves. *)

open Vyrd
open Vyrd_sched

let qcheck t = QCheck_alcotest.to_alcotest t

let ops_gen n = QCheck2.Gen.(list_size (int_range 0 60) (pair (int_range 0 n) small_nat))

(* --- multiset implementations vs a bag model --------------------------- *)

module Bag = struct
  type t = (int, int) Hashtbl.t

  let create () : t = Hashtbl.create 8
  let count t x = Option.value ~default:0 (Hashtbl.find_opt t x)
  let insert t x = Hashtbl.replace t x (count t x + 1)

  let delete t x =
    let c = count t x in
    if c = 0 then false
    else begin
      if c = 1 then Hashtbl.remove t x else Hashtbl.replace t x (c - 1);
      true
    end

  let mem t x = count t x > 0
end

let multiset_vector_model =
  qcheck
    (QCheck2.Test.make ~name:"multiset-vector agrees with bag model" ~count:100
       (ops_gen 9) (fun ops ->
         let ok = ref true in
         Coop.run (fun s ->
             let ctx = Instrument.make s (Log.create ~level:`None ()) in
             let ms = Vyrd_multiset.Multiset_vector.create ~capacity:128 ctx in
             let bag = Bag.create () in
             List.iter
               (fun (op, x) ->
                 let x = x mod 8 in
                 match op mod 5 with
                 | 0 | 1 ->
                   (* capacity 128 >> 60 ops: insert always succeeds *)
                   if Vyrd_multiset.Multiset_vector.insert ms x
                      = Vyrd_multiset.Multiset_vector.Success
                   then Bag.insert bag x
                   else ok := false
                 | 2 ->
                   if Vyrd_multiset.Multiset_vector.delete ms x <> Bag.delete bag x
                   then ok := false
                 | 3 ->
                   if Vyrd_multiset.Multiset_vector.lookup ms x <> Bag.mem bag x then
                     ok := false
                 | _ ->
                   if Vyrd_multiset.Multiset_vector.count ms x <> Bag.count bag x then
                     ok := false)
               ops);
         !ok))

let multiset_btree_model =
  qcheck
    (QCheck2.Test.make ~name:"multiset-btree agrees with bag model" ~count:100
       (ops_gen 9) (fun ops ->
         let ok = ref true in
         Coop.run (fun s ->
             let ctx = Instrument.make s (Log.create ~level:`None ()) in
             let ms = Vyrd_multiset.Multiset_btree.create ctx in
             let bag = Bag.create () in
             List.iter
               (fun (op, x) ->
                 let x = x mod 8 in
                 match op mod 5 with
                 | 0 | 1 ->
                   ignore (Vyrd_multiset.Multiset_btree.insert ms x);
                   Bag.insert bag x
                 | 2 ->
                   if Vyrd_multiset.Multiset_btree.delete ms x <> Bag.delete bag x
                   then ok := false
                 | 3 ->
                   if Vyrd_multiset.Multiset_btree.lookup ms x <> Bag.mem bag x then
                     ok := false
                 | _ ->
                   (* interleave compression to exercise pruning *)
                   Vyrd_multiset.Multiset_btree.compress ms;
                   if Vyrd_multiset.Multiset_btree.count ms x <> Bag.count bag x then
                     ok := false)
               ops);
         !ok))

(* --- B-link tree vs a map model ----------------------------------------- *)

let blink_model =
  qcheck
    (QCheck2.Test.make ~name:"blink tree agrees with map model" ~count:100
       QCheck2.Gen.(pair (int_range 2 5) (ops_gen 9))
       (fun (order, ops) ->
         let ok = ref true in
         Coop.run (fun s ->
             let ctx = Instrument.make s (Log.create ~level:`None ()) in
             let tree =
               Vyrd_boxwood.Blink_tree.create ~order
                 (Vyrd_boxwood.Bnode.mem_store ctx)
                 ctx
             in
             let model : (int, int) Hashtbl.t = Hashtbl.create 8 in
             List.iter
               (fun (op, x) ->
                 let k = x mod 12 in
                 match op mod 5 with
                 | 0 | 1 ->
                   Vyrd_boxwood.Blink_tree.insert tree k (x * 7);
                   Hashtbl.replace model k (x * 7)
                 | 2 ->
                   let expected = Hashtbl.mem model k in
                   Hashtbl.remove model k;
                   if Vyrd_boxwood.Blink_tree.delete tree k <> expected then
                     ok := false
                 | 3 ->
                   Vyrd_boxwood.Blink_tree.compress tree;
                   if
                     Vyrd_boxwood.Blink_tree.lookup tree k
                     <> Hashtbl.find_opt model k
                   then ok := false
                 | _ ->
                   if
                     Vyrd_boxwood.Blink_tree.lookup tree k
                     <> Hashtbl.find_opt model k
                   then ok := false)
               ops;
             (* final full-contents comparison *)
             let expected =
               Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
               |> List.sort compare
             in
             if Vyrd_boxwood.Blink_tree.unsafe_contents tree <> expected then
               ok := false);
         !ok))

(* --- java.util.Vector vs a list model ----------------------------------- *)

let jvector_model =
  qcheck
    (QCheck2.Test.make ~name:"vector agrees with list model" ~count:100 (ops_gen 9)
       (fun ops ->
         let ok = ref true in
         Coop.run (fun s ->
             let ctx = Instrument.make s (Log.create ~level:`None ()) in
             let v = Vyrd_jlib.Vector.create ~capacity:128 ctx in
             let model = ref [] in
             List.iter
               (fun (op, x) ->
                 let len = List.length !model in
                 match op mod 8 with
                 | 0 | 1 ->
                   ignore (Vyrd_jlib.Vector.add v x);
                   model := !model @ [ x ]
                 | 2 ->
                   let expected = len > 0 in
                   if expected then
                     model := List.filteri (fun j _ -> j < len - 1) !model;
                   if Vyrd_jlib.Vector.remove_last v <> expected then ok := false
                 | 3 ->
                   let i = if len = 0 then 0 else x mod (len + 1) in
                   ignore (Vyrd_jlib.Vector.insert_at v i x);
                   model :=
                     List.filteri (fun j _ -> j < i) !model
                     @ [ x ]
                     @ List.filteri (fun j _ -> j >= i) !model
                 | 4 ->
                   if len > 0 then begin
                     let i = x mod len in
                     ignore (Vyrd_jlib.Vector.remove_at v i);
                     model := List.filteri (fun j _ -> j <> i) !model
                   end
                 | 5 ->
                   if Vyrd_jlib.Vector.index_of v x
                      <> (let rec first i = function
                            | [] -> -1
                            | y :: _ when y = x -> i
                            | _ :: r -> first (i + 1) r
                          in
                          first 0 !model)
                   then ok := false
                 | 6 ->
                   if Vyrd_jlib.Vector.size v <> len then ok := false
                 | _ ->
                   if Vyrd_jlib.Vector.contains v x <> List.mem x !model then
                     ok := false)
               ops;
             if Vyrd_jlib.Vector.unsafe_contents v <> !model then ok := false);
         !ok))

(* --- ScanFS vs a string-map model ---------------------------------------- *)

let scanfs_model =
  qcheck
    (QCheck2.Test.make ~name:"scanfs agrees with map model" ~count:100 (ops_gen 9)
       (fun ops ->
         let names = [| "a"; "b"; "c" |] in
         let ok = ref true in
         Coop.run (fun s ->
             let ctx = Instrument.make s (Log.create ~level:`None ()) in
             let fs = Vyrd_scanfs.Scanfs.create_fs ~disk_blocks:32 ctx in
             let model : (string, string) Hashtbl.t = Hashtbl.create 4 in
             let pad d =
               let n = Vyrd_scanfs.Scanfs.file_size in
               if String.length d >= n then String.sub d 0 n
               else d ^ String.make (n - String.length d) '\000'
             in
             List.iter
               (fun (op, x) ->
                 let name = names.(x mod 3) in
                 match op mod 6 with
                 | 0 ->
                   let expected = not (Hashtbl.mem model name) in
                   if Vyrd_scanfs.Scanfs.create fs name <> expected then ok := false
                   else if expected then Hashtbl.replace model name ""
                 | 1 | 2 ->
                   let data = String.make (1 + (x mod 6)) (Char.chr (97 + (x mod 26))) in
                   let expected = Hashtbl.mem model name in
                   if Vyrd_scanfs.Scanfs.write fs name data <> expected then
                     ok := false
                   else if expected then Hashtbl.replace model name (pad data)
                 | 3 ->
                   let expected = Hashtbl.mem model name in
                   if Vyrd_scanfs.Scanfs.delete fs name <> expected then ok := false
                   else Hashtbl.remove model name
                 | 4 ->
                   Vyrd_scanfs.Scanfs.sync fs;
                   Vyrd_scanfs.Scanfs.evict fs (x mod 32);
                   if Vyrd_scanfs.Scanfs.read fs name <> Hashtbl.find_opt model name
                   then ok := false
                 | _ ->
                   if Vyrd_scanfs.Scanfs.exists fs name <> Hashtbl.mem model name
                   then ok := false)
               ops);
         !ok))

let suite =
  [ multiset_vector_model; multiset_btree_model; blink_model; jvector_model; scanfs_model ]
