(* Tests for the java.util.Vector / StringBuffer models and their published
   concurrency bugs (paper §7.4.1). *)

open Vyrd
open Vyrd_sched
open Vyrd_jlib

let vec_capacity = 32

let run_vector ?(bugs = []) ~seed ~threads ~ops () =
  let log = Log.create ~level:`View () in
  Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let v = Vector.create ~bugs ~capacity:vec_capacity ctx in
      for t = 1 to threads do
        s.spawn (fun () ->
            let rng = Prng.create ((seed * 613) + t) in
            for _ = 1 to ops do
              let x = Prng.int rng 6 in
              try
                match Prng.int rng 14 with
                | 0 | 1 | 2 -> ignore (Vector.add v x)
                | 3 | 4 -> ignore (Vector.remove_last v)
                | 5 -> ignore (Vector.get v (Prng.int rng 8))
                | 6 -> ignore (Vector.size v)
                | 7 -> ignore (Vector.contains v x)
                | 8 -> ignore (Vector.insert_at v (Prng.int rng 6) x)
                | 9 -> ignore (Vector.remove_at v (Prng.int rng 6))
                | 10 -> ignore (Vector.set v (Prng.int rng 6) x)
                | 11 -> ignore (Vector.index_of v x)
                | 12 -> ignore (Vector.is_empty v)
                | _ -> ignore (Vector.last_index_of v x)
              with Vector.Index_out_of_bounds -> ()
            done)
      done);
  log

let sb_buffers = 3
let sb_capacity = 64

let run_sb ?(bugs = []) ~seed ~threads ~ops () =
  let log = Log.create ~level:`View () in
  Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let p = String_buffer.create ~bugs ~buffers:sb_buffers ~buf_capacity:sb_capacity ctx in
      for t = 1 to threads do
        s.spawn (fun () ->
            let rng = Prng.create ((seed * 389) + t) in
            for _ = 1 to ops do
              let b = Prng.int rng sb_buffers in
              match Prng.int rng 14 with
              | 0 | 1 | 2 ->
                ignore
                  (String_buffer.append_str p b (String.make (1 + Prng.int rng 3) 'a'))
              | 3 | 4 | 5 ->
                ignore (String_buffer.append_sb p ~dst:b ~src:(Prng.int rng sb_buffers))
              | 6 -> ignore (String_buffer.truncate p b (Prng.int rng 4))
              | 7 | 8 -> ignore (String_buffer.to_string p b)
              | 9 -> ignore (String_buffer.set_char p b (Prng.int rng 5) 'z')
              | 10 ->
                ignore
                  (String_buffer.delete_range p b ~pos:(Prng.int rng 4)
                     ~len:(Prng.int rng 3))
              | 11 -> String_buffer.reverse p b
              | 12 -> ignore (String_buffer.char_at p b (Prng.int rng 6))
              | _ -> ignore (String_buffer.length p b)
            done)
      done);
  log

let vec_view = Vector.viewdef ~capacity:vec_capacity
let sb_view = String_buffer.viewdef ~buffers:sb_buffers ~buf_capacity:sb_capacity
let sb_spec = String_buffer.spec ~buffers:sb_buffers

let assert_pass what report =
  if not (Report.is_pass report) then
    Alcotest.failf "%s: expected pass, got %a" what Report.pp report

let test_vector_correct () =
  for seed = 0 to 14 do
    let log = run_vector ~seed ~threads:5 ~ops:30 () in
    assert_pass
      (Printf.sprintf "vector io seed %d" seed)
      (Checker.check ~mode:`Io log Vector.spec);
    assert_pass
      (Printf.sprintf "vector view seed %d" seed)
      (Checker.check ~mode:`View ~view:vec_view log Vector.spec)
  done

let test_sb_correct () =
  for seed = 0 to 14 do
    let log = run_sb ~seed ~threads:4 ~ops:20 () in
    assert_pass
      (Printf.sprintf "sb io seed %d" seed)
      (Checker.check ~mode:`Io log sb_spec);
    assert_pass
      (Printf.sprintf "sb view seed %d" seed)
      (Checker.check ~mode:`View ~view:sb_view log sb_spec)
  done

let find_failing ~check ~run =
  let rec go seed =
    if seed > 400 then None
    else
      let report = check (run ~seed) in
      if Report.is_pass report then go (seed + 1) else Some (seed, report)
  in
  go 0

let test_vector_bug_detected () =
  match
    find_failing
      ~check:(fun log -> Checker.check ~mode:`Io log Vector.spec)
      ~run:(fun ~seed ->
        run_vector ~bugs:[ Vector.Non_atomic_last_index_of ] ~seed ~threads:6 ~ops:30 ())
  with
  | None -> Alcotest.fail "vector lastIndexOf bug never detected"
  | Some (_, report) -> (
    match report.Report.outcome with
    | Report.Fail (Report.Observer_violation { exec; _ }) ->
      Alcotest.(check string) "observer is last_index_of" "last_index_of" exec.e_mid
    | _ -> Alcotest.failf "unexpected %a" Report.pp report)

let test_vector_bug_view_no_better () =
  (* Paper §7.5: the Vector error lives in an observer and does not corrupt
     state, so view refinement detects it no earlier than I/O refinement. *)
  let both = ref 0 in
  for seed = 0 to 150 do
    let log =
      run_vector ~bugs:[ Vector.Non_atomic_last_index_of ] ~seed ~threads:6 ~ops:30 ()
    in
    let io = Checker.check ~mode:`Io log Vector.spec in
    let view = Checker.check ~mode:`View ~view:vec_view log Vector.spec in
    if not (Report.is_pass io) then begin
      incr both;
      Alcotest.(check int)
        (Printf.sprintf "same detection point, seed %d" seed)
        io.Report.stats.methods_checked view.Report.stats.methods_checked
    end
  done;
  Alcotest.(check bool) "bug triggered somewhere" true (!both > 0)

let test_sb_bug_detected_by_view () =
  match
    find_failing
      ~check:(fun log -> Checker.check ~mode:`View ~view:sb_view log sb_spec)
      ~run:(fun ~seed ->
        run_sb ~bugs:[ String_buffer.Unprotected_append_source ] ~seed ~threads:5
          ~ops:25 ())
  with
  | None -> Alcotest.fail "string buffer append bug never detected"
  | Some (_, report) -> (
    match report.Report.outcome with
    | Report.Fail (Report.View_violation { exec; _ }) ->
      Alcotest.(check string) "mutator is append_sb" "append_sb" exec.e_mid
    | Report.Fail _ -> ()  (* an I/O-level detection is also acceptable *)
    | Report.Pass -> Alcotest.fail "unreachable")

let test_sb_view_detects_earlier () =
  let io_total = ref 0 and view_total = ref 0 and hits = ref 0 in
  for seed = 0 to 200 do
    let log =
      run_sb ~bugs:[ String_buffer.Unprotected_append_source ] ~seed ~threads:5
        ~ops:25 ()
    in
    let io = Checker.check ~mode:`Io log sb_spec in
    let view = Checker.check ~mode:`View ~view:sb_view log sb_spec in
    if (not (Report.is_pass io)) && not (Report.is_pass view) then begin
      incr hits;
      io_total := !io_total + io.Report.stats.methods_checked;
      view_total := !view_total + view.Report.stats.methods_checked
    end
  done;
  Alcotest.(check bool) "bug triggered on several seeds" true (!hits > 2);
  Alcotest.(check bool)
    (Printf.sprintf "view (%d) <= io (%d)" !view_total !io_total)
    true
    (!view_total <= !io_total)

(* sequential sanity ---------------------------------------------------- *)

let test_vector_sequential_semantics () =
  let log = Log.create ~level:`View () in
  Coop.run (fun s ->
      let ctx = Instrument.make s log in
      let v = Vector.create ~capacity:8 ctx in
      Alcotest.(check bool) "add" true (Vector.add v 1 = Vector.Success);
      ignore (Vector.add v 2);
      ignore (Vector.add v 1);
      Alcotest.(check int) "size" 3 (Vector.size v);
      Alcotest.(check (option int)) "get 1" (Some 2) (Vector.get v 1);
      Alcotest.(check (option int)) "get oob" None (Vector.get v 5);
      Alcotest.(check bool) "contains" true (Vector.contains v 2);
      Alcotest.(check int) "last_index_of" 2 (Vector.last_index_of v 1);
      Alcotest.(check bool) "remove" true (Vector.remove_last v);
      Alcotest.(check int) "last_index_of after remove" 0 (Vector.last_index_of v 1);
      Alcotest.(check (list int)) "contents" [ 1; 2 ] (Vector.unsafe_contents v);
      Alcotest.(check bool) "insert_at" true (Vector.insert_at v 1 9 = Vector.Success);
      Alcotest.(check (list int)) "after insert_at" [ 1; 9; 2 ] (Vector.unsafe_contents v);
      Alcotest.(check bool) "insert_at oob" true
        (Vector.insert_at v 9 9 = Vector.Failure);
      Alcotest.(check bool) "set" true (Vector.set v 0 7);
      Alcotest.(check bool) "set oob" false (Vector.set v 5 7);
      Alcotest.(check int) "index_of" 0 (Vector.index_of v 7);
      Alcotest.(check int) "index_of absent" (-1) (Vector.index_of v 42);
      Alcotest.(check bool) "remove_at" true (Vector.remove_at v 1);
      Alcotest.(check (list int)) "after remove_at" [ 7; 2 ] (Vector.unsafe_contents v);
      Alcotest.(check bool) "not empty" false (Vector.is_empty v);
      Vector.clear v;
      Alcotest.(check bool) "empty after clear" true (Vector.is_empty v));
  assert_pass "sequential vector" (Checker.check ~mode:`View ~view:(Vector.viewdef ~capacity:8) log Vector.spec)

let test_sb_sequential_semantics () =
  let log = Log.create ~level:`View () in
  Coop.run (fun s ->
      let ctx = Instrument.make s log in
      let p = String_buffer.create ~buffers:2 ~buf_capacity:16 ctx in
      ignore (String_buffer.append_str p 0 "abc");
      ignore (String_buffer.append_str p 1 "XY");
      ignore (String_buffer.append_sb p ~dst:0 ~src:1);
      Alcotest.(check string) "concat" "abcXY" (String_buffer.to_string p 0);
      ignore (String_buffer.append_sb p ~dst:1 ~src:1);
      Alcotest.(check string) "self append" "XYXY" (String_buffer.to_string p 1);
      Alcotest.(check bool) "truncate" true (String_buffer.truncate p 0 2);
      Alcotest.(check string) "truncated" "ab" (String_buffer.to_string p 0);
      Alcotest.(check bool) "truncate too long" false (String_buffer.truncate p 0 99);
      Alcotest.(check int) "length" 2 (String_buffer.length p 0);
      ignore (String_buffer.append_str p 0 "cdef");
      (* "abcdef" *)
      Alcotest.(check (option char)) "char_at" (Some 'c') (String_buffer.char_at p 0 2);
      Alcotest.(check (option char)) "char_at oob" None (String_buffer.char_at p 0 9);
      Alcotest.(check bool) "set_char" true (String_buffer.set_char p 0 0 'z');
      Alcotest.(check string) "after set_char" "zbcdef" (String_buffer.to_string p 0);
      Alcotest.(check bool) "delete_range" true
        (String_buffer.delete_range p 0 ~pos:1 ~len:2);
      Alcotest.(check string) "after delete" "zdef" (String_buffer.to_string p 0);
      Alcotest.(check bool) "delete_range bad" false
        (String_buffer.delete_range p 0 ~pos:3 ~len:5);
      String_buffer.reverse p 0;
      Alcotest.(check string) "reversed" "fedz" (String_buffer.to_string p 0));
  assert_pass "sequential sb"
    (Checker.check ~mode:`View
       ~view:(String_buffer.viewdef ~buffers:2 ~buf_capacity:16)
       log
       (String_buffer.spec ~buffers:2))

let test_sb_capacity_failure_allowed () =
  let log = Log.create ~level:`View () in
  Coop.run (fun s ->
      let ctx = Instrument.make s log in
      let p = String_buffer.create ~buffers:1 ~buf_capacity:4 ctx in
      Alcotest.(check bool) "fits" true (String_buffer.append_str p 0 "abcd" = String_buffer.Success);
      Alcotest.(check bool) "overflows" true
        (String_buffer.append_str p 0 "e" = String_buffer.Failure));
  assert_pass "overflow is exceptional termination"
    (Checker.check ~mode:`Io log (String_buffer.spec ~buffers:1))

let suite =
  [
    ("vector correct", `Quick, test_vector_correct);
    ("string buffer correct", `Quick, test_sb_correct);
    ("vector lastIndexOf bug detected", `Quick, test_vector_bug_detected);
    ("vector bug: view no better than io", `Slow, test_vector_bug_view_no_better);
    ("sb append bug detected by view", `Quick, test_sb_bug_detected_by_view);
    ("sb bug: view detects earlier", `Slow, test_sb_view_detects_earlier);
    ("vector sequential semantics", `Quick, test_vector_sequential_semantics);
    ("sb sequential semantics", `Quick, test_sb_sequential_semantics);
    ("sb capacity failure allowed", `Quick, test_sb_capacity_failure_allowed);
  ]
