(* Unit and property tests for the VYRD core: value representation, event
   serialization, the log, shadow replay, views, and online checking. *)

open Vyrd
module Tid = Vyrd_sched.Tid

let qcheck t = QCheck_alcotest.to_alcotest t

(* --- Repr ---------------------------------------------------------------- *)

let repr_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let base =
        oneof
          [
            return Repr.Unit;
            map (fun b -> Repr.Bool b) bool;
            map (fun i -> Repr.Int i) int;
            map (fun s -> Repr.Str s) (string_size (int_range 0 12));
          ]
      in
      if n = 0 then base
      else
        frequency
          [
            (3, base);
            (1, map2 (fun a b -> Repr.Pair (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map (fun vs -> Repr.List vs) (list_size (int_range 0 4) (self (n / 2))));
          ])

let repr_roundtrip =
  qcheck
    (QCheck2.Test.make ~name:"Repr text roundtrip" ~count:500 repr_gen (fun v ->
         Repr.equal (Repr.of_text (Repr.to_text v)) v))

let repr_sorted_list_canonical =
  qcheck
    (QCheck2.Test.make ~name:"Repr.sorted_list is order-insensitive"
       QCheck2.Gen.(list (map (fun i -> Repr.Int i) int))
       (fun vs ->
         let shuffled = List.rev vs in
         Repr.equal (Repr.sorted_list vs) (Repr.sorted_list shuffled)))

let test_repr_parse_errors () =
  List.iter
    (fun s ->
      match Repr.of_text s with
      | exception Repr.Parse_error _ -> ()
      | v -> Alcotest.failf "%S unexpectedly parsed as %a" s Repr.pp v)
    [ ""; "("; "(L"; "(P 1)"; "(P 1 2 3)"; "\"abc"; "(X 1)"; "1 2"; "--3"; "\"\\q\"" ]

let test_repr_escapes () =
  let v = Repr.Str "a\"b\\c\nd\x00e\xff" in
  Alcotest.(check bool) "binary string survives" true
    (Repr.equal (Repr.of_text (Repr.to_text v)) v)

(* --- Event --------------------------------------------------------------- *)

let event_gen =
  let open QCheck2.Gen in
  let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let tid = int_range 0 40 in
  oneof
    [
      map3 (fun tid mid args -> Event.Call { tid; mid; args }) tid name
        (list_size (int_range 0 3) repr_gen);
      map3 (fun tid mid value -> Event.Return { tid; mid; value }) tid name repr_gen;
      map (fun tid -> Event.Commit { tid }) tid;
      map3 (fun tid var value -> Event.Write { tid; var; value }) tid name repr_gen;
      map (fun tid -> Event.Block_begin { tid }) tid;
      map (fun tid -> Event.Block_end { tid }) tid;
      map2 (fun tid var -> Event.Read { tid; var }) tid name;
      map2 (fun tid lock -> Event.Acquire { tid; lock }) tid name;
      map2 (fun tid lock -> Event.Release { tid; lock }) tid name;
    ]

let event_roundtrip =
  qcheck
    (QCheck2.Test.make ~name:"Event line roundtrip" ~count:500 event_gen (fun ev ->
         Event.equal (Event.of_line (Event.to_line ev)) ev))

let log_file_roundtrip =
  qcheck
    (QCheck2.Test.make ~name:"Log file roundtrip" ~count:50
       QCheck2.Gen.(list_size (int_range 0 40) event_gen)
       (fun evs ->
         let log = Log.of_events evs in
         let path = Filename.temp_file "vyrd_test" ".log" in
         Log.to_file path log;
         let log' = Log.of_file path in
         Sys.remove path;
         List.for_all2 Event.equal (Log.events log) (Log.events log')))

(* --- Log levels and subscription ----------------------------------------- *)

let test_log_levels () =
  let call = Event.Call { tid = 0; mid = "m"; args = [] } in
  let write = Event.Write { tid = 0; var = "v"; value = Repr.Unit } in
  let read = Event.Read { tid = 0; var = "v" } in
  let count level =
    let log = Log.create ~level () in
    List.iter (Log.append log) [ call; write; read ];
    Log.length log
  in
  Alcotest.(check int) "`None drops all" 0 (count `None);
  Alcotest.(check int) "`Io keeps calls" 1 (count `Io);
  Alcotest.(check int) "`View keeps writes" 2 (count `View);
  Alcotest.(check int) "`Full keeps reads" 3 (count `Full)

let test_log_subscription () =
  let log = Log.create ~level:`Io () in
  let seen = ref 0 in
  Log.subscribe log (fun _ -> incr seen);
  Log.append log (Event.Commit { tid = 1 });
  Log.append log (Event.Read { tid = 1; var = "x" });
  (* filtered: no notification *)
  Alcotest.(check int) "subscriber sees admitted events only" 1 !seen

(* --- Replay -------------------------------------------------------------- *)

let test_replay_plain_writes () =
  let r = Replay.create () in
  Replay.write r 1 "x" (Repr.Int 1);
  Replay.write r 2 "y" (Repr.Int 2);
  Replay.write r 1 "x" (Repr.Int 3);
  Alcotest.(check bool) "latest value" true (Replay.lookup r "x" = Some (Repr.Int 3));
  Alcotest.(check bool) "other var" true (Replay.lookup r "y" = Some (Repr.Int 2));
  Alcotest.(check bool) "absent" true (Replay.lookup r "z" = None)

let test_replay_block_buffers () =
  let r = Replay.create () in
  Replay.block_begin r 1;
  Replay.write r 1 "x" (Repr.Int 1);
  Alcotest.(check bool) "buffered write invisible" true (Replay.lookup r "x" = None);
  (* another thread's writes flow through *)
  Replay.write r 2 "y" (Repr.Int 9);
  Alcotest.(check bool) "other thread visible" true
    (Replay.lookup r "y" = Some (Repr.Int 9));
  Replay.commit r 1;
  Alcotest.(check bool) "published at commit" true
    (Replay.lookup r "x" = Some (Repr.Int 1));
  (* post-commit in-block writes apply immediately *)
  Replay.write r 1 "x" (Repr.Int 2);
  Alcotest.(check bool) "post-commit applies" true
    (Replay.lookup r "x" = Some (Repr.Int 2));
  Replay.block_end r 1

let test_replay_block_end_publishes () =
  let r = Replay.create () in
  Replay.block_begin r 1;
  Replay.write r 1 "x" (Repr.Int 1);
  Replay.block_end r 1;
  (* a block that never commits publishes at its end *)
  Alcotest.(check bool) "published at end" true (Replay.lookup r "x" = Some (Repr.Int 1))

let test_replay_ill_formed () =
  let r = Replay.create () in
  Replay.block_begin r 1;
  Alcotest.check_raises "nested block" (Replay.Ill_formed "T1: nested commit block")
    (fun () -> Replay.block_begin r 1);
  let r2 = Replay.create () in
  Alcotest.check_raises "end without begin"
    (Replay.Ill_formed "T1: block end without begin") (fun () -> Replay.block_end r2 1)

let test_replay_dirty_tracking () =
  let r = Replay.create () in
  Replay.write r 1 "a" (Repr.Int 1);
  Replay.write r 1 "b" (Repr.Int 2);
  let d1 = List.sort compare (Replay.take_dirty r) in
  Alcotest.(check (list string)) "both dirty" [ "a"; "b" ] d1;
  Alcotest.(check (list string)) "reset" [] (Replay.take_dirty r);
  (* rewriting the same value does not dirty *)
  Replay.write r 1 "a" (Repr.Int 1);
  Alcotest.(check (list string)) "no-op write" [] (Replay.take_dirty r);
  Replay.write r 1 "a" (Repr.Int 5);
  Alcotest.(check (list string)) "changed" [ "a" ] (Replay.take_dirty r)

(* --- Views ---------------------------------------------------------------- *)

let test_keyed_view_incremental () =
  let view =
    View.Keyed
      {
        keys_of_var = (fun var -> [ Repr.Str var ]);
        project = (fun lookup key ->
            match key with Repr.Str var -> lookup var | _ -> None);
      }
  in
  let eval = View.make_eval view in
  let r = Replay.create () in
  Replay.write r 1 "a" (Repr.Int 1);
  let v1 = View.recompute eval r in
  Alcotest.(check bool) "one entry" true
    (Repr.equal v1 (View.canonical_of_assoc [ (Repr.Str "a", Repr.Int 1) ]));
  Replay.write r 1 "b" (Repr.Int 2);
  let v2 = View.recompute eval r in
  Alcotest.(check bool) "two entries" true
    (Repr.equal v2
       (View.canonical_of_assoc [ (Repr.Str "a", Repr.Int 1); (Repr.Str "b", Repr.Int 2) ]));
  (* only dirty keys are reprojected *)
  Alcotest.(check int) "projections = dirty keys" 2 (View.projections eval);
  let v3 = View.recompute eval r in
  Alcotest.(check bool) "stable" true (Repr.equal v2 v3);
  Alcotest.(check int) "no new projections" 2 (View.projections eval)

(* --- Timeline --------------------------------------------------------------- *)

(* naive substring test, avoiding a Str dependency *)
let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_timeline_layout () =
  let evs =
    [
      Event.Call { tid = 1; mid = "insert"; args = [ Repr.Int 3 ] };
      Event.Call { tid = 2; mid = "lookup"; args = [ Repr.Int 3 ] };
      Event.Commit { tid = 1 };
      Event.Return { tid = 1; mid = "insert"; value = Repr.success };
      Event.Return { tid = 2; mid = "lookup"; value = Repr.Bool true };
    ]
  in
  let rendered = Timeline.render_events evs in
  let lines = String.split_on_char '\n' rendered in
  (* header + separator + 5 event rows + trailing newline *)
  Alcotest.(check int) "row count" 8 (List.length lines);
  (match lines with
  | header :: _ ->
    Alcotest.(check bool) "header names both threads" true
      (contains ~sub:"T1" header && contains ~sub:"T2" header)
  | [] -> Alcotest.fail "empty rendering")

let test_timeline_witness_order () =
  let evs =
    [
      Event.Call { tid = 1; mid = "a"; args = [] };
      Event.Call { tid = 2; mid = "b"; args = [] };
      Event.Commit { tid = 2 };
      (* b commits first *)
      Event.Commit { tid = 1 };
      Event.Return { tid = 2; mid = "b"; value = Repr.Unit };
      Event.Return { tid = 1; mid = "a"; value = Repr.Unit };
    ]
  in
  let w = Timeline.witness (Log.of_events evs) in
  Alcotest.(check bool) "commit order: b is ordinal 1, a is 2" true
    (contains ~sub:"1. T2 b()" w && contains ~sub:"2. T1 a()" w)

let test_timeline_tail_window () =
  let evs = List.init 50 (fun i -> Event.Commit { tid = i mod 3 }) in
  let log = Log.of_events evs in
  let t = Timeline.tail ~window:5 log ~until:40 in
  Alcotest.(check bool) "window label" true (contains ~sub:"events 35..39 of 50" t)

(* --- Squeue / Online ------------------------------------------------------ *)

let test_squeue_fifo () =
  let q = Squeue.create () in
  List.iter (Squeue.push q) [ 1; 2; 3 ];
  let a = Squeue.pop q in
  let b = Squeue.pop q in
  let c = Squeue.pop q in
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] [ a; b; c ];
  Alcotest.(check int) "empty" 0 (Squeue.length q)

let test_squeue_cross_domain () =
  let q = Squeue.create () in
  let consumer =
    Domain.spawn (fun () ->
        let rec go acc n = if n = 0 then acc else go (acc + Squeue.pop q) (n - 1) in
        go 0 100)
  in
  for i = 1 to 100 do
    Squeue.push q i
  done;
  Alcotest.(check int) "all delivered" 5050 (Domain.join consumer)

let test_online_agrees_with_offline () =
  let open Vyrd_multiset in
  let view = Multiset_vector.viewdef ~capacity:8 in
  for seed = 0 to 4 do
    let log = Log.create ~level:`View () in
    let online = Online.start ~mode:`View ~view log Multiset_spec.spec in
    Vyrd_sched.Coop.run ~seed (fun s ->
        let ctx = Instrument.make s log in
        let ms = Multiset_vector.create ~capacity:8 ctx in
        for t = 1 to 3 do
          s.spawn (fun () ->
              let rng = Vyrd_sched.Prng.create (seed + (7 * t)) in
              for _ = 1 to 15 do
                let x = Vyrd_sched.Prng.int rng 5 in
                if Vyrd_sched.Prng.bool rng then ignore (Multiset_vector.insert ms x)
                else ignore (Multiset_vector.delete ms x)
              done)
        done);
    let online_report = Online.finish online in
    let offline_report = Checker.check ~mode:`View ~view log Multiset_spec.spec in
    Alcotest.(check string)
      (Printf.sprintf "same verdict seed %d" seed)
      (Report.tag offline_report) (Report.tag online_report);
    Alcotest.(check int)
      (Printf.sprintf "same events seed %d" seed)
      offline_report.Report.stats.events_processed
      online_report.Report.stats.events_processed
  done

let test_online_reports_violation () =
  (* the online verifier must surface a violation found mid-stream *)
  let log = Log.create ~level:`Io () in
  let online = Online.start ~mode:`Io log Vyrd_multiset.Multiset_spec.spec in
  Log.append log (Event.Call { tid = 1; mid = "delete"; args = [ Repr.Int 5 ] });
  Log.append log (Event.Commit { tid = 1 });
  Log.append log (Event.Return { tid = 1; mid = "delete"; value = Repr.Bool true });
  let report = Online.finish online in
  Alcotest.(check string) "violation surfaced" "io" (Report.tag report)

let test_subscribe_sees_only_new_events () =
  let log = Log.create ~level:`Io () in
  Log.append log (Event.Commit { tid = 1 });
  let seen = ref 0 in
  Log.subscribe log (fun _ -> incr seen);
  Log.append log (Event.Commit { tid = 2 });
  Alcotest.(check int) "only post-subscription events" 1 !seen

let test_per_method_stats () =
  let log =
    Log.of_events
      [
        Event.Call { tid = 1; mid = "insert"; args = [ Repr.Int 1 ] };
        Event.Commit { tid = 1 };
        Event.Return { tid = 1; mid = "insert"; value = Repr.success };
        Event.Call { tid = 1; mid = "insert"; args = [ Repr.Int 2 ] };
        Event.Commit { tid = 1 };
        Event.Return { tid = 1; mid = "insert"; value = Repr.success };
        Event.Call { tid = 1; mid = "lookup"; args = [ Repr.Int 1 ] };
        Event.Return { tid = 1; mid = "lookup"; value = Repr.Bool true };
      ]
  in
  let report = Checker.check ~mode:`Io log Vyrd_multiset.Multiset_spec.spec in
  Alcotest.(check (list (pair string int)))
    "per-method counts"
    [ ("insert", 2); ("lookup", 1) ]
    report.Report.stats.per_method

let test_view_mode_requires_view () =
  Alcotest.check_raises "missing view definition"
    (Invalid_argument "Checker.create: `View mode requires a view definition")
    (fun () -> ignore (Checker.create ~mode:`View Vyrd_multiset.Multiset_spec.spec))

let test_long_run_state_pruning () =
  (* thousands of commits force the checker's state-window pruning; an
     observer whose window spans the whole run must still be checkable *)
  let insert tid k =
    [
      Event.Call { tid; mid = "insert"; args = [ Repr.Int k ] };
      Event.Commit { tid };
      Event.Return { tid; mid = "insert"; value = Repr.success };
    ]
  in
  let many = List.concat (List.init 3000 (fun i -> insert 1 (i mod 7))) in
  (* plain long run: pruning engages, verdict unaffected *)
  let log = Log.of_events many in
  Alcotest.(check string) "long run passes" "pass"
    (Report.tag (Checker.check ~mode:`Io log Vyrd_multiset.Multiset_spec.spec));
  (* an observer open across the whole run pins the window *)
  let log2 =
    Log.of_events
      ([ Event.Call { tid = 9; mid = "lookup"; args = [ Repr.Int 3 ] } ]
      @ many
      @ [ Event.Return { tid = 9; mid = "lookup"; value = Repr.Bool true } ])
  in
  Alcotest.(check string) "spanning observer passes" "pass"
    (Report.tag (Checker.check ~mode:`Io log2 Vyrd_multiset.Multiset_spec.spec));
  (* and a spanning observer with an impossible return value still fails *)
  let log3 =
    Log.of_events
      ([ Event.Call { tid = 9; mid = "lookup"; args = [ Repr.Int 999 ] } ]
      @ many
      @ [ Event.Return { tid = 9; mid = "lookup"; value = Repr.Bool true } ])
  in
  Alcotest.(check string) "spanning violation found" "observer"
    (Report.tag (Checker.check ~mode:`Io log3 Vyrd_multiset.Multiset_spec.spec))

(* --- checker determinism --------------------------------------------------- *)

let checker_deterministic =
  qcheck
    (QCheck2.Test.make ~name:"checker verdict is a pure function of the log"
       ~count:30
       QCheck2.Gen.(int_range 0 1000)
       (fun seed ->
         let open Vyrd_multiset in
         let log = Log.create ~level:`View () in
         Vyrd_sched.Coop.run ~seed (fun s ->
             let ctx = Instrument.make s log in
             let ms =
               Multiset_vector.create ~bugs:[ Multiset_vector.Racy_find_slot ]
                 ~capacity:8 ctx
             in
             for t = 1 to 3 do
               s.spawn (fun () ->
                   let rng = Vyrd_sched.Prng.create (seed + (13 * t)) in
                   for _ = 1 to 10 do
                     ignore (Multiset_vector.insert_pair ms (Vyrd_sched.Prng.int rng 4)
                               (Vyrd_sched.Prng.int rng 4))
                   done)
             done);
         let view = Multiset_vector.viewdef ~capacity:8 in
         let a = Checker.check ~mode:`View ~view log Multiset_spec.spec in
         let b = Checker.check ~mode:`View ~view log Multiset_spec.spec in
         Report.tag a = Report.tag b
         && a.Report.stats.methods_checked = b.Report.stats.methods_checked))

let suite =
  [
    repr_roundtrip;
    repr_sorted_list_canonical;
    ("repr parse errors", `Quick, test_repr_parse_errors);
    ("repr escapes", `Quick, test_repr_escapes);
    event_roundtrip;
    log_file_roundtrip;
    ("log levels", `Quick, test_log_levels);
    ("log subscription", `Quick, test_log_subscription);
    ("replay plain writes", `Quick, test_replay_plain_writes);
    ("replay block buffers", `Quick, test_replay_block_buffers);
    ("replay block end publishes", `Quick, test_replay_block_end_publishes);
    ("replay ill-formed blocks", `Quick, test_replay_ill_formed);
    ("replay dirty tracking", `Quick, test_replay_dirty_tracking);
    ("keyed view incremental", `Quick, test_keyed_view_incremental);
    ("squeue fifo", `Quick, test_squeue_fifo);
    ("squeue cross-domain", `Quick, test_squeue_cross_domain);
    ("online agrees with offline", `Quick, test_online_agrees_with_offline);
    ("online reports violation", `Quick, test_online_reports_violation);
    ("subscribe sees only new events", `Quick, test_subscribe_sees_only_new_events);
    ("per-method statistics", `Quick, test_per_method_stats);
    ("timeline layout", `Quick, test_timeline_layout);
    ("timeline witness order", `Quick, test_timeline_witness_order);
    ("timeline tail window", `Quick, test_timeline_tail_window);
    ("long-run state pruning", `Quick, test_long_run_state_pruning);
    ("view mode requires a view", `Quick, test_view_mode_requires_view);
    checker_deterministic;
  ]
