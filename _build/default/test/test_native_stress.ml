(* Engine-independence: every subject, correct variant, under real system
   threads.  Non-deterministic by nature, so only the verdict is asserted —
   a correct implementation must pass refinement checking regardless of the
   interleavings the operating system produces. *)

open Vyrd
open Vyrd_harness

let assert_pass what report =
  if not (Report.is_pass report) then
    Alcotest.failf "%s: expected pass, got %a" what Report.pp report

let test_all_subjects_native () =
  List.iter
    (fun (s : Subjects.t) ->
      let cfg =
        { Harness.default with threads = 4; ops_per_thread = 25; key_pool = 10;
          key_range = 16; seed = 11 }
      in
      let log = Harness.run_native cfg (s.build ~bug:false) in
      assert_pass
        (Printf.sprintf "%s native io" s.name)
        (Checker.check ~mode:`Io log s.spec);
      assert_pass
        (Printf.sprintf "%s native view" s.name)
        (Checker.check ~mode:`View ~view:s.view ~invariants:s.invariants log s.spec))
    Subjects.all

let test_online_native () =
  (* online checking while the program runs under real threads *)
  let s = Subjects.blink_tree in
  let log = Log.create ~level:`View () in
  let online = Online.start ~mode:`View ~view:s.view log s.spec in
  let cfg = { Harness.default with threads = 4; ops_per_thread = 25; seed = 3 } in
  (* run_native builds its own log, so drive the engine directly *)
  ignore cfg;
  Vyrd_sched.Native.run (fun sched ->
      let ctx = Instrument.make sched log in
      let b = s.build ~bug:false ctx in
      let stop = ref false in
      (match b.Harness.daemon with
      | Some step ->
        sched.Vyrd_sched.Sched.spawn (fun () ->
            while not !stop do
              step ();
              sched.Vyrd_sched.Sched.yield ()
            done)
      | None -> ());
      let remaining = Atomic.make 4 in
      for t = 1 to 4 do
        sched.Vyrd_sched.Sched.spawn (fun () ->
            let rng = Vyrd_sched.Prng.create (100 + t) in
            for _ = 1 to 25 do
              b.Harness.random_op rng (Vyrd_sched.Prng.int rng 16)
            done;
            if Atomic.fetch_and_add remaining (-1) = 1 then stop := true)
      done);
  assert_pass "native online" (Online.finish online)

let suite =
  [
    ("all subjects under native threads", `Slow, test_all_subjects_native);
    ("online checking under native threads", `Slow, test_online_native);
  ]
