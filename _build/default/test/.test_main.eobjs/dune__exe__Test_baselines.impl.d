test/test_baselines.ml: Alcotest Checker Coop Event Instrument Linearize List Log Multiset_spec Multiset_vector Printf Prng Reduction Report Repr String Vyrd Vyrd_baselines Vyrd_multiset Vyrd_sched
