test/test_scanfs.ml: Alcotest Array Char Checker Coop Instrument Log Printf Prng Report Scanfs String Vyrd Vyrd_scanfs Vyrd_sched
