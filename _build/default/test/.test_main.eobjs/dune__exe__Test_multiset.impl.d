test/test_multiset.ml: Alcotest Checker Coop Event Instrument Log Multiset_btree Multiset_seq Multiset_spec Multiset_vector Printf Prng Report Repr Vyrd Vyrd_multiset Vyrd_sched
