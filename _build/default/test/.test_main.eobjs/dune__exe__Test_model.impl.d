test/test_model.ml: Array Char Coop Hashtbl Instrument List Log Option QCheck2 QCheck_alcotest String Vyrd Vyrd_boxwood Vyrd_jlib Vyrd_multiset Vyrd_scanfs Vyrd_sched
