test/test_compose.ml: Alcotest Checker Coop Event Instrument Log Multiset_spec Multiset_vector Printf Prng Report Repr Spec_compose Vector Vyrd Vyrd_jlib Vyrd_multiset Vyrd_sched
