test/test_explore.ml: Alcotest Checker Explore Instrument List Log Multiset_spec Multiset_vector Printf Reference Report Sched Vyrd Vyrd_multiset Vyrd_sched
