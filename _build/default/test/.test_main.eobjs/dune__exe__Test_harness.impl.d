test/test_harness.ml: Alcotest Checker Harness List Log Printf Report Subjects Vyrd Vyrd_harness
