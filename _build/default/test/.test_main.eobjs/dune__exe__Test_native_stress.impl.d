test/test_native_stress.ml: Alcotest Atomic Checker Harness Instrument List Log Online Printf Report Subjects Vyrd Vyrd_harness Vyrd_sched
