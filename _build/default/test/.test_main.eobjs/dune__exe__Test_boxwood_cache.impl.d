test/test_boxwood_cache.ml: Alcotest Cache Char Checker Chunk_manager Coop Instrument List Log Printf Prng Report String Vyrd Vyrd_boxwood Vyrd_sched
