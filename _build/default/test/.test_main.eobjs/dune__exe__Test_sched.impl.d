test/test_sched.ml: Alcotest Buffer Coop Fun Gen List Native Printf Prng QCheck2 QCheck_alcotest Sched String Vec Vyrd_sched
