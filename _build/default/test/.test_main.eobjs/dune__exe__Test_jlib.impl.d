test/test_jlib.ml: Alcotest Checker Coop Instrument Log Printf Prng Report String String_buffer Vector Vyrd Vyrd_jlib Vyrd_sched
