(* Tests for the B-link tree: sequential semantics, concurrent refinement,
   compression, the duplicate-data-node bug, and the cached-store stack. *)

open Vyrd
open Vyrd_sched
open Vyrd_boxwood

let assert_pass what report =
  if not (Report.is_pass report) then
    Alcotest.failf "%s: expected pass, got %a" what Report.pp report

let check_io log = Checker.check ~mode:`Io log Blink_tree.spec

let check_view log =
  Checker.check ~mode:`View ~view:Blink_tree.viewdef log Blink_tree.spec

(* --- sequential semantics -------------------------------------------- *)

let test_sequential_map_semantics () =
  let log = Log.create ~level:`View () in
  Coop.run (fun s ->
      let ctx = Instrument.make s log in
      let tree = Blink_tree.create ~order:4 (Bnode.mem_store ctx) ctx in
      for k = 1 to 40 do
        Blink_tree.insert tree k (k * 10)
      done;
      Alcotest.(check (option int)) "lookup present" (Some 70) (Blink_tree.lookup tree 7);
      Alcotest.(check (option int)) "lookup absent" None (Blink_tree.lookup tree 99);
      Blink_tree.insert tree 7 777;
      Alcotest.(check (option int)) "overwrite" (Some 777) (Blink_tree.lookup tree 7);
      Alcotest.(check bool) "delete present" true (Blink_tree.delete tree 7);
      Alcotest.(check bool) "delete absent" false (Blink_tree.delete tree 7);
      Alcotest.(check (option int)) "deleted" None (Blink_tree.lookup tree 7);
      Alcotest.(check int) "size" 39 (List.length (Blink_tree.unsafe_contents tree));
      Alcotest.(check bool) "tree grew in height" true (Blink_tree.unsafe_height tree > 1);
      let expected =
        List.filter (fun k -> k <> 7) (List.init 40 (fun i -> i + 1))
        |> List.map (fun k -> (k, k * 10))
      in
      Alcotest.(check (list (pair int int))) "contents" expected
        (Blink_tree.unsafe_contents tree));
  assert_pass "sequential tree io" (check_io log);
  assert_pass "sequential tree view" (check_view log)

let test_sequential_descending_inserts () =
  let log = Log.create ~level:`View () in
  Coop.run (fun s ->
      let ctx = Instrument.make s log in
      let tree = Blink_tree.create ~order:2 (Bnode.mem_store ctx) ctx in
      for k = 30 downto 1 do
        Blink_tree.insert tree k k
      done;
      for k = 1 to 30 do
        Alcotest.(check (option int))
          (Printf.sprintf "lookup %d" k)
          (Some k) (Blink_tree.lookup tree k)
      done);
  assert_pass "descending inserts" (check_view log)

let test_compression_prunes () =
  let log = Log.create ~level:`View () in
  Coop.run (fun s ->
      let ctx = Instrument.make s log in
      let tree = Blink_tree.create ~order:4 (Bnode.mem_store ctx) ctx in
      for k = 1 to 30 do
        Blink_tree.insert tree k k
      done;
      for k = 1 to 25 do
        ignore (Blink_tree.delete tree k)
      done;
      (* drive compression to a fixpoint *)
      for _ = 1 to 60 do
        Blink_tree.compress tree
      done;
      for k = 26 to 30 do
        Alcotest.(check (option int))
          (Printf.sprintf "survivor %d" k)
          (Some k) (Blink_tree.lookup tree k)
      done;
      Alcotest.(check (list (pair int int)))
        "contents preserved"
        (List.init 5 (fun i -> (26 + i, 26 + i)))
        (Blink_tree.unsafe_contents tree));
  assert_pass "compression io" (check_io log);
  assert_pass "compression view" (check_view log)

let test_version_numbers () =
  (* §7.2.4: the view carries per-pair version numbers, bumped on overwrite
     and reset when a key is re-inserted after deletion.  A forged version
     in the log must be flagged. *)
  let log = Log.create ~level:`View () in
  Coop.run (fun s ->
      let ctx = Instrument.make s log in
      let tree = Blink_tree.create ~order:4 (Bnode.mem_store ctx) ctx in
      Blink_tree.insert tree 1 10;
      Blink_tree.insert tree 1 11;
      Blink_tree.insert tree 1 12;
      (* version 3 now *)
      ignore (Blink_tree.delete tree 1);
      Blink_tree.insert tree 1 13 (* re-inserted: version restarts at 1 *));
  assert_pass "versioned run" (check_view log);
  (* forge the version of the final insert's committed node write *)
  let evs = Log.events log in
  let n = List.length evs in
  let forged =
    List.mapi
      (fun i ev ->
        match ev with
        | Event.Write { tid; var; value } when i > n - 4 -> (
          (* bump any version list [1] to [9] in the last committed write *)
          match value with
          | Repr.List
              [ lvl; keys; vals; Repr.List [ Repr.Int 1 ]; ch; hi; r; d ] ->
            Event.Write
              { tid; var;
                value =
                  Repr.List
                    [ lvl; keys; vals; Repr.List [ Repr.Int 9 ]; ch; hi; r; d ] }
          | _ -> ev)
        | _ -> ev)
      evs
  in
  Alcotest.(check string) "forged version flagged" "view"
    (Report.tag (check_view (Log.of_events forged)))

(* --- concurrent runs --------------------------------------------------- *)

let run_tree ?(bugs = []) ?(order = 4) ?(compressor = false) ~seed ~threads ~ops ~keys
    () =
  let log = Log.create ~level:`View () in
  Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let tree = Blink_tree.create ~bugs ~order (Bnode.mem_store ctx) ctx in
      let stop = ref false in
      if compressor then
        s.spawn (fun () ->
            while not !stop do
              Blink_tree.compress tree;
              s.yield ()
            done);
      let remaining = ref threads in
      for t = 1 to threads do
        s.spawn (fun () ->
            let rng = Prng.create ((seed * 2357) + t) in
            for _ = 1 to ops do
              let k = Prng.int rng keys in
              match Prng.int rng 10 with
              | 0 | 1 | 2 | 3 -> Blink_tree.insert tree k (Prng.int rng 1000)
              | 4 | 5 -> ignore (Blink_tree.delete tree k)
              | _ -> ignore (Blink_tree.lookup tree k)
            done;
            decr remaining;
            if !remaining = 0 then stop := true)
      done);
  log

let test_concurrent_correct () =
  for seed = 0 to 14 do
    let log = run_tree ~seed ~threads:4 ~ops:25 ~keys:12 () in
    assert_pass (Printf.sprintf "tree io seed %d" seed) (check_io log);
    assert_pass (Printf.sprintf "tree view seed %d" seed) (check_view log)
  done

let test_concurrent_with_compressor () =
  for seed = 0 to 14 do
    let log = run_tree ~compressor:true ~seed ~threads:4 ~ops:25 ~keys:8 () in
    assert_pass (Printf.sprintf "tree+compress seed %d" seed) (check_view log)
  done

let test_small_order_stress () =
  (* order 2 maximizes splits; make sure restructuring stays view-neutral *)
  for seed = 0 to 9 do
    let log = run_tree ~order:2 ~compressor:true ~seed ~threads:5 ~ops:25 ~keys:20 () in
    assert_pass (Printf.sprintf "order-2 seed %d" seed) (check_view log)
  done

let test_duplicate_bug_detected () =
  let rec go seed =
    if seed > 300 then Alcotest.fail "duplicate-data-node bug never detected"
    else
      let log =
        run_tree ~bugs:[ Blink_tree.Duplicate_data_nodes ] ~seed ~threads:4 ~ops:25
          ~keys:6 ()
      in
      let report = check_view log in
      if Report.is_pass report then go (seed + 1)
      else
        match report.Report.outcome with
        | Report.Fail (Report.View_violation { exec; _ }) ->
          Alcotest.(check string) "insert commits the duplicate" "insert" exec.e_mid
        | _ -> Alcotest.failf "unexpected %a" Report.pp report
  in
  go 0

(* --- the full Boxwood stack: tree over cache over chunks --------------- *)

let test_tree_over_cache_stack () =
  for seed = 0 to 7 do
    let tree_log = Log.create ~level:`View () in
    Coop.run ~seed (fun s ->
        (* cache+chunks as unverified substrate: null log, same scheduler *)
        let null_ctx = Instrument.make s (Log.create ~level:`None ()) in
        let cm = Chunk_manager.create ~chunks:256 null_ctx in
        let cache = Cache.create ~buf_size:512 null_ctx cm in
        let tree_ctx = Instrument.make s tree_log in
        let store = Cached_store.make cache ~tree_ctx in
        let tree = Blink_tree.create ~order:4 store tree_ctx in
        let stop = ref false in
        s.spawn (fun () ->
            while not !stop do
              Cache.flush cache;
              s.yield ()
            done);
        let remaining = ref 3 in
        for t = 1 to 3 do
          s.spawn (fun () ->
              let rng = Prng.create ((seed * 7) + t) in
              for _ = 1 to 20 do
                let k = Prng.int rng 10 in
                match Prng.int rng 10 with
                | 0 | 1 | 2 | 3 -> Blink_tree.insert tree k (Prng.int rng 100)
                | 4 | 5 -> ignore (Blink_tree.delete tree k)
                | _ -> ignore (Blink_tree.lookup tree k)
              done;
              decr remaining;
              if !remaining = 0 then stop := true)
        done);
    assert_pass (Printf.sprintf "stack io seed %d" seed) (check_io tree_log);
    assert_pass (Printf.sprintf "stack view seed %d" seed) (check_view tree_log)
  done

let test_node_serialization_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"Bnode serialize/deserialize roundtrip"
       QCheck2.Gen.(
         let* level = int_range 0 3 in
         let* keys = list_size (int_range 0 6) small_int in
         let* vals = list_size (int_range 0 6) small_int in
         let* vers = list_size (int_range 0 6) small_int in
         let* children = list_size (int_range 0 7) small_int in
         let* high = int_range 0 1000 in
         let* right = option small_int in
         let* dead = bool in
         return { Bnode.level; keys; vals; vers; children; high; right; dead })
       (fun n ->
         let n' = Bnode.deserialize (Bnode.serialize n) in
         n' = n
         &&
         (* NUL padding, as applied by the cache, must not break parsing *)
         Bnode.deserialize (Bnode.serialize n ^ String.make 7 '\000') = n))

let suite =
  [
    ("sequential map semantics", `Quick, test_sequential_map_semantics);
    ("sequential descending inserts", `Quick, test_sequential_descending_inserts);
    ("compression prunes and preserves", `Quick, test_compression_prunes);
    ("version numbers (§7.2.4)", `Quick, test_version_numbers);
    ("concurrent correct", `Quick, test_concurrent_correct);
    ("concurrent with compressor", `Quick, test_concurrent_with_compressor);
    ("order-2 split stress", `Quick, test_small_order_stress);
    ("duplicate-data-node bug detected", `Quick, test_duplicate_bug_detected);
    ("tree over cache over chunks", `Quick, test_tree_over_cache_stack);
    test_node_serialization_roundtrip;
  ]
