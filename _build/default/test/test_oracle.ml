(* Cross-validation of the fast incremental checker against the reference
   checker (a direct transcription of the paper's definitions). *)

open Vyrd
open Vyrd_sched
open Vyrd_multiset

let spec = Multiset_spec.spec
let view = Multiset_vector.viewdef ~capacity:16

let run_multiset ?(bugs = []) ~seed () =
  let log = Log.create ~level:`View () in
  Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let ms = Multiset_vector.create ~bugs ~capacity:16 ctx in
      for t = 1 to 4 do
        s.spawn (fun () ->
            let rng = Prng.create (seed + (23 * t)) in
            for _ = 1 to 15 do
              let x = Prng.int rng 6 in
              match Prng.int rng 5 with
              | 0 | 1 -> ignore (Multiset_vector.insert ms x)
              | 2 -> ignore (Multiset_vector.insert_pair ms x (x + 1))
              | 3 -> ignore (Multiset_vector.delete ms x)
              | _ -> ignore (Multiset_vector.lookup ms x)
            done)
      done);
  log

let test_agreement_correct_runs () =
  for seed = 0 to 29 do
    let log = run_multiset ~seed () in
    Alcotest.(check bool)
      (Printf.sprintf "io agreement seed %d" seed)
      true
      (Reference.agrees_with_checker log spec);
    Alcotest.(check bool)
      (Printf.sprintf "view agreement seed %d" seed)
      true
      (Reference.agrees_with_checker ~view log spec)
  done

let test_agreement_buggy_runs () =
  for seed = 0 to 29 do
    let log = run_multiset ~bugs:[ Multiset_vector.Racy_find_slot ] ~seed () in
    Alcotest.(check bool)
      (Printf.sprintf "io agreement seed %d" seed)
      true
      (Reference.agrees_with_checker log spec);
    Alcotest.(check bool)
      (Printf.sprintf "view agreement seed %d" seed)
      true
      (Reference.agrees_with_checker ~view log spec)
  done

let test_agreement_on_mutations () =
  (* flip every boolean return, one at a time, and require agreement on
     every mutant (whether it passes or fails) *)
  let log = run_multiset ~seed:5 () in
  let evs = Array.of_list (Log.events log) in
  let mutants = ref 0 in
  Array.iteri
    (fun i ev ->
      match ev with
      | Event.Return { tid; mid; value = Repr.Bool b } ->
        incr mutants;
        let evs' = Array.copy evs in
        evs'.(i) <- Event.Return { tid; mid; value = Repr.Bool (not b) };
        let log' = Log.of_events (Array.to_list evs') in
        Alcotest.(check bool)
          (Printf.sprintf "mutant %d io" i)
          true
          (Reference.agrees_with_checker log' spec);
        Alcotest.(check bool)
          (Printf.sprintf "mutant %d view" i)
          true
          (Reference.agrees_with_checker ~view log' spec)
      | _ -> ())
    evs;
  Alcotest.(check bool) "mutants generated" true (!mutants > 5)

let test_agreement_on_dropped_commits () =
  let log = run_multiset ~seed:7 () in
  let evs = Array.of_list (Log.events log) in
  Array.iteri
    (fun i ev ->
      match ev with
      | Event.Commit _ ->
        let evs' =
          Array.to_list evs |> List.filteri (fun j _ -> j <> i)
        in
        let log' = Log.of_events evs' in
        Alcotest.(check bool)
          (Printf.sprintf "dropped commit %d" i)
          true
          (Reference.agrees_with_checker ~view log' spec)
      | _ -> ())
    evs

let test_agreement_on_btree () =
  let open Vyrd_boxwood in
  for seed = 0 to 9 do
    let log = Log.create ~level:`View () in
    Coop.run ~seed (fun s ->
        let ctx = Instrument.make s log in
        let tree = Blink_tree.create ~order:2 (Bnode.mem_store ctx) ctx in
        let stop = ref false in
        s.spawn (fun () ->
            while not !stop do
              Blink_tree.compress tree;
              s.yield ()
            done);
        let remaining = ref 3 in
        for t = 1 to 3 do
          s.spawn (fun () ->
              let rng = Prng.create (seed + (11 * t)) in
              for _ = 1 to 15 do
                let k = Prng.int rng 8 in
                match Prng.int rng 4 with
                | 0 | 1 -> Blink_tree.insert tree k (Prng.int rng 50)
                | 2 -> ignore (Blink_tree.delete tree k)
                | _ -> ignore (Blink_tree.lookup tree k)
              done;
              decr remaining;
              if !remaining = 0 then stop := true)
        done);
    Alcotest.(check bool)
      (Printf.sprintf "btree agreement seed %d" seed)
      true
      (Reference.agrees_with_checker ~view:Blink_tree.viewdef log Blink_tree.spec)
  done

let test_agreement_on_harness_subjects () =
  (* agreement on harness-generated logs for the remaining subjects *)
  let open Vyrd_harness in
  List.iter
    (fun (subj : Subjects.t) ->
      for seed = 0 to 4 do
        let cfg =
          { Harness.default with threads = 3; ops_per_thread = 15; key_pool = 8;
            key_range = 12; seed }
        in
        let log = Harness.run cfg (subj.build ~bug:false) in
        Alcotest.(check bool)
          (Printf.sprintf "%s correct seed %d" subj.name seed)
          true
          (Reference.agrees_with_checker ~view:subj.view log subj.spec);
        let blog = Harness.run cfg (subj.build ~bug:true) in
        Alcotest.(check bool)
          (Printf.sprintf "%s buggy seed %d" subj.name seed)
          true
          (Reference.agrees_with_checker ~view:subj.view blog subj.spec)
      done)
    [ Subjects.cache; Subjects.scanfs; Subjects.string_buffer; Subjects.jvector ]

let suite =
  [
    ("oracle agrees on correct runs", `Quick, test_agreement_correct_runs);
    ("oracle agrees on buggy runs", `Quick, test_agreement_buggy_runs);
    ("oracle agrees on return mutants", `Slow, test_agreement_on_mutations);
    ("oracle agrees on dropped commits", `Quick, test_agreement_on_dropped_commits);
    ("oracle agrees on blink tree", `Quick, test_agreement_on_btree);
    ("oracle agrees on harness subjects", `Slow, test_agreement_on_harness_subjects);
  ]
