(* Robustness and mutation testing for the checker.

   - robustness: arbitrary event streams never crash the checker; it either
     passes or reports a structured violation;
   - soundness-by-construction: randomly generated spec-conformant serial
     logs always pass;
   - mutation: corrupting one event of a passing concurrent log (flipping a
     return value, dropping a commit, flipping a logged write) must surface
     as a violation. *)

open Vyrd
open Vyrd_sched
open Vyrd_multiset

let qcheck t = QCheck_alcotest.to_alcotest t
let spec = Multiset_spec.spec
let view = Multiset_vector.viewdef ~capacity:16

(* --- robustness --------------------------------------------------------- *)

let arbitrary_event_gen =
  let open QCheck2.Gen in
  let tid = int_range 0 5 in
  let mid =
    oneofl [ "insert"; "insert_pair"; "delete"; "lookup"; "count"; "compress"; "bogus" ]
  in
  let value =
    oneof
      [
        return Repr.Unit;
        map (fun b -> Repr.Bool b) bool;
        map (fun i -> Repr.Int i) (int_range 0 9);
        return Repr.success;
        return Repr.failure;
      ]
  in
  let var = oneofl [ "A[0].elt"; "A[0].valid"; "A[1].elt"; "A[1].valid"; "x" ] in
  oneof
    [
      map3 (fun tid mid args -> Event.Call { tid; mid; args }) tid mid
        (list_size (int_range 0 2) value);
      map3 (fun tid mid value -> Event.Return { tid; mid; value }) tid mid value;
      map (fun tid -> Event.Commit { tid }) tid;
      map3 (fun tid var value -> Event.Write { tid; var; value }) tid var value;
      map (fun tid -> Event.Block_begin { tid }) tid;
      map (fun tid -> Event.Block_end { tid }) tid;
    ]

let checker_never_crashes =
  qcheck
    (QCheck2.Test.make ~name:"checker total on arbitrary event streams" ~count:300
       QCheck2.Gen.(list_size (int_range 0 60) arbitrary_event_gen)
       (fun evs ->
         let log = Log.of_events evs in
         let io = Checker.check ~mode:`Io log spec in
         let vw = Checker.check ~mode:`View ~view log spec in
         (* any structured outcome is fine; crashing is not *)
         ignore (Report.tag io);
         ignore (Report.tag vw);
         true))

(* --- spec-conformant serial logs pass ------------------------------------ *)

let serial_log_gen =
  let open QCheck2.Gen in
  let* n = int_range 0 40 in
  let* choices = list_size (return n) (pair (int_range 0 5) (int_range 0 6)) in
  return
    (let bag = Hashtbl.create 8 in
     let multiplicity x = Option.value ~default:0 (Hashtbl.find_opt bag x) in
     let events = ref [] in
     let emit e = events := e :: !events in
     List.iter
       (fun (op, x) ->
         match op with
         | 0 | 1 ->
           emit (Event.Call { tid = 0; mid = "insert"; args = [ Repr.Int x ] });
           emit (Event.Commit { tid = 0 });
           Hashtbl.replace bag x (multiplicity x + 1);
           emit (Event.Return { tid = 0; mid = "insert"; value = Repr.success })
         | 2 ->
           emit
             (Event.Call
                { tid = 0; mid = "insert_pair"; args = [ Repr.Int x; Repr.Int (x + 1) ] });
           emit (Event.Commit { tid = 0 });
           Hashtbl.replace bag x (multiplicity x + 1);
           Hashtbl.replace bag (x + 1) (multiplicity (x + 1) + 1);
           emit (Event.Return { tid = 0; mid = "insert_pair"; value = Repr.success })
         | 3 ->
           emit (Event.Call { tid = 0; mid = "delete"; args = [ Repr.Int x ] });
           let present = multiplicity x > 0 in
           if present then begin
             emit (Event.Commit { tid = 0 });
             Hashtbl.replace bag x (multiplicity x - 1)
           end;
           emit (Event.Return { tid = 0; mid = "delete"; value = Repr.Bool present })
         | 4 ->
           emit (Event.Call { tid = 0; mid = "lookup"; args = [ Repr.Int x ] });
           emit
             (Event.Return
                { tid = 0; mid = "lookup"; value = Repr.Bool (multiplicity x > 0) })
         | _ ->
           emit (Event.Call { tid = 0; mid = "count"; args = [ Repr.Int x ] });
           emit
             (Event.Return { tid = 0; mid = "count"; value = Repr.Int (multiplicity x) }))
       choices;
     List.rev !events)

let conformant_serial_logs_pass =
  qcheck
    (QCheck2.Test.make ~name:"spec-conformant serial logs pass" ~count:200
       serial_log_gen (fun evs ->
         Report.is_pass (Checker.check ~mode:`Io (Log.of_events evs) spec)))

(* --- mutations of a passing concurrent log ------------------------------- *)

let passing_log seed =
  let log = Log.create ~level:`View () in
  Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let ms = Multiset_vector.create ~capacity:16 ctx in
      for t = 1 to 3 do
        s.spawn (fun () ->
            let rng = Prng.create (seed + (41 * t)) in
            for _ = 1 to 12 do
              let x = Prng.int rng 6 in
              match Prng.int rng 4 with
              | 0 | 1 -> ignore (Multiset_vector.insert ms x)
              | 2 -> ignore (Multiset_vector.delete ms x)
              | _ -> ignore (Multiset_vector.lookup ms x)
            done)
      done);
  log

(* replace the first event satisfying [pick] using [subst]; None if absent *)
let mutate_first evs ~pick ~subst =
  let rec go acc = function
    | [] -> None
    | ev :: rest when pick ev -> Some (List.rev_append acc (subst ev :: rest))
    | ev :: rest -> go (ev :: acc) rest
  in
  go [] evs

let drop_first evs ~pick =
  let rec go acc = function
    | [] -> None
    | ev :: rest when pick ev -> Some (List.rev_append acc rest)
    | ev :: rest -> go (ev :: acc) rest
  in
  go [] evs

let test_flipped_delete_return_fails () =
  let tested = ref 0 in
  for seed = 0 to 19 do
    let evs = Log.events (passing_log seed) in
    match
      mutate_first evs
        ~pick:(function
          | Event.Return { mid = "delete"; value = Repr.Bool true; _ } -> true
          | _ -> false)
        ~subst:(function
          | Event.Return { tid; mid; _ } ->
            Event.Return { tid; mid; value = Repr.Bool false }
          | ev -> ev)
    with
    | None -> ()
    | Some evs' ->
      incr tested;
      let r = Checker.check ~mode:`Io (Log.of_events evs') spec in
      if Report.is_pass r then
        Alcotest.failf "seed %d: flipped delete return not detected" seed
  done;
  Alcotest.(check bool) "mutation applied somewhere" true (!tested > 5)

let test_dropped_commit_fails () =
  let tested = ref 0 in
  for seed = 0 to 19 do
    let evs = Log.events (passing_log seed) in
    (* find the commit of a successful insert: the commit immediately
       followed (for that thread) by "ret insert success" *)
    let arr = Array.of_list evs in
    let target = ref None in
    Array.iteri
      (fun i ev ->
        match ev with
        | Event.Commit { tid } when !target = None ->
          let rec scan j =
            if j >= Array.length arr then ()
            else
              match arr.(j) with
              | Event.Return { tid = t'; mid = "insert"; value }
                when t' = tid && Repr.is_success value -> target := Some i
              | Event.Return { tid = t'; _ } when t' = tid -> ()
              | _ -> scan (j + 1)
          in
          scan (i + 1)
        | _ -> ())
      arr;
    match !target with
    | None -> ()
    | Some i ->
      incr tested;
      let evs' = List.filteri (fun j _ -> j <> i) evs in
      let r = Checker.check ~mode:`Io (Log.of_events evs') spec in
      if Report.is_pass r then
        Alcotest.failf "seed %d: dropped insert commit not detected" seed
  done;
  Alcotest.(check bool) "mutation applied somewhere" true (!tested > 5)

let test_corrupted_write_fails_view () =
  let tested = ref 0 in
  for seed = 0 to 19 do
    let evs = Log.events (passing_log seed) in
    match
      mutate_first evs
        ~pick:(function
          | Event.Write { var; value = Repr.Bool true; _ } ->
            String.length var > 6
            && String.sub var (String.length var - 5) 5 = "valid"
          | _ -> false)
        ~subst:(function
          | Event.Write { tid; var; _ } ->
            Event.Write { tid; var; value = Repr.Bool false }
          | ev -> ev)
    with
    | None -> ()
    | Some evs' ->
      incr tested;
      let r = Checker.check ~mode:`View ~view (Log.of_events evs') spec in
      if Report.is_pass r then
        Alcotest.failf "seed %d: corrupted valid-bit write not detected" seed
  done;
  Alcotest.(check bool) "mutation applied somewhere" true (!tested > 5)

let test_duplicated_commit_ill_formed () =
  let evs = Log.events (passing_log 0) in
  let arr = Array.of_list evs in
  let i =
    let rec find j =
      match arr.(j) with Event.Commit _ -> j | _ -> find (j + 1)
    in
    find 0
  in
  let evs' =
    List.concat (List.mapi (fun j ev -> if j = i then [ ev; ev ] else [ ev ]) evs)
  in
  Alcotest.(check string) "double commit is ill-formed" "ill-formed"
    (Report.tag (Checker.check ~mode:`Io (Log.of_events evs') spec))

(* View-mode checking subsumes I/O-mode checking: everything the I/O
   checker validates is also validated in view mode, so an I/O failure
   implies a view failure on the same log. *)
let view_subsumes_io =
  qcheck
    (QCheck2.Test.make ~name:"view refinement subsumes io refinement" ~count:150
       QCheck2.Gen.(list_size (int_range 0 60) arbitrary_event_gen)
       (fun evs ->
         let log = Log.of_events evs in
         let io = Checker.check ~mode:`Io log spec in
         let vw = Checker.check ~mode:`View ~view log spec in
         Report.is_pass io || not (Report.is_pass vw)))

(* the timeline renderer must be total on anything the checker accepts *)
let timeline_total =
  qcheck
    (QCheck2.Test.make ~name:"timeline renderer total" ~count:100
       QCheck2.Gen.(list_size (int_range 0 40) arbitrary_event_gen)
       (fun evs ->
         let log = Log.of_events evs in
         let rendered =
           Timeline.render ~options:{ Timeline.default with show_writes = true } log
         in
         let w = Timeline.witness log in
         String.length rendered >= 0 && String.length w >= 0))

let suite =
  [
    checker_never_crashes;
    conformant_serial_logs_pass;
    ("mutation: flipped delete return", `Quick, test_flipped_delete_return_fails);
    ("mutation: dropped insert commit", `Quick, test_dropped_commit_fails);
    ("mutation: corrupted valid write", `Quick, test_corrupted_write_fails_view);
    ("mutation: duplicated commit", `Quick, test_duplicated_commit_ill_formed);
    view_subsumes_io;
    timeline_total;
  ]
