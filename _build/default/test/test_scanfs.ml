(* Tests for the Scan file-system model (paper §7.3). *)

open Vyrd
open Vyrd_sched
open Vyrd_scanfs

let assert_pass what report =
  if not (Report.is_pass report) then
    Alcotest.failf "%s: expected pass, got %a" what Report.pp report

let check_io log = Checker.check ~mode:`Io log Scanfs.spec
let check_view log = Checker.check ~mode:`View ~view:Scanfs.viewdef log Scanfs.spec

let names = [| "alpha"; "beta"; "gamma"; "delta" |]

let payload rng =
  String.init (1 + Prng.int rng Scanfs.file_size) (fun _ ->
      Char.chr (97 + Prng.int rng 26))

let run_fs ?(bugs = []) ~seed ~threads ~ops () =
  let disk_blocks = 16 in
  let log = Log.create ~level:`View () in
  Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let fs = Scanfs.create_fs ~bugs ~disk_blocks ctx in
      let stop = ref false in
      s.spawn (fun () ->
          while not !stop do
            Scanfs.sync fs;
            s.yield ()
          done);
      let remaining = ref threads in
      for t = 1 to threads do
        s.spawn (fun () ->
            let rng = Prng.create ((seed * 271) + t) in
            for _ = 1 to ops do
              let name = names.(Prng.int rng (Array.length names)) in
              match Prng.int rng 13 with
              | 0 | 1 -> ignore (Scanfs.create fs name)
              | 2 | 3 | 4 -> ignore (Scanfs.write fs name (payload rng))
              | 5 | 6 -> ignore (Scanfs.read fs name)
              | 7 -> ignore (Scanfs.delete fs name)
              | 8 -> ignore (Scanfs.exists fs name)
              | 9 -> ignore (Scanfs.append fs name (String.make (1 + Prng.int rng 3) 'x'))
              | 10 ->
                ignore
                  (Scanfs.rename fs
                     ~src:names.(Prng.int rng (Array.length names))
                     ~dst:names.(Prng.int rng (Array.length names)))
              | _ -> Scanfs.evict fs (Prng.int rng disk_blocks)
            done;
            decr remaining;
            if !remaining = 0 then stop := true)
      done);
  log

let test_sequential_semantics () =
  let log = Log.create ~level:`View () in
  Coop.run (fun s ->
      let ctx = Instrument.make s log in
      let fs = Scanfs.create_fs ~disk_blocks:8 ctx in
      Alcotest.(check bool) "create" true (Scanfs.create fs "a");
      Alcotest.(check bool) "create duplicate" false (Scanfs.create fs "a");
      Alcotest.(check (option string)) "empty file" (Some "") (Scanfs.read fs "a");
      Alcotest.(check bool) "write" true (Scanfs.write fs "a" "hello world!");
      (let expected = "hello world!" ^ String.make (Scanfs.file_size - 12) '\000' in
       Alcotest.(check (option string)) "read back" (Some expected) (Scanfs.read fs "a"));
      Alcotest.(check bool) "write missing" false (Scanfs.write fs "b" "x");
      Alcotest.(check (option string)) "read missing" None (Scanfs.read fs "b");
      Alcotest.(check bool) "exists" true (Scanfs.exists fs "a");
      Scanfs.sync fs;
      Scanfs.evict fs 0;
      Scanfs.evict fs 1;
      (let expected = "hello world!" ^ String.make (Scanfs.file_size - 12) '\000' in
       Alcotest.(check (option string)) "read after evict" (Some expected)
         (Scanfs.read fs "a"));
      Alcotest.(check bool) "delete" true (Scanfs.delete fs "a");
      Alcotest.(check bool) "delete again" false (Scanfs.delete fs "a");
      Alcotest.(check bool) "gone" false (Scanfs.exists fs "a");
      (* freed blocks can be reused *)
      Alcotest.(check bool) "recreate" true (Scanfs.create fs "c");
      Alcotest.(check (option string)) "recreated empty" (Some "") (Scanfs.read fs "c");
      (* append and rename *)
      Alcotest.(check bool) "append" true (Scanfs.append fs "c" "12345");
      Alcotest.(check (option string)) "appended" (Some "12345") (Scanfs.read fs "c");
      Alcotest.(check bool) "append more" true (Scanfs.append fs "c" "678");
      Alcotest.(check (option string)) "appended more" (Some "12345678")
        (Scanfs.read fs "c");
      Alcotest.(check bool) "append overflow" false
        (Scanfs.append fs "c" (String.make Scanfs.file_size 'x'));
      Alcotest.(check bool) "rename" true (Scanfs.rename fs ~src:"c" ~dst:"d");
      Alcotest.(check bool) "source gone" false (Scanfs.exists fs "c");
      Alcotest.(check (option string)) "destination has contents" (Some "12345678")
        (Scanfs.read fs "d");
      Alcotest.(check bool) "rename missing" false (Scanfs.rename fs ~src:"c" ~dst:"e");
      Alcotest.(check bool) "rename onto existing" false
        (Scanfs.rename fs ~src:"d" ~dst:"d"));
  assert_pass "sequential io" (check_io log);
  assert_pass "sequential view" (check_view log)

let test_disk_full () =
  let log = Log.create ~level:`View () in
  Coop.run (fun s ->
      let ctx = Instrument.make s log in
      let fs = Scanfs.create_fs ~disk_blocks:Scanfs.blocks_per_file ctx in
      Alcotest.(check bool) "create a" true (Scanfs.create fs "a");
      Alcotest.(check bool) "create b" true (Scanfs.create fs "b");
      Alcotest.(check bool) "write a" true (Scanfs.write fs "a" "xxx");
      Alcotest.(check bool) "disk full" false (Scanfs.write fs "b" "yyy");
      Alcotest.(check bool) "free blocks" true (Scanfs.delete fs "a");
      Alcotest.(check bool) "room again" true (Scanfs.write fs "b" "yyy"));
  assert_pass "disk full io" (check_io log)

let test_concurrent_correct () =
  for seed = 0 to 14 do
    let log = run_fs ~seed ~threads:4 ~ops:20 () in
    assert_pass (Printf.sprintf "fs io seed %d" seed) (check_io log);
    assert_pass (Printf.sprintf "fs view seed %d" seed) (check_view log)
  done

let test_cache_bug_detected () =
  let rec go seed =
    if seed > 400 then Alcotest.fail "scanfs cache bug never detected"
    else
      let log =
        run_fs ~bugs:[ Scanfs.Unprotected_dirty_copy ] ~seed ~threads:4 ~ops:20 ()
      in
      let report = check_view log in
      if Report.is_pass report then go (seed + 1)
      else
        match report.Report.outcome with
        | Report.Fail (Report.View_violation _) -> ()
        | _ -> Alcotest.failf "unexpected %a" Report.pp report
  in
  go 0

let test_invariant_detects_bug_early () =
  (* with the Scan prototype's cache invariant, the torn flush is caught at
     the flush commit itself, not only after an evict *)
  let invariant = Scanfs.invariant_clean_matches_disk ~disk_blocks:16 in
  let rec go seed hits =
    if seed > 150 then hits
    else
      let log =
        run_fs ~bugs:[ Scanfs.Unprotected_dirty_copy ] ~seed ~threads:4 ~ops:20 ()
      in
      let r =
        Checker.check ~mode:`View ~view:Scanfs.viewdef ~invariants:[ invariant ] log
          Scanfs.spec
      in
      go (seed + 1) (if Report.is_pass r then hits else hits + 1)
  in
  let with_invariant = go 0 0 in
  Alcotest.(check bool)
    (Printf.sprintf "invariant detects on several seeds (%d)" with_invariant)
    true (with_invariant > 0);
  (* and it never fires on the correct implementation *)
  for seed = 0 to 9 do
    let log = run_fs ~seed ~threads:4 ~ops:20 () in
    assert_pass
      (Printf.sprintf "correct with invariant seed %d" seed)
      (Checker.check ~mode:`View ~view:Scanfs.viewdef ~invariants:[ invariant ] log
         Scanfs.spec)
  done

let test_bug_needs_flush_interleaving () =
  (* without the flush daemon the unprotected copy has nothing to race
     against: all runs must pass *)
  for seed = 0 to 9 do
    let disk_blocks = 8 in
    let log = Log.create ~level:`View () in
    Coop.run ~seed (fun s ->
        let ctx = Instrument.make s log in
        let fs =
          Scanfs.create_fs ~bugs:[ Scanfs.Unprotected_dirty_copy ] ~disk_blocks ctx
        in
        for t = 1 to 3 do
          s.spawn (fun () ->
              let rng = Prng.create (seed + (17 * t)) in
              ignore (Scanfs.create fs "f");
              for _ = 1 to 15 do
                ignore (Scanfs.write fs "f" (payload rng));
                ignore (Scanfs.read fs "f")
              done)
        done);
    assert_pass (Printf.sprintf "no-flush seed %d" seed) (check_view log)
  done

let suite =
  [
    ("sequential semantics", `Quick, test_sequential_semantics);
    ("disk full", `Quick, test_disk_full);
    ("concurrent correct", `Quick, test_concurrent_correct);
    ("cache bug detected by view", `Quick, test_cache_bug_detected);
    ("invariant detects bug at flush", `Quick, test_invariant_detects_bug_early);
    ("bug needs flush interleaving", `Quick, test_bug_needs_flush_interleaving);
  ]
