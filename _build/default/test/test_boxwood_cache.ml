(* Tests for the Boxwood Cache + Chunk Manager (paper §7.2.1–7.2.2). *)

open Vyrd
open Vyrd_sched
open Vyrd_boxwood

let chunks = 6
let buf_size = 8
let spec = Cache.spec ~chunks
let full_view = Cache.viewdef ~chunks ~buf_size
let invariant = Cache.invariant_clean_matches_chunk ~chunks ~buf_size

(* Random payload of exactly [buf_size] printable bytes. *)
let payload rng = String.init buf_size (fun _ -> Char.chr (97 + Prng.int rng 26))

let run_cache ?(bugs = []) ~seed ~threads ~ops () =
  let log = Log.create ~level:`View () in
  Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let cm = Chunk_manager.create ~chunks ctx in
      let cache = Cache.create ~bugs ~buf_size ctx cm in
      let stop = ref false in
      (* the flush daemon, as in Boxwood *)
      s.spawn (fun () ->
          while not !stop do
            Cache.flush cache;
            s.yield ()
          done);
      let remaining = ref threads in
      for t = 1 to threads do
        s.spawn (fun () ->
            let rng = Prng.create ((seed * 523) + t) in
            for _ = 1 to ops do
              let h = Prng.int rng chunks in
              match Prng.int rng 10 with
              | 0 | 1 | 2 | 3 -> Cache.write cache h (payload rng)
              | 4 | 5 | 6 -> ignore (Cache.read cache h)
              | _ -> Cache.evict cache h
            done;
            decr remaining;
            if !remaining = 0 then stop := true)
      done);
  log

let assert_pass what report =
  if not (Report.is_pass report) then
    Alcotest.failf "%s: expected pass, got %a" what Report.pp report

let test_cache_correct () =
  for seed = 0 to 14 do
    let log = run_cache ~seed ~threads:4 ~ops:20 () in
    assert_pass
      (Printf.sprintf "cache io seed %d" seed)
      (Checker.check ~mode:`Io log spec);
    assert_pass
      (Printf.sprintf "cache view seed %d" seed)
      (Checker.check ~mode:`View ~view:full_view log spec);
    assert_pass
      (Printf.sprintf "cache invariant seed %d" seed)
      (Checker.check ~mode:`View ~view:full_view ~invariants:[ invariant ] log spec)
  done

let test_cache_keyed_view_agrees () =
  for seed = 0 to 9 do
    let log = run_cache ~seed ~threads:4 ~ops:20 () in
    let full = Checker.check ~mode:`View ~view:full_view log spec in
    let keyed = Checker.check ~mode:`View ~view:Cache.viewdef_keyed log spec in
    Alcotest.(check string)
      (Printf.sprintf "same verdict seed %d" seed)
      (Report.tag full) (Report.tag keyed)
  done

let find_failing ~check ~max_seed ~run =
  let rec go seed =
    if seed > max_seed then None
    else
      let report = check (run ~seed) in
      if Report.is_pass report then go (seed + 1) else Some (seed, report)
  in
  go 0

let buggy_run ~seed =
  run_cache ~bugs:[ Cache.Unprotected_dirty_copy ] ~seed ~threads:4 ~ops:20 ()

let test_cache_bug_view_detected () =
  match
    find_failing ~max_seed:400
      ~check:(fun log -> Checker.check ~mode:`View ~view:full_view log spec)
      ~run:buggy_run
  with
  | None -> Alcotest.fail "unprotected dirty copy never detected by view refinement"
  | Some (_, report) -> (
    match report.Report.outcome with
    | Report.Fail (Report.View_violation _) -> ()
    | _ -> Alcotest.failf "unexpected %a" Report.pp report)

let test_cache_bug_invariant_detected () =
  match
    find_failing ~max_seed:400
      ~check:(fun log ->
        Checker.check ~mode:`View ~view:full_view ~invariants:[ invariant ] log spec)
      ~run:buggy_run
  with
  | None -> Alcotest.fail "unprotected dirty copy never detected by invariant (i)"
  | Some (_, report) ->
    Alcotest.(check bool)
      "invariant or view violation" true
      (List.mem (Report.tag report) [ "invariant"; "view" ])

let test_cache_bug_io_detected () =
  match
    find_failing ~max_seed:1500
      ~check:(fun log -> Checker.check ~mode:`Io log spec)
      ~run:buggy_run
  with
  | None ->
    (* The paper reports the same asymmetry: I/O refinement "required a much
       longer test run" (§7.2.2) — with modest runs it may need very many
       seeds; not finding one within the budget is acceptable, but views
       must win where both detect (covered below). *)
    ()
  | Some (_, report) -> (
    match report.Report.outcome with
    | Report.Fail (Report.Observer_violation _ | Report.Io_violation _) -> ()
    | _ -> Alcotest.failf "unexpected %a" Report.pp report)

let test_cache_view_detects_much_earlier () =
  (* The paper's Cache row of Table 1 has the most dramatic view-vs-I/O
     gap (hundreds of methods vs ~tens).  Where both modes detect the bug,
     view refinement must be no later; across runs it should be strictly
     earlier somewhere. *)
  let io_total = ref 0 and view_total = ref 0 and both = ref 0 and strictly = ref 0 in
  for seed = 0 to 200 do
    let log = buggy_run ~seed in
    let io = Checker.check ~mode:`Io log spec in
    let view = Checker.check ~mode:`View ~view:full_view log spec in
    if not (Report.is_pass view) then begin
      if not (Report.is_pass io) then begin
        incr both;
        io_total := !io_total + io.Report.stats.methods_checked;
        view_total := !view_total + view.Report.stats.methods_checked;
        if view.Report.stats.methods_checked < io.Report.stats.methods_checked then
          incr strictly
      end
      else incr strictly
      (* view detected, io missed entirely: the strongest form of winning *)
    end
  done;
  Alcotest.(check bool) "view strictly earlier somewhere" true (!strictly > 0);
  if !both > 0 then
    Alcotest.(check bool)
      (Printf.sprintf "view (%d) <= io (%d)" !view_total !io_total)
      true
      (!view_total <= !io_total)

let test_read_fill_is_view_neutral () =
  (* read_fill installs clean entries; the abstract store must be unchanged,
     invariant (i) must keep holding, and subsequent reads must hit. *)
  for seed = 0 to 9 do
    let log = Log.create ~level:`View () in
    Coop.run ~seed (fun s ->
        let ctx = Instrument.make s log in
        let cm = Chunk_manager.create ~chunks ctx in
        let cache = Cache.create ~buf_size ctx cm in
        let stop = ref false in
        s.spawn (fun () ->
            while not !stop do
              Cache.flush cache;
              s.yield ()
            done);
        let remaining = ref 4 in
        for t = 1 to 4 do
          s.spawn (fun () ->
              let rng = Prng.create ((seed * 67) + t) in
              for _ = 1 to 20 do
                let h = Prng.int rng chunks in
                match Prng.int rng 10 with
                | 0 | 1 | 2 -> Cache.write cache h (payload rng)
                | 3 | 4 | 5 | 6 -> ignore (Cache.read_fill cache h)
                | _ -> Cache.evict cache h
              done;
              decr remaining;
              if !remaining = 0 then stop := true)
        done);
    assert_pass
      (Printf.sprintf "read_fill view seed %d" seed)
      (Checker.check ~mode:`View ~view:full_view ~invariants:[ invariant ] log spec)
  done

let test_cache_sequential_semantics () =
  let log = Log.create ~level:`View () in
  Coop.run (fun s ->
      let ctx = Instrument.make s log in
      let cm = Chunk_manager.create ~chunks ctx in
      let cache = Cache.create ~buf_size ctx cm in
      Alcotest.(check string) "read of never-written" "" (Cache.read cache 0);
      Cache.write cache 0 "hello";
      let padded = "hello" ^ String.make 3 '\000' in
      Alcotest.(check string) "read back" padded (Cache.read cache 0);
      Alcotest.(check string) "chunk not yet written" "" (Chunk_manager.read cm 0);
      Cache.flush cache;
      Alcotest.(check string) "chunk after flush" padded (Chunk_manager.read cm 0);
      Alcotest.(check int) "version bumped" 1 (Chunk_manager.version cm 0);
      Cache.evict cache 0;
      Alcotest.(check string) "read after evict" padded (Cache.read cache 0);
      Cache.write cache 1 "dirty";
      Cache.evict cache 1;
      Alcotest.(check string) "dirty evict wrote back"
        ("dirty" ^ String.make 3 '\000')
        (Chunk_manager.read cm 1));
  assert_pass "sequential cache"
    (Checker.check ~mode:`View ~view:full_view ~invariants:[ invariant ] log spec)

let suite =
  [
    ("cache correct", `Quick, test_cache_correct);
    ("cache keyed view agrees with full", `Quick, test_cache_keyed_view_agrees);
    ("cache bug: view detects", `Quick, test_cache_bug_view_detected);
    ("cache bug: invariant detects", `Quick, test_cache_bug_invariant_detected);
    ("cache bug: io eventually detects", `Slow, test_cache_bug_io_detected);
    ("cache bug: view much earlier than io", `Slow, test_cache_view_detects_much_earlier);
    ("read_fill is view neutral", `Quick, test_read_fill_is_view_neutral);
    ("cache sequential semantics", `Quick, test_cache_sequential_semantics);
  ]
