(* Tests for the §7.1 harness and the subject registry. *)

open Vyrd
open Vyrd_harness

let assert_pass what report =
  if not (Report.is_pass report) then
    Alcotest.failf "%s: expected pass, got %a" what Report.pp report

let small seed =
  { Harness.default with threads = 3; ops_per_thread = 15; key_pool = 8; key_range = 12; seed }

let test_all_subjects_correct () =
  List.iter
    (fun (s : Subjects.t) ->
      for seed = 0 to 4 do
        let log = Harness.run (small seed) (s.build ~bug:false) in
        assert_pass
          (Printf.sprintf "%s io seed %d" s.name seed)
          (Checker.check ~mode:`Io log s.spec);
        assert_pass
          (Printf.sprintf "%s view seed %d" s.name seed)
          (Checker.check ~mode:`View ~view:s.view ~invariants:s.invariants log s.spec)
      done)
    Subjects.all

let test_all_subjects_buggy_detected () =
  (* every subject's injected bug must be caught by view refinement within a
     bounded seed sweep *)
  List.iter
    (fun (s : Subjects.t) ->
      let rec go seed =
        if seed > 500 then
          Alcotest.failf "%s: bug never detected within 500 seeds" s.name
        else
          let log =
            Harness.run
              { (small seed) with threads = 5; ops_per_thread = 25 }
              (s.build ~bug:true)
          in
          let r = Checker.check ~mode:`View ~view:s.view log s.spec in
          if Report.is_pass r then go (seed + 1)
      in
      go 0)
    Subjects.all

let test_determinism () =
  let subject = Subjects.multiset_vector in
  let events seed =
    Log.events (Harness.run (small seed) (subject.build ~bug:false))
  in
  Alcotest.(check bool) "same seed, same log" true (events 3 = events 3);
  Alcotest.(check bool) "different seed, different log" true (events 3 <> events 4)

let test_native_engine_run () =
  (* the native engine is not deterministic; just require a well-formed
     passing run of a correct subject *)
  let subject = Subjects.multiset_vector in
  let log =
    Harness.run_native
      { Harness.default with threads = 4; ops_per_thread = 20 }
      (subject.build ~bug:false)
  in
  assert_pass "native run" (Checker.check ~mode:`View ~view:subject.view log subject.spec)

let test_log_levels_filter () =
  let subject = Subjects.multiset_vector in
  let count level =
    let cfg = { (small 1) with log_level = level } in
    Log.length (Harness.run cfg (subject.build ~bug:false))
  in
  let none = count `None and io = count `Io and view = count `View and full = count `Full in
  Alcotest.(check int) "level `None logs nothing" 0 none;
  Alcotest.(check bool) "io < view" true (io < view);
  Alcotest.(check bool) "view < full" true (view < full)

let suite =
  [
    ("all subjects pass when correct", `Slow, test_all_subjects_correct);
    ("all subject bugs detected", `Slow, test_all_subjects_buggy_detected);
    ("harness is deterministic", `Quick, test_determinism);
    ("native engine run", `Quick, test_native_engine_run);
    ("log levels filter events", `Quick, test_log_levels_filter);
  ]
