(* End-to-end tests: multiset implementations instrumented, executed under
   the deterministic engine, and checked for I/O and view refinement. *)

open Vyrd
open Vyrd_sched
open Vyrd_multiset

let spec = Multiset_spec.spec
let capacity = 16

(* Run a random workload against the vector multiset; returns the log. *)
let run_vector ?(bugs = []) ?(trailing_lookups = 0) ~seed ~threads ~ops ~keys () =
  let log = Log.create ~level:`View () in
  Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let ms = Multiset_vector.create ~bugs ~capacity ctx in
      for t = 1 to threads do
        s.spawn (fun () ->
            let rng = Prng.create ((seed * 7919) + t) in
            for _ = 1 to ops do
              let x = Prng.int rng keys in
              match Prng.int rng 10 with
              | 0 | 1 | 2 -> ignore (Multiset_vector.insert ms x)
              | 3 | 4 -> ignore (Multiset_vector.insert_pair ms x (Prng.int rng keys))
              | 5 | 6 -> ignore (Multiset_vector.delete ms x)
              | 7 | 8 -> ignore (Multiset_vector.lookup ms x)
              | _ -> ignore (Multiset_vector.count ms x)
            done;
            for x = 0 to trailing_lookups - 1 do
              ignore (Multiset_vector.lookup ms (x mod keys))
            done)
      done);
  log

let run_btree ?(bugs = []) ?(compressor = false) ~seed ~threads ~ops ~keys () =
  let log = Log.create ~level:`View () in
  Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let ms = Multiset_btree.create ~bugs ctx in
      let stop = ref false in
      if compressor then
        s.spawn (fun () ->
            while not !stop do
              Multiset_btree.compress ms;
              s.yield ()
            done);
      let remaining = ref threads in
      for t = 1 to threads do
        s.spawn (fun () ->
            let rng = Prng.create ((seed * 104729) + t) in
            for _ = 1 to ops do
              let x = Prng.int rng keys in
              match Prng.int rng 10 with
              | 0 | 1 | 2 | 3 -> ignore (Multiset_btree.insert ms x)
              | 4 | 5 -> ignore (Multiset_btree.delete ms x)
              | 6 | 7 -> ignore (Multiset_btree.lookup ms x)
              | _ -> ignore (Multiset_btree.count ms x)
            done;
            decr remaining;
            if !remaining = 0 then stop := true)
      done);
  log

let view_vector = Multiset_vector.viewdef ~capacity
let check_io log = Checker.check ~mode:`Io log spec
let check_view ?(view = view_vector) log = Checker.check ~mode:`View ~view log spec

let assert_pass what report =
  if not (Report.is_pass report) then
    Alcotest.failf "%s: expected pass, got %a" what Report.pp report

let assert_tag what expected report =
  Alcotest.(check string) what expected (Report.tag report)

(* --- correct implementations pass ---------------------------------- *)

let test_vector_correct_io () =
  for seed = 0 to 14 do
    let log = run_vector ~seed ~threads:4 ~ops:25 ~keys:8 () in
    assert_pass (Printf.sprintf "vector io seed %d" seed) (check_io log)
  done

let test_vector_correct_view () =
  for seed = 0 to 14 do
    let log = run_vector ~seed ~threads:4 ~ops:25 ~keys:8 () in
    assert_pass (Printf.sprintf "vector view seed %d" seed) (check_view log)
  done

let test_btree_correct () =
  for seed = 0 to 9 do
    let log = run_btree ~seed ~threads:4 ~ops:20 ~keys:6 () in
    assert_pass (Printf.sprintf "btree io seed %d" seed) (check_io log);
    assert_pass
      (Printf.sprintf "btree view seed %d" seed)
      (check_view ~view:Multiset_btree.viewdef log)
  done

let test_btree_with_compressor () =
  for seed = 0 to 9 do
    let log = run_btree ~compressor:true ~seed ~threads:3 ~ops:15 ~keys:4 () in
    assert_pass
      (Printf.sprintf "btree+compress view seed %d" seed)
      (check_view ~view:Multiset_btree.viewdef log)
  done

(* --- bugs are detected ---------------------------------------------- *)

let find_failing ~check ~run =
  let rec go seed =
    if seed > 300 then None
    else
      let log = run ~seed in
      let report = check log in
      if Report.is_pass report then go (seed + 1) else Some (seed, report)
  in
  go 0

let test_racy_find_slot_view_detected () =
  match
    find_failing ~check:check_view ~run:(fun ~seed ->
        run_vector ~bugs:[ Multiset_vector.Racy_find_slot ] ~seed ~threads:4 ~ops:25
          ~keys:4 ())
  with
  | None -> Alcotest.fail "racy find_slot never produced a view violation"
  | Some (_, report) -> assert_tag "view violation" "view" report

let test_racy_find_slot_io_detected () =
  match
    find_failing ~check:check_io ~run:(fun ~seed ->
        run_vector ~bugs:[ Multiset_vector.Racy_find_slot ] ~trailing_lookups:8 ~seed
          ~threads:4 ~ops:25 ~keys:4 ())
  with
  | None -> Alcotest.fail "racy find_slot never produced an I/O violation"
  | Some (_, report) -> (
    match report.Report.outcome with
    | Report.Fail (Report.Observer_violation _ | Report.Io_violation _) -> ()
    | _ -> Alcotest.failf "unexpected outcome %a" Report.pp report)

let test_view_detects_earlier_than_io () =
  (* The paper's Table 1 claim: on the same traces, view refinement detects
     the bug after fewer methods than I/O refinement.  Compare average
     methods-to-detection over seeds where both detect. *)
  let io_total = ref 0 and view_total = ref 0 and hits = ref 0 in
  for seed = 0 to 80 do
    let log =
      run_vector ~bugs:[ Multiset_vector.Racy_find_slot ] ~trailing_lookups:8 ~seed
        ~threads:4 ~ops:25 ~keys:4 ()
    in
    let io = check_io log and view = check_view log in
    if (not (Report.is_pass io)) && not (Report.is_pass view) then begin
      incr hits;
      io_total := !io_total + io.Report.stats.methods_checked;
      view_total := !view_total + view.Report.stats.methods_checked
    end
  done;
  Alcotest.(check bool) "bug triggered on several seeds" true (!hits > 3);
  Alcotest.(check bool)
    (Printf.sprintf "view (%d) detects no later than io (%d) on average" !view_total
       !io_total)
    true
    (!view_total <= !io_total)

let test_btree_unlock_parent_detected () =
  match
    find_failing
      ~check:(check_view ~view:Multiset_btree.viewdef)
      ~run:(fun ~seed ->
        run_btree ~bugs:[ Multiset_btree.Unlock_parent_early ] ~seed ~threads:4
          ~ops:20 ~keys:6 ())
  with
  | None -> Alcotest.fail "unlock-parent bug never detected"
  | Some (_, report) -> assert_tag "view violation" "view" report

(* --- white-box scenario tests (Fig. 3 / Fig. 6 semantics) ------------ *)

let ev_call tid mid args = Event.Call { tid; mid; args }
let ev_ret tid mid value = Event.Return { tid; mid; value }
let ev_commit tid = Event.Commit { tid }
let ev_write tid var value = Event.Write { tid; var; value }

let test_fig3_commit_order_serializes () =
  (* LookUp(3) starts before Insert(3) but commits after it: the witness
     interleaving orders Insert(3) first, so returning true is correct. *)
  let log =
    Log.of_events
      [
        ev_call 1 "lookup" [ Repr.Int 3 ];
        ev_call 2 "insert" [ Repr.Int 3 ];
        ev_commit 2;
        ev_ret 2 "insert" Repr.success;
        ev_ret 1 "lookup" (Repr.Bool true);
      ]
  in
  assert_pass "fig3 pass" (check_io log)

let test_fig3_delete_after_insert () =
  (* Commit order Insert(3); Delete(3): a LookUp(3) running after both must
     return false. *)
  let log =
    Log.of_events
      [
        ev_call 1 "insert" [ Repr.Int 3 ];
        ev_commit 1;
        ev_ret 1 "insert" Repr.success;
        ev_call 2 "delete" [ Repr.Int 3 ];
        ev_commit 2;
        ev_ret 2 "delete" (Repr.Bool true);
        ev_call 3 "lookup" [ Repr.Int 3 ];
        ev_ret 3 "lookup" (Repr.Bool true);
      ]
  in
  assert_tag "late lookup true is a violation" "observer" (check_io log)

let test_observer_window_is_bounded () =
  (* A lookup that returns true for an element inserted only after the
     lookup returned must fail. *)
  let log =
    Log.of_events
      [
        ev_call 1 "lookup" [ Repr.Int 9 ];
        ev_ret 1 "lookup" (Repr.Bool true);
        ev_call 2 "insert" [ Repr.Int 9 ];
        ev_commit 2;
        ev_ret 2 "insert" Repr.success;
      ]
  in
  assert_tag "lookup ahead of insert" "observer" (check_io log)

let test_delete_true_on_empty_is_violation () =
  let log =
    Log.of_events
      [
        ev_call 1 "delete" [ Repr.Int 5 ];
        ev_commit 1;
        ev_ret 1 "delete" (Repr.Bool true);
      ]
  in
  assert_tag "delete true on empty" "io" (check_io log)

let test_insert_pair_partial_view_violation () =
  (* Fig. 6's essence: insert_pair(5,6) commits but only 6 reaches the
     shadow state (5 was overwritten) — viewI <> viewS at the commit. *)
  let log =
    Log.of_events
      [
        ev_call 1 "insert_pair" [ Repr.Int 5; Repr.Int 6 ];
        ev_write 1 "A[0].elt" (Repr.Int 7);
        (* 5 lost: slot stolen *)
        ev_write 1 "A[1].elt" (Repr.Int 6);
        Event.Block_begin { tid = 1 };
        ev_write 1 "A[0].valid" (Repr.Bool true);
        ev_write 1 "A[1].valid" (Repr.Bool true);
        ev_commit 1;
        Event.Block_end { tid = 1 };
        ev_ret 1 "insert_pair" Repr.success;
      ]
  in
  assert_tag "partial pair" "view" (check_view log)

let test_commit_block_hides_dirty_state () =
  (* T2 commits while T1 sits mid-commit-block; T1's buffered write must not
     leak into viewI at T2's commit. *)
  let log =
    Log.of_events
      [
        ev_call 1 "insert_pair" [ Repr.Int 1; Repr.Int 2 ];
        ev_call 2 "insert" [ Repr.Int 3 ];
        ev_write 1 "A[0].elt" (Repr.Int 1);
        ev_write 1 "A[1].elt" (Repr.Int 2);
        ev_write 2 "A[2].elt" (Repr.Int 3);
        Event.Block_begin { tid = 1 };
        ev_write 1 "A[0].valid" (Repr.Bool true);
        (* context switch: T2 commits now; T1's half-published pair is
           invisible because the block buffers it *)
        ev_write 2 "A[2].valid" (Repr.Bool true);
        ev_commit 2;
        ev_ret 2 "insert" Repr.success;
        ev_write 1 "A[1].valid" (Repr.Bool true);
        ev_commit 1;
        Event.Block_end { tid = 1 };
        ev_ret 1 "insert_pair" Repr.success;
      ]
  in
  assert_pass "dirty state hidden" (check_view log)

let test_without_block_dirty_state_fails () =
  (* Same interleaving but without the commit block: T2's commit sees element
     1 without element 2 — the dirty state of §5.2 — and viewI <> viewS. *)
  let log =
    Log.of_events
      [
        ev_call 1 "insert_pair" [ Repr.Int 1; Repr.Int 2 ];
        ev_call 2 "insert" [ Repr.Int 3 ];
        ev_write 1 "A[0].elt" (Repr.Int 1);
        ev_write 1 "A[1].elt" (Repr.Int 2);
        ev_write 2 "A[2].elt" (Repr.Int 3);
        ev_write 1 "A[0].valid" (Repr.Bool true);
        ev_write 2 "A[2].valid" (Repr.Bool true);
        ev_commit 2;
        ev_ret 2 "insert" Repr.success;
        ev_write 1 "A[1].valid" (Repr.Bool true);
        ev_commit 1;
        ev_ret 1 "insert_pair" Repr.success;
      ]
  in
  assert_tag "dirty state visible" "view" (check_view log)

let test_misplaced_commit_flagged () =
  (* §4.1: a wrong commit-point annotation on correct code produces
     refinement violations — the signal to re-examine the annotation, not
     the implementation.  Insert committing at the slot reservation claims
     the element is published before the valid bit is set. *)
  let rec go seed =
    if seed > 200 then
      Alcotest.fail "misplaced commit never produced a violation"
    else
      let log =
        run_vector ~bugs:[ Multiset_vector.Misplaced_commit ] ~seed ~threads:4
          ~ops:25 ~keys:6 ()
      in
      let report = check_view log in
      if Report.is_pass report then go (seed + 1)
      else
        Alcotest.(check string) "view flags the wrong witness" "view"
          (Report.tag report)
  in
  go 0;
  (* single-threaded, even sequential runs are flagged: viewI at the early
     commit lacks the not-yet-valid element *)
  let log =
    run_vector ~bugs:[ Multiset_vector.Misplaced_commit ] ~seed:0 ~threads:1
      ~ops:10 ~keys:4 ()
  in
  Alcotest.(check string) "sequential run already flagged" "view"
    (Report.tag (check_view log))

let test_scanning_lookup_is_weakly_consistent () =
  (* Reproduction finding (DESIGN.md §5): the paper's per-slot scanning
     LookUp can answer false although the element was continuously present,
     when the element migrates from an unscanned to an already-scanned slot.
     VYRD's observer rule flags such runs.  Hand-crafted witness: x sits in
     slot 1; during T9's scan (which passed slot 0 while it was empty), a
     concurrent thread inserts x into slot 0 (commits) and then deletes the
     slot-1 occurrence (commits). *)
  let log =
    Log.of_events
      [
        ev_call 1 "insert" [ Repr.Int 7 ];
        ev_write 1 "A[1].elt" (Repr.Int 7);
        ev_write 1 "A[1].valid" (Repr.Bool true);
        ev_commit 1;
        ev_ret 1 "insert" Repr.success;
        ev_call 9 "lookup" [ Repr.Int 7 ];
        (* T9 scans slot 0: empty.  Now x moves to slot 0. *)
        ev_call 2 "insert" [ Repr.Int 7 ];
        ev_write 2 "A[0].elt" (Repr.Int 7);
        ev_write 2 "A[0].valid" (Repr.Bool true);
        ev_commit 2;
        ev_ret 2 "insert" Repr.success;
        ev_call 3 "delete" [ Repr.Int 7 ];
        ev_write 3 "A[1].valid" (Repr.Bool false);
        ev_commit 3;
        ev_write 3 "A[1].elt" Repr.Unit;
        ev_ret 3 "delete" (Repr.Bool true);
        (* T9 reaches slot 1: empty again — answers false. *)
        ev_ret 9 "lookup" (Repr.Bool false);
      ]
  in
  (* x = 7 is in the multiset in every state of T9's window, so the scan's
     false answer is a refinement violation — correctly reported. *)
  assert_tag "weak scan flagged" "observer" (check_io log);
  (* The snapshot lookup of the shipped implementation cannot produce this
     trace; a long random sweep stays clean (see dev/sweep.ml). *)
  for seed = 0 to 4 do
    let log = run_vector ~seed ~threads:6 ~ops:40 ~keys:4 () in
    assert_pass (Printf.sprintf "snapshot observers seed %d" seed) (check_io log)
  done

(* --- ill-formedness diagnostics -------------------------------------- *)

let test_ill_formed_double_commit () =
  let log =
    Log.of_events
      [
        ev_call 1 "insert" [ Repr.Int 3 ];
        ev_commit 1;
        ev_commit 1;
        ev_ret 1 "insert" Repr.success;
      ]
  in
  assert_tag "double commit" "ill-formed" (check_io log)

let test_missing_commit_is_violation () =
  (* An execution of a mutator with no commit action performed no
     transition; returning success is then inconsistent with every state in
     its window. *)
  let log =
    Log.of_events
      [ ev_call 1 "insert" [ Repr.Int 3 ]; ev_ret 1 "insert" Repr.success ]
  in
  assert_tag "missing commit" "observer" (check_io log);
  (* ... but a failure return without a commit is fine (exceptional
     termination mutates nothing). *)
  let log =
    Log.of_events
      [ ev_call 1 "insert" [ Repr.Int 3 ]; ev_ret 1 "insert" Repr.failure ]
  in
  assert_pass "failure without commit" (check_io log)

let test_ill_formed_commit_outside () =
  let log = Log.of_events [ ev_commit 1 ] in
  assert_tag "commit outside method" "ill-formed" (check_io log)

let test_ill_formed_nested_call () =
  let log =
    Log.of_events [ ev_call 1 "insert" [ Repr.Int 1 ]; ev_call 1 "insert" [ Repr.Int 2 ] ]
  in
  assert_tag "nested call" "ill-formed" (check_io log)

(* --- the atomized implementation as specification (§4.4) ------------- *)

let test_atomized_spec_agrees () =
  for seed = 0 to 9 do
    let log = run_vector ~seed ~threads:4 ~ops:20 ~keys:6 () in
    let a = Checker.check ~mode:`Io log spec in
    let b = Checker.check ~mode:`Io log Multiset_seq.spec in
    Alcotest.(check string)
      (Printf.sprintf "same verdict seed %d" seed)
      (Report.tag a) (Report.tag b)
  done;
  let bad =
    Log.of_events
      [
        ev_call 1 "delete" [ Repr.Int 5 ];
        ev_commit 1;
        ev_ret 1 "delete" (Repr.Bool true);
      ]
  in
  assert_tag "atomized rejects bad delete" "io"
    (Checker.check ~mode:`Io bad Multiset_seq.spec)

let test_atomized_view_agrees () =
  for seed = 0 to 5 do
    let log = run_vector ~seed ~threads:3 ~ops:15 ~keys:5 () in
    assert_pass
      (Printf.sprintf "atomized view seed %d" seed)
      (Checker.check ~mode:`View ~view:view_vector log Multiset_seq.spec)
  done

let suite =
  [
    ("vector correct: io refinement", `Quick, test_vector_correct_io);
    ("vector correct: view refinement", `Quick, test_vector_correct_view);
    ("btree correct", `Quick, test_btree_correct);
    ("btree with compression thread", `Quick, test_btree_with_compressor);
    ("racy find_slot: view detects", `Quick, test_racy_find_slot_view_detected);
    ("racy find_slot: io detects", `Quick, test_racy_find_slot_io_detected);
    ("view detects earlier than io", `Slow, test_view_detects_earlier_than_io);
    ("btree unlock-parent bug detected", `Quick, test_btree_unlock_parent_detected);
    ("fig3: commit order serializes", `Quick, test_fig3_commit_order_serializes);
    ("fig3: delete after insert", `Quick, test_fig3_delete_after_insert);
    ("observer window bounded", `Quick, test_observer_window_is_bounded);
    ("delete true on empty", `Quick, test_delete_true_on_empty_is_violation);
    ("fig6: partial insert_pair", `Quick, test_insert_pair_partial_view_violation);
    ("commit block hides dirty state", `Quick, test_commit_block_hides_dirty_state);
    ("no commit block: dirty state fails", `Quick, test_without_block_dirty_state_fails);
    ("misplaced commit point flagged (§4.1)", `Quick, test_misplaced_commit_flagged);
    ( "scanning lookup weakly consistent",
      `Quick,
      test_scanning_lookup_is_weakly_consistent );
    ("ill-formed: double commit", `Quick, test_ill_formed_double_commit);
    ("missing commit is a violation", `Quick, test_missing_commit_is_violation);
    ("ill-formed: commit outside method", `Quick, test_ill_formed_commit_outside);
    ("ill-formed: nested call", `Quick, test_ill_formed_nested_call);
    ("atomized spec agrees (io)", `Quick, test_atomized_spec_agrees);
    ("atomized spec agrees (view)", `Quick, test_atomized_view_agrees);
  ]
