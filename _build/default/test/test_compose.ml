(* Compositional checking: a multiset and a java.util.Vector exercised by
   the same program, verified in one refinement run against the product
   specification. *)

open Vyrd
open Vyrd_sched
open Vyrd_multiset
open Vyrd_jlib

let capacity = 8

let spec = Spec_compose.pair Multiset_spec.spec Vector.spec

(* Variable spaces collide on "A[i]..." vs vector's "elem[i]"/"count" —
   disjoint as required. *)
let view =
  Spec_compose.pair_views
    (Multiset_vector.viewdef ~capacity)
    (Vector.viewdef ~capacity)

let run_both ?(ms_bugs = []) ~seed () =
  let log = Log.create ~level:`View () in
  Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let ms = Multiset_vector.create ~bugs:ms_bugs ~capacity ctx in
      let v = Vector.create ~capacity ctx in
      for t = 1 to 4 do
        s.spawn (fun () ->
            let rng = Prng.create (seed + (19 * t)) in
            for _ = 1 to 15 do
              let x = Prng.int rng 5 in
              match Prng.int rng 8 with
              | 0 | 1 -> ignore (Multiset_vector.insert ms x)
              | 2 -> ignore (Multiset_vector.delete ms x)
              | 3 -> ignore (Multiset_vector.lookup ms x)
              | 4 | 5 -> ignore (Vector.add v x)
              | 6 -> ignore (Vector.remove_last v)
              | _ -> ignore (Vector.size v)
            done)
      done);
  log

let assert_pass what report =
  if not (Report.is_pass report) then
    Alcotest.failf "%s: expected pass, got %a" what Report.pp report

let test_composite_correct () =
  for seed = 0 to 9 do
    let log = run_both ~seed () in
    assert_pass
      (Printf.sprintf "composite io seed %d" seed)
      (Checker.check ~mode:`Io log spec);
    assert_pass
      (Printf.sprintf "composite view seed %d" seed)
      (Checker.check ~mode:`View ~view log spec)
  done

let test_composite_detects_component_bug () =
  (* a bug in one component must surface through the product spec *)
  let rec go seed =
    if seed > 300 then Alcotest.fail "component bug never detected"
    else
      let log = run_both ~ms_bugs:[ Multiset_vector.Racy_find_slot ] ~seed () in
      let report = Checker.check ~mode:`View ~view log spec in
      if Report.is_pass report then go (seed + 1)
  in
  go 0

let test_composite_routes_methods () =
  (* methods are routed by name: multiset "insert" vs vector "add" *)
  let log =
    Log.of_events
      [
        Event.Call { tid = 1; mid = "insert"; args = [ Repr.Int 3 ] };
        Event.Commit { tid = 1 };
        Event.Return { tid = 1; mid = "insert"; value = Repr.success };
        Event.Call { tid = 2; mid = "add"; args = [ Repr.Int 9 ] };
        Event.Commit { tid = 2 };
        Event.Return { tid = 2; mid = "add"; value = Repr.success };
        Event.Call { tid = 1; mid = "lookup"; args = [ Repr.Int 3 ] };
        Event.Return { tid = 1; mid = "lookup"; value = Repr.Bool true };
        Event.Call { tid = 2; mid = "size"; args = [] };
        Event.Return { tid = 2; mid = "size"; value = Repr.Int 1 };
      ]
  in
  assert_pass "routing" (Checker.check ~mode:`Io log spec);
  (* cross-component confusion is a violation: vector must not see the
     multiset's element *)
  let bad =
    Log.of_events
      [
        Event.Call { tid = 1; mid = "insert"; args = [ Repr.Int 3 ] };
        Event.Commit { tid = 1 };
        Event.Return { tid = 1; mid = "insert"; value = Repr.success };
        Event.Call { tid = 2; mid = "size"; args = [] };
        Event.Return { tid = 2; mid = "size"; value = Repr.Int 1 };
      ]
  in
  Alcotest.(check string) "components are independent" "observer"
    (Report.tag (Checker.check ~mode:`Io bad spec))

let test_composite_unknown_method_ill_formed () =
  let log =
    Log.of_events [ Event.Call { tid = 1; mid = "frobnicate"; args = [] } ]
  in
  Alcotest.(check string) "unknown method" "ill-formed"
    (Report.tag (Checker.check ~mode:`Io log spec))

let suite =
  [
    ("composite correct", `Quick, test_composite_correct);
    ("composite detects component bug", `Quick, test_composite_detects_component_bug);
    ("composite routes methods", `Quick, test_composite_routes_methods);
    ("composite rejects unknown methods", `Quick, test_composite_unknown_method_ill_formed);
  ]
