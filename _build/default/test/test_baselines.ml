(* Tests for the two baselines: naive linearization search and
   Atomizer-style reduction (paper §2 and §8). *)

open Vyrd
open Vyrd_sched
open Vyrd_multiset
open Vyrd_baselines

let ev_call tid mid args = Event.Call { tid; mid; args }
let ev_ret tid mid value = Event.Return { tid; mid; value }
let ev_commit tid = Event.Commit { tid }

(* --- naive linearization ------------------------------------------------ *)

let test_linearize_fig3 () =
  (* LookUp(3) overlapping Insert(3): true is justified by serializing the
     insert first, even without commit annotations. *)
  let log =
    Log.of_events
      [
        ev_call 1 "lookup" [ Repr.Int 3 ];
        ev_call 2 "insert" [ Repr.Int 3 ];
        ev_ret 2 "insert" Repr.success;
        ev_ret 1 "lookup" (Repr.Bool true);
      ]
  in
  match Linearize.check log Multiset_spec.spec with
  | Linearize.Linearizable _ -> ()
  | r -> Alcotest.failf "expected linearizable, explored %d" (Linearize.cost r)

let test_linearize_rejects () =
  (* lookup strictly after a delete must not see the element *)
  let log =
    Log.of_events
      [
        ev_call 1 "insert" [ Repr.Int 3 ];
        ev_ret 1 "insert" Repr.success;
        ev_call 2 "delete" [ Repr.Int 3 ];
        ev_ret 2 "delete" (Repr.Bool true);
        ev_call 3 "lookup" [ Repr.Int 3 ];
        ev_ret 3 "lookup" (Repr.Bool true);
      ]
  in
  match Linearize.check log Multiset_spec.spec with
  | Linearize.Not_linearizable _ -> ()
  | r -> Alcotest.failf "expected not linearizable (%d explored)" (Linearize.cost r)

(* [k] fully-overlapping insert(i) executions plus an overlapping lookup
   whose return value is wrong in every serialization: certifying the
   violation forces the search to visit the whole permutation tree (~ e·k!
   nodes), which is the paper's "4! ways" blow-up. *)
let overlapping_inserts k =
  let calls = List.init k (fun i -> ev_call (i + 1) "insert" [ Repr.Int i ]) in
  let rets = List.init k (fun i -> ev_ret (i + 1) "insert" Repr.success) in
  Log.of_events
    ([ ev_call 99 "lookup" [ Repr.Int 999 ] ]
    @ calls @ rets
    @ [ ev_ret 99 "lookup" (Repr.Bool true) ])

let test_linearize_cost_grows () =
  let cost k =
    Linearize.cost (Linearize.check (overlapping_inserts k) Multiset_spec.spec)
  in
  let c4 = cost 4 and c6 = cost 6 and c8 = cost 8 in
  Alcotest.(check bool)
    (Printf.sprintf "super-linear growth: %d -> %d -> %d" c4 c6 c8)
    true
    (c6 > 8 * c4 && c8 > 8 * c6)

let test_vyrd_cost_stays_linear () =
  (* the same trace, annotated with commits, is checked by VYRD in one pass:
     methods processed = k + 1 regardless of overlap *)
  let k = 8 in
  let calls = List.init k (fun i -> ev_call (i + 1) "insert" [ Repr.Int i ]) in
  let commits_rets =
    List.concat (List.init k (fun i -> [ ev_commit (i + 1); ev_ret (i + 1) "insert" Repr.success ]))
  in
  let log =
    Log.of_events
      (calls @ commits_rets
      @ [ ev_call 99 "lookup" [ Repr.Int 0 ]; ev_ret 99 "lookup" (Repr.Bool true) ])
  in
  let report = Checker.check ~mode:`Io log Multiset_spec.spec in
  Alcotest.(check bool) "passes" true (Report.is_pass report);
  Alcotest.(check int) "one transition per method" (k + 1)
    report.Report.stats.methods_checked

let test_linearize_budget () =
  match
    Linearize.check ~budget:50 (overlapping_inserts 10) Multiset_spec.spec
  with
  | Linearize.Budget_exhausted n -> Alcotest.(check bool) "cost counted" true (n > 50)
  | r -> Alcotest.failf "expected budget exhaustion, got %d" (Linearize.cost r)

(* --- reduction / atomicity ---------------------------------------------- *)

let multiset_full_log ~seed =
  let log = Log.create ~level:`Full () in
  Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let ms = Multiset_vector.create ~capacity:8 ctx in
      for t = 1 to 3 do
        s.spawn (fun () ->
            let rng = Prng.create (seed + (31 * t)) in
            for _ = 1 to 10 do
              let x = Prng.int rng 5 in
              match Prng.int rng 4 with
              | 0 -> ignore (Multiset_vector.insert ms x)
              | 1 -> ignore (Multiset_vector.insert_pair ms x (x + 1))
              | 2 -> ignore (Multiset_vector.delete ms x)
              | _ -> ignore (Multiset_vector.lookup ms x)
            done)
      done);
  log

let test_reduction_rejects_insert_pair () =
  (* §8: the correct insert_pair cannot be proven atomic by reduction —
     it acquires locks again after releasing others — although refinement
     checking accepts the very same log. *)
  let log = multiset_full_log ~seed:0 in
  let r = Reduction.analyze log in
  Alcotest.(check bool) "insert_pair not reducible" false
    (Reduction.method_atomic r "insert_pair");
  Alcotest.(check bool) "insert not reducible" false (Reduction.method_atomic r "insert");
  let refinement = Checker.check ~mode:`Io log Multiset_spec.spec in
  Alcotest.(check bool) "refinement accepts the same trace" true
    (Report.is_pass refinement)

let test_reduction_accepts_snapshot_lookup () =
  let log = multiset_full_log ~seed:1 in
  let r = Reduction.analyze log in
  Alcotest.(check bool) "lookup reducible" true (Reduction.method_atomic r "lookup")

let test_reduction_lockset_finds_races () =
  (* the buggy find_slot reads slots without their lock: the elt variables
     must show up as racy *)
  let log = Log.create ~level:`Full () in
  Coop.run ~seed:3 (fun s ->
      let ctx = Instrument.make s log in
      let ms =
        Multiset_vector.create ~bugs:[ Multiset_vector.Racy_find_slot ] ~capacity:8 ctx
      in
      for t = 1 to 3 do
        s.spawn (fun () ->
            let rng = Prng.create (100 + t) in
            for _ = 1 to 10 do
              ignore (Multiset_vector.insert ms (Prng.int rng 5))
            done)
      done);
  let r = Reduction.analyze log in
  Alcotest.(check bool) "some elt variable is racy" true
    (List.exists
       (fun v -> String.length v > 4 && String.sub v (String.length v - 4) 4 = ".elt")
       r.racy_vars)

let test_reduction_wpwq_pattern () =
  (* the §8 example: two methods each performing two lock-protected writes,
     releasing between them — every variable is consistently locked (no
     races) yet neither execution is reducible *)
  let acq tid lock = Event.Acquire { tid; lock }
  and rel tid lock = Event.Release { tid; lock }
  and wr tid var = Event.Write { tid; var; value = Repr.Int 0 } in
  let meth tid =
    [
      ev_call tid "m" [];
      acq tid "lp"; wr tid "p"; rel tid "lp";
      acq tid "lq"; wr tid "q"; rel tid "lq";
      ev_ret tid "m" Repr.Unit;
    ]
  in
  let log = Log.of_events (meth 1 @ meth 2) in
  let r = Reduction.analyze log in
  Alcotest.(check (list string)) "no races" [] r.racy_vars;
  Alcotest.(check bool) "yet not reducible" false (Reduction.method_atomic r "m")

let suite =
  [
    ("linearize: fig3 accepted", `Quick, test_linearize_fig3);
    ("linearize: bad trace rejected", `Quick, test_linearize_rejects);
    ("linearize: cost grows super-linearly", `Quick, test_linearize_cost_grows);
    ("vyrd: cost stays linear", `Quick, test_vyrd_cost_stays_linear);
    ("linearize: budget guard", `Quick, test_linearize_budget);
    ("reduction rejects insert_pair (§8)", `Quick, test_reduction_rejects_insert_pair);
    ("reduction accepts snapshot lookup", `Quick, test_reduction_accepts_snapshot_lookup);
    ("reduction lockset finds races", `Quick, test_reduction_lockset_finds_races);
    ("reduction: W(p)W(q) pattern (§8)", `Quick, test_reduction_wpwq_pattern);
  ]
