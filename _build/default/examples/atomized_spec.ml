(* Using an atomized implementation as the specification (paper §4.4).

   When no separate specification exists, a sequential interpretation of the
   implementation itself — methods forced to run one at a time, taking the
   observed return value as an extra input — serves as the specification.
   This example checks the concurrent multiset against exactly such an
   atomized sequential multiset, and shows it is interchangeable with the
   hand-written functional specification.

     dune exec examples/atomized_spec.exe
*)

open Vyrd
open Vyrd_sched
open Vyrd_multiset

let capacity = 16

let run ~bugs ~seed =
  let log = Log.create ~level:`View () in
  Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let ms = Multiset_vector.create ~bugs ~capacity ctx in
      for t = 1 to 4 do
        s.spawn (fun () ->
            let rng = Prng.create (seed + (59 * t)) in
            for _ = 1 to 20 do
              let x = Prng.int rng 6 in
              match Prng.int rng 5 with
              | 0 | 1 -> ignore (Multiset_vector.insert ms x)
              | 2 -> ignore (Multiset_vector.insert_pair ms x (x + 1))
              | 3 -> ignore (Multiset_vector.delete ms x)
              | _ -> ignore (Multiset_vector.lookup ms x)
            done)
      done);
  log

let () =
  Fmt.pr "== Atomized implementations as specifications (§4.4) ==@.@.";
  Fmt.pr "The specification below is not hand-written: it is the sequential@.";
  Fmt.pr "multiset code, atomized through Vyrd.Atomize (each method takes@.";
  Fmt.pr "the observed return value as an extra argument and updates a@.";
  Fmt.pr "plain imperative bag).@.@.";

  let atomized = Multiset_seq.spec in
  let functional = Multiset_spec.spec in
  let view = Multiset_vector.viewdef ~capacity in

  let log = run ~bugs:[] ~seed:3 in
  let a = Checker.check ~mode:`View ~view log atomized in
  let f = Checker.check ~mode:`View ~view log functional in
  Fmt.pr "correct run, atomized spec:   %a@." Report.pp a;
  Fmt.pr "correct run, functional spec: %a@.@." Report.pp f;

  Fmt.pr "Both specifications give the same verdicts on buggy runs too:@.@.";
  let agreements = ref 0 and detections = ref 0 in
  for seed = 0 to 99 do
    let log = run ~bugs:[ Multiset_vector.Racy_find_slot ] ~seed in
    let a = Checker.check ~mode:`View ~view log atomized in
    let f = Checker.check ~mode:`View ~view log functional in
    if Report.tag a = Report.tag f then incr agreements;
    if not (Report.is_pass a) then incr detections
  done;
  Fmt.pr "100 buggy seeds: %d/100 identical verdicts, %d detections@.@."
    !agreements !detections;

  Fmt.pr "The §4.4 decomposition: checking that the concurrent code refines@.";
  Fmt.pr "its atomized version splits off the concurrency argument; relating@.";
  Fmt.pr "the atomized version to a higher-level specification is then a@.";
  Fmt.pr "sequential-verification problem (here: the functional bag).@."
