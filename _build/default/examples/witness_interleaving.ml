(* Walkthrough of the paper's Fig. 3 and Fig. 6: how commit actions turn a
   concurrent trace into a unique witness interleaving, and how the two
   refinement notions catch the buggy find_slot.

     dune exec examples/witness_interleaving.exe
*)

open Vyrd

let ev_call tid mid args = Event.Call { tid; mid; args }
let ev_ret tid mid value = Event.Return { tid; mid; value }
let ev_commit tid = Event.Commit { tid }
let ev_write tid var value = Event.Write { tid; var; value }

let show_log log =
  (* render in the paper's figure style: one column per thread *)
  print_string (Timeline.render ~options:{ Timeline.default with show_writes = true } log);
  print_string (Timeline.witness log)

let verdict mode log =
  let report =
    match mode with
    | `Io -> Checker.check ~mode:`Io log Vyrd_multiset.Multiset_spec.spec
    | `View ->
      Checker.check ~mode:`View
        ~view:(Vyrd_multiset.Multiset_vector.viewdef ~capacity:4)
        log Vyrd_multiset.Multiset_spec.spec
  in
  Fmt.pr "   -> %a@.@." Report.pp report

let () =
  Fmt.pr "== Fig. 3: the witness interleaving ==@.@.";
  Fmt.pr "Four overlapping method executions.  LookUp(3) starts before@.";
  Fmt.pr "Insert(3) but its return value 'true' is justified because its@.";
  Fmt.pr "window contains the state right after Insert(3)'s commit:@.@.";
  let fig3 =
    Log.of_events
      [
        ev_call 1 "lookup" [ Repr.Int 3 ];
        ev_call 2 "insert" [ Repr.Int 3 ];
        ev_call 3 "insert" [ Repr.Int 4 ];
        ev_call 4 "delete" [ Repr.Int 3 ];
        ev_commit 2;
        (* Insert(3) commits first *)
        ev_ret 2 "insert" Repr.success;
        ev_ret 1 "lookup" (Repr.Bool true);
        (* observer window covers the insert *)
        ev_commit 3;
        ev_ret 3 "insert" Repr.success;
        ev_commit 4;
        (* Delete(3) commits last: removes the element *)
        ev_ret 4 "delete" (Repr.Bool true);
      ]
  in
  show_log fig3;
  verdict `Io fig3;

  Fmt.pr "A LookUp(3) that runs strictly after all four methods must see@.";
  Fmt.pr "the witness order Insert(3) < Delete(3), hence return false.@.";
  Fmt.pr "Claiming 'true' is an I/O refinement violation:@.@.";
  let late_lookup =
    Log.of_events
      (Log.events fig3
      @ [ ev_call 5 "lookup" [ Repr.Int 3 ]; ev_ret 5 "lookup" (Repr.Bool true) ])
  in
  verdict `Io late_lookup;

  Fmt.pr "== Fig. 6: the racy find_slot ==@.@.";
  Fmt.pr "T1 runs InsertPair(5,6); T2's InsertPair(7,8) steals slot 0@.";
  Fmt.pr "because the buggy find_slot checks emptiness before locking.@.";
  Fmt.pr "T1's element 5 is silently overwritten by 7:@.@.";
  let fig6 =
    Log.of_events
      [
        ev_call 1 "insert_pair" [ Repr.Int 5; Repr.Int 6 ];
        ev_write 1 "A[0].elt" (Repr.Int 5);
        (* T1 reserves slot 0... *)
        ev_call 2 "insert_pair" [ Repr.Int 7; Repr.Int 8 ];
        ev_write 2 "A[0].elt" (Repr.Int 7);
        (* ...T2 overwrites it *)
        ev_write 1 "A[1].elt" (Repr.Int 6);
        ev_write 2 "A[2].elt" (Repr.Int 8);
        Event.Block_begin { tid = 1 };
        ev_write 1 "A[0].valid" (Repr.Bool true);
        ev_write 1 "A[1].valid" (Repr.Bool true);
        ev_commit 1;
        Event.Block_end { tid = 1 };
        ev_ret 1 "insert_pair" Repr.success;
        Event.Block_begin { tid = 2 };
        ev_write 2 "A[0].valid" (Repr.Bool true);
        ev_write 2 "A[2].valid" (Repr.Bool true);
        ev_commit 2;
        Event.Block_end { tid = 2 };
        ev_ret 2 "insert_pair" Repr.success;
      ]
  in
  show_log fig6;
  Fmt.pr "@.View refinement compares viewI (from the replayed writes)@.";
  Fmt.pr "with viewS at each commit and reports the lost element@.";
  Fmt.pr "immediately — no LookUp needed:@.@.";
  verdict `View fig6;

  Fmt.pr "I/O refinement alone stays silent on this prefix (both pairs@.";
  Fmt.pr "reported success, which the spec allows) and needs a later@.";
  Fmt.pr "LookUp(5) to observe the corruption:@.@.";
  verdict `Io fig6;
  let exposed =
    Log.of_events
      (Log.events fig6
      @ [ ev_call 3 "lookup" [ Repr.Int 5 ]; ev_ret 3 "lookup" (Repr.Bool false) ])
  in
  verdict `Io exposed
