(* Quickstart: instrument a concurrent data structure, run a random
   workload under the deterministic scheduler, and check the log for I/O
   and view refinement.

     dune exec examples/quickstart.exe
*)

open Vyrd
open Vyrd_sched
open Vyrd_multiset

let capacity = 16
let view = Multiset_vector.viewdef ~capacity

(* Run a workload against the array-based multiset of the paper's running
   example and return the execution log. *)
let run_workload ~bugs ~seed =
  let log = Log.create ~level:`View () in
  Coop.run ~seed (fun sched ->
      (* an instrumentation context couples the scheduler with the log *)
      let ctx = Instrument.make sched log in
      let ms = Multiset_vector.create ~bugs ~capacity ctx in
      for t = 1 to 4 do
        sched.spawn (fun () ->
            let rng = Prng.create (seed + (100 * t)) in
            for _ = 1 to 25 do
              let x = Prng.int rng 8 in
              match Prng.int rng 5 with
              | 0 | 1 -> ignore (Multiset_vector.insert ms x)
              | 2 -> ignore (Multiset_vector.insert_pair ms x (x + 1))
              | 3 -> ignore (Multiset_vector.delete ms x)
              | _ -> ignore (Multiset_vector.lookup ms x)
            done)
      done);
  log

let check_both log =
  let io = Checker.check ~mode:`Io log Multiset_spec.spec in
  let view = Checker.check ~mode:`View ~view log Multiset_spec.spec in
  (io, view)

let () =
  Fmt.pr "== VYRD quickstart: concurrent multiset ==@.@.";
  Fmt.pr "1. A correct implementation passes refinement checking:@.";
  let log = run_workload ~bugs:[] ~seed:42 in
  let io, vw = check_both log in
  Fmt.pr "   %d events logged@." (Log.length log);
  Fmt.pr "   I/O  refinement: %a@." Report.pp io;
  Fmt.pr "   view refinement: %a@.@." Report.pp vw;

  Fmt.pr "2. Injecting the paper's Fig. 5 bug (find_slot tests a slot@.";
  Fmt.pr "   before locking it) and sweeping scheduler seeds:@.";
  let rec hunt seed =
    if seed > 500 then Fmt.pr "   no violation found (unexpected)@."
    else begin
      let log = run_workload ~bugs:[ Multiset_vector.Racy_find_slot ] ~seed in
      let _, vw = check_both log in
      if Report.is_pass vw then hunt (seed + 1)
      else begin
        Fmt.pr "   seed %d triggers the bug:@." seed;
        Fmt.pr "   %a@." Report.pp vw
      end
    end
  in
  hunt 0;
  Fmt.pr "@.3. The same log can be saved and re-checked offline:@.";
  let log = run_workload ~bugs:[] ~seed:7 in
  let path = Filename.temp_file "vyrd" ".log" in
  Log.to_file path log;
  let reloaded = Log.of_file path in
  let _, vw = check_both reloaded in
  Fmt.pr "   %s round-trips %d events; verdict: %s@." path (Log.length reloaded)
    (Report.tag vw);
  Sys.remove path
