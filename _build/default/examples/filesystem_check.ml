(* Online refinement checking of the Scan-like file system (paper §4.2,
   §7.3): a verification domain consumes the log concurrently with the
   instrumented program, as in the paper's two-phase architecture.

     dune exec examples/filesystem_check.exe
*)

open Vyrd
open Vyrd_sched
open Vyrd_scanfs

let disk_blocks = 16
let names = [| "alpha"; "beta"; "gamma" |]

let payload rng key =
  String.init (1 + Prng.int rng Scanfs.file_size) (fun i ->
      Char.chr (97 + ((key + i) mod 26)))

let run_with_online ~bugs ~seed =
  let log = Log.create ~level:`View () in
  (* the online verifier subscribes before the program starts *)
  let online = Online.start ~mode:`View ~view:Scanfs.viewdef log Scanfs.spec in
  Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let fs = Scanfs.create_fs ~bugs ~disk_blocks ctx in
      let stop = ref false in
      s.spawn (fun () ->
          while not !stop do
            Scanfs.sync fs;
            s.yield ()
          done);
      let remaining = ref 4 in
      for t = 1 to 4 do
        s.spawn (fun () ->
            let rng = Prng.create ((seed * 131) + t) in
            for _ = 1 to 20 do
              let key = Prng.int rng 26 in
              let name = names.(key mod Array.length names) in
              match Prng.int rng 10 with
              | 0 | 1 -> ignore (Scanfs.create fs name)
              | 2 | 3 | 4 -> ignore (Scanfs.write fs name (payload rng key))
              | 5 | 6 -> ignore (Scanfs.read fs name)
              | 7 -> ignore (Scanfs.exists fs name)
              | 8 -> ignore (Scanfs.delete fs name)
              | _ -> Scanfs.evict fs (Prng.int rng disk_blocks)
            done;
            decr remaining;
            if !remaining = 0 then stop := true)
      done);
  (Log.length log, Online.finish online)

let () =
  Fmt.pr "== ScanFS checked online ==@.@.";
  Fmt.pr "The verification thread runs on a separate domain and consumes@.";
  Fmt.pr "log entries as the instrumented file system appends them.@.@.";

  let events, report = run_with_online ~bugs:[] ~seed:11 in
  Fmt.pr "correct FS: %d events checked online -> %a@.@." events Report.pp report;

  Fmt.pr "Now with the legacy in-place write path whose dirty-block copy@.";
  Fmt.pr "is not protected against the scan flush (the class of bug the@.";
  Fmt.pr "paper reports finding in Scan's cache module, §7.3):@.@.";
  let rec hunt seed =
    if seed > 500 then Fmt.pr "no violation found in 500 seeds (unexpected)@."
    else begin
      let events, report =
        run_with_online ~bugs:[ Scanfs.Unprotected_dirty_copy ] ~seed
      in
      if Report.is_pass report then hunt (seed + 1)
      else
        Fmt.pr "seed %d, %d events: %a@." seed events Report.pp report
    end
  in
  hunt 0
