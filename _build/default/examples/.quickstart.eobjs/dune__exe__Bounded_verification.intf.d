examples/bounded_verification.mli:
