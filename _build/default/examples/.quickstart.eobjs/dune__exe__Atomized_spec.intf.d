examples/atomized_spec.mli:
