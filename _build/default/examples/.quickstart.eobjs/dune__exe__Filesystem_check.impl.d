examples/filesystem_check.ml: Array Char Coop Fmt Instrument Log Online Prng Report Scanfs String Vyrd Vyrd_scanfs Vyrd_sched
