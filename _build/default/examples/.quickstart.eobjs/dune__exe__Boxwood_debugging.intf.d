examples/boxwood_debugging.mli:
