examples/witness_interleaving.ml: Checker Event Fmt Log Report Repr Timeline Vyrd Vyrd_multiset
