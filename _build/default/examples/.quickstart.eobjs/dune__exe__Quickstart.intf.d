examples/quickstart.mli:
