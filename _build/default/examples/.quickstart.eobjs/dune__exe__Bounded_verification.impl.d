examples/bounded_verification.ml: Checker Explore Fmt Instrument List Log Multiset_spec Multiset_vector Report Timeline Vyrd Vyrd_multiset Vyrd_sched
