examples/quickstart.ml: Checker Coop Filename Fmt Instrument Log Multiset_spec Multiset_vector Prng Report Sys Vyrd Vyrd_multiset Vyrd_sched
