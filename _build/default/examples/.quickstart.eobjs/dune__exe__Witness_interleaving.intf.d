examples/witness_interleaving.mli:
