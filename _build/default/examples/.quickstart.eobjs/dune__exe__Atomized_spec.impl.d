examples/atomized_spec.ml: Checker Coop Fmt Instrument Log Multiset_seq Multiset_spec Multiset_vector Prng Report Vyrd Vyrd_multiset Vyrd_sched
