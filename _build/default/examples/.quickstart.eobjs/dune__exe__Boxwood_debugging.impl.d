examples/boxwood_debugging.ml: Blink_tree Cache Cached_store Char Checker Chunk_manager Coop Fmt Instrument Log Prng Report String Vyrd Vyrd_boxwood Vyrd_sched
