(* Bounded verification: systematic schedule exploration composed with
   refinement checking.

   VYRD is a runtime technique — it checks the schedules a test run happens
   to produce.  The deterministic scheduler lets us go further on small
   scenarios: enumerate EVERY schedule of a workload and check refinement on
   each, turning "no violation observed" into "no violation exists, up to
   this bound".

     dune exec examples/bounded_verification.exe
*)

open Vyrd
open Vyrd_sched
open Vyrd_multiset

let capacity = 2
let view = Multiset_vector.viewdef ~capacity

(* One scenario: two concurrent method calls on a fresh multiset.  Returns
   the result of exploring every schedule, and how many violated. *)
let verify_scenario ?preemption_bound ~bugs ~stop_on_first (op1, op2) =
  let failures = ref 0 in
  let example = ref None in
  let r =
    Explore.explore ~max_schedules:200_000 ?preemption_bound
      ~stop:(fun () -> stop_on_first && !failures > 0)
      (fun () ->
        let log = Log.create ~level:`View () in
        let finished = ref 0 in
        fun s ->
          let ctx = Instrument.make s log in
          let ms = Multiset_vector.create ~bugs ~capacity ctx in
          let done_one () =
            incr finished;
            if !finished = 2 then begin
              let report = Checker.check ~mode:`View ~view log Multiset_spec.spec in
              if not (Report.is_pass report) then begin
                incr failures;
                if !example = None then example := Some (report, Log.events log)
              end
            end
          in
          s.spawn (fun () ->
              op1 ms;
              done_one ());
          s.spawn (fun () ->
              op2 ms;
              done_one ()))
  in
  (r, !failures, !example)

let () =
  Fmt.pr "== Bounded verification of the multiset ==@.@.";

  Fmt.pr "Scenario: insert(1) || lookup(1), correct implementation.@.";
  let r, failures, _ =
    verify_scenario ~bugs:[] ~stop_on_first:false
      ( (fun ms -> ignore (Multiset_vector.insert ms 1)),
        fun ms -> ignore (Multiset_vector.lookup ms 1) )
  in
  Fmt.pr "  %d schedules explored (%s), %d refinement violations@.@."
    r.Explore.schedules
    (if r.Explore.exhausted then "space exhausted" else "budget hit")
    failures;

  Fmt.pr "Scenario: insert(1) || insert_pair(1,2), correct implementation.@.";
  let r, failures, _ =
    verify_scenario ~bugs:[] ~stop_on_first:false
      ( (fun ms -> ignore (Multiset_vector.insert ms 1)),
        fun ms -> ignore (Multiset_vector.insert_pair ms 1 2) )
  in
  Fmt.pr "  %d schedules explored (%s), %d refinement violations@.@."
    r.Explore.schedules
    (if r.Explore.exhausted then "space exhausted" else "budget hit")
    failures;

  Fmt.pr "The unbounded space above is intractable, but almost all concurrency@.";
  Fmt.pr "bugs need only a few preemptions (CHESS).  Bounding preemptions@.";
  Fmt.pr "makes the same scenario exhaustible:@.";
  List.iter
    (fun pb ->
      let r, failures, _ =
        verify_scenario ~preemption_bound:pb ~bugs:[] ~stop_on_first:false
          ( (fun ms -> ignore (Multiset_vector.insert ms 1)),
            fun ms -> ignore (Multiset_vector.insert_pair ms 1 2) )
      in
      Fmt.pr "  preemption bound %d: %d schedules (%s), %d violations@." pb
        r.Explore.schedules
        (if r.Explore.exhausted then "exhausted" else "budget hit")
        failures)
    [ 0; 1; 2; 3 ];
  Fmt.pr "@.";

  Fmt.pr "Same scenario with the Fig. 5 bug (racy find_slot), preemption@.";
  Fmt.pr "bound 1:@.";
  let r, failures, example =
    verify_scenario ~preemption_bound:1
      ~bugs:[ Multiset_vector.Racy_find_slot ] ~stop_on_first:true
      ( (fun ms -> ignore (Multiset_vector.insert ms 1)),
        fun ms -> ignore (Multiset_vector.insert_pair ms 1 2) )
  in
  Fmt.pr "  violating schedule found after %d schedules (%d seen failing)@.@."
    r.Explore.schedules failures;
  (match example with
  | Some (report, evs) ->
    Fmt.pr "  %a@.@." Report.pp report;
    Fmt.pr "  the interleaving, in the paper's Fig. 6 style:@.@.";
    print_string
      (Timeline.render_events
         ~options:{ Timeline.default with show_writes = true }
         evs)
  | None -> ());
  Fmt.pr "@.Exploration makes bug finding deterministic: no seed sweep, the@.";
  Fmt.pr "first schedule that can trigger the race is found and rendered.@."
