(* Debugging the Boxwood storage stack with VYRD (paper §7.2): hunt the
   cache's unprotected-dirty-copy bug, show the runtime invariant catching
   it even earlier, and verify the B-link tree running on top of the
   cache + chunk-manager stack.

     dune exec examples/boxwood_debugging.exe
*)

open Vyrd
open Vyrd_sched
open Vyrd_boxwood

let chunks = 6
let buf_size = 8
let spec = Cache.spec ~chunks
let view = Cache.viewdef ~chunks ~buf_size
let invariant = Cache.invariant_clean_matches_chunk ~chunks ~buf_size

let payload rng = String.init buf_size (fun _ -> Char.chr (97 + Prng.int rng 26))

let run_cache ~bugs ~seed =
  let log = Log.create ~level:`View () in
  Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let cm = Chunk_manager.create ~chunks ctx in
      let cache = Cache.create ~bugs ~buf_size ctx cm in
      let stop = ref false in
      s.spawn (fun () ->
          while not !stop do
            Cache.flush cache;
            s.yield ()
          done);
      let remaining = ref 4 in
      for t = 1 to 4 do
        s.spawn (fun () ->
            let rng = Prng.create ((seed * 523) + t) in
            for _ = 1 to 20 do
              let h = Prng.int rng chunks in
              match Prng.int rng 10 with
              | 0 | 1 | 2 | 3 -> Cache.write cache h (payload rng)
              | 4 | 5 | 6 -> ignore (Cache.read cache h)
              | _ -> Cache.evict cache h
            done;
            decr remaining;
            if !remaining = 0 then stop := true)
      done);
  log

let () =
  Fmt.pr "== Boxwood Cache (Fig. 8) ==@.@.";
  Fmt.pr "The injected bug is §7.2.2: COPY-TO-CACHE on a dirty entry runs@.";
  Fmt.pr "without LOCK(clean), so a concurrent flush can write a torn@.";
  Fmt.pr "buffer to the chunk manager and mark the entry clean.@.@.";

  let first_detection check =
    let rec go seed =
      if seed > 500 then None
      else
        let log = run_cache ~bugs:[ Cache.Unprotected_dirty_copy ] ~seed in
        let r = check log in
        if Report.is_pass r then go (seed + 1) else Some (seed, r)
    in
    go 0
  in
  (match first_detection (fun log -> Checker.check ~mode:`View ~view log spec) with
  | Some (seed, r) ->
    Fmt.pr "view refinement detects it (seed %d):@.  %a@.@." seed Report.pp r
  | None -> Fmt.pr "view refinement: no detection in 500 seeds@.@.");

  (match
     first_detection (fun log ->
         Checker.check ~mode:`View ~view ~invariants:[ invariant ] log spec)
   with
  | Some (seed, r) ->
    Fmt.pr "with the paper's runtime invariant (i) — 'a clean entry matches@.";
    Fmt.pr "the chunk manager' — the corruption is caught at the flush@.";
    Fmt.pr "itself (seed %d):@.  %a@.@." seed Report.pp r
  | None -> Fmt.pr "invariant: no detection in 500 seeds@.@.");

  Fmt.pr "== BLinkTree over Cache over Chunk Manager (Fig. 10) ==@.@.";
  Fmt.pr "Nodes are serialized to byte arrays and stored through the cache;@.";
  Fmt.pr "the cache runs unlogged (it is the verified-separately substrate,@.";
  Fmt.pr "§7.2) while the tree logs coarse-grained node writes (§6.2).@.@.";
  let tree_log = Log.create ~level:`View () in
  Coop.run ~seed:5 (fun s ->
      let null_ctx = Instrument.make s (Log.create ~level:`None ()) in
      let cm = Chunk_manager.create ~chunks:128 null_ctx in
      let cache = Cache.create ~buf_size:512 null_ctx cm in
      let tree_ctx = Instrument.make s tree_log in
      let store = Cached_store.make cache ~tree_ctx in
      let tree = Blink_tree.create ~order:4 store tree_ctx in
      let stop = ref false in
      s.spawn (fun () ->
          while not !stop do
            Cache.flush cache;
            s.yield ()
          done);
      let remaining = ref 3 in
      for t = 1 to 3 do
        s.spawn (fun () ->
            let rng = Prng.create (900 + t) in
            for _ = 1 to 25 do
              let k = Prng.int rng 12 in
              match Prng.int rng 10 with
              | 0 | 1 | 2 | 3 -> Blink_tree.insert tree k (Prng.int rng 100)
              | 4 | 5 -> ignore (Blink_tree.delete tree k)
              | _ -> ignore (Blink_tree.lookup tree k)
            done;
            decr remaining;
            if !remaining = 0 then stop := true)
      done);
  let report =
    Checker.check ~mode:`View ~view:Blink_tree.viewdef tree_log Blink_tree.spec
  in
  Fmt.pr "tree log: %d events; view refinement: %a@." (Log.length tree_log)
    Report.pp report
