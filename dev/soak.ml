(* Long randomized campaign across every subject: correct variants must
   pass, buggy variants are swept until detection; prints a summary table.
   Development/release tool — not part of the test suite because of its
   runtime.

     dune exec dev/soak.exe [seeds-per-config]
     dune exec dev/soak.exe pipeline [seeds]
     dune exec dev/soak.exe net [seconds] [metrics.json]
     dune exec dev/soak.exe cluster [sessions] [metrics.json]

   The pipeline mode soaks the streaming path instead: each seed runs a
   multi-structure workload through the checker farm while spooling binary
   segments, then re-reads the spool and checks the recovered log offline —
   the merged farm verdict, the offline verdict on the live log and the
   offline verdict on the disk round trip must all agree.

   The net mode soaks the vyrdd loopback service for a wall-clock budget:
   correct and buggy workloads are submitted over a Unix socket — serially
   and in concurrent bursts that overflow max_sessions into the spill path —
   and every verdict (live or re-checked from the spool) must match the
   offline checker.  Writes the server's metrics as JSON for CI.

   The cluster mode soaks coordinator failover: a vyrdc fronting three
   vyrdd worker processes takes 120 concurrent sessions, one worker is
   SIGKILLed while every session is verifiably mid-stream, and each session
   must still reach a verdict — tag and first-violation index identical to
   offline single-process checking — with zero mismatches.  Writes the
   aggregated cluster-wide metrics as JSON for CI.
*)

open Vyrd
open Vyrd_harness
module Farm = Vyrd_pipeline.Farm
module Segment = Vyrd_pipeline.Segment
module Pmetrics = Vyrd_pipeline.Metrics
module Wire = Vyrd_net.Wire
module Server = Vyrd_net.Server
module Client = Vyrd_net.Client

let subject_soak seeds =
  let any_failure = ref false in
  Fmt.pr "soak: %d seeds per configuration@.@." seeds;
  Fmt.pr "%-22s %12s %12s %14s %14s@." "subject" "correct io" "correct view"
    "bug seen (io)" "bug seen (view)";
  Fmt.pr "%s@." (String.make 80 '-');
  List.iter
    (fun (s : Subjects.t) ->
      let correct_io = ref 0 and correct_view = ref 0 in
      let bug_io = ref 0 and bug_view = ref 0 in
      for seed = 0 to seeds - 1 do
        let cfg =
          { Harness.default with threads = 5; ops_per_thread = 30; key_pool = 10;
            key_range = 16; seed }
        in
        let log = Harness.run cfg (s.build ~bug:false) in
        let io = Checker.check ~mode:`Io log s.spec in
        let view =
          Checker.check ~mode:`View ~view:s.view ~invariants:s.invariants log s.spec
        in
        if Report.is_pass io then incr correct_io
        else begin
          any_failure := true;
          Fmt.pr "!! %s seed %d io: %a@." s.name seed Report.pp io
        end;
        if Report.is_pass view then incr correct_view
        else begin
          any_failure := true;
          Fmt.pr "!! %s seed %d view: %a@." s.name seed Report.pp view
        end;
        let blog = Harness.run cfg (s.build ~bug:true) in
        if not (Report.is_pass (Checker.check ~mode:`Io blog s.spec)) then incr bug_io;
        if
          not
            (Report.is_pass
               (Checker.check ~mode:`View ~view:s.view ~invariants:s.invariants blog
                  s.spec))
        then incr bug_view
      done;
      Fmt.pr "%-22s %9d/%d %9d/%d %11d/%d %11d/%d@." s.name !correct_io seeds
        !correct_view seeds !bug_io seeds !bug_view seeds)
    Subjects.all;
  if !any_failure then begin
    Fmt.pr "@.SOAK FAILED@.";
    exit 1
  end
  else Fmt.pr "@.SOAK CLEAN@."

(* ------------------------------------------------------------- pipeline *)

let pipeline_subjects =
  [ Subjects.multiset_vector; Subjects.jvector; Subjects.string_buffer ]

let composed () =
  match pipeline_subjects with
  | [] -> assert false
  | s0 :: rest ->
    List.fold_left
      (fun (spec, view) (s : Subjects.t) ->
        (Spec_compose.pair spec s.spec, Spec_compose.pair_views view s.view))
      (s0.spec, s0.view) rest

let pipeline_soak seeds =
  let spec, view = composed () in
  let spool = Filename.temp_file "vyrd_soak" ".seg" in
  let any_failure = ref false in
  let capacity = 512 in
  Fmt.pr "pipeline soak: %d seeds, %d shards, ring capacity %d@.@." seeds
    (List.length pipeline_subjects)
    capacity;
  Fmt.pr "%6s %9s %10s %8s %8s %10s %10s@." "seed" "events" "segments" "farm"
    "offline" "roundtrip" "high-water";
  Fmt.pr "%s@." (String.make 70 '-');
  for seed = 0 to seeds - 1 do
    let level = `View in
    let log = Log.create ~level () in
    let shards =
      List.map
        (fun (s : Subjects.t) -> Farm.shard ~mode:`View ~view:s.view s.name s.spec)
        pipeline_subjects
    in
    let farm = Farm.start ~capacity ~level shards in
    Farm.attach farm log;
    let w = Segment.create_writer ~segment_bytes:8192 ~level spool in
    Segment.attach w log;
    Harness.run_into ~log
      { Harness.default with threads = 6; ops_per_thread = 120; key_pool = 10;
        key_range = 16; seed }
      (List.map (fun (s : Subjects.t) -> s.build ~bug:false) pipeline_subjects);
    Segment.close w;
    let result = Farm.finish farm in
    let offline = Checker.check ~mode:`View ~view log spec in
    let recovered = Segment.read_file spool in
    let roundtrip = Checker.check ~mode:`View ~view recovered.Segment.log spec in
    let hw =
      List.fold_left
        (fun a (sr : Farm.shard_result) -> max a sr.Farm.sr_high_water)
        0 result.Farm.shards
    in
    let ok =
      Report.is_pass result.Farm.merged
      && Report.is_pass offline && Report.is_pass roundtrip
      && (not recovered.Segment.truncated)
      && Log.length recovered.Segment.log = Log.length log
      && hw <= capacity
    in
    if not ok then begin
      any_failure := true;
      Fmt.pr "!! seed %d: farm %a / offline %a / roundtrip %a (recovered %d of %d)@."
        seed Report.pp result.Farm.merged Report.pp offline Report.pp roundtrip
        (Log.length recovered.Segment.log)
        (Log.length log)
    end;
    Fmt.pr "%6d %9d %10d %8s %8s %10s %10d@." seed result.Farm.fed
      recovered.Segment.segments
      (Report.tag result.Farm.merged)
      (Report.tag offline) (Report.tag roundtrip) hw
  done;
  Sys.remove spool;
  if !any_failure then begin
    Fmt.pr "@.PIPELINE SOAK FAILED@.";
    exit 1
  end
  else Fmt.pr "@.PIPELINE SOAK CLEAN@."

(* ------------------------------------------------------------------ net *)

let net_soak seconds json_out =
  let spec, view = composed () in
  let shards _level =
    List.map
      (fun (s : Subjects.t) -> Farm.shard ~mode:`View ~view:s.view s.name s.spec)
      pipeline_subjects
  in
  let sock = Filename.temp_file "vyrd_soak" ".sock" in
  let spill_dir = Filename.temp_file "vyrd_soak_spill" "" in
  Sys.remove spill_dir;
  Unix.mkdir spill_dir 0o700;
  let metrics = Pmetrics.create () in
  (* max_sessions 2 so concurrent bursts overflow into the spill path *)
  let server =
    Server.start
      (Server.config ~metrics ~max_sessions:2 ~spill_dir
         ~addr:(Wire.Unix_socket sock) shards)
  in
  let addr = Server.addr server in
  Fmt.pr "net soak: %ds against %a (max_sessions 2, spill to %s)@.@." seconds
    Wire.pp_addr addr spill_dir;
  let lock = Mutex.create () in
  let sessions = ref 0
  and events = ref 0
  and convicted = ref 0
  and spilled = ref 0
  and mismatches = ref 0 in
  let tally f =
    Mutex.lock lock;
    f ();
    Mutex.unlock lock
  in
  let mismatch seed what =
    tally (fun () -> incr mismatches);
    Fmt.pr "!! seed %d: %s@." seed what
  in
  let one_session seed =
    let bug = seed mod 3 = 0 in
    let log =
      if bug then
        Harness.run
          { Harness.default with threads = 4; ops_per_thread = 25; key_pool = 10;
            key_range = 16; seed }
          (Subjects.multiset_vector.build ~bug:true)
      else begin
        let log = Log.create ~level:`View () in
        Harness.run_into ~log
          { Harness.default with threads = 4; ops_per_thread = 20; key_pool = 10;
            key_range = 16; seed }
          (List.map (fun (s : Subjects.t) -> s.build ~bug:false) pipeline_subjects);
        log
      end
    in
    let offline = Checker.check ~mode:`View ~view log spec in
    let batch = [| 32; 256; 1024 |].(seed mod 3) in
    match Client.submit_log ~retries:3 ~batch_events:batch addr log with
    | Client.Checked { report; fail_index } ->
      tally (fun () ->
          incr sessions;
          events := !events + Log.length log;
          if not (Report.is_pass report) then incr convicted);
      if not (String.equal (Report.tag report) (Report.tag offline)) then
        mismatch seed
          (Printf.sprintf "live verdict %s, offline %s" (Report.tag report)
             (Report.tag offline));
      if (not (Report.is_pass report)) && fail_index = None then
        mismatch seed "violation without a fail index"
    | Client.Spilled { path; events = n } ->
      tally (fun () ->
          incr sessions;
          incr spilled;
          events := !events + Log.length log);
      if n <> Log.length log then
        mismatch seed
          (Printf.sprintf "spool consumed %d of %d events" n (Log.length log));
      let r = Segment.read_file path in
      let rechecked = Checker.check ~mode:`View ~view r.Segment.log spec in
      if r.Segment.truncated then mismatch seed "spool read back truncated";
      if not (String.equal (Report.tag rechecked) (Report.tag offline)) then
        mismatch seed
          (Printf.sprintf "spool re-check %s, offline %s" (Report.tag rechecked)
             (Report.tag offline));
      (* kill-and-resume: re-check the spool only to the halfway mark,
         checkpoint there, abandon the checker (the simulated kill), then
         resume — the resumed verdict and fail index must match offline *)
      let half = Log.length r.Segment.log / 2 in
      if half > 0 then begin
        let checker = Checker.create ~mode:`View ~view spec in
        let stop = ref false in
        (try
           Log.iter
             (let i = ref 0 in
              fun ev ->
                if (not !stop) && !i < half then begin
                  incr i;
                  if Checker.feed checker ev <> None then stop := true
                end)
             r.Segment.log
         with Invalid_argument _ -> stop := true);
        (match (!stop, Checker.snapshot checker) with
        | false, Some state -> Segment.append_checkpoint_file path ~events:half state
        | _ -> ());
        match
          Vyrd_pipeline.Resume.resume ~mode:`View ~view ~path spec
        with
        | outcome ->
          let offline_fail =
            match offline.Report.outcome with
            | Report.Pass -> None
            | Report.Fail _ ->
              Some (offline.Report.stats.Report.events_processed - 1)
          in
          if
            not
              (String.equal
                 (Report.tag outcome.Vyrd_pipeline.Resume.report)
                 (Report.tag offline))
          then
            mismatch seed
              (Printf.sprintf "resumed re-check %s, offline %s"
                 (Report.tag outcome.Vyrd_pipeline.Resume.report)
                 (Report.tag offline));
          if outcome.Vyrd_pipeline.Resume.fail_index <> offline_fail then
            mismatch seed "resumed fail index diverges from offline";
          if
            (not !stop)
            && Log.length r.Segment.log > 1
            && outcome.Vyrd_pipeline.Resume.resumed_at = None
          then mismatch seed "resume ignored the appended checkpoint frame"
        | exception
            ( Vyrd_pipeline.Bincodec.Corrupt _ | Invalid_argument _
            | Sys_error _ ) ->
          mismatch seed "resume of the annotated spool raised"
      end;
      Sys.remove path
    | exception Client.Server_error msg ->
      mismatch seed ("server failed the session: " ^ msg)
  in
  let deadline = Unix.gettimeofday () +. float_of_int seconds in
  let seed = ref 0 in
  while Unix.gettimeofday () < deadline do
    let base = !seed in
    if base mod 5 = 0 then begin
      (* a burst of concurrent sessions: two check live, the rest spill *)
      let threads =
        List.init 4 (fun i -> Thread.create one_session (base + i))
      in
      List.iter Thread.join threads;
      seed := base + 4
    end
    else begin
      one_session base;
      incr seed
    end
  done;
  Server.stop server;
  (match Sys.readdir spill_dir with
  | [||] -> Unix.rmdir spill_dir
  | leftover ->
    Array.iter (fun f -> Sys.remove (Filename.concat spill_dir f)) leftover;
    Unix.rmdir spill_dir);
  (match open_out json_out with
  | oc ->
    output_string oc (Pmetrics.to_json metrics);
    output_string oc "\n";
    close_out oc;
    Fmt.pr "@.metrics written to %s@." json_out
  | exception Sys_error msg -> Fmt.pr "@.cannot write %s: %s@." json_out msg);
  Fmt.pr
    "@.%d sessions (%d spilled), %d events, %d convictions, %d mismatches@."
    !sessions !spilled !events !convicted !mismatches;
  if !mismatches > 0 || !sessions = 0 || !convicted = 0 then begin
    Fmt.pr "NET SOAK FAILED@.";
    exit 1
  end
  else Fmt.pr "NET SOAK CLEAN@."

(* -------------------------------------------------------------- cluster *)

(* Kill-and-failover soak: a coordinator fronting three vyrdd worker
   processes takes a burst of concurrent sessions, one worker is SIGKILLed
   while at least [kill_at] sessions are in flight, and every session must
   still reach a verdict — with tag and first-violation index identical to
   offline single-process checking of the same log.  Workers are separate
   processes (the soak re-execs itself in a hidden [cluster-worker] argv
   mode) so the SIGKILL is a real one, not an in-process stand-in.

   Sessions check the single Multiset-Vector shard: one checker domain per
   session keeps ~40 concurrent sessions per worker process well under the
   OCaml domain ceiling. *)

let soak_subject = Subjects.multiset_vector

let cluster_worker_main sock =
  ignore
    (Server.start
       (Server.config ~max_sessions:256 ~idle_timeout:300.
          ~addr:(Wire.Unix_socket sock) (fun _level ->
            [
              Farm.shard ~mode:`View ~view:soak_subject.Subjects.view
                soak_subject.Subjects.name soak_subject.Subjects.spec;
            ]))
      : Server.t);
  while true do
    Thread.delay 3600.
  done

let cluster_soak sessions json_out =
  let module Coordinator = Vyrd_cluster.Coordinator in
  let kill_at = min 100 sessions in
  let workers = 3 in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "vyrd_soak_cluster-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fmt.pr
    "cluster soak: %d concurrent sessions over %d worker processes; SIGKILL \
     one worker at >= %d in flight@.@."
    sessions workers kill_at;
  (* every session's log and offline reference verdict, built up front so
     the in-flight window isn't stretched by harness runs *)
  let logs =
    Array.init sessions (fun seed ->
        let bug = seed mod 3 = 0 in
        Harness.run
          { Harness.default with threads = 4;
            ops_per_thread = (if bug then 40 else 60); key_pool = 10;
            key_range = 16; seed }
          (soak_subject.Subjects.build ~bug))
  in
  let reference =
    Array.map
      (fun log ->
        Checker.check_indexed ~mode:`View ~view:soak_subject.Subjects.view log
          soak_subject.Subjects.spec)
      logs
  in
  let total = Array.fold_left (fun a l -> a + Log.length l) 0 logs in
  let members =
    List.init workers (fun i ->
        let sock = Filename.concat dir (Printf.sprintf "w%d.sock" i) in
        let pid =
          Unix.create_process Sys.executable_name
            [| Sys.executable_name; "cluster-worker"; sock |]
            Unix.stdin Unix.stdout Unix.stderr
        in
        (Printf.sprintf "w%d" i, sock, pid))
  in
  let metrics = Pmetrics.create () in
  let coord =
    Coordinator.start
      (Coordinator.config
         ~worker_slots:(max 1 ((sessions + workers - 1) / workers))
         ~checkpoint_events:1000 ~idle_timeout:120. ~metrics
         ~addr:(Wire.Unix_socket (Filename.concat dir "vyrdc.sock"))
         ~spool_dir:dir ())
  in
  List.iter
    (fun (name, sock, _) ->
      Coordinator.attach coord ~name ~addr:(Wire.Unix_socket sock))
    members;
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let at_barrier = ref 0 and killed = ref false in
  let mismatches = ref 0 and verdicts = ref 0 and convicted = ref 0 in
  let mismatch seed what =
    Mutex.lock lock;
    incr mismatches;
    Mutex.unlock lock;
    Fmt.pr "!! session %d: %s@." seed what
  in
  (* Each session streams the first half of its log, forces a checkpoint
     barrier — protocol order guarantees its worker leg is open and has
     consumed everything sent — and then pauses mid-stream until the kill
     has landed.  Every session is therefore verifiably in flight at the
     moment of the SIGKILL, and the victim's share must fail over. *)
  let one_session seed =
    let log = logs.(seed) in
    let half = Log.length log / 2 in
    (match Client.connect ~level:(Log.level log)
             ~batch_events:[| 32; 128; 512 |].(seed mod 3)
             ~producer:(Printf.sprintf "soak-%d" seed)
             (Coordinator.addr coord)
     with
    | t ->
      (let i = ref 0 in
       Log.iter
         (fun ev ->
           if !i < half then Client.send t ev;
           incr i)
         log);
      Client.flush t;
      ignore (Client.request_checkpoint t);
      Mutex.lock lock;
      incr at_barrier;
      Condition.broadcast cond;
      while not !killed do
        Condition.wait cond lock
      done;
      Mutex.unlock lock;
      (let i = ref 0 in
       Log.iter
         (fun ev ->
           if !i >= half then Client.send t ev;
           incr i)
         log);
      (match Client.finish t with
      | Client.Checked { report; fail_index } ->
        let rref, ridx = reference.(seed) in
        Mutex.lock lock;
        incr verdicts;
        if not (Report.is_pass report) then incr convicted;
        Mutex.unlock lock;
        if not (String.equal (Report.tag report) (Report.tag rref)) then
          mismatch seed
            (Printf.sprintf "cluster verdict %s, offline %s"
               (Report.tag report) (Report.tag rref));
        if fail_index <> ridx then
          mismatch seed
            (Printf.sprintf "fail index %s, offline %s"
               (match fail_index with Some i -> string_of_int i | None -> "-")
               (match ridx with Some i -> string_of_int i | None -> "-"))
      | Client.Spilled _ -> mismatch seed "session spilled instead of checking"
      | exception Client.Server_error msg ->
        mismatch seed ("session failed: " ^ msg)
      | exception Unix.Unix_error (e, _, _) ->
        mismatch seed ("session failed: " ^ Unix.error_message e))
    | exception Client.Server_error msg ->
      mismatch seed ("connect refused: " ^ msg)
    | exception Unix.Unix_error (e, _, _) ->
      mismatch seed ("connect failed: " ^ Unix.error_message e))
  in
  let threads = List.init sessions (fun i -> Thread.create one_session i) in
  (* SIGKILL the victim only once every session sits mid-stream at its
     barrier (>= kill_at of them, with open legs spread over the ring) *)
  Mutex.lock lock;
  while !at_barrier < sessions do
    Condition.wait cond lock
  done;
  Mutex.unlock lock;
  let flight_at_kill = !at_barrier in
  let victim_name, _, victim_pid = List.nth members (sessions mod workers) in
  Unix.kill victim_pid Sys.sigkill;
  ignore (Unix.waitpid [] victim_pid);
  Mutex.lock lock;
  killed := true;
  Condition.broadcast cond;
  Mutex.unlock lock;
  Fmt.pr "killed %s (pid %d) with %d session(s) in flight@.@." victim_name
    victim_pid flight_at_kill;
  List.iter Thread.join threads;
  let agg = Coordinator.aggregate coord in
  Coordinator.stop coord;
  List.iter
    (fun (_, _, pid) ->
      if pid <> victim_pid then begin
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
      end)
    members;
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir);
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  (match open_out json_out with
  | oc ->
    output_string oc (Pmetrics.to_json agg);
    output_string oc "\n";
    close_out oc;
    Fmt.pr "@.cluster-wide metrics written to %s@." json_out
  | exception Sys_error msg -> Fmt.pr "@.cannot write %s: %s@." json_out msg);
  let counter name = Pmetrics.value (Pmetrics.counter agg name) in
  let reassigned = counter "cluster.reassignments" in
  let resumes = counter "cluster.resumes" in
  let dead = counter "cluster.workers_dead" in
  Fmt.pr
    "@.%d/%d sessions verdicted (%d events, %d convictions, %d in flight at \
     the kill), %d reassigned, %d resumed, %d worker(s) dead, %d mismatches@."
    !verdicts sessions total !convicted flight_at_kill reassigned resumes dead
    !mismatches;
  if
    !mismatches > 0 || !verdicts <> sessions || !convicted = 0
    || flight_at_kill < kill_at || reassigned = 0 || resumes = 0 || dead = 0
  then begin
    Fmt.pr "CLUSTER SOAK FAILED@.";
    exit 1
  end
  else Fmt.pr "CLUSTER SOAK CLEAN@."

let () =
  if Array.length Sys.argv >= 3 && Sys.argv.(1) = "cluster-worker" then
    cluster_worker_main Sys.argv.(2);
  match Array.to_list Sys.argv with
  | _ :: "pipeline" :: rest ->
    pipeline_soak (match rest with n :: _ -> int_of_string n | [] -> 25)
  | _ :: "net" :: rest ->
    let seconds = match rest with n :: _ -> int_of_string n | [] -> 30 in
    let json_out =
      match rest with _ :: f :: _ -> f | _ -> "SOAK_net_metrics.json"
    in
    net_soak seconds json_out
  | _ :: "cluster" :: rest ->
    let sessions = match rest with n :: _ -> int_of_string n | [] -> 120 in
    let json_out =
      match rest with _ :: f :: _ -> f | _ -> "SOAK_cluster_metrics.json"
    in
    cluster_soak sessions json_out
  | _ :: n :: _ -> subject_soak (int_of_string n)
  | _ -> subject_soak 100
