(* Mutant detection driver: prove the checker catches every seeded
   refinement-violation bug in the lib/faults registry.

     dune exec dev/mutants.exe                      # full budgets
     dune exec dev/mutants.exe -- --quick           # CI-sized budgets
     dune exec dev/mutants.exe -- --json matrix.json
     dune exec dev/mutants.exe -- --fault cache.stale_writeback

   Exit status 0 iff every selected mutant satisfies its kind's required
   detections: refinement mutants a deterministic view-mode detection (coop
   seed sweep or bounded exploration), deadlock mutants a lock-order-graph
   cycle plus a genuine hang, benign mutants silence in every channel.  The
   matrix is printed either way and optionally written as JSON. *)

module Faults = Vyrd_faults.Faults
module Mutants = Vyrd_harness.Mutants

let usage () =
  prerr_endline
    "usage: mutants [--quick] [--json FILE] [--fault NAME (repeatable)]";
  exit 2

let () =
  let quick = ref false and json = ref None and only = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--json" :: file :: rest ->
      json := Some file;
      parse rest
    | "--fault" :: name :: rest ->
      only := name :: !only;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let cfg = if !quick then Mutants.quick else Mutants.full in
  let faults =
    match !only with
    | [] -> Faults.registered ()
    | names ->
      List.rev_map
        (fun n ->
          match Faults.find n with
          | f -> f
          | exception Not_found ->
            Fmt.epr "unknown fault %S; registered:@.%a@." n
              Fmt.(vbox (list ~sep:cut (using Faults.name string)))
              (Faults.registered ());
            exit 2)
        names
  in
  if faults = [] then begin
    Fmt.epr "no faults registered — are the subject libraries linked?@.";
    exit 2
  end;
  Fmt.pr "detection matrix: %d mutant(s), %s budgets@.@." (List.length faults)
    (if !quick then "quick" else "full");
  let rows =
    List.map
      (fun f ->
        let row = Mutants.run_fault cfg f in
        Fmt.pr "%-32s %s%s@." (Faults.name f)
          (if Mutants.expected_detections_hold row then
             match Faults.kind f with
             | Faults.Benign -> "silent (as required)"
             | Faults.Refinement | Faults.Deadlock | Faults.Leak -> "detected"
           else "REQUIRED DETECTIONS MISSING")
          (if Mutants.race_detection row then " (+hb-race)" else "");
        row)
      faults
  in
  Fmt.pr "@.%a@." Mutants.pp_matrix rows;
  (match !json with
  | Some file -> (
    match open_out file with
    | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Mutants.to_json rows));
      Fmt.pr "wrote %s@." file
    | exception Sys_error msg ->
      Fmt.epr "cannot write %s: %s@." file msg;
      exit 2)
  | None -> ());
  let missed =
    List.filter (fun r -> not (Mutants.expected_detections_hold r)) rows
  in
  let beats = List.filter Mutants.view_beats_io rows in
  Fmt.pr "view-mode time-to-detection <= io-mode for %d/%d mutants@."
    (List.length beats) (List.length rows);
  let raced = List.filter Mutants.race_detection rows in
  Fmt.pr
    "happens-before race channel fired for %d/%d mutants (informational: \
     lock-discipline bugs only)@."
    (List.length raced) (List.length rows);
  if missed <> [] then begin
    Fmt.epr "@.%d mutant(s) failed their kind's required detections:@."
      (List.length missed);
    List.iter
      (fun (r : Mutants.row) -> Fmt.epr "  %s@." (Faults.name r.Mutants.fault))
      missed;
    exit 1
  end
