(* vyrd-check: record instrumented executions of the benchmark subjects and
   check serialized logs offline — the paper's two-phase architecture split
   into two processes.

     dune exec bin/vyrd_check.exe -- subjects
     dune exec bin/vyrd_check.exe -- record --subject Cache --bug -o cache.log
     dune exec bin/vyrd_check.exe -- check --subject Cache --mode view cache.log
     dune exec bin/vyrd_check.exe -- analyze --json cache.log
*)

open Vyrd
open Vyrd_harness
open Cmdliner

let subject_names = List.map (fun (s : Subjects.t) -> s.name) Subjects.all

let subject_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "subject"; "s" ] ~docv:"NAME" ~doc:"Benchmark subject to use.")

let resolve name =
  match Subjects.find name with
  | s -> s
  | exception Not_found ->
    Fmt.epr "unknown subject %S; one of: %a@." name
      Fmt.(list ~sep:comma string)
      subject_names;
    exit 2

module Segment = Vyrd_pipeline.Segment
module Metrics = Vyrd_pipeline.Metrics
module Farm = Vyrd_pipeline.Farm
module Resume = Vyrd_pipeline.Resume
module Wire = Vyrd_net.Wire
module Server = Vyrd_net.Server
module Client = Vyrd_net.Client
module Coordinator = Vyrd_cluster.Coordinator
module Supervisor = Vyrd_cluster.Supervisor
module Lin = Vyrd_lin.Backend
module Monitor = Vyrd_monitor.Monitor
module Faults = Vyrd_faults.Faults

(* Oracle selection shared by check and pipeline: the paper's
   commit-annotation refinement checker, the annotation-free JIT
   linearizability backend of lib/lin, or both side by side. *)
let backend_arg =
  Arg.(
    value
    & opt
        (enum [ ("refinement", `Refinement); ("lin", `Lin); ("both", `Both) ])
        `Refinement
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Oracle(s) to run: $(b,refinement) (the commit-annotation checker), \
           $(b,lin) (the annotation-free JIT linearizability backend over \
           calls and returns only), or $(b,both) side by side with an \
           agreement report.")

let lin_budget_arg =
  Arg.(
    value & opt int 1_000_000
    & info [ "lin-budget" ] ~docv:"N"
        ~doc:"Search-node budget per structure for the lin backend.")

(* Shared by check, pipeline and serve: temporal monitors over the event
   stream.  Specs are validated eagerly so a typo fails fast with a parse
   error, but monitors themselves are built fresh per use (they are
   stateful). *)
let monitor_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "monitor" ] ~docv:"SPEC"
        ~doc:
          "Attach a streaming temporal-property monitor: a built-in pack \
           name ($(b,lock-reversal), $(b,resource-leak)) or a formula in \
           the tiny LTL syntax, e.g. $(b,\"G (call(Insert) -> F \
           return(Insert))\").  Repeatable; any violation makes the exit \
           status 1.")

(* Validate every spec up front; return a factory building fresh monitors. *)
let monitor_factory specs =
  List.iter
    (fun spec ->
      match Monitor.of_spec spec with
      | Ok _ -> ()
      | Error msg ->
        Fmt.epr "--monitor %s: %s@." spec msg;
        (match specs with
        | _ :: _ ->
          Fmt.epr "built-in packs: %a@."
            Fmt.(list ~sep:comma string)
            Monitor.builtin_names
        | [] -> ());
        exit 2)
    specs;
  fun () ->
    List.map
      (fun spec ->
        match Monitor.of_spec spec with
        | Ok m -> m
        | Error msg -> failwith msg (* unreachable: validated above *))
      specs

(* Load a serialized log, sniffing the binary segment format by magic.
   Text-format errors come out as positioned [file:line] diagnostics; a
   binary prefix with a crash-torn tail loads with a warning. *)
let load_log file =
  if Sys.file_exists file && not (Segment.is_binary file) then (
    match Log.of_file file with
    | log -> log
    | exception Log.Parse_error { line; message } ->
      Fmt.epr "%s:%d: %s@." file line message;
      exit 2)
  else
    match Segment.read_prefix file with
    | r ->
      if r.Segment.truncated then
        Fmt.epr
          "warning: %s: torn tail discarded; %d whole segments (%d events) \
           recovered@."
          file r.Segment.segments
          (Log.length r.Segment.log);
      r.Segment.log
    | exception Vyrd_pipeline.Bincodec.Corrupt msg ->
      Fmt.epr "%s@." msg;
      exit 2
    | exception Sys_error msg ->
      Fmt.epr "%s@." msg;
      exit 2

let list_cmd =
  let run () =
    List.iter
      (fun (s : Subjects.t) -> Fmt.pr "%-22s %s@." s.name s.bug_description)
      Subjects.all
  in
  Cmd.v (Cmd.info "subjects" ~doc:"List the benchmark subjects.")
    Term.(const run $ const ())

let record_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to write the log.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N") in
  let threads = Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N") in
  let ops = Arg.(value & opt int 50 & info [ "ops" ] ~docv:"N" ~doc:"Calls per thread.") in
  let bug = Arg.(value & flag & info [ "bug" ] ~doc:"Enable the subject's injected bug.") in
  let level =
    Arg.(
      value
      & opt (enum [ ("io", `Io); ("view", `View); ("full", `Full) ]) `View
      & info [ "level" ] ~docv:"LEVEL" ~doc:"Logging granularity (io, view, full).")
  in
  let binary =
    Arg.(
      value & flag
      & info [ "binary" ]
          ~doc:"Stream the compact binary segment format instead of text.")
  in
  let rotate =
    Arg.(
      value
      & opt (some int) None
      & info [ "rotate-bytes" ] ~docv:"N"
          ~doc:"Rotate binary segment files at ~$(docv) bytes (implies --binary).")
  in
  let run subject out seed threads ops bug level binary rotate =
    let subject = resolve subject in
    let cfg =
      { Harness.default with seed; threads; ops_per_thread = ops; log_level = level }
    in
    let buggy = if bug then " (buggy)" else "" in
    if binary || rotate <> None then begin
      (* stream to disk while the workload runs instead of spooling a full
         in-memory log first *)
      let log = Log.create ~level () in
      let w = Segment.create_writer ?rotate_bytes:rotate ~level out in
      Segment.attach w log;
      Harness.run_into ~log cfg [ subject.build ~bug ];
      Segment.close w;
      Fmt.pr "recorded %d events of %s%s to %s (%d file(s), %d segments, %d bytes)@."
        (Log.length log) subject.name buggy out
        (List.length (Segment.writer_files w))
        (Segment.writer_segments w) (Segment.writer_bytes w)
    end
    else begin
      let log = Harness.run cfg (subject.build ~bug) in
      Log.to_file out log;
      Fmt.pr "recorded %d events of %s%s to %s@." (Log.length log) subject.name
        buggy out
    end
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:"Run a random workload (paper §7.1) and serialize its log.")
    Term.(
      const run $ subject_arg $ out $ seed $ threads $ ops $ bug $ level $ binary
      $ rotate)

let check_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"LOG") in
  let mode =
    Arg.(
      value
      & opt (enum [ ("io", `Io); ("view", `View) ]) `View
      & info [ "mode" ] ~docv:"MODE" ~doc:"Refinement notion to check (io or view).")
  in
  let invariants =
    Arg.(
      value & flag
      & info [ "invariants" ] ~doc:"Also check the subject's runtime invariants.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"On a violation, render the trailing events as a per-thread timeline.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume a binary spool from its latest usable checkpoint frame \
             and check only the event suffix, instead of replaying from \
             event zero.  The verdict is identical either way.")
  in
  let checkpoint_events =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-events" ] ~docv:"N"
          ~doc:
            "Check a binary spool and append a checkpoint frame to it every \
             $(docv) events, so the next check of the same spool can \
             $(b,--resume).")
  in
  let run subject mode backend lin_budget invariants explain resume
      checkpoint_events monitor_specs file =
    let subject = resolve subject in
    let make_monitors = monitor_factory monitor_specs in
    if monitor_specs <> [] && (resume || checkpoint_events <> None) then begin
      Fmt.epr
        "--monitor needs the whole event stream; drop --resume or \
         --checkpoint-events@.";
      exit 2
    end;
    if backend <> `Refinement && (resume || checkpoint_events <> None) then begin
      Fmt.epr
        "--resume/--checkpoint-events replay the refinement checker only; \
         drop them or use --backend refinement@.";
      exit 2
    end;
    if resume || checkpoint_events <> None then begin
      if resume && checkpoint_events <> None then begin
        Fmt.epr
          "--resume and --checkpoint-events are exclusive: annotate first, \
           then resume@.";
        exit 2
      end;
      if not (Sys.file_exists file && Segment.is_binary file) then begin
        Fmt.epr
          "%s: checkpoints live in binary segment spools; record with \
           --binary first@."
          file;
        exit 2
      end;
      let view = match mode with `View -> Some subject.view | `Io -> None in
      let invariants =
        match mode with `View when invariants -> subject.invariants | _ -> []
      in
      let outcome =
        match
          match checkpoint_events with
          | Some every ->
            Resume.annotate ~mode ?view ~invariants ~every ~path:file
              subject.spec
          | None -> Resume.resume ~mode ?view ~invariants ~path:file subject.spec
        with
        | o -> o
        | exception Invalid_argument msg ->
          Fmt.epr "configuration error: %s@." msg;
          exit 2
        | exception Vyrd_pipeline.Bincodec.Corrupt msg ->
          Fmt.epr "%s@." msg;
          exit 2
        | exception Sys_error msg ->
          Fmt.epr "%s@." msg;
          exit 2
      in
      Fmt.pr "%a@." Report.pp outcome.Resume.report;
      (match checkpoint_events with
      | Some every ->
        if outcome.Resume.truncated then
          Fmt.pr
            "truncated spool: checked %d recovered events, no checkpoints \
             appended@."
            outcome.Resume.total
        else
          Fmt.pr "annotated %d checkpoint frame(s) at %d-event spacing over %d events@."
            outcome.Resume.checkpoints every outcome.Resume.total
      | None -> (
        match outcome.Resume.resumed_at with
        | Some at ->
          Fmt.pr
            "resumed at event %d: replayed %d of %d events (%d checkpoint(s) \
             on the spool)@."
            at outcome.Resume.replayed outcome.Resume.total
            outcome.Resume.checkpoints
        | None ->
          Fmt.pr "no usable checkpoint: full replay of %d events@."
            outcome.Resume.total));
      Option.iter
        (Fmt.pr "violating event at stream index %d@.")
        outcome.Resume.fail_index;
      if Report.is_pass outcome.Resume.report then exit 0 else exit 1
    end;
    let log = load_log file in
    (* Offline monitor pass over the loaded snapshot: feed every event,
       resolve at stream end, print each monitor's verdict. *)
    let monitor_fail =
      match make_monitors () with
      | [] -> false
      | ms ->
        Log.iter (fun ev -> List.iter (fun m -> Monitor.feed m ev) ms) log;
        List.fold_left
          (fun fail m ->
            match Monitor.finish m with
            | Monitor.Viol _ ->
              List.iter
                (fun w ->
                  Fmt.pr "monitor %s: violation %a@." (Monitor.name m)
                    Monitor.pp_witness w)
                (Monitor.violations m);
              true
            | Monitor.Sat | Monitor.Pending ->
              Fmt.pr "monitor %s: clean (%d events)@." (Monitor.name m)
                (Monitor.fed m);
              fail)
          false ms
    in
    let refinement_report () =
      match
        match mode with
        | `Io -> Checker.check ~mode:`Io log subject.spec
        | `View ->
          Checker.check ~mode:`View ~view:subject.view
            ~invariants:(if invariants then subject.invariants else [])
            log subject.spec
      with
      | report -> report
      | exception Invalid_argument msg ->
        (* e.g. view-mode checking of a log recorded at level `Io *)
        Fmt.epr "configuration error: %s@." msg;
        exit 2
    in
    let explain_violation report =
      if (not (Report.is_pass report)) && explain then begin
        Fmt.pr "@.%s@."
          (Timeline.tail
             ~options:{ Timeline.default with show_writes = true }
             log ~until:report.Report.stats.events_processed);
        Fmt.pr "%s@." (Timeline.witness log)
      end
    in
    let lin_result () =
      Lin.check_log ~budget:lin_budget
        ~specs:[ (subject.name, subject.spec) ]
        log
    in
    match backend with
    | `Refinement ->
      let report = refinement_report () in
      Fmt.pr "%a@." Report.pp report;
      explain_violation report;
      if Report.is_pass report && not monitor_fail then exit 0 else exit 1
    | `Lin ->
      let r = lin_result () in
      Fmt.pr "%a@." Lin.pp r;
      if Lin.violations r <> [] then exit 1
      else begin
        if Lin.inconclusive r then
          Fmt.pr
            "note: verdict inconclusive — some structure exhausted the \
             %d-node budget; raise --lin-budget@."
            lin_budget;
        if monitor_fail then exit 1 else exit 0
      end
    | `Both ->
      let report = refinement_report () in
      let r = lin_result () in
      Fmt.pr "refinement: %a@." Report.pp report;
      Fmt.pr "lin:        %a@." Lin.pp r;
      explain_violation report;
      let ref_pass = Report.is_pass report in
      let lin_fail = Lin.violations r <> [] in
      let word pass = if pass then "pass" else "violation" in
      if Lin.inconclusive r && not lin_fail then
        Fmt.pr "backends: refinement says %s; lin is inconclusive (budget)@."
          (word ref_pass)
      else if ref_pass = not lin_fail then
        Fmt.pr "backends agree: %s@." (word ref_pass)
      else
        Fmt.pr "backends disagree: refinement=%s lin=%s@." (word ref_pass)
          (word (not lin_fail));
      if ref_pass && (not lin_fail) && not monitor_fail then exit 0 else exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check a serialized log against a subject's specification.")
    Term.(
      const run $ subject_arg $ mode $ backend_arg $ lin_budget_arg
      $ invariants $ explain $ resume $ checkpoint_events $ monitor_arg $ file)

let timeline_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"LOG") in
  let writes =
    Arg.(value & flag & info [ "writes" ] ~doc:"Include shared-variable writes.")
  in
  let width =
    Arg.(value & opt int 22 & info [ "width" ] ~docv:"N" ~doc:"Column width.")
  in
  let run writes width file =
    let log = load_log file in
    print_string
      (Timeline.render
         ~options:{ Timeline.col_width = width; show_writes = writes; max_events = None }
         log);
    print_string (Timeline.witness log)
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Render a recorded log as a per-thread timeline (Fig. 3 style).")
    Term.(const run $ writes $ width $ file)

(* ------------------------------------------------------------- analyze *)

module Racedetect = Vyrd_analysis.Racedetect
module Lint = Vyrd_analysis.Lint
module Lockgraph = Vyrd_analysis.Lockgraph
module Reduction = Vyrd_baselines.Reduction

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = Printf.sprintf "\"%s\"" (json_escape s)
let json_list items = Printf.sprintf "[%s]" (String.concat "," items)

let access_json (a : Racedetect.access) =
  Printf.sprintf "{\"index\":%d,\"tid\":%d,\"kind\":%s,\"method\":%s}" a.index
    a.tid
    (json_str (match a.kind with `Read -> "read" | `Write -> "write"))
    (match a.meth with
    | Some m ->
      Printf.sprintf "{\"mid\":%s,\"call_index\":%d}" (json_str m.mid)
        m.call_index
    | None -> "null")

let lint_json (l : Lint.result) =
  Printf.sprintf
    "{\"errors\":%d,\"warnings\":%d,\"diagnostics\":%s}" l.errors l.warnings
    (json_list
       (List.map
          (fun (d : Lint.diag) ->
            Printf.sprintf
              "{\"position\":%d,\"tid\":%d,\"severity\":%s,\"kind\":%s,\
               \"message\":%s}"
              d.position d.tid
              (json_str (Fmt.str "%a" Lint.pp_severity d.severity))
              (json_str (Lint.kind_id d.kind))
              (json_str (Lint.message d.kind)))
          l.diags))

let races_json (r : Racedetect.result) =
  Printf.sprintf
    "{\"racy_vars\":%s,\"races\":%s,\"events\":%d,\"variables\":%d}"
    (json_list (List.map json_str r.racy_vars))
    (json_list
       (List.map
          (fun (race : Racedetect.race) ->
            Printf.sprintf "{\"var\":%s,\"prior\":%s,\"current\":%s}"
              (json_str race.var) (access_json race.prior)
              (access_json race.current))
          r.races))
    r.events r.variables

let lockgraph_witness_json (w : Lockgraph.witness) =
  Printf.sprintf "{\"index\":%d,\"tid\":%d,\"held\":%s,\"method\":%s}" w.index
    w.tid
    (json_list (List.map json_str (List.sort compare w.held)))
    (match w.meth with
    | Some m ->
      Printf.sprintf "{\"mid\":%s,\"call_index\":%d}" (json_str m.mid)
        m.call_index
    | None -> "null")

let lockgraph_json (r : Lockgraph.result) =
  Printf.sprintf
    "{\"cycles\":%s,\"locks\":%d,\"edges\":%d,\"acquires\":%d,\
     \"suppressed_gated\":%d,\"suppressed_single_thread\":%d}"
    (json_list
       (List.map
          (fun (c : Lockgraph.cycle) ->
            Printf.sprintf "{\"locks\":%s,\"witnesses\":%s}"
              (json_list (List.map json_str c.locks))
              (json_list
                 (List.map2
                    (fun (e : Lockgraph.edge) w ->
                      Printf.sprintf "{\"from\":%s,\"to\":%s,\"witness\":%s}"
                        (json_str e.src) (json_str e.dst)
                        (lockgraph_witness_json w))
                    c.edges c.chosen)))
          r.cycles))
    r.locks r.edges r.acquires r.suppressed_gated r.suppressed_single_thread

let reduction_json (r : Reduction.result) =
  Printf.sprintf "{\"racy_vars\":%s,\"methods\":%s}"
    (json_list (List.map json_str r.racy_vars))
    (json_list
       (List.map
          (fun (m : Reduction.method_summary) ->
            Printf.sprintf
              "{\"mid\":%s,\"executions\":%d,\"atomic\":%d,\"reducible\":%b}"
              (json_str m.mid) m.executions m.atomic
              (m.atomic = m.executions))
          r.methods))

(* The §8 comparison: which lockset alarms does the precise happens-before
   relation confirm, and which non-reducible methods are race-free (the
   false-alarm gap refinement checking closes)? *)
type comparison = {
  lockset_only : string list;  (* lockset-racy vars with no HB race *)
  hb_only : string list;  (* HB-racy vars the lockset pass missed *)
  false_alarm_methods : string list;  (* non-reducible yet race-free *)
}

let compare_analyses (hb : Racedetect.result) (red : Reduction.result) =
  let diff a b = List.filter (fun v -> not (List.mem v b)) a in
  let racy_methods = Racedetect.racy_methods hb in
  {
    lockset_only = diff red.racy_vars hb.racy_vars;
    hb_only = diff hb.racy_vars red.racy_vars;
    false_alarm_methods =
      List.filter_map
        (fun (m : Reduction.method_summary) ->
          if m.atomic < m.executions && not (List.mem m.mid racy_methods) then
            Some m.mid
          else None)
        red.methods;
  }

let comparison_json c =
  Printf.sprintf
    "{\"lockset_only_vars\":%s,\"hb_only_vars\":%s,\
     \"non_reducible_race_free_methods\":%s}"
    (json_list (List.map json_str c.lockset_only))
    (json_list (List.map json_str c.hb_only))
    (json_list (List.map json_str c.false_alarm_methods))

let analyze_cmd =
  let files =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"LOG" ~doc:"Log file(s).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit one machine-readable JSON document.")
  in
  let lint_only =
    Arg.(
      value & flag
      & info [ "lint-only" ]
          ~doc:
            "Run only the level-tolerant analyses (the log-discipline linter \
             and the lock-order graph); skip race detection and reduction.")
  in
  let run json lint_only files =
    let findings = ref false in
    let analyze_one file =
      let log = load_log file in
      let lint = Lint.check log in
      if not (Lint.ok lint) then findings := true;
      (* level-tolerant like the linter: a sub-`Full log has no lock events,
         so the graph is empty and the verdict trivially clean *)
      let lockgraph = Lockgraph.analyze log in
      if not (Lockgraph.ok lockgraph) then findings := true;
      let deep =
        if lint_only then None
        else
          match (Racedetect.analyze log, Reduction.analyze log) with
          | hb, red ->
            if hb.Racedetect.races <> [] then findings := true;
            Some (hb, red, compare_analyses hb red)
          | exception Invalid_argument msg ->
            (* e.g. race/reduction analysis of a log recorded below `Full *)
            Fmt.epr "configuration error: %s@." msg;
            exit 2
      in
      if json then
        Printf.printf
          "    {\"log\":%s,\"events\":%d,\"lint\":%s,\"lockgraph\":%s%s}"
          (json_str file) (Log.length log) (lint_json lint)
          (lockgraph_json lockgraph)
          (match deep with
          | None -> ""
          | Some (hb, red, cmp) ->
            Printf.sprintf ",\"races\":%s,\"reduction\":%s,\"comparison\":%s"
              (races_json hb) (reduction_json red) (comparison_json cmp))
      else begin
        Fmt.pr "== %s (%d events) ==@." file (Log.length log);
        Fmt.pr "lint: %a@." Lint.pp lint;
        Fmt.pr "lock order: %a@." Lockgraph.pp lockgraph;
        match deep with
        | None -> ()
        | Some (hb, red, cmp) ->
          Fmt.pr "happens-before: %a@." Racedetect.pp hb;
          Fmt.pr "reduction: %a@." Reduction.pp red;
          Fmt.pr "lockset alarms unconfirmed by happens-before: %a@."
            Fmt.(list ~sep:comma string)
            cmp.lockset_only;
          Fmt.pr "non-reducible yet race-free methods (§8 false alarms): %a@."
            Fmt.(list ~sep:comma string)
            cmp.false_alarm_methods
      end
    in
    if json then print_string "{\n  \"analyses\": [\n";
    List.iteri
      (fun i file ->
        if json && i > 0 then print_string ",\n";
        analyze_one file;
        if not json then Fmt.pr "@.")
      files;
    if json then print_string "\n  ]\n}\n";
    if !findings then exit 1 else exit 0
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static analyses over a recorded log: happens-before race detection \
          (FastTrack), the log-discipline linter, the deadlock-potential \
          lock-order graph (Goodlock), and a side-by-side comparison with \
          Lipton-reduction atomicity (the §8 false-alarm gap).  Requires a \
          log recorded at level full unless --lint-only.")
    Term.(const run $ json $ lint_only $ files)

(* ------------------------------------------------------------ pipeline *)

let pipeline_cmd =
  let subjects_arg =
    Arg.(
      value
      & opt (list string)
          [ "Multiset-Vector"; "java.util.Vector"; "java.util.StringBuffer" ]
      & info [ "subjects" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated subjects run and checked concurrently, one \
             checker domain each.  Method namespaces must be disjoint \
             (the $(b,Spec_compose) precondition).")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N") in
  let threads = Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N") in
  let ops =
    Arg.(value & opt int 200 & info [ "ops" ] ~docv:"N" ~doc:"Calls per thread.")
  in
  let bug =
    Arg.(
      value & flag & info [ "bug" ] ~doc:"Enable every subject's injected bug.")
  in
  let level =
    Arg.(
      value
      & opt (enum [ ("io", `Io); ("view", `View); ("full", `Full) ]) `View
      & info [ "level" ] ~docv:"LEVEL"
          ~doc:"Logging granularity; below view the farm checks I/O refinement.")
  in
  let capacity =
    Arg.(
      value & opt int 4096
      & info [ "capacity" ] ~docv:"N"
          ~doc:"Per-shard ring bound (memory ceiling; producers block when full).")
  in
  let invariants =
    Arg.(
      value & flag
      & info [ "invariants" ] ~doc:"Also check each subject's runtime invariants.")
  in
  let segments =
    Arg.(
      value
      & opt (some string) None
      & info [ "segments" ] ~docv:"FILE"
          ~doc:"Also spool the event stream to binary segment files at $(docv).")
  in
  let rotate =
    Arg.(
      value
      & opt (some int) None
      & info [ "rotate-bytes" ] ~docv:"N"
          ~doc:"Rotate the segment spool at ~$(docv) bytes per file.")
  in
  let checkpoint_events =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-events" ] ~docv:"N"
          ~doc:
            "Interleave a farm checkpoint frame into the segment spool every \
             $(docv) events, so a later re-check can resume mid-stream \
             (requires --segments).")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:"Write the metrics registry as one JSON document to $(docv).")
  in
  let native =
    Arg.(
      value & flag
      & info [ "native" ]
          ~doc:"Run the workload under system threads instead of the \
                deterministic engine.")
  in
  let analyze =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:
            "Attach the incremental analysis passes (lint, lock-order graph, \
             and at level full the race detector) to a dedicated farm lane \
             and report their diagnostics with the verdict.")
  in
  let fault_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "fault" ] ~docv:"NAME"
          ~doc:
            "Arm a seeded mutant from the fault registry for this run \
             (repeatable) — the ground-truth bugs the detectors are \
             validated against, e.g. $(b,cache.lock_order_inversion).")
  in
  let run names seed threads ops bug level capacity invariants segments rotate
      checkpoint_events metrics_json native analyze backend lin_budget
      monitor_specs fault_names =
    let subjects = List.map resolve names in
    let make_monitors = monitor_factory monitor_specs in
    List.iter
      (fun n ->
        match Faults.find n with
        | f -> Faults.arm f
        | exception Not_found ->
          Fmt.epr "unknown fault %S; registered: %a@." n
            Fmt.(list ~sep:comma (using Faults.name string))
            (Faults.registered ());
          exit 2)
      fault_names;
    let cfg =
      { Harness.default with seed; threads; ops_per_thread = ops; log_level = level }
    in
    let log = Log.create ~level () in
    let metrics = Metrics.create () in
    let logged = Metrics.counter metrics "log.events" in
    let shards =
      List.map
        (fun (s : Subjects.t) ->
          match level with
          | `View | `Full ->
            Farm.shard ~mode:`View ~view:s.view
              ~invariants:(if invariants then s.invariants else [])
              s.name s.spec
          | `Io | `None -> Farm.shard ~mode:`Io s.name s.spec)
        subjects
    in
    let passes =
      (if backend <> `Refinement then
         let specs =
           List.map (fun (s : Subjects.t) -> (s.name, s.spec)) subjects
         in
         [ Lin.pass ~budget:lin_budget ~metrics ~specs () ]
       else [])
      @ (match make_monitors () with
        | [] -> []
        | ms -> [ Monitor.pass ~metrics ms ])
      @ if analyze then Vyrd_analysis.Pass.for_level level else []
    in
    let farm =
      match Farm.start ~capacity ~metrics ~passes ~level shards with
      | farm -> farm
      | exception Invalid_argument msg ->
        Fmt.epr "configuration error: %s@." msg;
        exit 2
    in
    Farm.attach farm log;
    Log.subscribe log (fun _ -> Metrics.incr logged);
    let writer =
      Option.map
        (fun path ->
          let w = Segment.create_writer ?rotate_bytes:rotate ~level path in
          Segment.attach w log;
          w)
        segments
    in
    let checkpoints = ref 0 in
    (match checkpoint_events with
    | None -> ()
    | Some every ->
      if every <= 0 then begin
        Fmt.epr "--checkpoint-events must be positive@.";
        exit 2
      end;
      (match writer with
      | None ->
        Fmt.epr
          "--checkpoint-events requires --segments: checkpoints are frames \
           in the spool@.";
        exit 2
      | Some w ->
        (* subscribed after the farm and the writer: when this fires on
           event [i] the farm has consumed and the writer has buffered all
           [i] events, so the barrier snapshot and the frame position agree *)
        let seen = ref 0 in
        Log.subscribe log (fun _ ->
            incr seen;
            if !seen mod every = 0 then
              match Farm.checkpoint farm with
              | Some state ->
                Segment.append_checkpoint w state;
                incr checkpoints
              | None -> ())));
    let t0 = Unix.gettimeofday () in
    (match
       Harness.run_into ~native ~log cfg
         (List.map (fun (s : Subjects.t) -> s.build ~bug) subjects)
     with
    | () -> ()
    | exception Vyrd_sched.Coop.Deadlock msg ->
      (* an armed deadlock-kind fault genuinely hung this schedule; pick
         another --seed to get a completed trace for the monitors *)
      Fmt.epr "workload deadlocked (%s); retry with a different --seed@." msg;
      exit 2);
    Option.iter Segment.close writer;
    let result = Farm.finish farm in
    let dt = Unix.gettimeofday () -. t0 in
    Fmt.pr "pipeline: %d events through %d checker domain(s) in %.3fs (%.0f ev/s)@."
      result.Farm.fed
      (List.length result.Farm.shards)
      dt
      (float_of_int result.Farm.fed /. dt);
    List.iter
      (fun (sr : Farm.shard_result) ->
        Fmt.pr "  %-22s %-10s events %-8d high-water %-6d stall %.1f ms@."
          sr.Farm.sr_name (Report.tag sr.Farm.sr_report) sr.Farm.sr_events
          sr.Farm.sr_high_water
          (float_of_int sr.Farm.sr_stall_ns /. 1e6))
      result.Farm.shards;
    Fmt.pr "merged: %a@." Report.pp result.Farm.merged;
    List.iter
      (fun s -> Fmt.pr "analysis %a@." Vyrd_analysis.Pass.pp_summary s)
      result.Farm.analysis;
    (match writer with
    | Some w ->
      Fmt.pr "segments: %d file(s), %d segments, %d bytes@."
        (List.length (Segment.writer_files w))
        (Segment.writer_segments w) (Segment.writer_bytes w)
    | None -> ());
    if checkpoint_events <> None then
      Fmt.pr "checkpoints: %d frame(s) interleaved@." !checkpoints;
    Fmt.pr "@.%a" Metrics.pp metrics;
    (match metrics_json with
    | Some f ->
      let oc = open_out f in
      output_string oc (Metrics.to_json metrics);
      output_char oc '\n';
      close_out oc
    | None -> ());
    let analysis_clean =
      List.for_all Vyrd_analysis.Pass.clean result.Farm.analysis
    in
    (match backend with
    | `Refinement -> ()
    | `Lin | `Both -> (
      match
        List.find_opt
          (fun (s : Vyrd_analysis.Pass.summary) -> s.pass = "lin")
          result.Farm.analysis
      with
      | None -> ()
      | Some s ->
        let ref_pass = Report.is_pass result.Farm.merged in
        let lin_pass = s.Vyrd_analysis.Pass.errors = 0 in
        let word pass = if pass then "pass" else "violation" in
        if ref_pass = lin_pass then
          Fmt.pr "backends agree: %s@." (word ref_pass)
        else
          Fmt.pr "backends disagree: refinement=%s lin=%s@." (word ref_pass)
            (word lin_pass)));
    let verdict_pass =
      match backend with
      | `Lin ->
        (* lin-only verdict: the farm's refinement shards still ran (they
           are the consumption mechanism) and are reported above, but the
           exit code reflects the lin lane and any analysis passes *)
        analysis_clean
      | `Refinement | `Both ->
        Report.is_pass result.Farm.merged && analysis_clean
    in
    if verdict_pass then exit 0 else exit 1
  in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:
         "Stream a multi-structure workload through the full pipeline: one \
          bounded queue and one checker domain per structure, optional binary \
          segment spooling, merged verdict and metrics at the end.")
    Term.(
      const run $ subjects_arg $ seed $ threads $ ops $ bug $ level $ capacity
      $ invariants $ segments $ rotate $ checkpoint_events $ metrics_json
      $ native $ analyze $ backend_arg $ lin_budget_arg $ monitor_arg
      $ fault_arg)

(* ----------------------------------------------------------- serve/submit *)

let addr_arg =
  let addr_conv =
    ( (fun s -> `Ok (Wire.addr_of_string s)),
      fun ppf a -> Wire.pp_addr ppf a )
  in
  Arg.(
    required
    & opt (some addr_conv) None
    & info [ "l"; "listen"; "to" ] ~docv:"ADDR"
        ~doc:
          "Socket address: a Unix socket path, or $(i,HOST:PORT) for \
           loopback/remote TCP.")

let write_metrics_json file metrics =
  match open_out file with
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Metrics.to_json metrics);
        output_char oc '\n')
  | exception Sys_error msg -> Fmt.epr "cannot write %s: %s@." file msg

let shards_for subjects invariants level =
  List.map
    (fun (s : Subjects.t) ->
      match level with
      | `View | `Full ->
        Farm.shard ~mode:`View ~view:s.view
          ~invariants:(if invariants then s.invariants else [])
          s.name s.spec
      | `Io | `None -> Farm.shard ~mode:`Io s.name s.spec)
    subjects

let serve_cmd =
  let subjects_arg =
    Arg.(
      value
      & opt (list string)
          [ "Multiset-Vector"; "java.util.Vector"; "java.util.StringBuffer" ]
      & info [ "subjects" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated subjects every session is checked against, one \
             checker domain each; method namespaces must be disjoint.")
  in
  let capacity =
    Arg.(
      value & opt int 4096
      & info [ "capacity" ] ~docv:"N" ~doc:"Per-shard ring bound.")
  in
  let window =
    Arg.(
      value & opt int 8192
      & info [ "window" ] ~docv:"N"
          ~doc:"Credit window: events a client may have in flight.")
  in
  let max_sessions =
    Arg.(
      value & opt int 8
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:
            "Concurrent checking sessions; further sessions spill to segment \
             files for later offline checking instead of being refused.")
  in
  let spill_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "spill-dir" ] ~docv:"DIR" ~doc:"Where overload spools go.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 30.
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Fail a session after this long without a frame (heartbeats reset it).")
  in
  let invariants =
    Arg.(
      value & flag
      & info [ "invariants" ] ~doc:"Also check each subject's runtime invariants.")
  in
  let recheck_spills =
    Arg.(
      value & flag
      & info [ "recheck-spills" ]
          ~doc:
            "Re-check each spilled spool offline once its session finishes \
             and a checking slot frees up, resuming from the spool's latest \
             checkpoint frame.")
  in
  let checkpoint_events =
    Arg.(
      value & opt int 50_000
      & info [ "checkpoint-events" ] ~docv:"N"
          ~doc:
            "Checkpoint-frame spacing (events) that spill re-checks append \
             to their spools.")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:"Write the metrics registry as JSON to $(docv) on shutdown.")
  in
  let analyze =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:
            "Attach fresh incremental analysis passes (lint, lock-order \
             graph, and at level full the race detector) to every session's \
             farm; diagnostic counts surface in the analysis.* metrics.")
  in
  let run addr names capacity window max_sessions spill_dir idle_timeout
      invariants recheck_spills checkpoint_events metrics_json analyze
      monitor_specs =
    let subjects = List.map resolve names in
    let make_monitors = monitor_factory monitor_specs in
    let metrics = Metrics.create () in
    let monitors () =
      (* fresh monitors per session: they are stateful stream machines *)
      match make_monitors () with
      | [] -> []
      | ms -> [ Monitor.pass ~metrics ms ]
    in
    let cfg =
      Server.config ~capacity ~window ~max_sessions ?spill_dir ~idle_timeout
        ~recheck_spills ~checkpoint_events ~analyze ~monitors ~metrics ~addr
        (shards_for subjects invariants)
    in
    let server =
      match Server.start cfg with
      | server -> server
      | exception Unix.Unix_error (e, _, arg) ->
        Fmt.epr "cannot listen on %a: %s %s@." Wire.pp_addr addr
          (Unix.error_message e) arg;
        exit 2
    in
    Fmt.pr "vyrdd: listening on %a (%d shard(s)/session, window %d, spill after \
            %d sessions)@."
      Wire.pp_addr (Server.addr server)
      (List.length subjects) window max_sessions;
    Fmt.pr "vyrdd: SIGUSR1 dumps metrics; SIGINT/SIGTERM drains and exits@.";
    let stop = ref false in
    let handle _ = stop := true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle handle);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle handle);
    (* The handler only flips a flag: [Metrics.pp] takes the registry
       mutex, and printing from the handler could re-enter a session
       thread's locked section and deadlock the daemon.  The dump itself
       happens below, on the main wait loop. *)
    let dump_requested = ref false in
    Sys.set_signal Sys.sigusr1
      (Sys.Signal_handle (fun _ -> dump_requested := true));
    let dump_if_requested () =
      if !dump_requested then begin
        dump_requested := false;
        Fmt.epr "%a@." Metrics.pp metrics
      end
    in
    while not !stop do
      dump_if_requested ();
      (try Thread.delay 0.1 with Unix.Unix_error (Unix.EINTR, _, _) -> ())
    done;
    dump_if_requested ();
    Fmt.pr "vyrdd: draining %d open session(s)...@." (Server.active server);
    Server.stop server;
    Fmt.pr "%a@." Metrics.pp metrics;
    Option.iter (fun f -> write_metrics_json f metrics) metrics_json
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the vyrdd verification daemon: accept binary event streams over \
          a socket, drive one checker farm per session, answer with the \
          verdict; overload spills to segment files.")
    Term.(
      const run $ addr_arg $ subjects_arg $ capacity $ window $ max_sessions
      $ spill_dir $ idle_timeout $ invariants $ recheck_spills
      $ checkpoint_events $ metrics_json $ analyze $ monitor_arg)

let cluster_cmd =
  let subjects_arg =
    Arg.(
      value
      & opt (list string)
          [ "Multiset-Vector"; "java.util.Vector"; "java.util.StringBuffer" ]
      & info [ "subjects" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated subjects every session is checked against, one \
             checker domain each; method namespaces must be disjoint.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "In-process vyrdd workers to spawn (ignored when $(b,--worker) \
             gives external addresses).")
  in
  let extern =
    Arg.(
      value
      & opt_all string []
      & info [ "worker" ] ~docv:"NAME=ADDR"
          ~doc:
            "Attach an externally-run vyrdd instead of spawning in-process \
             workers; repeatable.  $(docv) is a member name and its socket \
             address.")
  in
  let spool_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "spool-dir" ] ~docv:"DIR"
          ~doc:
            "Per-session failover spools live here (default: a fresh \
             directory under the system temp dir).")
  in
  let slots =
    Arg.(
      value & opt int 4
      & info [ "worker-slots" ] ~docv:"N"
          ~doc:"Concurrent sessions routed to each worker before overflowing \
                to its ring successor.")
  in
  let window =
    Arg.(
      value & opt int 8192
      & info [ "window" ] ~docv:"N"
          ~doc:"Credit window: events a client may have in flight.")
  in
  let capacity =
    Arg.(
      value & opt int 4096
      & info [ "capacity" ] ~docv:"N" ~doc:"Per-shard ring bound on workers.")
  in
  let checkpoint_events =
    Arg.(
      value & opt int 25_000
      & info [ "checkpoint-events" ] ~docv:"N"
          ~doc:
            "Ask the owning worker for a barrier snapshot about every $(docv) \
             events and spool it as a checkpoint frame; 0 disables (failover \
             then replays sessions from event zero).")
  in
  let vnodes =
    Arg.(
      value & opt int 128
      & info [ "vnodes" ] ~docv:"N" ~doc:"Ring virtual nodes per worker.")
  in
  let ring_seed =
    Arg.(
      value & opt int 0
      & info [ "ring-seed" ] ~docv:"N" ~doc:"Ring placement seed.")
  in
  let keep_spools =
    Arg.(
      value & flag
      & info [ "keep-spools" ]
          ~doc:"Keep verdicted sessions' spool files instead of deleting them.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 30.
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Fail a session after this long without a client frame.")
  in
  let invariants =
    Arg.(
      value & flag
      & info [ "invariants" ] ~doc:"Also check each subject's runtime invariants.")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:
            "Write the aggregated cluster-wide metrics as JSON to $(docv) on \
             shutdown.")
  in
  let analyze =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:"Attach incremental analysis passes to every worker session.")
  in
  let run addr names workers extern spool_dir slots window capacity
      checkpoint_events vnodes ring_seed keep_spools idle_timeout invariants
      metrics_json analyze =
    let subjects = List.map resolve names in
    let spool_dir =
      match spool_dir with
      | Some d -> d
      | None ->
        let d =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "vyrdc-%d" (Unix.getpid ()))
        in
        (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        d
    in
    let metrics = Metrics.create () in
    let cfg =
      Coordinator.config ~window ~checkpoint_events ~worker_slots:slots
        ~idle_timeout ~keep_spools ~vnodes ~seed:ring_seed ~metrics ~addr
        ~spool_dir ()
    in
    let coord =
      match Coordinator.start cfg with
      | coord -> coord
      | exception Unix.Unix_error (e, _, arg) ->
        Fmt.epr "cannot listen on %a: %s %s@." Wire.pp_addr addr
          (Unix.error_message e) arg;
        exit 2
    in
    let pool =
      if extern <> [] then None
      else begin
        if workers <= 0 then begin
          Fmt.epr "--workers must be positive (or give --worker addresses)@.";
          exit 2
        end;
        Some
          (Supervisor.start ~count:workers ~capacity ~window ~analyze
             ~dir:spool_dir
             ~shards:(shards_for subjects invariants)
             ())
      end
    in
    let members =
      match pool with
      | Some p -> Supervisor.workers p
      | None ->
        List.map
          (fun s ->
            match String.index_opt s '=' with
            | Some i ->
              ( String.sub s 0 i,
                Wire.addr_of_string
                  (String.sub s (i + 1) (String.length s - i - 1)) )
            | None -> (s, Wire.addr_of_string s))
          extern
    in
    (try
       List.iter
         (fun (name, waddr) -> Coordinator.attach ~slots coord ~name ~addr:waddr)
         members
     with Unix.Unix_error (e, _, arg) ->
       Fmt.epr "cannot attach worker: %s %s@." (Unix.error_message e) arg;
       Coordinator.stop ~deadline:0. coord;
       exit 2);
    Fmt.pr
      "vyrdc: listening on %a, %d worker(s) on the ring (%d slot(s) each, %d \
       vnodes), spools in %s@."
      Wire.pp_addr (Coordinator.addr coord) (List.length members) slots vnodes
      spool_dir;
    Fmt.pr "vyrdc: SIGUSR1 dumps cluster-wide metrics; SIGINT/SIGTERM drains \
            and exits@.";
    let stop = ref false in
    let handle _ = stop := true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle handle);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle handle);
    (* Flag only — [Coordinator.aggregate] polls workers and [Metrics.pp]
       takes the registry mutex; neither is safe from a signal handler
       (see the vyrdd loop above).  Dump from the main wait loop. *)
    let dump_requested = ref false in
    Sys.set_signal Sys.sigusr1
      (Sys.Signal_handle (fun _ -> dump_requested := true));
    let dump_if_requested () =
      if !dump_requested then begin
        dump_requested := false;
        Fmt.epr "%a@." Metrics.pp (Coordinator.aggregate coord)
      end
    in
    while not !stop do
      dump_if_requested ();
      (try Thread.delay 0.1 with Unix.Unix_error (Unix.EINTR, _, _) -> ())
    done;
    dump_if_requested ();
    Fmt.pr "vyrdc: draining %d open session(s)...@." (Coordinator.active coord);
    Coordinator.stop coord;
    let agg = Coordinator.aggregate coord in
    Option.iter (fun p -> Supervisor.stop p) pool;
    Fmt.pr "%a@." Metrics.pp agg;
    Option.iter (fun f -> write_metrics_json f agg) metrics_json
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Run the vyrdc cluster coordinator: accept client sessions on one \
          socket (the plain vyrdd wire protocol — existing clients connect \
          unchanged), route each to one of N vyrdd workers by consistent \
          hashing, and fail sessions over to another worker from their \
          checkpointed spools when a worker dies.")
    Term.(
      const run $ addr_arg $ subjects_arg $ workers $ extern $ spool_dir
      $ slots $ window $ capacity $ checkpoint_events $ vnodes $ ring_seed
      $ keep_spools $ idle_timeout $ invariants $ metrics_json $ analyze)

let submit_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"LOG") in
  let retries =
    Arg.(
      value & opt int 5
      & info [ "retries" ] ~docv:"N"
          ~doc:"Connect retries (exponential backoff) on transient failures.")
  in
  let batch =
    Arg.(
      value & opt int 256
      & info [ "batch" ] ~docv:"N" ~doc:"Events per wire batch frame.")
  in
  let run addr retries batch file =
    let log = load_log file in
    let t0 = Unix.gettimeofday () in
    match
      Client.submit_log ~retries ~batch_events:batch
        ~producer:(Filename.basename file) addr log
    with
    | Client.Checked { report; fail_index } ->
      let dt = Unix.gettimeofday () -. t0 in
      Fmt.pr "%a@." Report.pp report;
      Option.iter (Fmt.pr "violating event at stream index %d@.") fail_index;
      Fmt.pr "submitted %d events in %.3fs (%.0f ev/s)@." (Log.length log) dt
        (float_of_int (Log.length log) /. dt);
      if Report.is_pass report then exit 0 else exit 1
    | Client.Spilled { path; events } ->
      Fmt.pr
        "server overloaded: %d events spooled to %s on the server for later \
         offline checking@."
        events path;
      exit 0
    | exception Client.Server_error msg ->
      Fmt.epr "session failed: %s@." msg;
      exit 2
    | exception Unix.Unix_error (e, _, _) ->
      Fmt.epr "cannot reach %a: %s@." Wire.pp_addr addr (Unix.error_message e);
      exit 2
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Stream a recorded log (text or binary) to a running vyrdd and print \
          its verdict.")
    Term.(const run $ addr_arg $ retries $ batch $ file)

let explore_cmd =
  let threads = Arg.(value & opt int 2 & info [ "threads" ] ~docv:"N") in
  let ops =
    Arg.(value & opt int 1 & info [ "ops" ] ~docv:"N" ~doc:"Calls per thread.")
  in
  let bug = Arg.(value & flag & info [ "bug" ] ~doc:"Enable the subject's injected bug.") in
  let budget =
    Arg.(
      value & opt int 50_000
      & info [ "max-schedules" ] ~docv:"N" ~doc:"Schedule budget.")
  in
  let opseed =
    Arg.(
      value & opt int 0
      & info [ "opseed" ] ~docv:"N"
          ~doc:"Seed selecting which operations the scenario performs.")
  in
  let pb =
    Arg.(
      value
      & opt (some int) None
      & info [ "preemption-bound"; "pb" ] ~docv:"N"
          ~doc:
            "Explore only schedules with at most $(docv) preemptions \
             (CHESS-style context bounding).")
  in
  let run subject threads ops bug budget opseed pb =
    let subject = resolve subject in
    let violations = ref 0 in
    let first = ref None in
    let r =
      Vyrd_sched.Explore.explore ~max_schedules:budget ?preemption_bound:pb
        ~stop:(fun () -> !first <> None)
        (fun () ->
          let log = Log.create ~level:`View () in
          let finished = ref 0 in
          fun sched ->
            let ctx = Instrument.make sched log in
            let b = subject.build ~bug ctx in
            for t = 1 to threads do
              sched.Vyrd_sched.Sched.spawn (fun () ->
                  let rng = Vyrd_sched.Prng.create ((opseed * 1223) + t) in
                  for _ = 1 to ops do
                    b.Harness.random_op rng (Vyrd_sched.Prng.int rng 8)
                  done;
                  incr finished;
                  if !finished = threads then begin
                    let report =
                      Checker.check ~mode:`View ~view:subject.view log subject.spec
                    in
                    if not (Report.is_pass report) then begin
                      incr violations;
                      if !first = None then first := Some (report, log)
                    end
                  end)
            done)
    in
    Fmt.pr "%d schedules explored (%s), %d deadlocking, %d violating@."
      r.Vyrd_sched.Explore.schedules
      (if r.Vyrd_sched.Explore.exhausted then "space exhausted" else "budget hit")
      r.Vyrd_sched.Explore.deadlocks !violations;
    match !first with
    | None -> ()
    | Some (report, log) ->
      Fmt.pr "@.first violating schedule:@.%a@.@." Report.pp report;
      print_string
        (Timeline.render ~options:{ Timeline.default with show_writes = true } log);
      exit 1
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Systematically explore every schedule of a small scenario, checking \
          view refinement on each (bounded verification).")
    Term.(const run $ subject_arg $ threads $ ops $ bug $ budget $ opseed $ pb)

let () =
  let doc = "runtime refinement-violation detection (PLDI 2005 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "vyrd-check" ~doc)
          [
            list_cmd;
            record_cmd;
            check_cmd;
            timeline_cmd;
            analyze_cmd;
            pipeline_cmd;
            serve_cmd;
            cluster_cmd;
            submit_cmd;
            explore_cmd;
          ]))
