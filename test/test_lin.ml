(* The annotation-free linearizability backend (lib/lin): history extraction
   tolerating pending calls, the JIT backtracking checker against
   hand-written histories and against two independent oracles (the naive
   baseline on complete histories, brute-force enumeration on random small
   histories with pending calls), the budget guard, conviction of a seeded
   semantic mutant from calls and returns alone — also with every
   non-call/return event stripped from the log — and the farm-lane pass. *)

open Vyrd
open Vyrd_sched
open Vyrd_multiset
open Vyrd_harness
open Vyrd_pipeline
module Faults = Vyrd_faults.Faults
module History = Vyrd_lin.History
module Jit = Vyrd_lin.Jit
module Enum = Vyrd_lin.Enum
module Backend = Vyrd_lin.Backend
module Linearize = Vyrd_baselines.Linearize

let qcheck t = QCheck_alcotest.to_alcotest t
let ev_call tid mid args = Event.Call { tid; mid; args }
let ev_ret tid mid value = Event.Return { tid; mid; value }
let spec = Multiset_spec.spec
let outcome = Alcotest.testable Jit.pp_outcome ( = )

let jit ?budget evs =
  (Jit.check ?budget (History.of_events (Array.of_list evs)) spec).Jit.outcome

(* --- history extraction --------------------------------------------------- *)

let test_history_pending () =
  let evs =
    [|
      ev_call 1 "insert" [ Repr.Int 3 ];
      ev_call 2 "lookup" [ Repr.Int 3 ];
      ev_ret 2 "lookup" (Repr.Bool true);
      Event.Commit { tid = 1 };
      ev_call 3 "count" [ Repr.Int 9 ];
    |]
  in
  let h = History.of_events evs in
  Alcotest.(check int) "three operations" 3 (History.length h);
  Alcotest.(check int) "two still pending" 2 (History.pending h);
  let completed =
    Array.to_list h.History.ops |> List.filter (fun o -> o.History.op_ret <> None)
  in
  (match completed with
  | [ o ] ->
    Alcotest.(check string) "the lookup completed" "lookup" o.History.op_mid;
    Alcotest.(check int) "call position is the log index" 1 o.History.op_call;
    Alcotest.(check int) "return position is the log index" 2 o.History.op_ret_at
  | l -> Alcotest.failf "expected exactly one completed op, got %d" (List.length l));
  (* ownership restriction drops foreign methods entirely *)
  let h' =
    History.of_events ~owns:(fun mid -> mid = "lookup") evs
  in
  Alcotest.(check int) "ownership filter keeps one op" 1 (History.length h')

(* --- JIT checker on hand-written histories -------------------------------- *)

let test_jit_fig3 () =
  (* LookUp(3) overlapping Insert(3): true is justified by linearizing the
     insert first — found without any commit annotation *)
  Alcotest.check outcome "accepted" Jit.Linearizable
    (jit
       [
         ev_call 1 "lookup" [ Repr.Int 3 ];
         ev_call 2 "insert" [ Repr.Int 3 ];
         ev_ret 2 "insert" Repr.success;
         ev_ret 1 "lookup" (Repr.Bool true);
       ])

let test_jit_rejects () =
  (* a lookup strictly after a delete must not see the element *)
  Alcotest.check outcome "rejected" Jit.Not_linearizable
    (jit
       [
         ev_call 1 "insert" [ Repr.Int 3 ];
         ev_ret 1 "insert" Repr.success;
         ev_call 2 "delete" [ Repr.Int 3 ];
         ev_ret 2 "delete" (Repr.Bool true);
         ev_call 3 "lookup" [ Repr.Int 3 ];
         ev_ret 3 "lookup" (Repr.Bool true);
       ])

let test_jit_pending_mutator_justifies () =
  (* the insert never returns, yet a concurrent lookup that saw the element
     is fine: the witness order linearizes the pending insert with a guessed
     success *)
  Alcotest.check outcome "pending insert explains lookup=true" Jit.Linearizable
    (jit
       [
         ev_call 2 "insert" [ Repr.Int 5 ];
         ev_call 1 "lookup" [ Repr.Int 5 ];
         ev_ret 1 "lookup" (Repr.Bool true);
       ]);
  (* and the same pending insert may equally have NOT taken effect *)
  Alcotest.check outcome "pending insert may also be dropped" Jit.Linearizable
    (jit
       [
         ev_call 2 "insert" [ Repr.Int 5 ];
         ev_call 1 "lookup" [ Repr.Int 5 ];
         ev_ret 1 "lookup" (Repr.Bool false);
       ])

let test_jit_pending_cannot_time_travel () =
  (* the pending insert's call is AFTER the lookup returned, so it cannot be
     linearized before the lookup: real-time order still binds pending ops *)
  Alcotest.check outcome "pending call after return cannot explain it"
    Jit.Not_linearizable
    (jit
       [
         ev_call 1 "lookup" [ Repr.Int 5 ];
         ev_ret 1 "lookup" (Repr.Bool true);
         ev_call 2 "insert" [ Repr.Int 5 ];
       ])

(* [k] fully-overlapping inserts plus an overlapping lookup whose return is
   wrong in every serialization: certifying non-linearizability forces the
   search through the permutation tree (the naive baseline's e·k! blow-up);
   memoization collapses it, the budget caps whatever is left *)
let overlapping_inserts k =
  List.init k (fun i -> ev_call (i + 1) "insert" [ Repr.Int i ])
  @ [ ev_call 99 "lookup" [ Repr.Int 999 ] ]
  @ List.init k (fun i -> ev_ret (i + 1) "insert" Repr.success)
  @ [ ev_ret 99 "lookup" (Repr.Bool true) ]

let test_jit_budget () =
  Alcotest.check outcome "tiny budget times out" Jit.Budget_exhausted
    (jit ~budget:10 (overlapping_inserts 12));
  Alcotest.check outcome "default budget suffices" Jit.Not_linearizable
    (jit (overlapping_inserts 12))

let test_jit_memo_prunes () =
  (* the adversarial history above has k! interleavings but only 2^k
     distinct (set, state) configurations; the dead-set must keep the node
     count polynomial where the naive baseline explodes *)
  let h = History.of_events (Array.of_list (overlapping_inserts 9)) in
  let r = Jit.check h spec in
  Alcotest.check outcome "rejected" Jit.Not_linearizable r.Jit.outcome;
  Alcotest.(check bool) "memo was exercised" true (r.Jit.stats.Jit.memo_hits > 0);
  Alcotest.(check bool)
    (Printf.sprintf "nodes %d stay far under 9! = 362880" r.Jit.stats.Jit.nodes)
    true
    (r.Jit.stats.Jit.nodes < 40_000);
  let naive =
    Linearize.cost
      (Linearize.check ~budget:30_000_000
         (Log.of_events (overlapping_inserts 9))
         spec)
  in
  Alcotest.(check bool)
    (Printf.sprintf "an order of magnitude under the naive %d" naive)
    true
    (r.Jit.stats.Jit.nodes * 10 < naive)

(* --- random histories: the two-oracle differential ------------------------ *)

(* A random concurrent multiset history: up to [threads] threads issue up to
   [ops] operations with randomly chosen (frequently wrong) return values;
   a random subset of the last calls never returns.  Deterministic in the
   seed, so every failure is replayable. *)
let build_events ~seed ~threads ~ops ~allow_pending =
  let rng = Prng.create seed in
  let active = Array.make (threads + 1) None in
  let events = ref [] and remaining = ref ops in
  let emit e = events := e :: !events in
  let steps = ref 0 in
  while (!remaining > 0 || Array.exists (fun o -> o <> None) active) && !steps < 200 do
    incr steps;
    let tid = 1 + Prng.int rng threads in
    match active.(tid) with
    | Some (mid, ret) ->
      if (not allow_pending) || !remaining > 0 || Prng.int rng 2 = 0 then begin
        emit (ev_ret tid mid ret);
        active.(tid) <- None
      end
      else (
        (* decided pending: drop the thread for good *)
        active.(tid) <- None)
    | None ->
      if !remaining > 0 then begin
        decr remaining;
        let k = Repr.Int (Prng.int rng 3) in
        let mid, args, ret =
          match Prng.int rng 5 with
          | 0 ->
            ( "insert", [ k ],
              if Prng.int rng 4 = 0 then Repr.failure else Repr.success )
          | 1 -> ("delete", [ k ], Repr.Bool (Prng.int rng 2 = 0))
          | 2 -> ("lookup", [ k ], Repr.Bool (Prng.int rng 2 = 0))
          | 3 -> ("count", [ k ], Repr.Int (Prng.int rng 3))
          | _ ->
            ( "insert_pair", [ k; Repr.Int (Prng.int rng 3) ],
              if Prng.int rng 4 = 0 then Repr.failure else Repr.success )
        in
        emit (ev_call tid mid args);
        active.(tid) <- Some (mid, ret)
      end
  done;
  List.rev !events

(* pending-at-EOF threads: keep the call, drop nothing else — [build_events]
   already leaves their returns unemitted by construction *)

let history_params =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    let* threads = int_range 1 4 in
    let* ops = int_range 0 12 in
    return (seed, threads, ops))

let prop_jit_matches_enum =
  QCheck2.Test.make
    ~name:"differential: JIT verdict == brute-force enumeration (pending ok)"
    ~count:500 history_params (fun (seed, threads, ops) ->
      let evs = build_events ~seed ~threads ~ops ~allow_pending:true in
      let h = History.of_events (Array.of_list evs) in
      let j = (Jit.check ~budget:5_000_000 h spec).Jit.outcome in
      let e, _ = Enum.check ~budget:5_000_000 ~max_ops:12 h spec in
      (* both searches are exhaustive at this budget; a timeout would make
         the comparison vacuous, so treat it as a failure *)
      j <> Jit.Budget_exhausted && e <> Jit.Budget_exhausted && j = e)

let prop_jit_matches_naive_on_complete =
  QCheck2.Test.make
    ~name:"differential: JIT verdict == naive baseline on complete histories"
    ~count:300 history_params (fun (seed, threads, ops) ->
      let evs = build_events ~seed ~threads ~ops ~allow_pending:false in
      let h = History.of_events (Array.of_list evs) in
      let j = (Jit.check ~budget:5_000_000 h spec).Jit.outcome in
      match Linearize.check ~budget:5_000_000 (Log.of_events evs) spec with
      | Linearize.Linearizable _ -> j = Jit.Linearizable
      | Linearize.Not_linearizable _ -> j = Jit.Not_linearizable
      | Linearize.Budget_exhausted _ -> false)

(* --- real workloads: clean runs pass, the semantic mutant falls ----------- *)

let subject = Subjects.multiset_vector
let specs = [ (subject.Subjects.name, subject.Subjects.spec) ]

let coop_log ?(level = `View) seed =
  Harness.run
    { threads = 4; ops_per_thread = 25; key_pool = 12; key_range = 16;
      log_level = level; seed }
    (subject.Subjects.build ~bug:false)

let test_clean_runs_linearizable () =
  for seed = 0 to 4 do
    let r = Backend.check_log ~specs (coop_log seed) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d linearizable" seed)
      true (Backend.clean r)
  done

(* the satellite pin: a refinement-violating mutant log the lin backend
   convicts stays convicted when every non-call/return event is stripped —
   the conviction owes nothing to commit annotations *)
let test_mutant_convicted_without_annotations () =
  let fault = Faults.find "multiset_vector.lost_update" in
  Faults.with_armed fault (fun () ->
      let convicting = ref None in
      let seed = ref 0 in
      while !convicting = None && !seed < 40 do
        let log = coop_log !seed in
        if Backend.violations (Backend.check_log ~specs log) <> [] then
          convicting := Some log;
        incr seed
      done;
      match !convicting with
      | None -> Alcotest.fail "lin backend missed the lost update on 40 seeds"
      | Some log ->
        (* the refinement oracle agrees on the very same log *)
        let refinement =
          Checker.check ~mode:`View ~view:subject.Subjects.view log
            subject.Subjects.spec
        in
        Alcotest.(check bool) "refinement convicts the same log" false
          (Report.is_pass refinement);
        let stripped =
          Log.of_events
            (List.filter
               (function Event.Call _ | Event.Return _ -> true | _ -> false)
               (Log.events log))
        in
        Alcotest.(check int) "conviction survives annotation stripping" 1
          (List.length (Backend.violations (Backend.check_log ~specs stripped))))

(* annotation mutants leave the call/return history correct: lin must NOT
   convict what only the commit machinery can see *)
let test_annotation_mutant_invisible () =
  let fault = Faults.find "multiset_btree.misplaced_commit" in
  Alcotest.(check bool) "registered as non-semantic" false (Faults.semantic fault);
  let s = Subjects.multiset_btree in
  Faults.with_armed fault (fun () ->
      for seed = 0 to 9 do
        let log =
          Harness.run
            { Harness.default with threads = 4; ops_per_thread = 25; seed }
            (s.Subjects.build ~bug:false)
        in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d stays clean under lin" seed)
          true
          (Backend.clean
             (Backend.check_log ~specs:[ (s.Subjects.name, s.Subjects.spec) ] log))
      done)

let test_exhaustive_engine_small_history () =
  let evs = build_events ~seed:42 ~threads:3 ~ops:6 ~allow_pending:true in
  let r =
    Backend.check_log ~exhaustive:12 ~specs:[ ("multiset", spec) ]
      (Log.of_events evs)
  in
  match r.Backend.structures with
  | [ s ] -> Alcotest.(check string) "enum engine selected" "enum" s.Backend.ls_engine
  | l -> Alcotest.failf "expected one structure, got %d" (List.length l)

(* --- farm lane + metrics --------------------------------------------------- *)

let test_farm_pass_and_metrics () =
  let fault = Faults.find "multiset_vector.lost_update" in
  Faults.with_armed fault (fun () ->
      (* find a convicting seed first so the farm test is deterministic *)
      let seed = ref 0 and log = ref (coop_log 0) in
      while
        Backend.violations (Backend.check_log ~specs !log) = [] && !seed < 40
      do
        incr seed;
        log := coop_log !seed
      done;
      let metrics = Metrics.create () in
      let farm =
        Farm.start ~metrics ~level:(Log.level !log)
          ~passes:[ Backend.pass ~metrics ~specs () ]
          [
            Farm.shard ~mode:`View ~view:subject.Subjects.view
              subject.Subjects.name subject.Subjects.spec;
          ]
      in
      Log.iter (Farm.feed farm) !log;
      let result = Farm.finish farm in
      (* both oracles agree through the pipeline *)
      Alcotest.(check bool) "refinement lane convicts" false
        (Report.is_pass result.Farm.merged);
      (match
         List.find_opt
           (fun s -> s.Vyrd_analysis.Pass.pass = "lin")
           result.Farm.analysis
       with
      | None -> Alcotest.fail "no lin summary in farm analysis"
      | Some s ->
        Alcotest.(check int) "one lin error" 1 s.Vyrd_analysis.Pass.errors;
        Alcotest.(check bool) "diagnostic names the structure" true
          (List.exists
             (fun d -> d.Vyrd_analysis.Pass.id = "lin-not-linearizable")
             s.Vyrd_analysis.Pass.diags));
      let v name = Metrics.value (Metrics.counter metrics name) in
      Alcotest.(check int) "lin.histories_checked" 1 (v "lin.histories_checked");
      Alcotest.(check int) "lin.violations" 1 (v "lin.violations");
      Alcotest.(check bool) "lin.nodes counted" true (v "lin.nodes" > 0);
      Alcotest.(check bool) "lin.ops counted" true (v "lin.ops" > 0))

(* --- examples/logs: the two backends agree offline ------------------------- *)

let examples_dir () =
  List.find Sys.file_exists [ "examples/logs"; "../../../examples/logs" ]

let test_examples_agreement () =
  let cases =
    [
      ("multiset_vector.log", Subjects.multiset_vector);
      ("multiset_vector_buggy.log", Subjects.multiset_vector);
      ("cache.log", Subjects.cache);
      ("scanfs.log", Subjects.scanfs);
    ]
  in
  List.iter
    (fun (file, (s : Subjects.t)) ->
      let log = Log.of_file (Filename.concat (examples_dir ()) file) in
      let refinement_pass =
        Report.is_pass (Checker.check ~mode:`View ~view:s.Subjects.view log s.Subjects.spec)
      in
      let lin =
        Backend.check_log ~specs:[ (s.Subjects.name, s.Subjects.spec) ] log
      in
      Alcotest.(check bool)
        (file ^ ": conclusive")
        false (Backend.inconclusive lin);
      Alcotest.(check bool)
        (file ^ ": backends agree")
        refinement_pass (Backend.clean lin))
    cases

let suite =
  [
    ("history: pending calls tolerated", `Quick, test_history_pending);
    ("jit: fig3 accepted", `Quick, test_jit_fig3);
    ("jit: bad trace rejected", `Quick, test_jit_rejects);
    ("jit: pending mutator both ways", `Quick, test_jit_pending_mutator_justifies);
    ("jit: pending ops respect real time", `Quick, test_jit_pending_cannot_time_travel);
    ("jit: budget guard", `Quick, test_jit_budget);
    ("jit: memoization beats the naive search", `Quick, test_jit_memo_prunes);
    qcheck prop_jit_matches_enum;
    qcheck prop_jit_matches_naive_on_complete;
    ("backend: clean coop runs linearizable", `Quick, test_clean_runs_linearizable);
    ( "backend: mutant convicted, annotations stripped",
      `Quick,
      test_mutant_convicted_without_annotations );
    ( "backend: annotation mutant invisible to lin",
      `Quick,
      test_annotation_mutant_invisible );
    ("backend: exhaustive engine on small histories", `Quick, test_exhaustive_engine_small_history);
    ("backend: farm pass + lin.* metrics", `Quick, test_farm_pass_and_metrics);
    ("backend: examples agree with refinement", `Quick, test_examples_agreement);
  ]
