(* The streaming pipeline: binary codec round trips (including the int
   extremes the zigzag mapping must survive), segment-file crash recovery
   (every CRC-valid prefix segment's events are preserved), equivalence of
   the binary and textual formats on the checked-in example logs, the
   bounded ring's ordering/backpressure/close semantics, and the checker
   farm agreeing with the offline composed-spec checker on both correct and
   buggy executions. *)

open Vyrd
open Vyrd_harness
open Vyrd_pipeline
module Prng = Vyrd_sched.Prng

let qcheck t = QCheck_alcotest.to_alcotest t

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* --- codec round trips --------------------------------------------------- *)

let decode_all s =
  let rec go acc pos =
    if pos >= String.length s then List.rev acc
    else
      let ev, pos = Bincodec.get_event s pos in
      go (ev :: acc) pos
  in
  go [] 0

let varint_roundtrip =
  qcheck
    (QCheck2.Test.make ~name:"varint round trip" ~count:500
       QCheck2.Gen.(
         oneof
           [ int; int_range (-200) 200;
             oneofl [ min_int; max_int; min_int + 1; max_int - 1; 0; -1; 1 ] ])
       (fun n ->
         let b = Buffer.create 10 in
         Bincodec.put_varint b n;
         let n', pos = Bincodec.get_varint (Buffer.contents b) 0 in
         n' = n && pos = Buffer.length b))

let test_varint_extremes () =
  List.iter
    (fun n ->
      let b = Buffer.create 10 in
      Bincodec.put_varint b n;
      let n', _ = Bincodec.get_varint (Buffer.contents b) 0 in
      Alcotest.(check int) (Printf.sprintf "varint %d" n) n n')
    [ min_int; max_int; min_int + 1; max_int - 1; 0; 1; -1; 63; -64; 1 lsl 40 ]

let event_roundtrip =
  qcheck
    (QCheck2.Test.make ~name:"binary event round trip" ~count:300
       QCheck2.Gen.(list_size (int_range 0 40) Test_log.event_gen)
       (fun evs ->
         let b = Buffer.create 256 in
         List.iter (Bincodec.put_event b) evs;
         let evs' = decode_all (Buffer.contents b) in
         List.length evs' = List.length evs && List.for_all2 Event.equal evs evs'))

let test_decode_garbage_raises () =
  List.iter
    (fun s ->
      match Bincodec.get_event s 0 with
      | _ -> Alcotest.failf "decoded garbage %S" s
      | exception Bincodec.Corrupt _ -> ())
    [ ""; "\255"; "\000\003"; "\000\001\004\255abc" ]

(* A length near max_int must not overflow the bounds check into a passing
   negative sum: decoding stays total (Corrupt, never Invalid_argument). *)
let test_decode_huge_length_raises () =
  List.iter
    (fun n ->
      let b = Buffer.create 16 in
      Bincodec.put_uvarint b n;
      Buffer.add_string b "abc";
      let payload = Buffer.contents b in
      (match Bincodec.get_string payload 0 with
      | _ -> Alcotest.failf "get_string accepted length %d" n
      | exception Bincodec.Corrupt _ -> ());
      (* same length smuggled in as a Call's method-name field *)
      let ev = Buffer.create 16 in
      Buffer.add_string ev "\000\000";
      Buffer.add_string ev payload;
      match Bincodec.get_event (Buffer.contents ev) 0 with
      | _ -> Alcotest.failf "get_event accepted name length %d" n
      | exception Bincodec.Corrupt _ -> ())
    [ max_int; max_int - 1; max_int / 2; 1 lsl 40 ]

(* --- segment files: round trip, rotation, recovery ------------------------ *)

let with_tmp f =
  let path = Filename.temp_file "vyrd_pipe" ".seg" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let record ?(level = `View) ?(seed = 0) ?(ops = 40) () =
  Harness.run
    { Harness.default with threads = 4; ops_per_thread = ops; log_level = level; seed }
    (Subjects.multiset_vector.Subjects.build ~bug:false)

let check_same_log what (a : Log.t) (b : Log.t) =
  Alcotest.(check bool) (what ^ ": same level") true (Log.level a = Log.level b);
  Alcotest.(check int) (what ^ ": same length") (Log.length a) (Log.length b);
  Alcotest.(check bool)
    (what ^ ": same events") true
    (List.for_all2 Event.equal (Log.events a) (Log.events b))

let segment_file_roundtrip =
  qcheck
    (QCheck2.Test.make ~name:"segment write/read round trip" ~count:60
       QCheck2.Gen.(
         pair Test_log.level_gen (list_size (int_range 0 120) Test_log.event_gen))
       (fun (level, evs) ->
         let log = Log.create ~level () in
         List.iter (Log.append log) evs;
         with_tmp (fun path ->
             Segment.write_file ~segment_bytes:64 path log;
             let r = Segment.read_file path in
             (not r.Segment.truncated)
             && Log.level r.Segment.log = level
             && Log.length r.Segment.log = Log.length log
             && List.for_all2 Event.equal
                  (Log.events r.Segment.log)
                  (Log.events log))))

(* cwd is _build/default/test under [dune runtest], the repo root under
   [dune exec] *)
let examples_dir () =
  List.find Sys.file_exists [ "examples/logs"; "../../../examples/logs" ]

let test_binary_matches_text_on_examples () =
  (* the checked-in textual logs and their binary re-encoding must load to
     identical logs *)
  List.iter
    (fun file ->
      let path = Filename.concat (examples_dir ()) file in
      let log = Log.of_file path in
      Alcotest.(check bool) (file ^ ": non-trivial") true (Log.length log > 0);
      with_tmp (fun tmp ->
          Segment.write_file tmp log;
          let r = Segment.read_file tmp in
          Alcotest.(check bool) (file ^ ": clean") false r.Segment.truncated;
          check_same_log file log r.Segment.log))
    [ "multiset_vector.log"; "cache.log"; "scanfs.log" ]

let test_rotation_and_read_prefix () =
  let log = record ~level:`Full ~ops:60 () in
  let dir = Filename.temp_file "vyrd_rot" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let base = Filename.concat dir "stream" in
      let w =
        Segment.create_writer ~segment_bytes:512 ~rotate_bytes:2048 ~level:`Full base
      in
      Log.iter (Segment.append w) log;
      Segment.close w;
      let files = Segment.writer_files w in
      Alcotest.(check bool) "rotated into several files" true (List.length files > 1);
      List.iter
        (fun f -> Alcotest.(check bool) (f ^ " sniffs binary") true (Segment.is_binary f))
        files;
      let r = Segment.read_prefix base in
      Alcotest.(check bool) "clean" false r.Segment.truncated;
      check_same_log "rotation set" log r.Segment.log)

(* Truncate a written segment file at a sweep of byte lengths and re-read:
   recovery must never raise, must always yield a prefix of the original
   events (every CRC-valid whole segment survives, the torn tail is
   discarded), and must read the untruncated file completely and cleanly. *)
let test_truncated_tail_recovery () =
  let log = record ~ops:25 () in
  let evs = Array.of_list (Log.events log) in
  with_tmp (fun path ->
      Segment.write_file ~segment_bytes:256 path log;
      let whole = In_channel.with_open_bin path In_channel.input_all in
      let size = String.length whole in
      Alcotest.(check bool) "several segments to tear" true (size > 1024);
      let saw_torn = ref 0 in
      for cut = 0 to size do
        if cut mod 7 = 0 || cut = size then begin
          let torn = path ^ ".torn" in
          Out_channel.with_open_bin torn (fun oc ->
              Out_channel.output_string oc (String.sub whole 0 cut));
          Fun.protect
            ~finally:(fun () -> Sys.remove torn)
            (fun () ->
              let r = Segment.read_file torn in
              let got = Log.events r.Segment.log in
              let n = List.length got in
              if n > Array.length evs then
                Alcotest.failf "cut at %d/%d: recovered more events than written"
                  cut size;
              if
                not
                  (List.for_all2 Event.equal got
                     (Array.to_list (Array.sub evs 0 n)))
              then
                Alcotest.failf "cut at %d/%d: recovered log is not a prefix" cut size;
              if r.Segment.truncated then incr saw_torn;
              if cut = size then begin
                Alcotest.(check bool) "full file reads clean" false r.Segment.truncated;
                Alcotest.(check int) "full file reads all" (Array.length evs)
                  (Log.length r.Segment.log)
              end)
        end
      done;
      Alcotest.(check bool) "sweep hit torn tails" true (!saw_torn > 0))

let test_corrupt_byte_stops_at_crc () =
  let log = record ~ops:25 () in
  with_tmp (fun path ->
      Segment.write_file ~segment_bytes:256 path log;
      let whole = In_channel.with_open_bin path In_channel.input_all in
      (* flip one byte most of the way in: everything before the damaged
         segment must survive, nothing may raise *)
      let at = String.length whole * 3 / 4 in
      let bytes = Bytes.of_string whole in
      Bytes.set bytes at (Char.chr (Char.code (Bytes.get bytes at) lxor 0xff));
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc bytes);
      let r = Segment.read_file path in
      Alcotest.(check bool) "marked truncated" true r.Segment.truncated;
      Alcotest.(check bool) "some prefix survived" true (Log.length r.Segment.log > 0);
      let got = Log.events r.Segment.log in
      let all = Array.of_list (Log.events log) in
      Alcotest.(check bool) "prefix of original" true
        (List.for_all2 Event.equal got
           (Array.to_list (Array.sub all 0 (List.length got)))))

(* Corrupt a byte inside a *middle* file of a rotation set: recovery must
   keep everything up to the damaged file, mark the stream truncated, and
   not read past it — later rotation files describe a suffix whose gap
   would silently corrupt any analysis run over the reassembled log. *)
let test_corrupt_middle_rotation_file () =
  let log = record ~level:`Full ~ops:60 () in
  let dir = Filename.temp_file "vyrd_midrot" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let base = Filename.concat dir "stream" in
      let w =
        Segment.create_writer ~segment_bytes:512 ~rotate_bytes:2048 ~level:`Full base
      in
      Log.iter (Segment.append w) log;
      Segment.close w;
      let files = Segment.writer_files w in
      Alcotest.(check bool) "at least 3 files to damage the middle of" true
        (List.length files >= 3);
      let per_file =
        List.map (fun f -> Log.length (Segment.read_file f).Segment.log) files
      in
      let mid = List.length files / 2 in
      let victim = List.nth files mid in
      let bytes =
        Bytes.of_string (In_channel.with_open_bin victim In_channel.input_all)
      in
      let at = Bytes.length bytes / 2 in
      Bytes.set bytes at (Char.chr (Char.code (Bytes.get bytes at) lxor 0xff));
      Out_channel.with_open_bin victim (fun oc -> Out_channel.output_bytes oc bytes);
      let r = Segment.read_files files in
      Alcotest.(check bool) "marked truncated" true r.Segment.truncated;
      let before_victim =
        List.fold_left ( + ) 0 (List.filteri (fun i _ -> i < mid) per_file)
      in
      let n = Log.length r.Segment.log in
      Alcotest.(check bool)
        (Printf.sprintf "recovered %d: whole files before the damage survive" n)
        true
        (n >= before_victim);
      Alcotest.(check bool)
        (Printf.sprintf "recovered %d: stream ends inside the damaged file" n)
        true
        (n < before_victim + List.nth per_file mid + 1);
      let all = Array.of_list (Log.events log) in
      Alcotest.(check bool) "recovered log is a prefix" true
        (List.for_all2 Event.equal
           (Log.events r.Segment.log)
           (Array.to_list (Array.sub all 0 n))))

let test_not_a_segment_file_raises () =
  with_tmp (fun path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "# vyrd-log level=view\n");
      Alcotest.(check bool) "text log does not sniff binary" false
        (Segment.is_binary path);
      match Segment.read_file path with
      | _ -> Alcotest.fail "read_file accepted a text log"
      | exception Bincodec.Corrupt _ -> ())

(* --- the bounded ring ----------------------------------------------------- *)

let test_ring_order_and_close () =
  let r = Ring.create ~capacity:4 () in
  Ring.push r 1;
  Ring.push r 2;
  Ring.push r 3;
  Alcotest.(check int) "length" 3 (Ring.length r);
  Alcotest.(check int) "high water" 3 (Ring.high_water r);
  Ring.close r;
  Alcotest.(check (option int)) "pop 1" (Some 1) (Ring.pop r);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Ring.pop r);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Ring.pop r);
  Alcotest.(check (option int)) "drained" None (Ring.pop r);
  (* pushes after close are silently dropped, not an exception: a stray
     late listener callback must not crash the instrumented program *)
  Ring.push r 99;
  Alcotest.(check (option int)) "still drained" None (Ring.pop r);
  Alcotest.(check int) "drop counted" 1 (Ring.rejected r)

let test_ring_backpressure () =
  let capacity = 8 in
  let n = 5_000 in
  let r = Ring.create ~capacity () in
  let consumer =
    Domain.spawn (fun () ->
        let rec go acc =
          match Ring.pop r with None -> List.rev acc | Some v -> go (v :: acc)
        in
        go [])
  in
  for i = 1 to n do
    Ring.push r i
  done;
  Ring.close r;
  let got = Domain.join consumer in
  Alcotest.(check int) "all values received" n (List.length got);
  Alcotest.(check bool) "in order" true (List.for_all2 ( = ) got (List.init n succ));
  Alcotest.(check bool)
    (Printf.sprintf "high water %d within capacity" (Ring.high_water r))
    true
    (Ring.high_water r <= capacity)

(* --- log traversal, drop counter, positioned parse errors ----------------- *)

let test_log_fold_snapshot_iter_agree () =
  let log = record ~level:`Full ~ops:30 () in
  let via_events = Log.events log in
  let via_fold = List.rev (Log.fold (fun acc ev -> ev :: acc) [] log) in
  let via_iter =
    let acc = ref [] in
    Log.iter (fun ev -> acc := ev :: !acc) log;
    List.rev !acc
  in
  let via_snapshot = Array.to_list (Log.snapshot log) in
  List.iter
    (fun (what, got) ->
      Alcotest.(check int) (what ^ " length") (List.length via_events) (List.length got);
      Alcotest.(check bool) (what ^ " events") true
        (List.for_all2 Event.equal via_events got))
    [ ("fold", via_fold); ("iter", via_iter); ("snapshot", via_snapshot) ]

let test_log_dropped_counter () =
  let log = Log.create ~level:`Io () in
  Log.append log (Event.Call { tid = 1; mid = "op"; args = [] });
  Log.append log (Event.Write { tid = 1; var = "x"; value = Repr.Int 1 });
  Log.append log (Event.Read { tid = 1; var = "x" });
  Alcotest.(check int) "one admitted" 1 (Log.length log);
  Alcotest.(check int) "two dropped" 2 (Log.dropped log)

let test_parse_error_is_positioned () =
  let path = Filename.temp_file "vyrd_bad" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "# vyrd-log level=view\n";
          Out_channel.output_string oc
            (Event.to_line (Event.Commit { tid = 1 }) ^ "\n");
          Out_channel.output_string oc "not an event\n");
      match Log.of_file path with
      | (_ : Log.t) -> Alcotest.fail "malformed line accepted"
      | exception Log.Parse_error { line; message = _ } ->
        Alcotest.(check int) "1-based line of the bad event" 3 line)

(* --- metrics -------------------------------------------------------------- *)

let test_metrics_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "events" in
  Metrics.incr c;
  Metrics.add c 9;
  Alcotest.(check int) "counter" 10 (Metrics.value c);
  Alcotest.(check int) "re-registration shares" 10
    (Metrics.value (Metrics.counter m "events"));
  let g = Metrics.gauge m "depth" in
  Metrics.record g 7;
  Metrics.record g 3;
  Alcotest.(check int) "gauge keeps max" 7 (Metrics.gauge_value g);
  let h = Metrics.histogram m "lat" in
  List.iter (Metrics.observe h) [ 1; 2; 4; 8; 1024; 100_000 ];
  Alcotest.(check int) "count" 6 (Metrics.hist_count h);
  Alcotest.(check int) "max" 100_000 (Metrics.hist_max h);
  Alcotest.(check bool) "p50 in range" true
    (Metrics.quantile h 0.5 >= 1 && Metrics.quantile h 0.5 <= 100_000);
  Alcotest.(check bool) "quantiles monotone" true
    (Metrics.quantile h 0.5 <= Metrics.quantile h 0.99);
  let json = Metrics.to_json m in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("json mentions " ^ affix) true (is_infix ~affix json))
    [ "\"events\":10"; "\"depth\":7"; "\"count\":6" ]

(* --- the farm vs the offline composed checker ----------------------------- *)

let capacity = 8

let composed_spec =
  Spec_compose.pair Vyrd_multiset.Multiset_spec.spec Vyrd_jlib.Vector.spec

let composed_view =
  Spec_compose.pair_views
    (Vyrd_multiset.Multiset_vector.viewdef ~capacity)
    (Vyrd_jlib.Vector.viewdef ~capacity)

let shards () =
  [
    Farm.shard ~mode:`View
      ~view:(Vyrd_multiset.Multiset_vector.viewdef ~capacity)
      "multiset" Vyrd_multiset.Multiset_spec.spec;
    Farm.shard ~mode:`View
      ~view:(Vyrd_jlib.Vector.viewdef ~capacity)
      "vector" Vyrd_jlib.Vector.spec;
  ]

let run_both ?(ms_bugs = []) ~seed () =
  let log = Log.create ~level:`View () in
  Vyrd_sched.Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let ms = Vyrd_multiset.Multiset_vector.create ~bugs:ms_bugs ~capacity ctx in
      let v = Vyrd_jlib.Vector.create ~capacity ctx in
      for t = 1 to 4 do
        s.spawn (fun () ->
            let rng = Prng.create (seed + (19 * t)) in
            for _ = 1 to 15 do
              let x = Prng.int rng 5 in
              match Prng.int rng 8 with
              | 0 | 1 -> ignore (Vyrd_multiset.Multiset_vector.insert ms x)
              | 2 -> ignore (Vyrd_multiset.Multiset_vector.delete ms x)
              | 3 -> ignore (Vyrd_multiset.Multiset_vector.lookup ms x)
              | 4 | 5 -> ignore (Vyrd_jlib.Vector.add v x)
              | 6 -> ignore (Vyrd_jlib.Vector.remove_last v)
              | _ -> ignore (Vyrd_jlib.Vector.size v)
            done)
      done);
  log

let farm_check log =
  let farm = Farm.start ~capacity:64 ~level:(Log.level log) (shards ()) in
  Array.iter (Farm.feed farm) (Log.snapshot log);
  Farm.finish farm

let test_farm_agrees_on_correct_runs () =
  for seed = 0 to 7 do
    let log = run_both ~seed () in
    let offline = Checker.check ~mode:`View ~view:composed_view log composed_spec in
    let result = farm_check log in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d offline pass" seed)
      true (Report.is_pass offline);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d farm pass" seed)
      true
      (Report.is_pass result.Farm.merged);
    Alcotest.(check int)
      (Printf.sprintf "seed %d all events routed" seed)
      (Log.length log) result.Farm.fed;
    List.iter
      (fun (sr : Farm.shard_result) ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d %s bounded" seed sr.Farm.sr_name)
          true
          (sr.Farm.sr_high_water <= 64))
      result.Farm.shards
  done

let test_farm_agrees_on_buggy_runs () =
  (* sweep seeds; wherever the offline composed checker convicts the racy
     multiset, the farm must convict too (and vice versa) *)
  let convictions = ref 0 in
  for seed = 0 to 30 do
    let log =
      run_both ~ms_bugs:[ Vyrd_multiset.Multiset_vector.Racy_find_slot ] ~seed ()
    in
    let offline = Checker.check ~mode:`View ~view:composed_view log composed_spec in
    let result = farm_check log in
    if not (Report.is_pass offline) then incr convictions;
    Alcotest.(check bool)
      (Printf.sprintf "seed %d verdicts agree" seed)
      (Report.is_pass offline)
      (Report.is_pass result.Farm.merged);
    if not (Report.is_pass result.Farm.merged) then
      Alcotest.(check string)
        (Printf.sprintf "seed %d violation kind" seed)
        (Report.tag offline)
        (Report.tag result.Farm.merged)
  done;
  Alcotest.(check bool) "the sweep actually hit the bug" true (!convictions > 0)

let test_farm_streams_from_live_log () =
  (* end-to-end: harness -> log listener -> farm, multi-structure, with the
     subjects' own specs and views *)
  let subjects = [ Subjects.multiset_vector; Subjects.jvector ] in
  let log = Log.create ~level:`View () in
  let metrics = Metrics.create () in
  let farm =
    Farm.start ~capacity:128 ~metrics ~level:`View
      (List.map
         (fun (s : Subjects.t) ->
           Farm.shard ~mode:`View ~view:s.Subjects.view s.Subjects.name
             s.Subjects.spec)
         subjects)
  in
  Farm.attach farm log;
  Harness.run_into ~log
    { Harness.default with threads = 4; ops_per_thread = 40 }
    (List.map (fun (s : Subjects.t) -> s.Subjects.build ~bug:false) subjects);
  let result = Farm.finish farm in
  Alcotest.(check bool) "stream passes" true (Report.is_pass result.Farm.merged);
  Alcotest.(check int) "every event routed" (Log.length log) result.Farm.fed;
  Alcotest.(check bool) "finish is idempotent" true (Farm.finish farm == result)

let test_farm_runs_analysis_passes () =
  (* the analysis lane sees the whole stream — including the lock events the
     refinement router drops — and its summaries ride on the result *)
  let module Pass = Vyrd_analysis.Pass in
  let log = Log.create ~level:`Full () in
  Vyrd_sched.Coop.run ~seed:5 (fun s ->
      let ctx = Instrument.make s log in
      let ms = Vyrd_multiset.Multiset_vector.create ~capacity ctx in
      for t = 1 to 3 do
        s.spawn (fun () ->
            let rng = Prng.create (5 + (13 * t)) in
            for _ = 1 to 12 do
              ignore (Vyrd_multiset.Multiset_vector.insert ms (Prng.int rng 5))
            done)
      done);
  let metrics = Metrics.create () in
  let farm =
    Farm.start ~capacity:64 ~metrics ~passes:(Pass.for_level `Full) ~level:`Full
      [
        Farm.shard ~mode:`View
          ~view:(Vyrd_multiset.Multiset_vector.viewdef ~capacity)
          "multiset" Vyrd_multiset.Multiset_spec.spec;
      ]
  in
  Array.iter (Farm.feed farm) (Log.snapshot log);
  let result = Farm.finish farm in
  Alcotest.(check bool) "refinement passes" true (Report.is_pass result.Farm.merged);
  Alcotest.(check int) "three passes ran" 3 (List.length result.Farm.analysis);
  List.iter
    (fun (s : Pass.summary) ->
      Alcotest.(check int)
        (s.Pass.pass ^ " saw the whole stream")
        (Log.length log) s.Pass.events)
    result.Farm.analysis;
  Alcotest.(check int) "analysis.events counts each event once"
    (Log.length log)
    (Metrics.value (Metrics.counter metrics "analysis.events"));
  Alcotest.(check int) "no analysis errors on a correct run" 0
    (Metrics.value (Metrics.counter metrics "analysis.errors"));
  (* and a stream with a lock-order inversion is flagged in-lane *)
  let metrics = Metrics.create () in
  let farm =
    Farm.start ~capacity:64 ~metrics ~passes:[ Pass.lockgraph () ] ~level:`Full
      [
        Farm.shard ~mode:`View
          ~view:(Vyrd_multiset.Multiset_vector.viewdef ~capacity)
          "multiset" Vyrd_multiset.Multiset_spec.spec;
      ]
  in
  List.iter (Farm.feed farm)
    [
      Event.Acquire { tid = 1; lock = "a" };
      Event.Acquire { tid = 1; lock = "b" };
      Event.Release { tid = 1; lock = "b" };
      Event.Release { tid = 1; lock = "a" };
      Event.Acquire { tid = 2; lock = "b" };
      Event.Acquire { tid = 2; lock = "a" };
      Event.Release { tid = 2; lock = "a" };
      Event.Release { tid = 2; lock = "b" };
    ];
  let result = Farm.finish farm in
  (match result.Farm.analysis with
  | [ s ] ->
    Alcotest.(check string) "lockgraph summary" "lockgraph" s.Pass.pass;
    Alcotest.(check int) "one cycle error" 1 s.Pass.errors;
    Alcotest.(check bool) "summary not clean" false (Pass.clean s)
  | l -> Alcotest.failf "expected one summary, got %d" (List.length l));
  Alcotest.(check int) "analysis.errors metric" 1
    (Metrics.value (Metrics.counter metrics "analysis.errors"));
  Alcotest.(check int) "per-pass error gauge" 1
    (Metrics.gauge_value (Metrics.gauge metrics "analysis.errors.lockgraph"))

let test_farm_finish_idempotent () =
  (* a second finish — e.g. the server's cleanup path running after the
     verdict was already taken — must return the same result object and
     must not re-run the drain *)
  let log =
    run_both ~ms_bugs:[ Vyrd_multiset.Multiset_vector.Racy_find_slot ] ~seed:0 ()
  in
  let farm = Farm.start ~capacity:64 ~level:(Log.level log) (shards ()) in
  Array.iter (Farm.feed farm) (Log.snapshot log);
  let r1 = Farm.finish farm in
  let r2 = Farm.finish farm in
  Alcotest.(check bool) "same result object" true (r1 == r2);
  Alcotest.(check string) "same verdict" (Report.tag r1.Farm.merged)
    (Report.tag r2.Farm.merged);
  Alcotest.(check int) "same fed count" r1.Farm.fed r2.Farm.fed

let test_farm_view_requires_view_level () =
  match Farm.start ~level:`Io (shards ()) with
  | (_ : Farm.t) -> Alcotest.fail "`View shards accepted an `Io-level stream"
  | exception Invalid_argument _ -> ()

(* --- Online with a bounded queue ------------------------------------------ *)

let test_online_capacity_and_high_water () =
  let s = Subjects.multiset_vector in
  let log = Log.create ~level:`View () in
  let online =
    Online.start ~capacity:256 ~mode:`View ~view:s.Subjects.view log s.Subjects.spec
  in
  Vyrd_sched.Coop.run ~seed:3 (fun sched ->
      let ctx = Instrument.make sched log in
      let b = s.Subjects.build ~bug:false ctx in
      for t = 1 to 4 do
        sched.spawn (fun () ->
            let rng = Prng.create (3 + (7 * t)) in
            for _ = 1 to 30 do
              b.Harness.random_op rng (Prng.int rng 8)
            done)
      done);
  let report = Online.finish online in
  Alcotest.(check bool) "passes" true (Report.is_pass report);
  let hw = report.Report.stats.Report.queue_high_water in
  Alcotest.(check bool)
    (Printf.sprintf "high water %d recorded and bounded" hw)
    true
    (hw > 0 && hw <= 256)

let suite =
  [
    varint_roundtrip;
    ("varint int extremes", `Quick, test_varint_extremes);
    event_roundtrip;
    ("garbage input raises Corrupt", `Quick, test_decode_garbage_raises);
    ("huge length raises Corrupt", `Quick, test_decode_huge_length_raises);
    segment_file_roundtrip;
    ( "binary matches text on examples/logs",
      `Quick,
      test_binary_matches_text_on_examples );
    ("rotation set reassembles via read_prefix", `Quick, test_rotation_and_read_prefix);
    ("truncated tails recover every whole segment", `Quick, test_truncated_tail_recovery);
    ("corrupt byte stops at the CRC", `Quick, test_corrupt_byte_stops_at_crc);
    ( "corrupt middle rotation file truncates there",
      `Quick,
      test_corrupt_middle_rotation_file );
    ("text log rejected by binary reader", `Quick, test_not_a_segment_file_raises);
    ("ring order, close, late-push drop", `Quick, test_ring_order_and_close);
    ("ring backpressure across domains", `Quick, test_ring_backpressure);
    ("fold/iter/snapshot agree with events", `Quick, test_log_fold_snapshot_iter_agree);
    ("dropped counter counts refused appends", `Quick, test_log_dropped_counter);
    ("parse errors carry the line number", `Quick, test_parse_error_is_positioned);
    ("metrics counters/gauges/histograms", `Quick, test_metrics_basics);
    ("farm = offline checker on correct runs", `Quick, test_farm_agrees_on_correct_runs);
    ("farm = offline checker on buggy runs", `Quick, test_farm_agrees_on_buggy_runs);
    ("farm streams from a live log", `Quick, test_farm_streams_from_live_log);
    ("farm runs analysis passes in-lane", `Quick, test_farm_runs_analysis_passes);
    ("farm finish is idempotent", `Quick, test_farm_finish_idempotent);
    ("farm `View shards reject `Io streams", `Quick, test_farm_view_requires_view_level);
    ("online bounded queue records high water", `Quick, test_online_capacity_and_high_water);
  ]
