let () =
  Alcotest.run "vyrd"
    [
      ("sched", Test_sched.suite);
      ("core", Test_core.suite);
      ("multiset", Test_multiset.suite);
      ("jlib", Test_jlib.suite);
      ("boxwood-cache", Test_boxwood_cache.suite);
      ("blink-tree", Test_blink.suite);
      ("scanfs", Test_scanfs.suite);
      ("harness", Test_harness.suite);
      ("baselines", Test_baselines.suite);
      ("lin", Test_lin.suite);
      ("analysis", Test_analysis.suite);
      ("fuzz", Test_fuzz.suite);
      ("oracle", Test_oracle.suite);
      ("hotpath", Test_hotpath.suite);
      ("ring-model", Test_ring_model.suite);
      ("native-stress", Test_native_stress.suite);
      ("explore", Test_explore.suite);
      ("compose", Test_compose.suite);
      ("model", Test_model.suite);
      ("log", Test_log.suite);
      ("faults", Test_faults.suite);
      ("pipeline", Test_pipeline.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("net", Test_net.suite);
      ("cluster", Test_cluster.suite);
      ("monitor", Test_monitor.suite);
    ]
