(* Differential oracle testing for the flattened checker hot path.

   The fast checker's verdict AND first-detection index must match
   [Reference.check_indexed] — an independent, whole-phase prediction of
   where the incremental checker first reports — on randomly generated
   well-formed annotated logs (multiple structures, mixed commit orders,
   open executions at the tail) and on mutant-seeded runs: dropped /
   duplicated events, flipped returns, stray commits and stray commit
   blocks, and the [lib/faults] dropped-block instrumentation fault. *)

open Vyrd
open Vyrd_sched
open Vyrd_multiset
module Faults = Vyrd_faults.Faults
module Farm = Vyrd_pipeline.Farm

let qcheck = QCheck_alcotest.to_alcotest
let mspec = Multiset_spec.spec
let vspec = Vyrd_jlib.Vector.spec
let cspec = Spec_compose.pair mspec vspec
let view = Multiset_vector.viewdef ~capacity:16

(* --- random well-formed annotated logs ---------------------------------- *)

(* One method execution: call, optional commit, return.  Returns are drawn
   from plausible shapes with biased validity, so generated logs mix
   passing runs, refinement violations at varied depths, and rich observer
   windows. *)
type op = { op_mid : string; op_args : Repr.t list; op_ret : Repr.t; op_commit : bool }

let gen_op ~sides =
  let open QCheck2.Gen in
  let x = int_range 0 5 in
  let rbool = map Repr.bool bool in
  let sf = frequency [ (4, return Repr.success); (1, return Repr.failure) ] in
  let commit = frequency [ (4, return true); (1, return false) ] in
  let multiset_ops =
    [
      map3
        (fun v r c -> { op_mid = "insert"; op_args = [ Repr.int v ]; op_ret = r; op_commit = c })
        x sf commit;
      map
        (fun (v, w, r, c) ->
          { op_mid = "insert_pair"; op_args = [ Repr.int v; Repr.int w ]; op_ret = r;
            op_commit = c })
        (quad x x sf commit);
      map3
        (fun v r c -> { op_mid = "delete"; op_args = [ Repr.int v ]; op_ret = r; op_commit = c })
        x rbool commit;
      map
        (fun c -> { op_mid = "compress"; op_args = []; op_ret = Repr.Unit; op_commit = c })
        commit;
      map2
        (fun v r -> { op_mid = "lookup"; op_args = [ Repr.int v ]; op_ret = r; op_commit = false })
        x rbool;
      map2
        (fun v n -> { op_mid = "count"; op_args = [ Repr.int v ]; op_ret = Repr.int n;
                      op_commit = false })
        x (int_range 0 3);
    ]
  in
  let vector_ops =
    [
      map3
        (fun v r c -> { op_mid = "add"; op_args = [ Repr.int v ]; op_ret = r; op_commit = c })
        x sf commit;
      map2
        (fun r c -> { op_mid = "remove_last"; op_args = []; op_ret = r; op_commit = c })
        rbool commit;
      map
        (fun (i, v, r, c) ->
          { op_mid = "set"; op_args = [ Repr.int i; Repr.int v ]; op_ret = r; op_commit = c })
        (quad (int_range 0 3) x rbool commit);
      map
        (fun c -> { op_mid = "clear"; op_args = []; op_ret = Repr.Unit; op_commit = c })
        commit;
      map2
        (fun n r -> { op_mid = "size"; op_args = []; op_ret = (if r then Repr.int n else Repr.Bool r);
                      op_commit = false })
        (int_range 0 4) bool;
      map
        (fun r -> { op_mid = "is_empty"; op_args = []; op_ret = r; op_commit = false })
        rbool;
      map2
        (fun v r -> { op_mid = "contains"; op_args = [ Repr.int v ]; op_ret = r;
                      op_commit = false })
        x rbool;
    ]
  in
  oneof (match sides with
    | `Multiset -> multiset_ops
    | `Mixed -> multiset_ops @ vector_ops)

(* Expand thread scripts into per-thread event queues and interleave them
   with a seeded scheduler; optionally truncate the tail (leaving open
   executions and unreturned commits) and seed one structural mutation. *)
let build_events ?(truncate = true) ~mutate scripts seed =
  let expand tid ops =
    List.concat_map
      (fun o ->
        (Event.Call { tid; mid = o.op_mid; args = o.op_args }
         :: (if o.op_commit then [ Event.Commit { tid } ] else []))
        @ [ Event.Return { tid; mid = o.op_mid; value = o.op_ret } ])
      ops
  in
  let rng = Prng.create seed in
  let queues = Array.of_list (List.mapi (fun i ops -> ref (expand (i + 1) ops)) scripts) in
  let out = ref [] in
  let remaining () =
    Array.to_list queues |> List.filter (fun q -> !q <> []) |> Array.of_list
  in
  let rec drain () =
    let live = remaining () in
    if Array.length live > 0 then begin
      let q = live.(Prng.int rng (Array.length live)) in
      out := List.hd !q :: !out;
      q := List.tl !q;
      drain ()
    end
  in
  drain ();
  let evs = Array.of_list (List.rev !out) in
  let evs =
    if truncate && Array.length evs > 0 && Prng.int rng 5 = 0 then
      Array.sub evs 0 (Prng.int rng (Array.length evs + 1))
    else evs
  in
  let n = Array.length evs in
  if (not mutate) || n = 0 || Prng.int rng 5 < 3 then Array.to_list evs
  else
    let i = Prng.int rng n in
    let l = Array.to_list evs in
    match Prng.int rng 5 with
    | 0 -> List.filteri (fun j _ -> j <> i) l (* drop one event *)
    | 1 -> List.concat (List.mapi (fun j e -> if j = i then [ e; e ] else [ e ]) l)
    | 2 ->
      List.mapi
        (fun j e ->
          if j <> i then e
          else
            match e with
            | Event.Return { tid; mid; value = Repr.Bool b } ->
              Event.Return { tid; mid; value = Repr.Bool (not b) }
            | Event.Return { tid; mid; value } when Repr.equal value Repr.success ->
              Event.Return { tid; mid; value = Repr.failure }
            | e -> e)
        l
    | 3 ->
      List.concat
        (List.mapi
           (fun j e ->
             if j = i then [ Event.Commit { tid = 1 + Prng.int rng 4 }; e ] else [ e ])
           l)
    | _ ->
      let b =
        if Prng.int rng 2 = 0 then Event.Block_begin { tid = 1 + Prng.int rng 4 }
        else Event.Block_end { tid = 1 + Prng.int rng 4 }
      in
      List.concat (List.mapi (fun j e -> if j = i then [ b; e ] else [ e ]) l)

let gen_case ~sides =
  let open QCheck2.Gen in
  pair (list_size (int_range 2 4) (list_size (int_range 1 6) (gen_op ~sides))) nat

let print_case ?truncate ~mutate (scripts, seed) =
  let evs = build_events ?truncate ~mutate scripts seed in
  Format.asprintf "seed %d:@.%a" seed
    (Format.pp_print_list Event.pp)
    evs

(* 1000+ random cases: the fast checker's (verdict, kind, index) must equal
   the indexed reference prediction, on clean and mutant-seeded logs. *)
let differential_random_logs =
  qcheck
    (QCheck2.Test.make ~name:"checker == indexed reference on random logs" ~count:1000
       ~print:(print_case ~mutate:true) (gen_case ~sides:`Mixed)
       (fun (scripts, seed) ->
         let log = Log.of_events (build_events ~mutate:true scripts seed) in
         Reference.agrees_with_checker_indexed log cspec))

(* Single-structure logs through a one-shard farm: the merged verdict and
   global fail index must equal the offline checker's (and hence the
   reference's — covered above). *)
let differential_farm_single =
  qcheck
    (QCheck2.Test.make ~name:"single-shard farm == offline checker (verdict+index)"
       ~count:60 ~print:(print_case ~mutate:false) (gen_case ~sides:`Multiset)
       (fun (scripts, seed) ->
         let evs = build_events ~mutate:false scripts seed in
         let log = Log.of_events evs in
         let report, idx = Checker.check_indexed ~mode:`Io log mspec in
         let farm = Farm.start ~level:(Log.level log) [ Farm.shard "multiset" mspec ] in
         Log.iter (Farm.feed farm) log;
         let res = Farm.finish farm in
         Report.is_pass res.Farm.merged = Report.is_pass report
         && Farm.min_fail_index res = idx))

(* Mixed logs through a two-shard farm: per-shard detection indices are
   shard-local, so only the verdict must agree with the composed spec.
   Complete logs only: on a truncated log the equality is not a theorem —
   an unresolved commit of one structure holds every composed observer
   window open at end-of-stream, while the other structure's lane (which
   never sees that commit) closes its windows and may convict, exactly as
   offline checking of that structure's own events alone would. *)
let differential_farm_mixed =
  qcheck
    (QCheck2.Test.make ~name:"two-shard farm verdict == composed offline verdict"
       ~count:40 ~print:(print_case ~truncate:false ~mutate:false)
       (gen_case ~sides:`Mixed)
       (fun (scripts, seed) ->
         let evs = build_events ~truncate:false ~mutate:false scripts seed in
         let log = Log.of_events evs in
         let offline = Checker.check ~mode:`Io log cspec in
         let farm =
           Farm.start ~level:(Log.level log)
             [ Farm.shard "multiset" mspec; Farm.shard "vector" vspec ]
         in
         Log.iter (Farm.feed farm) log;
         let res = Farm.finish farm in
         Report.is_pass res.Farm.merged = Report.is_pass offline))

(* --- view-mode agreement on instrumented runs --------------------------- *)

let run_multiset ?(bugs = []) ~seed () =
  let log = Log.create ~level:`View () in
  Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let ms = Multiset_vector.create ~bugs ~capacity:16 ctx in
      for t = 1 to 4 do
        s.spawn (fun () ->
            let rng = Prng.create (seed + (23 * t)) in
            for _ = 1 to 15 do
              let x = Prng.int rng 6 in
              match Prng.int rng 5 with
              | 0 | 1 -> ignore (Multiset_vector.insert ms x)
              | 2 -> ignore (Multiset_vector.insert_pair ms x (x + 1))
              | 3 -> ignore (Multiset_vector.delete ms x)
              | _ -> ignore (Multiset_vector.lookup ms x)
            done)
      done);
  log

let check_indexed_agreement ~what ~seed log =
  Alcotest.(check bool)
    (Printf.sprintf "%s io seed %d" what seed)
    true
    (Reference.agrees_with_checker_indexed log mspec);
  Alcotest.(check bool)
    (Printf.sprintf "%s view seed %d" what seed)
    true
    (Reference.agrees_with_checker_indexed ~view log mspec)

let test_indexed_correct_runs () =
  for seed = 0 to 29 do
    check_indexed_agreement ~what:"correct" ~seed (run_multiset ~seed ())
  done

let test_indexed_buggy_runs () =
  for seed = 0 to 29 do
    check_indexed_agreement ~what:"racy"
      ~seed
      (run_multiset ~bugs:[ Multiset_vector.Racy_find_slot ] ~seed ())
  done

let test_indexed_dropped_block_runs () =
  (* the instrumentation fault drops commit-block brackets entirely: the
     log stays structurally well-formed but viewI diverges *)
  let saw_fail = ref false in
  for seed = 0 to 19 do
    let log =
      Faults.with_armed Instrument.fault_dropped_block (fun () -> run_multiset ~seed ())
    in
    check_indexed_agreement ~what:"dropped-block" ~seed log;
    if not (Report.is_pass (Checker.check ~mode:`View ~view log mspec)) then
      saw_fail := true
  done;
  Alcotest.(check bool) "dropped blocks surface as violations" true !saw_fail

let suite =
  [
    differential_random_logs;
    differential_farm_single;
    differential_farm_mixed;
    ("indexed oracle on correct runs", `Quick, test_indexed_correct_runs);
    ("indexed oracle on racy runs", `Quick, test_indexed_buggy_runs);
    ("indexed oracle on dropped-block runs", `Quick, test_indexed_dropped_block_runs);
  ]
