(* Model-based testing for the batched ring buffer.

   A sequential qcheck state machine interprets random operation sequences
   against a trivial functional model (a list plus a closed flag), skipping
   operations that would block without a peer; a native-domains stress test
   then drives the same ring from two producers and one batching consumer
   and checks for loss, duplication, and reordering. *)

open Vyrd
open Vyrd_sched

let qcheck = QCheck_alcotest.to_alcotest

(* --- sequential model --------------------------------------------------- *)

type mop =
  | Push of int
  | TryPush of int
  | PushBatch of int list
  | Pop
  | PopBatch of int
  | Close

let show_mop = function
  | Push x -> Printf.sprintf "Push %d" x
  | TryPush x -> Printf.sprintf "TryPush %d" x
  | PushBatch xs ->
    Printf.sprintf "PushBatch [%s]" (String.concat ";" (List.map string_of_int xs))
  | Pop -> "Pop"
  | PopBatch k -> Printf.sprintf "PopBatch %d" k
  | Close -> "Close"

let gen_ops =
  let open QCheck2.Gen in
  let x = int_range 0 99 in
  list_size (int_range 0 60)
    (frequency
       [
         (4, map (fun v -> Push v) x);
         (2, map (fun v -> TryPush v) x);
         (3, map (fun vs -> PushBatch vs) (list_size (int_range 0 6) x));
         (4, return Pop);
         (3, map (fun k -> PopBatch k) (int_range 1 6));
         (1, return Close);
       ])

(* Interpret one sequence against ring and model in lockstep.  With no
   concurrent peer, an operation that the ring would block on (push into a
   full open ring, pop from an empty open ring) is skipped — the guarded
   command interpretation of a blocking API. *)
let run_model ops =
  let cap = 4 in
  let r = Ring.create ~capacity:cap () in
  let q = ref [] in
  let closed = ref false in
  let hw = ref 0 in
  let dropped = ref 0 in
  let failure = ref None in
  let check what b = if (not b) && !failure = None then failure := Some what in
  let note_push () = hw := max !hw (List.length !q) in
  List.iter
    (fun op ->
      (match op with
      | Push x ->
        if !closed then begin
          Ring.push r x;
          incr dropped
        end
        else if List.length !q = cap then () (* would block *)
        else begin
          Ring.push r x;
          q := !q @ [ x ];
          note_push ()
        end
      | TryPush x ->
        let expect = (not !closed) && List.length !q < cap in
        check "try_push result" (Ring.try_push r x = expect);
        if expect then begin
          q := !q @ [ x ];
          note_push ()
        end
      | PushBatch xs ->
        let len = List.length xs in
        if !closed then begin
          Ring.push_batch r (Array.of_list xs);
          dropped := !dropped + len
        end
        else if len > cap - List.length !q then () (* would block *)
        else begin
          Ring.push_batch r (Array.of_list xs);
          q := !q @ xs;
          note_push ()
        end
      | Pop ->
        if !q = [] && not !closed then () (* would block *)
        else begin
          let expect =
            match !q with
            | [] -> None
            | x :: rest ->
              q := rest;
              Some x
          in
          check "pop result" (Ring.pop r = expect)
        end
      | PopBatch k ->
        if !q = [] && not !closed then () (* would block *)
        else begin
          let dest = Array.make k None in
          let n = Ring.pop_batch r dest in
          let exp = min k (List.length !q) in
          check "pop_batch count" (n = exp);
          List.iteri
            (fun j v -> if j < exp then check "pop_batch slot" (dest.(j) = Some v))
            !q;
          q := List.filteri (fun j _ -> j >= exp) !q
        end
      | Close ->
        Ring.close r;
        closed := true);
      check "length" (Ring.length r = List.length !q);
      check "closed flag" (Ring.closed r = !closed);
      check "high water tracks occupancy" (Ring.high_water r = !hw);
      check "high water within capacity" (Ring.high_water r <= cap);
      check "rejected count" (Ring.rejected r = !dropped);
      check "stall non-negative" (Ring.stall_ns r >= 0))
    ops;
  match !failure with
  | None -> true
  | Some what -> QCheck2.Test.fail_reportf "model mismatch: %s" what

let ring_matches_model =
  qcheck
    (QCheck2.Test.make ~name:"ring == sequential queue model" ~count:1000
       ~print:(fun ops -> String.concat "; " (List.map show_mop ops))
       gen_ops run_model)

(* --- native-domains stress ---------------------------------------------- *)

let test_domains_stress () =
  let cap = 8 in
  let per = 2000 in
  let r = Ring.create ~capacity:cap () in
  let producer p () =
    let rng = Prng.create (42 + p) in
    let i = ref 0 in
    while !i < per do
      let tag k = (p * 1_000_000) + k in
      if Prng.int rng 2 = 0 then begin
        let n = min (per - !i) (1 + Prng.int rng 7) in
        Ring.push_batch r (Array.init n (fun k -> tag (!i + k)));
        i := !i + n
      end
      else begin
        Ring.push r (tag !i);
        incr i
      end
    done
  in
  let consumer =
    Domain.spawn (fun () ->
        let dest = Array.make 5 None in
        let acc = ref [] in
        let rec go () =
          let n = Ring.pop_batch r dest in
          if n > 0 then begin
            for k = 0 to n - 1 do
              (match dest.(k) with Some v -> acc := v :: !acc | None -> ());
              dest.(k) <- None
            done;
            go ()
          end
        in
        go ();
        List.rev !acc)
  in
  let p1 = Domain.spawn (producer 1) in
  let p2 = Domain.spawn (producer 2) in
  Domain.join p1;
  Domain.join p2;
  Ring.close r;
  let got = Domain.join consumer in
  Alcotest.(check int) "no loss, no duplication" (2 * per) (List.length got);
  let seq p =
    List.filter_map
      (fun v -> if v / 1_000_000 = p then Some (v mod 1_000_000) else None)
      got
  in
  Alcotest.(check (list int)) "producer 1 subsequence in order" (List.init per Fun.id) (seq 1);
  Alcotest.(check (list int)) "producer 2 subsequence in order" (List.init per Fun.id) (seq 2);
  Alcotest.(check bool) "high water within capacity" true (Ring.high_water r <= cap);
  Alcotest.(check int) "nothing rejected" 0 (Ring.rejected r);
  Alcotest.(check bool) "stall non-negative" true (Ring.stall_ns r >= 0)

(* Regression: producer stall time is measured with the monotonicized clock
   ({!Mclock}), so it can never go negative even if the wall clock steps
   backwards mid-wait; and a genuinely blocked producer records some. *)
let test_stall_measured_and_nonnegative () =
  let r = Ring.create ~capacity:1 () in
  let consumer =
    Domain.spawn (fun () ->
        let rec go acc =
          Unix.sleepf 0.001;
          (* deliberately slow: the producer must block in push *)
          match Ring.pop r with None -> acc | Some _ -> go (acc + 1)
        in
        go 0)
  in
  for i = 1 to 20 do
    Ring.push r i
  done;
  Ring.close r;
  let n = Domain.join consumer in
  Alcotest.(check int) "all consumed" 20 n;
  Alcotest.(check bool) "blocked producer records stall" true (Ring.stall_ns r > 0);
  Alcotest.(check bool) "stall never negative" true (Ring.stall_ns r >= 0)

let suite =
  [
    ring_matches_model;
    ("domains stress: 2 producers, batching consumer", `Quick, test_domains_stress);
    ("producer stall is monotonic and non-negative", `Quick, test_stall_measured_and_nonnegative);
  ]
