(* lib/analysis: vector clocks, the FastTrack happens-before race detector,
   and the log-discipline linter — including the §8 pin: on a correct
   multiset run the precise happens-before analysis reports zero races on
   the very log where the lockset/reduction baseline flags insert_pair as
   non-reducible (the paper's false-alarm gap), and the level guards added
   for sub-`Full logs. *)

open Vyrd
open Vyrd_sched
open Vyrd_multiset
open Vyrd_analysis
module Reduction = Vyrd_baselines.Reduction

let ev_call tid mid = Event.Call { tid; mid; args = [] }
let ev_ret tid mid = Event.Return { tid; mid; value = Repr.Unit }
let ev_commit tid = Event.Commit { tid }
let ev_write tid var = Event.Write { tid; var; value = Repr.Int 0 }
let ev_read tid var = Event.Read { tid; var }
let ev_acq tid lock = Event.Acquire { tid; lock }
let ev_rel tid lock = Event.Release { tid; lock }
let ev_bb tid = Event.Block_begin { tid }
let ev_be tid = Event.Block_end { tid }

(* --- vector clocks ------------------------------------------------------ *)

let test_vclock_basics () =
  let a = Vclock.create () and b = Vclock.create () in
  Alcotest.(check bool) "zero <= zero" true (Vclock.leq a b);
  Vclock.tick a 1;
  Vclock.tick a 1;
  Vclock.tick b 2;
  Alcotest.(check int) "tick counts" 2 (Vclock.get a 1);
  Alcotest.(check int) "absent component is 0" 0 (Vclock.get a 7);
  Alcotest.(check bool) "incomparable" false (Vclock.leq a b || Vclock.leq b a);
  Vclock.join b a;
  Alcotest.(check bool) "a <= join" true (Vclock.leq a b);
  Alcotest.(check int) "join keeps own component" 1 (Vclock.get b 2);
  let e = Vclock.epoch a 1 in
  Alcotest.(check bool) "epoch <= clock that contains it" true
    (Vclock.epoch_leq e b);
  Alcotest.(check bool) "epoch beyond clock" false
    (Vclock.epoch_leq { Vclock.etid = 1; eclock = 3 } b)

(* --- race detector: hand-crafted logs ----------------------------------- *)

let analyze evs = Racedetect.analyze (Log.of_events evs)

let test_race_unsynchronized_writes () =
  let r =
    analyze
      [
        ev_call 1 "m";
        ev_write 1 "x";
        ev_ret 1 "m";
        ev_call 2 "m";
        ev_write 2 "x";
        ev_ret 2 "m";
      ]
  in
  match r.Racedetect.races with
  | [ { var = "x"; prior; current } ] ->
    Alcotest.(check int) "prior index" 1 prior.Racedetect.index;
    Alcotest.(check int) "current index" 4 current.Racedetect.index;
    Alcotest.(check int) "prior tid" 1 prior.Racedetect.tid;
    Alcotest.(check int) "current tid" 2 current.Racedetect.tid;
    (match (prior.Racedetect.meth, current.Racedetect.meth) with
    | Some p, Some c ->
      Alcotest.(check string) "prior method" "m" p.Racedetect.mid;
      Alcotest.(check int) "prior call index" 0 p.Racedetect.call_index;
      Alcotest.(check int) "current call index" 3 c.Racedetect.call_index
    | _ -> Alcotest.fail "accesses should carry their method executions");
    Alcotest.(check (list string)) "racy methods" [ "m" ] (Racedetect.racy_methods r)
  | rs -> Alcotest.failf "expected exactly one race on x, got %d" (List.length rs)

let test_race_lock_discipline_orders () =
  (* same accesses, but release/acquire on one lock orders them *)
  let r =
    analyze
      [
        ev_acq 1 "l"; ev_write 1 "x"; ev_rel 1 "l";
        ev_acq 2 "l"; ev_write 2 "x"; ev_rel 2 "l";
      ]
  in
  Alcotest.(check (list string)) "no races under a common lock" []
    r.Racedetect.racy_vars;
  (* distinct locks synchronize nothing *)
  let r =
    analyze
      [
        ev_acq 1 "l1"; ev_write 1 "x"; ev_rel 1 "l1";
        ev_acq 2 "l2"; ev_write 2 "x"; ev_rel 2 "l2";
      ]
  in
  Alcotest.(check (list string)) "distinct locks do not order" [ "x" ]
    r.Racedetect.racy_vars

let test_race_read_write () =
  (* unordered read vs write races; two concurrent reads do not *)
  let r = analyze [ ev_read 1 "x"; ev_read 2 "x" ] in
  Alcotest.(check (list string)) "read-read never races" []
    r.Racedetect.racy_vars;
  let r = analyze [ ev_read 1 "x"; ev_read 2 "x"; ev_write 3 "x" ] in
  (match r.Racedetect.races with
  | [ { prior; current; _ } ] ->
    Alcotest.(check int) "earliest racing read chosen" 0 prior.Racedetect.index;
    Alcotest.(check string) "kinds" "read/write"
      ((match prior.Racedetect.kind with `Read -> "read" | `Write -> "write")
      ^ "/"
      ^ match current.Racedetect.kind with `Read -> "read" | `Write -> "write")
  | rs -> Alcotest.failf "expected one read-write race, got %d" (List.length rs));
  (* one race per variable in the report, even with further conflicts *)
  let r = analyze [ ev_write 1 "x"; ev_write 2 "x"; ev_write 3 "x" ] in
  Alcotest.(check int) "deduplicated per variable" 1
    (List.length r.Racedetect.races)

let test_race_spawn_inheritance () =
  (* tid 0's initialization writes happen-before every later thread's first
     event even with no lock in sight (thread creation is not logged) *)
  let r = analyze [ ev_write 0 "x"; ev_write 1 "x"; ev_write 0 "y"; ev_write 2 "y" ] in
  Alcotest.(check (list string))
    "main-thread prefix inherited by first event" [] r.Racedetect.racy_vars;
  (* ... but only the prefix: a tid-0 write after t's first event races *)
  let r = analyze [ ev_write 1 "x"; ev_write 0 "x" ] in
  Alcotest.(check (list string)) "post-spawn main write still races" [ "x" ]
    r.Racedetect.racy_vars

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_race_level_guard () =
  (* satellite of the PR-1 view-on-io guard: analysis below `Full refuses *)
  let log = Log.create ~level:`View () in
  (match Racedetect.analyze log with
  | (_ : Racedetect.result) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the offending level" true
      (contains ~sub:"`View" msg);
    Alcotest.(check bool) "names the analysis" true
      (contains ~sub:"Racedetect.analyze" msg));
  match Reduction.analyze log with
  | (_ : Reduction.result) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "reduction guard names itself" true
      (contains ~sub:"Reduction.analyze" msg)

(* --- qcheck: single-threaded soundness ---------------------------------- *)

(* A single-threaded log is totally ordered by program order: no event
   sequence, however contorted its locking or method structure, may ever be
   reported racy. *)
let single_threaded_events =
  let open QCheck in
  let event =
    map
      (fun (choice, var) ->
        let tid = 3 in
        let var = Printf.sprintf "v%d" var in
        match choice mod 7 with
        | 0 -> ev_read tid var
        | 1 | 2 -> ev_write tid var
        | 3 -> ev_acq tid var
        | 4 -> ev_rel tid var
        | 5 -> ev_call tid var
        | _ -> ev_ret tid var)
      (pair small_nat (int_bound 4))
  in
  list_of_size Gen.(int_range 0 120) event

let prop_single_threaded_race_free =
  QCheck.Test.make ~count:300 ~name:"single-threaded logs are race-free"
    single_threaded_events (fun evs ->
      (Racedetect.analyze (Log.of_events evs)).Racedetect.races = [])

(* --- the §8 pin: lockset/reduction vs happens-before -------------------- *)

let multiset_full_log ?(bugs = []) ~seed () =
  let log = Log.create ~level:`Full () in
  Coop.run ~seed (fun s ->
      let ctx = Instrument.make s log in
      let ms = Multiset_vector.create ~bugs ~capacity:8 ctx in
      for t = 1 to 3 do
        s.spawn (fun () ->
            let rng = Prng.create (seed + (31 * t)) in
            for _ = 1 to 10 do
              let x = Prng.int rng 5 in
              match Prng.int rng 4 with
              | 0 -> ignore (Multiset_vector.insert ms x)
              | 1 -> ignore (Multiset_vector.insert_pair ms x (x + 1))
              | 2 -> ignore (Multiset_vector.delete ms x)
              | _ -> ignore (Multiset_vector.lookup ms x)
            done)
      done);
  log

let test_hb_vs_lockset_on_correct_multiset () =
  (* the acceptance pin: zero happens-before races on the very log where
     reduction cannot prove insert_pair atomic, and refinement passes *)
  let log = multiset_full_log ~seed:0 () in
  let hb = Racedetect.analyze log in
  Alcotest.(check (list string)) "zero happens-before races" []
    hb.Racedetect.racy_vars;
  let red = Reduction.analyze log in
  Alcotest.(check bool) "insert_pair not reducible" false
    (Reduction.method_atomic red "insert_pair");
  Alcotest.(check bool) "lockset racy vars also empty here" true
    (red.Reduction.racy_vars = []);
  let refinement = Checker.check ~mode:`Io log Multiset_spec.spec in
  Alcotest.(check bool) "refinement accepts the same trace" true
    (Report.is_pass refinement)

let test_hb_confirms_genuine_race () =
  (* with the racy FindSlot the same harness produces true races: the elt
     cells are read without their slot lock, and happens-before agrees with
     the lockset for once *)
  let log =
    multiset_full_log ~bugs:[ Multiset_vector.Racy_find_slot ] ~seed:3 ()
  in
  let hb = Racedetect.analyze log in
  let is_elt v =
    String.length v > 4 && String.sub v (String.length v - 4) 4 = ".elt"
  in
  Alcotest.(check bool) "some elt variable genuinely races" true
    (List.exists is_elt hb.Racedetect.racy_vars);
  Alcotest.(check bool) "a racing access sits inside a method execution" true
    (List.exists
       (fun (r : Racedetect.race) ->
         r.Racedetect.current.Racedetect.meth <> None)
       hb.Racedetect.races)

(* --- linter ------------------------------------------------------------- *)

let lint evs = Lint.check (Log.of_events evs)

let kinds r = List.map (fun (d : Lint.diag) -> Lint.kind_id d.Lint.kind) r.Lint.diags

let test_lint_clean () =
  let r =
    lint
      [
        ev_call 1 "insert";
        ev_acq 1 "l";
        ev_write 1 "x";
        ev_commit 1;
        ev_rel 1 "l";
        ev_ret 1 "insert";
        ev_call 1 "lookup";
        ev_read 1 "x";
        ev_ret 1 "lookup";
      ]
  in
  Alcotest.(check bool) "clean log accepted" true (Lint.ok r);
  Alcotest.(check (list string)) "no diagnostics at all" [] (kinds r)

let test_lint_commit_discipline () =
  let r =
    lint [ ev_call 1 "m"; ev_commit 1; ev_write 1 "x"; ev_commit 1; ev_ret 1 "m" ]
  in
  Alcotest.(check (list string)) "duplicate commit" [ "duplicate-commit" ]
    (kinds r);
  Alcotest.(check bool) "is an error" false (Lint.ok r);
  let r = lint [ ev_call 1 "m"; ev_write 1 "x"; ev_ret 1 "m" ] in
  Alcotest.(check (list string)) "mutation without commit warns"
    [ "uncommitted-mutation" ] (kinds r);
  Alcotest.(check bool) "but only warns" true (Lint.ok r);
  let r = lint [ ev_call 1 "m"; ev_ret 1 "m"; ev_commit 1 ] in
  Alcotest.(check (list string)) "commit after return"
    [ "commit-outside-method" ] (kinds r);
  let r = lint [ ev_call 1 "m"; ev_ret 1 "m"; ev_write 1 "x" ] in
  Alcotest.(check (list string)) "write after return"
    [ "write-outside-method" ] (kinds r)

let test_lint_unbalanced_blocks () =
  (* the acceptance pin: an unbalanced commit block is flagged *)
  let r = lint [ ev_call 1 "m"; ev_bb 1; ev_write 1 "x"; ev_commit 1; ev_ret 1 "m" ] in
  Alcotest.(check (list string)) "unclosed block at return"
    [ "unclosed-block" ] (kinds r);
  Alcotest.(check bool) "unbalanced block is an error" false (Lint.ok r);
  (match r.Lint.diags with
  | [ d ] ->
    Alcotest.(check int) "anchored at the return" 4 d.Lint.position;
    Alcotest.(check int) "on the right thread" 1 d.Lint.tid
  | _ -> Alcotest.fail "expected exactly one diagnostic");
  let r = lint [ ev_call 1 "m"; ev_be 1; ev_ret 1 "m" ] in
  Alcotest.(check (list string)) "stray block-end" [ "unbalanced-block-end" ]
    (kinds r);
  let r = lint [ ev_call 1 "m"; ev_bb 1 ] in
  Alcotest.(check (list string)) "block open at end of log"
    [ "unclosed-block" ] (kinds r)

let test_lint_locks_and_returns () =
  let r = lint [ ev_rel 1 "l" ] in
  Alcotest.(check (list string)) "release without acquire"
    [ "release-without-acquire" ] (kinds r);
  let r = lint [ ev_acq 1 "l"; ev_acq 1 "l"; ev_rel 1 "l"; ev_rel 1 "l" ] in
  Alcotest.(check (list string)) "reentrant locking balanced" [] (kinds r);
  let r = lint [ ev_call 1 "m"; ev_acq 1 "l"; ev_ret 1 "m" ] in
  Alcotest.(check (list string)) "lock held at end of log only warns"
    [ "unreleased-lock" ] (kinds r);
  Alcotest.(check bool) "warning, not error" true (Lint.ok r);
  let r = lint [ ev_ret 1 "m" ] in
  Alcotest.(check (list string)) "return without call"
    [ "return-without-call" ] (kinds r);
  let r = lint [ ev_call 1 "m"; ev_ret 1 "other" ] in
  Alcotest.(check (list string)) "mismatched return" [ "return-mismatch" ]
    (kinds r)

let test_lint_daemon_threads_exempt () =
  (* threads that never call are initialization/daemon threads: their
     writes and commits are §6.2 coarse-grained logging, not violations *)
  let r =
    lint
      [
        ev_write 0 "init";
        ev_call 1 "m"; ev_write 1 "x"; ev_commit 1; ev_ret 1 "m";
        ev_write 9 "daemon.var"; ev_commit 9;
      ]
  in
  Alcotest.(check (list string)) "daemon writes accepted" [] (kinds r)

let test_lint_commit_missing () =
  (* `Io-level shape: calls, returns and commits only.  insert commits on
     T1 but not on T2; lookup never commits anywhere and stays clean (it is
     an observer, not a missing annotation) *)
  let r =
    lint
      [
        ev_call 1 "insert"; ev_commit 1; ev_ret 1 "insert";
        ev_call 2 "insert"; ev_ret 2 "insert";
        ev_call 1 "lookup"; ev_ret 1 "lookup";
      ]
  in
  Alcotest.(check (list string)) "missing commit flagged once"
    [ "commit-missing" ] (kinds r);
  Alcotest.(check bool) "warning, not error" true (Lint.ok r);
  (match r.Lint.diags with
  | [ d ] ->
    Alcotest.(check int) "anchored at the non-committing return" 4
      d.Lint.position;
    Alcotest.(check int) "on the right thread" 2 d.Lint.tid
  | _ -> Alcotest.fail "expected exactly one diagnostic");
  (* at view/full the write-based warning already covers the execution;
     commit-missing must not double-report it *)
  let r =
    lint
      [
        ev_call 1 "insert"; ev_write 1 "x"; ev_commit 1; ev_ret 1 "insert";
        ev_call 2 "insert"; ev_write 2 "x"; ev_ret 2 "insert";
      ]
  in
  Alcotest.(check (list string)) "richer logs keep the write-based warning"
    [ "uncommitted-mutation" ] (kinds r)

let test_lint_real_logs_clean () =
  (* every event the real instrumentation emits obeys the contract *)
  let log = multiset_full_log ~seed:4 () in
  let r = Lint.check log in
  Alcotest.(check int) "no errors on a real multiset log" 0 r.Lint.errors;
  (* the dropped-block mutant breaks the monitor, not the discipline: the
     brackets vanish entirely, which still lints clean — but a log whose
     bracket stream is truncated mid-block does not *)
  Alcotest.(check bool) "real log has events" true (r.Lint.events > 100)

(* --- lock-order graph ---------------------------------------------------- *)

let lockgraph evs = Lockgraph.analyze (Log.of_events evs)

let test_lockgraph_reports_abba () =
  let r =
    lockgraph
      [
        ev_call 1 "m"; ev_acq 1 "a"; ev_acq 1 "b"; ev_rel 1 "b"; ev_rel 1 "a";
        ev_ret 1 "m";
        ev_call 2 "n"; ev_acq 2 "b"; ev_acq 2 "a"; ev_rel 2 "a"; ev_rel 2 "b";
        ev_ret 2 "n";
      ]
  in
  Alcotest.(check bool) "cycle reported" false (Lockgraph.ok r);
  Alcotest.(check (list string)) "locks of the cycle" [ "a"; "b" ]
    (Lockgraph.cyclic_locks r);
  match r.Lockgraph.cycles with
  | [ c ] ->
    Alcotest.(check int) "one witness per edge" 2
      (List.length c.Lockgraph.chosen);
    let tids =
      List.map (fun (w : Lockgraph.witness) -> w.Lockgraph.tid) c.Lockgraph.chosen
    in
    Alcotest.(check bool) "witness tids pairwise distinct" true
      (List.sort_uniq compare tids = List.sort compare tids);
    List.iter
      (fun (w : Lockgraph.witness) ->
        Alcotest.(check bool) "witness holds the edge source" true
          (w.Lockgraph.held <> []);
        match w.Lockgraph.meth with
        | Some m ->
          Alcotest.(check bool) "enclosing method recorded" true
            (m.Lockgraph.mid = "m" || m.Lockgraph.mid = "n")
        | None -> Alcotest.fail "witness should carry its method execution")
      c.Lockgraph.chosen
  | cs -> Alcotest.failf "expected exactly one cycle, got %d" (List.length cs)

let test_lockgraph_gate_suppression () =
  (* same ABBA shape, but both inversions run under a common gate lock: the
     deadlock is unreachable and the cycle must be suppressed *)
  let r =
    lockgraph
      [
        ev_acq 1 "g"; ev_acq 1 "a"; ev_acq 1 "b"; ev_rel 1 "b"; ev_rel 1 "a";
        ev_rel 1 "g";
        ev_acq 2 "g"; ev_acq 2 "b"; ev_acq 2 "a"; ev_rel 2 "a"; ev_rel 2 "b";
        ev_rel 2 "g";
      ]
  in
  Alcotest.(check bool) "no cycle reported" true (Lockgraph.ok r);
  Alcotest.(check bool) "suppression attributed to the gate" true
    (r.Lockgraph.suppressed_gated >= 1);
  Alcotest.(check int) "nothing suppressed as single-thread" 0
    r.Lockgraph.suppressed_single_thread

let test_lockgraph_single_thread_suppression () =
  (* one thread using both orders at different times cannot deadlock with
     itself *)
  let r =
    lockgraph
      [
        ev_acq 1 "a"; ev_acq 1 "b"; ev_rel 1 "b"; ev_rel 1 "a";
        ev_acq 1 "b"; ev_acq 1 "a"; ev_rel 1 "a"; ev_rel 1 "b";
      ]
  in
  Alcotest.(check bool) "no cycle reported" true (Lockgraph.ok r);
  Alcotest.(check bool) "suppressed as single-thread" true
    (r.Lockgraph.suppressed_single_thread >= 1)

let test_lockgraph_reentrant_and_levels () =
  (* a reentrant re-acquisition is not a new edge *)
  let r =
    lockgraph
      [
        ev_acq 1 "a"; ev_acq 1 "a"; ev_rel 1 "a"; ev_acq 1 "b"; ev_rel 1 "b";
        ev_rel 1 "a";
      ]
  in
  Alcotest.(check int) "only the a->b edge" 1 r.Lockgraph.edges;
  Alcotest.(check bool) "clean" true (Lockgraph.ok r);
  (* level-tolerant: a sub-`Full log has no lock events and is trivially
     clean, unlike Racedetect which refuses *)
  let r = Lockgraph.analyze (Log.create ~level:`View ()) in
  Alcotest.(check bool) "`View log trivially clean" true (Lockgraph.ok r);
  Alcotest.(check int) "no locks seen" 0 r.Lockgraph.locks

let prop_lockgraph_single_threaded_clean =
  QCheck.Test.make ~count:300 ~name:"single-threaded logs have no lock cycles"
    single_threaded_events (fun evs ->
      Lockgraph.ok (Lockgraph.analyze (Log.of_events evs)))

(* Threads over disjoint lock namespaces can never form a cross-lock cycle,
   whatever their per-thread acquisition patterns. *)
let disjoint_locks_events =
  let open QCheck in
  let thread_ops = list_of_size Gen.(int_range 0 30) (pair bool (int_bound 3)) in
  map
    (fun (per_thread, schedule) ->
      let queues =
        List.mapi
          (fun i ops ->
            let tid = i + 1 in
            ref
              (List.map
                 (fun (acq, l) ->
                   let lock = Printf.sprintf "t%d.l%d" tid l in
                   if acq then ev_acq tid lock else ev_rel tid lock)
                 ops))
          per_thread
      in
      (* interleave under the generated schedule, preserving program order *)
      let out = ref [] in
      let pick s =
        match List.filter (fun q -> !q <> []) queues with
        | [] -> false
        | live ->
          let q = List.nth live (s mod List.length live) in
          (match !q with
          | e :: rest ->
            out := e :: !out;
            q := rest
          | [] -> assert false);
          true
      in
      List.iter (fun s -> ignore (pick s)) schedule;
      List.iter (fun q -> out := List.rev_append !q !out) queues;
      List.rev !out)
    (pair
       (list_of_size (Gen.int_range 1 4) thread_ops)
       (list_of_size (Gen.int_range 0 200) (int_bound 1000)))

let prop_lockgraph_disjoint_threads_clean =
  QCheck.Test.make ~count:200
    ~name:"threads over disjoint locks have no cycles" disjoint_locks_events
    (fun evs -> Lockgraph.ok (Lockgraph.analyze (Log.of_events evs)))

(* The verdict is a function of each thread's own acquisition order: any two
   interleavings of the same per-thread sequences (shared locks allowed)
   agree on the set of cyclic locks. *)
let shared_locks_threads =
  let open QCheck in
  let thread_ops = list_of_size Gen.(int_range 0 25) (pair bool (int_bound 3)) in
  pair
    (list_of_size (Gen.int_range 1 4) thread_ops)
    (list_of_size (Gen.int_range 0 150) (int_bound 1000))

let interleave per_thread schedule =
  let queues =
    List.mapi
      (fun i ops ->
        let tid = i + 1 in
        ref
          (List.map
             (fun (acq, l) ->
               let lock = Printf.sprintf "l%d" l in
               if acq then ev_acq tid lock else ev_rel tid lock)
             ops))
      per_thread
  in
  let out = ref [] in
  List.iter
    (fun s ->
      match List.filter (fun q -> !q <> []) queues with
      | [] -> ()
      | live -> (
        let q = List.nth live (s mod List.length live) in
        match !q with
        | e :: rest ->
          out := e :: !out;
          q := rest
        | [] -> assert false))
    schedule;
  List.iter (fun q -> out := List.rev_append !q !out) queues;
  List.rev !out

let prop_lockgraph_stable_under_reorder =
  QCheck.Test.make ~count:200
    ~name:"verdict stable under cross-thread reorder" shared_locks_threads
    (fun (per_thread, schedule) ->
      let a = Lockgraph.analyze (Log.of_events (interleave per_thread schedule)) in
      let b = Lockgraph.analyze (Log.of_events (interleave per_thread [])) in
      Lockgraph.cyclic_locks a = Lockgraph.cyclic_locks b
      && Lockgraph.ok a = Lockgraph.ok b)

(* --- analysis passes ----------------------------------------------------- *)

let test_pass_for_level () =
  let names level = List.map (fun p -> p.Pass.name) (Pass.for_level level) in
  Alcotest.(check bool) "race pass only at `Full" true
    (List.mem "race" (names `Full) && not (List.mem "race" (names `View)));
  List.iter
    (fun level ->
      Alcotest.(check bool) "lint and lockgraph at every level" true
        (List.mem "lint" (names level) && List.mem "lockgraph" (names level)))
    [ `Io; `View; `Full ]

let test_pass_lockgraph_diags () =
  let p = Pass.lockgraph () in
  List.iter p.Pass.feed
    [
      ev_acq 1 "a"; ev_acq 1 "b"; ev_rel 1 "b"; ev_rel 1 "a";
      ev_acq 2 "b"; ev_acq 2 "a"; ev_rel 2 "a"; ev_rel 2 "b";
    ];
  let s = p.Pass.finish () in
  Alcotest.(check int) "one error" 1 s.Pass.errors;
  Alcotest.(check bool) "not clean" false (Pass.clean s);
  (match s.Pass.diags with
  | [ d ] ->
    Alcotest.(check string) "diag id" "lock-order-cycle" d.Pass.id;
    Alcotest.(check bool) "text names both locks" true
      (contains ~sub:"a" d.Pass.text && contains ~sub:"b" d.Pass.text)
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
  (* a clean stream finishes clean *)
  let p = Pass.lockgraph () in
  List.iter p.Pass.feed [ ev_acq 1 "a"; ev_rel 1 "a" ];
  Alcotest.(check bool) "clean stream" true (Pass.clean (p.Pass.finish ()))

let suite =
  [
    ("vclock: basics", `Quick, test_vclock_basics);
    ("racedetect: unsynchronized writes race", `Quick, test_race_unsynchronized_writes);
    ("racedetect: lock discipline orders", `Quick, test_race_lock_discipline_orders);
    ("racedetect: read/write asymmetry", `Quick, test_race_read_write);
    ("racedetect: spawn inheritance", `Quick, test_race_spawn_inheritance);
    ("racedetect+reduction: sub-`Full log refused", `Quick, test_race_level_guard);
    QCheck_alcotest.to_alcotest prop_single_threaded_race_free;
    ("§8 pin: zero HB races where reduction alarms", `Quick, test_hb_vs_lockset_on_correct_multiset);
    ("§8 pin: genuine race confirmed by both", `Quick, test_hb_confirms_genuine_race);
    ("lint: clean log", `Quick, test_lint_clean);
    ("lint: commit discipline", `Quick, test_lint_commit_discipline);
    ("lint: unbalanced commit blocks", `Quick, test_lint_unbalanced_blocks);
    ("lint: locks and returns", `Quick, test_lint_locks_and_returns);
    ("lint: daemon threads exempt", `Quick, test_lint_daemon_threads_exempt);
    ("lint: commit-missing on Io-level logs", `Quick, test_lint_commit_missing);
    ("lint: real instrumentation lints clean", `Quick, test_lint_real_logs_clean);
    ("lockgraph: ABBA cycle with witnesses", `Quick, test_lockgraph_reports_abba);
    ("lockgraph: gate-lock suppression", `Quick, test_lockgraph_gate_suppression);
    ("lockgraph: single-thread suppression", `Quick, test_lockgraph_single_thread_suppression);
    ("lockgraph: reentrancy and level tolerance", `Quick, test_lockgraph_reentrant_and_levels);
    QCheck_alcotest.to_alcotest prop_lockgraph_single_threaded_clean;
    QCheck_alcotest.to_alcotest prop_lockgraph_disjoint_threads_clean;
    QCheck_alcotest.to_alcotest prop_lockgraph_stable_under_reorder;
    ("pass: level-aware selection", `Quick, test_pass_for_level);
    ("pass: lockgraph diagnostics", `Quick, test_pass_lockgraph_diags);
  ]
