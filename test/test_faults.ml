(* The fault-injection registry validating the checker itself (lib/faults +
   lib/harness/mutants):

   - every registered mutant, armed alone, is detected in `View mode under a
     deterministic regime (coop seed sweep or bounded exploration);
   - the unmutated subjects stay violation-free under the very same seeds —
     arming and disarming leaves no residue, so there are no false positives;
   - the registry itself behaves: disarmed by default, with_armed restores on
     exceptions, double registration rejected. *)

open Vyrd
open Vyrd_harness
module Faults = Vyrd_faults.Faults

(* Touch the subject libraries so their module initializers run and register
   their faults even if nothing else in the binary forces the dependency. *)
let all_subjects = Subjects.all

let test_cfg =
  {
    Mutants.quick with
    seeds = 120;
    native_runs = 0 (* native is non-deterministic: exercised by dev/mutants *);
  }

let test_registry_populated () =
  let faults = Faults.registered () in
  Alcotest.(check bool)
    (Fmt.str "at least 5 mutants registered (got %d)" (List.length faults))
    true
    (List.length faults >= 5);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Faults.name f ^ " disarmed by default")
        false (Faults.enabled f);
      (* every fault points at a subject the harness can actually drive *)
      ignore (Subjects.find (Faults.subject f)))
    faults

let test_each_mutant_detected_in_view_mode () =
  List.iter
    (fun f ->
      let row = Mutants.run_fault test_cfg f in
      if not (Mutants.expected_detections_hold row) then
        Alcotest.failf
          "%s (kind %s): required detections missing — refinement mutants \
           need a deterministic `View detection, deadlock mutants a \
           lockgraph cycle plus a real hang, benign mutants silence"
          (Faults.name f)
          (Faults.kind_id (Faults.kind f));
      Alcotest.(check bool)
        (Faults.name f ^ " left disarmed after the run")
        false (Faults.enabled f))
    (Faults.registered ())

let test_detection_matrix_shape () =
  (* the acceptance inequality of Table 1 on ground truth: for at least one
     state-corrupting mutant, view-mode methods-to-detection <= io-mode *)
  let rows = List.map (Mutants.run_fault test_cfg) (Faults.registered ()) in
  Alcotest.(check bool) "some mutant has view_beats_io" true
    (List.exists Mutants.view_beats_io rows);
  (* and the JSON rendering is well-formed enough to contain every fault *)
  let json = Mutants.to_json rows in
  List.iter
    (fun (r : Mutants.row) ->
      let name = Faults.name r.Mutants.fault in
      Alcotest.(check bool) (name ^ " present in JSON") true
        (let n = String.length json and m = String.length name in
         let rec scan i = i + m <= n && (String.sub json i m = name || scan (i + 1)) in
         scan 0))
    rows

let assert_pass what report =
  if not (Report.is_pass report) then
    Alcotest.failf "%s: expected pass, got %a" what Report.pp report

(* The same seeds the detection sweep uses must stay silent when no fault is
   armed: detections come from the mutants, not from checker noise. *)
let test_unmutated_subjects_stay_clean () =
  Faults.disarm_all ();
  List.iter
    (fun f ->
      let s = Subjects.find (Faults.subject f) in
      for seed = 0 to 9 do
        let log =
          Harness.run
            {
              Harness.default with
              threads = test_cfg.Mutants.threads;
              ops_per_thread = test_cfg.Mutants.ops;
              key_pool = 12;
              key_range = 16;
              seed;
            }
            (s.Subjects.build ~bug:false)
        in
        assert_pass
          (Fmt.str "%s unmutated, seed %d, io" s.Subjects.name seed)
          (Checker.check ~mode:`Io log s.Subjects.spec);
        assert_pass
          (Fmt.str "%s unmutated, seed %d, view" s.Subjects.name seed)
          (Checker.check ~mode:`View ~view:s.Subjects.view
             ~invariants:s.Subjects.invariants log s.Subjects.spec)
      done)
    (Faults.registered ())

let test_arming_leaves_no_residue () =
  (* run a subject with its fault armed, then disarmed again with the same
     seed: the second run must pass — the mutant is a pure function of the
     switch, not an accumulating corruption *)
  List.iter
    (fun f ->
      let s = Subjects.find (Faults.subject f) in
      let run seed =
        Harness.run
          { Harness.default with threads = 4; ops_per_thread = 20; seed }
          (s.Subjects.build ~bug:false)
      in
      (* an armed Deadlock-kind mutant may legitimately hang this schedule;
         the residue question is only about the run after disarming *)
      Faults.with_armed f (fun () ->
          try ignore (run 7) with Vyrd_sched.Coop.Deadlock _ -> ());
      let log = run 7 in
      assert_pass
        (Fmt.str "%s clean after %s disarmed" s.Subjects.name (Faults.name f))
        (Checker.check ~mode:`View ~view:s.Subjects.view
           ~invariants:s.Subjects.invariants log s.Subjects.spec))
    (Faults.registered ())

let test_with_armed_restores_on_exception () =
  let f = List.hd (Faults.registered ()) in
  Alcotest.(check bool) "starts disarmed" false (Faults.enabled f);
  (try
     Faults.with_armed f (fun () ->
         Alcotest.(check bool) "armed inside" true (Faults.enabled f);
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "disarmed after exception" false (Faults.enabled f)

let test_define_rejects_duplicates () =
  let existing = Faults.name (List.hd (Faults.registered ())) in
  match
    Faults.define ~name:existing ~subject:"Multiset-Vector" ~description:"dup"
      ()
  with
  | _ -> Alcotest.fail "duplicate registration accepted"
  | exception Invalid_argument _ -> ()

let suite =
  [
    ("registry populated, disarmed, resolvable", `Quick, test_registry_populated);
    ("every mutant detected in view mode", `Slow, test_each_mutant_detected_in_view_mode);
    ("detection matrix shape (view <= io)", `Slow, test_detection_matrix_shape);
    ("unmutated subjects stay clean", `Slow, test_unmutated_subjects_stay_clean);
    ("arming leaves no residue", `Quick, test_arming_leaves_no_residue);
    ("with_armed restores on exception", `Quick, test_with_armed_restores_on_exception);
    ("define rejects duplicate names", `Quick, test_define_rejects_duplicates);
  ]
