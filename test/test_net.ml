(* The networked verification service: wire-protocol round trips (every
   message, every violation kind inside a verdict), framing corruption
   handling, and end-to-end loopback sessions against a live vyrdd server —
   verdict equality with the offline checker on the checked-in buggy
   example, overload spill with identical re-checked verdicts,
   retry-with-backoff connects, heartbeats vs the idle timeout, and a
   byte-sweep showing that truncating or corrupting a recorded session at
   any point fails that session cleanly (no verdict, server keeps serving). *)

open Vyrd
open Vyrd_harness
open Vyrd_pipeline
open Vyrd_net

let qcheck t = QCheck_alcotest.to_alcotest t

(* --- message codecs -------------------------------------------------------- *)

let exec : Report.exec =
  {
    Report.e_tid = 3;
    e_mid = "insert_pair";
    e_args = [ Repr.Int 51; Repr.Int 52 ];
    e_ret = Some Repr.success;
  }

let stats : Report.stats =
  {
    Report.events_processed = 19;
    methods_checked = 2;
    commits_resolved = 1;
    per_method = [ ("insert", 1); ("insert_pair", 1) ];
    queue_high_water = 508;
  }

(* one report per violation constructor, plus a pass *)
let sample_reports : Report.t list =
  let fail v = { Report.outcome = Report.Fail v; stats } in
  [
    { Report.outcome = Report.Pass; stats };
    fail (Report.Io_violation { exec; commit_ordinal = 4; reason = "no transition" });
    fail (Report.Observer_violation { exec; window = (2, 7) });
    fail
      (Report.View_violation
         {
           exec;
           commit_ordinal = 1;
           view_i = Repr.List [ Repr.Int 26 ];
           view_s = Repr.List [ Repr.Int 51 ];
         });
    fail
      (Report.Invariant_violation
         { exec; commit_ordinal = 9; invariant = "sorted" });
    fail
      (Report.Ill_formed
         { event = Some (Event.Commit { tid = 2 }); reason = "commit w/o call" });
    fail (Report.Ill_formed { event = None; reason = "truncated log" });
  ]

let test_report_roundtrip () =
  List.iter
    (fun r ->
      let b = Buffer.create 128 in
      Wire.put_report b r;
      let r', pos = Wire.get_report (Buffer.contents b) 0 in
      Alcotest.(check bool) (Report.tag r ^ " report survives") true (r = r');
      Alcotest.(check int) "whole buffer consumed" (Buffer.length b) pos)
    sample_reports

let test_server_msg_roundtrip () =
  let msgs =
    [
      Wire.Hello_ack { a_version = 1; a_session = 42; a_credit = 8192; a_spilling = true };
      Wire.Credit 4096;
      Wire.Heartbeat_ack;
      Wire.Error "session idle timeout";
    ]
    @ List.map
        (fun r ->
          Wire.Verdict
            {
              Wire.v_report = r;
              v_fail_index = (if Report.is_pass r then None else Some 18);
              v_events = 508;
              v_spilled = (if Report.is_pass r then Some "/tmp/spill.seg" else None);
            })
        sample_reports
  in
  List.iter
    (fun m ->
      Alcotest.(check bool) "server msg survives" true
        (Wire.decode_server (Wire.encode_server m) = m))
    msgs

let client_msg_eq a b =
  match (a, b) with
  | Wire.Batch x, Wire.Batch y ->
    Array.length x = Array.length y
    && Array.for_all2 Event.equal x y
  | x, y -> x = y

let client_roundtrip =
  qcheck
    (QCheck2.Test.make ~name:"client msg round trip" ~count:200
       QCheck2.Gen.(
         oneof
           [
             return Wire.Heartbeat;
             return Wire.Finish;
             map
               (fun (lvl, producer) ->
                 Wire.Hello { h_version = Wire.version; h_level = lvl; h_producer = producer })
               (pair Test_log.level_gen (string_size (int_range 0 40)));
             map
               (fun evs -> Wire.Batch (Array.of_list evs))
               (list_size (int_range 0 60) Test_log.event_gen);
           ])
       (fun m -> client_msg_eq m (Wire.decode_client (Wire.encode_client m))))

let test_decode_rejects_garbage () =
  (* unknown tag, empty payload, trailing bytes after a valid message *)
  List.iter
    (fun payload ->
      match Wire.decode_client payload with
      | _ -> Alcotest.failf "decoded garbage client payload %S" payload
      | exception Bincodec.Corrupt _ -> ())
    [ ""; "\009"; Wire.encode_client Wire.Finish ^ "x" ];
  List.iter
    (fun payload ->
      match Wire.decode_server payload with
      | _ -> Alcotest.failf "decoded garbage server payload %S" payload
      | exception Bincodec.Corrupt _ -> ())
    [ ""; "\009"; Wire.encode_server Wire.Heartbeat_ack ^ "x" ]

(* --- framing over a socketpair -------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip_and_corruption () =
  let payload = Wire.encode_client (Wire.Hello
      { h_version = Wire.version; h_level = `View; h_producer = "t" }) in
  with_socketpair (fun a b ->
      Wire.write_frame a payload;
      Alcotest.(check string) "frame round trip" payload (Wire.read_frame b));
  (* one flipped payload byte must be caught by the CRC *)
  with_socketpair (fun a b ->
      let bytes = Bytes.of_string (Wire.frame payload) in
      let at = Bytes.length bytes - 1 in
      Bytes.set bytes at (Char.chr (Char.code (Bytes.get bytes at) lxor 0x01));
      ignore (Unix.write a bytes 0 (Bytes.length bytes));
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match Wire.read_frame b with
      | _ -> Alcotest.fail "corrupt frame accepted"
      | exception Bincodec.Corrupt _ -> ());
  (* clean EOF at a frame boundary is Closed, mid-frame is Corrupt *)
  with_socketpair (fun a b ->
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match Wire.read_frame b with
      | _ -> Alcotest.fail "read from closed stream"
      | exception Wire.Closed -> ());
  with_socketpair (fun a b ->
      let framed = Wire.frame payload in
      ignore (Unix.write_substring a framed 0 (String.length framed / 2));
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match Wire.read_frame b with
      | _ -> Alcotest.fail "torn frame accepted"
      | exception Bincodec.Corrupt _ -> ())

let test_addr_of_string () =
  Alcotest.(check bool) "host:port is tcp" true
    (Wire.addr_of_string "127.0.0.1:9090" = Wire.Tcp ("127.0.0.1", 9090));
  Alcotest.(check bool) "path is unix" true
    (Wire.addr_of_string "/tmp/vyrdd.sock" = Wire.Unix_socket "/tmp/vyrdd.sock");
  Alcotest.(check bool) "non-numeric port is a path" true
    (Wire.addr_of_string "host:http" = Wire.Unix_socket "host:http")

(* --- loopback sessions ----------------------------------------------------- *)

(* cwd is _build/default/test under [dune runtest], the repo root under
   [dune exec] *)
let examples_dir () =
  List.find Sys.file_exists [ "examples/logs"; "../../../examples/logs" ]

let subject = Subjects.multiset_vector

let shards _level =
  [ Farm.shard ~mode:`View ~view:subject.Subjects.view subject.Subjects.name
      subject.Subjects.spec ]

let with_server ?window ?max_sessions ?spill_dir ?idle_timeout ?recheck_spills
    ?metrics f =
  let sock = Filename.temp_file "vyrd_net" ".sock" in
  let srv =
    Server.start
      (Server.config ?window ?max_sessions ?spill_dir ?idle_timeout
         ?recheck_spills ?metrics ~addr:(Wire.Unix_socket sock) shards)
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop ~deadline:5. srv;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () -> f srv)

let buggy_log () =
  Log.of_file (Filename.concat (examples_dir ()) "multiset_vector_buggy.log")

let correct_log () =
  Harness.run
    { Harness.default with threads = 4; ops_per_thread = 25; log_level = `View }
    (subject.Subjects.build ~bug:false)

let local_fail_index log =
  let farm = Farm.start ~capacity:4096 ~level:(Log.level log) (shards `View) in
  Log.iter (Farm.feed farm) log;
  let r = Farm.finish farm in
  List.fold_left
    (fun acc (sr : Farm.shard_result) ->
      match (acc, sr.Farm.sr_fail_index) with
      | None, i -> i
      | Some a, Some b -> Some (min a b)
      | Some _, None -> acc)
    None r.Farm.shards

let test_loopback_matches_offline () =
  let log = buggy_log () in
  let offline =
    Checker.check ~mode:`View ~view:subject.Subjects.view log subject.Subjects.spec
  in
  Alcotest.(check bool) "example log is convicting" false (Report.is_pass offline);
  with_server (fun srv ->
      match Client.submit_log ~batch_events:64 (Server.addr srv) log with
      | Client.Spilled _ -> Alcotest.fail "unloaded server spilled"
      | Client.Checked { report; fail_index } ->
        Alcotest.(check string) "same violation kind as offline"
          (Report.tag offline) (Report.tag report);
        Alcotest.(check (option int)) "same fail index as the local farm"
          (local_fail_index log) fail_index)

let test_loopback_correct_run_passes () =
  let log = correct_log () in
  with_server (fun srv ->
      let t = Client.connect ~level:(Log.level log) ~batch_events:32 (Server.addr srv) in
      Log.iter (Client.send t) log;
      Alcotest.(check bool) "not spilling" false (Client.spilling t);
      match Client.finish t with
      | Client.Spilled _ -> Alcotest.fail "unloaded server spilled"
      | Client.Checked { report; fail_index } ->
        Alcotest.(check bool) "passes" true (Report.is_pass report);
        Alcotest.(check (option int)) "no fail index" None fail_index;
        Alcotest.(check int) "every event was sent" (Log.length log)
          (Client.events_sent t);
        Alcotest.(check bool) "framing was accounted" true (Client.bytes_sent t > 0))

let test_serve_analyze_runs_passes () =
  (* a server started with analysis on gives each session its own pass
     instances; their results land in the shared metrics registry *)
  let metrics = Metrics.create () in
  let sock = Filename.temp_file "vyrd_net" ".sock" in
  let srv =
    Server.start
      (Server.config ~analyze:true ~metrics ~addr:(Wire.Unix_socket sock) shards)
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop ~deadline:5. srv;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let log =
        Harness.run
          { Harness.default with threads = 4; ops_per_thread = 25; log_level = `Full }
          (subject.Subjects.build ~bug:false)
      in
      match Client.submit_log ~batch_events:64 (Server.addr srv) log with
      | Client.Spilled _ -> Alcotest.fail "unloaded server spilled"
      | Client.Checked { report; _ } ->
        Alcotest.(check bool) "refinement passes" true (Report.is_pass report);
        Alcotest.(check int) "all three passes ran at `Full" 3
          (Metrics.gauge_value (Metrics.gauge metrics "analysis.passes"));
        Alcotest.(check int) "analysis lane saw every event" (Log.length log)
          (Metrics.value (Metrics.counter metrics "analysis.events"));
        Alcotest.(check int) "no analysis errors on a correct run" 0
          (Metrics.value (Metrics.counter metrics "analysis.errors")))

let test_overload_spills_and_recheck_agrees () =
  let log = buggy_log () in
  let offline =
    Checker.check ~mode:`View ~view:subject.Subjects.view log subject.Subjects.spec
  in
  let dir = Filename.temp_file "vyrd_spill" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      (* max_sessions 0: every session degrades to the segment spool *)
      with_server ~max_sessions:0 ~spill_dir:dir (fun srv ->
          match Client.submit_log (Server.addr srv) log with
          | Client.Checked _ -> Alcotest.fail "overloaded server checked live"
          | Client.Spilled { path; events } ->
            Alcotest.(check int) "spool holds the whole stream" (Log.length log)
              events;
            let r = Segment.read_file path in
            Alcotest.(check bool) "spool reads clean" false r.Segment.truncated;
            Alcotest.(check int) "spool event count" (Log.length log)
              (Log.length r.Segment.log);
            let rechecked =
              Checker.check ~mode:`View ~view:subject.Subjects.view r.Segment.log
                subject.Subjects.spec
            in
            Alcotest.(check string) "re-checked verdict is identical"
              (Report.tag offline) (Report.tag rechecked)))

let test_connect_retries_until_server_appears () =
  let sock = Filename.temp_file "vyrd_late" ".sock" in
  Sys.remove sock;
  let srv = ref None in
  let starter =
    Thread.create
      (fun () ->
        Thread.delay 0.3;
        srv := Some (Server.start (Server.config ~addr:(Wire.Unix_socket sock) shards)))
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join starter;
      (match !srv with Some s -> Server.stop ~deadline:5. s | None -> ());
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      (* the socket does not exist yet: only retry-with-backoff can win *)
      let t = Client.connect ~retries:10 ~backoff:0.05 (Wire.Unix_socket sock) in
      Alcotest.(check bool) "session granted" true (Client.session t >= 0);
      Client.close t)

let test_no_retry_fails_fast () =
  let sock = Filename.temp_file "vyrd_none" ".sock" in
  Sys.remove sock;
  match Client.connect (Wire.Unix_socket sock) with
  | _ -> Alcotest.fail "connected to nothing"
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let test_backoff_is_capped_and_jittered () =
  let sock = Filename.temp_file "vyrd_capped" ".sock" in
  Sys.remove sock;
  (* 4 retries at base 1.0s would sleep ~15s on the uncapped exponential
     curve; with the 0.02s cap (±25% jitter from the seeded Prng) the whole
     dial has to fail in a fraction of a second *)
  let t0 = Unix.gettimeofday () in
  (match
     Client.connect ~retries:4 ~backoff:1.0 ~max_backoff:0.02 ~jitter_seed:42
       (Wire.Unix_socket sock)
   with
  | _ -> Alcotest.fail "connected to nothing"
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "4 capped retries took %.3fs, not seconds" dt)
    true (dt < 1.0)

let test_heartbeat_survives_idle_timeout () =
  let log = correct_log () in
  with_server ~idle_timeout:0.4 (fun srv ->
      let t = Client.connect ~level:(Log.level log) (Server.addr srv) in
      (* stay idle for ~3 timeouts, heartbeating through them *)
      for _ = 1 to 6 do
        Thread.delay 0.2;
        Client.heartbeat t
      done;
      Log.iter (Client.send t) log;
      match Client.finish t with
      | Client.Checked { report; _ } ->
        Alcotest.(check bool) "still verdicts after idling" true
          (Report.is_pass report)
      | Client.Spilled _ -> Alcotest.fail "unloaded server spilled")

let test_idle_timeout_fails_session_cleanly () =
  with_server ~idle_timeout:0.3 (fun srv ->
      let t = Client.connect (Server.addr srv) in
      Thread.delay 1.0;
      (match Client.finish t with
      | _ -> Alcotest.fail "timed-out session still produced a verdict"
      | exception Client.Server_error _ -> ());
      (* the failure was contained: the same server still serves *)
      match Client.submit_log (Server.addr srv) (correct_log ()) with
      | Client.Checked { report; _ } ->
        Alcotest.(check bool) "server survived the timeout" true
          (Report.is_pass report)
      | Client.Spilled _ -> Alcotest.fail "unloaded server spilled")

(* --- byte sweep over a recorded session ------------------------------------ *)

(* A valid session, as raw bytes. *)
let session_bytes log =
  let evs = Array.sub (Log.snapshot log) 0 (min 40 (Log.length log)) in
  String.concat ""
    [
      Wire.frame
        (Wire.encode_client
           (Wire.Hello
              { h_version = Wire.version; h_level = Log.level log; h_producer = "sweep" }));
      Wire.frame (Wire.encode_client (Wire.Batch evs));
      Wire.frame (Wire.encode_client Wire.Finish);
    ]

(* Push raw bytes at the server, close our write side, and collect every
   server reply until it hangs up.  Returns [true] iff a complete, decodable
   verdict frame came back. *)
let raw_session srv bytes =
  let sockaddr = Wire.sockaddr_of_addr (Server.addr srv) in
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd sockaddr;
      (match Unix.write_substring fd bytes 0 (String.length bytes) with
      | (_ : int) -> ()
      | exception Unix.Unix_error (Unix.EPIPE, _, _) ->
        (* the server already failed the session and hung up *)
        ());
      (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
      let saw_verdict = ref false in
      let continue = ref true in
      while !continue do
        match Wire.recv_server fd with
        | Wire.Verdict _ -> saw_verdict := true
        | _ -> ()
        | exception (Wire.Closed | Bincodec.Corrupt _ | Unix.Unix_error _) ->
          continue := false
      done;
      !saw_verdict)

let test_session_byte_sweep () =
  let log = correct_log () in
  let whole = session_bytes log in
  let len = String.length whole in
  with_server (fun srv ->
      Alcotest.(check bool) "the untouched session verdicts" true
        (raw_session srv whole);
      (* truncation at every prefix length and a single-byte corruption at a
         stride of positions: the session must fail cleanly — no verdict —
         and the server must keep serving *)
      let cuts = ref 0 in
      for cut = 0 to len - 1 do
        if cut mod 17 = 0 then begin
          incr cuts;
          if raw_session srv (String.sub whole 0 cut) then
            Alcotest.failf "verdict from a session truncated at %d/%d" cut len
        end
      done;
      for at = 0 to len - 1 do
        if at mod 13 = 0 then begin
          incr cuts;
          let bytes = Bytes.of_string whole in
          Bytes.set bytes at (Char.chr (Char.code (Bytes.get bytes at) lxor 0xa5));
          if raw_session srv (Bytes.to_string bytes) then
            Alcotest.failf "verdict from a session corrupted at byte %d/%d" at len
        end
      done;
      Alcotest.(check bool) "sweep exercised many cut points" true (!cuts > 30);
      Alcotest.(check bool) "server still verdicts after the sweep" true
        (raw_session srv whole);
      Alcotest.(check bool) "failed sessions were counted" true
        (Metrics.value (Metrics.counter (Server.metrics srv) "net.sessions_failed")
        >= !cuts))

(* The server can only ever grant [window] credit in total, so a client batch
   larger than the window must be clamped at connect time or flush would wait
   for credit that cannot arrive. *)
let test_oversized_batch_clamped_to_window () =
  let log = correct_log () in
  with_server ~window:8 (fun srv ->
      let t =
        Client.connect ~level:(Log.level log) ~batch_events:1024 (Server.addr srv)
      in
      Log.iter (Client.send t) log;
      match Client.finish t with
      | Client.Checked { report; _ } ->
        Alcotest.(check bool) "oversized batch still verdicts" true
          (Report.is_pass report);
        Alcotest.(check int) "every event was sent" (Log.length log)
          (Client.events_sent t)
      | Client.Spilled _ -> Alcotest.fail "unloaded server spilled")

(* A CRC-valid frame whose payload smuggles a near-max_int string length must
   fail only that session — and release its checking slot.  With max_sessions
   1, a pinned slot would force the follow-up submit into the spill path. *)
let test_hostile_length_frame_releases_slot () =
  let hostile =
    let b = Buffer.create 32 in
    Buffer.add_char b '\001' (* Batch *);
    Bincodec.put_uvarint b 1;
    Buffer.add_char b '\000' (* Call *);
    Bincodec.put_uvarint b 0 (* tid *);
    Bincodec.put_uvarint b max_int (* method-name length *);
    String.concat ""
      [
        Wire.frame
          (Wire.encode_client
             (Wire.Hello
                { h_version = Wire.version; h_level = `View; h_producer = "evil" }));
        Wire.frame (Buffer.contents b);
      ]
  in
  with_server ~max_sessions:1 (fun srv ->
      for _ = 1 to 3 do
        if raw_session srv hostile then
          Alcotest.fail "hostile length frame produced a verdict"
      done;
      let deadline = Unix.gettimeofday () +. 5. in
      while Server.active srv > 0 && Unix.gettimeofday () < deadline do
        Thread.delay 0.02
      done;
      Alcotest.(check int) "no session left pinned" 0 (Server.active srv);
      match Client.submit_log (Server.addr srv) (correct_log ()) with
      | Client.Checked { report; _ } ->
        Alcotest.(check bool) "slot was released for live checking" true
          (Report.is_pass report)
      | Client.Spilled _ -> Alcotest.fail "checking slot still pinned: spilled")

(* --- fd hygiene ------------------------------------------------------------ *)

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_corrupt_reader_does_not_leak_fds () =
  (* a segment file whose payload passes its CRC but lies about its event
     count: [read_file] must raise Corrupt from inside the decode, and the
     file descriptor must still be released *)
  let path = Filename.temp_file "vyrd_leak" ".seg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let payload =
        let b = Buffer.create 64 in
        Bincodec.put_event b (Event.Commit { tid = 1 });
        Bincodec.put_event b (Event.Commit { tid = 2 });
        Buffer.contents b
      in
      let head = Bytes.create 12 in
      Bytes.set_int32_le head 0 (Int32.of_int (String.length payload));
      Bytes.set_int32_le head 4 (Int32.of_int (Bincodec.crc32 payload));
      Bytes.set_int32_le head 8 3l (* declares 3 events, contains 2 *);
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "VYRDB1";
          Out_channel.output_char oc '\002';
          Out_channel.output_bytes oc head;
          Out_channel.output_string oc payload);
      let before = count_fds () in
      for _ = 1 to 10 do
        match Segment.read_file path with
        | _ -> Alcotest.fail "lying segment accepted"
        | exception Bincodec.Corrupt _ -> ()
      done;
      Alcotest.(check int) "no fd leaked across 10 corrupt reads" before
        (count_fds ()))

let test_loopback_sessions_do_not_leak_fds () =
  with_server (fun srv ->
      (* session threads tear down asynchronously after the verdict, so both
         fd counts must be sampled with the server quiescent *)
      let quiesce () =
        let deadline = Unix.gettimeofday () +. 5. in
        while Server.active srv > 0 && Unix.gettimeofday () < deadline do
          Thread.delay 0.02
        done
      in
      let log = correct_log () in
      ignore (Client.submit_log (Server.addr srv) log : Client.outcome);
      quiesce ();
      let before = count_fds () in
      for _ = 1 to 5 do
        ignore (Client.submit_log (Server.addr srv) log : Client.outcome)
      done;
      quiesce ();
      Alcotest.(check int) "no fd leaked across 5 sessions" before (count_fds ()))

(* --- cluster protocol messages --------------------------------------------- *)

let test_cluster_msg_roundtrip () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "cluster client msg survives" true
        (Wire.decode_client (Wire.encode_client m) = m))
    [
      Wire.Resume_session "/tmp/spool-000042.seg";
      Wire.Checkpoint_request;
      Wire.Drain;
      Wire.Status_request;
      Wire.Register "w3";
    ];
  List.iter
    (fun m ->
      Alcotest.(check bool) "cluster server msg survives" true
        (Wire.decode_server (Wire.encode_server m) = m))
    [
      Wire.Resume_ack
        { ra_events = 12345; ra_resumed_at = Some 9000; ra_replayed = 3345 };
      Wire.Resume_ack { ra_events = 7; ra_resumed_at = None; ra_replayed = 7 };
      Wire.Checkpoint_state
        {
          cs_events = 512;
          cs_state = Some (Repr.List [ Repr.Int 1; Repr.success ]);
        };
      Wire.Checkpoint_state { cs_events = 0; cs_state = None };
      Wire.Status
        {
          st_draining = true;
          st_active = 3;
          st_checking = 2;
          st_metrics = Metrics.encode (Metrics.create ());
        };
      Wire.Status
        { st_draining = false; st_active = 0; st_checking = 0; st_metrics = "" };
    ]

(* --- spill reclaim --------------------------------------------------------- *)

let test_spill_reclaimed_after_recheck () =
  (* a clean spilled session whose opportunistic re-check verifies the spool
     end to end gets its disk back, and net.spill_reclaimed counts it *)
  let log = correct_log () in
  let dir = Filename.temp_file "vyrd_reclaim" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let metrics = Metrics.create () in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      with_server ~max_sessions:1 ~spill_dir:dir ~recheck_spills:true ~metrics
        (fun srv ->
          (* [holder] pins the only checking slot, so [b] spills *)
          let holder = Client.connect (Server.addr srv) in
          let b = Client.connect ~level:(Log.level log) (Server.addr srv) in
          Alcotest.(check bool) "second session spills" true (Client.spilling b);
          Log.iter (Client.send b) log;
          Client.flush b;
          (* free the slot before [b] closes: the close-time re-check obeys
             the same slot accounting as live sessions *)
          (match Client.finish holder with
          | Client.Checked _ | Client.Spilled _ -> ());
          Thread.delay 0.2;
          match Client.finish b with
          | Client.Checked _ -> Alcotest.fail "slotless session checked live"
          | Client.Spilled { path; events } ->
            Alcotest.(check int) "spool consumed the whole stream"
              (Log.length log) events;
            (* the re-check runs in the server's session thread after the
               client has its verdict: wait for the reclaim *)
            let deadline = Unix.gettimeofday () +. 5. in
            while Sys.file_exists path && Unix.gettimeofday () < deadline do
              Thread.delay 0.05
            done;
            Alcotest.(check bool) "clean spool deleted from disk" false
              (Sys.file_exists path);
            Alcotest.(check int) "net.spill_reclaimed counted it" 1
              (Metrics.value (Metrics.counter metrics "net.spill_reclaimed"));
            Alcotest.(check int) "the re-check itself was counted" 1
              (Metrics.value (Metrics.counter metrics "net.spill_rechecks"))))

(* --- SIGTERM drains the daemon --------------------------------------------- *)

let test_serve_sigterm_drains () =
  (* a real vyrdd process: SIGTERM must drain and exit 0 exactly like
     SIGINT, not die mid-session with the default fatal behavior *)
  let exe =
    List.find Sys.file_exists
      [ "../bin/vyrd_check.exe"; "_build/default/bin/vyrd_check.exe" ]
  in
  let sock = Filename.temp_file "vyrd_term" ".sock" in
  Sys.remove sock;
  let out_path = Filename.temp_file "vyrd_term" ".out" in
  let out_fd =
    Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
  in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "--listen"; sock; "--subjects"; "Multiset-Vector" |]
      Unix.stdin out_fd out_fd
  in
  Unix.close out_fd;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [ Unix.WNOHANG ] pid)
       with Unix.Unix_error _ -> ());
      (try Sys.remove out_path with Sys_error _ -> ());
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let log = buggy_log () in
      (* the retrying connect doubles as the wait for the daemon to be up *)
      (match
         Client.submit_log ~retries:20 ~backoff:0.05 (Wire.Unix_socket sock) log
       with
      | Client.Checked { report; _ } ->
        Alcotest.(check bool) "daemon convicts the buggy log" false
          (Report.is_pass report)
      | Client.Spilled _ -> Alcotest.fail "unloaded daemon spilled");
      Unix.kill pid Sys.sigterm;
      let deadline = Unix.gettimeofday () +. 10. in
      let rec await () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
          if Unix.gettimeofday () > deadline then
            Alcotest.fail "daemon ignored SIGTERM"
          else begin
            Thread.delay 0.05;
            await ()
          end
        | _, status -> status
      in
      (match await () with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED n ->
        Alcotest.fail (Printf.sprintf "daemon exited %d on SIGTERM" n)
      | Unix.WSIGNALED s ->
        Alcotest.fail (Printf.sprintf "daemon died of signal %d" s)
      | Unix.WSTOPPED _ -> Alcotest.fail "daemon stopped instead of exiting");
      let ic = open_in out_path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "SIGTERM took the drain path" true
        (contains text "draining"))

let suite =
  [
    ("report codec round trip", `Quick, test_report_roundtrip);
    ("server msg round trip", `Quick, test_server_msg_roundtrip);
    client_roundtrip;
    ("garbage payloads rejected", `Quick, test_decode_rejects_garbage);
    ("framing round trip / CRC / torn", `Quick, test_frame_roundtrip_and_corruption);
    ("address parsing", `Quick, test_addr_of_string);
    ("loopback verdict = offline checker", `Quick, test_loopback_matches_offline);
    ("loopback correct run passes", `Quick, test_loopback_correct_run_passes);
    ("serve with analysis passes on", `Quick, test_serve_analyze_runs_passes);
    ( "overload spills; re-check agrees",
      `Quick,
      test_overload_spills_and_recheck_agrees );
    ( "connect retries until the server appears",
      `Quick,
      test_connect_retries_until_server_appears );
    ("no-retry connect fails fast", `Quick, test_no_retry_fails_fast);
    ("retry backoff is capped", `Quick, test_backoff_is_capped_and_jittered);
    ("heartbeat survives the idle timeout", `Quick, test_heartbeat_survives_idle_timeout);
    ( "idle timeout fails the session cleanly",
      `Quick,
      test_idle_timeout_fails_session_cleanly );
    ("session byte sweep never yields a verdict", `Quick, test_session_byte_sweep);
    ( "oversized batch is clamped to the window",
      `Quick,
      test_oversized_batch_clamped_to_window );
    ( "hostile length frame releases its slot",
      `Quick,
      test_hostile_length_frame_releases_slot );
    ( "corrupt segment reader releases its fd",
      `Quick,
      test_corrupt_reader_does_not_leak_fds );
    ("loopback sessions release their fds", `Quick, test_loopback_sessions_do_not_leak_fds);
    ("cluster msg round trip", `Quick, test_cluster_msg_roundtrip);
    ( "clean spill re-check reclaims the spool",
      `Quick,
      test_spill_reclaimed_after_recheck );
    ("SIGTERM drains the daemon like SIGINT", `Quick, test_serve_sigterm_drains);
  ]
