(* Temporal-property monitors: differential qcheck of the incremental
   progression engine against the reference whole-trace evaluator,
   agreement of the lock-reversal pack with the static lock-order graph,
   the built-in packs' unit behavior, the spec parser, Explore
   composition, histogram-quantile properties and the negative-observe
   clamp counter, and the vyrdd SIGUSR1 regression (metrics dumps must
   not run inside the signal handler). *)

open Vyrd
module Monitor = Vyrd_monitor.Monitor
module Lockgraph = Vyrd_analysis.Lockgraph
module Metrics = Vyrd_pipeline.Metrics
module Explore = Vyrd_sched.Explore
module Sched = Vyrd_sched.Sched
module Harness = Vyrd_harness.Harness
module Subjects = Vyrd_harness.Subjects
module Wire = Vyrd_net.Wire
module Client = Vyrd_net.Client

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

(* --- random formulas and traces ------------------------------------------ *)

(* Atoms are drawn from a fixed table so equal names imply equal
   predicates, as the interface requires. *)
let atom_table =
  [
    ("acquire(a)",
     function Event.Acquire { lock; _ } -> lock = "a" | _ -> false);
    ("release(a)",
     function Event.Release { lock; _ } -> lock = "a" | _ -> false);
    ("call(m)", function Event.Call { mid; _ } -> mid = "m" | _ -> false);
    ("commit", function Event.Commit _ -> true | _ -> false);
    ("any", fun _ -> true);
  ]

let gen_formula =
  let open QCheck.Gen in
  let atom_g =
    oneofl atom_table >|= fun (n, p) -> Monitor.atom n p
  in
  sized_size (int_bound 8)
    (fix (fun self n ->
         if n <= 0 then
           frequency
             [ (3, atom_g); (1, return Monitor.tt); (1, return Monitor.ff) ]
         else
           frequency
             [
               (1, atom_g);
               (2, self (n - 1) >|= Monitor.not_);
               (2, pair (self (n / 2)) (self (n / 2)) >|= fun (a, b) ->
                   Monitor.and_ a b);
               (2, pair (self (n / 2)) (self (n / 2)) >|= fun (a, b) ->
                   Monitor.or_ a b);
               (1, pair (self (n / 2)) (self (n / 2)) >|= fun (a, b) ->
                   Monitor.implies a b);
               (2, self (n - 1) >|= Monitor.next);
               (2, pair (self (n / 2)) (self (n / 2)) >|= fun (a, b) ->
                   Monitor.until a b);
               (2, self (n - 1) >|= Monitor.eventually);
               (2, self (n - 1) >|= Monitor.always);
               (1, pair (int_bound 4) (self (n - 1)) >|= fun (k, g) ->
                   Monitor.within k g);
             ]))

let gen_event =
  QCheck.Gen.oneofl
    [
      Event.Acquire { tid = 1; lock = "a" };
      Event.Release { tid = 1; lock = "a" };
      Event.Call { tid = 1; mid = "m"; args = [] };
      Event.Commit { tid = 2 };
      Event.Call { tid = 2; mid = "n"; args = [] };
    ]

let gen_trace = QCheck.Gen.(list_size (int_bound 12) gen_event)

let formula_trace =
  QCheck.make
    ~print:(fun (f, evs) ->
      Fmt.str "%a over [%a]" Monitor.pp_f f
        Fmt.(list ~sep:semi Event.pp)
        evs)
    QCheck.Gen.(pair gen_formula gen_trace)

(* The core differential property: feeding the whole trace through the
   progression engine and resolving at stream end agrees with the classic
   recursive LTLf evaluator. *)
let prop_incremental_matches_reference =
  QCheck.Test.make ~count:2000
    ~name:"incremental verdict = whole-trace reference eval" formula_trace
    (fun (f, evs) ->
      let trace = Array.of_list evs in
      let m = Monitor.of_formula ~name:"p" f in
      Array.iter (Monitor.feed m) trace;
      let expected = Monitor.eval f trace in
      match Monitor.finish m with
      | Monitor.Sat -> expected
      | Monitor.Viol _ -> not expected
      | Monitor.Pending -> false)

(* Early verdicts are sticky: once the stream makes the formula
   unavoidable (either way), extensions cannot flip it. *)
let prop_verdict_sticky =
  QCheck.Test.make ~count:1000 ~name:"mid-stream verdicts are final"
    formula_trace (fun (f, evs) ->
      let m = Monitor.of_formula ~name:"p" f in
      let first = ref None in
      List.iter
        (fun ev ->
          Monitor.feed m ev;
          if !first = None then
            match Monitor.verdict m with
            | Monitor.Pending -> ()
            | v -> first := Some v)
        evs;
      let final = Monitor.finish m in
      match (!first, final) with
      | None, _ -> true
      | Some (Monitor.Viol _), Monitor.Viol _ -> true
      | Some Monitor.Sat, Monitor.Sat -> true
      | Some _, _ -> false)

let prop_witness_in_range =
  QCheck.Test.make ~count:1000 ~name:"violation witness index is in range"
    formula_trace (fun (f, evs) ->
      let m = Monitor.of_formula ~name:"p" f in
      List.iter (Monitor.feed m) evs;
      match Monitor.finish m with
      | Monitor.Viol w -> w.Monitor.at >= 0 && w.Monitor.at <= List.length evs
      | Monitor.Sat | Monitor.Pending -> true)

(* --- lock-reversal pack vs the static lock-order graph ------------------- *)

(* Single-pair traces: every thread performs well-nested sessions over the
   pair {a,b}, optionally wrapped in a shared gate lock held outermost.
   On this family the only possible cycle is the 2-cycle a<->b, which both
   analyses judge with the same distinct-thread and gate-lock
   suppressions, so their verdicts must coincide exactly. *)
let gen_session =
  QCheck.Gen.(
    triple (int_range 1 3) bool bool >|= fun (tid, gated, a_first) ->
    let x = if a_first then "a" else "b" in
    let y = if a_first then "b" else "a" in
    (if gated then [ Event.Acquire { tid; lock = "g" } ] else [])
    @ [
        Event.Acquire { tid; lock = x };
        Event.Acquire { tid; lock = y };
        Event.Release { tid; lock = y };
        Event.Release { tid; lock = x };
      ]
    @ if gated then [ Event.Release { tid; lock = "g" } ] else [])

let gen_pair_trace =
  QCheck.Gen.(list_size (int_bound 8) gen_session >|= List.concat)

let prop_lock_reversal_matches_lockgraph =
  QCheck.Test.make ~count:500
    ~name:"lock-reversal monitor = lockgraph on single-pair traces"
    (QCheck.make
       ~print:(fun evs -> Fmt.str "[%a]" Fmt.(list ~sep:semi Event.pp) evs)
       gen_pair_trace)
    (fun evs ->
      let m = Monitor.lock_reversal () in
      List.iter (Monitor.feed m) evs;
      let monitor_convicts =
        match Monitor.finish m with
        | Monitor.Viol _ -> true
        | Monitor.Sat | Monitor.Pending -> false
      in
      let graph_convicts =
        not (Lockgraph.ok (Lockgraph.analyze (Log.of_events evs)))
      in
      monitor_convicts = graph_convicts)

(* --- built-in pack unit behavior ----------------------------------------- *)

let reversal_trace =
  [
    Event.Acquire { tid = 1; lock = "a" };
    Event.Acquire { tid = 1; lock = "b" };
    Event.Release { tid = 1; lock = "b" };
    Event.Release { tid = 1; lock = "a" };
    Event.Acquire { tid = 2; lock = "b" };
    Event.Acquire { tid = 2; lock = "a" };
    (* <- convicted here, index 5 *)
    Event.Release { tid = 2; lock = "a" };
    Event.Release { tid = 2; lock = "b" };
  ]

let test_lock_reversal_convicts () =
  let m = Monitor.lock_reversal () in
  List.iteri
    (fun i ev ->
      Monitor.feed m ev;
      if i < 5 then
        match Monitor.verdict m with
        | Monitor.Viol _ -> Alcotest.fail "convicted before the reversal"
        | _ -> ())
    reversal_trace;
  match Monitor.finish m with
  | Monitor.Viol w ->
    Alcotest.(check int) "witness at the reversing acquire" 5 w.Monitor.at;
    Alcotest.(check (option int)) "witness thread" (Some 2) w.Monitor.tid
  | Monitor.Sat | Monitor.Pending ->
    Alcotest.fail "reversal not convicted"

let test_lock_reversal_gate_suppressed () =
  let gate tid body =
    (Event.Acquire { tid; lock = "g" } :: body)
    @ [ Event.Release { tid; lock = "g" } ]
  in
  let m = Monitor.lock_reversal () in
  List.iter (Monitor.feed m)
    (gate 1
       [
         Event.Acquire { tid = 1; lock = "a" };
         Event.Acquire { tid = 1; lock = "b" };
         Event.Release { tid = 1; lock = "b" };
         Event.Release { tid = 1; lock = "a" };
       ]
    @ gate 2
        [
          Event.Acquire { tid = 2; lock = "b" };
          Event.Acquire { tid = 2; lock = "a" };
          Event.Release { tid = 2; lock = "a" };
          Event.Release { tid = 2; lock = "b" };
        ]);
  match Monitor.finish m with
  | Monitor.Viol _ -> Alcotest.fail "gated reversal must be suppressed"
  | Monitor.Sat | Monitor.Pending -> ()

let test_lock_reversal_single_thread_suppressed () =
  let m = Monitor.lock_reversal () in
  List.iter (Monitor.feed m)
    (List.map
       (function
         | Event.Acquire a -> Event.Acquire { a with tid = 1 }
         | Event.Release r -> Event.Release { r with tid = 1 }
         | ev -> ev)
       reversal_trace);
  match Monitor.finish m with
  | Monitor.Viol _ ->
    Alcotest.fail "one thread cannot deadlock with itself (reentrant)"
  | Monitor.Sat | Monitor.Pending -> ()

let test_resource_leak_convicts_at_end () =
  let m = Monitor.resource_leak () in
  List.iter (Monitor.feed m)
    [
      Event.Acquire { tid = 1; lock = "a" };
      Event.Acquire { tid = 1; lock = "b" };
      Event.Release { tid = 1; lock = "b" };
      (* "a" never released *)
      Event.Commit { tid = 1 };
    ];
  (match Monitor.verdict m with
  | Monitor.Viol _ -> Alcotest.fail "leak is only decidable at stream end"
  | _ -> ());
  match Monitor.finish m with
  | Monitor.Viol w ->
    Alcotest.(check int) "anchored at the unmatched acquire" 0 w.Monitor.at;
    Alcotest.(check (option int)) "holder thread" (Some 1) w.Monitor.tid;
    (match w.Monitor.detail with
    | Some d ->
      Alcotest.(check bool) "detail names the still-held lock" true
        (contains d "a")
    | None -> Alcotest.fail "leak witness carries the still-held set")
  | Monitor.Sat | Monitor.Pending -> Alcotest.fail "leak not convicted"

let test_resource_leak_reentrant_clean () =
  let m = Monitor.resource_leak () in
  List.iter (Monitor.feed m)
    [
      Event.Acquire { tid = 1; lock = "a" };
      Event.Acquire { tid = 1; lock = "a" };
      Event.Release { tid = 1; lock = "a" };
      Event.Release { tid = 1; lock = "a" };
    ];
  match Monitor.finish m with
  | Monitor.Viol _ -> Alcotest.fail "balanced reentrant acquires are clean"
  | Monitor.Sat | Monitor.Pending -> ()

(* --- spec parser ---------------------------------------------------------- *)

let test_parse_ok () =
  List.iter
    (fun s ->
      match Monitor.parse s with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail (Printf.sprintf "%S: %s" s msg))
    [
      "G (call(Insert) -> F return(Insert))";
      "always (acquire(m) -> eventually release(m))";
      "! (true U false) | commit & any";
      "X (within 3 write(top))";
      "G (read(size) -> ! X release(l))";
    ]

let test_parse_err () =
  List.iter
    (fun s ->
      match Monitor.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must not parse" s)
      | Error _ -> ())
    [ ""; "G ((("; "call()"; "within x any"; "true U" ]

let test_parse_semantics () =
  (* the parsed formula means what the combinators mean *)
  let f =
    match Monitor.parse "G (call(m) -> F return(m))" with
    | Ok f -> f
    | Error msg -> Alcotest.fail msg
  in
  let call = Event.Call { tid = 1; mid = "m"; args = [] } in
  let ret = Event.Return { tid = 1; mid = "m"; value = Repr.unit } in
  Alcotest.(check bool) "answered call satisfies" true
    (Monitor.eval f [| call; ret |]);
  Alcotest.(check bool) "unanswered call violates" false
    (Monitor.eval f [| call |]);
  Alcotest.(check bool) "empty trace satisfies an always" true
    (Monitor.eval f [||])

let test_of_spec () =
  (match Monitor.of_spec "lock-reversal" with
  | Ok m ->
    Alcotest.(check string) "builtin resolves" "lock-reversal"
      (Monitor.name m)
  | Error msg -> Alcotest.fail msg);
  (match Monitor.of_spec "G commit" with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  match Monitor.of_spec "no-such-pack(" with
  | Ok _ -> Alcotest.fail "garbage spec resolved"
  | Error _ -> ()

(* --- Explore composition -------------------------------------------------- *)

(* Two threads acquiring {a,b} in opposite orders: some schedules deadlock,
   some complete — a completed trace carries both orders on distinct
   threads with no gate, so the lock-reversal monitor must convict one,
   and the returned decision script must replay to a convicting run. *)
let opposite_order_scenario () =
  let log = Log.create ~level:`Full () in
  let finished = ref 0 in
  let main (sched : Sched.t) =
    let ctx = Instrument.make sched log in
    let a = Instrument.mutex ctx ~name:"a" in
    let b = Instrument.mutex ctx ~name:"b" in
    let locked (m1 : Sched.mutex) (m2 : Sched.mutex) () =
      m1.Sched.lock ();
      m2.Sched.lock ();
      m2.Sched.unlock ();
      m1.Sched.unlock ();
      incr finished
    in
    sched.Sched.spawn (locked a b);
    sched.Sched.spawn (locked b a)
  in
  (main, fun () -> if !finished = 2 then Some log else None)

let test_first_violation () =
  let outcome =
    Monitor.first_violation ~max_schedules:2_000
      ~monitors:(fun () -> [ Monitor.lock_reversal () ])
      opposite_order_scenario
  in
  (match outcome.Monitor.violation with
  | Some (name, w) ->
    Alcotest.(check string) "the reversal monitor convicted" "lock-reversal"
      name;
    Alcotest.(check bool) "witness index in the trace" true (w.Monitor.at > 0)
  | None -> Alcotest.fail "no violating schedule found");
  match outcome.Monitor.schedule with
  | None -> Alcotest.fail "violation carries no schedule certificate"
  | Some script ->
    (* the certificate replays deterministically to a convicting trace *)
    let main, log_of = opposite_order_scenario () in
    Explore.replay script main;
    (match log_of () with
    | None -> Alcotest.fail "replayed schedule did not complete"
    | Some log ->
      let m = Monitor.lock_reversal () in
      Log.iter (Monitor.feed m) log;
      (match Monitor.finish m with
      | Monitor.Viol _ -> ()
      | Monitor.Sat | Monitor.Pending ->
        Alcotest.fail "replayed schedule is not a violation witness"))

(* --- histogram quantiles (qcheck) ---------------------------------------- *)

let observations =
  QCheck.Gen.(list_size (int_range 1 64) (int_bound 100_000))

let hist_of vs =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  List.iter (Metrics.observe h) vs;
  (m, h)

let prop_quantile_le_max =
  QCheck.Test.make ~count:500 ~name:"quantile <= hist_max"
    (QCheck.make
       ~print:QCheck.Print.(pair (list int) float)
       QCheck.Gen.(pair observations (float_bound_inclusive 1.)))
    (fun (vs, q) ->
      let _, h = hist_of vs in
      Metrics.quantile h q <= Metrics.hist_max h)

let prop_quantile_monotone =
  QCheck.Test.make ~count:500 ~name:"quantile monotone in q"
    (QCheck.make
       ~print:QCheck.Print.(triple (list int) float float)
       QCheck.Gen.(
         triple observations (float_bound_inclusive 1.)
           (float_bound_inclusive 1.)))
    (fun (vs, q1, q2) ->
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      let _, h = hist_of vs in
      Metrics.quantile h lo <= Metrics.quantile h hi)

let prop_quantile_merge_bounded =
  QCheck.Test.make ~count:500
    ~name:"merged quantile <= max of inputs' maxima"
    (QCheck.make
       ~print:QCheck.Print.(triple (list int) (list int) float)
       QCheck.Gen.(
         triple observations observations (float_bound_inclusive 1.)))
    (fun (va, vb, q) ->
      let ma, ha = hist_of va in
      let mb, hb = hist_of vb in
      let bound = max (Metrics.hist_max ha) (Metrics.hist_max hb) in
      Metrics.merge ~into:ma mb;
      Metrics.quantile ha q <= bound)

(* --- negative-observe clamp counter -------------------------------------- *)

let test_observe_clamp_counted () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  Metrics.observe h 5;
  Metrics.observe h (-3);
  Metrics.observe h (-1);
  Alcotest.(check int) "clamped observations counted" 2
    (Metrics.value (Metrics.counter m "lat.clamped"));
  Alcotest.(check int) "clamped values recorded as 0" 3 (Metrics.hist_count h);
  let json = Metrics.to_json m in
  Alcotest.(check bool) "clamp counter surfaces in JSON" true
    (contains json "lat.clamped");
  Alcotest.(check bool) "clamp counter surfaces in pp" true
    (contains (Fmt.str "%a" Metrics.pp m) "lat.clamped")

let test_observe_clamp_hidden_when_zero () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  Metrics.observe h 5;
  Metrics.observe h 7;
  let json = Metrics.to_json m in
  Alcotest.(check bool) "no spurious clamp counter in JSON" false
    (contains json ".clamped");
  Alcotest.(check bool) "no spurious clamp counter in pp" false
    (contains (Fmt.str "%a" Metrics.pp m) ".clamped")

(* --- vyrdd SIGUSR1 regression --------------------------------------------- *)

(* The daemon's SIGUSR1 handler used to print the metrics registry from
   inside the handler; [Metrics.pp] takes the registry mutex, so a signal
   landing while any thread held it could deadlock the process.  The
   handler now only sets a flag and the main loop dumps.  Regression:
   storm the daemon with SIGUSR1 while it serves and while it drains, and
   require a clean exit with at least one dump in the output. *)
let test_serve_sigusr1_storm () =
  let exe =
    List.find Sys.file_exists
      [ "../bin/vyrd_check.exe"; "_build/default/bin/vyrd_check.exe" ]
  in
  let sock = Filename.temp_file "vyrd_usr1" ".sock" in
  Sys.remove sock;
  let out_path = Filename.temp_file "vyrd_usr1" ".out" in
  let out_fd = Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let pid =
    Unix.create_process exe
      [|
        exe; "serve"; "--listen"; sock; "--subjects"; "Multiset-Vector";
        "--monitor"; "lock-reversal";
      |]
      Unix.stdin out_fd out_fd
  in
  Unix.close out_fd;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [ Unix.WNOHANG ] pid)
       with Unix.Unix_error _ -> ());
      (try Sys.remove out_path with Sys_error _ -> ());
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let log =
        Harness.run
          { Harness.default with threads = 2; ops_per_thread = 10 }
          ((Subjects.find "Multiset-Vector").Subjects.build ~bug:false)
      in
      (* the retrying connect doubles as the wait for the daemon to be up *)
      (match
         Client.submit_log ~retries:20 ~backoff:0.05 (Wire.Unix_socket sock)
           log
       with
      | Client.Checked _ -> ()
      | Client.Spilled _ -> Alcotest.fail "unloaded daemon spilled");
      (* storm while serving: every dump must come from the main loop *)
      for _ = 1 to 10 do
        Unix.kill pid Sys.sigusr1;
        Thread.delay 0.02
      done;
      (match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> ()
      | _, _ -> Alcotest.fail "daemon died under SIGUSR1");
      Unix.kill pid Sys.sigterm;
      (* keep storming during the drain *)
      let deadline = Unix.gettimeofday () +. 10. in
      let rec await () =
        (try Unix.kill pid Sys.sigusr1 with Unix.Unix_error _ -> ());
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
          if Unix.gettimeofday () > deadline then
            Alcotest.fail "daemon hung draining under SIGUSR1"
          else begin
            Thread.delay 0.02;
            await ()
          end
        | _, status -> status
      in
      (match await () with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED n ->
        Alcotest.fail (Printf.sprintf "daemon exited %d under SIGUSR1" n)
      | Unix.WSIGNALED s ->
        Alcotest.fail (Printf.sprintf "daemon died of signal %d" s)
      | Unix.WSTOPPED _ -> Alcotest.fail "daemon stopped instead of exiting");
      let ic = open_in out_path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check bool) "at least one metrics dump happened" true
        (contains text "counters"))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_incremental_matches_reference;
    QCheck_alcotest.to_alcotest prop_verdict_sticky;
    QCheck_alcotest.to_alcotest prop_witness_in_range;
    QCheck_alcotest.to_alcotest prop_lock_reversal_matches_lockgraph;
    ("lock-reversal convicts with witness", `Quick, test_lock_reversal_convicts);
    ("gate lock suppresses the reversal", `Quick,
     test_lock_reversal_gate_suppressed);
    ("single thread suppresses the reversal", `Quick,
     test_lock_reversal_single_thread_suppressed);
    ("resource leak convicts at stream end", `Quick,
     test_resource_leak_convicts_at_end);
    ("balanced reentrant acquires are clean", `Quick,
     test_resource_leak_reentrant_clean);
    ("formula syntax parses", `Quick, test_parse_ok);
    ("malformed specs are rejected", `Quick, test_parse_err);
    ("parsed formulas mean the combinators", `Quick, test_parse_semantics);
    ("of_spec resolves builtins and formulas", `Quick, test_of_spec);
    ("first_violation finds a replayable schedule", `Quick,
     test_first_violation);
    QCheck_alcotest.to_alcotest prop_quantile_le_max;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
    QCheck_alcotest.to_alcotest prop_quantile_merge_bounded;
    ("negative observe counts a clamp", `Quick, test_observe_clamp_counted);
    ("clamp counter hidden when zero", `Quick,
     test_observe_clamp_hidden_when_zero);
    ("SIGUSR1 storm during serve and drain", `Quick,
     test_serve_sigusr1_storm);
  ]
