(* Tests for systematic schedule exploration and its composition with
   refinement checking: bounded verification of small scenarios. *)

open Vyrd
open Vyrd_sched
open Vyrd_multiset

(* --- the explorer itself ------------------------------------------------ *)

let test_sequential_has_one_schedule () =
  (* with only the main fiber there is never more than one runnable fiber:
     exactly one schedule, trivially exhausted *)
  let r =
    Explore.explore (fun () ->
        fun s ->
         for _ = 1 to 5 do
           s.yield ()
         done)
  in
  Alcotest.(check int) "one schedule" 1 r.Explore.schedules;
  Alcotest.(check bool) "exhausted" true r.Explore.exhausted

let test_two_independent_increments () =
  (* two fibers, one yield each: a small, known decision tree; every
     schedule must preserve the lock-protected count *)
  let violations = ref 0 in
  let r =
    Explore.explore (fun () ->
        let counter = ref 0 in
        fun s ->
         let m = s.new_mutex () in
         for _ = 1 to 2 do
           s.spawn (fun () ->
               Sched.with_lock m (fun () ->
                   let v = !counter in
                   s.yield ();
                   counter := v + 1))
         done;
         s.spawn (fun () ->
             (* check after both finished: this fiber is spawned last and
                only reads once runnable queue empties is not guaranteed;
                instead check in-line at the end of main *)
             ());
         ignore (if !counter > 2 then incr violations))
  in
  Alcotest.(check bool) "explored several schedules" true (r.Explore.schedules > 1);
  Alcotest.(check bool) "exhausted" true r.Explore.exhausted;
  Alcotest.(check int) "no violations" 0 !violations

let test_explore_finds_lost_update () =
  (* the classic unlocked read-modify-write: some schedule must lose an
     update, and exploration must find it without seed luck *)
  let lost = ref false in
  let r =
    Explore.explore
      ~stop:(fun () -> !lost)
      (fun () ->
        let counter = ref 0 in
        let done_ = ref 0 in
        fun s ->
         for _ = 1 to 2 do
           s.spawn (fun () ->
               let v = !counter in
               s.yield ();
               counter := v + 1;
               incr done_;
               if !done_ = 2 && !counter < 2 then lost := true)
         done)
  in
  Alcotest.(check bool) "lost update found" true !lost;
  Alcotest.(check bool) "found quickly" true (r.Explore.schedules < 500)

let test_explore_finds_deadlock () =
  (* ABBA deadlock: systematic search must hit it *)
  let r =
    Explore.explore
      ~max_schedules:2000
      (fun () ->
        fun s ->
         let a = s.new_mutex ~name:"a" () and b = s.new_mutex ~name:"b" () in
         s.spawn (fun () ->
             Sched.with_lock a (fun () ->
                 s.yield ();
                 Sched.with_lock b (fun () -> ())));
         s.spawn (fun () ->
             Sched.with_lock b (fun () ->
                 s.yield ();
                 Sched.with_lock a (fun () -> ()))))
  in
  Alcotest.(check bool) "deadlock schedules found" true (r.Explore.deadlocks > 0)

let test_first_deadlock_replays () =
  (* the recorded certificate of the first hanging schedule, fed back through
     [replay], must reproduce the deadlock deterministically *)
  let scenario () s =
    let a = s.Sched.new_mutex ~name:"a" () and b = s.Sched.new_mutex ~name:"b" () in
    s.Sched.spawn (fun () ->
        Sched.with_lock a (fun () ->
            s.Sched.yield ();
            Sched.with_lock b (fun () -> ())));
    s.Sched.spawn (fun () ->
        Sched.with_lock b (fun () ->
            s.Sched.yield ();
            Sched.with_lock a (fun () -> ())))
  in
  let r = Explore.explore ~max_schedules:2000 scenario in
  match r.Explore.first_deadlock with
  | None -> Alcotest.fail "explorer found no deadlock certificate"
  | Some schedule -> (
    Alcotest.(check bool) "certificate is non-empty" true
      (Array.length schedule > 0);
    match Explore.replay schedule (scenario ()) with
    | () -> Alcotest.fail "replaying the certificate did not deadlock"
    | exception Coop.Deadlock _ -> ())

let test_budget_respected () =
  let r =
    Explore.explore ~max_schedules:5 (fun () ->
        fun s ->
         for _ = 1 to 4 do
           s.spawn (fun () -> s.yield ())
         done)
  in
  Alcotest.(check int) "stops at budget" 5 r.Explore.schedules;
  Alcotest.(check bool) "not exhausted" false r.Explore.exhausted

(* --- preemption-bound and budget monotonicity ---------------------------- *)

module TraceSet = Set.Make (struct
  type t = (int * int) list

  let compare = compare
end)

(* Run the same two-fiber scenario at a given preemption bound and collect
   the set of observable traces (fiber id, step) across the exhausted
   space. *)
let traces_at_bound pb =
  let acc = ref TraceSet.empty in
  let r =
    Explore.explore ~preemption_bound:pb ~max_schedules:100_000 (fun () ->
        let trace = ref [] in
        let finished = ref 0 in
        fun s ->
         let fiber id =
           s.spawn (fun () ->
               for i = 1 to 3 do
                 trace := (id, i) :: !trace;
                 s.yield ()
               done;
               incr finished;
               if !finished = 2 then acc := TraceSet.add (List.rev !trace) !acc)
         in
         fiber 1;
         fiber 2)
  in
  Alcotest.(check bool) (Printf.sprintf "pb=%d exhausted" pb) true r.Explore.exhausted;
  (r.Explore.schedules, !acc)

let test_preemption_bound_is_a_subset () =
  (* the schedules reachable with at most k preemptions are a subset of
     those reachable with k+1, strictly so until the bound stops binding *)
  let results = List.map traces_at_bound [ 0; 1; 2; 3 ] in
  let rec pairs = function
    | (s1, t1) :: ((s2, t2) :: _ as rest) ->
      Alcotest.(check bool)
        (Printf.sprintf "schedule count monotone (%d <= %d)" s1 s2)
        true (s1 <= s2);
      Alcotest.(check bool)
        (Printf.sprintf "traces at bound are a subset (%d vs %d)"
           (TraceSet.cardinal t1) (TraceSet.cardinal t2))
        true (TraceSet.subset t1 t2);
      pairs rest
    | _ -> ()
  in
  pairs results;
  match results with
  | (_, t0) :: (_, t1) :: _ ->
    Alcotest.(check bool) "one preemption reaches strictly more" true
      (TraceSet.cardinal t0 < TraceSet.cardinal t1)
  | _ -> assert false

let test_exhausted_monotone_in_budget () =
  (* once a budget suffices to exhaust the space, every larger budget does
     too, and the schedule count stops growing at the space's true size *)
  let run budget =
    let r =
      Explore.explore ~max_schedules:budget (fun () ->
          fun s ->
           for _ = 1 to 3 do
             s.spawn (fun () -> s.yield ())
           done)
    in
    (r.Explore.schedules, r.Explore.exhausted)
  in
  let total =
    let r =
      Explore.explore ~max_schedules:100_000 (fun () ->
          fun s ->
           for _ = 1 to 3 do
             s.spawn (fun () -> s.yield ())
           done)
    in
    Alcotest.(check bool) "space is exhaustible" true r.Explore.exhausted;
    r.Explore.schedules
  in
  let seen_exhausted = ref false in
  for budget = 1 to total + 5 do
    let schedules, exhausted = run budget in
    if !seen_exhausted then
      Alcotest.(check bool)
        (Printf.sprintf "budget %d still exhausted" budget)
        true exhausted;
    if exhausted then seen_exhausted := true;
    Alcotest.(check bool)
      (Printf.sprintf "budget %d: executed %d <= %d" budget schedules budget)
      true
      (schedules <= budget);
    Alcotest.(check bool)
      (Printf.sprintf "exhausted iff budget %d covers the %d-schedule space" budget
         total)
      true
      (exhausted = (budget >= total))
  done;
  Alcotest.(check bool) "exhaustion was reached within the sweep" true !seen_exhausted

(* --- bounded verification: exploration x refinement --------------------- *)

let test_correct_scenario_verified_for_all_schedules () =
  (* insert(1) racing lookup(1): verify refinement on *every* interleaving
     of the two methods — bounded verification, not seed luck.  The window
     semantics of the observer (§4.3) is what makes every schedule pass. *)
  let failures = ref 0 in
  let r =
    Explore.explore ~max_schedules:100_000 (fun () ->
        let log = Log.create ~level:`View () in
        let finished = ref 0 in
        fun s ->
         let ctx = Instrument.make s log in
         let ms = Multiset_vector.create ~capacity:2 ctx in
         let done_one () =
           incr finished;
           if !finished = 2 then begin
             let report =
               Checker.check ~mode:`View
                 ~view:(Multiset_vector.viewdef ~capacity:2)
                 log Multiset_spec.spec
             in
             if not (Report.is_pass report) then incr failures
           end
         in
         s.spawn (fun () ->
             ignore (Multiset_vector.insert ms 1);
             done_one ());
         s.spawn (fun () ->
             ignore (Multiset_vector.lookup ms 1);
             done_one ()))
  in
  Alcotest.(check bool)
    (Printf.sprintf "space exhausted (%d schedules)" r.Explore.schedules)
    true r.Explore.exhausted;
  Alcotest.(check bool)
    (Printf.sprintf "many schedules (%d)" r.Explore.schedules)
    true
    (r.Explore.schedules > 50);
  Alcotest.(check int) "no schedule violates refinement" 0 !failures

let test_buggy_scenario_violation_found_systematically () =
  (* insert(1) racing insert_pair(1,2) with the Fig. 5 bug: exploration must
     find a violating schedule deterministically *)
  let found = ref 0 in
  let r =
    Explore.explore ~max_schedules:20_000
      ~stop:(fun () -> !found > 0)
      (fun () ->
        let log = Log.create ~level:`View () in
        let finished = ref 0 in
        fun s ->
         let ctx = Instrument.make s log in
         let ms =
           Multiset_vector.create ~bugs:[ Multiset_vector.Racy_find_slot ]
             ~capacity:4 ctx
         in
         let done_one () =
           incr finished;
           if !finished = 2 then begin
             let report =
               Checker.check ~mode:`View
                 ~view:(Multiset_vector.viewdef ~capacity:4)
                 log Multiset_spec.spec
             in
             if not (Report.is_pass report) then incr found
           end
         in
         s.spawn (fun () ->
             ignore (Multiset_vector.insert ms 1);
             done_one ());
         s.spawn (fun () ->
             ignore (Multiset_vector.insert_pair ms 1 2);
             done_one ()))
  in
  Alcotest.(check bool)
    (Printf.sprintf "violating schedule found within %d schedules"
       r.Explore.schedules)
    true (!found > 0)

let test_preemption_bounding () =
  (* CHESS-style context bounding: insert || insert_pair is intractable
     unbounded, exhaustible within a couple of preemptions — and one
     preemption already suffices to reach the Fig. 5 bug *)
  let scenario ~bugs on_log () =
    let log = Log.create ~level:`View () in
    let finished = ref 0 in
    fun (s : Sched.t) ->
      let ctx = Instrument.make s log in
      let ms = Multiset_vector.create ~bugs ~capacity:4 ctx in
      let done_one () =
        incr finished;
        if !finished = 2 then on_log log
      in
      s.spawn (fun () ->
          ignore (Multiset_vector.insert ms 1);
          done_one ());
      s.spawn (fun () ->
          ignore (Multiset_vector.insert_pair ms 1 2);
          done_one ())
  in
  let view = Multiset_vector.viewdef ~capacity:4 in
  let check failures log =
    if not (Report.is_pass (Checker.check ~mode:`View ~view log Multiset_spec.spec))
    then incr failures
  in
  (* correct implementation: exhaust the bounded spaces, no violations *)
  let sizes =
    List.map
      (fun pb ->
        let failures = ref 0 in
        let r =
          Explore.explore ~preemption_bound:pb ~max_schedules:50_000
            (scenario ~bugs:[] (check failures))
        in
        Alcotest.(check bool) (Printf.sprintf "pb=%d exhausted" pb) true
          r.Explore.exhausted;
        Alcotest.(check int) (Printf.sprintf "pb=%d no violations" pb) 0 !failures;
        r.Explore.schedules)
      [ 0; 1; 2 ]
  in
  (match sizes with
  | [ s0; s1; s2 ] ->
    Alcotest.(check bool)
      (Printf.sprintf "space grows with bound: %d < %d < %d" s0 s1 s2)
      true
      (s0 < s1 && s1 < s2)
  | _ -> assert false);
  (* buggy implementation: one preemption suffices to reach the bug *)
  let failures = ref 0 in
  let r =
    Explore.explore ~preemption_bound:1 ~max_schedules:50_000
      (scenario ~bugs:[ Multiset_vector.Racy_find_slot ] (check failures))
  in
  Alcotest.(check bool) "buggy space exhausted at pb=1" true r.Explore.exhausted;
  Alcotest.(check bool)
    (Printf.sprintf "bug reachable with one preemption (%d violating schedules)"
       !failures)
    true (!failures > 0)

let test_every_schedule_agrees_with_oracle () =
  (* exhaustive cross-validation: on EVERY schedule of a small scenario the
     fast checker and the reference checker reach the same verdict *)
  let disagreements = ref 0 and checked = ref 0 in
  let r =
    Explore.explore ~max_schedules:5_000 (fun () ->
        let log = Log.create ~level:`View () in
        let finished = ref 0 in
        fun s ->
         let ctx = Instrument.make s log in
         let ms =
           Multiset_vector.create ~bugs:[ Multiset_vector.Racy_find_slot ]
             ~capacity:2 ctx
         in
         let done_one () =
           incr finished;
           if !finished = 2 then begin
             incr checked;
             if
               not
                 (Reference.agrees_with_checker
                    ~view:(Multiset_vector.viewdef ~capacity:2)
                    log Multiset_spec.spec)
             then incr disagreements
           end
         in
         s.spawn (fun () ->
             ignore (Multiset_vector.insert ms 1);
             done_one ());
         s.spawn (fun () ->
             ignore (Multiset_vector.insert ms 1);
             done_one ()))
  in
  ignore r;
  Alcotest.(check bool) "schedules checked" true (!checked > 50);
  Alcotest.(check int) "oracle agrees on every schedule" 0 !disagreements

let suite =
  [
    ("sequential: one schedule", `Quick, test_sequential_has_one_schedule);
    ("preemption bounding (CHESS-style)", `Quick, test_preemption_bounding);
    ("preemption bound k is a subset of k+1", `Quick, test_preemption_bound_is_a_subset);
    ("exhausted is monotone in the budget", `Quick, test_exhausted_monotone_in_budget);
    ( "every schedule agrees with oracle",
      `Slow,
      test_every_schedule_agrees_with_oracle );
    ("locked increments: all schedules safe", `Quick, test_two_independent_increments);
    ("explorer finds lost update", `Quick, test_explore_finds_lost_update);
    ("explorer finds ABBA deadlock", `Quick, test_explore_finds_deadlock);
    ("first deadlock certificate replays", `Quick, test_first_deadlock_replays);
    ("budget respected", `Quick, test_budget_respected);
    ( "bounded verification: correct scenario",
      `Slow,
      test_correct_scenario_verified_for_all_schedules );
    ( "bounded verification: bug found systematically",
      `Quick,
      test_buggy_scenario_violation_found_systematically );
  ]
