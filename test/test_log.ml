(* Properties of the log layer and its persistence format, plus the
   checker's log-level configuration guard:

   - to_channel/of_channel round trip preserves both the events and the
     recording level, for arbitrary event sequences at arbitrary levels;
   - Log.admits agrees with the records_io/records_writes/records_reads
     fast-path guards that instrumentation uses to skip event construction;
   - `View-mode checking rejects logs recorded below level `View up front
     (the checker.mli footgun) instead of reporting spurious mismatches. *)

open Vyrd
open Vyrd_harness

let qcheck t = QCheck_alcotest.to_alcotest t

(* --- generators ---------------------------------------------------------- *)

let value_gen =
  let open QCheck2.Gen in
  oneof
    [
      return Repr.Unit;
      map (fun b -> Repr.Bool b) bool;
      map (fun i -> Repr.Int i) (int_range (-50) 50);
      map (fun s -> Repr.Str s) (string_size ~gen:printable (int_range 0 8));
    ]

(* every constructor, including the `Full-only ones *)
let event_gen =
  let open QCheck2.Gen in
  let tid = int_range 0 7 in
  let mid = oneofl [ "insert"; "delete"; "lookup"; "flush"; "op" ] in
  let var = oneofl [ "A[0].elt"; "A[1].valid"; "root"; "buf"; "x" ] in
  let lock = oneofl [ "m"; "root_lock"; "entry[2]" ] in
  oneof
    [
      map3 (fun tid mid args -> Event.Call { tid; mid; args }) tid mid
        (list_size (int_range 0 3) value_gen);
      map3 (fun tid mid value -> Event.Return { tid; mid; value }) tid mid value_gen;
      map (fun tid -> Event.Commit { tid }) tid;
      map3 (fun tid var value -> Event.Write { tid; var; value }) tid var value_gen;
      map (fun tid -> Event.Block_begin { tid }) tid;
      map (fun tid -> Event.Block_end { tid }) tid;
      map2 (fun tid var -> Event.Read { tid; var }) tid var;
      map2 (fun tid lock -> Event.Acquire { tid; lock }) tid lock;
      map2 (fun tid lock -> Event.Release { tid; lock }) tid lock;
    ]

let level_gen = QCheck2.Gen.oneofl [ `None; `Io; `View; `Full ]

let pp_level ppf l =
  Fmt.string ppf
    (match l with `None -> "none" | `Io -> "io" | `View -> "view" | `Full -> "full")

(* --- persistence round trip ---------------------------------------------- *)

let roundtrip log =
  let path = Filename.temp_file "vyrd_log" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Log.to_file path log;
      Log.of_file path)

let roundtrip_preserves_events_and_level =
  qcheck
    (QCheck2.Test.make ~name:"to_channel/of_channel round trip" ~count:150
       QCheck2.Gen.(pair level_gen (list_size (int_range 0 50) event_gen))
       (fun (level, evs) ->
         let log = Log.create ~level () in
         List.iter (Log.append log) evs;
         let log' = roundtrip log in
         let same_level = Log.level log' = Log.level log in
         let same_events =
           List.length (Log.events log') = List.length (Log.events log)
           && List.for_all2 Event.equal (Log.events log') (Log.events log)
         in
         if not (same_level && same_events) then
           QCheck2.Test.fail_reportf "level %a -> %a, %d -> %d events" pp_level
             (Log.level log) pp_level (Log.level log')
             (List.length (Log.events log))
             (List.length (Log.events log'));
         true))

let test_headerless_input_reads_full () =
  (* pre-header serializations carry no level line: they must load at `Full
     so no event is dropped *)
  let path = Filename.temp_file "vyrd_log" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iter
        (fun ev -> output_string oc (Event.to_line ev ^ "\n"))
        [
          Event.Call { tid = 1; mid = "insert"; args = [ Repr.Int 3 ] };
          Event.Write { tid = 1; var = "x"; value = Repr.Int 3 };
          Event.Commit { tid = 1 };
        ];
      close_out oc;
      let log = Log.of_file path in
      Alcotest.(check bool) "level is `Full" true (Log.level log = `Full);
      Alcotest.(check int) "all events kept" 3 (Log.length log))

let test_empty_log_roundtrip () =
  let log = Log.create ~level:`Io () in
  let log' = roundtrip log in
  Alcotest.(check bool) "level preserved" true (Log.level log' = `Io);
  Alcotest.(check int) "no events" 0 (Log.length log')

(* --- admits vs the fast-path guards -------------------------------------- *)

let admits_agrees_with_guards =
  qcheck
    (QCheck2.Test.make ~name:"admits agrees with records_* guards" ~count:400
       QCheck2.Gen.(pair level_gen event_gen)
       (fun (level, ev) ->
         let log = Log.create ~level () in
         let guard =
           match ev with
           | Event.Call _ | Event.Return _ | Event.Commit _ -> Log.records_io log
           | Event.Write _ | Event.Block_begin _ | Event.Block_end _ ->
             Log.records_writes log
           | Event.Read _ | Event.Acquire _ | Event.Release _ ->
             Log.records_reads log
         in
         Log.admits level ev = guard))

let append_respects_admits =
  qcheck
    (QCheck2.Test.make ~name:"append keeps exactly the admitted events" ~count:150
       QCheck2.Gen.(pair level_gen (list_size (int_range 0 40) event_gen))
       (fun (level, evs) ->
         let log = Log.create ~level () in
         List.iter (Log.append log) evs;
         let expected = List.filter (Log.admits level) evs in
         List.length (Log.events log) = List.length expected
         && List.for_all2 Event.equal (Log.events log) expected))

(* --- the `View-mode configuration guard (checker.mli footgun) ------------ *)

let record_at level =
  let s = Subjects.multiset_vector in
  Harness.run
    { Harness.default with threads = 3; ops_per_thread = 10; log_level = level }
    (s.Subjects.build ~bug:false)

let expect_config_error what f =
  match f () with
  | (_ : Report.t) -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

let test_view_check_rejects_io_log () =
  let s = Subjects.multiset_vector in
  let io_log = record_at `Io in
  expect_config_error "check `View on `Io log" (fun () ->
      Checker.check ~mode:`View ~view:s.Subjects.view io_log s.Subjects.spec);
  expect_config_error "check `View on `None log" (fun () ->
      Checker.check ~mode:`View ~view:s.Subjects.view (record_at `None)
        s.Subjects.spec);
  (* the same log is perfectly checkable in the mode it was recorded for *)
  Alcotest.(check bool) "io mode accepts io log" true
    (Report.is_pass (Checker.check ~mode:`Io io_log s.Subjects.spec))

let test_view_check_accepts_view_and_full_logs () =
  let s = Subjects.multiset_vector in
  List.iter
    (fun level ->
      let log = record_at level in
      Alcotest.(check bool)
        (Fmt.str "view mode accepts %a log" pp_level level)
        true
        (Report.is_pass
           (Checker.check ~mode:`View ~view:s.Subjects.view log s.Subjects.spec)))
    [ `View; `Full ]

let test_online_rejects_io_log () =
  let s = Subjects.multiset_vector in
  let log = Log.create ~level:`Io () in
  match Online.start ~mode:`View ~view:s.Subjects.view log s.Subjects.spec with
  | (_ : Online.t) -> Alcotest.fail "Online.start `View accepted an `Io log"
  | exception Invalid_argument _ -> ()

let test_view_check_rejects_roundtripped_io_log () =
  (* regression for the original footgun scenario: record at `Io, serialize,
     load elsewhere, check in `View mode — must fail fast, not report
     spurious view mismatches *)
  let s = Subjects.multiset_vector in
  let log' = roundtrip (record_at `Io) in
  expect_config_error "check `View on deserialized `Io log" (fun () ->
      Checker.check ~mode:`View ~view:s.Subjects.view log' s.Subjects.spec)

let suite =
  [
    roundtrip_preserves_events_and_level;
    ("headerless input reads at `Full", `Quick, test_headerless_input_reads_full);
    ("empty log round trip", `Quick, test_empty_log_roundtrip);
    admits_agrees_with_guards;
    append_respects_admits;
    ("view mode rejects io-level log", `Quick, test_view_check_rejects_io_log);
    ( "view mode accepts view/full logs",
      `Quick,
      test_view_check_accepts_view_and_full_logs );
    ("online view mode rejects io-level log", `Quick, test_online_rejects_io_log);
    ( "view mode rejects deserialized io log",
      `Quick,
      test_view_check_rejects_roundtripped_io_log );
  ]
