(* The vyrdc cluster: consistent-hash ring properties (deterministic
   placement, balance over random memberships, minimal remapping on
   add/remove), Metrics.merge algebra (commutative/associative up to export
   equality, counters sum, gauges max, histograms bucket-wise) with an RFC
   8259 validity check on the JSON export, and end-to-end coordinator
   sessions: an unmodified Client connecting through vyrdc gets verdicts
   identical to offline checking, across routing, drain, and kill-a-worker
   checkpoint failover. *)

open Vyrd
open Vyrd_harness
open Vyrd_pipeline
open Vyrd_net
open Vyrd_cluster

let qcheck t = QCheck_alcotest.to_alcotest t

(* --- hash ring ------------------------------------------------------------- *)

let test_ring_deterministic () =
  let mk () = Hashring.create ~vnodes:64 ~seed:7 [ "a"; "b"; "c" ] in
  let r1 = mk () and r2 = mk () in
  for i = 0 to 199 do
    let key = Printf.sprintf "session-%06d" i in
    Alcotest.(check (option string))
      ("placement of " ^ key ^ " is a pure function of the ring")
      (Hashring.lookup r1 key) (Hashring.lookup r2 key)
  done;
  Alcotest.(check bool) "different seed, different placement somewhere" true
    (let r3 = Hashring.create ~vnodes:64 ~seed:8 [ "a"; "b"; "c" ] in
     List.exists
       (fun i ->
         let key = Printf.sprintf "session-%06d" i in
         Hashring.lookup r1 key <> Hashring.lookup r3 key)
       (List.init 200 Fun.id))

let test_ring_basics () =
  let empty = Hashring.create [] in
  Alcotest.(check bool) "empty ring is empty" true (Hashring.is_empty empty);
  Alcotest.(check (option string)) "lookup on empty" None
    (Hashring.lookup empty "k");
  Alcotest.(check (list string)) "ordered on empty" [] (Hashring.ordered empty "k");
  let r = Hashring.create ~vnodes:32 [ "b"; "a"; "a"; "c" ] in
  Alcotest.(check (list string)) "members sorted, deduped" [ "a"; "b"; "c" ]
    (Hashring.members r);
  let ord = Hashring.ordered r "some-key" in
  Alcotest.(check int) "ordered enumerates every member once" 3
    (List.length (List.sort_uniq compare ord));
  Alcotest.(check (option string)) "ordered starts at the owner"
    (Hashring.lookup r "some-key")
    (match ord with m :: _ -> Some m | [] -> None);
  let total = List.fold_left (fun a (_, s) -> a +. s) 0.0 (Hashring.shares r) in
  Alcotest.(check bool) "shares sum to 1" true (abs_float (total -. 1.0) < 1e-9)

let membership_gen =
  QCheck2.Gen.(
    let* n = int_range 2 10 in
    let member = map (Printf.sprintf "w%d") (int_range 0 99) in
    map (List.sort_uniq compare) (list_size (return n) member))

let prop_ring_balance =
  QCheck2.Test.make ~name:"ring balance: every member near its fair share"
    ~count:1000 membership_gen (fun members ->
      let members = if members = [] then [ "w0" ] else members in
      let r = Hashring.create ~vnodes:128 members in
      let n = List.length (Hashring.members r) in
      let fair = 1.0 /. float_of_int n in
      List.for_all
        (fun (_, share) -> share > 0.3 *. fair && share < 2.5 *. fair)
        (Hashring.shares r))

let prop_ring_remap_add =
  QCheck2.Test.make ~name:"ring add remaps only to the new member" ~count:200
    membership_gen (fun members ->
      let members = if members = [] then [ "w0" ] else members in
      let r = Hashring.create ~vnodes:64 members in
      let r' = Hashring.add r "fresh" in
      List.for_all
        (fun i ->
          let key = Printf.sprintf "key-%d" i in
          let before = Hashring.lookup r key and after = Hashring.lookup r' key in
          before = after || after = Some "fresh")
        (List.init 200 Fun.id))

let prop_ring_remap_remove =
  QCheck2.Test.make ~name:"ring remove remaps only the removed member's keys"
    ~count:200 membership_gen (fun members ->
      let members = if List.length members < 2 then [ "w0"; "w1" ] else members in
      let victim = List.hd members in
      let r = Hashring.create ~vnodes:64 members in
      let r' = Hashring.remove r victim in
      List.for_all
        (fun i ->
          let key = Printf.sprintf "key-%d" i in
          let before = Hashring.lookup r key and after = Hashring.lookup r' key in
          if before = Some victim then after <> Some victim
          else before = after)
        (List.init 200 Fun.id))

(* --- membership / bounded-load placement ----------------------------------- *)

let test_member_bounded_load () =
  let m = Member.create ~vnodes:32 () in
  let w1 = Member.add m ~name:"w1" ~addr:(Wire.Unix_socket "/none1") ~slots:2 in
  let w2 = Member.add m ~name:"w2" ~addr:(Wire.Unix_socket "/none2") ~slots:2 in
  let taken =
    List.init 4 (fun i ->
        match Member.acquire m ~key:(Printf.sprintf "s%d" i) ~avoid:[] with
        | Some w -> w
        | None -> Alcotest.fail "acquire with free slots returned None")
  in
  Alcotest.(check int) "w1 at capacity" 2 w1.Member.w_busy;
  Alcotest.(check int) "w2 at capacity" 2 w2.Member.w_busy;
  Alcotest.(check bool) "fifth acquire overflows nowhere" true
    (Member.acquire m ~key:"s4" ~avoid:[] = None);
  Member.release m (List.hd taken);
  (match Member.acquire m ~key:"s5" ~avoid:[] with
  | Some w -> Member.release m w
  | None -> Alcotest.fail "released slot is not reusable");
  List.iter (Member.release m) (List.tl taken);
  Member.mark m "w1" Member.Dead;
  Alcotest.(check (list string)) "dead worker leaves the ring" [ "w2" ]
    (Hashring.members (Member.ring m));
  (match Member.acquire m ~key:"s6" ~avoid:[] with
  | Some w -> Alcotest.(check string) "placement avoids the dead worker" "w2" w.Member.w_name
  | None -> Alcotest.fail "no placement with w2 free")

(* --- Metrics.merge ---------------------------------------------------------- *)

let test_merge_units () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add (Metrics.counter a "c") 3;
  Metrics.add (Metrics.counter b "c") 4;
  Metrics.record (Metrics.gauge a "g") 10;
  Metrics.record (Metrics.gauge b "g") 7;
  let ha = Metrics.histogram a "h" and hb = Metrics.histogram b "h" in
  List.iter (Metrics.observe ha) [ 1; 100 ];
  List.iter (Metrics.observe hb) [ 100; 5000 ];
  Metrics.add (Metrics.counter b "only_b") 9;
  let into = Metrics.create () in
  Metrics.merge ~into a;
  Metrics.merge ~into b;
  Alcotest.(check int) "counters sum" 7 (Metrics.value (Metrics.counter into "c"));
  Alcotest.(check int) "missing counters appear" 9
    (Metrics.value (Metrics.counter into "only_b"));
  Alcotest.(check int) "gauges keep the max" 10
    (Metrics.gauge_value (Metrics.gauge into "g"));
  let h = Metrics.histogram into "h" in
  Alcotest.(check int) "histogram counts sum" 4 (Metrics.hist_count h);
  Alcotest.(check int) "histogram max survives" 5000 (Metrics.hist_max h)

let test_merge_kind_mismatch () =
  let a = Metrics.create () and b = Metrics.create () in
  ignore (Metrics.counter a "x");
  ignore (Metrics.gauge b "x");
  Alcotest.(check bool) "merging a gauge into a counter is refused" true
    (match Metrics.merge ~into:a b with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_encode_roundtrip () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "net.events") 123456;
  Metrics.record (Metrics.gauge m "net.sessions_peak") 17;
  let h = Metrics.histogram m "net.batch_events" in
  List.iter (Metrics.observe h) [ 0; 1; 63; 64; 100_000 ];
  let m' = Metrics.decode (Metrics.encode m) in
  Alcotest.(check string) "decode . encode is the identity on exports"
    (Metrics.encode m) (Metrics.encode m');
  Alcotest.(check int) "counter survives" 123456
    (Metrics.value (Metrics.counter m' "net.events"));
  Alcotest.(check int) "histogram count survives" 5
    (Metrics.hist_count (Metrics.histogram m' "net.batch_events"));
  Alcotest.(check bool) "truncated snapshot is corrupt" true
    (match Metrics.decode (String.sub (Metrics.encode m) 0 3) with
    | (_ : Metrics.t) -> false
    | exception Bincodec.Corrupt _ -> true)

(* a random registry: some counters, gauges and histograms over a small
   shared name pool so merges actually collide *)
let registry_gen =
  QCheck2.Gen.(
    let entry =
      let* name = map (Printf.sprintf "m%d") (int_range 0 5) in
      let* kind = int_range 0 2 in
      let* v = int_range 0 100_000 in
      return (name, kind, v)
    in
    list_size (int_range 0 12) entry)

let build_registry entries =
  let m = Metrics.create () in
  List.iter
    (fun (name, kind, v) ->
      (* one kind per name: derive it from the name so random entries never
         conflict within a registry *)
      let kind = (Hashtbl.hash name + kind) mod 3 in
      let name = Printf.sprintf "%s_k%d" name kind in
      match kind with
      | 0 -> Metrics.add (Metrics.counter m name) v
      | 1 -> Metrics.record (Metrics.gauge m name) v
      | _ -> Metrics.observe (Metrics.histogram m name) v)
    entries;
  m

let merged lst =
  let into = Metrics.create () in
  List.iter (fun m -> Metrics.merge ~into m) lst;
  Metrics.encode into

let prop_merge_commutative =
  QCheck2.Test.make ~name:"merge is commutative up to export" ~count:300
    QCheck2.Gen.(pair registry_gen registry_gen)
    (fun (ea, eb) ->
      let a () = build_registry ea and b () = build_registry eb in
      merged [ a (); b () ] = merged [ b (); a () ])

let prop_merge_associative =
  QCheck2.Test.make ~name:"merge is associative up to export" ~count:300
    QCheck2.Gen.(triple registry_gen registry_gen registry_gen)
    (fun (ea, eb, ec) ->
      let a () = build_registry ea
      and b () = build_registry eb
      and c () = build_registry ec in
      let left =
        let ab = Metrics.create () in
        Metrics.merge ~into:ab (a ());
        Metrics.merge ~into:ab (b ());
        merged [ ab; c () ]
      in
      let right =
        let bc = Metrics.create () in
        Metrics.merge ~into:bc (b ());
        Metrics.merge ~into:bc (c ());
        merged [ a (); bc ]
      in
      left = right)

(* minimal RFC 8259 recognizer: accepts exactly one JSON text *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let error = ref false in
  let fail () = error := true in
  let ws () =
    while (not !error) && (match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true | _ -> false)
    do advance () done
  in
  let expect c = match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail ()
  in
  let literal l = String.iter expect l in
  let string_lit () =
    expect '"';
    let closed = ref false in
    while (not !error) && not !closed do
      match peek () with
      | None -> fail ()
      | Some '"' -> advance (); closed := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                (match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail ())
              done
          | _ -> fail ())
      | Some c when Char.code c < 0x20 -> fail ()
      | Some _ -> advance ()
    done
  in
  let digits () =
    let saw = ref false in
    while (match peek () with Some '0' .. '9' -> true | _ -> false) do
      saw := true; advance ()
    done;
    if not !saw then fail ()
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' -> digits ()
    | _ -> fail ());
    (match peek () with Some '.' -> advance (); digits () | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    ws ();
    (match peek () with
    | Some '{' ->
        advance (); ws ();
        if peek () = Some '}' then advance ()
        else begin
          let more = ref true in
          while (not !error) && !more do
            ws (); string_lit (); ws (); expect ':'; value (); ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' -> advance (); more := false
            | _ -> fail (); more := false
          done
        end
    | Some '[' ->
        advance (); ws ();
        if peek () = Some ']' then advance ()
        else begin
          let more = ref true in
          while (not !error) && !more do
            value (); ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' -> advance (); more := false
            | _ -> fail (); more := false
          done
        end
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail ());
    ws ()
  in
  value ();
  (not !error) && !pos = n

let test_json_validator_sanity () =
  List.iter
    (fun (ok, s) ->
      Alcotest.(check bool) ("json_valid " ^ s) ok (json_valid s))
    [
      (true, "{}"); (true, "[1, 2.5, -3e+7]"); (true, "{\"a\": [true, null, \"x\\n\"]}");
      (false, "{"); (false, "[1,]"); (false, "01"); (false, "\"\\q\""); (false, "{} {}");
    ]

let test_merged_json_is_valid () =
  let a = build_registry [ ("m0", 0, 5); ("m1", 1, 6); ("m2", 2, 7) ] in
  let b = build_registry [ ("m0", 0, 8); ("m3", 2, 90_000) ] in
  let into = Metrics.create () in
  Metrics.merge ~into a;
  Metrics.merge ~into b;
  Alcotest.(check bool) "merged registry exports RFC 8259-valid JSON" true
    (json_valid (Metrics.to_json into))

(* --- coordinator end to end ------------------------------------------------- *)

let examples_dir () =
  List.find Sys.file_exists [ "examples/logs"; "../../../examples/logs" ]

let subject = Subjects.multiset_vector

let shards _level =
  [ Farm.shard ~mode:`View ~view:subject.Subjects.view subject.Subjects.name
      subject.Subjects.spec ]

let buggy_log () =
  Log.of_file (Filename.concat (examples_dir ()) "multiset_vector_buggy.log")

let local_fail_index log =
  let farm = Farm.start ~capacity:4096 ~level:(Log.level log) (shards `View) in
  Log.iter (Farm.feed farm) log;
  let r = Farm.finish farm in
  List.fold_left
    (fun acc (sr : Farm.shard_result) ->
      match (acc, sr.Farm.sr_fail_index) with
      | None, i -> i
      | Some a, Some b -> Some (min a b)
      | Some _, None -> acc)
    None r.Farm.shards

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let with_cluster ?(workers = 2) ?(slots = 4) ?checkpoint_events ?keep_spools f =
  let dir = temp_dir "vyrd_cluster" in
  let sup = Supervisor.start ~count:workers ~max_sessions:slots ~dir ~shards () in
  let sock = Filename.concat dir "vyrdc.sock" in
  let metrics = Metrics.create () in
  let coord =
    Coordinator.start
      (Coordinator.config ?checkpoint_events ?keep_spools ~worker_slots:slots
         ~metrics ~addr:(Wire.Unix_socket sock)
         ~spool_dir:(Filename.concat dir "spool") ())
  in
  List.iter
    (fun (name, addr) -> Coordinator.attach coord ~name ~addr)
    (Supervisor.workers sup);
  Fun.protect
    ~finally:(fun () ->
      Coordinator.stop ~deadline:5. coord;
      Supervisor.stop sup;
      rm_rf (Filename.concat dir "spool");
      rm_rf dir)
    (fun () -> f coord sup)

let test_cluster_verdict_matches_offline () =
  let log = buggy_log () in
  let offline =
    Checker.check ~mode:`View ~view:subject.Subjects.view log subject.Subjects.spec
  in
  with_cluster (fun coord _sup ->
      (* the stock client, pointed at the coordinator unchanged *)
      match Client.submit_log ~batch_events:64 (Coordinator.addr coord) log with
      | Client.Spilled _ -> Alcotest.fail "cluster session spilled"
      | Client.Checked { report; fail_index } ->
          Alcotest.(check string) "same violation kind as offline"
            (Report.tag offline) (Report.tag report);
          Alcotest.(check (option int)) "same fail index as the local farm"
            (local_fail_index log) fail_index)

let test_cluster_routes_across_workers () =
  let log = buggy_log () in
  with_cluster ~workers:3 ~slots:2 (fun coord sup ->
      let results =
        List.init 6 (fun _ ->
            Client.submit_log ~batch_events:64 (Coordinator.addr coord) log)
      in
      List.iter
        (function
          | Client.Checked { report; _ } ->
              Alcotest.(check bool) "buggy log convicts through the cluster"
                false (Report.is_pass report)
          | Client.Spilled _ -> Alcotest.fail "cluster session spilled")
        results;
      let m = Coordinator.metrics coord in
      Alcotest.(check int) "all sessions verdicted" 6
        (Metrics.value (Metrics.counter m "cluster.verdicts"));
      Alcotest.(check int) "all sessions routed" 6
        (Metrics.value (Metrics.counter m "cluster.sessions_routed"));
      (* worker metrics scraped via control connections account for every
         session *)
      ignore sup;
      let agg = Coordinator.aggregate coord in
      Alcotest.(check bool) "aggregate includes worker net.* families" true
        (Metrics.value (Metrics.counter agg "net.sessions") >= 6))

let test_cluster_failover_preserves_verdict () =
  let log = buggy_log () in
  let offline_idx = local_fail_index log in
  let dir = temp_dir "vyrd_failover" in
  let sup = Supervisor.start ~count:2 ~dir ~shards () in
  let metrics = Metrics.create () in
  let coord =
    Coordinator.start
      (Coordinator.config ~checkpoint_events:40 ~metrics
         ~addr:(Wire.Unix_socket (Filename.concat dir "vyrdc.sock"))
         ~spool_dir:(Filename.concat dir "spool") ())
  in
  Fun.protect
    ~finally:(fun () ->
      Coordinator.stop ~deadline:5. coord;
      Supervisor.stop sup;
      rm_rf (Filename.concat dir "spool");
      rm_rf dir)
    (fun () ->
      let workers = Supervisor.workers sup in
      let w0_name, w0_addr = List.nth workers 0 in
      let w1_name, w1_addr = List.nth workers 1 in
      (* deterministic failover: only w0 attached while the first half
         streams, so the session must start there *)
      Coordinator.attach coord ~name:w0_name ~addr:w0_addr;
      let t =
        Client.connect ~level:(Log.level log) ~batch_events:16
          (Coordinator.addr coord)
      in
      let half = Log.length log / 2 in
      let i = ref 0 in
      Log.iter
        (fun ev ->
          if !i < half then Client.send t ev;
          incr i)
        log;
      Client.flush t;
      (* barrier: the coordinator has spooled and forwarded everything sent
         so far once this returns — the kill below is deterministic *)
      ignore (Client.request_checkpoint t);
      (* SIGKILL stand-in: w0 dies with the session mid-stream *)
      Supervisor.kill sup w0_name;
      Coordinator.attach coord ~name:w1_name ~addr:w1_addr;
      i := 0;
      Log.iter
        (fun ev ->
          if !i >= half then Client.send t ev;
          incr i)
        log;
      match Client.finish t with
      | Client.Spilled _ -> Alcotest.fail "failover session spilled"
      | Client.Checked { report; fail_index } ->
          Alcotest.(check bool) "verdict survives the failover" false
            (Report.is_pass report);
          Alcotest.(check (option int))
            "fail index identical to single-process offline checking"
            offline_idx fail_index;
          let v name = Metrics.value (Metrics.counter metrics name) in
          Alcotest.(check bool) "a leg failure was recorded" true
            (v "cluster.leg_failures" >= 1);
          Alcotest.(check bool) "the session was reassigned" true
            (v "cluster.reassignments" >= 1);
          Alcotest.(check bool) "the new worker resumed from the spool" true
            (v "cluster.resumes" >= 1);
          Alcotest.(check bool) "the replay recovered every spooled event" true
            (v "cluster.resume_replayed" >= half);
          Alcotest.(check bool) "the dead worker was noticed" true
            (v "cluster.workers_dead" >= 1))

let test_cluster_failover_resumes_from_checkpoint () =
  (* a clean run: the worker farm can snapshot (no violation pins it), so
     the coordinator's piggybacked checkpoints land in the spool and the
     replacement worker replays a suffix, not the whole stream *)
  let log =
    Harness.run
      { Harness.default with threads = 4; ops_per_thread = 40; log_level = `View }
      (subject.Subjects.build ~bug:false)
  in
  let dir = temp_dir "vyrd_ck_failover" in
  let sup = Supervisor.start ~count:2 ~dir ~shards () in
  let metrics = Metrics.create () in
  let coord =
    Coordinator.start
      (Coordinator.config ~checkpoint_events:40 ~metrics
         ~addr:(Wire.Unix_socket (Filename.concat dir "vyrdc.sock"))
         ~spool_dir:(Filename.concat dir "spool") ())
  in
  Fun.protect
    ~finally:(fun () ->
      Coordinator.stop ~deadline:5. coord;
      Supervisor.stop sup;
      rm_rf (Filename.concat dir "spool");
      rm_rf dir)
    (fun () ->
      let workers = Supervisor.workers sup in
      let w0_name, w0_addr = List.nth workers 0 in
      let w1_name, w1_addr = List.nth workers 1 in
      Coordinator.attach coord ~name:w0_name ~addr:w0_addr;
      let t =
        Client.connect ~level:(Log.level log) ~batch_events:16
          (Coordinator.addr coord)
      in
      let half = Log.length log / 2 in
      let i = ref 0 in
      Log.iter
        (fun ev ->
          if !i < half then Client.send t ev;
          incr i)
        log;
      Client.flush t;
      (* barrier: forces a checkpoint covering the half sent so far into
         the spool, and makes the kill point deterministic *)
      ignore (Client.request_checkpoint t);
      Supervisor.kill sup w0_name;
      Coordinator.attach coord ~name:w1_name ~addr:w1_addr;
      i := 0;
      Log.iter
        (fun ev ->
          if !i >= half then Client.send t ev;
          incr i)
        log;
      match Client.finish t with
      | Client.Spilled _ -> Alcotest.fail "failover session spilled"
      | Client.Checked { report; fail_index } ->
          Alcotest.(check bool) "clean run still passes after failover" true
            (Report.is_pass report);
          Alcotest.(check (option int)) "no fail index" None fail_index;
          let v name = Metrics.value (Metrics.counter metrics name) in
          Alcotest.(check bool) "checkpoints were spooled" true
            (v "cluster.checkpoints" >= 1);
          Alcotest.(check bool) "the replay resumed from a checkpoint" true
            (v "cluster.resume_from_checkpoint" >= 1);
          Alcotest.(check bool) "the resume replayed only a suffix" true
            (v "cluster.resume_replayed" < half))

let test_cluster_drain_reroutes () =
  let log = buggy_log () in
  with_cluster ~workers:2 (fun coord sup ->
      let w0_name, _ = List.hd (Supervisor.workers sup) in
      Coordinator.drain coord w0_name;
      Alcotest.(check (list string)) "drained worker leaves the ring"
        (List.filter (( <> ) w0_name)
           (List.map fst (Supervisor.workers sup)))
        (Hashring.members (Coordinator.ring coord));
      (match Supervisor.server sup w0_name with
      | Some srv ->
          Alcotest.(check bool) "worker saw the drain order" true
            (Server.draining srv)
      | None -> Alcotest.fail "drained worker vanished");
      (* sessions still verdict — on the remaining worker *)
      (match Client.submit_log ~batch_events:64 (Coordinator.addr coord) log with
      | Client.Checked { report; _ } ->
          Alcotest.(check bool) "verdicts keep flowing during a drain" false
            (Report.is_pass report)
      | Client.Spilled _ -> Alcotest.fail "cluster session spilled");
      match Supervisor.server sup w0_name with
      | Some srv ->
          Alcotest.(check int) "drained worker took no new data session" 0
            (Server.active srv)
      | None -> ())

let test_cluster_respawn_rejoins () =
  (* the supervisor's auto-respawn: kill the same worker twice, let the
     backoff bring it back on its original address, and check the
     coordinator's verdicts still match offline checking every time *)
  let log = buggy_log () in
  let offline_idx = local_fail_index log in
  let dir = temp_dir "vyrd_respawn" in
  let coord_ref = ref None in
  let respawned = ref 0 in
  let sup =
    Supervisor.start ~count:2 ~max_respawns:2 ~backoff:0.01
      ~on_respawn:(fun name addr ->
        (match !coord_ref with
        | Some coord -> Coordinator.attach coord ~name ~addr
        | None -> ());
        incr respawned)
      ~dir ~shards ()
  in
  let metrics = Metrics.create () in
  let coord =
    Coordinator.start
      (Coordinator.config ~metrics
         ~addr:(Wire.Unix_socket (Filename.concat dir "vyrdc.sock"))
         ~spool_dir:(Filename.concat dir "spool") ())
  in
  coord_ref := Some coord;
  Fun.protect
    ~finally:(fun () ->
      Coordinator.stop ~deadline:5. coord;
      Supervisor.stop sup;
      rm_rf (Filename.concat dir "spool");
      rm_rf dir)
    (fun () ->
      List.iter
        (fun (name, addr) -> Coordinator.attach coord ~name ~addr)
        (Supervisor.workers sup);
      let wait_back name generation =
        let deadline = Unix.gettimeofday () +. 5. in
        let rec loop () =
          if Supervisor.server sup name <> None && !respawned >= generation
          then ()
          else if Unix.gettimeofday () > deadline then
            Alcotest.fail (name ^ " did not respawn in time")
          else begin
            Thread.delay 0.01;
            loop ()
          end
        in
        loop ()
      in
      let submit_and_check tag =
        match Client.submit_log ~batch_events:64 (Coordinator.addr coord) log with
        | Client.Spilled _ -> Alcotest.fail (tag ^ ": session spilled")
        | Client.Checked { report; fail_index } ->
            Alcotest.(check bool) (tag ^ ": buggy log convicts") false
              (Report.is_pass report);
            Alcotest.(check (option int))
              (tag ^ ": fail index matches offline") offline_idx fail_index
      in
      submit_and_check "before any kill";
      Supervisor.kill sup "w0";
      wait_back "w0" 1;
      submit_and_check "after first respawn";
      Supervisor.kill sup "w0";
      wait_back "w0" 2;
      submit_and_check "after second respawn";
      Alcotest.(check int) "two respawns recorded" 2
        (Supervisor.respawns sup "w0");
      Alcotest.(check int) "the ring re-registered the reborn worker" 2
        !respawned;
      (* budget spent: a third kill forgets the worker for good *)
      Supervisor.kill sup "w0";
      Thread.delay 0.1;
      Alcotest.(check bool) "third kill exceeds the cap: worker stays down"
        true
        (Supervisor.server sup "w0" = None);
      submit_and_check "after the final kill")

let test_cluster_spools_reclaimed () =
  let log = buggy_log () in
  with_cluster (fun coord _sup ->
      (match Client.submit_log ~batch_events:64 (Coordinator.addr coord) log with
      | Client.Checked _ -> ()
      | Client.Spilled _ -> Alcotest.fail "cluster session spilled");
      (* give the session thread a beat to run its cleanup *)
      let rec wait n =
        if n > 0 && Coordinator.active coord > 0 then begin
          Thread.delay 0.02;
          wait (n - 1)
        end
      in
      wait 100;
      let spool_dir =
        match Coordinator.addr coord with
        | Wire.Unix_socket sock ->
            Filename.concat (Filename.dirname sock) "spool"
        | Wire.Tcp _ -> Alcotest.fail "unexpected tcp coordinator"
      in
      Alcotest.(check (array string))
        "verdicted session's spool was deleted" [||] (Sys.readdir spool_dir))

let test_cluster_status_scrape () =
  let log = buggy_log () in
  with_cluster (fun coord _sup ->
      (match Client.submit_log ~batch_events:64 (Coordinator.addr coord) log with
      | Client.Checked _ -> ()
      | Client.Spilled _ -> Alcotest.fail "cluster session spilled");
      (* a bare status connection against the coordinator itself *)
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Wire.sockaddr_of_addr (Coordinator.addr coord));
          Wire.send_client fd Wire.Status_request;
          match Wire.recv_server fd with
          | Wire.Status st ->
              Alcotest.(check bool) "not draining" false st.Wire.st_draining;
              let m = Metrics.decode st.Wire.st_metrics in
              Alcotest.(check bool) "scrape carries cluster-wide sessions" true
                (Metrics.value (Metrics.counter m "cluster.sessions") >= 1);
              Alcotest.(check bool) "scrape folds in worker registries" true
                (Metrics.value (Metrics.counter m "net.events") >= Log.length log)
          | _ -> Alcotest.fail "expected a status reply"))

let suite =
  [
    Alcotest.test_case "ring: deterministic placement" `Quick test_ring_deterministic;
    Alcotest.test_case "ring: basics" `Quick test_ring_basics;
    qcheck prop_ring_balance;
    qcheck prop_ring_remap_add;
    qcheck prop_ring_remap_remove;
    Alcotest.test_case "member: bounded-load placement" `Quick test_member_bounded_load;
    Alcotest.test_case "metrics: merge units" `Quick test_merge_units;
    Alcotest.test_case "metrics: merge kind mismatch" `Quick test_merge_kind_mismatch;
    Alcotest.test_case "metrics: encode roundtrip" `Quick test_encode_roundtrip;
    qcheck prop_merge_commutative;
    qcheck prop_merge_associative;
    Alcotest.test_case "metrics: json validator sanity" `Quick test_json_validator_sanity;
    Alcotest.test_case "metrics: merged json is valid" `Quick test_merged_json_is_valid;
    Alcotest.test_case "cluster: verdict matches offline" `Quick
      test_cluster_verdict_matches_offline;
    Alcotest.test_case "cluster: routes across workers" `Quick
      test_cluster_routes_across_workers;
    Alcotest.test_case "cluster: kill-a-worker failover" `Quick
      test_cluster_failover_preserves_verdict;
    Alcotest.test_case "cluster: failover resumes from checkpoint" `Quick
      test_cluster_failover_resumes_from_checkpoint;
    Alcotest.test_case "cluster: drain reroutes" `Quick test_cluster_drain_reroutes;
    Alcotest.test_case "cluster: killed worker respawns and rejoins" `Quick
      test_cluster_respawn_rejoins;
    Alcotest.test_case "cluster: spools reclaimed" `Quick test_cluster_spools_reclaimed;
    Alcotest.test_case "cluster: status scrape" `Quick test_cluster_status_scrape;
  ]
