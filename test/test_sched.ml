(* Tests for the scheduling substrate: the deterministic cooperative engine,
   the native engine, and their synchronization primitives. *)

open Vyrd_sched

let test_spawn_all_run () =
  let n = 50 in
  let count = ref 0 in
  Coop.run (fun s ->
      for _ = 1 to n do
        s.spawn (fun () ->
            s.yield ();
            incr count)
      done);
  Alcotest.(check int) "all spawned fibers ran" n !count

let trace_of_seed seed =
  (* Record the interleaving of three chatty fibers as a string. *)
  let buf = Buffer.create 64 in
  Coop.run ~seed (fun s ->
      for i = 1 to 3 do
        s.spawn (fun () ->
            for _ = 1 to 5 do
              Buffer.add_string buf (string_of_int i);
              s.yield ()
            done)
      done);
  Buffer.contents buf

let test_determinism () =
  for seed = 0 to 9 do
    Alcotest.(check string)
      (Printf.sprintf "seed %d reproduces" seed)
      (trace_of_seed seed) (trace_of_seed seed)
  done

let test_seeds_differ () =
  let distinct =
    List.init 20 trace_of_seed |> List.sort_uniq String.compare |> List.length
  in
  Alcotest.(check bool) "seeds explore several interleavings" true (distinct > 5)

let test_self_ids () =
  let ids = ref [] in
  Coop.run (fun s ->
      for _ = 1 to 4 do
        s.spawn (fun () -> ids := s.self () :: !ids)
      done;
      ids := s.self () :: !ids);
  let sorted = List.sort_uniq compare !ids in
  Alcotest.(check (list int)) "distinct consecutive tids" [ 0; 1; 2; 3; 4 ] sorted

let test_mutex_no_lost_updates () =
  for seed = 0 to 19 do
    let counter = ref 0 in
    Coop.run ~seed (fun s ->
        let m = s.new_mutex ~name:"c" () in
        for _ = 1 to 8 do
          s.spawn (fun () ->
              for _ = 1 to 10 do
                Sched.with_lock m (fun () ->
                    let v = !counter in
                    s.yield ();
                    counter := v + 1)
              done)
        done);
    Alcotest.(check int) (Printf.sprintf "seed %d" seed) 80 !counter
  done

let test_unlocked_updates_get_lost () =
  (* Sanity check for the whole methodology: with the lock removed the same
     program must exhibit lost updates under at least one seed. *)
  let lost = ref false in
  let seed = ref 0 in
  while (not !lost) && !seed < 50 do
    let counter = ref 0 in
    Coop.run ~seed:!seed (fun s ->
        for _ = 1 to 4 do
          s.spawn (fun () ->
              for _ = 1 to 5 do
                let v = !counter in
                s.yield ();
                counter := v + 1
              done)
        done);
    if !counter < 20 then lost := true;
    incr seed
  done;
  Alcotest.(check bool) "a racy interleaving exists" true !lost

let test_mutex_mutual_exclusion () =
  for seed = 0 to 19 do
    let inside = ref 0 and violation = ref false in
    Coop.run ~seed (fun s ->
        let m = s.new_mutex () in
        for _ = 1 to 5 do
          s.spawn (fun () ->
              for _ = 1 to 5 do
                Sched.with_lock m (fun () ->
                    incr inside;
                    if !inside > 1 then violation := true;
                    s.yield ();
                    decr inside)
              done)
        done);
    Alcotest.(check bool) (Printf.sprintf "seed %d exclusive" seed) false !violation
  done

let test_mutex_reentrant () =
  Coop.run (fun s ->
      let m = s.new_mutex () in
      Sched.with_lock m (fun () ->
          Sched.with_lock m (fun () -> s.yield ()));
      (* fully released: another fiber can take it *)
      let acquired = ref false in
      s.spawn (fun () -> Sched.with_lock m (fun () -> acquired := true));
      s.yield ();
      s.yield ();
      Alcotest.(check bool) "released after nested unlock" true !acquired)

let test_unlock_foreign_mutex_rejected () =
  Alcotest.check_raises "unlock without lock"
    (Invalid_argument "unlock: mutex \"m\" is not held") (fun () ->
      Coop.run (fun s ->
          let m = s.new_mutex ~name:"m" () in
          m.unlock ()))

let test_try_lock () =
  Coop.run (fun s ->
      let m = s.new_mutex () in
      Alcotest.(check bool) "free mutex acquired" true (m.try_lock ());
      Alcotest.(check bool) "reentrant try_lock" true (m.try_lock ());
      m.unlock ();
      m.unlock ();
      let observed = ref None in
      Sched.with_lock m (fun () ->
          s.spawn (fun () -> observed := Some (m.try_lock ()));
          s.yield ();
          s.yield ());
      Alcotest.(check (option bool)) "contended try_lock fails" (Some false)
        !observed)

let test_deadlock_detected () =
  let deadlocked = ref 0 in
  for seed = 0 to 29 do
    match
      Coop.run ~seed (fun s ->
          let a = s.new_mutex ~name:"a" () and b = s.new_mutex ~name:"b" () in
          s.spawn (fun () ->
              Sched.with_lock a (fun () ->
                  s.yield ();
                  Sched.with_lock b (fun () -> ())));
          s.spawn (fun () ->
              Sched.with_lock b (fun () ->
                  s.yield ();
                  Sched.with_lock a (fun () -> ()))))
    with
    | () -> ()
    | exception Coop.Deadlock _ -> incr deadlocked
  done;
  Alcotest.(check bool) "ABBA deadlock found under some seed" true (!deadlocked > 0)

let test_deadlock_message_details () =
  (* the diagnostic must name, per blocked thread, the lock it waits on, the
     owner, and the locks it itself holds (from the mutex registry) *)
  let contains hay needle =
    let n = String.length hay and m = String.length needle in
    let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
    scan 0
  in
  let msg = ref None in
  let seed = ref 0 in
  while !msg = None && !seed < 50 do
    (match
       Coop.run ~seed:!seed (fun s ->
           let a = s.new_mutex ~name:"a" () and b = s.new_mutex ~name:"b" () in
           s.spawn (fun () ->
               Sched.with_lock a (fun () ->
                   s.yield ();
                   Sched.with_lock b (fun () -> ())));
           s.spawn (fun () ->
               Sched.with_lock b (fun () ->
                   s.yield ();
                   Sched.with_lock a (fun () -> ()))))
     with
    | () -> ()
    | exception Coop.Deadlock m -> msg := Some m);
    incr seed
  done;
  match !msg with
  | None -> Alcotest.fail "ABBA scenario never deadlocked within 50 seeds"
  | Some m ->
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "%S in %S" needle m)
          true (contains m needle))
      [
        "waits on \"a\"";
        "waits on \"b\"";
        "holding {a}";
        "holding {b}";
        "held by";
      ]

let test_livelock_guard () =
  match
    Coop.run ~max_steps:1000 (fun s ->
        while true do
          s.yield ()
        done)
  with
  | () -> Alcotest.fail "expected Livelock"
  | exception Coop.Livelock n -> Alcotest.(check bool) "steps reported" true (n > 0)

let test_exception_propagates () =
  Alcotest.check_raises "fiber exception resurfaces" Exit (fun () ->
      Coop.run (fun s ->
          s.spawn (fun () -> raise Exit);
          s.yield ()))

let test_atomically_suppresses_interleaving () =
  for seed = 0 to 19 do
    let counter = ref 0 in
    Coop.run ~seed (fun s ->
        for _ = 1 to 6 do
          s.spawn (fun () ->
              for _ = 1 to 5 do
                Sched.atomic s (fun () ->
                    let v = !counter in
                    s.yield ();
                    (* suppressed *)
                    counter := v + 1)
              done)
        done);
    Alcotest.(check int) (Printf.sprintf "seed %d" seed) 30 !counter
  done

let test_rwlock_readers_share () =
  Coop.run (fun s ->
      let l = s.new_rwlock () in
      let concurrent = ref 0 and peak = ref 0 in
      for _ = 1 to 4 do
        s.spawn (fun () ->
            Sched.with_read l (fun () ->
                incr concurrent;
                if !concurrent > !peak then peak := !concurrent;
                s.yield ();
                s.yield ();
                decr concurrent))
      done;
      s.yield ());
  (* seed 0 may or may not overlap all four; just require the run finishes
     and readers were never blocked forever. *)
  Alcotest.(check pass) "terminates" () ()

let test_rwlock_writer_exclusive () =
  for seed = 0 to 19 do
    let readers = ref 0 and writing = ref false and violation = ref false in
    Coop.run ~seed (fun s ->
        let l = s.new_rwlock () in
        for _ = 1 to 3 do
          s.spawn (fun () ->
              for _ = 1 to 4 do
                Sched.with_read l (fun () ->
                    incr readers;
                    if !writing then violation := true;
                    s.yield ();
                    decr readers)
              done)
        done;
        for _ = 1 to 2 do
          s.spawn (fun () ->
              for _ = 1 to 3 do
                Sched.with_write l (fun () ->
                    writing := true;
                    if !readers > 0 then violation := true;
                    s.yield ();
                    writing := false)
              done)
        done);
    Alcotest.(check bool) (Printf.sprintf "seed %d" seed) false !violation
  done

let test_stats () =
  let stats = Coop.run_with_stats (fun s -> s.spawn (fun () -> s.yield ())) in
  Alcotest.(check int) "threads counted" 2 stats.Coop.threads;
  Alcotest.(check bool) "steps counted" true (stats.Coop.steps > 0)

(* ------------------------------------------------------------------ *)
(* Native engine *)

let test_native_counter () =
  let counter = ref 0 in
  Native.run (fun s ->
      let m = s.new_mutex () in
      for _ = 1 to 8 do
        s.spawn (fun () ->
            for _ = 1 to 1000 do
              Sched.with_lock m (fun () -> incr counter)
            done)
      done);
  Alcotest.(check int) "native locked counter" 8000 !counter

let test_native_exception () =
  Alcotest.check_raises "native thread exception resurfaces" Exit (fun () ->
      Native.run (fun s -> s.spawn (fun () -> raise Exit)))

let test_native_tids_distinct () =
  let ids = ref [] in
  Native.run (fun s ->
      let m = s.new_mutex () in
      for _ = 1 to 6 do
        s.spawn (fun () ->
            let me = s.self () in
            Sched.with_lock m (fun () -> ids := me :: !ids))
      done);
  Alcotest.(check int) "six distinct tids" 6
    (List.length (List.sort_uniq compare !ids))

let test_native_rwlock () =
  let acc = ref 0 in
  Native.run (fun s ->
      let l = s.new_rwlock () in
      for _ = 1 to 4 do
        s.spawn (fun () ->
            for _ = 1 to 100 do
              Sched.with_write l (fun () -> incr acc)
            done)
      done;
      for _ = 1 to 4 do
        s.spawn (fun () ->
            for _ = 1 to 100 do
              Sched.with_read l (fun () -> ignore !acc)
            done)
      done);
  Alcotest.(check int) "writes all applied" 400 !acc

(* ------------------------------------------------------------------ *)
(* Vec and Prng properties *)

let qcheck name gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name gen prop)

let vec_model_prop =
  let open QCheck2 in
  qcheck "Vec.push/to_list agrees with list model"
    Gen.(list int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      Vec.to_list v = xs && Vec.length v = List.length xs)

let vec_swap_remove_prop =
  let open QCheck2 in
  qcheck "Vec.swap_remove preserves multiset of elements"
    Gen.(pair (list_size (int_range 1 20) int) (int_range 0 1000))
    (fun (xs, r) ->
      let v = Vec.of_list xs in
      let i = r mod List.length xs in
      let removed = Vec.swap_remove v i in
      let remaining = Vec.to_list v in
      List.sort compare (removed :: remaining) = List.sort compare xs)

let vec_pop_prop =
  let open QCheck2 in
  qcheck "Vec.pop returns elements in LIFO order"
    Gen.(list_size (int_range 1 20) int)
    (fun xs ->
      let v = Vec.of_list xs in
      let out = List.rev_map (fun _ -> Vec.pop v) xs in
      out = xs && Vec.is_empty v)

let prng_bound_prop =
  let open QCheck2 in
  qcheck "Prng.int stays within bounds"
    Gen.(pair int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      List.for_all
        (fun _ ->
          let v = Prng.int g bound in
          v >= 0 && v < bound)
        (List.init 50 Fun.id))

let prng_determinism_prop =
  let open QCheck2 in
  qcheck "Prng is a pure function of its seed" Gen.int (fun seed ->
      let a = Prng.create seed and b = Prng.create seed in
      List.for_all (fun _ -> Prng.bits64 a = Prng.bits64 b) (List.init 20 Fun.id))

let suite =
  [
    ("coop spawn runs all fibers", `Quick, test_spawn_all_run);
    ("coop is deterministic per seed", `Quick, test_determinism);
    ("coop seeds explore interleavings", `Quick, test_seeds_differ);
    ("coop assigns distinct tids", `Quick, test_self_ids);
    ("coop mutex prevents lost updates", `Quick, test_mutex_no_lost_updates);
    ("coop races manifest without locks", `Quick, test_unlocked_updates_get_lost);
    ("coop mutex mutual exclusion", `Quick, test_mutex_mutual_exclusion);
    ("coop mutex is reentrant", `Quick, test_mutex_reentrant);
    ("coop foreign unlock rejected", `Quick, test_unlock_foreign_mutex_rejected);
    ("coop try_lock", `Quick, test_try_lock);
    ("coop detects ABBA deadlock", `Quick, test_deadlock_detected);
    ("coop deadlock message names locks held", `Quick, test_deadlock_message_details);
    ("coop livelock guard", `Quick, test_livelock_guard);
    ("coop propagates exceptions", `Quick, test_exception_propagates);
    ("coop atomically is atomic", `Quick, test_atomically_suppresses_interleaving);
    ("coop rwlock readers share", `Quick, test_rwlock_readers_share);
    ("coop rwlock writer exclusive", `Quick, test_rwlock_writer_exclusive);
    ("coop run statistics", `Quick, test_stats);
    ("native locked counter", `Quick, test_native_counter);
    ("native exception propagates", `Quick, test_native_exception);
    ("native distinct tids", `Quick, test_native_tids_distinct);
    ("native rwlock", `Quick, test_native_rwlock);
    vec_model_prop;
    vec_swap_remove_prop;
    vec_pop_prop;
    prng_bound_prop;
    prng_determinism_prop;
  ]
