(* Checkpointed resumable verification: checkpoint frames round trip
   through the segment writer and are invisible to plain event readers;
   checker snapshot/restore is equivalent to checking straight through; at
   every checkpoint position on both a correct and the checked-in buggy
   log, resume-verdict = offline-verdict with the same fail index and
   stats; a corrupted checkpoint frame can only cost replay work, never
   change a verdict; the farm-level checkpoint/restore and the
   annotate-then-resume spool protocol agree with a fresh farm; and the
   metrics-registry regressions (mutex leaked on a kind mismatch, invalid
   \ddd JSON escapes) stay fixed. *)

open Vyrd
open Vyrd_harness
open Vyrd_pipeline

let qcheck t = QCheck_alcotest.to_alcotest t

(* cwd is _build/default/test under [dune runtest], the repo root under
   [dune exec] *)
let examples_dir () =
  List.find Sys.file_exists [ "examples/logs"; "../../../examples/logs" ]

let with_spool f =
  let path = Filename.temp_file "vyrd_ckpt" ".seg" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* --- checkpoint frames in the segment format ----------------------------- *)

let checkpoint_frame_roundtrip =
  qcheck
    (QCheck2.Test.make ~name:"checkpoint frame round trip" ~count:60
       QCheck2.Gen.(
         triple
           (list_size (int_range 0 30) Test_log.event_gen)
           (list_size (int_range 0 30) Test_log.event_gen)
           Test_core.repr_gen)
       (fun (before, after, state) ->
         with_spool @@ fun path ->
         let w = Segment.create_writer ~level:`Full path in
         List.iter (Segment.append w) before;
         Segment.append_checkpoint w state;
         List.iter (Segment.append w) after;
         Segment.close w;
         (* a checkpoint-blind reader sees exactly the events *)
         let plain = Segment.read_prefix path in
         (* the resuming reader additionally collects the frame *)
         let rz = Segment.read_from_checkpoint path in
         Log.events plain.Segment.log = before @ after
         && (not plain.Segment.truncated)
         && Log.events rz.Segment.r_recovered.Segment.log = before @ after
         && Segment.writer_checkpoints w = 1
         &&
         match rz.Segment.r_checkpoints with
         | [ ck ] ->
           ck.Segment.ck_events = List.length before && ck.Segment.ck_state = state
         | _ -> false))

(* --- checker snapshot/restore -------------------------------------------- *)

let subject = Subjects.multiset_vector

let buggy_log () =
  Log.of_file (Filename.concat (examples_dir ()) "multiset_vector_buggy.log")

let correct_log () =
  Harness.run
    { Harness.default with threads = 4; ops_per_thread = 25; log_level = `View }
    (subject.Subjects.build ~bug:false)

let offline log =
  let r =
    Checker.check ~mode:`View ~view:subject.Subjects.view log
      subject.Subjects.spec
  in
  let fail =
    match r.Report.outcome with
    | Report.Pass -> None
    | Report.Fail _ -> Some (r.Report.stats.Report.events_processed - 1)
  in
  (r, fail)

let check_stats name (a : Report.stats) (b : Report.stats) =
  Alcotest.(check int) (name ^ ": events processed") a.Report.events_processed
    b.Report.events_processed;
  Alcotest.(check int) (name ^ ": methods checked") a.Report.methods_checked
    b.Report.methods_checked;
  Alcotest.(check int) (name ^ ": commits resolved") a.Report.commits_resolved
    b.Report.commits_resolved;
  Alcotest.(check (list (pair string int))) (name ^ ": per-method counts")
    a.Report.per_method b.Report.per_method

let test_snapshot_restore_roundtrip () =
  let log = correct_log () in
  let events = Log.snapshot log in
  let n = Array.length events in
  let straight, _ = offline log in
  List.iter
    (fun quarter ->
      let cut = n * quarter / 4 in
      let a =
        Checker.create ~mode:`View ~view:subject.Subjects.view
          subject.Subjects.spec
      in
      for i = 0 to cut - 1 do
        ignore (Checker.feed a events.(i))
      done;
      match Checker.snapshot a with
      | None -> Alcotest.fail "snapshot refused on a violation-free prefix"
      | Some st ->
        let b =
          Checker.create ~mode:`View ~view:subject.Subjects.view
            subject.Subjects.spec
        in
        Checker.restore b st;
        for i = cut to n - 1 do
          ignore (Checker.feed b events.(i))
        done;
        let rb = Checker.report b in
        let name = Printf.sprintf "cut at %d/%d" cut n in
        Alcotest.(check string) (name ^ ": verdict") (Report.tag straight)
          (Report.tag rb);
        check_stats name straight.Report.stats rb.Report.stats)
    [ 1; 2; 3 ]

(* --- resume = offline at every checkpoint position ------------------------ *)

let resume_equals_offline_everywhere ~every name log =
  with_spool @@ fun path ->
  let off, off_fail = offline log in
  let spool =
    Resume.check_to_spool ~mode:`View ~view:subject.Subjects.view ~every ~path
      log subject.Subjects.spec
  in
  Alcotest.(check string) (name ^ ": spooled check = offline") (Report.tag off)
    (Report.tag spool.Resume.report);
  Alcotest.(check (option int)) (name ^ ": spooled fail index") off_fail
    spool.Resume.fail_index;
  let rz = Segment.read_from_checkpoint path in
  Alcotest.(check bool) (name ^ ": spool carries checkpoints") true
    (rz.Segment.r_checkpoints <> []);
  List.iter
    (fun (ck : Segment.checkpoint) ->
      let at = ck.Segment.ck_events in
      let o =
        Resume.resume_recovered ~mode:`View ~view:subject.Subjects.view ~at rz
          subject.Subjects.spec
      in
      let pos = Printf.sprintf "%s, checkpoint at %d" name at in
      Alcotest.(check (option int)) (pos ^ ": resumed there") (Some at)
        o.Resume.resumed_at;
      Alcotest.(check int) (pos ^ ": replayed the suffix only")
        (Log.length log - at) o.Resume.replayed;
      Alcotest.(check string) (pos ^ ": verdict") (Report.tag off)
        (Report.tag o.Resume.report);
      Alcotest.(check (option int)) (pos ^ ": fail index") off_fail
        o.Resume.fail_index;
      check_stats pos off.Report.stats o.Resume.report.Report.stats)
    rz.Segment.r_checkpoints

let test_resume_equals_offline_correct () =
  resume_equals_offline_everywhere ~every:50 "correct run" (correct_log ())

let test_resume_equals_offline_buggy () =
  let log = buggy_log () in
  let off, _ = offline log in
  Alcotest.(check bool) "example log is convicting" false (Report.is_pass off);
  (* the example log convicts early (event ~18), so checkpoint densely:
     every position before the violation, including ones with windows still
     open across the checkpoint, must resume to the identical verdict *)
  resume_equals_offline_everywhere ~every:5 "buggy run" log

(* --- corruption can cost replay work, never a verdict --------------------- *)

let le32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

(* walk [magic + level | len crc count | payload]* and return the extent of
   the first frame whose count word carries the checkpoint flag (bit 31) *)
let find_checkpoint_frame bytes =
  let file_header = 7 and frame_header = 12 in
  let rec go pos =
    if pos + frame_header > String.length bytes then
      Alcotest.fail "no checkpoint frame in the spool"
    else
      let len = le32 bytes pos in
      if le32 bytes (pos + 8) land 0x80000000 <> 0 then (pos, frame_header + len)
      else go (pos + frame_header + len)
  in
  go file_header

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_corrupt_checkpoint_never_changes_verdict () =
  let log = correct_log () in
  with_spool @@ fun path ->
  ignore
    (Resume.check_to_spool ~mode:`View ~view:subject.Subjects.view ~every:200
       ~path log subject.Subjects.spec
      : Resume.outcome);
  let original = read_file path in
  let frame_off, frame_len = find_checkpoint_frame original in
  let stride = max 1 (frame_len / 128) in
  let p = ref frame_off in
  while !p < frame_off + frame_len do
    let flipped = Bytes.of_string original in
    Bytes.set flipped !p (Char.chr (Char.code original.[!p] lxor 0xff));
    write_file path (Bytes.to_string flipped);
    (match
       Resume.resume ~mode:`View ~view:subject.Subjects.view ~path
         subject.Subjects.spec
     with
    | outcome ->
      (* whatever prefix the damaged spool still cleanly recovers, the
         resumed verdict must be the offline verdict of that prefix *)
      let r = Segment.read_prefix path in
      let off, off_fail = offline r.Segment.log in
      let pos = Printf.sprintf "flip at byte %d" !p in
      Alcotest.(check string) (pos ^ ": verdict") (Report.tag off)
        (Report.tag outcome.Resume.report);
      Alcotest.(check (option int)) (pos ^ ": fail index") off_fail
        outcome.Resume.fail_index
    | exception Bincodec.Corrupt _ ->
      (* refusing to produce any verdict is always safe *)
      ());
    p := !p + stride
  done

(* --- farm checkpoint/restore --------------------------------------------- *)

let pipeline_subjects =
  [ Subjects.multiset_vector; Subjects.jvector; Subjects.string_buffer ]

let farm_shards () =
  List.map
    (fun (s : Subjects.t) ->
      Farm.shard ~mode:`View ~view:s.Subjects.view s.Subjects.name
        s.Subjects.spec)
    pipeline_subjects

let multi_log () =
  let log = Log.create ~level:`View () in
  Harness.run_into ~log
    { Harness.default with threads = 6; ops_per_thread = 60; key_pool = 10;
      key_range = 16; seed = 3 }
    (List.map (fun (s : Subjects.t) -> s.Subjects.build ~bug:false) pipeline_subjects);
  log

let test_farm_checkpoint_restore_equivalence () =
  let events = Log.snapshot (multi_log ()) in
  let n = Array.length events in
  let run_farm ?restore ~from () =
    let farm = Farm.start ?restore ~capacity:1024 ~level:`View (farm_shards ()) in
    let mid = ref None in
    for i = from to n - 1 do
      Farm.feed farm events.(i);
      if i = (n / 2) - 1 && from = 0 then mid := Farm.checkpoint farm
    done;
    (Farm.finish farm, !mid)
  in
  let full, mid = run_farm ~from:0 () in
  let state =
    match mid with
    | Some st -> st
    | None -> Alcotest.fail "mid-stream farm checkpoint refused"
  in
  let resumed, _ = run_farm ~restore:state ~from:(n / 2) () in
  Alcotest.(check string) "merged verdict" (Report.tag full.Farm.merged)
    (Report.tag resumed.Farm.merged);
  Alcotest.(check (option int)) "fail index" (Farm.min_fail_index full)
    (Farm.min_fail_index resumed);
  Alcotest.(check int) "events fed counts the restored prefix" full.Farm.fed
    resumed.Farm.fed;
  check_stats "farm restore" full.Farm.merged.Report.stats
    resumed.Farm.merged.Report.stats

(* The batched router buffers routed events in per-lane pending slices; a
   checkpoint taken mid-batch (cursor not on a slice boundary) must flush
   them through the snap-token barrier and produce exactly the snapshot an
   explicit batch-boundary flush would, and resuming from it must agree
   with the straight-through run. *)
let test_farm_checkpoint_mid_batch () =
  let events = Log.snapshot (multi_log ()) in
  let n = Array.length events in
  let feed_range farm i0 i1 =
    for i = i0 to i1 - 1 do
      Farm.feed farm events.(i)
    done
  in
  let full =
    let farm = Farm.start ~capacity:1024 ~level:`View (farm_shards ()) in
    feed_range farm 0 n;
    Farm.finish farm
  in
  List.iter
    (fun cut ->
      let name = Printf.sprintf "cut at %d/%d" cut n in
      (* checkpoint with slices in flight: [feed] alone never flushes the
         final partial slice, so at an off-boundary cut the lanes have not
         seen every routed event yet *)
      let f1 = Farm.start ~capacity:1024 ~level:`View (farm_shards ()) in
      feed_range f1 0 cut;
      let s1 = Farm.checkpoint f1 in
      ignore (Farm.finish f1 : Farm.result);
      (* same prefix, but force the batch boundary first *)
      let f2 = Farm.start ~capacity:1024 ~level:`View (farm_shards ()) in
      feed_range f2 0 cut;
      Farm.flush f2;
      let s2 = Farm.checkpoint f2 in
      ignore (Farm.finish f2 : Farm.result);
      match (s1, s2) with
      | Some a, Some b ->
        Alcotest.(check bool)
          (name ^ ": mid-batch snapshot = batch-boundary snapshot")
          true (Repr.equal a b);
        let f3 = Farm.start ~restore:a ~capacity:1024 ~level:`View (farm_shards ()) in
        feed_range f3 cut n;
        let resumed = Farm.finish f3 in
        Alcotest.(check string) (name ^ ": resumed verdict")
          (Report.tag full.Farm.merged)
          (Report.tag resumed.Farm.merged);
        Alcotest.(check (option int)) (name ^ ": resumed fail index")
          (Farm.min_fail_index full) (Farm.min_fail_index resumed);
        Alcotest.(check int) (name ^ ": fed counts the restored prefix")
          full.Farm.fed resumed.Farm.fed;
        check_stats (name ^ ": resumed stats") full.Farm.merged.Report.stats
          resumed.Farm.merged.Report.stats
      | _ -> Alcotest.fail (name ^ ": farm checkpoint refused"))
    [ 7; (n / 2) + 13; n - 3 ]

let test_resume_farm_annotates_then_resumes () =
  let log = multi_log () in
  with_spool @@ fun path ->
  let w = Segment.create_writer ~level:`View path in
  Log.iter (Segment.append w) log;
  Segment.close w;
  let shards _level = farm_shards () in
  (* first pass: nothing to resume from; annotates as it replays *)
  let o1 = Resume.resume_farm ~annotate_every:200 ~shards ~path () in
  Alcotest.(check (option int)) "first pass replays from zero" None
    o1.Resume.resumed_at;
  Alcotest.(check int) "first pass replays everything" (Log.length log)
    o1.Resume.replayed;
  (* second pass: the final annotation covers the whole spool *)
  let o2 = Resume.resume_farm ~shards ~path () in
  Alcotest.(check (option int)) "second pass resumes at the end"
    (Some (Log.length log)) o2.Resume.resumed_at;
  Alcotest.(check int) "second pass replays nothing" 0 o2.Resume.replayed;
  Alcotest.(check string) "verdicts agree" (Report.tag o1.Resume.report)
    (Report.tag o2.Resume.report);
  Alcotest.(check (option int)) "fail indices agree" o1.Resume.fail_index
    o2.Resume.fail_index

(* --- metrics-registry regressions ----------------------------------------- *)

let test_metrics_lock_released_on_kind_mismatch () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x" : Metrics.counter);
  (match Metrics.gauge m "x" with
  | _ -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ());
  (* before the fix the raise left the registry mutex locked, so any later
     registration — here from another thread, with a timeout so a
     regression fails instead of hanging the suite — deadlocked *)
  let ok = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        (match Metrics.histogram m "x" with
        | _ -> ()
        | exception Invalid_argument _ -> ());
        ignore (Metrics.counter m "y" : Metrics.counter);
        ignore (Metrics.to_json m : string);
        Atomic.set ok true)
      ()
  in
  let deadline = Unix.gettimeofday () +. 5. in
  while (not (Atomic.get ok)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Alcotest.(check bool) "registry usable after a raise inside the lock" true
    (Atomic.get ok);
  if Atomic.get ok then Thread.join th

(* A strict parser for the JSON subset Metrics.to_json emits — objects,
   strings and numbers — that rejects raw control characters and unknown
   escapes, and decodes \uXXXX; returns every string key it saw. *)
let json_string_keys s =
  let pos = ref 0 in
  let fail msg = Alcotest.fail (Printf.sprintf "invalid JSON at %d: %s" !pos msg) in
  let peek () = if !pos < String.length s then Some s.[!pos] else None in
  let next () =
    match peek () with
    | Some c ->
      incr pos;
      c
    | None -> fail "unexpected end"
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected %c" c) in
  let keys = ref [] in
  let parse_string () =
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' ->
        (match next () with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' -> (
          let hex = String.init 4 (fun _ -> next ()) in
          match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 256 -> Buffer.add_char b (Char.chr code)
          | Some _ -> fail "non-latin1 \\u escape"
          | None -> fail ("bad \\u escape " ^ hex))
        | c -> fail (Printf.sprintf "unknown escape \\%c" c));
        go ()
      | c when Char.code c < 32 -> fail "raw control character in string"
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let started = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '.' | 'e' | 'E' | '+') ->
        started := true;
        incr pos;
        go ()
      | _ -> if not !started then fail "expected a number"
    in
    go ()
  in
  let rec parse_value () =
    match peek () with
    | Some '{' -> parse_object ()
    | Some '"' ->
      expect '"';
      ignore (parse_string () : string)
    | Some _ -> parse_number ()
    | None -> fail "unexpected end"
  and parse_object () =
    expect '{';
    if peek () = Some '}' then incr pos
    else
      let rec members () =
        expect '"';
        keys := parse_string () :: !keys;
        expect ':';
        parse_value ();
        match next () with
        | ',' -> members ()
        | '}' -> ()
        | _ -> fail "expected , or }"
      in
      members ()
  in
  parse_value ();
  (match peek () with
  | Some '\n' | None -> ()
  | Some _ -> fail "trailing garbage");
  List.rev !keys

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let test_to_json_escapes_hostile_names () =
  let m = Metrics.create () in
  let hostile = "evil\"name\\with\nnew\tline\x01\x7f\xc3end" in
  Metrics.add (Metrics.counter m hostile) 3;
  Metrics.record (Metrics.gauge m "plain.gauge") 7;
  Metrics.observe (Metrics.histogram m "plain.hist") 9;
  let json = Metrics.to_json m in
  let keys = json_string_keys json in
  Alcotest.(check bool) "hostile name round trips through the escaper" true
    (List.mem hostile keys);
  Alcotest.(check bool) "plain names survive" true
    (List.mem "plain.gauge" keys && List.mem "plain.hist" keys);
  (* the old String.escaped path emitted \001 — decimal escapes no JSON
     parser accepts *)
  Alcotest.(check bool) "no \\ddd decimal escapes" false
    (contains ~affix:"\\001" json)

let suite =
  [
    checkpoint_frame_roundtrip;
    ("checker snapshot/restore round trip", `Quick, test_snapshot_restore_roundtrip);
    ( "resume = offline at every checkpoint (correct)",
      `Quick,
      test_resume_equals_offline_correct );
    ( "resume = offline at every checkpoint (buggy)",
      `Quick,
      test_resume_equals_offline_buggy );
    ( "corrupt checkpoint never changes the verdict",
      `Quick,
      test_corrupt_checkpoint_never_changes_verdict );
    ( "farm checkpoint/restore = straight through",
      `Quick,
      test_farm_checkpoint_restore_equivalence );
    ( "farm checkpoint mid-batch = batch boundary",
      `Quick,
      test_farm_checkpoint_mid_batch );
    ( "resume_farm annotates, then resumes O(1)",
      `Quick,
      test_resume_farm_annotates_then_resumes );
    ( "metrics: lock released on kind mismatch",
      `Quick,
      test_metrics_lock_released_on_kind_mismatch );
    ( "metrics: to_json escapes hostile names",
      `Quick,
      test_to_json_escapes_hostile_names );
  ]
