open Vyrd
module Sched = Vyrd_sched.Sched
module Cell = Instrument.Cell

type bug = Non_atomic_last_index_of

type t = {
  ctx : Instrument.ctx;
  lock : Sched.mutex;
  count : int Cell.t;
  elems : int Cell.t array;
  bugs : bug list;
}

type outcome = Success | Failure

let count_var = "count"
let elem_var i = Printf.sprintf "elem[%d]" i

let create ?(bugs = []) ~capacity ctx =
  {
    ctx;
    lock = Instrument.mutex ctx ~name:"vector";
    count = Cell.make ctx ~name:count_var ~repr:(fun c -> Repr.Int c) 0;
    elems =
      Array.init capacity (fun i ->
          Cell.make ctx ~name:(elem_var i) ~repr:(fun x -> Repr.Int x) 0);
    bugs;
  }

let capacity t = Array.length t.elems

let add t x =
  let body () =
    Sched.with_lock t.lock (fun () ->
        let c = Cell.get t.count in
        if c >= capacity t then Repr.failure
        else begin
          Cell.set t.elems.(c) x;
          Cell.set_and_commit t.count (c + 1);
          Repr.success
        end)
  in
  if Repr.is_success (Instrument.op t.ctx "add" [ Repr.Int x ] body) then Success
  else Failure

let remove_last t =
  let body () =
    Sched.with_lock t.lock (fun () ->
        let c = Cell.get t.count in
        if c = 0 then Repr.Bool false
        else begin
          (* The stale element beyond the new count stays in its slot, as in
             the JDK — feeding the lastIndexOf bug. *)
          Cell.set_and_commit t.count (c - 1);
          Repr.Bool true
        end)
  in
  Instrument.op t.ctx "remove_last" [] body = Repr.Bool true

(* Shifting updates touch several visible slots; brackets them in a commit
   block so the replayed view only changes at the count write. *)
let insert_at t i x =
  let body () =
    Sched.with_lock t.lock (fun () ->
        let c = Cell.get t.count in
        if i < 0 || i > c || c >= capacity t then Repr.failure
        else begin
          Instrument.with_block t.ctx (fun () ->
              for j = c - 1 downto i do
                Cell.set t.elems.(j + 1) (Cell.get t.elems.(j))
              done;
              Cell.set t.elems.(i) x;
              Cell.set_and_commit t.count (c + 1));
          Repr.success
        end)
  in
  if Repr.is_success (Instrument.op t.ctx "insert_at" [ Repr.Int i; Repr.Int x ] body)
  then Success
  else Failure

let remove_at t i =
  let body () =
    Sched.with_lock t.lock (fun () ->
        let c = Cell.get t.count in
        if i < 0 || i >= c then Repr.Bool false
        else begin
          Instrument.with_block t.ctx (fun () ->
              for j = i to c - 2 do
                Cell.set t.elems.(j) (Cell.get t.elems.(j + 1))
              done;
              Cell.set_and_commit t.count (c - 1));
          Repr.Bool true
        end)
  in
  Instrument.op t.ctx "remove_at" [ Repr.Int i ] body = Repr.Bool true

let set t i x =
  let body () =
    Sched.with_lock t.lock (fun () ->
        let c = Cell.get t.count in
        if i < 0 || i >= c then Repr.Bool false
        else begin
          Cell.set_and_commit t.elems.(i) x;
          Repr.Bool true
        end)
  in
  Instrument.op t.ctx "set" [ Repr.Int i; Repr.Int x ] body = Repr.Bool true

let clear t =
  let body () =
    Sched.with_lock t.lock (fun () ->
        Cell.set_and_commit t.count 0;
        Repr.Unit)
  in
  ignore (Instrument.op t.ctx "clear" [] body)

let get t i =
  let body () =
    Sched.with_lock t.lock (fun () ->
        let c = Cell.get t.count in
        if i >= 0 && i < c then Repr.Int (Cell.get t.elems.(i))
        else Repr.Str "out_of_bounds")
  in
  match Instrument.op t.ctx "get" [ Repr.Int i ] body with
  | Repr.Int v -> Some v
  | _ -> None

let size t =
  let body () = Sched.with_lock t.lock (fun () -> Repr.Int (Cell.get t.count)) in
  match Instrument.op t.ctx "size" [] body with Repr.Int n -> n | _ -> assert false

let is_empty t =
  let body () = Sched.with_lock t.lock (fun () -> Repr.Bool (Cell.get t.count = 0)) in
  Instrument.op t.ctx "is_empty" [] body = Repr.Bool true

let index_of t x =
  let body () =
    Sched.with_lock t.lock (fun () ->
        let c = Cell.get t.count in
        let rec go i =
          if i >= c then -1 else if Cell.get t.elems.(i) = x then i else go (i + 1)
        in
        Repr.Int (go 0))
  in
  match Instrument.op t.ctx "index_of" [ Repr.Int x ] body with
  | Repr.Int i -> i
  | _ -> assert false

let contains t x =
  let body () =
    Sched.with_lock t.lock (fun () ->
        let c = Cell.get t.count in
        let rec go i =
          if i >= c then false else Cell.get t.elems.(i) = x || go (i + 1)
        in
        Repr.Bool (go 0))
  in
  Instrument.op t.ctx "contains" [ Repr.Int x ] body = Repr.Bool true

(* The scan from [from] downwards, under the monitor. *)
let scan_down t x from =
  let rec go i = if i < 0 then -1 else if Cell.get t.elems.(i) = x then i else go (i - 1) in
  go from

exception Index_out_of_bounds

let last_index_of t x =
  let buggy = List.mem Non_atomic_last_index_of t.bugs in
  let body () =
    if buggy then begin
      (* JDK bug: lastIndexOf(Object) reads elementCount outside the
         monitor, then calls the synchronized lastIndexOf(Object, index)
         whose bounds check throws if the vector shrank in between.  The
         exceptional return is never admitted by the specification, which is
         how refinement checking catches this observer-only bug. *)
      let c = Sched.with_lock t.lock (fun () -> Cell.get t.count) in
      t.ctx.Instrument.sched.Sched.yield ();
      Sched.with_lock t.lock (fun () ->
          let cur = Cell.get t.count in
          if c > cur then Repr.Str "index_out_of_bounds"
          else Repr.Int (scan_down t x (c - 1)))
    end
    else
      Sched.with_lock t.lock (fun () ->
          let c = Cell.get t.count in
          Repr.Int (scan_down t x (c - 1)))
  in
  match Instrument.op t.ctx "last_index_of" [ Repr.Int x ] body with
  | Repr.Int i -> i
  | _ -> raise Index_out_of_bounds

let viewdef ~capacity : View.t =
  (* precomputed var names: the closure runs at every commit, and a sprintf
     per element per commit dominates the checker's view path *)
  let elem_vars = Array.init capacity elem_var in
  View.Full
    (fun lookup ->
      let c = match lookup count_var with Some (Repr.Int c) -> c | _ -> 0 in
      let elt i =
        match lookup elem_vars.(i) with Some (Repr.Int x) -> Repr.int x | _ -> Repr.int 0
      in
      Repr.List (List.init (min c capacity) elt))

let unsafe_contents t =
  List.init (Cell.peek t.count) (fun i -> Cell.peek t.elems.(i))

(* Specification: the sequence of elements. ------------------------------ *)

module S = struct
  type state = int list

  let name = "vector"
  let init () = []

  let kind = function
    | "add" | "remove_last" | "insert_at" | "remove_at" | "set" | "clear" ->
      Spec.Mutator
    | "get" | "size" | "is_empty" | "contains" | "index_of" | "last_index_of" ->
      Spec.Observer
    | m -> invalid_arg ("vector spec: unknown method " ^ m)

  let bad fmt = Printf.ksprintf (fun m -> Error m) fmt

  let apply st ~mid ~args ~ret =
    match (mid, args, ret) with
    | "add", [ Repr.Int x ], ret when Repr.is_success ret -> Ok (st @ [ x ])
    | "add", [ Repr.Int _ ], ret when Repr.equal ret Repr.failure -> Ok st
    | "remove_last", [], Repr.Bool true -> (
      match List.rev st with
      | _ :: rest -> Ok (List.rev rest)
      | [] -> bad "remove_last returned true on an empty vector")
    | "remove_last", [], Repr.Bool false ->
      if st = [] then Ok st else bad "remove_last returned false on a non-empty vector"
    | "insert_at", [ Repr.Int i; Repr.Int x ], ret when Repr.is_success ret ->
      let len = List.length st in
      if i < 0 || i > len then bad "insert_at(%d) succeeded out of bounds" i
      else
        Ok (List.filteri (fun j _ -> j < i) st @ [ x ] @ List.filteri (fun j _ -> j >= i) st)
    | "insert_at", _, ret when Repr.equal ret Repr.failure -> Ok st
    | "remove_at", [ Repr.Int i ], Repr.Bool true ->
      if i >= 0 && i < List.length st then Ok (List.filteri (fun j _ -> j <> i) st)
      else bad "remove_at(%d) returned true out of bounds" i
    | "remove_at", [ Repr.Int i ], Repr.Bool false ->
      if i < 0 || i >= List.length st then Ok st
      else bad "remove_at(%d) returned false in bounds" i
    | "set", [ Repr.Int i; Repr.Int x ], Repr.Bool true ->
      if i >= 0 && i < List.length st then
        Ok (List.mapi (fun j v -> if j = i then x else v) st)
      else bad "set(%d) returned true out of bounds" i
    | "set", [ Repr.Int i; Repr.Int _ ], Repr.Bool false ->
      if i < 0 || i >= List.length st then Ok st
      else bad "set(%d) returned false in bounds" i
    | "clear", [], Repr.Unit -> Ok []
    | mid, _, _ -> bad "no %s transition matches the observed arguments/return" mid

  let observe st ~mid ~args ~ret =
    let len = List.length st in
    match (mid, args, ret) with
    | "size", [], Repr.Int n -> n = len
    | "get", [ Repr.Int i ], Repr.Int v -> i >= 0 && i < len && List.nth st i = v
    | "get", [ Repr.Int i ], Repr.Str "out_of_bounds" -> i < 0 || i >= len
    | "contains", [ Repr.Int x ], Repr.Bool b -> b = List.mem x st
    | "last_index_of", [ Repr.Int x ], Repr.Int r ->
      let last =
        List.fold_left
          (fun (i, acc) v -> (i + 1, if v = x then i else acc))
          (0, -1) st
        |> snd
      in
      r = last
    | "is_empty", [], Repr.Bool b -> b = (len = 0)
    | "index_of", [ Repr.Int x ], Repr.Int r ->
      let rec first i = function
        | [] -> -1
        | v :: _ when v = x -> i
        | _ :: rest -> first (i + 1) rest
      in
      r = first 0 st
    (* non-committing mutator executions *)
    | "add", _, ret -> Repr.equal ret Repr.failure
    | "remove_last", [], Repr.Bool false -> len = 0
    (* insert_at may also fail on a full vector, which the specification
       cannot observe, so any failure is admissible *)
    | "insert_at", _, ret -> Repr.equal ret Repr.failure
    | "remove_at", [ Repr.Int i ], Repr.Bool false -> i < 0 || i >= len
    | "set", [ Repr.Int i; _ ], Repr.Bool false -> i < 0 || i >= len
    | _ -> false

  let view st = Repr.List (List.map Repr.int st)
  let snapshot st = st
  let save st = Some (view st)

  let load = function
    | Repr.List xs ->
      List.map
        (function
          | Repr.Int x -> x
          | v -> invalid_arg ("vector spec: bad saved element " ^ Repr.to_string v))
        xs
    | v -> invalid_arg ("vector spec: bad saved state " ^ Repr.to_string v)
end

let spec : Spec.t = (module S)
