open Vyrd
module Sched = Vyrd_sched.Sched
module Cell = Instrument.Cell

type bug = Unprotected_append_source

type buffer = {
  id : int;
  len : int Cell.t;
  chars : char Cell.t array;
  lock : Sched.mutex;
}

type pool = { ctx : Instrument.ctx; bufs : buffer array; bugs : bug list }

type outcome = Success | Failure

let len_var b = Printf.sprintf "b%d.len" b
let char_var b j = Printf.sprintf "b%d.char[%d]" b j

let create ?(bugs = []) ~buffers ~buf_capacity ctx =
  let buffer id =
    {
      id;
      len = Cell.make ctx ~name:(len_var id) ~repr:(fun l -> Repr.Int l) 0;
      chars =
        Array.init buf_capacity (fun j ->
            Cell.make ctx ~name:(char_var id j)
              ~repr:(fun c -> Repr.Str (String.make 1 c))
              '\000');
      lock = Instrument.mutex ctx ~name:(Printf.sprintf "b%d" id);
    }
  in
  { ctx; bufs = Array.init buffers buffer; bugs }

let buf p b =
  if b < 0 || b >= Array.length p.bufs then
    invalid_arg (Printf.sprintf "string_buffer: no buffer %d" b);
  p.bufs.(b)


(* Store [data] at the end of [dst], whose monitor the caller holds; the
   length update is the commit action. *)
let blit_and_commit dst data =
  let l = Cell.get dst.len in
  let n = String.length data in
  if l + n > Array.length dst.chars then Repr.failure
  else begin
    String.iteri (fun k c -> Cell.set dst.chars.(l + k) c) data;
    Cell.set_and_commit dst.len (l + n);
    Repr.success
  end

let append_str p b s =
  let dst = buf p b in
  let body () = Sched.with_lock dst.lock (fun () -> blit_and_commit dst s) in
  let ret = Instrument.op p.ctx "append_str" [ Repr.Int b; Repr.Str s ] body in
  if Repr.is_success ret then Success else Failure

(* Read [n] characters of [src] under its monitor — stale slots beyond the
   current length are returned as-is, as in the JDK. *)
let read_chars src n =
  String.init n (fun j -> Cell.get src.chars.(j))

let append_sb p ~dst ~src =
  let d = buf p dst and s = buf p src in
  let buggy = List.mem Unprotected_append_source p.bugs in
  let body () =
    if buggy then begin
      (* JDK bug: length and characters are read in separate critical
         sections of the source's monitor. *)
      let n = Sched.with_lock s.lock (fun () -> Cell.get s.len) in
      p.ctx.Instrument.sched.Sched.yield ();
      let data = Sched.with_lock s.lock (fun () -> read_chars s n) in
      Sched.with_lock d.lock (fun () -> blit_and_commit d data)
    end
    else begin
      (* Lock both monitors, lowest id first (deadlock-free; reentrant when
         dst = src). *)
      let first, second = if d.id <= s.id then (d, s) else (s, d) in
      Sched.with_lock first.lock (fun () ->
          Sched.with_lock second.lock (fun () ->
              let data = read_chars s (Cell.get s.len) in
              blit_and_commit d data))
    end
  in
  let ret = Instrument.op p.ctx "append_sb" [ Repr.Int dst; Repr.Int src ] body in
  if Repr.is_success ret then Success else Failure

let truncate p b n =
  let d = buf p b in
  let body () =
    Sched.with_lock d.lock (fun () ->
        let l = Cell.get d.len in
        if n >= 0 && n <= l then begin
          Cell.set_and_commit d.len n;
          Repr.Bool true
        end
        else Repr.Bool false)
  in
  Instrument.op p.ctx "truncate" [ Repr.Int b; Repr.Int n ] body = Repr.Bool true

let set_char p b i c =
  let d = buf p b in
  let body () =
    Sched.with_lock d.lock (fun () ->
        let l = Cell.get d.len in
        if i < 0 || i >= l then Repr.Bool false
        else begin
          Cell.set_and_commit d.chars.(i) c;
          Repr.Bool true
        end)
  in
  Instrument.op p.ctx "set_char"
    [ Repr.Int b; Repr.Int i; Repr.Str (String.make 1 c) ]
    body
  = Repr.Bool true

(* Shifts several visible characters, so the whole update sits in a commit
   block whose commit action is the length write. *)
let delete_range p b ~pos ~len =
  let d = buf p b in
  let body () =
    Sched.with_lock d.lock (fun () ->
        let l = Cell.get d.len in
        if pos < 0 || len < 0 || pos + len > l then Repr.Bool false
        else begin
          Instrument.with_block p.ctx (fun () ->
              for j = pos to l - len - 1 do
                Cell.set d.chars.(j) (Cell.get d.chars.(j + len))
              done;
              Cell.set_and_commit d.len (l - len));
          Repr.Bool true
        end)
  in
  Instrument.op p.ctx "delete_range" [ Repr.Int b; Repr.Int pos; Repr.Int len ] body
  = Repr.Bool true

let reverse p b =
  let d = buf p b in
  let body () =
    Sched.with_lock d.lock (fun () ->
        let l = Cell.get d.len in
        Instrument.with_block p.ctx (fun () ->
            for j = 0 to (l / 2) - 1 do
              let a = Cell.get d.chars.(j) and z = Cell.get d.chars.(l - 1 - j) in
              Cell.set d.chars.(j) z;
              Cell.set d.chars.(l - 1 - j) a
            done;
            Instrument.commit p.ctx);
        Repr.Unit)
  in
  ignore (Instrument.op p.ctx "reverse" [ Repr.Int b ] body)

let char_at p b i =
  let d = buf p b in
  let body () =
    Sched.with_lock d.lock (fun () ->
        let l = Cell.get d.len in
        if i < 0 || i >= l then Repr.Str "index_out_of_bounds"
        else Repr.Str (String.make 1 (Cell.get d.chars.(i))))
  in
  match Instrument.op p.ctx "char_at" [ Repr.Int b; Repr.Int i ] body with
  | Repr.Str s when String.length s = 1 -> Some s.[0]
  | _ -> None

let to_string p b =
  let d = buf p b in
  let body () =
    Sched.with_lock d.lock (fun () -> Repr.Str (read_chars d (Cell.get d.len)))
  in
  match Instrument.op p.ctx "to_string" [ Repr.Int b ] body with
  | Repr.Str s -> s
  | _ -> assert false

let length p b =
  let d = buf p b in
  let body () = Sched.with_lock d.lock (fun () -> Repr.Int (Cell.get d.len)) in
  match Instrument.op p.ctx "length" [ Repr.Int b ] body with
  | Repr.Int n -> n
  | _ -> assert false

let unsafe_contents p b =
  let d = buf p b in
  String.init (Cell.peek d.len) (fun j -> Cell.peek d.chars.(j))

let viewdef ~buffers ~buf_capacity : View.t =
  (* precomputed var names: the closure runs at every commit, and a sprintf
     per character per commit dominates the checker's view path *)
  let len_vars = Array.init buffers len_var in
  let char_vars =
    Array.init buffers (fun b -> Array.init buf_capacity (char_var b))
  in
  View.Full
    (fun lookup ->
      let contents b =
        let l =
          match lookup len_vars.(b) with Some (Repr.Int l) -> min l buf_capacity | _ -> 0
        in
        let ch j =
          match lookup char_vars.(b).(j) with
          | Some (Repr.Str s) when String.length s = 1 -> s.[0]
          | _ -> '\000'
        in
        Repr.Str (String.init l ch)
      in
      View.canonical_of_assoc
        (List.init buffers (fun b -> (Repr.int b, contents b))))

(* Specification: a map from buffer id to contents. ---------------------- *)

module IntMap = Map.Make (Int)

let spec ~buffers : Spec.t =
  let module S = struct
    type state = string IntMap.t

    let name = "string_buffer"

    let init () =
      List.fold_left (fun m b -> IntMap.add b "" m) IntMap.empty
        (List.init buffers Fun.id)

    let kind = function
      | "append_str" | "append_sb" | "truncate" | "set_char" | "delete_range"
      | "reverse" -> Spec.Mutator
      | "to_string" | "length" | "char_at" -> Spec.Observer
      | m -> invalid_arg ("string_buffer spec: unknown method " ^ m)

    let bad fmt = Printf.ksprintf (fun m -> Error m) fmt
    let contents st b = match IntMap.find_opt b st with Some s -> s | None -> ""

    let apply st ~mid ~args ~ret =
      match (mid, args, ret) with
      | "append_str", [ Repr.Int b; Repr.Str s ], ret when Repr.is_success ret ->
        Ok (IntMap.add b (contents st b ^ s) st)
      | "append_str", _, ret when Repr.equal ret Repr.failure -> Ok st
      | "append_sb", [ Repr.Int d; Repr.Int s ], ret when Repr.is_success ret ->
        (* the committed transition appends the source's *current* abstract
           contents — stale bytes in the implementation show up as a view
           (or later to_string) mismatch *)
        Ok (IntMap.add d (contents st d ^ contents st s) st)
      | "append_sb", _, ret when Repr.equal ret Repr.failure -> Ok st
      | "truncate", [ Repr.Int b; Repr.Int n ], Repr.Bool true ->
        let c = contents st b in
        if n >= 0 && n <= String.length c then Ok (IntMap.add b (String.sub c 0 n) st)
        else bad "truncate(%d, %d) returned true but the buffer is shorter" b n
      | "truncate", [ Repr.Int b; Repr.Int n ], Repr.Bool false ->
        if n < 0 || n > String.length (contents st b) then Ok st
        else bad "truncate(%d, %d) returned false but was applicable" b n
      | "set_char", [ Repr.Int b; Repr.Int i; Repr.Str ch ], Repr.Bool true ->
        let c = contents st b in
        if i >= 0 && i < String.length c && String.length ch = 1 then
          Ok (IntMap.add b (String.mapi (fun j x -> if j = i then ch.[0] else x) c) st)
        else bad "set_char(%d, %d) returned true out of bounds" b i
      | "set_char", [ Repr.Int b; Repr.Int i; Repr.Str _ ], Repr.Bool false ->
        if i < 0 || i >= String.length (contents st b) then Ok st
        else bad "set_char(%d, %d) returned false in bounds" b i
      | "delete_range", [ Repr.Int b; Repr.Int pos; Repr.Int len ], Repr.Bool true ->
        let c = contents st b in
        if pos >= 0 && len >= 0 && pos + len <= String.length c then
          Ok
            (IntMap.add b
               (String.sub c 0 pos
               ^ String.sub c (pos + len) (String.length c - pos - len))
               st)
        else bad "delete_range(%d, %d, %d) returned true out of range" b pos len
      | "delete_range", [ Repr.Int b; Repr.Int pos; Repr.Int len ], Repr.Bool false ->
        if pos < 0 || len < 0 || pos + len > String.length (contents st b) then Ok st
        else bad "delete_range(%d, %d, %d) returned false in range" b pos len
      | "reverse", [ Repr.Int b ], Repr.Unit ->
        let c = contents st b in
        let n = String.length c in
        Ok (IntMap.add b (String.init n (fun j -> c.[n - 1 - j])) st)
      | mid, _, _ -> bad "no %s transition matches the observed arguments/return" mid

    let observe st ~mid ~args ~ret =
      match (mid, args, ret) with
      | "to_string", [ Repr.Int b ], Repr.Str s -> s = contents st b
      | "length", [ Repr.Int b ], Repr.Int n -> n = String.length (contents st b)
      (* non-committing mutator executions *)
      | ("append_str" | "append_sb"), _, ret -> Repr.equal ret Repr.failure
      | "truncate", [ Repr.Int b; Repr.Int n ], Repr.Bool false ->
        n < 0 || n > String.length (contents st b)
      | "char_at", [ Repr.Int b; Repr.Int i ], Repr.Str s ->
        let c = contents st b in
        if String.length s = 1 then i >= 0 && i < String.length c && c.[i] = s.[0]
        else s = "index_out_of_bounds" && (i < 0 || i >= String.length c)
      | "set_char", [ Repr.Int b; Repr.Int i; _ ], Repr.Bool false ->
        i < 0 || i >= String.length (contents st b)
      | "delete_range", [ Repr.Int b; Repr.Int pos; Repr.Int len ], Repr.Bool false ->
        pos < 0 || len < 0 || pos + len > String.length (contents st b)
      | _ -> false

    let view st =
      View.canonical_of_assoc
        (IntMap.fold (fun b s acc -> (Repr.int b, Repr.Str s) :: acc) st [])

    let snapshot st = st

    let save st =
      Some
        (Repr.List
           (IntMap.fold (fun b s acc -> Repr.Pair (Repr.Int b, Repr.Str s) :: acc) st []))

    let load = function
      | Repr.List kvs ->
        List.fold_left
          (fun st -> function
            | Repr.Pair (Repr.Int b, Repr.Str s) -> IntMap.add b s st
            | v -> invalid_arg ("string-buffer spec: bad saved entry " ^ Repr.to_string v))
          IntMap.empty kvs
      | v -> invalid_arg ("string-buffer spec: bad saved state " ^ Repr.to_string v)
  end in
  (module S)
