(* Consistent-hash ring with virtual nodes.  Immutable: membership changes
   build a fresh ring, so readers never see a half-updated point array and
   the minimal-remapping property is trivially testable (compare lookups
   against two ring values). *)

type t = {
  vnodes : int;
  seed : int;
  members : string list;  (* sorted, unique *)
  points : (int * string) array;  (* sorted by (hash, member) *)
}

(* FNV-1a over 64 bits, folded to a nonnegative 62-bit OCaml int (native
   ints carry 63 bits incl. sign, so only the top 62 hash bits fit).  The
   seed is mixed in first, so two rings with different seeds place the same
   members at unrelated points — deterministic given (seed, member, vnode),
   with no dependence on [Hashtbl.hash]'s unspecified evolution. *)
let hash ~seed s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let mix byte = h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) prime in
  mix (seed land 0xff);
  mix ((seed asr 8) land 0xff);
  mix ((seed asr 16) land 0xff);
  mix ((seed asr 24) land 0xff);
  String.iter (fun c -> mix (Char.code c)) s;
  (* fmix64-style avalanche: bare FNV barely propagates the last bytes into
     the high bits, so a member's "m#0".."m#127" vnode points would all land
     in one clump and balance would collapse *)
  let shift_mix n = h := Int64.logxor !h (Int64.shift_right_logical !h n) in
  shift_mix 33;
  h := Int64.mul !h 0xff51afd7ed558ccdL;
  shift_mix 33;
  h := Int64.mul !h 0xc4ceb9fe1a85ec53L;
  shift_mix 33;
  Int64.to_int (Int64.shift_right_logical !h 2)

let build vnodes seed members =
  let points = Array.make (List.length members * vnodes) (0, "") in
  let i = ref 0 in
  List.iter
    (fun m ->
      for v = 0 to vnodes - 1 do
        points.(!i) <- (hash ~seed (Printf.sprintf "%s#%d" m v), m);
        incr i
      done)
    members;
  Array.sort compare points;
  points

let create ?(vnodes = 128) ?(seed = 0) members =
  if vnodes <= 0 then invalid_arg "Hashring.create: vnodes";
  let members = List.sort_uniq String.compare members in
  { vnodes; seed; members; points = build vnodes seed members }

let members t = t.members
let vnodes t = t.vnodes
let seed t = t.seed
let is_empty t = t.members = []

let add t m =
  if List.mem m t.members then t
  else create ~vnodes:t.vnodes ~seed:t.seed (m :: t.members)

let remove t m =
  if not (List.mem m t.members) then t
  else create ~vnodes:t.vnodes ~seed:t.seed (List.filter (( <> ) m) t.members)

(* Index of the first point at or clockwise-after [h] (wrapping to 0). *)
let successor t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let lookup t key =
  if is_empty t then None
  else Some (snd t.points.(successor t (hash ~seed:t.seed key)))

(* Every member, in ring order starting from [key]'s owner — the overflow
   order a router walks when the owner is at capacity (consistent hashing
   with bounded loads). *)
let ordered t key =
  if is_empty t then []
  else begin
    let n = Array.length t.points in
    let start = successor t (hash ~seed:t.seed key) in
    let seen = Hashtbl.create 8 in
    let acc = ref [] in
    let i = ref 0 in
    while !i < n && Hashtbl.length seen < List.length t.members do
      let _, m = t.points.((start + !i) mod n) in
      if not (Hashtbl.mem seen m) then begin
        Hashtbl.add seen m ();
        acc := m :: !acc
      end;
      incr i
    done;
    List.rev !acc
  end

(* Exact arc-length share of the key space owned by each member, as a
   fraction of 1.0 — deterministic, so balance properties need no key
   sampling.  Keys in (points[i-1], points[i]] belong to points[i]; the
   wrap arc (points[n-1], 2^62) ++ [0, points[0]] belongs to points[0]. *)
let shares t =
  let n = Array.length t.points in
  if n = 0 then []
  else begin
    let space = float_of_int max_int +. 1.0 in
    let tbl = Hashtbl.create 8 in
    let credit m w =
      let cur = try Hashtbl.find tbl m with Not_found -> 0.0 in
      Hashtbl.replace tbl m (cur +. w)
    in
    for i = 1 to n - 1 do
      credit (snd t.points.(i)) (float_of_int (fst t.points.(i) - fst t.points.(i - 1)))
    done;
    credit (snd t.points.(0))
      (space -. float_of_int (fst t.points.(n - 1)) +. float_of_int (fst t.points.(0)));
    List.map (fun m -> (m, (try Hashtbl.find tbl m with Not_found -> 0.0) /. space)) t.members
  end
