(** Consistent-hash ring with virtual nodes.

    Session routing for the cluster: each member contributes [vnodes]
    deterministic, seeded points on a 63-bit circle (FNV-1a of
    ["member#i"], seed mixed in), and a key belongs to the member owning
    the first point at or clockwise-after the key's hash.  Two properties
    make this the right router for stateful sessions:

    - {b balance}: with enough virtual nodes every member owns close to a
      [1/n] share of the key space (see {!shares} for the exact arcs);
    - {b minimal remapping}: adding a member moves only keys that now land
      on the new member's points; removing one moves only its own keys.

    Values are immutable — {!add}/{!remove} build a fresh ring — so a
    router can swap rings atomically and compare placements across
    membership changes. *)

type t

(** [create members] builds a ring.  Duplicate names are collapsed.
    @param vnodes points per member (default 128) — balance tightens as
      [1/sqrt vnodes].
    @param seed placement seed (default 0): rings with equal members,
      vnodes and seed are identical, across processes and runs.
    @raise Invalid_argument when [vnodes <= 0]. *)
val create : ?vnodes:int -> ?seed:int -> string list -> t

(** Members, sorted. *)
val members : t -> string list

val vnodes : t -> int
val seed : t -> int
val is_empty : t -> bool

(** [add t m] is a ring with [m] added ([t] itself when already present). *)
val add : t -> string -> t

(** [remove t m] is a ring without [m] ([t] itself when absent). *)
val remove : t -> string -> t

(** [lookup t key] is the member owning [key]; [None] on an empty ring. *)
val lookup : t -> string -> string option

(** [ordered t key] is every member in ring order starting from [key]'s
    owner — the overflow order a router walks when the owner is at
    capacity, so displaced sessions still land deterministically. *)
val ordered : t -> string -> string list

(** Exact arc-length share of the key space per member (fractions summing
    to 1.0) — the deterministic balance measure the property tests gate. *)
val shares : t -> (string * float) list

(** The ring's placement hash (exposed for tests). *)
val hash : seed:int -> string -> int
