module Wire = Vyrd_net.Wire
module Server = Vyrd_net.Server
module Farm = Vyrd_pipeline.Farm
module Metrics = Vyrd_pipeline.Metrics

type entry = {
  e_name : string;
  mutable e_server : Server.t option;  (* [None] while dead, awaiting respawn *)
  mutable e_respawns : int;
}

type t = {
  dir : string;
  mutable entries : entry list;
  lock : Mutex.t;
  mutable stopping : bool;
  max_respawns : int;
  backoff : float;
  on_respawn : (string -> Wire.addr -> unit) option;
  spawn : string -> Server.t;
}

let start ?(count = 2) ?(prefix = "w") ?max_sessions ?capacity ?window
    ?(idle_timeout = 120.) ?checkpoint_events ?analyze ?(max_respawns = 0)
    ?(backoff = 0.05) ?on_respawn ~dir ~shards () =
  if count <= 0 then invalid_arg "Supervisor.start: count";
  if max_respawns < 0 then invalid_arg "Supervisor.start: max_respawns";
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let spawn e_name =
    let path = Filename.concat dir (e_name ^ ".sock") in
    (* a killed worker leaves its socket file behind; clear it so the
       respawn can bind the same address the coordinator knows *)
    if Sys.file_exists path then Sys.remove path;
    let cfg =
      Server.config ?max_sessions ?capacity ?window ~idle_timeout
        ?checkpoint_events ?analyze ~metrics:(Metrics.create ())
        ~addr:(Wire.Unix_socket path) shards
    in
    Server.start cfg
  in
  let entries =
    List.init count (fun i ->
        let e_name = Printf.sprintf "%s%d" prefix i in
        { e_name; e_server = Some (spawn e_name); e_respawns = 0 })
  in
  { dir; entries; lock = Mutex.create (); stopping = false; max_respawns;
    backoff; on_respawn; spawn }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let workers t =
  locked t (fun () ->
      List.filter_map
        (fun e ->
          Option.map (fun s -> (e.e_name, Server.addr s)) e.e_server)
        t.entries)

let server t name =
  locked t (fun () ->
      List.find_map
        (fun e -> if e.e_name = name then e.e_server else None)
        t.entries)

let respawns t name =
  locked t (fun () ->
      List.find_map
        (fun e -> if e.e_name = name then Some e.e_respawns else None)
        t.entries)
  |> Option.value ~default:0

(* After the backoff, rebuild the worker on its original socket path and
   announce it.  The entry stays in [t.entries] the whole time (with
   [e_server = None]) so a second kill arriving before the respawn lands is
   a no-op rather than a leak. *)
let respawn_later t e =
  let delay = t.backoff *. (2. ** float_of_int (e.e_respawns - 1)) in
  ignore
    (Thread.create
       (fun () ->
         Thread.delay delay;
         if not t.stopping then
           match t.spawn e.e_name with
           | srv ->
               let keep =
                 locked t (fun () ->
                     if t.stopping then false
                     else begin
                       e.e_server <- Some srv;
                       true
                     end)
               in
               if keep then
                 Option.iter
                   (fun f -> f e.e_name (Server.addr srv))
                   t.on_respawn
               else Server.stop ~deadline:0. srv
           | exception _ -> ())
       ())

(* Immediate teardown — the in-process stand-in for SIGKILLing a worker.
   In-flight sessions on it die mid-stream; the coordinator's failover path
   is what brings them back elsewhere.  With a respawn budget the worker
   comes back on the same address after a doubling backoff. *)
let kill t name =
  let action =
    locked t (fun () ->
        match List.find_opt (fun e -> e.e_name = name) t.entries with
        | None -> `Nothing
        | Some e -> (
            match e.e_server with
            | None -> `Nothing (* already dead, respawn pending *)
            | Some srv ->
                e.e_server <- None;
                if (not t.stopping) && e.e_respawns < t.max_respawns then begin
                  e.e_respawns <- e.e_respawns + 1;
                  `Stop_and_respawn (srv, e)
                end
                else begin
                  t.entries <-
                    List.filter (fun e -> e.e_name <> name) t.entries;
                  `Stop srv
                end))
  in
  match action with
  | `Nothing -> ()
  | `Stop srv -> Server.stop ~deadline:0. srv
  | `Stop_and_respawn (srv, e) ->
      Server.stop ~deadline:0. srv;
      respawn_later t e

let stop t =
  let entries =
    locked t (fun () ->
        t.stopping <- true;
        let es = t.entries in
        t.entries <- [];
        es)
  in
  List.iter
    (fun e -> Option.iter (fun s -> Server.stop s) e.e_server)
    entries
