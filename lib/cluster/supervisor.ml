module Wire = Vyrd_net.Wire
module Server = Vyrd_net.Server
module Farm = Vyrd_pipeline.Farm
module Metrics = Vyrd_pipeline.Metrics

type entry = { e_name : string; e_server : Server.t }
type t = { dir : string; mutable entries : entry list; lock : Mutex.t }

let start ?(count = 2) ?(prefix = "w") ?max_sessions ?capacity ?window
    ?(idle_timeout = 120.) ?checkpoint_events ?analyze ~dir ~shards () =
  if count <= 0 then invalid_arg "Supervisor.start: count";
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let entries =
    List.init count (fun i ->
        let e_name = Printf.sprintf "%s%d" prefix i in
        let addr = Wire.Unix_socket (Filename.concat dir (e_name ^ ".sock")) in
        let cfg =
          Server.config ?max_sessions ?capacity ?window ~idle_timeout
            ?checkpoint_events ?analyze ~metrics:(Metrics.create ()) ~addr
            shards
        in
        { e_name; e_server = Server.start cfg })
  in
  { dir; entries; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let workers t =
  locked t (fun () ->
      List.map (fun e -> (e.e_name, Server.addr e.e_server)) t.entries)

let server t name =
  locked t (fun () ->
      List.find_map
        (fun e -> if e.e_name = name then Some e.e_server else None)
        t.entries)

(* Immediate teardown — the in-process stand-in for SIGKILLing a worker.
   In-flight sessions on it die mid-stream; the coordinator's failover path
   is what brings them back elsewhere. *)
let kill t name =
  match server t name with
  | None -> ()
  | Some s ->
      Server.stop ~deadline:0. s;
      locked t (fun () ->
          t.entries <- List.filter (fun e -> e.e_name <> name) t.entries)

let stop t =
  let entries = locked t (fun () -> t.entries) in
  List.iter (fun e -> Server.stop e.e_server) entries;
  locked t (fun () -> t.entries <- [])
