(** The vyrdc cluster coordinator.

    Speaks the plain {!Vyrd_net.Wire} server protocol to clients — an
    existing {!Vyrd_net.Client} connects to a coordinator with no source
    changes — and proxies each session to one of N attached [vyrdd]
    workers, chosen by consistent hashing with bounded loads
    ({!Member.acquire}).

    {b Failover.}  Every client batch is appended to a per-session segment
    spool {e before} it is forwarded, and the coordinator periodically asks
    the owning worker for a barrier snapshot ({!Wire.Checkpoint_request})
    which it appends to the spool as a checkpoint frame.  When a worker
    dies mid-session (send fails, and a fresh-connection probe finds the
    worker unreachable), the coordinator reassigns the session to the next
    ring successor and has it replay the spool from the newest valid
    checkpoint ({!Wire.Resume_session}).  The spool is a superset of
    anything any worker saw, so spool damage or a missing checkpoint only
    raises replay cost — it can never change a verdict; a replay that
    recovers fewer events than were spooled fails the session honestly.

    {b Health.}  A background thread polls each worker's control
    connection ({!Wire.Status_request}) every [health_period] seconds,
    piggybacking a metrics scrape on the liveness check; {!aggregate}
    merges the coordinator's own [cluster.*] registry with every worker's
    last snapshot into one cluster-wide view. *)

module Wire = Vyrd_net.Wire
module Metrics = Vyrd_pipeline.Metrics

type config = {
  c_addr : Wire.addr;
  c_window : int;  (** client credit window in events (default 8192) *)
  c_spool_dir : string;  (** per-session failover spools live here *)
  c_checkpoint_events : int;
      (** ask the owning worker for a checkpoint about every this many
          events and append it to the spool; [0] disables (default 25_000) *)
  c_worker_slots : int;
      (** default concurrent-session capacity per worker (default 4) *)
  c_health_period : float;  (** seconds between health polls (default 1) *)
  c_idle_timeout : float;
      (** seconds without a client frame before a session fails (default 30) *)
  c_leg_timeout : float;
      (** [SO_RCVTIMEO]/[SO_SNDTIMEO] armed on worker legs, so a hung
          worker surfaces as a leg failure instead of pinning the session
          (default 60) *)
  c_keep_spools : bool;
      (** keep verdicted sessions' spool files instead of deleting them
          (default false) *)
  c_vnodes : int;  (** ring virtual nodes per worker (default 128) *)
  c_seed : int;  (** ring placement seed (default 0) *)
  c_metrics : Metrics.t;
}

(** [config ~addr ~spool_dir ()] with the defaults above. *)
val config :
  ?window:int ->
  ?checkpoint_events:int ->
  ?worker_slots:int ->
  ?health_period:float ->
  ?idle_timeout:float ->
  ?leg_timeout:float ->
  ?keep_spools:bool ->
  ?vnodes:int ->
  ?seed:int ->
  ?metrics:Metrics.t ->
  addr:Wire.addr ->
  spool_dir:string ->
  unit ->
  config

type t

(** [start config] binds, listens, and spawns the accept and health-poll
    threads.  Workers are attached separately with {!attach}.
    @raise Unix.Unix_error when the address cannot be bound. *)
val start : config -> t

(** The actually-bound address. *)
val addr : t -> Wire.addr

(** The coordinator's own registry (the [cluster.*] family). *)
val metrics : t -> Metrics.t

(** Cluster-wide view: own registry merged with every worker's last
    scraped snapshot (a fresh registry each call). *)
val aggregate : t -> Metrics.t

val sessions : t -> int
val active : t -> int

(** {1 Membership} *)

(** [attach t ~name ~addr] dials the worker (retrying while its socket
    appears), registers on a persistent control connection
    ({!Wire.Register}), and adds it to the ring as [Alive].
    @param slots concurrent-session capacity (default [c_worker_slots]).
    @raise Unix.Unix_error when the worker never became reachable. *)
val attach : ?slots:int -> t -> name:string -> addr:Wire.addr -> unit

(** [drain t name] orders the worker to stop accepting new sessions
    ({!Wire.Drain}) and takes it out of the ring; its in-flight legs run
    to their verdicts. *)
val drain : t -> string -> unit

(** All attached workers (including drained and dead ones), sorted by
    name. *)
val workers : t -> Member.worker list

(** The current routing ring over alive workers. *)
val ring : t -> Hashring.t

(** {1 Shutdown} *)

(** [stop t] mirrors {!Vyrd_net.Server.stop}: stop accepting, let open
    sessions reach their verdicts for up to [deadline] seconds (default
    10), force-close stragglers, close worker control connections, unlink
    the socket.  Idempotent. *)
val stop : ?deadline:float -> t -> unit
