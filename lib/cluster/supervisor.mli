(** In-process worker pool: spawn N {!Vyrd_net.Server} instances on Unix
    sockets under one directory, each with its own metrics registry.

    Production runs one [vyrdd] per machine; the supervisor packs several
    into one process so the cluster tests and [bench cluster] can exercise
    coordinator routing, drain, and kill-based failover without managing
    child processes.  {!kill} stops a worker with a zero deadline — the
    in-process stand-in for SIGKILL — leaving its in-flight sessions to the
    coordinator's failover path. *)

module Wire = Vyrd_net.Wire
module Server = Vyrd_net.Server
module Farm = Vyrd_pipeline.Farm

type t

(** [start ~dir ~shards ()] spawns [count] (default 2) workers named
    [prefix]["0"].., listening on [dir/<name>.sock].  The remaining
    optionals forward to {!Server.config}; [idle_timeout] defaults to a
    lenient 120 s because a coordinator leg can legitimately sit idle
    between forwarded batches.

    [max_respawns] (default 0: off) lets the supervisor bring a {!kill}ed
    worker back, at most that many times per worker.  The respawn rebinds
    the worker's original socket path after a doubling backoff starting at
    [backoff] seconds (default 0.05), then calls [on_respawn name addr] —
    wire that to {!Coordinator.attach} to re-register the reborn worker
    into the ring (attaching an existing name replaces its address and
    resets its health state). *)
val start :
  ?count:int ->
  ?prefix:string ->
  ?max_sessions:int ->
  ?capacity:int ->
  ?window:int ->
  ?idle_timeout:float ->
  ?checkpoint_events:int ->
  ?analyze:bool ->
  ?max_respawns:int ->
  ?backoff:float ->
  ?on_respawn:(string -> Wire.addr -> unit) ->
  dir:string ->
  shards:(Vyrd.Log.level -> Farm.shard list) ->
  unit ->
  t

(** Live workers as [(name, bound address)], in spawn order.  A killed
    worker awaiting respawn is not listed until it is back. *)
val workers : t -> (string * Wire.addr) list

val server : t -> string -> Server.t option

(** How many times the named worker has been respawned (0 if unknown). *)
val respawns : t -> string -> int

(** [kill t name] force-stops the worker (deadline 0 — in-flight sessions
    die mid-stream).  With respawn budget left the worker comes back on
    the same address after the backoff; otherwise it is forgotten. *)
val kill : t -> string -> unit

(** Gracefully stop every remaining worker. *)
val stop : t -> unit
