(** In-process worker pool: spawn N {!Vyrd_net.Server} instances on Unix
    sockets under one directory, each with its own metrics registry.

    Production runs one [vyrdd] per machine; the supervisor packs several
    into one process so the cluster tests and [bench cluster] can exercise
    coordinator routing, drain, and kill-based failover without managing
    child processes.  {!kill} stops a worker with a zero deadline — the
    in-process stand-in for SIGKILL — leaving its in-flight sessions to the
    coordinator's failover path. *)

module Wire = Vyrd_net.Wire
module Server = Vyrd_net.Server
module Farm = Vyrd_pipeline.Farm

type t

(** [start ~dir ~shards ()] spawns [count] (default 2) workers named
    [prefix]["0"].., listening on [dir/<name>.sock].  The remaining
    optionals forward to {!Server.config}; [idle_timeout] defaults to a
    lenient 120 s because a coordinator leg can legitimately sit idle
    between forwarded batches. *)
val start :
  ?count:int ->
  ?prefix:string ->
  ?max_sessions:int ->
  ?capacity:int ->
  ?window:int ->
  ?idle_timeout:float ->
  ?checkpoint_events:int ->
  ?analyze:bool ->
  dir:string ->
  shards:(Vyrd.Log.level -> Farm.shard list) ->
  unit ->
  t

(** Live workers as [(name, bound address)], in spawn order. *)
val workers : t -> (string * Wire.addr) list

val server : t -> string -> Server.t option

(** [kill t name] force-stops the worker (deadline 0 — in-flight sessions
    die mid-stream) and forgets it. *)
val kill : t -> string -> unit

(** Gracefully stop every remaining worker. *)
val stop : t -> unit
