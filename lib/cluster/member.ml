module Wire = Vyrd_net.Wire
module Metrics = Vyrd_pipeline.Metrics

type state = Alive | Draining | Dead

let state_name = function
  | Alive -> "alive"
  | Draining -> "draining"
  | Dead -> "dead"

type worker = {
  w_name : string;
  w_addr : Wire.addr;
  w_slots : int;
  mutable w_state : state;
  mutable w_busy : int;
  mutable w_sessions : int;
  mutable w_metrics : Metrics.t option;
  mutable w_ctrl : Unix.file_descr option;
}

type t = {
  lock : Mutex.t;
  vnodes : int;
  seed : int;
  table : (string, worker) Hashtbl.t;
  mutable ring : Hashring.t;
}

let create ?(vnodes = 128) ?(seed = 0) () =
  {
    lock = Mutex.create ();
    vnodes;
    seed;
    table = Hashtbl.create 8;
    ring = Hashring.create ~vnodes ~seed [];
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Only Alive workers occupy ring points: a draining or dead worker stops
   owning keys immediately, and every key it owned remaps to its ring
   successors — exactly the minimal-remapping failover the ring promises. *)
let rebuild t =
  let alive =
    Hashtbl.fold
      (fun name w acc -> if w.w_state = Alive then name :: acc else acc)
      t.table []
  in
  t.ring <- Hashring.create ~vnodes:t.vnodes ~seed:t.seed alive

let add t ~name ~addr ~slots =
  if slots <= 0 then invalid_arg "Member.add: slots";
  locked t (fun () ->
      let w =
        {
          w_name = name;
          w_addr = addr;
          w_slots = slots;
          w_state = Alive;
          w_busy = 0;
          w_sessions = 0;
          w_metrics = None;
          w_ctrl = None;
        }
      in
      Hashtbl.replace t.table name w;
      rebuild t;
      w)

let find t name = locked t (fun () -> Hashtbl.find_opt t.table name)

let workers t =
  locked t (fun () -> Hashtbl.fold (fun _ w acc -> w :: acc) t.table [])
  |> List.sort (fun a b -> String.compare a.w_name b.w_name)

let alive t = List.filter (fun w -> w.w_state = Alive) (workers t)

let mark t name state =
  locked t (fun () ->
      match Hashtbl.find_opt t.table name with
      | None -> ()
      | Some w ->
          if w.w_state <> state then begin
            w.w_state <- state;
            rebuild t
          end)

let ring t = locked t (fun () -> t.ring)

(* Bounded-load placement: walk the ring order from [key]'s owner and take
   the first alive, non-avoided worker with a free slot.  The owner wins
   whenever it has capacity; overflow spills to the next ring successor, so
   placement stays deterministic given (membership, busy counts). *)
let acquire t ~key ~avoid =
  locked t (fun () ->
      let rec pick = function
        | [] -> None
        | name :: rest -> (
            match Hashtbl.find_opt t.table name with
            | Some w
              when w.w_state = Alive && w.w_busy < w.w_slots
                   && not (List.mem name avoid) ->
                w.w_busy <- w.w_busy + 1;
                w.w_sessions <- w.w_sessions + 1;
                Some w
            | _ -> pick rest)
      in
      pick (Hashring.ordered t.ring key))

let release t w =
  locked t (fun () -> if w.w_busy > 0 then w.w_busy <- w.w_busy - 1)
