(** Cluster membership: the coordinator's table of attached workers.

    Tracks each worker's address, health state, and in-flight session count,
    and keeps a {!Hashring} over the currently-[Alive] subset.  Routing is
    consistent hashing with bounded loads: {!acquire} walks the ring order
    from the key's owner and places the session on the first alive worker
    with a free slot, so the owner wins whenever it has capacity and
    overflow spills deterministically to ring successors. *)

module Wire = Vyrd_net.Wire
module Metrics = Vyrd_pipeline.Metrics

type state =
  | Alive  (** serving; occupies ring points *)
  | Draining  (** finishing in-flight sessions; owns no new keys *)
  | Dead  (** unreachable or killed; owns no keys *)

val state_name : state -> string

type worker = {
  w_name : string;
  w_addr : Wire.addr;
  w_slots : int;  (** concurrent-session capacity *)
  mutable w_state : state;
  mutable w_busy : int;  (** sessions currently placed here *)
  mutable w_sessions : int;  (** sessions ever placed here *)
  mutable w_metrics : Metrics.t option;  (** last scraped snapshot *)
  mutable w_ctrl : Unix.file_descr option;  (** control connection *)
}

type t

(** [create ()] is an empty membership table.  [vnodes]/[seed] parameterise
    the ring exactly as in {!Hashring.create}. *)
val create : ?vnodes:int -> ?seed:int -> unit -> t

(** [add t ~name ~addr ~slots] attaches (or re-attaches, replacing state)
    a worker as [Alive] and rebuilds the ring.
    @raise Invalid_argument when [slots <= 0]. *)
val add : t -> name:string -> addr:Wire.addr -> slots:int -> worker

val find : t -> string -> worker option

(** All workers, sorted by name. *)
val workers : t -> worker list

val alive : t -> worker list

(** [mark t name state] updates the worker's state and rebuilds the ring
    when the state changed (no-op for unknown names). *)
val mark : t -> string -> state -> unit

(** The current ring over [Alive] workers (an immutable snapshot). *)
val ring : t -> Hashring.t

(** [acquire t ~key ~avoid] places a session: first alive worker in ring
    order from [key]'s owner with [w_busy < w_slots] and not in [avoid];
    increments its busy and lifetime counters.  [None] when every live
    worker is full or avoided — callers should retry, clearing [avoid]. *)
val acquire : t -> key:string -> avoid:string list -> worker option

(** Return a session slot taken by {!acquire}. *)
val release : t -> worker -> unit
