module Wire = Vyrd_net.Wire
module Client = Vyrd_net.Client
module Segment = Vyrd_pipeline.Segment
module Metrics = Vyrd_pipeline.Metrics
module Bincodec = Vyrd_pipeline.Bincodec

type config = {
  c_addr : Wire.addr;
  c_window : int;
  c_spool_dir : string;
  c_checkpoint_events : int;
  c_worker_slots : int;
  c_health_period : float;
  c_idle_timeout : float;
  c_leg_timeout : float;
  c_keep_spools : bool;
  c_vnodes : int;
  c_seed : int;
  c_metrics : Metrics.t;
}

let config ?(window = 8192) ?(checkpoint_events = 25_000) ?(worker_slots = 4)
    ?(health_period = 1.0) ?(idle_timeout = 30.) ?(leg_timeout = 60.)
    ?(keep_spools = false) ?(vnodes = 128) ?(seed = 0) ?metrics ~addr
    ~spool_dir () =
  if window <= 0 then invalid_arg "Coordinator.config: window";
  if worker_slots <= 0 then invalid_arg "Coordinator.config: worker_slots";
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  {
    c_addr = addr;
    c_window = window;
    c_spool_dir = spool_dir;
    c_checkpoint_events = checkpoint_events;
    c_worker_slots = worker_slots;
    c_health_period = health_period;
    c_idle_timeout = idle_timeout;
    c_leg_timeout = leg_timeout;
    c_keep_spools = keep_spools;
    c_vnodes = vnodes;
    c_seed = seed;
    c_metrics = metrics;
  }

type session = { sc_id : int; sc_fd : Unix.file_descr }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound : Wire.addr;
  mutable accept_thread : Thread.t option;
  mutable health_thread : Thread.t option;
  lock : Mutex.t;
  live : (int, session) Hashtbl.t;
  threads : (int, Thread.t) Hashtbl.t;
  mutable next_session : int;
  mutable accepted : int;
  mutable stopping : bool;
  mutable stopped : bool;
  mutable force_stop : bool;
  members : Member.t;
  ctrl_lock : Mutex.t;  (** serializes RPCs on workers' control connections *)
  m_sessions : Metrics.counter;
  m_failed : Metrics.counter;
  m_events : Metrics.counter;
  m_batches : Metrics.counter;
  m_bytes : Metrics.counter;
  m_verdicts : Metrics.counter;
  m_routed : Metrics.counter;
  m_leg_failures : Metrics.counter;
  m_reassignments : Metrics.counter;
  m_resumes : Metrics.counter;
  m_resume_replayed : Metrics.counter;
  m_resume_from_ck : Metrics.counter;
  m_checkpoints : Metrics.counter;
  m_attached : Metrics.counter;
  m_dead : Metrics.counter;
  m_drained : Metrics.counter;
  m_peak : Metrics.gauge;
  m_workers_peak : Metrics.gauge;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let with_ctrl t f =
  Mutex.lock t.ctrl_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.ctrl_lock) f

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let addr t = t.bound
let metrics t = t.cfg.c_metrics
let sessions t = with_lock t (fun () -> t.accepted)
let active t = with_lock t (fun () -> Hashtbl.length t.live)
let workers t = Member.workers t.members
let ring t = Member.ring t.members

(* {1 Worker control connections} *)

let dial addr =
  let domain =
    match addr with
    | Wire.Unix_socket _ -> Unix.PF_UNIX
    | Wire.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Wire.sockaddr_of_addr addr);
    fd
  with e ->
    close_quietly fd;
    raise e

(* One-shot health probe on a fresh connection — used to distinguish "the
   worker died" from "one session's leg hiccupped" before declaring a
   worker dead and remapping everything it owns. *)
let probe addr =
  match dial addr with
  | exception (Unix.Unix_error _ | Not_found) -> None
  | fd ->
      let result =
        try
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
          Wire.send_client fd Wire.Status_request;
          match Wire.recv_server fd with
          | Wire.Status st -> Some st
          | _ -> None
        with
        | Unix.Unix_error _ | Wire.Closed | Wire.Timeout | Bincodec.Corrupt _
        ->
          None
      in
      close_quietly fd;
      result

let note_dead t (w : Member.worker) =
  if w.w_state <> Member.Dead then begin
    Member.mark t.members w.w_name Member.Dead;
    Metrics.incr t.m_dead
  end;
  (match w.w_ctrl with Some fd -> close_quietly fd | None -> ());
  w.w_ctrl <- None

let scrape t (w : Member.worker) (st : Wire.status) =
  (try w.w_metrics <- Some (Metrics.decode st.st_metrics)
   with Bincodec.Corrupt _ -> ());
  if st.st_draining && w.w_state = Member.Alive then
    Member.mark t.members w.w_name Member.Draining

let attach ?slots t ~name ~addr =
  let slots = match slots with Some s -> s | None -> t.cfg.c_worker_slots in
  (* the worker's socket may not be bound yet when a cluster boots *)
  let rec dial_retry n =
    match dial addr with
    | fd -> fd
    | exception (Unix.Unix_error _ | Not_found) when n > 0 ->
        Thread.delay 0.05;
        dial_retry (n - 1)
  in
  let fd = dial_retry 40 in
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
  (match
     Wire.send_client fd (Wire.Register name);
     Wire.recv_server fd
   with
  | Wire.Status st ->
      let w = Member.add t.members ~name ~addr ~slots in
      w.w_ctrl <- Some fd;
      scrape t w st;
      Metrics.incr t.m_attached;
      Metrics.record t.m_workers_peak (List.length (Member.workers t.members))
  | _ ->
      close_quietly fd;
      raise (Bincodec.Corrupt "register: unexpected reply")
  | exception e ->
      close_quietly fd;
      raise e)

(* RPC on the worker's persistent control connection; any failure demotes
   the worker to Dead (the probe path is for data legs, where one session's
   trouble should not condemn the worker — here the control channel itself
   broke). *)
let ctrl_rpc t (w : Member.worker) msg =
  with_ctrl t (fun () ->
      match w.w_ctrl with
      | None -> None
      | Some fd -> (
          match
            Wire.send_client fd msg;
            Wire.recv_server fd
          with
          | Wire.Status st ->
              scrape t w st;
              Some st
          | _ ->
              note_dead t w;
              None
          | exception
              ( Unix.Unix_error _ | Wire.Closed | Wire.Timeout
              | Bincodec.Corrupt _ ) ->
              note_dead t w;
              None))

(* Cluster-wide view: the coordinator's own cluster.* registry merged with
   every worker's registry.  Reachable workers are re-scraped on the spot;
   dead ones contribute their last-seen snapshot, so finished work is not
   forgotten with its worker. *)
let aggregate t =
  List.iter
    (fun (w : Member.worker) ->
      if w.w_state <> Member.Dead then ignore (ctrl_rpc t w Wire.Status_request))
    (Member.workers t.members);
  let into = Metrics.create () in
  Metrics.merge ~into t.cfg.c_metrics;
  List.iter
    (fun (w : Member.worker) ->
      match w.w_metrics with Some m -> Metrics.merge ~into m | None -> ())
    (Member.workers t.members);
  into

let drain t name =
  match Member.find t.members name with
  | None -> ()
  | Some w ->
      (match ctrl_rpc t w Wire.Drain with
      | Some _ -> ()
      | None -> ());
      if w.w_state = Member.Alive then Member.mark t.members name Member.Draining;
      Metrics.incr t.m_drained

let health_loop t =
  let period = max 0.05 t.cfg.c_health_period in
  while not (with_lock t (fun () -> t.stopping)) do
    List.iter
      (fun (w : Member.worker) ->
        if w.w_state <> Member.Dead then ignore (ctrl_rpc t w Wire.Status_request))
      (Member.workers t.members);
    (* sleep in slices so stop doesn't wait out a full period *)
    let slept = ref 0.0 in
    while !slept < period && not (with_lock t (fun () -> t.stopping)) do
      Thread.delay 0.05;
      slept := !slept +. 0.05
    done
  done

(* {1 Session proxying} *)

type leg = { l_client : Client.t; l_worker : Member.worker }

exception No_live_workers

(* Open a leg for [key]: bounded-load ring placement, connect, and — when
   the session already streamed events — replay the coordinator spool into
   the fresh worker session before any new batch flows.  The spool is the
   source of truth: it was appended before every forward, so a replayed
   session can never have lost events (a short replay is detected and fails
   the session rather than risking a wrong verdict). *)
let open_leg t ~key ~level ~writer =
  let avoid = ref [] in
  let dead_since = ref None in
  let rec loop () =
    if with_lock t (fun () -> t.force_stop) then
      raise (Bincodec.Corrupt "coordinator is stopping");
    match Member.acquire t.members ~key ~avoid:!avoid with
    | Some w -> (
        match Client.connect ~level ~producer:"vyrdc" w.Member.w_addr with
        | c -> (
            Client.set_timeout c t.cfg.c_leg_timeout;
            match
              let spooled = Segment.writer_events writer in
              if spooled > 0 then begin
                Segment.flush writer;
                let path = List.hd (Segment.writer_files writer) in
                let events, resumed_at, replayed =
                  Client.resume_session c ~path
                in
                if events <> spooled then
                  raise
                    (Bincodec.Corrupt
                       (Printf.sprintf
                          "failover replay recovered %d of %d events" events
                          spooled));
                Metrics.incr t.m_resumes;
                Metrics.add t.m_resume_replayed replayed;
                if resumed_at <> None then Metrics.incr t.m_resume_from_ck
              end
            with
            | () ->
                Metrics.incr t.m_routed;
                { l_client = c; l_worker = w }
            | exception e ->
                Client.close c;
                Member.release t.members w;
                raise e)
        | exception Client.Server_error _ ->
            (* refused the hello (draining, most likely): reachable but not
               accepting — stop routing to it, don't declare it dead *)
            Member.release t.members w;
            Member.mark t.members w.w_name Member.Draining;
            loop ()
        | exception (Unix.Unix_error _ | Not_found | Wire.Closed | Wire.Timeout)
          ->
            Member.release t.members w;
            (match probe w.Member.w_addr with
            | None -> note_dead t w
            | Some st ->
                scrape t w st;
                avoid := w.w_name :: !avoid);
            loop ())
    | None ->
        if !avoid <> [] then begin
          (* every candidate got blamed this round — give them another shot
             rather than failing a session over transient leg errors *)
          avoid := [];
          Thread.delay 0.05;
          loop ()
        end
        else if Member.alive t.members = [] then begin
          (match !dead_since with
          | None -> dead_since := Some (Unix.gettimeofday ())
          | Some since ->
              if Unix.gettimeofday () -. since > 5.0 then raise No_live_workers);
          Thread.delay 0.05;
          loop ()
        end
        else begin
          (* live workers exist but every slot is busy: wait one out *)
          dead_since := None;
          Thread.delay 0.02;
          loop ()
        end
  in
  loop ()

let close_leg t leg =
  Client.close leg.l_client;
  Member.release t.members leg.l_worker

(* A data leg failed mid-session.  Probe the worker on a fresh connection:
   unreachable means dead (remap everything), reachable means this was a
   session-local hiccup (resume elsewhere, leave the worker in the ring). *)
let drop_leg t leg =
  Metrics.incr t.m_leg_failures;
  close_leg t leg;
  match probe leg.l_worker.Member.w_addr with
  | None -> note_dead t leg.l_worker
  | Some st -> scrape t leg.l_worker st

let serve_data_session t (s : session) (hello : Wire.hello) =
  let fd = s.sc_fd in
  if hello.Wire.h_version <> Wire.version then
    raise
      (Bincodec.Corrupt
         (Printf.sprintf "protocol version %d, expected %d"
            hello.Wire.h_version Wire.version));
  if with_lock t (fun () -> t.stopping) then
    raise (Bincodec.Corrupt "coordinator is stopping");
  let level = hello.Wire.h_level in
  let key = Printf.sprintf "session-%06d" s.sc_id in
  if not (Sys.file_exists t.cfg.c_spool_dir) then
    (try Unix.mkdir t.cfg.c_spool_dir 0o755 with Unix.Unix_error _ -> ());
  let spool =
    Filename.concat t.cfg.c_spool_dir (Printf.sprintf "vyrdc-%06d.seg" s.sc_id)
  in
  let writer = Segment.create_writer ~level spool in
  let leg = ref None in
  let clean = ref false in
  let cleanup () =
    (match !leg with Some l -> close_leg t l | None -> ());
    leg := None;
    (try Segment.close writer with Invalid_argument _ -> ());
    (* spools of verdicted sessions are pure replay insurance — reclaim
       them; failed sessions keep theirs for forensics *)
    if !clean && not t.cfg.c_keep_spools then
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        (Segment.writer_files writer)
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Wire.send_server fd
    (Wire.Hello_ack
       {
         a_version = Wire.version;
         a_session = s.sc_id;
         a_credit = t.cfg.c_window;
         a_spilling = false;
       });
  let ensure_leg () =
    match !leg with
    | Some l -> l
    | None ->
        let l =
          try open_leg t ~key ~level ~writer
          with No_live_workers ->
            raise (Bincodec.Corrupt "no live workers in the cluster")
        in
        leg := Some l;
        l
  in
  let reassign l =
    drop_leg t l;
    leg := None;
    Metrics.incr t.m_reassignments
  in
  (* idempotent RPCs (checkpoint barriers, finish): safe to retry on a
     fresh leg, because the reopening resume replays the spool first *)
  let rec forwarding ?(attempts = 5) f =
    let l = ensure_leg () in
    match f l.l_client with
    | v -> v
    | exception
        (( Client.Server_error _ | Unix.Unix_error _ | Wire.Closed
         | Wire.Timeout | Bincodec.Corrupt _ ) as e) ->
        reassign l;
        if attempts <= 1 then raise e;
        forwarding ~attempts:(attempts - 1) f
  in
  (* batches are NOT idempotent: the failed batch is already in the spool,
     so the reopening resume replays it into the replacement worker —
     re-sending it on the wire would feed those events twice *)
  let forward_batch evs =
    let l = ensure_leg () in
    try Client.send_batch l.l_client evs
    with
    | Client.Server_error _ | Unix.Unix_error _ | Wire.Closed | Wire.Timeout
    | Bincodec.Corrupt _
    ->
      reassign l;
      ignore (ensure_leg ())
  in
  ignore (ensure_leg ());
  let ungranted = ref 0 in
  let grant_at = max 1 (t.cfg.c_window / 2) in
  let last_ck = ref 0 in
  let maybe_checkpoint () =
    if
      t.cfg.c_checkpoint_events > 0
      && Segment.writer_events writer - !last_ck >= t.cfg.c_checkpoint_events
    then begin
      let events, state = forwarding Client.request_checkpoint in
      (* advance the cursor even on None so a non-snapshottable farm is not
         re-asked every batch *)
      last_ck := Segment.writer_events writer;
      match state with
      | Some repr when events = Segment.writer_events writer ->
          Segment.append_checkpoint writer repr;
          Metrics.incr t.m_checkpoints
      | _ -> ()
    end
  in
  let finished = ref false in
  while not !finished do
    let payload = Wire.read_frame fd in
    Metrics.add t.m_bytes (String.length payload + 8);
    match Wire.decode_client payload with
    | Wire.Batch evs ->
        let n = Array.length evs in
        Metrics.incr t.m_batches;
        Metrics.add t.m_events n;
        (* spool before forward: the spool must be a superset of whatever
           any worker ever saw, or failover could lose events *)
        Array.iter (fun ev -> Segment.append writer ev) evs;
        forward_batch evs;
        maybe_checkpoint ();
        ungranted := !ungranted + n;
        if !ungranted >= grant_at then begin
          Wire.send_server fd (Wire.Credit !ungranted);
          ungranted := 0
        end
    | Wire.Heartbeat ->
        (* keep both the client session and the worker leg alive *)
        (match !leg with
        | Some l -> (
            try Client.heartbeat l.l_client
            with
            | Client.Server_error _ | Unix.Unix_error _ | Wire.Closed
            | Wire.Timeout | Bincodec.Corrupt _
            ->
              drop_leg t l;
              leg := None;
              Metrics.incr t.m_reassignments)
        | None -> ());
        Wire.send_server fd Wire.Heartbeat_ack
    | Wire.Checkpoint_request ->
        let events, state = forwarding Client.request_checkpoint in
        (match state with
        | Some repr when events = Segment.writer_events writer ->
            Segment.append_checkpoint writer repr;
            last_ck := Segment.writer_events writer;
            Metrics.incr t.m_checkpoints
        | _ -> ());
        Wire.send_server fd
          (Wire.Checkpoint_state
             { cs_events = Segment.writer_events writer; cs_state = state })
    | Wire.Finish ->
        Segment.flush writer;
        let outcome = forwarding Client.finish in
        (match !leg with
        | Some l ->
            Member.release t.members l.l_worker;
            leg := None
        | None -> ());
        let verdict =
          match outcome with
          | Client.Checked { report; fail_index } ->
              Wire.Verdict
                {
                  v_report = report;
                  v_fail_index = fail_index;
                  v_events = Segment.writer_events writer;
                  v_spilled = None;
                }
          | Client.Spilled { path; events } ->
              let report =
                {
                  Vyrd.Report.outcome = Vyrd.Report.Pass;
                  stats =
                    {
                      Vyrd.Report.events_processed = events;
                      methods_checked = 0;
                      commits_resolved = 0;
                      per_method = [];
                      queue_high_water = 0;
                    };
                }
              in
              Wire.Verdict
                {
                  v_report = report;
                  v_fail_index = None;
                  v_events = events;
                  v_spilled = Some path;
                }
        in
        (* Count before sending: once the client sees the verdict frame it may
           scrape [cluster.verdicts], and the increment must already be
           visible. *)
        Metrics.incr t.m_verdicts;
        clean := true;
        Wire.send_server fd verdict;
        finished := true
    | Wire.Hello _ -> raise (Bincodec.Corrupt "unexpected second hello")
    | Wire.Resume_session _ ->
        raise (Bincodec.Corrupt "resume is not supported on a coordinator session")
    | Wire.Drain | Wire.Status_request | Wire.Register _ ->
        raise (Bincodec.Corrupt "control message on a data session")
  done

let status t =
  let live = active t in
  {
    Wire.st_draining = with_lock t (fun () -> t.stopping);
    st_active = live;
    st_checking = live;
    st_metrics = Metrics.encode (aggregate t);
  }

(* A status/control connection to the coordinator itself: answer aggregated
   cluster health until the peer goes away. *)
let control_loop t (s : session) =
  let fd = s.sc_fd in
  let finished = ref false in
  while not !finished do
    match Wire.decode_client (Wire.read_frame fd) with
    | Wire.Status_request -> Wire.send_server fd (Wire.Status (status t))
    | Wire.Heartbeat -> Wire.send_server fd Wire.Heartbeat_ack
    | Wire.Finish -> finished := true
    | exception Wire.Closed -> finished := true
    | _ -> raise (Bincodec.Corrupt "unexpected message on a status connection")
  done

let serve_session t (s : session) =
  match Wire.decode_client (Wire.read_frame s.sc_fd) with
  | Wire.Hello hello -> serve_data_session t s hello
  | Wire.Status_request ->
      Wire.send_server s.sc_fd (Wire.Status (status t));
      control_loop t s
  | _ -> raise (Bincodec.Corrupt "expected hello")

let session_thread t s =
  (match serve_session t s with
  | () -> ()
  | exception e ->
      Metrics.incr t.m_failed;
      let msg =
        match e with
        | Bincodec.Corrupt m -> m
        | Wire.Closed -> "connection closed mid-session"
        | Wire.Timeout -> "session idle timeout"
        | Unix.Unix_error (err, _, _) -> Unix.error_message err
        | Sys_error m -> m
        | e -> "unexpected exception: " ^ Printexc.to_string e
      in
      (* best effort: the peer may already be gone *)
      (try Wire.send_server s.sc_fd (Wire.Error msg)
       with Unix.Unix_error _ | Wire.Closed | Wire.Timeout -> ()));
  close_quietly s.sc_fd;
  with_lock t (fun () ->
      Hashtbl.remove t.live s.sc_id;
      Hashtbl.remove t.threads s.sc_id)

let accept_loop t =
  let stop = ref false in
  while not !stop do
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
        if with_lock t (fun () -> t.stopping) then close_quietly fd
        else begin
          (if t.cfg.c_idle_timeout > 0. then
             try
               Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.c_idle_timeout
             with Unix.Unix_error _ -> ());
          let s =
            with_lock t (fun () ->
                let id = t.next_session in
                t.next_session <- id + 1;
                t.accepted <- t.accepted + 1;
                let s = { sc_id = id; sc_fd = fd } in
                Hashtbl.replace t.live id s;
                s)
          in
          Metrics.incr t.m_sessions;
          let th = Thread.create (fun () -> session_thread t s) () in
          with_lock t (fun () ->
              Metrics.record t.m_peak (Hashtbl.length t.live);
              if Hashtbl.mem t.live s.sc_id then
                Hashtbl.replace t.threads s.sc_id th)
        end
    | exception
        Unix.Unix_error ((Unix.EINVAL | Unix.EBADF | Unix.ESHUTDOWN), _, _) ->
        stop := true
    | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) ->
        if with_lock t (fun () -> t.stopping) then stop := true
    | exception Unix.Unix_error (_, _, _) ->
        if with_lock t (fun () -> t.stopping) then stop := true
        else Thread.delay 0.1
  done

let start cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if not (Sys.file_exists cfg.c_spool_dir) then Unix.mkdir cfg.c_spool_dir 0o755;
  let domain =
    match cfg.c_addr with
    | Wire.Unix_socket _ -> Unix.PF_UNIX
    | Wire.Tcp _ -> Unix.PF_INET
  in
  let listen_fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  match
    (match cfg.c_addr with
    | Wire.Unix_socket path -> if Sys.file_exists path then Unix.unlink path
    | Wire.Tcp _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true);
    Unix.bind listen_fd (Wire.sockaddr_of_addr cfg.c_addr);
    Unix.listen listen_fd 64;
    (match Unix.getsockname listen_fd with
    | Unix.ADDR_UNIX path -> Wire.Unix_socket path
    | Unix.ADDR_INET (ip, port) -> Wire.Tcp (Unix.string_of_inet_addr ip, port))
  with
  | exception e ->
      close_quietly listen_fd;
      raise e
  | bound ->
      let m = cfg.c_metrics in
      let t =
        {
          cfg;
          listen_fd;
          bound;
          accept_thread = None;
          health_thread = None;
          lock = Mutex.create ();
          live = Hashtbl.create 16;
          threads = Hashtbl.create 16;
          next_session = 0;
          accepted = 0;
          stopping = false;
          stopped = false;
          force_stop = false;
          members = Member.create ~vnodes:cfg.c_vnodes ~seed:cfg.c_seed ();
          ctrl_lock = Mutex.create ();
          m_sessions = Metrics.counter m "cluster.sessions";
          m_failed = Metrics.counter m "cluster.sessions_failed";
          m_events = Metrics.counter m "cluster.events";
          m_batches = Metrics.counter m "cluster.batches";
          m_bytes = Metrics.counter m "cluster.bytes_in";
          m_verdicts = Metrics.counter m "cluster.verdicts";
          m_routed = Metrics.counter m "cluster.sessions_routed";
          m_leg_failures = Metrics.counter m "cluster.leg_failures";
          m_reassignments = Metrics.counter m "cluster.reassignments";
          m_resumes = Metrics.counter m "cluster.resumes";
          m_resume_replayed = Metrics.counter m "cluster.resume_replayed";
          m_resume_from_ck = Metrics.counter m "cluster.resume_from_checkpoint";
          m_checkpoints = Metrics.counter m "cluster.checkpoints";
          m_attached = Metrics.counter m "cluster.workers_attached";
          m_dead = Metrics.counter m "cluster.workers_dead";
          m_drained = Metrics.counter m "cluster.workers_drained";
          m_peak = Metrics.gauge m "cluster.sessions_peak";
          m_workers_peak = Metrics.gauge m "cluster.workers_peak";
        }
      in
      t.accept_thread <- Some (Thread.create accept_loop t);
      t.health_thread <- Some (Thread.create health_loop t);
      t

let stop ?(deadline = 10.) t =
  let already =
    with_lock t (fun () ->
        let s = t.stopped in
        t.stopping <- true;
        t.stopped <- true;
        s)
  in
  if not already then begin
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_RECEIVE
     with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    close_quietly t.listen_fd;
    let until = Unix.gettimeofday () +. deadline in
    while active t > 0 && Unix.gettimeofday () < until do
      Thread.delay 0.02
    done;
    with_lock t (fun () -> t.force_stop <- true);
    let stragglers =
      with_lock t (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) t.live [])
    in
    List.iter
      (fun s ->
        try Unix.shutdown s.sc_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      stragglers;
    let threads =
      with_lock t (fun () -> Hashtbl.fold (fun _ th acc -> th :: acc) t.threads [])
    in
    List.iter Thread.join threads;
    (match t.health_thread with Some th -> Thread.join th | None -> ());
    List.iter
      (fun (w : Member.worker) ->
        (match w.w_ctrl with Some fd -> close_quietly fd | None -> ());
        w.w_ctrl <- None)
      (Member.workers t.members);
    match t.bound with
    | Wire.Unix_socket path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ())
    | Wire.Tcp _ -> ()
  end
