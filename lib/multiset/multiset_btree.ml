open Vyrd
module Sched = Vyrd_sched.Sched
module Cell = Instrument.Cell
module Faults = Vyrd_faults.Faults

(* Seeded mutant (lib/faults): the duplicate-key insert records its commit
   action BEFORE publishing the count increment, so the replayed view at the
   commit still shows the old multiplicity while the specification has
   already taken the insert transition — a misplaced commit annotation
   (§4.1) that view refinement flags deterministically at the first
   duplicate insert, with no concurrency required. *)
let fault_misplaced_commit =
  Faults.define ~semantic:false ~name:"multiset_btree.misplaced_commit"
    ~subject:"Multiset-BinaryTree"
    ~description:
      "duplicate-key insert commits before the count-increment write is \
       published, so viewI at the commit lags viewS by one occurrence"
    ()

type bug = Unlock_parent_early

type node = {
  id : int;
  key : int;
  key_cell : int Cell.t;  (* logged once so the replayer can see it *)
  count : int Cell.t;
  left : int option Cell.t;
  right : int option Cell.t;
  lock : Sched.mutex;
}

type t = {
  ctx : Instrument.ctx;
  root : int option Cell.t;
  root_lock : Sched.mutex;
  nodes : (int, node) Hashtbl.t;
  mutable next_id : int;
  bugs : bug list;
}

type outcome = Multiset_vector.outcome = Success | Failure

let child_repr = function None -> Repr.Unit | Some id -> Repr.Int id
let key_var id = Printf.sprintf "n%d.key" id
let count_var id = Printf.sprintf "n%d.count" id
let left_var id = Printf.sprintf "n%d.left" id
let right_var id = Printf.sprintf "n%d.right" id

let create ?(bugs = []) ctx =
  {
    ctx;
    root = Cell.make ctx ~name:"root" ~repr:child_repr None;
    root_lock = Instrument.mutex ctx ~name:"root_lock";
    nodes = Hashtbl.create 64;
    next_id = 0;
    bugs;
  }

let node_of t id =
  Sched.atomic t.ctx.Instrument.sched (fun () -> Hashtbl.find t.nodes id)

(* Allocate and log a fresh node.  It is unreachable until a child pointer
   (or the root) is pointed at it, so these writes never affect the view. *)
let new_node t x =
  let id =
    Sched.atomic t.ctx.Instrument.sched (fun () ->
        let id = t.next_id in
        t.next_id <- id + 1;
        id)
  in
  let n =
    {
      id;
      key = x;
      key_cell = Cell.make t.ctx ~name:(key_var id) ~repr:(fun k -> Repr.Int k) x;
      count = Cell.make t.ctx ~name:(count_var id) ~repr:(fun c -> Repr.Int c) 1;
      left = Cell.make t.ctx ~name:(left_var id) ~repr:child_repr None;
      right = Cell.make t.ctx ~name:(right_var id) ~repr:child_repr None;
      lock = Instrument.mutex t.ctx ~name:(Printf.sprintf "n%d" id);
    }
  in
  Sched.atomic t.ctx.Instrument.sched (fun () -> Hashtbl.replace t.nodes id n);
  Cell.poke n.key_cell x;
  Cell.poke n.count 1;
  n

let has_bug t b = List.mem b t.bugs

(* Link a freshly created node at [dir_cell], which the caller found to be
   empty while holding [parent_lock].  The buggy variant gives up the lock
   before writing, opening the lost-subtree window of Table 1. *)
let link_new t parent_lock dir_cell child =
  if has_bug t Unlock_parent_early then begin
    parent_lock.Sched.unlock ();
    t.ctx.Instrument.sched.Sched.yield ();
    Cell.set_and_commit dir_cell (Some child.id)
  end
  else begin
    Cell.set_and_commit dir_cell (Some child.id);
    parent_lock.Sched.unlock ()
  end

let insert t x =
  let body () =
    t.root_lock.Sched.lock ();
    match Cell.get t.root with
    | None ->
      let n = new_node t x in
      if has_bug t Unlock_parent_early then begin
        t.root_lock.Sched.unlock ();
        t.ctx.Instrument.sched.Sched.yield ();
        Cell.set_and_commit t.root (Some n.id)
      end
      else begin
        Cell.set_and_commit t.root (Some n.id);
        t.root_lock.Sched.unlock ()
      end;
      Repr.success
    | Some rid ->
      let r = node_of t rid in
      r.lock.Sched.lock ();
      t.root_lock.Sched.unlock ();
      let rec descend n =
        if x = n.key then begin
          (if Faults.enabled fault_misplaced_commit then begin
             let c = Cell.get n.count in
             Instrument.commit t.ctx;
             Cell.set n.count (c + 1)
           end
           else Cell.set_and_commit n.count (Cell.get n.count + 1));
          n.lock.Sched.unlock ();
          Repr.success
        end
        else begin
          let dir = if x < n.key then n.left else n.right in
          match Cell.get dir with
          | None ->
            let nn = new_node t x in
            link_new t n.lock dir nn;
            Repr.success
          | Some cid ->
            let c = node_of t cid in
            c.lock.Sched.lock ();
            n.lock.Sched.unlock ();
            descend c
        end
      in
      descend r
  in
  let ret = Instrument.op t.ctx Multiset_spec.mid_insert [ Repr.Int x ] body in
  if Repr.is_success ret then Success else Failure

(* Hand-over-hand search shared by delete / lookup / count: runs [found]
   with the node's lock held, or [absent] if the key is not in the tree. *)
let search t x ~found ~absent =
  t.root_lock.Sched.lock ();
  match Cell.get t.root with
  | None ->
    t.root_lock.Sched.unlock ();
    absent ()
  | Some rid ->
    let r = node_of t rid in
    r.lock.Sched.lock ();
    t.root_lock.Sched.unlock ();
    let rec descend n =
      if x = n.key then begin
        let v = found n in
        n.lock.Sched.unlock ();
        v
      end
      else begin
        let dir = if x < n.key then n.left else n.right in
        match Cell.get dir with
        | None ->
          n.lock.Sched.unlock ();
          absent ()
        | Some cid ->
          let c = node_of t cid in
          c.lock.Sched.lock ();
          n.lock.Sched.unlock ();
          descend c
      end
    in
    descend r

let delete t x =
  let body () =
    search t x
      ~found:(fun n ->
        let c = Cell.get n.count in
        if c > 0 then begin
          Cell.set_and_commit n.count (c - 1);
          Repr.Bool true
        end
        else Repr.Bool false)
      ~absent:(fun () -> Repr.Bool false)
  in
  Instrument.op t.ctx Multiset_spec.mid_delete [ Repr.Int x ] body = Repr.Bool true

let lookup t x =
  let body () =
    search t x
      ~found:(fun n -> Repr.Bool (Cell.get n.count > 0))
      ~absent:(fun () -> Repr.Bool false)
  in
  Instrument.op t.ctx Multiset_spec.mid_lookup [ Repr.Int x ] body = Repr.Bool true

let count t x =
  let body () =
    search t x
      ~found:(fun n -> Repr.Int (Cell.get n.count))
      ~absent:(fun () -> Repr.Int 0)
  in
  match Instrument.op t.ctx Multiset_spec.mid_count [ Repr.Int x ] body with
  | Repr.Int n -> n
  | _ -> assert false

let is_leaf_tombstone n =
  Cell.get n.count = 0 && Cell.get n.left = None && Cell.get n.right = None

(* One compression step: hand-over-hand sweep that unlinks at most one
   tombstone leaf, so the execution has exactly one commit action. *)
let compress t =
  let body () =
    let rec sweep n =
      (* invariant: n.lock held; released before returning *)
      let try_dir dir_cell =
        match Cell.get dir_cell with
        | None -> `Empty
        | Some cid ->
          let c = node_of t cid in
          c.lock.Sched.lock ();
          if is_leaf_tombstone c then begin
            Cell.set_and_commit dir_cell None;
            c.lock.Sched.unlock ();
            `Pruned
          end
          else `Child c
      in
      match try_dir n.left with
      | `Pruned ->
        n.lock.Sched.unlock ();
        true
      | `Child c ->
        n.lock.Sched.unlock ();
        sweep c
      | `Empty -> (
        match try_dir n.right with
        | `Pruned ->
          n.lock.Sched.unlock ();
          true
        | `Child c ->
          n.lock.Sched.unlock ();
          sweep c
        | `Empty ->
          n.lock.Sched.unlock ();
          false)
    in
    t.root_lock.Sched.lock ();
    let pruned =
      match Cell.get t.root with
      | None ->
        t.root_lock.Sched.unlock ();
        false
      | Some rid ->
        let r = node_of t rid in
        r.lock.Sched.lock ();
        if is_leaf_tombstone r then begin
          Cell.set_and_commit t.root None;
          r.lock.Sched.unlock ();
          t.root_lock.Sched.unlock ();
          true
        end
        else begin
          t.root_lock.Sched.unlock ();
          sweep r
        end
    in
    if not pruned then Instrument.commit t.ctx;
    Repr.Unit
  in
  ignore (Instrument.op t.ctx Multiset_spec.mid_compress [] body)

let viewdef : View.t =
  View.Full
    (fun lookup ->
      let counts = Hashtbl.create 16 in
      let visited = Hashtbl.create 16 in
      let rec walk = function
        | Some (Repr.Int id) when not (Hashtbl.mem visited id) ->
          Hashtbl.replace visited id ();
          (match (lookup (key_var id), lookup (count_var id)) with
          | Some (Repr.Int key), Some (Repr.Int c) when c > 0 ->
            Hashtbl.replace counts key
              (c + Option.value ~default:0 (Hashtbl.find_opt counts key))
          | _ -> ());
          walk (lookup (left_var id));
          walk (lookup (right_var id))
        | Some _ | None -> ()
      in
      walk (lookup "root");
      View.canonical_of_assoc
        (Hashtbl.fold (fun x n acc -> (Repr.Int x, Repr.Int n) :: acc) counts []))

let unsafe_contents t =
  let acc = ref [] in
  let rec walk = function
    | None -> ()
    | Some id ->
      let n = Hashtbl.find t.nodes id in
      let c = Cell.peek n.count in
      if c > 0 then acc := (n.key, c) :: !acc;
      walk (Cell.peek n.left);
      walk (Cell.peek n.right)
  in
  walk (Cell.peek t.root);
  List.sort compare !acc
