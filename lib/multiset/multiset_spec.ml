open Vyrd
module IntMap = Map.Make (Int)

type state = int IntMap.t

let mid_insert = "insert"
let mid_insert_pair = "insert_pair"
let mid_delete = "delete"
let mid_lookup = "lookup"
let mid_count = "count"
let mid_compress = "compress"
let multiplicity st x = match IntMap.find_opt x st with Some n -> n | None -> 0
let add st x = IntMap.add x (multiplicity st x + 1) st

let remove st x =
  match multiplicity st x with
  | 0 -> None
  | 1 -> Some (IntMap.remove x st)
  | n -> Some (IntMap.add x (n - 1) st)

let view_of_state st =
  View.canonical_of_assoc
    (IntMap.fold (fun x n acc -> (Repr.int x, Repr.int n) :: acc) st [])

let bad fmt = Printf.ksprintf (fun m -> Error m) fmt

module S = struct
  type nonrec state = state

  let name = "multiset"
  let init () = IntMap.empty

  let kind mid =
    if mid = mid_insert || mid = mid_insert_pair || mid = mid_delete then Spec.Mutator
    else if mid = mid_lookup || mid = mid_count then Spec.Observer
    else if mid = mid_compress then Spec.Internal
    else invalid_arg ("multiset spec: unknown method " ^ mid)

  let apply st ~mid ~args ~ret =
    match (mid, args, ret) with
    | "insert", [ Repr.Int x ], ret ->
      if Repr.is_success ret then Ok (add st x)
      else if Repr.equal ret Repr.failure then Ok st
      else bad "insert may only return success or failure, got %s" (Repr.to_string ret)
    | "insert_pair", [ Repr.Int x; Repr.Int y ], ret ->
      if Repr.is_success ret then Ok (add (add st x) y)
      else if Repr.equal ret Repr.failure then Ok st
      else
        bad "insert_pair may only return success or failure, got %s"
          (Repr.to_string ret)
    | "delete", [ Repr.Int x ], Repr.Bool true -> (
      match remove st x with
      | Some st' -> Ok st'
      | None -> bad "delete(%d) returned true but %d is not in the multiset" x x)
    | "delete", [ Repr.Int x ], Repr.Bool false ->
      if multiplicity st x = 0 then Ok st
      else bad "delete(%d) returned false but %d is in the multiset" x x
    | "compress", [], Repr.Unit -> Ok st
    | mid, _, _ -> bad "no %s transition matches the observed arguments/return" mid

  (* Non-committing executions of mutator methods are window-checked here:
     exceptional terminations leave the bag unchanged and are always
     allowed; a "successful" return without a commit is never allowed. *)
  let observe st ~mid ~args ~ret =
    match (mid, args, ret) with
    | "lookup", [ Repr.Int x ], Repr.Bool b -> b = (multiplicity st x > 0)
    | "count", [ Repr.Int x ], Repr.Int n -> n = multiplicity st x
    | ("insert" | "insert_pair"), _, ret -> Repr.equal ret Repr.failure
    | "delete", [ Repr.Int x ], Repr.Bool false -> multiplicity st x = 0
    | _ -> false

  let view = view_of_state
  let snapshot st = st

  let save st =
    Some
      (Repr.List
         (IntMap.fold (fun x n acc -> Repr.Pair (Repr.Int x, Repr.Int n) :: acc) st []))

  let load = function
    | Repr.List kvs ->
      List.fold_left
        (fun st -> function
          | Repr.Pair (Repr.Int x, Repr.Int n) when n > 0 -> IntMap.add x n st
          | v -> invalid_arg ("multiset spec: bad saved entry " ^ Repr.to_string v))
        IntMap.empty kvs
    | v -> invalid_arg ("multiset spec: bad saved state " ^ Repr.to_string v)
end

let spec : Spec.t = (module S)
