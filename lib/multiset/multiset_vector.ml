open Vyrd
module Sched = Vyrd_sched.Sched
module Cell = Instrument.Cell
module Faults = Vyrd_faults.Faults

(* Seeded mutant (lib/faults): FindSlot claims a free slot with no lock at
   all — racier than the paper's Fig. 5 bug, which at least locks the store.
   Two threads can reserve the same slot and one element is silently lost;
   view refinement fires at the next commit whose replayed slot array
   disagrees with the specification multiset. *)
let fault_lost_update =
  Faults.define ~name:"multiset_vector.lost_update" ~subject:"Multiset-Vector"
    ~description:
      "FindSlot claims a free slot without taking the slot lock; concurrent \
       inserts reserve the same slot and one element is lost"
    ()

type bug = Racy_find_slot | Misplaced_commit

type slot = { elt : int option Cell.t; valid : bool Cell.t; lock : Sched.mutex }

type t = { ctx : Instrument.ctx; slots : slot array; bugs : bug list }

type outcome = Success | Failure

let outcome_repr = function Success -> Repr.success | Failure -> Repr.failure

let elt_repr = function None -> Repr.Unit | Some x -> Repr.Int x

let elt_var i = Printf.sprintf "A[%d].elt" i
let valid_var i = Printf.sprintf "A[%d].valid" i

let create ?(bugs = []) ~capacity ctx =
  let slot i =
    {
      elt = Cell.make ctx ~name:(elt_var i) ~repr:elt_repr None;
      valid = Cell.make ctx ~name:(valid_var i) ~repr:(fun b -> Repr.Bool b) false;
      lock = Instrument.mutex ctx ~name:(Printf.sprintf "A[%d]" i);
    }
  in
  { ctx; slots = Array.init capacity slot; bugs }

let capacity t = Array.length t.slots
let has_bug t b = List.mem b t.bugs

(* Fig. 2: reserve the first free slot by writing the element under the
   slot's lock; -1 when the array is full.  With [Racy_find_slot] the
   emptiness test happens before the lock is taken (Fig. 5), so two threads
   may reserve the same slot. *)
let find_slot t x =
  let n = capacity t in
  let racy = has_bug t Racy_find_slot in
  let lost_update = Faults.enabled fault_lost_update in
  let rec go i =
    if i >= n then -1
    else
      let s = t.slots.(i) in
      let reserved =
        if lost_update then
          (* seeded mutant: emptiness test and claim with no lock anywhere *)
          Cell.get s.elt = None
          && begin
               Cell.set s.elt (Some x);
               true
             end
        else if racy then
          if Cell.get s.elt = None then begin
            Sched.with_lock s.lock (fun () -> Cell.set s.elt (Some x));
            true
          end
          else false
        else
          Sched.with_lock s.lock (fun () ->
              if Cell.get s.elt = None then begin
                Cell.set s.elt (Some x);
                true
              end
              else false)
      in
      if reserved then i else go (i + 1)
  in
  go 0

let insert t x =
  let body () =
    if has_bug t Misplaced_commit then begin
      (* §4.1: a wrong commit-point annotation on a CORRECT implementation.
         Committing at the slot reservation — before the valid bit publishes
         the element — yields a wrong witness interleaving, and refinement
         checking flags it even though the code has no concurrency bug.
         "If the witness interleaving is wrong, the programmer must
         re-examine and modify the commit point selection." *)
      let n = capacity t in
      let rec go i =
        if i >= n then Repr.failure
        else
          let s = t.slots.(i) in
          let reserved =
            Sched.with_lock s.lock (fun () ->
                if Cell.get s.elt = None then begin
                  Cell.set_and_commit s.elt (Some x);
                  (* commit too early *)
                  true
                end
                else false)
          in
          if reserved then begin
            Sched.with_lock s.lock (fun () -> Cell.set s.valid true);
            Repr.success
          end
          else go (i + 1)
      in
      go 0
    end
    else
      let i = find_slot t x in
      if i = -1 then
        (* Exceptional termination: no commit action — the execution did not
           mutate and is window-checked like an observer. *)
        Repr.failure
      else begin
        let s = t.slots.(i) in
        Sched.with_lock s.lock (fun () -> Cell.set_and_commit s.valid true);
        Repr.success
      end
  in
  let ret = Instrument.op t.ctx Multiset_spec.mid_insert [ Repr.Int x ] body in
  if Repr.is_success ret then Success else Failure

(* Fig. 4.  Both valid bits are published inside a commit block; the commit
   action is the second bit — the point where the new view becomes visible
   to other threads (§2.1). *)
let insert_pair t x y =
  let body () =
    let i = find_slot t x in
    if i = -1 then Repr.failure
    else
      let j = find_slot t y in
      if j = -1 then begin
        (* free the slot reserved for x; the execution commits nothing *)
        let si = t.slots.(i) in
        Sched.with_lock si.lock (fun () -> Cell.set si.elt None);
        Repr.failure
      end
      else begin
        let lo, hi = if i < j then (i, j) else (j, i) in
        let slo = t.slots.(lo) and shi = t.slots.(hi) in
        Instrument.with_block t.ctx (fun () ->
            Sched.with_lock slo.lock (fun () ->
                Sched.with_lock shi.lock (fun () ->
                    Cell.set slo.valid true;
                    Cell.set_and_commit shi.valid true)));
        Repr.success
      end
  in
  let ret =
    Instrument.op t.ctx Multiset_spec.mid_insert_pair [ Repr.Int x; Repr.Int y ] body
  in
  if Repr.is_success ret then Success else Failure

(* Run [f] with every slot lock held, acquiring in ascending index order
   (consistent with [insert_pair]'s lo-before-hi order, so deadlock-free). *)
let with_all_locks t f =
  Array.iter (fun s -> s.lock.Sched.lock ()) t.slots;
  match f () with
  | v ->
    Array.iter (fun s -> s.lock.Sched.unlock ()) t.slots;
    v
  | exception e ->
    Array.iter (fun s -> s.lock.Sched.unlock ()) t.slots;
    raise e

let delete t x =
  let body () =
    with_all_locks t (fun () ->
        let n = capacity t in
        let rec go i =
          if i >= n then Repr.Bool false
          else
            let s = t.slots.(i) in
            if Cell.get s.elt = Some x && Cell.get s.valid then begin
              Cell.set_and_commit s.valid false;
              Cell.set s.elt None;
              Repr.Bool true
            end
            else go (i + 1)
        in
        go 0)
  in
  Instrument.op t.ctx Multiset_spec.mid_delete [ Repr.Int x ] body = Repr.Bool true

(* Fig. 2's per-slot scanning Delete.  Kept for the paper's figures: a
   false return is justified only if some instant in the window had no
   occurrence of [x], which a scan cannot guarantee when elements migrate
   between slots — VYRD correctly reports such runs (see
   [scan_lookup]). *)
let scan_delete t x =
  let body () =
    let n = capacity t in
    let rec go i =
      if i >= n then Repr.Bool false
      else
        let s = t.slots.(i) in
        let removed =
          Sched.with_lock s.lock (fun () ->
              if Cell.get s.elt = Some x && Cell.get s.valid then begin
                Cell.set_and_commit s.valid false;
                Cell.set s.elt None;
                true
              end
              else false)
        in
        if removed then Repr.Bool true else go (i + 1)
    in
    go 0
  in
  Instrument.op t.ctx Multiset_spec.mid_delete [ Repr.Int x ] body = Repr.Bool true

let lookup t x =
  let body () =
    with_all_locks t (fun () ->
        Repr.Bool
          (Array.exists
             (fun s -> Cell.get s.elt = Some x && Cell.get s.valid)
             t.slots))
  in
  Instrument.op t.ctx Multiset_spec.mid_lookup [ Repr.Int x ] body = Repr.Bool true

(* Fig. 2's LookUp: locks one slot at a time.  Linearizable only in the
   absence of same-element slot migration; a reproduction finding documented
   in DESIGN.md — refinement checking flags the weakly consistent scan. *)
let scan_lookup t x =
  let body () =
    let n = capacity t in
    let rec go i =
      if i >= n then Repr.Bool false
      else
        let s = t.slots.(i) in
        let found =
          Sched.with_lock s.lock (fun () -> Cell.get s.elt = Some x && Cell.get s.valid)
        in
        if found then Repr.Bool true else go (i + 1)
    in
    go 0
  in
  Instrument.op t.ctx Multiset_spec.mid_lookup [ Repr.Int x ] body = Repr.Bool true

let count t x =
  let body () =
    with_all_locks t (fun () ->
        let n =
          Array.fold_left
            (fun acc s ->
              if Cell.get s.elt = Some x && Cell.get s.valid then acc + 1 else acc)
            0 t.slots
        in
        Repr.Int n)
  in
  match Instrument.op t.ctx Multiset_spec.mid_count [ Repr.Int x ] body with
  | Repr.Int n -> n
  | _ -> assert false

let viewdef ~capacity : View.t =
  (* var names are precomputed once: the closure below runs at every commit
     of the run, and a sprintf per slot per commit dominates the checker's
     view path *)
  let valid_vars = Array.init capacity valid_var in
  let elt_vars = Array.init capacity elt_var in
  View.Full
    (fun lookup ->
      let counts = Hashtbl.create 16 in
      for i = 0 to capacity - 1 do
        match (lookup valid_vars.(i), lookup elt_vars.(i)) with
        | Some (Repr.Bool true), Some (Repr.Int x) ->
          Hashtbl.replace counts x
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts x))
        | _ -> ()
      done;
      View.canonical_of_assoc
        (Hashtbl.fold (fun x n acc -> (Repr.int x, Repr.int n) :: acc) counts []))

let unsafe_contents t =
  Array.to_list t.slots
  |> List.filter_map (fun s ->
         match (Cell.peek s.valid, Cell.peek s.elt) with
         | true, Some x -> Some x
         | _ -> None)
