(** Array-based concurrent multiset — the paper's running example
    (Fig. 2, Fig. 4, §2).

    Elements live in a fixed array of slots; [find_slot] reserves a free
    slot by writing the element under the slot's lock, and a [valid] bit
    publishes the slot's membership.  [insert_pair] reserves two slots and
    publishes both valid bits inside a commit block whose commit action is
    the second bit (§2.1) — the pattern that reduction-based atomicity
    checkers cannot prove (§8).

    The injectable bug reproduces Fig. 5: [find_slot] tests a slot for
    emptiness {e before} taking its lock, so two concurrent reservations can
    claim the same slot and one element is silently overwritten (Fig. 6 and
    the "moving acquire in FindSlot" row of Table 1). *)

type bug =
  | Racy_find_slot
      (** Fig. 5: the emptiness test happens before the slot lock is taken *)
  | Misplaced_commit
      (** not a concurrency bug but a wrong commit-point annotation (§4.1):
          insert commits at the slot reservation instead of the valid-bit
          write, so the witness interleaving is wrong and refinement
          checking reports violations on correct code *)

type t

val create : ?bugs:bug list -> capacity:int -> Vyrd.Instrument.ctx -> t

type outcome = Success | Failure

val outcome_repr : outcome -> Vyrd.Repr.t
val insert : t -> int -> outcome
val insert_pair : t -> int -> int -> outcome

(** [delete], [lookup] and [count] take all slot locks in ascending order,
    so their results are atomic snapshots. *)
val delete : t -> int -> bool

val lookup : t -> int -> bool
val count : t -> int -> int

(** Fig. 2's per-slot scanning variants, kept faithful to the paper.  They
    are {e weakly consistent}: when an element is deleted from one slot and
    re-inserted into an already-scanned slot during the scan, a [false]
    answer corresponds to no atomic point in the method's window, and
    refinement checking (correctly) reports a violation.  This is a finding
    of the reproduction, discussed in DESIGN.md §5. *)
val scan_delete : t -> int -> bool

val scan_lookup : t -> int -> bool

(** [viewdef ~capacity] is the [viewI] definition of §5.1: the bag of
    elements in valid slots, as a canonical (element, multiplicity) list. *)
val viewdef : capacity:int -> Vyrd.View.t

(** Elements currently published, straight from memory (no locking, no
    logging) — for post-run white-box assertions only. *)
val unsafe_contents : t -> int list

(** Seeded mutant ({!Vyrd_faults.Faults}): when armed, [find_slot] claims a
    free slot with {e no} lock at all, so concurrent inserts can reserve the
    same slot and one element is lost — the canonical lost update. *)
val fault_lost_update : Vyrd_faults.Faults.t
