(** Binary-search-tree multiset with hand-over-hand (lock-crabbing)
    traversal and a concurrent compression thread (§7.4.2).

    Each key has at most one node carrying an occurrence count; deleting the
    last occurrence leaves a count-0 tombstone that [compress] later unlinks
    when it has become a leaf.  Compression is an {e internal} method: its
    specification transition is the identity, and view refinement checks
    that pruning never changes the abstract bag (§7.2.3).

    The injectable bug is the "unlocking parent before insertion" row of
    Table 1: the parent's lock is released before the new node is linked, so
    two concurrent inserts below the same link can overwrite each other and
    lose a whole subtree. *)

type bug = Unlock_parent_early

type t

val create : ?bugs:bug list -> Vyrd.Instrument.ctx -> t

type outcome = Multiset_vector.outcome = Success | Failure

val insert : t -> int -> outcome
val delete : t -> int -> bool
val lookup : t -> int -> bool
val count : t -> int -> int

(** One compression step: unlinks at most one tombstone leaf.  Runs as an
    internal method execution with exactly one commit action. *)
val compress : t -> unit

(** [viewdef] walks the shadow tree from the logged root pointer and bags up
    (key, multiplicity) pairs of live nodes. *)
val viewdef : Vyrd.View.t

val unsafe_contents : t -> (int * int) list

(** Seeded mutant ({!Vyrd_faults.Faults}): when armed, a duplicate-key
    insert commits before the count increment is published — a misplaced
    commit annotation detectable even in single-threaded runs. *)
val fault_misplaced_commit : Vyrd_faults.Faults.t
