(** Minimal growable array (the standard library gains [Dynarray] only in
    OCaml 5.2; this container backs run queues and logs). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

(** [get v i] @raise Invalid_argument when [i] is out of bounds. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

(** [swap_remove v i] removes index [i] in O(1) by moving the last element
    into its place, and returns the removed element. *)
val swap_remove : 'a t -> int -> 'a

(** [pop v] removes and returns the last element.
    @raise Invalid_argument on an empty vector. *)
val pop : 'a t -> 'a

val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val clear : 'a t -> unit

(** [sub v ~pos ~len] copies a slice into a fresh list. *)
val sub_list : 'a t -> pos:int -> len:int -> 'a list

(** [drop_prefix v n] removes the first [n] elements in place (one blit, no
    allocation), shifting the rest down.
    @raise Invalid_argument when [n] is out of bounds. *)
val drop_prefix : 'a t -> int -> unit
