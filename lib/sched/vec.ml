type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length v = v.len
let is_empty v = v.len = 0

let ensure v n =
  let cap = Array.length v.data in
  if n > cap then begin
    let cap' = max n (max 8 (2 * cap)) in
    (* The spare slots hold duplicates of an existing element until
       overwritten; they are never observable through the interface. *)
    let data' = Array.make cap' v.data.(0) in
    Array.blit v.data 0 data' 0 v.len;
    v.data <- data'
  end

let push v x =
  if Array.length v.data = 0 then v.data <- Array.make 8 x else ensure v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let check v i op =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds [0,%d)" op i v.len)

let get v i =
  check v i "get";
  v.data.(i)

let set v i x =
  check v i "set";
  v.data.(i) <- x

let swap_remove v i =
  check v i "swap_remove";
  let x = v.data.(i) in
  v.len <- v.len - 1;
  v.data.(i) <- v.data.(v.len);
  x

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.init v.len (fun i -> v.data.(i))

let of_list xs =
  let v = create () in
  List.iter (push v) xs;
  v

let clear v = v.len <- 0

let sub_list v ~pos ~len =
  if pos < 0 || len < 0 || pos + len > v.len then invalid_arg "Vec.sub_list";
  List.init len (fun i -> v.data.(pos + i))

let drop_prefix v n =
  if n < 0 || n > v.len then invalid_arg "Vec.drop_prefix";
  if n > 0 then begin
    Array.blit v.data n v.data 0 (v.len - n);
    v.len <- v.len - n
    (* slots past [len] keep stale elements, same as [pop]/[clear]; they
       are unobservable and overwritten by the next pushes *)
  end
