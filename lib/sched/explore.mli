(** Systematic schedule exploration (stateless model checking in the style
    of CHESS / dynamic partial-order tools, without reduction).

    The cooperative engine makes every run a pure function of its scheduling
    decisions; this module enumerates the decision tree by depth-first
    search: run once following a scripted prefix (defaulting to choice 0
    beyond it), record the arity of every decision point, then branch on the
    untried alternatives.

    Composed with refinement checking this turns VYRD from a testing tool
    into a bounded verifier for small scenarios: every interleaving of a
    tiny workload is checked, so "no violation" is a proof up to the bound
    rather than luck of the seed. *)

type result = {
  schedules : int;  (** schedules actually executed *)
  exhausted : bool;  (** the whole space was covered within the budget *)
  deadlocks : int;
      (** schedules that ended in {!Coop.Deadlock} — caught and counted so
          exploration can both survive and systematically find deadlocks *)
  first_deadlock : int array option;
      (** the complete decision script of the first deadlocking schedule
          (one entry per decision point, the run-queue index taken) — feed
          it to {!replay} to reproduce the hang deterministically *)
  flagged : int;  (** runs the caller's [flagged] predicate accepted *)
  first_flagged : int array option;
      (** decision script of the first flagged run — the certificate
          [Vyrd_monitor] returns for temporal-property violations *)
}

(** [explore ?max_schedules ?max_steps make_main] runs one schedule per
    point of the decision tree, depth-first.  [make_main ()] must build a
    {e fresh} workload closure (fresh data structure, fresh log) each time
    it is called — one call per schedule.

    Exploration stops early when the budget runs out or when [stop ()]
    returns true (checked after each schedule); [exhausted] reports whether
    every schedule was covered.

    [preemption_bound] caps the number of {e preemptions} per schedule — run-
    queue picks that switch away from a thread that could have continued
    (CHESS-style context bounding).  Once a run's budget is spent, the
    running thread is forced to continue, so those decision points stop
    branching.  Most concurrency bugs need very few preemptions, and a bound
    of 1–2 usually shrinks an intractable space into an exhaustible one;
    [exhausted] then means "verified for every schedule with at most that
    many preemptions".

    [flagged] is evaluated once after every schedule (completed or
    deadlocked); when it returns true the run's full decision script is
    recorded — {!result.first_flagged} is then a replayable certificate of
    the first accepted run, exactly like [first_deadlock].  Callers
    typically close [flagged] over per-run state captured by [make_main]
    (e.g. the run's log) and combine it with [stop] to halt on the first
    hit.

    @param max_schedules budget (default [10_000])
    @param max_steps per-run livelock guard (default [1_000_000]) *)
val explore :
  ?max_schedules:int ->
  ?max_steps:int ->
  ?preemption_bound:int ->
  ?stop:(unit -> bool) ->
  ?flagged:(unit -> bool) ->
  (unit -> Sched.t -> unit) ->
  result

(** [replay schedule main] runs [main] once under the recorded decision
    script (choice 0 past its end), e.g. a {!result.first_deadlock}
    certificate.  Raises whatever the run raises — for a deadlock
    certificate, {!Coop.Deadlock}. *)
val replay : ?max_steps:int -> int array -> (Sched.t -> unit) -> unit

(** [count_schedules make_main] = [(explore make_main).schedules]; handy in
    tests. *)
val count_schedules : ?max_schedules:int -> (unit -> Sched.t -> unit) -> int
