type result = {
  schedules : int;
  exhausted : bool;
  deadlocks : int;
  first_deadlock : int array option;
  flagged : int;
  first_flagged : int array option;
}

(* Per decision point of one run: the arity, the choice taken, and whether
   the choice was forced (preemption budget exhausted), in which case it is
   not a branch point. *)
type step = { arity : int; taken : int; forced : bool }

let index_of tid candidates =
  let rec go i =
    if i >= Array.length candidates then None
    else if Tid.equal candidates.(i) tid then Some i
    else go (i + 1)
  in
  go 0

(* One schedule = one path through the decision tree, identified by the
   choices taken at each decision point.  We run with a scripted prefix,
   defaulting past its end to "continue the running thread if the
   preemption budget is spent, else choice 0", and record every decision so
   the untried siblings can be enqueued. *)
let explore ?(max_schedules = 10_000) ?(max_steps = 1_000_000) ?preemption_bound
    ?(stop = fun () -> false) ?(flagged = fun () -> false) make_main =
  let pending = ref [ [||] ] in
  let schedules = ref 0 in
  let out_of_budget = ref false in
  let deadlocks = ref 0 in
  let first_deadlock = ref None in
  let flagged_runs = ref 0 in
  let first_flagged = ref None in
  let run_prefix (prefix : int array) =
    let steps = ref [] in
    let pos = ref 0 in
    let preemptions = ref 0 in
    let decide (c : Coop.choice) =
      let i = !pos in
      incr pos;
      let arity = Array.length c.Coop.candidates in
      let running_index =
        Option.bind c.Coop.running (fun t -> index_of t c.Coop.candidates)
      in
      let budget_spent =
        match preemption_bound with Some b -> !preemptions >= b | None -> false
      in
      let forced = budget_spent && running_index <> None in
      let taken =
        if i < Array.length prefix then prefix.(i)
        else
          match (forced, running_index) with
          | true, Some r -> r
          | _ -> 0
      in
      (* account preemptions: picking anything but the running thread while
         it could have continued *)
      (match running_index with
      | Some r when taken <> r -> incr preemptions
      | _ -> ());
      steps := { arity; taken; forced } :: !steps;
      taken
    in
    let deadlocked =
      match Coop.run ~max_steps ~decide (make_main ()) with
      | () -> false
      | exception Coop.Deadlock _ -> true
    in
    (Array.of_list (List.rev !steps), deadlocked)
  in
  while !pending <> [] && not (stop ()) && not !out_of_budget do
    match !pending with
    | [] -> ()
    | prefix :: rest ->
      pending := rest;
      if !schedules >= max_schedules then out_of_budget := true
      else begin
        incr schedules;
        let steps, deadlocked = run_prefix prefix in
        if deadlocked then begin
          incr deadlocks;
          (* the full decision script of the deadlocking run — every choice
             was recorded, so replaying it reproduces the hang exactly *)
          if !first_deadlock = None then
            first_deadlock := Some (Array.map (fun s -> s.taken) steps)
        end;
        (* same certificate machinery for caller-defined properties: the
           monitor layer flags runs whose completed trace violates a
           temporal property, and gets back a replayable schedule *)
        if flagged () then begin
          incr flagged_runs;
          if !first_flagged = None then
            first_flagged := Some (Array.map (fun s -> s.taken) steps)
        end;
        (* Branch on the untried alternatives of every unforced decision at
           or beyond the prefix.  Sibling prefixes replay the choices
           actually taken up to that point, then divert.  Deeper positions
           are pushed last so the search stays depth-first. *)
        for i = Array.length prefix to Array.length steps - 1 do
          let s = steps.(i) in
          if not s.forced then
            for a = s.arity - 1 downto 0 do
              if a <> s.taken then begin
                let p = Array.init (i + 1) (fun j -> steps.(j).taken) in
                p.(i) <- a;
                pending := p :: !pending
              end
            done
        done
      end
  done;
  {
    schedules = !schedules;
    exhausted = (not !out_of_budget) && not (stop ());
    deadlocks = !deadlocks;
    first_deadlock = !first_deadlock;
    flagged = !flagged_runs;
    first_flagged = !first_flagged;
  }

let replay ?(max_steps = 1_000_000) (schedule : int array) main =
  let pos = ref 0 in
  let decide (_ : Coop.choice) =
    let i = !pos in
    incr pos;
    if i < Array.length schedule then schedule.(i) else 0
  in
  Coop.run ~max_steps ~decide main

let count_schedules ?max_schedules make_main =
  (explore ?max_schedules make_main).schedules
