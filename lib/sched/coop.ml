open Effect
open Effect.Deep

exception Deadlock of string
exception Livelock of int

type stats = { steps : int; threads : int }

type task =
  | Start of (unit -> unit)
  | Resume of (unit, unit) continuation

type choice = { candidates : Tid.t array; running : Tid.t option }

(* Effects performed by fibers; handled by the trampoline in [run]. *)
type _ Effect.t +=
  | Yield : unit Effect.t
  | Spawn : (unit -> unit) -> unit Effect.t
  | Suspend : (Tid.t -> (unit, unit) continuation -> unit) -> unit Effect.t

type cmutex = {
  cm_name : string;
  mutable cm_owner : Tid.t option;
  mutable cm_depth : int;
  cm_waiters : (Tid.t * (unit, unit) continuation) Vec.t;
}

type crwlock = {
  crw_name : string;
  mutable crw_readers : int;
  mutable crw_writer : Tid.t option;
  crw_read_waiters : (Tid.t * (unit, unit) continuation) Vec.t;
  crw_write_waiters : (Tid.t * (unit, unit) continuation) Vec.t;
}

type state = {
  decide : choice -> int;  (* scheduling decisions over labeled candidates *)
  mutable last_ran : Tid.t option;  (* tid of the previously executed slice *)
  runq : (Tid.t * task) Vec.t;
  mutable current : Tid.t;
  mutable live : int;
  mutable next_tid : int;
  mutable steps : int;
  mutable in_atomic : bool;
  mutable first_exn : (exn * Printexc.raw_backtrace) option;
  max_steps : int;
  mutexes : cmutex Vec.t;  (* registry, for deadlock diagnostics *)
}

let fresh_tid st =
  let t = st.next_tid in
  st.next_tid <- t + 1;
  t

let record_exn st e bt = if st.first_exn = None then st.first_exn <- Some (e, bt)

let make_runnable st tid k = Vec.push st.runq (tid, Resume k)

(* A scheduling point.  Inside an [atomically] section control must not
   transfer, so the yield is suppressed. *)
let sched_point st = if not st.in_atomic then perform Yield

let deadlock_message st =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "deadlock: %d thread(s) blocked and none runnable" st.live);
  (* one clause per blocked thread: the lock it waits on, that lock's owner,
     and every registered mutex the waiter itself holds — enough to read the
     wait-for cycle straight off the message *)
  let held_by tid =
    let hs = ref [] in
    Vec.iter
      (fun m ->
        match m.cm_owner with
        | Some o when Tid.equal o tid -> hs := m.cm_name :: !hs
        | Some _ | None -> ())
      st.mutexes;
    List.sort compare !hs
  in
  let describe m =
    match m.cm_owner with
    | Some owner when Vec.length m.cm_waiters > 0 ->
      Vec.iter
        (fun (t, _) ->
          Buffer.add_string buf
            (Printf.sprintf "; %s waits on %S (held by %s) holding %s"
               (Tid.to_string t) m.cm_name (Tid.to_string owner)
               (match held_by t with
               | [] -> "nothing"
               | hs -> "{" ^ String.concat ", " hs ^ "}")))
        m.cm_waiters
    | Some _ | None -> ()
  in
  Vec.iter describe st.mutexes;
  Buffer.contents buf

let new_mutex st ?(name = "mutex") () : Sched.mutex =
  let m =
    { cm_name = name; cm_owner = None; cm_depth = 0; cm_waiters = Vec.create () }
  in
  Vec.push st.mutexes m;
  let lock () =
    sched_point st;
    let me = st.current in
    match m.cm_owner with
    | Some t when Tid.equal t me -> m.cm_depth <- m.cm_depth + 1
    | None ->
      m.cm_owner <- Some me;
      m.cm_depth <- 1
    | Some _ ->
      (* Ownership is handed to us by [unlock] before we are resumed. *)
      perform (Suspend (fun tid k -> Vec.push m.cm_waiters (tid, k)))
  in
  let unlock () =
    let me = st.current in
    (match m.cm_owner with
    | Some t when Tid.equal t me -> ()
    | Some t ->
      invalid_arg
        (Printf.sprintf "unlock: mutex %S held by %s, released by %s" name
           (Tid.to_string t) (Tid.to_string me))
    | None -> invalid_arg (Printf.sprintf "unlock: mutex %S is not held" name));
    m.cm_depth <- m.cm_depth - 1;
    if m.cm_depth = 0 then
      if Vec.is_empty m.cm_waiters then m.cm_owner <- None
      else begin
        let candidates =
          Array.init (Vec.length m.cm_waiters) (fun i -> fst (Vec.get m.cm_waiters i))
        in
        let i = st.decide { candidates; running = None } in
        let tid, k = Vec.swap_remove m.cm_waiters i in
        m.cm_owner <- Some tid;
        m.cm_depth <- 1;
        make_runnable st tid k
      end
  in
  let try_lock () =
    let me = st.current in
    match m.cm_owner with
    | Some t when Tid.equal t me ->
      m.cm_depth <- m.cm_depth + 1;
      true
    | None ->
      m.cm_owner <- Some me;
      m.cm_depth <- 1;
      true
    | Some _ -> false
  in
  { lock; unlock; try_lock; holder = (fun () -> m.cm_owner); mutex_name = name }

let new_rwlock st ?(name = "rwlock") () : Sched.rwlock =
  let l =
    {
      crw_name = name;
      crw_readers = 0;
      crw_writer = None;
      crw_read_waiters = Vec.create ();
      crw_write_waiters = Vec.create ();
    }
  in
  let wake_one_writer () =
    let candidates =
      Array.init (Vec.length l.crw_write_waiters) (fun i ->
          fst (Vec.get l.crw_write_waiters i))
    in
    let i = st.decide { candidates; running = None } in
    let tid, k = Vec.swap_remove l.crw_write_waiters i in
    l.crw_writer <- Some tid;
    make_runnable st tid k
  in
  let wake_all_readers () =
    l.crw_readers <- l.crw_readers + Vec.length l.crw_read_waiters;
    Vec.iter (fun (tid, k) -> make_runnable st tid k) l.crw_read_waiters;
    Vec.clear l.crw_read_waiters
  in
  let begin_read () =
    sched_point st;
    (* Writer preference: incoming readers queue behind waiting writers. *)
    if l.crw_writer = None && Vec.is_empty l.crw_write_waiters then
      l.crw_readers <- l.crw_readers + 1
    else perform (Suspend (fun tid k -> Vec.push l.crw_read_waiters (tid, k)))
  in
  let end_read () =
    if l.crw_readers <= 0 then
      invalid_arg (Printf.sprintf "end_read: rwlock %S has no readers" name);
    l.crw_readers <- l.crw_readers - 1;
    if l.crw_readers = 0 && not (Vec.is_empty l.crw_write_waiters) then
      wake_one_writer ()
  in
  let begin_write () =
    sched_point st;
    if l.crw_writer = None && l.crw_readers = 0 then l.crw_writer <- Some st.current
    else perform (Suspend (fun tid k -> Vec.push l.crw_write_waiters (tid, k)))
  in
  let end_write () =
    (match l.crw_writer with
    | Some t when Tid.equal t st.current -> ()
    | Some _ | None ->
      invalid_arg (Printf.sprintf "end_write: rwlock %S not held by caller" name));
    l.crw_writer <- None;
    if not (Vec.is_empty l.crw_write_waiters) then wake_one_writer ()
    else if not (Vec.is_empty l.crw_read_waiters) then wake_all_readers ()
  in
  { begin_read; end_read; begin_write; end_write; rwlock_name = name }

let sched_of_state st : Sched.t =
  let atomically : Sched.atomically =
    {
      run_atomically =
        (fun f ->
          if st.in_atomic then f ()
          else begin
            st.in_atomic <- true;
            match f () with
            | v ->
              st.in_atomic <- false;
              v
            | exception e ->
              st.in_atomic <- false;
              raise e
          end);
    }
  in
  {
    engine = "coop";
    spawn = (fun ?tname f -> ignore tname; perform (Spawn f));
    yield = (fun () -> sched_point st);
    self = (fun () -> st.current);
    new_mutex = (fun ?name () -> new_mutex st ?name ());
    new_rwlock = (fun ?name () -> new_rwlock st ?name ());
    atomically;
  }

let run_with_stats ?(seed = 0) ?(max_steps = 20_000_000) ?decide main =
  let decide =
    match decide with
    | Some f -> f
    | None ->
      let rng = Prng.create seed in
      fun c -> Prng.int rng (Array.length c.candidates)
  in
  let st =
    {
      decide;
      last_ran = None;
      runq = Vec.create ();
      current = 0;
      live = 0;
      next_tid = 0;
      steps = 0;
      in_atomic = false;
      first_exn = None;
      max_steps;
      mutexes = Vec.create ();
    }
  in
  let sched = sched_of_state st in
  let handler : (unit, unit) handler =
    {
      retc = (fun () -> st.live <- st.live - 1);
      exnc =
        (fun e ->
          record_exn st e (Printexc.get_raw_backtrace ());
          st.live <- st.live - 1);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                make_runnable st st.current k)
          | Spawn f ->
            Some
              (fun (k : (a, unit) continuation) ->
                let tid = fresh_tid st in
                st.live <- st.live + 1;
                Vec.push st.runq (tid, Start f);
                make_runnable st st.current k)
          | Suspend register ->
            Some (fun (k : (a, unit) continuation) -> register st.current k)
          | _ -> None);
    }
  in
  let exec_start f = match_with f () handler in
  let main_tid = fresh_tid st in
  st.live <- st.live + 1;
  Vec.push st.runq (main_tid, Start (fun () -> main sched));
  let rec loop () =
    if Vec.is_empty st.runq then begin
      if st.live > 0 then
        match st.first_exn with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> raise (Deadlock (deadlock_message st))
    end
    else begin
      st.steps <- st.steps + 1;
      if st.steps > st.max_steps then raise (Livelock st.steps);
      let candidates =
        Array.init (Vec.length st.runq) (fun i -> fst (Vec.get st.runq i))
      in
      let running =
        match st.last_ran with
        | Some t when Array.exists (Tid.equal t) candidates -> Some t
        | Some _ | None -> None
      in
      let i = st.decide { candidates; running } in
      let tid, task = Vec.swap_remove st.runq i in
      st.current <- tid;
      st.last_ran <- Some tid;
      (match task with Start f -> exec_start f | Resume k -> continue k ());
      loop ()
    end
  in
  loop ();
  (match st.first_exn with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  { steps = st.steps; threads = st.next_tid }

let run ?seed ?max_steps ?decide main =
  ignore (run_with_stats ?seed ?max_steps ?decide main)
