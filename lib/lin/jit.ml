open Vyrd

type stats = { nodes : int; undos : int; memo_hits : int; memo_entries : int }
type outcome = Linearizable | Not_linearizable | Budget_exhausted
type result = { outcome : outcome; stats : stats }

let pp_outcome ppf = function
  | Linearizable -> Format.pp_print_string ppf "linearizable"
  | Not_linearizable -> Format.pp_print_string ppf "not-linearizable"
  | Budget_exhausted -> Format.pp_print_string ppf "budget-exhausted"

let default_pending_rets = [ Repr.unit; Repr.success; Repr.failure ]

exception Stop of outcome

module Make (Sp : Spec.S) = struct
  (* one blocked configuration of the search.  [f_edge] is the single
     linearization that created it (undone when the frame fails); [f_calls]
     are the operations whose calls passed while advancing into it. *)
  type frame = {
    f_state : Sp.state;
    f_pos : int;  (* sched index of the blocking return *)
    f_block : int;  (* operation whose return blocks *)
    mutable f_cands : (int * Repr.t) list;
    f_edge : int;  (* -1 at the root *)
    f_calls : int list;
  }

  let check ~budget ~pending_rets (h : History.t) =
    let ops = h.History.ops in
    let n = Array.length ops in
    let kinds = Array.map (fun (o : History.op) -> Sp.kind o.History.op_mid) ops in
    (* the interleaved call/return schedule in log order: [2i] is the call
       of operation [i], [2i+1] its return *)
    let sched =
      let xs = ref [] in
      Array.iteri
        (fun i (o : History.op) ->
          xs := (o.History.op_call, 2 * i) :: !xs;
          if o.History.op_ret <> None then
            xs := (o.History.op_ret_at, (2 * i) + 1) :: !xs)
        ops;
      let a = Array.of_list !xs in
      Array.sort (fun (p, _) (q, _) -> compare p q) a;
      Array.map snd a
    in
    let m = Array.length sched in
    (* doubly linked list (dancing links) of called-but-unlinearized
       operations; undo is LIFO so [dll_restore] re-links exactly *)
    let nxt = Array.make (n + 1) n and prv = Array.make (n + 1) n in
    let dll_append i =
      let tail = prv.(n) in
      nxt.(tail) <- i;
      prv.(i) <- tail;
      nxt.(i) <- n;
      prv.(n) <- i
    in
    let dll_remove i =
      nxt.(prv.(i)) <- nxt.(i);
      prv.(nxt.(i)) <- prv.(i)
    in
    let dll_restore i =
      nxt.(prv.(i)) <- i;
      prv.(nxt.(i)) <- i
    in
    let linearized = Array.make n false in
    let nodes = ref 0 and undos = ref 0 and memo_hits = ref 0 in
    let dead : (string * Repr.t, unit) Hashtbl.t = Hashtbl.create 64 in
    let memo_ok = ref true and backtracked = ref false in
    (* (linearized set, saved state): block position and candidate set are
       functions of the set, and [save] is faithful, so the key determines
       the whole subtree *)
    let key state =
      if not !memo_ok then None
      else
        match Sp.save state with
        | None ->
          memo_ok := false;
          None
        | Some r ->
          let b = Bytes.make ((n + 7) / 8) '\000' in
          for i = 0 to n - 1 do
            if linearized.(i) then
              Bytes.set b (i lsr 3)
                (Char.unsafe_chr
                   (Char.code (Bytes.get b (i lsr 3)) lor (1 lsl (i land 7))))
          done;
          Some (Bytes.unsafe_to_string b, r)
    in
    (* pass calls (entering the DLL) and returns of linearized operations;
       stop at the first return of an unlinearized one, or end of log *)
    let advance pos =
      let calls = ref [] in
      let pos = ref pos and blocked = ref (-1) in
      (try
         while !pos < m do
           let hp = sched.(!pos) in
           let i = hp lsr 1 in
           if hp land 1 = 0 then begin
             dll_append i;
             calls := i :: !calls;
             incr pos
           end
           else if linearized.(i) then incr pos
           else begin
             blocked := i;
             raise Exit
           end
         done
       with Exit -> ());
      (!pos, !blocked, !calls)
    in
    let candidates block =
      (* the blocking operation first: linearize as late as possible *)
      let rest = ref [] in
      let i = ref prv.(n) in
      (* walk backwards so consing preserves DLL order *)
      while !i <> n do
        (if !i <> block then
           match ops.(!i).History.op_ret with
           | Some r -> rest := (!i, r) :: !rest
           | None -> (
             match kinds.(!i) with
             | Spec.Observer -> ()  (* dropping a pending observer is complete *)
             | Spec.Mutator | Spec.Internal ->
               rest :=
                 List.fold_left
                   (fun acc g -> (!i, g) :: acc)
                   !rest (List.rev pending_rets)));
        i := prv.(!i)
      done;
      match ops.(block).History.op_ret with
      | Some r -> (block, r) :: !rest
      | None -> assert false (* blocked at a return event *)
    in
    let step state i ret =
      incr nodes;
      if !nodes > budget then raise (Stop Budget_exhausted);
      let o = ops.(i) in
      let mid = o.History.op_mid and args = o.History.op_args in
      match kinds.(i) with
      | Spec.Observer -> if Sp.observe state ~mid ~args ~ret then Some state else None
      | Spec.Mutator | Spec.Internal -> (
        match Sp.apply state ~mid ~args ~ret with
        | Ok s' -> Some (Sp.snapshot s')
        | Error _ ->
          (* a completed execution that performed no transition may be a
             pure observation (exceptional termination, as in the
             refinement checker); for a pending guess, not linearizing at
             all already covers the no-transition case *)
          if o.History.op_ret <> None && Sp.observe state ~mid ~args ~ret then
            Some state
          else None)
    in
    let outcome =
      try
        let pos0, block0, _ = advance 0 in
        if block0 < 0 then Linearizable
        else begin
          let stack =
            ref
              [ { f_state = Sp.snapshot (Sp.init ()); f_pos = pos0;
                  f_block = block0; f_cands = candidates block0; f_edge = -1;
                  f_calls = [] } ]
          in
          let rec loop () =
            match !stack with
            | [] -> Not_linearizable
            | fr :: tail -> (
              match fr.f_cands with
              | [] ->
                (* exhausted: this configuration is dead — record it, undo
                   the linearization that created it, pop *)
                backtracked := true;
                (match key fr.f_state with
                | Some k -> Hashtbl.replace dead k ()
                | None -> ());
                List.iter dll_remove fr.f_calls;
                if fr.f_edge >= 0 then begin
                  linearized.(fr.f_edge) <- false;
                  dll_restore fr.f_edge;
                  incr undos
                end;
                stack := tail;
                loop ()
              | (c, ret) :: cands ->
                fr.f_cands <- cands;
                (match step fr.f_state c ret with
                | None -> ()
                | Some s' ->
                  linearized.(c) <- true;
                  dll_remove c;
                  let dead_hit =
                    !backtracked
                    &&
                    match key s' with
                    | Some k when Hashtbl.mem dead k -> true
                    | Some _ | None -> false
                  in
                  if dead_hit then begin
                    incr memo_hits;
                    linearized.(c) <- false;
                    dll_restore c
                  end
                  else if c = fr.f_block then begin
                    let pos', block', calls = advance (fr.f_pos + 1) in
                    if block' < 0 then raise (Stop Linearizable)
                    else
                      stack :=
                        { f_state = s'; f_pos = pos'; f_block = block';
                          f_cands = candidates block'; f_edge = c;
                          f_calls = calls }
                        :: !stack
                  end
                  else
                    stack :=
                      { f_state = s'; f_pos = fr.f_pos; f_block = fr.f_block;
                        f_cands = candidates fr.f_block; f_edge = c;
                        f_calls = [] }
                      :: !stack);
                loop ())
          in
          loop ()
        end
      with Stop o -> o
    in
    { outcome;
      stats =
        { nodes = !nodes; undos = !undos; memo_hits = !memo_hits;
          memo_entries = Hashtbl.length dead } }
end

let check ?(budget = 1_000_000) ?(pending_rets = default_pending_rets) h spec =
  let module M = Make ((val spec : Spec.S)) in
  M.check ~budget ~pending_rets h
