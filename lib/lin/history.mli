(** Call/return interval extraction for the linearizability backend.

    The lin backend consumes the {e same} event streams the refinement
    checker does, but reads only [Call] and [Return] events — no commit
    annotations, no shared-variable writes.  A history is the per-thread
    matching of calls to returns, as an array of operations sorted by call
    position; an operation whose return never arrives (the thread was still
    inside the method at end of log) is kept as {e pending} with
    [op_ret = None].

    Positions are global log indices, so the real-time precedence order
    ("[a] returned before [b] was called") is exactly
    [a.op_ret_at < b.op_call]; pending operations have
    [op_ret_at = max_int] and therefore precede nothing. *)

type op = {
  op_tid : Vyrd_sched.Tid.t;
  op_mid : string;
  op_args : Vyrd.Repr.t list;
  op_ret : Vyrd.Repr.t option;  (** [None]: still pending at end of log *)
  op_call : int;  (** log index of the [Call] event *)
  op_ret_at : int;  (** log index of the [Return]; [max_int] when pending *)
}

type t = {
  ops : op array;  (** sorted by [op_call] *)
  events : int;  (** events fed, including ones the builder ignored *)
}

val length : t -> int

(** Operations with no matching return. *)
val pending : t -> int

(** {1 Building}

    [owns] restricts the history to one structure's methods (the same
    method-ownership test the farm uses to shard a log): events whose [mid]
    it rejects are skipped.  Default: keep everything. *)

module Builder : sig
  type b

  val create : ?owns:(string -> bool) -> unit -> b
  val feed : b -> Vyrd.Event.t -> unit

  (** Extract the history; the builder stays usable (more [feed]s extend
      it). *)
  val finish : b -> t
end

val of_events : ?owns:(string -> bool) -> Vyrd.Event.t array -> t
val of_log : ?owns:(string -> bool) -> Vyrd.Log.t -> t

(** [owner spec] is the method-ownership test of [spec]: true on the methods
    [spec] classifies ([Spec.S.kind] does not raise). *)
val owner : Vyrd.Spec.t -> string -> bool
