open Vyrd
module Metrics = Vyrd_pipeline.Metrics

type verdict = Pass | Fail | Inconclusive

let verdict_string = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Inconclusive -> "inconclusive"

type structure_result = {
  ls_structure : string;
  ls_engine : string;
  ls_ops : int;
  ls_pending : int;
  ls_verdict : verdict;
  ls_stats : Jit.stats;
  ls_anchor : int;
}

type t = { structures : structure_result list; events : int }

let clean t = List.for_all (fun r -> r.ls_verdict = Pass) t.structures
let violations t = List.filter (fun r -> r.ls_verdict = Fail) t.structures
let inconclusive t = List.exists (fun r -> r.ls_verdict = Inconclusive) t.structures

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-16s %-12s engine=%s ops=%d pending=%d nodes=%d undos=%d memo=%d@,"
        r.ls_structure
        (verdict_string r.ls_verdict)
        r.ls_engine r.ls_ops r.ls_pending r.ls_stats.Jit.nodes
        r.ls_stats.Jit.undos r.ls_stats.Jit.memo_hits)
    t.structures;
  Format.fprintf ppf "@]"

type lane = { l_name : string; l_spec : Spec.t; l_builder : History.Builder.b }

type collector = {
  budget : int;
  exhaustive : int;
  pending_rets : Repr.t list;
  metrics : Metrics.t option;
  lanes : lane list;
  mutable c_events : int;
}

let collector ?(budget = 1_000_000) ?(exhaustive = 0)
    ?(pending_rets = Jit.default_pending_rets) ?metrics ~specs () =
  let lanes =
    List.map
      (fun (name, spec) ->
        { l_name = name; l_spec = spec;
          l_builder = History.Builder.create ~owns:(History.owner spec) () })
      specs
  in
  { budget; exhaustive; pending_rets; metrics; lanes; c_events = 0 }

let feed c ev =
  c.c_events <- c.c_events + 1;
  (* only calls and returns matter; skip the common non-method events before
     fanning out to every lane *)
  match ev with
  | Event.Call _ | Event.Return _ ->
    List.iter (fun l -> History.Builder.feed l.l_builder ev) c.lanes
  | _ -> ()

let check_history c name spec (h : History.t) =
  let ops = History.length h and pending = History.pending h in
  let anchor =
    Array.fold_left
      (fun a (o : History.op) ->
        if o.History.op_ret_at < max_int then max a o.History.op_ret_at else a)
      0 h.History.ops
  in
  let engine, (res : Jit.result) =
    if c.exhaustive > 0 && ops <= c.exhaustive then
      let outcome, nodes =
        Enum.check ~budget:c.budget ~pending_rets:c.pending_rets
          ~max_ops:c.exhaustive h spec
      in
      ( "enum",
        { Jit.outcome;
          stats = { Jit.nodes; undos = 0; memo_hits = 0; memo_entries = 0 } } )
    else ("jit", Jit.check ~budget:c.budget ~pending_rets:c.pending_rets h spec)
  in
  let verdict =
    match res.Jit.outcome with
    | Jit.Linearizable -> Pass
    | Jit.Not_linearizable -> Fail
    | Jit.Budget_exhausted -> Inconclusive
  in
  { ls_structure = name; ls_engine = engine; ls_ops = ops;
    ls_pending = pending; ls_verdict = verdict; ls_stats = res.Jit.stats;
    ls_anchor = anchor }

let finish c =
  let structures =
    List.map
      (fun l ->
        check_history c l.l_name l.l_spec (History.Builder.finish l.l_builder))
      c.lanes
  in
  let t = { structures; events = c.c_events } in
  (match c.metrics with
  | None -> ()
  | Some m ->
    let add name v = Metrics.add (Metrics.counter m name) v in
    List.iter
      (fun r ->
        add "lin.histories_checked" 1;
        add "lin.ops" r.ls_ops;
        add "lin.pending" r.ls_pending;
        add "lin.nodes" r.ls_stats.Jit.nodes;
        add "lin.undos" r.ls_stats.Jit.undos;
        add "lin.memo_hits" r.ls_stats.Jit.memo_hits;
        if r.ls_verdict = Inconclusive then add "lin.budget_exhausted" 1;
        if r.ls_verdict = Fail then add "lin.violations" 1)
      structures);
  t

let check_log ?budget ?exhaustive ?pending_rets ?metrics ~specs log =
  let c = collector ?budget ?exhaustive ?pending_rets ?metrics ~specs () in
  Log.iter (feed c) log;
  finish c

let pass ?budget ?exhaustive ?pending_rets ?metrics ~specs () =
  let c = collector ?budget ?exhaustive ?pending_rets ?metrics ~specs () in
  let finish () =
    let t = finish c in
    let diags =
      List.filter_map
        (fun r ->
          match r.ls_verdict with
          | Pass -> None
          | Fail ->
            Some
              { Vyrd_analysis.Pass.pass = "lin"; id = "lin-not-linearizable";
                severity = `Error; position = r.ls_anchor; tid = None;
                text =
                  Printf.sprintf
                    "%s: no linearization of %d operations matches the spec \
                     (%d nodes, %d undos)"
                    r.ls_structure r.ls_ops r.ls_stats.Jit.nodes
                    r.ls_stats.Jit.undos }
          | Inconclusive ->
            Some
              { Vyrd_analysis.Pass.pass = "lin"; id = "lin-budget-exhausted";
                severity = `Warning; position = r.ls_anchor; tid = None;
                text =
                  Printf.sprintf
                    "%s: search budget exhausted after %d nodes (%d operations)"
                    r.ls_structure r.ls_stats.Jit.nodes r.ls_ops })
        t.structures
    in
    let errors =
      List.length (List.filter (fun d -> d.Vyrd_analysis.Pass.severity = `Error) diags)
    in
    let warnings = List.length diags - errors in
    let kept =
      List.filteri (fun i _ -> i < Vyrd_analysis.Pass.max_diags) diags
    in
    { Vyrd_analysis.Pass.pass = "lin"; events = t.events; errors; warnings;
      diags = kept; dropped = List.length diags - List.length kept }
  in
  { Vyrd_analysis.Pass.name = "lin"; feed = feed c; finish }
