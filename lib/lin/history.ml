open Vyrd
module Tid = Vyrd_sched.Tid

type op = {
  op_tid : Tid.t;
  op_mid : string;
  op_args : Repr.t list;
  op_ret : Repr.t option;
  op_call : int;
  op_ret_at : int;
}

type t = { ops : op array; events : int }

let length t = Array.length t.ops
let pending t =
  Array.fold_left (fun n o -> if o.op_ret = None then n + 1 else n) 0 t.ops

module Builder = struct
  (* an open call, mutated in place when its return arrives *)
  type slot = {
    s_tid : Tid.t;
    s_mid : string;
    s_args : Repr.t list;
    s_call : int;
    mutable s_ret : Repr.t option;
    mutable s_ret_at : int;
  }

  type b = {
    owns : string -> bool;
    open_calls : (Tid.t, slot) Hashtbl.t;
    mutable slots : slot list;  (* reverse call order *)
    mutable pos : int;
  }

  let create ?(owns = fun _ -> true) () =
    { owns; open_calls = Hashtbl.create 16; slots = []; pos = 0 }

  let feed b ev =
    (match ev with
    | Event.Call { tid; mid; args } when b.owns mid ->
      let s =
        { s_tid = tid; s_mid = mid; s_args = args; s_call = b.pos; s_ret = None;
          s_ret_at = max_int }
      in
      Hashtbl.replace b.open_calls tid s;
      b.slots <- s :: b.slots
    | Event.Return { tid; mid; value } when b.owns mid -> (
      match Hashtbl.find_opt b.open_calls tid with
      | Some s when s.s_mid = mid ->
        Hashtbl.remove b.open_calls tid;
        s.s_ret <- Some value;
        s.s_ret_at <- b.pos
      | Some _ | None -> ())
    | _ -> ());
    b.pos <- b.pos + 1

  let finish b =
    let ops =
      List.rev_map
        (fun s ->
          { op_tid = s.s_tid; op_mid = s.s_mid; op_args = s.s_args;
            op_ret = s.s_ret; op_call = s.s_call; op_ret_at = s.s_ret_at })
        b.slots
      |> Array.of_list
    in
    { ops; events = b.pos }
end

let of_events ?owns evs =
  let b = Builder.create ?owns () in
  Array.iter (Builder.feed b) evs;
  Builder.finish b

let of_log ?owns log =
  let b = Builder.create ?owns () in
  Log.iter (Builder.feed b) log;
  Builder.finish b

let owner spec mid =
  let module Sp = (val spec : Spec.S) in
  match Sp.kind mid with
  | (_ : Spec.kind) -> true
  | exception Invalid_argument _ -> false
