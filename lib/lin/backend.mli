(** The linearizability backend as a second oracle next to refinement
    checking.

    A {!collector} splits one event stream into per-structure histories (the
    same method-ownership sharding the farm uses) while it streams, then
    runs the {!Jit} checker — or the {!Enum} exhaustive checker for
    histories of at most [exhaustive] operations — on each at {!finish}.
    {!pass} wraps a collector as a {!Vyrd_analysis.Pass.t}, so
    [vyrd_check pipeline --backend lin|both] runs it on the farm's analysis
    lane with zero farm changes, and [serve --analyze] could do the same.

    When a [metrics] registry is supplied, {!finish} publishes the [lin.*]
    family: [lin.histories_checked], [lin.ops], [lin.pending], [lin.nodes],
    [lin.undos], [lin.memo_hits], [lin.budget_exhausted],
    [lin.violations]. *)

type verdict = Pass | Fail | Inconclusive  (** [Inconclusive]: budget ran out *)

val verdict_string : verdict -> string

type structure_result = {
  ls_structure : string;
  ls_engine : string;  (** ["jit"] or ["enum"] *)
  ls_ops : int;
  ls_pending : int;
  ls_verdict : verdict;
  ls_stats : Jit.stats;  (** [Enum] fills only [nodes] *)
  ls_anchor : int;  (** log index of the last return, 0 on empty histories *)
}

type t = { structures : structure_result list; events : int }

(** No structure failed and none was inconclusive. *)
val clean : t -> bool

(** Structures whose verdict is [Fail]. *)
val violations : t -> structure_result list

(** Some structure exhausted its node budget. *)
val inconclusive : t -> bool

val pp : Format.formatter -> t -> unit

(** {1 Checking} *)

type collector

(** [exhaustive] (default 0): histories with at most that many operations
    are checked by brute-force enumeration instead of the JIT search. *)
val collector :
  ?budget:int -> ?exhaustive:int -> ?pending_rets:Vyrd.Repr.t list ->
  ?metrics:Vyrd_pipeline.Metrics.t -> specs:(string * Vyrd.Spec.t) list ->
  unit -> collector

val feed : collector -> Vyrd.Event.t -> unit
val finish : collector -> t

val check_log :
  ?budget:int -> ?exhaustive:int -> ?pending_rets:Vyrd.Repr.t list ->
  ?metrics:Vyrd_pipeline.Metrics.t -> specs:(string * Vyrd.Spec.t) list ->
  Vyrd.Log.t -> t

(** A farm-lane pass named ["lin"]: a [Fail] structure becomes an [`Error]
    diagnostic ([lin-not-linearizable]), a budget exhaustion a [`Warning]
    ([lin-budget-exhausted]). *)
val pass :
  ?budget:int -> ?exhaustive:int -> ?pending_rets:Vyrd.Repr.t list ->
  ?metrics:Vyrd_pipeline.Metrics.t -> specs:(string * Vyrd.Spec.t) list ->
  unit -> Vyrd_analysis.Pass.t
