open Vyrd

let default_max_ops = 14

exception Found
exception Out_of_budget

let check ?(budget = 1_000_000) ?(pending_rets = Jit.default_pending_rets)
    ?(max_ops = default_max_ops) (h : History.t) spec =
  let module Sp = (val spec : Spec.S) in
  let ops = h.History.ops in
  let n = Array.length ops in
  if n > max_ops then
    invalid_arg
      (Printf.sprintf "Enum.check: %d operations exceed the exhaustive bound %d"
         n max_ops);
  let kinds = Array.map (fun (o : History.op) -> Sp.kind o.History.op_mid) ops in
  let used = Array.make n false in
  let completed_left =
    ref (Array.fold_left (fun k (o : History.op) -> if o.op_ret = None then k else k + 1) 0 ops)
  in
  let nodes = ref 0 in
  (* [i] may come next iff every unused completed operation that returned
     before [i]'s call is already placed (pending ops return at [max_int],
     so they block nothing) *)
  let minimal i =
    let e = ops.(i) in
    let ok = ref true in
    for j = 0 to n - 1 do
      if !ok && (not used.(j)) && j <> i && ops.(j).History.op_ret_at < e.History.op_call
      then ok := false
    done;
    !ok
  in
  let step state i ret k =
    incr nodes;
    if !nodes > budget then raise Out_of_budget;
    let o = ops.(i) in
    let mid = o.History.op_mid and args = o.History.op_args in
    match kinds.(i) with
    | Spec.Observer -> if Sp.observe state ~mid ~args ~ret then k state
    | Spec.Mutator | Spec.Internal -> (
      match Sp.apply state ~mid ~args ~ret with
      | Ok s' -> k (Sp.snapshot s')
      | Error _ ->
        if o.History.op_ret <> None && Sp.observe state ~mid ~args ~ret then
          k state)
  in
  let rec dfs state =
    if !completed_left = 0 then raise Found;
    for i = 0 to n - 1 do
      if (not used.(i)) && minimal i then begin
        let place ret =
          used.(i) <- true;
          let completed = ops.(i).History.op_ret <> None in
          if completed then decr completed_left;
          step state i ret dfs;
          if completed then incr completed_left;
          used.(i) <- false
        in
        match ops.(i).History.op_ret with
        | Some r -> place r
        | None -> (
          match kinds.(i) with
          | Spec.Observer -> ()  (* pending observers are dropped *)
          | Spec.Mutator | Spec.Internal -> List.iter place pending_rets)
      end
    done
  in
  match dfs (Sp.snapshot (Sp.init ())) with
  | () -> (Jit.Not_linearizable, !nodes)
  | exception Found -> (Jit.Linearizable, !nodes)
  | exception Out_of_budget -> (Jit.Budget_exhausted, !nodes)
