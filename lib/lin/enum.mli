(** Bounded exhaustive linearizability checking by brute-force enumeration
    (the reduction-to-reachability idea of Bouajjani–Emmi–Enea–Hamza,
    specialized to fixed-size histories).

    Every linearization order extending the real-time precedence of the
    history is enumerated directly — no just-in-time scheduling, no
    memoization, no undo machinery — with the same semantics as {!Jit} for
    pending operations (a pending mutator may linearize with each guessed
    return value or be dropped; pending observers are dropped).  The two
    implementations share nothing but {!History}, which is what makes their
    agreement on random histories a meaningful differential gate.

    Cost is factorial, so {!check} refuses histories longer than [max_ops]
    (default {!default_max_ops}). *)

val default_max_ops : int

(** [check h spec] is the brute-force verdict and the number of spec
    transitions attempted.
    @raise Invalid_argument if [h] has more than [max_ops] operations or
      contains a method [spec] does not know. *)
val check :
  ?budget:int -> ?pending_rets:Vyrd.Repr.t list -> ?max_ops:int ->
  History.t -> Vyrd.Spec.t -> Jit.outcome * int
