(** Just-in-time backtracking linearizability checker (Lowe's refinement of
    Wing & Gong, SNIPPETS.md Snippet 1), over the sequential {!Vyrd.Spec}.

    The search walks the history in real time and linearizes an operation as
    late as possible: only when its return event is reached and it has not
    been linearized yet.  At such a {e block point} the candidates are every
    operation whose call has passed and that is not yet linearized; each
    candidate is tried by taking its spec transition, and exhausting all
    candidates backtracks with an explicit undo (the one linearization that
    created the configuration is reverted — states are snapshots, so undo is
    a pointer pop, not an inverse transition).

    Configurations that exhausted every candidate are memoized as {e dead},
    keyed on (linearized-set, [Spec.S.save] of the state): the block
    position and the candidate set are functions of the linearized set, and
    [save] is faithful (equal saves ⇒ equivalent states), so reaching a dead
    key again cannot succeed.  Memoization only costs anything once the
    search has backtracked at least once — a greedy linearizable history
    (the overwhelmingly common case in service) never serializes a state.

    Operations pending at end of log need not be linearized; a pending
    mutator {e may} be, with each return value from [pending_rets]
    (unknown-result semantics: the witness order chooses whether and how the
    incomplete call took effect).  Pending observers are never linearized —
    they cannot change the state, so dropping them is complete.

    [budget] bounds the number of spec transitions attempted, so an
    adversarial history answers {!Budget_exhausted} instead of hanging. *)

type stats = {
  nodes : int;  (** spec transitions attempted *)
  undos : int;  (** linearization choices reverted *)
  memo_hits : int;  (** configurations pruned by the dead set *)
  memo_entries : int;  (** dead configurations recorded *)
}

type outcome = Linearizable | Not_linearizable | Budget_exhausted

val pp_outcome : Format.formatter -> outcome -> unit

type result = { outcome : outcome; stats : stats }

(** Return values tried for operations pending at end of log:
    [unit], [success], [failure]. *)
val default_pending_rets : Vyrd.Repr.t list

(** [check h spec] decides whether [h] is linearizable with respect to
    [spec].  Default [budget]: 1_000_000 nodes.
    @raise Invalid_argument if [h] contains a method [spec] does not know
      (filter with {!History.owner} first). *)
val check :
  ?budget:int -> ?pending_rets:Vyrd.Repr.t list -> History.t -> Vyrd.Spec.t ->
  result
