open Vyrd
module Prng = Vyrd_sched.Prng
module Sched = Vyrd_sched.Sched

type built = {
  random_op : Prng.t -> int -> unit;
  daemon : (unit -> unit) option;
}

type config = {
  threads : int;
  ops_per_thread : int;
  key_pool : int;
  key_range : int;
  seed : int;
  log_level : Log.level;
}

let default =
  {
    threads = 4;
    ops_per_thread = 50;
    key_pool = 16;
    key_range = 64;
    seed = 0;
    log_level = `View;
  }

(* The shared key pool of §7.1: every thread draws from a prefix that
   shrinks as its own run progresses. *)
let make_pool config =
  let rng = Prng.create (config.seed * 31 + 17) in
  Array.init (max 2 config.key_pool) (fun _ -> Prng.int rng config.key_range)

let run_on_into ~spawn_engine ~log config builds =
  if builds = [] then invalid_arg "Harness.run_into: no builds";
  spawn_engine (fun (sched : Sched.t) ->
      let ctx = Instrument.make sched log in
      let bs = Array.of_list (List.map (fun build -> build ctx) builds) in
      let k = Array.length bs in
      let pool = make_pool config in
      let stop = ref false in
      Array.iter
        (fun b ->
          match b.daemon with
          | Some step ->
            sched.Sched.spawn (fun () ->
                while not !stop do
                  step ();
                  sched.Sched.yield ()
                done)
          | None -> ())
        bs;
      let remaining = ref config.threads in
      for t = 1 to config.threads do
        sched.Sched.spawn (fun () ->
            let rng = Prng.create ((config.seed * 7919) + t) in
            let n = config.ops_per_thread in
            for i = 0 to n - 1 do
              (* single-structure runs draw exactly the same stream as they
                 always have: the structure pick only happens when k > 1 *)
              let b = if k = 1 then bs.(0) else bs.(Prng.int rng k) in
              (* shrink the live pool prefix from its full size down to 2 *)
              let live =
                max 2 (Array.length pool - (i * (Array.length pool - 2) / max 1 n))
              in
              let key = pool.(Prng.int rng live) in
              b.random_op rng key
            done;
            decr remaining;
            if !remaining = 0 then stop := true)
      done)

let run_on ~spawn_engine config build =
  let log = Log.create ~level:config.log_level () in
  run_on_into ~spawn_engine ~log config [ build ];
  log

let coop_engine config main =
  Vyrd_sched.Coop.run ~seed:config.seed ~max_steps:200_000_000 main

let run config build = run_on config build ~spawn_engine:(coop_engine config)

let run_native config build =
  run_on config build ~spawn_engine:Vyrd_sched.Native.run

let run_into ?(native = false) ~log config builds =
  let spawn_engine =
    if native then Vyrd_sched.Native.run else coop_engine config
  in
  run_on_into ~spawn_engine ~log config builds
