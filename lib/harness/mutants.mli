(** Detection matrix for the seeded mutants of {!Vyrd_faults.Faults}.

    The registry of lib/faults only declares that bugs exist; this module
    proves they are caught.  {!run_fault} arms one mutant and drives its
    hosting subject under three regimes:

    - {b coop}: the §7.1 random workload on the deterministic engine, seeds
      swept in order — every detection is replayable from its seed;
    - {b native}: the same workload under real system threads (inherently
      non-deterministic; recorded, never relied upon);
    - {b explore}: a tiny contended scenario under bounded systematic
      exploration ({!Vyrd_sched.Explore}, CHESS-style preemption bound) — a
      detection here is a certificate independent of seed luck.

    A fourth, analysis-side channel rides on the coop regime: the
    happens-before race detector ({!Vyrd_analysis.Racedetect}) over
    [`Full]-level logs of the armed subject, {e differential} against the
    unarmed subject on the same seed (some subjects race benignly even when
    correct).  Lock-discipline mutants light it up; annotation mutants (a
    misplaced commit) are invisible to it by construction — recording that
    asymmetry per mutant is what the [race] column is for.

    Each cell records whether the checker fired, after how many
    runs/schedules, and the [methods_checked] of the detecting report — the
    paper's Table 1 time-to-detection unit, now measured against ground
    truth.  Coop cells are recorded for both [`Io] and [`View] refinement so
    the matrix reproduces Table 1's central comparison. *)

type cell = {
  regime : string;  (** ["coop"], ["native"] or ["explore"] *)
  mode : string;  (** ["io"], ["view"], ["race"] or ["lin"] *)
  detected : bool;
  runs : int;  (** seeds swept / native retries / schedules executed *)
  methods_checked : int option;  (** of the first detecting report *)
  tag : string option;
      (** {!Vyrd.Report.tag} of the detecting violation; for the race
          channel, the first armed-only racy variable *)
}

type row = { fault : Vyrd_faults.Faults.t; subject : Subjects.t; cells : cell list }

type config = {
  threads : int;
  ops : int;  (** per thread, coop + native regimes *)
  seeds : int;  (** coop seed-sweep budget *)
  race_seeds : int;  (** coop sweep budget for the happens-before channel *)
  native_runs : int;
  explore_fibers : int;
  explore_ops : int;  (** per fiber, explore regime *)
  explore_opseeds : int;  (** operation mixes tried before giving up *)
  explore_budget : int;  (** schedules per operation mix *)
  preemption_bound : int;
  lin_seeds : int;  (** coop sweep budget for the linearizability channel *)
  lin_budget : int;  (** JIT node budget per history *)
}

(** CI-sized budgets (a few seconds for the whole registry). *)
val quick : config

(** Paper-comparison budgets (bench table1's sweep sizes). *)
val full : config

(** [run_fault cfg f] arms [f] (restoring its previous state afterwards),
    runs all three regimes against the subject named by
    [Faults.subject f], and returns the row.
    @raise Not_found if that subject is not registered in {!Subjects}. *)
val run_fault : config -> Vyrd_faults.Faults.t -> row

(** [run_all cfg] is {!run_fault} over every registered fault, in name
    order. *)
val run_all : config -> row list

val find_cell : row -> regime:string -> mode:string -> cell option

(** The mutant was detected in [`View] mode under a deterministic regime
    (coop or explore) — the property every registered fault must satisfy. *)
val deterministic_view_detection : row -> bool

(** The happens-before race channel fired: the armed run shows a racy
    variable the unarmed run (same seed) does not.  No mutant is required to
    satisfy this — the column records which bug classes a precise race
    detector can and cannot see. *)
val race_detection : row -> bool

(** The annotation-free linearizability backend ({!Vyrd_lin.Backend})
    convicted some coop-seed history on calls and returns alone.  Required
    of [Refinement] mutants with {!Vyrd_faults.Faults.semantic} behavior;
    expected {e absent} otherwise — for annotation/instrumentation mutants
    because the implementation behavior is correct (a conviction there
    would be a lin false positive), and for non-semantic implementation
    mutants because the corruption never reaches a return value on the
    swept workloads (the view-only asymmetry the matrix measures). *)
val lin_detection : row -> bool

(** The lock-order graph ({!Vyrd_analysis.Lockgraph}) reported an armed-only
    cycle from a single completed [`Full] trace — the static half of what a
    [Deadlock]-kind mutant must show. *)
val lockgraph_detection : row -> bool

(** Some schedule genuinely ended in {!Vyrd_sched.Coop.Deadlock}, under the
    coop seed sweep or bounded exploration — the dynamic half. *)
val deadlock_detection : row -> bool

(** Kind-aware ground truth: [Refinement] rows need
    {!deterministic_view_detection} and a {!lin_detection} exactly when the
    fault is semantic; [Deadlock] rows need both {!lockgraph_detection} and
    {!deadlock_detection}; [Benign] rows must show {e no} detection in any
    cell. *)
val expected_detections_hold : row -> bool

(** Table 1's inequality on ground truth: view-mode time-to-detection is no
    worse than I/O-mode (or I/O missed the bug entirely) in the coop
    regime. *)
val view_beats_io : row -> bool

(** Human-readable matrix (one line per fault). *)
val pp_matrix : Format.formatter -> row list -> unit

(** The matrix as a self-contained JSON document. *)
val to_json : row list -> string
