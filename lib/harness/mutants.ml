(* Detection-matrix engine for the seeded refinement-violation mutants of
   lib/faults.

   For each registered fault the engine arms it, drives the hosting subject
   under three regimes — deterministic coop schedules (seed sweep), native
   stress (real threads), and bounded systematic exploration — and records
   whether the checker reports a violation, after how many runs/schedules,
   and how many methods it had checked when it fired (the paper's Table 1
   time-to-detection unit).  Ground truth for the monitor: every mutant must
   light up somewhere deterministic, and the unmutated subjects must stay
   dark under the same seeds. *)

open Vyrd
module Faults = Vyrd_faults.Faults
module Sched = Vyrd_sched.Sched
module Prng = Vyrd_sched.Prng
module Explore = Vyrd_sched.Explore
module Coop = Vyrd_sched.Coop
module Lockgraph = Vyrd_analysis.Lockgraph
module Lin = Vyrd_lin.Backend
module Monitor = Vyrd_monitor.Monitor

type cell = {
  regime : string;  (* "coop" | "native" | "explore" *)
  mode : string;  (* "io" | "view" | "race" *)
  detected : bool;
  runs : int;  (* seeds swept / native retries / schedules executed *)
  methods_checked : int option;  (* of the first detecting report *)
  tag : string option;  (* Report.tag of the detecting violation *)
}

type row = { fault : Faults.t; subject : Subjects.t; cells : cell list }

type config = {
  threads : int;
  ops : int;  (* per thread, coop + native regimes *)
  seeds : int;  (* coop seed-sweep budget *)
  race_seeds : int;  (* coop sweep budget for the happens-before channel *)
  native_runs : int;
  explore_fibers : int;
  explore_ops : int;  (* per fiber, explore regime *)
  explore_opseeds : int;  (* operation mixes tried before giving up *)
  explore_budget : int;  (* schedules per operation mix *)
  preemption_bound : int;
  lin_seeds : int;  (* coop sweep budget for the linearizability channel *)
  lin_budget : int;  (* JIT node budget per history *)
}

let quick =
  {
    threads = 4;
    ops = 25;
    seeds = 80;
    race_seeds = 20;
    native_runs = 8;
    explore_fibers = 2;
    explore_ops = 3;
    explore_opseeds = 5;
    explore_budget = 3_000;
    preemption_bound = 2;
    lin_seeds = 40;
    lin_budget = 500_000;
  }

let full =
  {
    threads = 5;
    ops = 30;
    seeds = 250;
    race_seeds = 60;
    native_runs = 30;
    explore_fibers = 2;
    explore_ops = 4;
    explore_opseeds = 8;
    explore_budget = 20_000;
    preemption_bound = 2;
    lin_seeds = 120;
    lin_budget = 2_000_000;
  }

(* Some injection sites need a deeper workload before they are reachable at
   all: a torn B-link split requires enough inserts of enough distinct keys
   to overflow an order-4 leaf, which the default 4-key contention pool can
   never do.  Returns (ops per fiber, key range). *)
let explore_tuning cfg fault =
  match Faults.name fault with
  | "blink_tree.torn_split" -> (max cfg.explore_ops 8, 12)
  | _ -> (cfg.explore_ops, 4)

let check_mode ~mode (s : Subjects.t) log =
  match mode with
  | `Io -> Checker.check ~mode:`Io log s.spec
  | `View -> Checker.check ~mode:`View ~view:s.view ~invariants:s.invariants log s.spec

let cell ~regime ~mode ~runs = function
  | None -> { regime; mode; detected = false; runs; methods_checked = None; tag = None }
  | Some (r : Report.t) ->
    {
      regime;
      mode;
      detected = true;
      runs;
      methods_checked = Some r.Report.stats.methods_checked;
      tag = Some (Report.tag r);
    }

(* --- deterministic coop schedules: the seed sweep of bench table1 -------- *)

let harness_cfg cfg seed =
  {
    Harness.default with
    threads = cfg.threads;
    ops_per_thread = cfg.ops;
    key_pool = 12;
    key_range = 16;
    seed;
  }

let coop_cells cfg (s : Subjects.t) =
  let io = ref None and view = ref None in
  let io_runs = ref 0 and view_runs = ref 0 in
  let seed = ref 0 in
  while (!io = None || !view = None) && !seed < cfg.seeds do
    let log = Harness.run (harness_cfg cfg !seed) (s.build ~bug:false) in
    (if !io = None then begin
       incr io_runs;
       let r = check_mode ~mode:`Io s log in
       if not (Report.is_pass r) then io := Some r
     end);
    (if !view = None then begin
       incr view_runs;
       let r = check_mode ~mode:`View s log in
       if not (Report.is_pass r) then view := Some r
     end);
    incr seed
  done;
  [
    cell ~regime:"coop" ~mode:"io" ~runs:!io_runs !io;
    cell ~regime:"coop" ~mode:"view" ~runs:!view_runs !view;
  ]

(* --- happens-before race channel ------------------------------------------ *)

(* Third, independent detection channel: a FastTrack pass over `Full-level
   logs of the armed subject.  Differential against the unarmed subject on
   the same seed, because some subjects (the B-link tree's optimistic
   lock-free reads) report happens-before races even when correct — only a
   racy variable that the baseline run does NOT report counts as detecting
   the mutant.  Annotation bugs (a misplaced commit) are invisible to this
   channel by construction; that asymmetry is the point of recording it. *)
let race_cell cfg fault (s : Subjects.t) =
  let full_log seed =
    Harness.run
      { (harness_cfg cfg seed) with log_level = `Full }
      (s.build ~bug:false)
  in
  let racy_vars seed =
    (Vyrd_analysis.Racedetect.analyze (full_log seed)).Vyrd_analysis.Racedetect
      .racy_vars
  in
  let baseline_racy_vars seed =
    (* run_fault calls us under with_armed, which restores state on exit *)
    Faults.disarm fault;
    Fun.protect ~finally:(fun () -> Faults.arm fault) (fun () -> racy_vars seed)
  in
  let found = ref None and runs = ref 0 in
  let seed = ref 0 in
  while !found = None && !seed < cfg.race_seeds do
    incr runs;
    (match racy_vars !seed with
    | [] -> ()
    | armed ->
      let baseline = baseline_racy_vars !seed in
      (match List.filter (fun v -> not (List.mem v baseline)) armed with
      | fresh :: _ -> found := Some fresh
      | [] -> ()));
    incr seed
  done;
  {
    regime = "coop";
    mode = "race";
    detected = !found <> None;
    runs = !runs;
    methods_checked = None;
    tag = !found;
  }

(* --- annotation-free linearizability channel ------------------------------ *)

(* Fourth independent channel: the JIT linearizability backend over the coop
   seed sweep, reading only calls and returns — no commit annotations, no
   logged writes.  Semantic mutants (a lost update, a stale write-back, a
   torn split) corrupt the call/return history itself and must be convicted
   here too; annotation and instrumentation mutants leave the implementation
   behavior correct and are invisible by construction.  Measuring exactly
   that asymmetry — what the commit annotations buy, and what they cost —
   is the point of the column. *)
let lin_cell ?(budget_seeds = None) cfg (s : Subjects.t) =
  let specs = [ (s.Subjects.name, s.Subjects.spec) ] in
  let max_seeds = Option.value ~default:cfg.lin_seeds budget_seeds in
  let found = ref None and runs = ref 0 in
  let seed = ref 0 in
  while !found = None && !seed < max_seeds do
    incr runs;
    let log = Harness.run (harness_cfg cfg !seed) (s.build ~bug:false) in
    let r = Lin.check_log ~budget:cfg.lin_budget ~specs log in
    (match Lin.violations r with
    | v :: _ -> found := Some v
    | [] -> ());
    incr seed
  done;
  match !found with
  | Some v ->
    {
      regime = "coop";
      mode = "lin";
      detected = true;
      runs = !runs;
      methods_checked = Some v.Lin.ls_ops;
      tag =
        Some
          (Printf.sprintf "not-linearizable nodes=%d"
             v.Lin.ls_stats.Vyrd_lin.Jit.nodes);
    }
  | None ->
    { regime = "coop"; mode = "lin"; detected = false; runs = !runs;
      methods_checked = None; tag = None }

(* --- native stress: real threads, inherently non-deterministic ----------- *)

let native_cell cfg (s : Subjects.t) =
  let found = ref None and runs = ref 0 in
  while !found = None && !runs < cfg.native_runs do
    incr runs;
    let log = Harness.run_native (harness_cfg cfg !runs) (s.build ~bug:false) in
    let r = check_mode ~mode:`View s log in
    if not (Report.is_pass r) then found := Some r
  done;
  cell ~regime:"native" ~mode:"view" ~runs:!runs !found

(* --- bounded systematic exploration -------------------------------------- *)

(* A tiny contended scenario: [explore_fibers] fibers each issue
   [explore_ops] operations drawn from the subject's own mix over a 4-key
   pool, the subject's daemon running alongside; every completed schedule is
   checked in `View mode.  The operation mix is fixed per [opseed], so a
   detection is a deterministic certificate; several mixes are tried because
   a mix without the triggering operation can never reach the bug. *)
let explore_scenario cfg ~ops ~keyrange ~opseed (s : Subjects.t) ~on_log () =
  let log = Log.create ~level:`View () in
  let finished = ref 0 in
  fun (sched : Sched.t) ->
    let ctx = Instrument.make sched log in
    let b = s.build ~bug:false ctx in
    let stop = ref false in
    (match b.Harness.daemon with
    | Some step ->
      (* Bounded, unlike the free-running harness daemon: under the
         explorer's deterministic default policy an unbounded loop would
         monopolize the run queue and livelock the schedule. *)
      let budget = ref (4 + (4 * cfg.explore_fibers * ops)) in
      sched.Sched.spawn (fun () ->
          while (not !stop) && !budget > 0 do
            decr budget;
            step ();
            sched.Sched.yield ()
          done)
    | None -> ());
    for t = 1 to cfg.explore_fibers do
      sched.Sched.spawn (fun () ->
          let rng = Prng.create ((opseed * 613) + (31 * t)) in
          for _ = 1 to ops do
            b.Harness.random_op rng (1 + Prng.int rng keyrange)
          done;
          incr finished;
          if !finished = cfg.explore_fibers then begin
            stop := true;
            on_log log
          end)
    done

let explore_cell cfg fault (s : Subjects.t) =
  let ops, keyrange = explore_tuning cfg fault in
  let found = ref None and schedules = ref 0 in
  let opseed = ref 0 in
  while !found = None && !opseed < cfg.explore_opseeds do
    let on_log log =
      if !found = None then begin
        let r = check_mode ~mode:`View s log in
        if not (Report.is_pass r) then found := Some r
      end
    in
    (* A mutant may make some schedule spin without progress (e.g. a reader
       chasing the unreachable half of a torn split); treat a livelocked
       exploration as "nothing found under this mix" rather than aborting
       the whole matrix. *)
    (match
       Explore.explore ~max_schedules:cfg.explore_budget
         ~preemption_bound:cfg.preemption_bound
         ~stop:(fun () -> !found <> None)
         (explore_scenario cfg ~ops ~keyrange ~opseed:!opseed s ~on_log)
     with
    | r -> schedules := !schedules + r.Explore.schedules
    | exception Vyrd_sched.Coop.Livelock _ -> ());
    incr opseed
  done;
  cell ~regime:"explore" ~mode:"view" ~runs:!schedules !found

(* --- lock-order channel: Deadlock and Benign kinds ------------------------ *)

(* Sweep coop seeds at `Full level and run the lock-order graph over every
   schedule that completes; count the schedules that genuinely hang.  The
   [lockgraph/cycle] cell is differential like the race channel: only a
   reported cycle that the disarmed subject (same seed) does NOT show counts.
   For [Deadlock] mutants the sweep keeps going until it has also seen a
   real hang (or the budget runs out) — the coop/deadlock cell is evidence
   that the flagged order is not a phantom.  For [Benign] mutants a short
   sweep suffices: every analyzed trace must come back clean, and no seed
   may hang. *)
let lockorder_cells cfg fault (s : Subjects.t) =
  let full_log seed =
    Harness.run
      { (harness_cfg cfg seed) with log_level = `Full }
      (s.build ~bug:false)
  in
  let baseline_has_cycle seed =
    (* we run under with_armed, which restores the armed state on exit *)
    Faults.disarm fault;
    Fun.protect
      ~finally:(fun () -> Faults.arm fault)
      (fun () ->
        match full_log seed with
        | log -> not (Lockgraph.ok (Lockgraph.analyze log))
        | exception Coop.Deadlock _ -> true)
  in
  let want_deadlock = Faults.kind fault = Faults.Deadlock in
  let budget = if want_deadlock then cfg.seeds else min cfg.seeds 12 in
  let cycle = ref None and analyzed = ref 0 in
  let deadlocks = ref 0 and runs = ref 0 and hang_seed = ref None in
  let seed = ref 0 in
  while
    (!cycle = None || (want_deadlock && !deadlocks = 0)) && !seed < budget
  do
    incr runs;
    (match full_log !seed with
    | exception Coop.Deadlock _ ->
      incr deadlocks;
      if !hang_seed = None then hang_seed := Some !seed
    | log ->
      incr analyzed;
      if !cycle = None then begin
        let r = Lockgraph.analyze log in
        if (not (Lockgraph.ok r)) && not (baseline_has_cycle !seed) then
          cycle := Some (String.concat "->" (Lockgraph.cyclic_locks r))
      end);
    incr seed
  done;
  [
    {
      regime = "lockgraph";
      mode = "cycle";
      detected = !cycle <> None;
      runs = !analyzed;
      methods_checked = None;
      tag = !cycle;
    };
    {
      regime = "coop";
      mode = "deadlock";
      detected = !deadlocks > 0;
      runs = !runs;
      methods_checked = None;
      tag = Option.map (Printf.sprintf "seed=%d") !hang_seed;
    };
  ]

(* Systematic certificate for the hang: bounded exploration of the tiny
   contended scenario, counting schedules that end in {!Coop.Deadlock}. *)
let explore_deadlock_cell cfg fault (s : Subjects.t) =
  let ops, keyrange = explore_tuning cfg fault in
  let total = ref 0 and hangs = ref 0 in
  let opseed = ref 0 in
  while !hangs = 0 && !opseed < cfg.explore_opseeds do
    (match
       Explore.explore ~max_schedules:cfg.explore_budget
         ~preemption_bound:cfg.preemption_bound
         (explore_scenario cfg ~ops ~keyrange ~opseed:!opseed s
            ~on_log:(fun _ -> ()))
     with
    | r ->
      total := !total + r.Explore.schedules;
      hangs := !hangs + r.Explore.deadlocks
    | exception Coop.Livelock _ -> ());
    incr opseed
  done;
  {
    regime = "explore";
    mode = "deadlock";
    detected = !hangs > 0;
    runs = !total;
    methods_checked = None;
    tag = (if !hangs > 0 then Some (Printf.sprintf "hangs=%d" !hangs) else None);
  }

(* --- temporal-monitor channel: Deadlock, Benign and Leak kinds ------------ *)

(* Fifth independent channel: the built-in temporal monitors (lock reversal,
   resource leak) over `Full coop traces that complete.  Differential like
   the race and lockgraph channels: only an armed-only violation counts.
   Deadlock mutants must fall to the lock-reversal monitor — the dynamic
   twin of the lockgraph column; Benign mutants must stay silent (the
   monitor carries the same gate suppression); Leak mutants must fall to
   the resource-leak monitor's end-of-stream resolution. *)
let monitor_cell cfg fault (s : Subjects.t) =
  let full_log seed =
    Harness.run
      { (harness_cfg cfg seed) with log_level = `Full }
      (s.build ~bug:false)
  in
  let monitor_violations log =
    let ms = Monitor.builtins () in
    Log.iter (fun ev -> List.iter (fun m -> Monitor.feed m ev) ms) log;
    List.filter_map
      (fun m ->
        match Monitor.finish m with
        | Monitor.Viol w -> Some (Monitor.name m, w)
        | Monitor.Sat | Monitor.Pending -> None)
      ms
  in
  let baseline_names seed =
    (* run_fault calls us under with_armed, which restores state on exit *)
    Faults.disarm fault;
    Fun.protect
      ~finally:(fun () -> Faults.arm fault)
      (fun () ->
        match full_log seed with
        | log -> List.map fst (monitor_violations log)
        | exception Coop.Deadlock _ -> [])
  in
  let budget =
    match Faults.kind fault with
    | Faults.Benign -> min cfg.seeds 12
    | _ -> cfg.seeds
  in
  let found = ref None and analyzed = ref 0 in
  let seed = ref 0 in
  while !found = None && !seed < budget do
    (match full_log !seed with
    | exception Coop.Deadlock _ -> ()
    | log ->
      incr analyzed;
      (match monitor_violations log with
      | [] -> ()
      | vs -> (
        let base = baseline_names !seed in
        match List.filter (fun (n, _) -> not (List.mem n base)) vs with
        | (n, w) :: _ ->
          found := Some (Printf.sprintf "%s@%d" n w.Monitor.at)
        | [] -> ())));
    incr seed
  done;
  {
    regime = "coop";
    mode = "monitor";
    detected = !found <> None;
    runs = !analyzed;
    methods_checked = None;
    tag = !found;
  }

(* Benign mutants must also keep refining: a short armed `View sweep in
   which any violation is a (forbidden) detection. *)
let benign_view_cell cfg (s : Subjects.t) =
  let found = ref None and runs = ref 0 in
  let seed = ref 0 in
  while !found = None && !seed < min cfg.seeds 10 do
    incr runs;
    let log = Harness.run (harness_cfg cfg !seed) (s.build ~bug:false) in
    let r = check_mode ~mode:`View s log in
    if not (Report.is_pass r) then found := Some r;
    incr seed
  done;
  cell ~regime:"coop" ~mode:"view" ~runs:!runs !found

(* --- per-fault orchestration --------------------------------------------- *)

let run_fault cfg fault =
  let subject = Subjects.find (Faults.subject fault) in
  Faults.with_armed fault (fun () ->
      let cells =
        match Faults.kind fault with
        | Faults.Refinement ->
          coop_cells cfg subject
          @ [
              race_cell cfg fault subject;
              lin_cell cfg subject;
              native_cell cfg subject;
              explore_cell cfg fault subject;
            ]
        | Faults.Deadlock ->
          lockorder_cells cfg fault subject
          @ [
              explore_deadlock_cell cfg fault subject;
              monitor_cell cfg fault subject;
            ]
        | Faults.Benign ->
          lockorder_cells cfg fault subject
          @ [
              benign_view_cell cfg subject;
              lin_cell ~budget_seeds:(Some (min cfg.lin_seeds 10)) cfg subject;
              monitor_cell cfg fault subject;
            ]
        | Faults.Leak ->
          (* armed runs must stay correct under refinement; only the
             resource-leak monitor may (and must) convict *)
          [ monitor_cell cfg fault subject; benign_view_cell cfg subject ]
      in
      { fault; subject; cells })

let run_all cfg = List.map (run_fault cfg) (Faults.registered ())

let find_cell row ~regime ~mode =
  List.find_opt (fun c -> c.regime = regime && c.mode = mode) row.cells

(* A mutant counts as provably detectable only under a regime whose runs are
   pure functions of recorded seeds: coop or explore, never native. *)
let deterministic_view_detection row =
  List.exists
    (fun c -> c.mode = "view" && c.detected && (c.regime = "coop" || c.regime = "explore"))
    row.cells

(* The happens-before channel fired: the armed run shows a racy variable the
   unarmed run does not.  Independent of refinement checking — annotation
   bugs never light it up, lock-discipline bugs always should. *)
let race_detection row =
  List.exists (fun c -> c.mode = "race" && c.detected) row.cells

(* The annotation-free linearizability backend convicted some coop-seed
   history on calls and returns alone. *)
let lin_detection row =
  List.exists (fun c -> c.mode = "lin" && c.detected) row.cells

(* The lock-order graph flagged an armed-only cycle from a completed trace. *)
let lockgraph_detection row =
  List.exists (fun c -> c.regime = "lockgraph" && c.detected) row.cells

(* Some schedule genuinely hung — under the coop seed sweep or under bounded
   exploration. *)
let deadlock_detection row =
  List.exists (fun c -> c.mode = "deadlock" && c.detected) row.cells

(* A built-in temporal monitor convicted an armed-only completed trace. *)
let monitor_detection row =
  List.exists (fun c -> c.mode = "monitor" && c.detected) row.cells

(* Kind-aware ground truth: what each mutant's row must show for the
   registry to count as validated. *)
let expected_detections_hold row =
  match Faults.kind row.fault with
  | Faults.Refinement ->
    (* semantic mutants must also fall to the annotation-free backend;
       annotation/instrumentation mutants must NOT (a lin conviction of a
       behaviorally-correct implementation would be a false positive) *)
    deterministic_view_detection row
    && lin_detection row = Faults.semantic row.fault
  | Faults.Deadlock ->
    (* static and dynamic lock-order analyses must both convict, and some
       schedule must genuinely hang *)
    lockgraph_detection row && deadlock_detection row && monitor_detection row
  | Faults.Benign -> not (List.exists (fun c -> c.detected) row.cells)
  | Faults.Leak ->
    (* only the temporal monitor sees it; refinement must stay clean *)
    monitor_detection row
    && not (List.exists (fun c -> c.mode = "view" && c.detected) row.cells)

(* Table 1's headline inequality, on ground truth: view refinement needs no
   more checked methods than I/O refinement (which may miss outright). *)
let view_beats_io row =
  match (find_cell row ~regime:"coop" ~mode:"view", find_cell row ~regime:"coop" ~mode:"io") with
  | Some v, Some io when v.detected -> (
    (not io.detected)
    || match (v.methods_checked, io.methods_checked) with
       | Some mv, Some mio -> mv <= mio
       | _ -> false)
  | _ -> false

(* --- rendering ------------------------------------------------------------ *)

let pp_cell ppf c =
  if c.detected then
    Fmt.pf ppf "%s %ar=%d"
      (Option.value ~default:"?" c.tag)
      Fmt.(option (fun ppf m -> pf ppf "m=%d " m))
      c.methods_checked c.runs
  else Fmt.pf ppf "miss(%d)" c.runs

let pp_matrix ppf rows =
  let line = String.make 222 '-' in
  Fmt.pf ppf
    "%-32s %-22s %-9s %-18s %-18s %-18s %-24s %-18s %-18s %-18s %-18s %-20s@."
    "fault" "subject" "kind" "coop/io" "coop/view" "coop/race" "coop/lin"
    "native/view" "explore/view" "lockgraph" "deadlock" "coop/monitor";
  Fmt.pf ppf "%s@." line;
  List.iter
    (fun row ->
      let c regime mode =
        match find_cell row ~regime ~mode with
        | Some c -> Fmt.str "%a" pp_cell c
        | None -> "-"
      in
      (* one deadlock column covering both regimes: the first cell that saw
         a hang, or the combined miss count *)
      let deadlock_col =
        match List.filter (fun c -> c.mode = "deadlock") row.cells with
        | [] -> "-"
        | cells -> (
          match List.find_opt (fun c -> c.detected) cells with
          | Some c ->
            Fmt.str "%s/%s r=%d" c.regime
              (Option.value ~default:"hang" c.tag)
              c.runs
          | None ->
            Fmt.str "miss(%d)"
              (List.fold_left (fun acc c -> acc + c.runs) 0 cells))
      in
      Fmt.pf ppf
        "%-32s %-22s %-9s %-18s %-18s %-18s %-24s %-18s %-18s %-18s %-18s %-20s@."
        (Faults.name row.fault) row.subject.Subjects.name
        (Faults.kind_id (Faults.kind row.fault))
        (c "coop" "io") (c "coop" "view") (c "coop" "race") (c "coop" "lin")
        (c "native" "view") (c "explore" "view") (c "lockgraph" "cycle")
        deadlock_col (c "coop" "monitor"))
    rows;
  Fmt.pf ppf "%s@." line;
  Fmt.pf ppf
    "(m = methods checked when the violation fired — Table 1's unit; r = \
     runs/schedules until detection; miss(n) = undetected after n; the race \
     column is the differential happens-before channel: armed-only racy \
     variable, or miss; lin = the annotation-free JIT linearizability \
     backend over calls/returns only — annotation and instrumentation \
     mutants must miss here, semantic ones must not; lockgraph = armed-only \
     lock-order cycle over `Full traces; deadlock = schedules that \
     genuinely hung; monitor = armed-only temporal-monitor violation \
     (lock reversal / resource leak) on a completed `Full trace — benign \
     mutants must show miss in every column)@."

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json rows =
  let b = Buffer.create 4096 in
  let cell_json c =
    Printf.sprintf
      "{\"regime\":\"%s\",\"mode\":\"%s\",\"detected\":%b,\"runs\":%d,\
       \"methods_checked\":%s,\"violation\":%s}"
      c.regime c.mode c.detected c.runs
      (match c.methods_checked with Some m -> string_of_int m | None -> "null")
      (match c.tag with Some t -> Printf.sprintf "\"%s\"" (json_escape t) | None -> "null")
  in
  Buffer.add_string b "{\n  \"detection_matrix\": [\n";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"fault\":\"%s\",\"subject\":\"%s\",\"kind\":\"%s\",\
            \"semantic\":%b,\"description\":\"%s\",\n\
           \     \"deterministic_view_detection\":%b,\"view_beats_io\":%b,\
            \"race_detection\":%b,\"lin_detection\":%b,\n\
           \     \"lockgraph_detection\":%b,\"deadlock_detection\":%b,\
            \"monitor_detection\":%b,\"expected_detections_hold\":%b,\n\
           \     \"cells\":[%s]}"
           (json_escape (Faults.name row.fault))
           (json_escape row.subject.Subjects.name)
           (Faults.kind_id (Faults.kind row.fault))
           (Faults.semantic row.fault)
           (json_escape (Faults.description row.fault))
           (deterministic_view_detection row) (view_beats_io row)
           (race_detection row) (lin_detection row) (lockgraph_detection row)
           (deadlock_detection row) (monitor_detection row)
           (expected_detections_hold row)
           (String.concat "," (List.map cell_json row.cells))))
    rows;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
