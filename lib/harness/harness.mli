(** The random test-program generator of paper §7.1.

    "Each test program first generates a random pool of keys to be shared by
    all threads as arguments for method calls.  Then the program creates a
    number of threads each of which, using arguments randomly chosen from
    the pool, issues a given number of random method calls to the same data
    structure instance concurrently.  The pool is reduced gradually over
    time to focus more concurrent method calls on a smaller region of the
    data structure.  In implementations with compression mechanisms, the
    compression thread [...] is run continuously." *)

type built = {
  random_op : Vyrd_sched.Prng.t -> int -> unit;
      (** perform one random method call with the given key *)
  daemon : (unit -> unit) option;
      (** one step of the data structure's background thread
          (compression / flush), run continuously while workers live *)
}

type config = {
  threads : int;
  ops_per_thread : int;
  key_pool : int;  (** initial pool size; shrinks to 2 over a thread's run *)
  key_range : int;  (** keys are drawn from [\[0, key_range)] *)
  seed : int;
  log_level : Vyrd.Log.level;
}

val default : config

(** [run config build] executes the workload on the deterministic engine and
    returns the log.  [build] constructs the instrumented data structure. *)
val run : config -> (Vyrd.Instrument.ctx -> built) -> Vyrd.Log.t

(** Same workload under real system threads (non-deterministic). *)
val run_native : config -> (Vyrd.Instrument.ctx -> built) -> Vyrd.Log.t

(** [run_into ~log config builds] runs the workload over one or more data
    structures appending into a caller-supplied log, so listeners (an online
    checker farm, a binary segment writer) can be attached before any event
    flows.  Each thread interleaves random calls across all structures,
    picking one uniformly per op; with a single build the random streams are
    exactly those of {!run}, so seeds keep reproducing the same logs.
    @param native run under system threads instead of the deterministic
      engine (default [false]).
    @raise Invalid_argument on an empty build list. *)
val run_into :
  ?native:bool ->
  log:Vyrd.Log.t ->
  config ->
  (Vyrd.Instrument.ctx -> built) list ->
  unit
