(** Streaming temporal-property monitors.

    Refinement is one property; operators of an in-service verifier want
    many.  This module is a small LTL-over-finite-traces combinator library
    evaluated {e incrementally} over the event stream by formula
    progression: each monitor is a state machine advanced one event at a
    time, carrying a three-valued verdict ({!Sat} / {!Viol} / {!Pending})
    so a violation is reported the moment the stream makes it unavoidable
    and open obligations are resolved at stream end (finite-trace
    semantics: a pending [eventually] fails, a pending [always] succeeds).

    Two built-in property packs are compiled from the combinators:
    {!lock_reversal} (the dynamic twin of the static {!Vyrd_analysis.Lockgraph},
    with the same gate-lock and single-thread suppressions) and
    {!resource_leak} ([always (acquire -> eventually release)] per lock).
    {!pass} adapts any monitor set to the {!Vyrd_analysis.Pass} interface so
    the farm's analysis lane, [pipeline --monitor] and vyrdd sessions all run
    them; {!first_violation} composes monitors with {!Vyrd_sched.Explore} so
    violations can be searched for, not just observed. *)

(** {1 Formulas} *)

type f

val tt : f
val ff : f

(** [atom name p] holds at a position iff [p] holds of the event there.
    [name] identifies the atom in witnesses and for simplification, so two
    atoms with the same name should have the same predicate. *)
val atom : string -> (Vyrd.Event.t -> bool) -> f

val not_ : f -> f
val and_ : f -> f -> f
val or_ : f -> f -> f
val implies : f -> f -> f

(** Strong next: there is a next event and [f] holds of the suffix there. *)
val next : f -> f

(** [until a b]: [b] holds at some position, [a] at every position before. *)
val until : f -> f -> f

val eventually : f -> f
val always : f -> f

(** [within n f]: [f] holds at one of the next [n] positions (this one
    included); [within 0 f] is [ff]. *)
val within : int -> f -> f

val pp_f : Format.formatter -> f -> unit

(** [eval f trace] is the reference whole-trace evaluator (classic
    recursive LTLf semantics) the incremental engine is differentially
    tested against; [true] iff [f] holds of [trace] from position 0. *)
val eval : f -> Vyrd.Event.t array -> bool

(** {1 Verdicts} *)

type witness = {
  at : int;  (** log index of the violating event ([fed] for end-of-stream) *)
  tid : Vyrd_sched.Tid.t option;
  failed : string;  (** the sub-formula that failed, rendered *)
  detail : string option;  (** pack-supplied context, e.g. the still-held set *)
}

type verdict = Sat | Viol of witness | Pending

val pp_witness : Format.formatter -> witness -> unit
val pp_verdict : Format.formatter -> verdict -> unit

(** {1 Monitors} *)

type t

(** [of_formula ~name f] monitors one closed formula. *)
val of_formula : name:string -> f -> t

val name : t -> string

(** Events fed so far. *)
val fed : t -> int

(** [feed t ev] advances the monitor by one event (positions are tracked
    internally).  Feeding after {!finish} is ignored. *)
val feed : t -> Vyrd.Event.t -> unit

(** The verdict so far: [Viol] as soon as any obligation is unsatisfiable,
    [Sat] once a static formula can no longer fail, [Pending] otherwise. *)
val verdict : t -> verdict

(** [finish t] resolves open obligations under finite-trace semantics and
    returns the final verdict.  Idempotent. *)
val finish : t -> verdict

(** Every violation accumulated (a pack can convict several properties). *)
val violations : t -> witness list

(** {1 Built-in packs} *)

(** Lock-acquisition-order reversal: order [l1 < l2] observed, later
    [l2 < l1] — convicted only from witnesses on distinct threads with no
    common gate lock held across both, matching {!Vyrd_analysis.Lockgraph}
    on two-lock cycles. *)
val lock_reversal : unit -> t

(** [always (acquire -> eventually release)] per lock, reentrancy-aware;
    convicts at stream end with the still-held set. *)
val resource_leak : unit -> t

(** Both built-ins, fresh. *)
val builtins : unit -> t list

val builtin_names : string list

(** {1 Specs} *)

(** [parse s] reads the tiny monitor formula syntax:
    atoms [call(M) return(M) acquire(L) release(L) read(V) write(V) commit
    any true false], operators [! & | -> X F G U within N] with the usual
    precedences, parentheses.  E.g.
    [G (call(Insert) -> F return(Insert))]. *)
val parse : string -> (f, string) result

(** [of_spec s] resolves a built-in pack name ([lock-reversal],
    [resource-leak]) or falls back to {!parse}. *)
val of_spec : string -> (t, string) result

(** {1 Analysis-lane adapter} *)

(** [pass ?metrics monitors] runs [monitors] as one {!Vyrd_analysis.Pass}
    named ["monitor"]: every violation becomes an [`Error] diagnostic at
    the witness index.  At finish, publishes [analysis.monitor_events],
    [analysis.monitor_violations], per-verdict counters and a per-monitor
    violation counter into [metrics]. *)
val pass : ?metrics:Vyrd_pipeline.Metrics.t -> t list -> Vyrd_analysis.Pass.t

(** {1 Schedule search} *)

type search_outcome = {
  schedules : int;  (** schedules executed *)
  exhausted : bool;  (** space covered without finding a violation *)
  violation : (string * witness) option;  (** monitor name and witness *)
  schedule : int array option;
      (** replayable decision script of the violating schedule — feed to
          {!Vyrd_sched.Explore.replay}, mirroring [first_deadlock] *)
}

(** [first_violation ~monitors scenario] explores schedules of a
    cooperative workload until some monitor convicts a completed trace.
    [scenario ()] must build a fresh run each time: a main closure for
    {!Vyrd_sched.Explore.explore} plus a getter returning the run's log
    once the run completed ([None] while it hasn't, e.g. deadlocked runs).
    [monitors ()] must build fresh monitors per candidate trace. *)
val first_violation :
  ?max_schedules:int ->
  ?max_steps:int ->
  ?preemption_bound:int ->
  monitors:(unit -> t list) ->
  (unit -> (Vyrd_sched.Sched.t -> unit) * (unit -> Vyrd.Log.t option)) ->
  search_outcome
