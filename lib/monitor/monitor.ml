open Vyrd
module Tid = Vyrd_sched.Tid
module Pass = Vyrd_analysis.Pass
module Metrics = Vyrd_pipeline.Metrics

(* ------------------------------------------------------------- formulas *)

type f =
  | Tt
  | Ff
  | Atom of string * (Event.t -> bool)
  | Not of f
  | And of f * f
  | Or of f * f
  | Next of f
  | Until of f * f
  | Always of f
  | Eventually of f
  | Within of int * f

(* Structural equality with atoms compared by name; used by the smart
   constructors to fold idempotent conjunctions so progressed formulas stay
   small (an [always] progressed twice is the same formula, not a chain). *)
let rec equal_f a b =
  match (a, b) with
  | Tt, Tt | Ff, Ff -> true
  | Atom (n, _), Atom (m, _) -> String.equal n m
  | Not a, Not b | Next a, Next b | Always a, Always b | Eventually a, Eventually b
    -> equal_f a b
  | And (a1, a2), And (b1, b2)
  | Or (a1, a2), Or (b1, b2)
  | Until (a1, a2), Until (b1, b2) -> equal_f a1 b1 && equal_f a2 b2
  | Within (i, a), Within (j, b) -> i = j && equal_f a b
  | _ -> false

let tt = Tt
let ff = Ff
let atom name p = Atom (name, p)

(* Only the boolean layer folds constants: temporal operators over constants
   are NOT equivalent to constants on the empty trace ([eventually tt] needs
   a position to exist, [always ff] holds of the empty suffix), and the
   incremental/reference agreement property would catch any such shortcut. *)
let not_ = function Tt -> Ff | Ff -> Tt | Not f -> f | f -> Not f

let and_ a b =
  match (a, b) with
  | Ff, _ | _, Ff -> Ff
  | Tt, f | f, Tt -> f
  | a, b -> if equal_f a b then a else And (a, b)

let or_ a b =
  match (a, b) with
  | Tt, _ | _, Tt -> Tt
  | Ff, f | f, Ff -> f
  | a, b -> if equal_f a b then a else Or (a, b)

let implies a b = or_ (not_ a) b
let next f = Next f
let until a b = Until (a, b)
let eventually f = Eventually f
let always f = Always f
let within n f = if n <= 0 then Ff else Within (n, f)

let is_tt = function Tt -> true | _ -> false
let is_ff = function Ff -> true | _ -> false

let rec pp_f ppf f =
  let atomic = function Tt | Ff | Atom _ -> true | _ -> false in
  let pp_sub ppf g =
    if atomic g then pp_f ppf g else Fmt.pf ppf "(%a)" pp_f g
  in
  match f with
  | Tt -> Fmt.string ppf "true"
  | Ff -> Fmt.string ppf "false"
  | Atom (n, _) -> Fmt.string ppf n
  | Not g -> Fmt.pf ppf "!%a" pp_sub g
  | And (a, b) -> Fmt.pf ppf "%a & %a" pp_sub a pp_sub b
  | Or (a, b) -> Fmt.pf ppf "%a | %a" pp_sub a pp_sub b
  | Next g -> Fmt.pf ppf "X %a" pp_sub g
  | Until (a, b) -> Fmt.pf ppf "%a U %a" pp_sub a pp_sub b
  | Always g -> Fmt.pf ppf "G %a" pp_sub g
  | Eventually g -> Fmt.pf ppf "F %a" pp_sub g
  | Within (n, g) -> Fmt.pf ppf "within %d %a" n pp_sub g

(* Formula progression (Havelund/Rosu-style rewriting): [prog f ev] is the
   obligation on the rest of the stream given that [ev] happened now.  The
   expansion laws are the standard LTLf fixpoints; collapse to [Tt]/[Ff]
   happens in the smart constructors. *)
let rec prog f (ev : Event.t) =
  match f with
  | Tt -> Tt
  | Ff -> Ff
  | Atom (_, p) -> if p ev then Tt else Ff
  | Not g -> not_ (prog g ev)
  | And (a, b) -> and_ (prog a ev) (prog b ev)
  | Or (a, b) -> or_ (prog a ev) (prog b ev)
  | Next g -> g
  | Until (a, b) -> or_ (prog b ev) (and_ (prog a ev) f)
  | Always g -> and_ (prog g ev) f
  | Eventually g -> or_ (prog g ev) f
  | Within (n, g) ->
    let now = prog g ev in
    if n <= 1 then now else or_ now (Within (n - 1, g))

(* Finite-trace resolution: does [f] hold of the empty suffix?  Pending
   existential obligations fail, universal ones succeed. *)
let rec ended = function
  | Tt | Always _ -> true
  | Ff | Atom _ | Next _ | Until _ | Eventually _ | Within _ -> false
  | Not g -> not (ended g)
  | And (a, b) -> ended a && ended b
  | Or (a, b) -> ended a || ended b

(* Reference whole-trace evaluator — the executable spec the incremental
   engine is differentially tested against. *)
let eval f trace =
  let n = Array.length trace in
  let rec sat i f =
    if i >= n then ended f
    else
      match f with
      | Tt -> true
      | Ff -> false
      | Atom (_, p) -> p trace.(i)
      | Not g -> not (sat i g)
      | And (a, b) -> sat i a && sat i b
      | Or (a, b) -> sat i a || sat i b
      | Next g -> sat (i + 1) g
      | Until (a, b) -> sat i b || (sat i a && sat (i + 1) f)
      | Always g -> sat i g && sat (i + 1) f
      | Eventually g -> sat i g || sat (i + 1) f
      | Within (k, g) -> sat i g || (k > 1 && sat (i + 1) (Within (k - 1, g)))
  in
  sat 0 f

(* Which sub-formula is to blame?  [f] progressed to [Ff] on [ev]; descend
   toward a smallest responsible conjunct so the witness names the failing
   obligation, not the whole property. *)
let rec blame f ev =
  match f with
  | And (a, b) ->
    if is_ff (prog a ev) then blame a ev
    else if is_ff (prog b ev) then blame b ev
    else f
  | Always g -> if is_ff (prog g ev) then blame g ev else f
  | Within (n, g) when n <= 1 -> if is_ff (prog g ev) then blame g ev else f
  | f -> f

(* Same, for end-of-stream: a smallest conjunct with [ended = false]. *)
let rec blame_end f =
  match f with
  | And (a, b) -> if not (ended a) then blame_end a else blame_end b
  | Always g -> if not (ended g) then blame_end g else f
  | f -> f

(* ------------------------------------------------------------- verdicts *)

type witness = {
  at : int;
  tid : Tid.t option;
  failed : string;
  detail : string option;
}

type verdict = Sat | Viol of witness | Pending

let pp_witness ppf w =
  Fmt.pf ppf "@%d%a: %s%a" w.at
    Fmt.(option (fun ppf t -> pf ppf " %s" (Tid.to_string t)))
    w.tid w.failed
    Fmt.(option (fun ppf d -> pf ppf " — %s" d))
    w.detail

let pp_verdict ppf = function
  | Sat -> Fmt.string ppf "sat"
  | Pending -> Fmt.string ppf "pending"
  | Viol w -> Fmt.pf ppf "violated %a" pp_witness w

(* ------------------------------------------------------------- monitors *)

type instance = {
  i_name : string;
  mutable state : f;
  mutable i_verdict : verdict;
  relevant : unit -> bool;
      (* can any of this instance's atoms be non-false on the current event?
         Read after the hook ran; [false] means progression is the identity
         (the packs' states are fixpoints of all-atoms-false progression),
         so the tree walk is skipped.  Always [true] for formula monitors. *)
  detail_of : unit -> string option;
  anchor : unit -> (int * Tid.t option) option;
      (* end-of-stream witness override: packs point at the unmatched
         acquire rather than the stream length *)
}

type t = {
  m_name : string;
  mutable insts : instance list;
  mutable n_fed : int;
  interest : Event.t -> bool;
      (* event kinds the monitor reacts to at all; anything else only bumps
         the position counter.  The built-in packs key exclusively on lock
         events, so [`View]-level streams cost them almost nothing. *)
  hook : (t -> Event.t -> unit) option;
      (* pack state update, run before progression so spawned instances and
         per-event atom flags see the current event *)
  mutable finished : bool;
}

let no_detail () = None
let no_anchor () = None
let always_relevant () = true
let any_event (_ : Event.t) = true
let lock_events = function Event.Acquire _ | Event.Release _ -> true | _ -> false

let add_instance ?(relevant = always_relevant) ?(detail_of = no_detail)
    ?(anchor = no_anchor) t ~name f =
  let inst =
    { i_name = name; state = f; i_verdict = Pending; relevant; detail_of;
      anchor }
  in
  t.insts <- inst :: t.insts;
  inst

let of_formula ~name f =
  let t =
    { m_name = name; insts = []; n_fed = 0; interest = any_event; hook = None;
      finished = false }
  in
  ignore (add_instance t ~name f);
  t

let name t = t.m_name
let fed t = t.n_fed

let feed t ev =
  if not t.finished then begin
    if t.interest ev then begin
      (match t.hook with Some h -> h t ev | None -> ());
      let idx = t.n_fed in
      List.iter
        (fun inst ->
          match inst.i_verdict with
          | Pending when inst.relevant () ->
            let st = prog inst.state ev in
            if is_tt st then inst.i_verdict <- Sat
            else if is_ff st then
              inst.i_verdict <-
                Viol
                  {
                    at = idx;
                    tid = Some (Event.tid ev);
                    failed = Fmt.str "%a" pp_f (blame inst.state ev);
                    detail = inst.detail_of ();
                  };
            inst.state <- st
          | Pending | Sat | Viol _ -> ())
        t.insts
    end;
    t.n_fed <- t.n_fed + 1
  end

let violations t =
  List.filter_map
    (fun i -> match i.i_verdict with Viol w -> Some w | _ -> None)
    t.insts
  |> List.sort (fun a b -> compare a.at b.at)

let verdict t =
  match violations t with
  | w :: _ -> Viol w
  | [] ->
    let all_sat =
      t.insts <> []
      && List.for_all (fun i -> i.i_verdict = Sat) t.insts
    in
    if t.finished then if all_sat || t.insts = [] then Sat else Pending
    else if all_sat && t.hook = None then Sat
      (* a pack may still spawn obligations; never early-Sat those *)
    else Pending

let finish t =
  if not t.finished then begin
    t.finished <- true;
    List.iter
      (fun inst ->
        match inst.i_verdict with
        | Pending ->
          if ended inst.state then inst.i_verdict <- Sat
          else begin
            let at, tid =
              match inst.anchor () with
              | Some (a, tid) -> (a, tid)
              | None -> (t.n_fed, None)
            in
            inst.i_verdict <-
              Viol
                {
                  at;
                  tid;
                  failed = Fmt.str "%a" pp_f (blame_end inst.state);
                  detail = inst.detail_of ();
                }
          end
        | Sat | Viol _ -> ())
      t.insts
  end;
  verdict t

(* --------------------------------------------- built-in: lock reversal *)

(* Dynamic twin of the static {!Vyrd_analysis.Lockgraph}: per unordered lock
   pair, remember the first acquisition witness per distinct thread in each
   direction (bounded like the lockgraph's per-edge cap), and convict the
   moment both directions have witnesses on distinct threads with no common
   gate lock held across both — the same two suppressions, so the two
   analyses agree on two-lock cycles by construction. *)

type lr_wit = { w_idx : int; w_tid : Tid.t; w_held : string list }

type lr_pair = {
  mutable fwd : lr_wit list;  (* acquired [hi] while holding [lo] *)
  mutable bwd : lr_wit list;  (* acquired [lo] while holding [hi] *)
  mutable convicted : bool;
}

let max_witnesses_per_dir = 8 (* = Lockgraph.max_witnesses_per_edge *)

let lock_reversal () =
  (* per-thread held locksets with reentrancy depths, as in the lockgraph *)
  let held : (Tid.t, (string * int) list) Hashtbl.t = Hashtbl.create 8 in
  let pairs : (string * string, lr_pair) Hashtbl.t = Hashtbl.create 8 in
  let flag = ref None (* pair convicted by the current event, if any *) in
  let last_detail = ref None in
  let describe (earlier : lr_wit) earlier_dst (now : lr_wit) now_dst =
    Fmt.str
      "%s acquired %s @%d holding {%s}; %s acquired %s @%d holding {%s}"
      (Tid.to_string earlier.w_tid) earlier_dst earlier.w_idx
      (String.concat ", " earlier.w_held)
      (Tid.to_string now.w_tid) now_dst now.w_idx
      (String.concat ", " now.w_held)
  in
  let spawn t ((lo, hi) as key) =
    let name = Fmt.str "reversal(%s,%s)" lo hi in
    ignore
      (add_instance t ~name
         ~relevant:(fun () -> !flag = Some key)
         ~detail_of:(fun () -> !last_detail)
         (always (not_ (atom name (fun _ -> !flag = Some key)))))
  in
  let hook t ev =
    flag := None;
    match ev with
    | Event.Acquire { tid; lock } ->
      let hs = Option.value ~default:[] (Hashtbl.find_opt held tid) in
      (match List.assoc_opt lock hs with
      | Some d ->
        (* reentrant: no new ordering information *)
        Hashtbl.replace held tid
          (List.map (fun (l, n) -> if l = lock then (l, d + 1) else (l, n)) hs)
      | None ->
        let held_names = List.map fst hs in
        let idx = t.n_fed in
        List.iter
          (fun src ->
            let key = if src < lock then (src, lock) else (lock, src) in
            let p =
              match Hashtbl.find_opt pairs key with
              | Some p -> p
              | None ->
                let p = { fwd = []; bwd = []; convicted = false } in
                Hashtbl.add pairs key p;
                spawn t key;
                p
            in
            let forward = src = fst key in
            let mine, theirs = if forward then (p.fwd, p.bwd) else (p.bwd, p.fwd) in
            if
              (not (List.exists (fun w -> Tid.equal w.w_tid tid) mine))
              && List.length mine < max_witnesses_per_dir
            then begin
              let w = { w_idx = idx; w_tid = tid; w_held = held_names } in
              if forward then p.fwd <- p.fwd @ [ w ] else p.bwd <- p.bwd @ [ w ];
              if not p.convicted then
                (* gate suppression: a lock outside the pair held across
                   both witnesses serializes the pattern *)
                let lo, hi = key in
                let gates a b =
                  List.filter
                    (fun l -> l <> lo && l <> hi && List.mem l b.w_held)
                    a.w_held
                in
                match
                  List.find_opt
                    (fun w' ->
                      (not (Tid.equal w'.w_tid tid)) && gates w w' = [])
                    theirs
                with
                | Some w' ->
                  p.convicted <- true;
                  flag := Some key;
                  (* the opposite direction acquired the other lock of the pair *)
                  let dst_theirs = if forward then lo else hi in
                  last_detail := Some (describe w' dst_theirs w lock)
                | None -> ()
            end)
          held_names;
        Hashtbl.replace held tid ((lock, 1) :: hs))
    | Event.Release { tid; lock } ->
      let hs = Option.value ~default:[] (Hashtbl.find_opt held tid) in
      (match List.assoc_opt lock hs with
      | Some d when d > 1 ->
        Hashtbl.replace held tid
          (List.map (fun (l, n) -> if l = lock then (l, d - 1) else (l, n)) hs)
      | Some _ -> Hashtbl.replace held tid (List.remove_assoc lock hs)
      | None -> () (* unmatched release: the linter reports those *))
    | _ -> ()
  in
  { m_name = "lock-reversal"; insts = []; n_fed = 0; interest = lock_events;
    hook = Some hook; finished = false }

(* ---------------------------------------------- built-in: resource leak *)

type rl_lock = {
  mutable depth : int;
  mutable holder : Tid.t option;
  mutable acq_idx : int;
}

let resource_leak () =
  let locks : (string, rl_lock) Hashtbl.t = Hashtbl.create 8 in
  (* per-event atom inputs, set by the hook before progression *)
  let outer_acq = ref None and final_rel = ref None in
  let still_held () =
    Hashtbl.fold
      (fun name lk acc ->
        if lk.depth > 0 then
          Fmt.str "%s (%s, acquired @%d)" name
            (match lk.holder with Some t -> Tid.to_string t | None -> "?")
            lk.acq_idx
          :: acc
        else acc)
      locks []
    |> List.sort compare
  in
  let detail_of () =
    match still_held () with
    | [] -> None
    | held -> Some ("still held at end: " ^ String.concat ", " held)
  in
  let spawn t lock lk =
    let acq = atom (Fmt.str "acquire(%s)" lock) (fun _ -> !outer_acq = Some lock) in
    let rel = atom (Fmt.str "release(%s)" lock) (fun _ -> !final_rel = Some lock) in
    ignore
      (add_instance t
         ~name:(Fmt.str "leak(%s)" lock)
         ~relevant:(fun () -> !outer_acq = Some lock || !final_rel = Some lock)
         ~detail_of
         ~anchor:(fun () ->
           if lk.depth > 0 then Some (lk.acq_idx, lk.holder) else None)
         (always (implies acq (eventually rel))))
  in
  let hook t ev =
    outer_acq := None;
    final_rel := None;
    match ev with
    | Event.Acquire { tid; lock } ->
      let lk =
        match Hashtbl.find_opt locks lock with
        | Some lk -> lk
        | None ->
          let lk = { depth = 0; holder = None; acq_idx = 0 } in
          Hashtbl.add locks lock lk;
          spawn t lock lk;
          lk
      in
      if lk.depth = 0 then begin
        lk.holder <- Some tid;
        lk.acq_idx <- t.n_fed;
        outer_acq := Some lock
      end;
      lk.depth <- lk.depth + 1
    | Event.Release { lock; _ } -> (
      match Hashtbl.find_opt locks lock with
      | Some lk when lk.depth > 0 ->
        lk.depth <- lk.depth - 1;
        if lk.depth = 0 then begin
          lk.holder <- None;
          final_rel := Some lock
        end
      | Some _ | None -> ())
    | _ -> ()
  in
  { m_name = "resource-leak"; insts = []; n_fed = 0; interest = lock_events;
    hook = Some hook; finished = false }

let builtins () = [ lock_reversal (); resource_leak () ]
let builtin_names = [ "lock-reversal"; "resource-leak" ]

(* --------------------------------------------------------------- parser *)

(* formula := or ('->' formula)?          right-assoc implication
   or      := and ('|' and)*
   and     := until ('&' until)*
   until   := unary ('U' until)?
   unary   := ('!'|'X'|'F'|'G') unary | 'within' INT unary | primary
   primary := '(' formula ')' | 'true' | 'false' | atom
   atom    := KIND '(' raw ')' | 'commit' | 'any'                       *)

type token = Sym of char | Arrow | Word of string | Int of int

exception Parse of string

let lex s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let word_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '.'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c = '(' || c = ')' || c = '!' || c = '&' || c = '|' then begin
      toks := Sym c :: !toks;
      incr i
    end
    else if c = '-' && !i + 1 < n && s.[!i + 1] = '>' then begin
      toks := Arrow :: !toks;
      i := !i + 2
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      toks := Int (int_of_string (String.sub s !i (!j - !i))) :: !toks;
      i := !j
    end
    else if word_char c then begin
      let j = ref !i in
      while !j < n && word_char s.[!j] do incr j done;
      toks := Word (String.sub s !i (!j - !i)) :: !toks;
      i := !j
    end
    else raise (Parse (Fmt.str "unexpected character %C" c))
  done;
  List.rev !toks

let event_atom kind arg =
  let open Event in
  match kind with
  | "call" -> atom (Fmt.str "call(%s)" arg) (function
      | Call { mid; _ } -> mid = arg
      | _ -> false)
  | "return" -> atom (Fmt.str "return(%s)" arg) (function
      | Return { mid; _ } -> mid = arg
      | _ -> false)
  | "acquire" -> atom (Fmt.str "acquire(%s)" arg) (function
      | Acquire { lock; _ } -> lock = arg
      | _ -> false)
  | "release" -> atom (Fmt.str "release(%s)" arg) (function
      | Release { lock; _ } -> lock = arg
      | _ -> false)
  | "read" -> atom (Fmt.str "read(%s)" arg) (function
      | Read { var; _ } -> var = arg
      | _ -> false)
  | "write" -> atom (Fmt.str "write(%s)" arg) (function
      | Write { var; _ } -> var = arg
      | _ -> false)
  | k -> raise (Parse (Fmt.str "unknown atom kind %S" k))

let atom_kinds = [ "call"; "return"; "acquire"; "release"; "read"; "write" ]

let parse spec =
  let toks = ref [] in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: r -> toks := r in
  let expect sym what =
    match peek () with
    | Some (Sym c) when c = sym -> advance ()
    | _ -> raise (Parse ("expected " ^ what))
  in
  let rec formula () =
    let a = disj () in
    match peek () with
    | Some Arrow ->
      advance ();
      implies a (formula ())
    | _ -> a
  and disj () =
    let a = ref (conj ()) in
    let rec go () =
      match peek () with
      | Some (Sym '|') ->
        advance ();
        a := or_ !a (conj ());
        go ()
      | _ -> ()
    in
    go ();
    !a
  and conj () =
    let a = ref (until_p ()) in
    let rec go () =
      match peek () with
      | Some (Sym '&') ->
        advance ();
        a := and_ !a (until_p ());
        go ()
      | _ -> ()
    in
    go ();
    !a
  and until_p () =
    let a = unary () in
    match peek () with
    | Some (Word ("U" | "until")) ->
      advance ();
      until a (until_p ())
    | _ -> a
  and unary () =
    match peek () with
    | Some (Sym '!') ->
      advance ();
      not_ (unary ())
    | Some (Word ("X" | "next")) ->
      advance ();
      next (unary ())
    | Some (Word ("F" | "eventually")) ->
      advance ();
      eventually (unary ())
    | Some (Word ("G" | "always")) ->
      advance ();
      always (unary ())
    | Some (Word "within") -> (
      advance ();
      match peek () with
      | Some (Int n) ->
        advance ();
        within n (unary ())
      | _ -> raise (Parse "within needs a bound: within N f"))
    | _ -> primary ()
  and primary () =
    match peek () with
    | Some (Sym '(') ->
      advance ();
      let a = formula () in
      expect ')' "')'";
      a
    | Some (Word "true") ->
      advance ();
      tt
    | Some (Word "false") ->
      advance ();
      ff
    | Some (Word "commit") ->
      advance ();
      atom "commit" (function Event.Commit _ -> true | _ -> false)
    | Some (Word "any") ->
      advance ();
      atom "any" (fun _ -> true)
    | Some (Word k) when List.mem k atom_kinds -> (
      advance ();
      expect '(' "'(' after atom kind";
      match peek () with
      | Some (Word arg) -> (
        advance ();
        match peek () with
        | Some (Sym ')') ->
          advance ();
          event_atom k arg
        | _ -> raise (Parse ("unterminated " ^ k ^ "(...) atom")))
      | _ -> raise (Parse (k ^ "(...) needs a name")))
    | Some (Word w) -> raise (Parse (Fmt.str "unknown word %S" w))
    | Some (Int _) -> raise (Parse "unexpected number")
    | Some Arrow | Some (Sym _) -> raise (Parse "unexpected operator")
    | None -> raise (Parse "unexpected end of formula")
  in
  match lex spec with
  | exception Parse msg -> Error msg
  | lexed -> (
    toks := lexed;
    match formula () with
    | f -> if !toks <> [] then Error "trailing tokens after formula" else Ok f
    | exception Parse msg -> Error msg)

let of_spec s =
  match s with
  | "lock-reversal" -> Ok (lock_reversal ())
  | "resource-leak" -> Ok (resource_leak ())
  | spec -> (
    match parse spec with
    | Ok f -> Ok (of_formula ~name:spec f)
    | Error msg -> Error (Fmt.str "--monitor %S: %s" spec msg))

(* -------------------------------------------------- analysis-lane pass *)

let pass ?metrics monitors =
  let pname = "monitor" in
  let fed_events = ref 0 in
  {
    Pass.name = pname;
    feed =
      (fun ev ->
        incr fed_events;
        List.iter (fun m -> feed m ev) monitors);
    finish =
      (fun () ->
        let diags =
          List.concat_map
            (fun m ->
              ignore (finish m);
              List.map
                (fun w ->
                  {
                    Pass.pass = pname;
                    id = name m;
                    severity = `Error;
                    position = w.at;
                    tid = w.tid;
                    text =
                      Fmt.str "%s violated: %s%s" (name m) w.failed
                        (match w.detail with
                        | Some d -> " — " ^ d
                        | None -> "");
                  })
                (violations m))
            monitors
        in
        (match metrics with
        | None -> ()
        | Some reg ->
          let add n v = Metrics.add (Metrics.counter reg n) v in
          add "analysis.monitor_events" !fed_events;
          add "analysis.monitor_violations" (List.length diags);
          List.iter
            (fun m ->
              let nv = List.length (violations m) in
              add (Fmt.str "analysis.monitor.%s.violations" (name m)) nv;
              add
                (match verdict m with
                | Sat -> "analysis.monitor_sat"
                | Viol _ -> "analysis.monitor_viol"
                | Pending -> "analysis.monitor_pending")
                1)
            monitors);
        Pass.summarize ~pass:pname ~events:!fed_events diags);
  }

(* ------------------------------------------------------ schedule search *)

type search_outcome = {
  schedules : int;
  exhausted : bool;
  violation : (string * witness) option;
  schedule : int array option;
}

let first_violation ?max_schedules ?max_steps ?preemption_bound ~monitors
    scenario =
  let found = ref None in
  let current_log = ref (fun () -> None) in
  let make_main () =
    let main, log_of = scenario () in
    current_log := log_of;
    main
  in
  let flagged () =
    match !current_log () with
    | None -> false (* run did not complete (e.g. deadlocked) *)
    | Some log ->
      let ms = monitors () in
      Log.iter (fun ev -> List.iter (fun m -> feed m ev) ms) log;
      List.exists
        (fun m ->
          match finish m with
          | Viol w ->
            if !found = None then found := Some (name m, w);
            true
          | Sat | Pending -> false)
        ms
  in
  let r =
    Vyrd_sched.Explore.explore ?max_schedules ?max_steps ?preemption_bound
      ~flagged
      ~stop:(fun () -> !found <> None)
      make_main
  in
  {
    schedules = r.Vyrd_sched.Explore.schedules;
    exhausted = r.Vyrd_sched.Explore.exhausted;
    violation = !found;
    schedule = r.Vyrd_sched.Explore.first_flagged;
  }
