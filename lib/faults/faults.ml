type kind = Refinement | Deadlock | Benign | Leak

type t = {
  f_name : string;
  f_subject : string;
  f_description : string;
  f_kind : kind;
  f_semantic : bool;
  mutable f_armed : bool;
}

(* Registration happens once per process, at module-initialization time of
   the defining implementations; arming happens in drivers/tests before the
   measured runs.  Concurrent readers only ever load [f_armed], so no lock
   is needed on the hot path. *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let define ?(kind = Refinement) ?(semantic = true) ~name ~subject ~description () =
  if Hashtbl.mem registry name then
    invalid_arg (Printf.sprintf "Faults.define: %S is already registered" name);
  let f =
    { f_name = name; f_subject = subject; f_description = description;
      f_kind = kind; f_semantic = semantic; f_armed = false }
  in
  Hashtbl.replace registry name f;
  f

let name f = f.f_name
let subject f = f.f_subject
let description f = f.f_description
let kind f = f.f_kind
let semantic f = f.f_semantic

let kind_id = function
  | Refinement -> "refinement"
  | Deadlock -> "deadlock"
  | Benign -> "benign"
  | Leak -> "leak"
let enabled f = f.f_armed
let arm f = f.f_armed <- true
let disarm f = f.f_armed <- false
let disarm_all () = Hashtbl.iter (fun _ f -> f.f_armed <- false) registry

let with_armed f fn =
  let prev = f.f_armed in
  f.f_armed <- true;
  Fun.protect ~finally:(fun () -> f.f_armed <- prev) fn

let registered () =
  Hashtbl.fold (fun _ f acc -> f :: acc) registry []
  |> List.sort (fun a b -> compare a.f_name b.f_name)

let armed () = List.filter (fun f -> f.f_armed) (registered ())
let find name = Hashtbl.find registry name
