(** Registry of seeded refinement-violation mutants.

    A fault is a named, independently-switchable bug deliberately left in a
    subject implementation — a lost update, a misplaced commit action, a
    skipped write-back — guarded at its injection site by {!enabled}.  The
    registry exists to validate the checker itself: a monitor that silently
    passes broken implementations is worse than none, so {e every} registered
    fault must be provably detectable (see [dev/mutants.ml] and
    [test/test_faults.ml]), and the matrix of time-to-detection per
    refinement mode reproduces the shape of the paper's Table 1 with ground
    truth.

    Faults are declared at module-initialization time by the implementation
    that hosts them ([Multiset_vector.fault_lost_update], …) and are all
    disarmed by default: the production path pays exactly one immutable-field
    load and branch per injection site.  Arming is test-harness business —
    nothing in the library arms a fault on its own. *)

type t

(** What arming the fault breaks — which detectors are {e expected} to fire:

    - [Refinement]: a refinement violation ([`View]-mode detection required,
      the original five mutants);
    - [Deadlock]: a lock-order inversion — {!Vyrd_analysis.Lockgraph} must
      flag it from one healthy [`Full] trace, and some schedules genuinely
      deadlock ({!Vyrd_sched.Explore} can find them);
    - [Benign]: a gate-protected inversion — armed runs stay correct and
      {e no} detector may fire (the false-positive pin);
    - [Leak]: a lock acquired and never released — the resource-leak
      temporal monitor must convict at stream end (armed runs still
      complete: our mutexes are reentrant and only the leaking thread
      touches the stray lock), while refinement stays clean. *)
type kind = Refinement | Deadlock | Benign | Leak

(** [define ~name ~subject ~description] declares a fault and registers it.

    [name] is the stable identifier (["multiset_vector.lost_update"]);
    [subject] names the {!Vyrd_harness.Subjects.t} entry whose workload
    exercises the injection site; [description] says what the seeded bug
    does; [kind] (default [Refinement]) says which detectors must catch it.
    [semantic] (default [true]) says the bug corrupts return values on the
    harness workloads, so an annotation-free oracle over calls and returns
    (the linearizability backend) must convict it; pass [~semantic:false]
    when no call/return oracle can — either because the implementation
    behavior is correct and only the annotation layer is wrong (a misplaced
    commit, a dropped commit block), or because the corruption stays inside
    the structure's internal state and never reaches a return value on the
    swept workloads (a transiently torn split that view-mode refinement
    sees at the commit but I/O-mode refinement itself never fires on).
    @raise Invalid_argument if [name] is already registered. *)
val define :
  ?kind:kind -> ?semantic:bool -> name:string -> subject:string ->
  description:string -> unit -> t

val kind : t -> kind

(** Whether the armed bug is visible in the call/return history alone on
    the harness workloads. *)
val semantic : t -> bool

(** Stable identifier: ["refinement"], ["deadlock"], ["benign"], ["leak"]. *)
val kind_id : kind -> string

val name : t -> string
val subject : t -> string
val description : t -> string

(** [enabled f] — the injection-site guard.  A single field read: false for
    every fault unless a driver armed it, so disabled faults cost nothing
    measurable on production paths. *)
val enabled : t -> bool

val arm : t -> unit
val disarm : t -> unit

(** Disarm every registered fault (test setup/teardown). *)
val disarm_all : unit -> unit

(** [with_armed f fn] runs [fn] with [f] armed, restoring [f]'s previous
    state afterwards (also on exceptions). *)
val with_armed : t -> (unit -> 'a) -> 'a

(** Currently armed faults. *)
val armed : unit -> t list

(** All registered faults, sorted by name. *)
val registered : unit -> t list

(** @raise Not_found for unknown names. *)
val find : string -> t
