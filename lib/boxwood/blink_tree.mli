(** Boxwood's B-link tree (paper §7.2.3–7.2.5, Fig. 9; algorithm after
    Sagiv [12]).

    A concurrent ordered map from integer keys to integer values.  All
    operations use lock coupling and recover from concurrent splits by
    moving right along sibling links; inserts split full nodes bottom-up,
    with separator insertion into ancestors as post-commit restructuring
    that never changes the abstract contents (the W(p) W(q) pattern of §8
    that defeats reduction-based atomicity checkers).  A compression thread
    concurrently merges underfull leaves into their right siblings and
    unlinks dead entries from parents — internal executions whose
    specification transition is the identity (§7.2.3).

    Commit points follow Fig. 9: each mutator execution performs exactly one
    committed node write — the overwrite of an existing pair (commit point
    1), the in-place leaf insert (2), the halved-leaf write of a split
    (3/4 — root splits included), or the pair-removing leaf write of a
    delete.

    The injectable bug is Table 1's "allowing duplicated data nodes": the
    insert path skips the key-presence check, so re-inserting an existing
    key creates a second data entry; view refinement reports it at that very
    commit. *)

type bug = Duplicate_data_nodes

type t

(** [create ?bugs ?order store ctx] builds an empty tree.  [order] is the
    maximal number of pairs per leaf and separators per internal node
    (default 4). *)
val create : ?bugs:bug list -> ?order:int -> Bnode.store -> Vyrd.Instrument.ctx -> t

val insert : t -> int -> int -> unit
val delete : t -> int -> bool
val lookup : t -> int -> int option

(** One compression step: merges one underfull leaf into its right sibling,
    or unlinks one dead child from its parent, or does nothing — in every
    case a single internal execution with one commit action. *)
val compress : t -> unit

(** [viewdef] — the bag of (key, value) pairs on the live leaf chain,
    walked from the logged root pointer. *)
val viewdef : Vyrd.View.t

(** The ordered-map specification. *)
val spec : Vyrd.Spec.t

(** Pairs currently reachable, straight from memory (post-run assertions). *)
val unsafe_contents : t -> (int * int) list

(** Tree height (root level + 1), for structural tests. *)
val unsafe_height : t -> int

(** Seeded mutant ({!Vyrd_faults.Faults}): when armed, the leaf split
    commits the halved leaf before the new sibling node is written, so the
    moved pairs (and the chain beyond them) momentarily vanish — a torn
    split that view refinement reports at the split's own commit. *)
val fault_torn_split : Vyrd_faults.Faults.t
