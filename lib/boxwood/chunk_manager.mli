(** Boxwood's Chunk Manager (paper §7.2, Fig. 10).

    The stable-storage substrate: every shared variable is a byte array
    identified by a unique handle, with a version number incremented on each
    write.  The paper assumes this module correct and verifies the layers
    above it; accordingly it is coarse-locked and simple.

    Writes are logged as single whole-buffer events (the paper's
    coarse-grained logging, §6.2) under the variable name ["chunk[h]"]. *)

type t

(** [create ~chunks ctx] pre-allocates handles [0 .. chunks-1], all holding
    the empty byte array. *)
val create : chunks:int -> Vyrd.Instrument.ctx -> t

val handles : t -> int

(** The module's coarse lock (instrumented: acquisitions show up in [`Full]
    logs as ["chunkmgr"]).  Exposed so the seeded lock-order mutants in
    {!Cache} can acquire it in the inverted order. *)
val lock : t -> Vyrd_sched.Sched.mutex

(** [read t h] returns a copy of the chunk's current contents. *)
val read : t -> int -> string

(** [write t h data] replaces the contents and bumps the version. *)
val write : t -> int -> string -> unit

val version : t -> int -> int

(** Variable name used in the log for handle [h]. *)
val var : int -> string
