open Vyrd
module Sched = Vyrd_sched.Sched
module Cell = Instrument.Cell
module Faults = Vyrd_faults.Faults

(* Seeded mutant (lib/faults): the leaf split commits the halved leaf —
   whose right link already points at the new sibling — BEFORE the sibling
   node is written.  Between the two writes the right half of the leaf (and
   everything reachable through the old right link) is unreachable: a torn
   split.  The replayed view at the split's commit is missing those pairs,
   so view refinement fires at the very first split. *)
(* ~semantic:false: the torn window is transient (the sibling write lands
   right after the yield), so the lost pairs only corrupt returns for a
   reader racing inside that window.  On the harness workloads no swept
   seed produces such a read — I/O-mode refinement, with full commit
   annotations, fires on 0 of 60 seeds at ops/thread 25..225 — so no
   call/return oracle (including the lin backend) can convict it; only
   view-mode refinement sees the abstract-state divergence at the commit. *)
let fault_torn_split =
  Faults.define ~name:"blink_tree.torn_split" ~subject:"BLinkTree"
    ~semantic:false
    ~description:
      "leaf split publishes the halved leaf before writing the new sibling; \
       readers between the two writes lose the moved pairs and the chain \
       beyond them"
    ()

type bug = Duplicate_data_nodes

type t = {
  ctx : Instrument.ctx;
  store : Bnode.store;
  order : int;
  root : int Cell.t;
  root_meta : Sched.mutex;  (* serializes root replacement *)
  locks : (int, Sched.mutex) Hashtbl.t;
  bugs : bug list;
}

let lock_of t h =
  Sched.atomic t.ctx.Instrument.sched (fun () ->
      match Hashtbl.find_opt t.locks h with
      | Some m -> m
      | None ->
        let m = t.ctx.Instrument.sched.Sched.new_mutex ~name:(Printf.sprintf "node%d" h) () in
        Hashtbl.replace t.locks h m;
        m)

let lock t h = (lock_of t h).Sched.lock ()
let unlock t h = (lock_of t h).Sched.unlock ()

let create ?(bugs = []) ?(order = 4) store ctx =
  if order < 2 then invalid_arg "Blink_tree.create: order must be at least 2";
  let rh = store.Bnode.alloc () in
  (* make the initial root visible to the replayer *)
  store.Bnode.write_node rh Bnode.empty_leaf;
  let t =
    {
      ctx;
      store;
      order;
      root = Cell.make ctx ~name:"tree.root" ~repr:(fun h -> Repr.Int h) rh;
      root_meta = ctx.Instrument.sched.Sched.new_mutex ~name:"root_meta" ();
      locks = Hashtbl.create 64;
      bugs;
    }
  in
  Cell.poke t.root rh;
  t

(* Move right from the locked node [(h, n)] until it is live and covers
   [key]; returns the new locked position. *)
let rec move_right t key (h, n) =
  let continue_right =
    n.Bnode.dead || (key >= n.Bnode.high && n.Bnode.right <> None)
  in
  if not continue_right then (h, n)
  else
    match n.Bnode.right with
    | None ->
      (* a dead node always has a right sibling (it was merged into it) *)
      assert false
    | Some rh ->
      lock t rh;
      unlock t h;
      move_right t key (rh, t.store.Bnode.read_node rh)

(* Child handle covering [key] in internal node [n]: first separator greater
   than [key] selects the child to its left. *)
let pick_child n key =
  let rec go keys children =
    match (keys, children) with
    | [], [ c ] -> c
    | s :: ks, c :: cs -> if key < s then c else go ks cs
    | _ ->
      invalid_arg
        (Printf.sprintf "malformed internal node: %d separators, %d children"
           (List.length n.Bnode.keys)
           (List.length n.Bnode.children))
  in
  go n.Bnode.keys n.Bnode.children

(* Lock-coupled descent to the leaf covering [key], accumulating the handles
   of the internal nodes passed through (deepest first). *)
let rec descend_to_leaf t key ~stack (h, n) =
  let h, n = move_right t key (h, n) in
  if Bnode.leaf n then (h, n, stack)
  else begin
    let ch = pick_child n key in
    lock t ch;
    unlock t h;
    descend_to_leaf t key ~stack:(h :: stack) (ch, t.store.Bnode.read_node ch)
  end

let locked_root t =
  let rid = Cell.get t.root in
  lock t rid;
  (rid, t.store.Bnode.read_node rid)

(* Sorted-insert of a fresh pair at version 1; an existing key gains a
   second entry (used directly only by the duplicate bug / fresh keys). *)
let rec ins_pair k v keys vals vers =
  match (keys, vals, vers) with
  | [], [], [] -> ([ k ], [ v ], [ 1 ])
  | k0 :: ks, v0 :: vs, r0 :: rs ->
    if k < k0 then (k :: keys, v :: vals, 1 :: vers)
    else
      let ks', vs', rs' = ins_pair k v ks vs rs in
      (k0 :: ks', v0 :: vs', r0 :: rs')
  | _ -> assert false

(* Overwrite in place, bumping the pair's version number (§7.2.4). *)
let rec set_val k v keys vals vers =
  match (keys, vals, vers) with
  | k0 :: ks, v0 :: vs, r0 :: rs ->
    if k = k0 then (v :: vs, (r0 + 1) :: rs)
    else
      let vs', rs' = set_val k v ks vs rs in
      (v0 :: vs', r0 :: rs')
  | _ -> assert false

let rec remove_pair k keys vals vers =
  match (keys, vals, vers) with
  | [], [], [] -> None
  | k0 :: ks, v0 :: vs, r0 :: rs ->
    if k = k0 then Some (ks, vs, rs)
    else
      Option.map
        (fun (ks', vs', rs') -> (k0 :: ks', v0 :: vs', r0 :: rs'))
        (remove_pair k ks vs rs)
  | _ -> assert false

let split_at l n =
  let rec go acc i = function
    | rest when i = 0 -> (List.rev acc, rest)
    | x :: rest -> go (x :: acc) (i - 1) rest
    | [] -> (List.rev acc, [])
  in
  go [] n l

(* Insert separator [sep] with new right child [nh] into the internal node
   covering [sep]. *)
let rec ins_sep sep nh keys children =
  match (keys, children) with
  | [], [ c ] -> ([ sep ], [ c; nh ])
  | s :: ks, c :: cs ->
    if sep < s then (sep :: keys, c :: nh :: cs)
    else
      let ks', cs' = ins_sep sep nh ks cs in
      (s :: ks', c :: cs')
  | _ -> assert false

(* Separator insertion after a split of node [expected] at [level - 1]
   (Fig. 9's post-commit restructuring; never changes the view).  [stack]
   holds known ancestors; when it runs dry the split node was the root at
   descent time — either promote a new root or find the parent that has
   appeared since. *)
let rec insert_sep t ~level ~expected sep nh stack =
  match stack with
  | p :: rest ->
    lock t p;
    let p, pn = move_right t sep (p, t.store.Bnode.read_node p) in
    add_sep t ~level ~sep ~nh (p, pn) rest
  | [] ->
    let made_root =
      Sched.with_lock t.root_meta (fun () ->
          if Cell.get t.root = expected then begin
            let nrh = t.store.Bnode.alloc () in
            t.store.Bnode.write_node nrh
              {
                Bnode.level;
                keys = [ sep ];
                vals = [];
                vers = [];
                children = [ expected; nh ];
                high = max_int;
                right = None;
                dead = false;
              };
            Cell.set t.root nrh;
            true
          end
          else false)
    in
    if not made_root then begin
      (* the root moved above us; descend to [level] to find the parent *)
      let rec descend_to_level ~stack (h, n) =
        let h, n = move_right t sep (h, n) in
        if n.Bnode.level = level then (h, n, stack)
        else begin
          assert (n.Bnode.level > level);
          let ch = pick_child n sep in
          lock t ch;
          unlock t h;
          descend_to_level ~stack:(h :: stack) (ch, t.store.Bnode.read_node ch)
        end
      in
      let p, pn, stack' = descend_to_level ~stack:[] (locked_root t) in
      add_sep t ~level ~sep ~nh (p, pn) stack'
    end

and add_sep t ~level:_ ~sep ~nh (p, pn) rest =
  let keys', children' = ins_sep sep nh pn.Bnode.keys pn.Bnode.children in
  if List.length keys' <= t.order then begin
    t.store.Bnode.write_node p { pn with Bnode.keys = keys'; children = children' };
    unlock t p
  end
  else begin
    (* split the internal node, promoting the middle separator *)
    let m = List.length keys' in
    let mid = m / 2 in
    let lk, rest_keys = split_at keys' mid in
    let msep, rk = (List.hd rest_keys, List.tl rest_keys) in
    let lc, rc = split_at children' (mid + 1) in
    let nh2 = t.store.Bnode.alloc () in
    t.store.Bnode.write_node nh2
      {
        Bnode.level = pn.Bnode.level;
        keys = rk;
        vals = [];
        vers = [];
        children = rc;
        high = pn.Bnode.high;
        right = pn.Bnode.right;
        dead = false;
      };
    t.store.Bnode.write_node p
      { pn with Bnode.keys = lk; children = lc; high = msep; right = Some nh2 };
    unlock t p;
    insert_sep t ~level:(pn.Bnode.level + 1) ~expected:p msep nh2 rest
  end

let insert t k v =
  let body () =
    let lh, ln, stack = descend_to_leaf t k ~stack:[] (locked_root t) in
    let buggy = List.mem Duplicate_data_nodes t.bugs in
    if List.mem k ln.Bnode.keys && not buggy then begin
      (* commit point 1: overwrite in place, bumping the version *)
      let vals', vers' = set_val k v ln.Bnode.keys ln.Bnode.vals ln.Bnode.vers in
      t.store.Bnode.write_node_commit lh { ln with Bnode.vals = vals'; vers = vers' };
      unlock t lh
    end
    else begin
      let keys', vals', vers' = ins_pair k v ln.Bnode.keys ln.Bnode.vals ln.Bnode.vers in
      if List.length keys' <= t.order then begin
        (* commit point 2: in-place insert *)
        t.store.Bnode.write_node_commit lh
          { ln with Bnode.keys = keys'; vals = vals'; vers = vers' };
        unlock t lh
      end
      else begin
        (* commit points 3/4: split; the halved-leaf write links the new
           sibling and publishes the new pair *)
        let mid = List.length keys' / 2 in
        let lk, rk = split_at keys' mid in
        let lv, rv = split_at vals' mid in
        let lr, rr = split_at vers' mid in
        let sep = List.hd rk in
        let nh = t.store.Bnode.alloc () in
        let sibling =
          {
            Bnode.level = 0;
            keys = rk;
            vals = rv;
            vers = rr;
            children = [];
            high = ln.Bnode.high;
            right = ln.Bnode.right;
            dead = false;
          }
        in
        let halved =
          { ln with Bnode.keys = lk; vals = lv; vers = lr; high = sep; right = Some nh }
        in
        if Faults.enabled fault_torn_split then begin
          (* seeded mutant: halved leaf first, sibling second *)
          t.store.Bnode.write_node_commit lh halved;
          t.ctx.Instrument.sched.Sched.yield ();
          t.store.Bnode.write_node nh sibling
        end
        else begin
          t.store.Bnode.write_node nh sibling;
          t.store.Bnode.write_node_commit lh halved
        end;
        unlock t lh;
        insert_sep t ~level:1 ~expected:lh sep nh stack
      end
    end;
    Repr.Unit
  in
  ignore (Instrument.op t.ctx "insert" [ Repr.Int k; Repr.Int v ] body)

let delete t k =
  let body () =
    let lh, ln, _stack = descend_to_leaf t k ~stack:[] (locked_root t) in
    let result =
      match remove_pair k ln.Bnode.keys ln.Bnode.vals ln.Bnode.vers with
      | Some (keys', vals', vers') ->
        t.store.Bnode.write_node_commit lh
          { ln with Bnode.keys = keys'; vals = vals'; vers = vers' };
        true
      | None -> false
    in
    unlock t lh;
    Repr.Bool result
  in
  Instrument.op t.ctx "delete" [ Repr.Int k ] body = Repr.Bool true

let lookup t k =
  let body () =
    let lh, ln, _stack = descend_to_leaf t k ~stack:[] (locked_root t) in
    let result =
      let rec find keys vals =
        match (keys, vals) with
        | k0 :: _, v0 :: _ when k0 = k -> Some v0
        | _ :: ks, _ :: vs -> find ks vs
        | _ -> None
      in
      find ln.Bnode.keys ln.Bnode.vals
    in
    unlock t lh;
    match result with Some v -> Repr.Int v | None -> Repr.Unit
  in
  match Instrument.op t.ctx "lookup" [ Repr.Int k ] body with
  | Repr.Int v -> Some v
  | _ -> None

(* --- compression --------------------------------------------------------- *)

let underfull t n = 2 * List.length n.Bnode.keys < t.order

(* Walk the leaf chain; merge the first underfull live leaf into its right
   sibling.  Returns true when a merge was committed. *)
let try_merge t =
  let rec leftmost_leaf (h, n) =
    if Bnode.leaf n then (h, n)
    else begin
      let ch = List.hd n.Bnode.children in
      lock t ch;
      unlock t h;
      leftmost_leaf (ch, t.store.Bnode.read_node ch)
    end
  in
  let rec walk (h, n) =
    match n.Bnode.right with
    | None ->
      unlock t h;
      false
    | Some rh ->
      if (not n.Bnode.dead) && underfull t n then begin
        lock t rh;
        let rn = t.store.Bnode.read_node rh in
        if
          (not rn.Bnode.dead)
          && List.length n.Bnode.keys + List.length rn.Bnode.keys <= t.order
        then begin
          (* both leaves change together: a commit block keeps the replayed
             view from ever seeing the pairs duplicated or dropped *)
          Instrument.with_block t.ctx (fun () ->
              t.store.Bnode.write_node rh
                {
                  rn with
                  Bnode.keys = n.Bnode.keys @ rn.Bnode.keys;
                  vals = n.Bnode.vals @ rn.Bnode.vals;
                  vers = n.Bnode.vers @ rn.Bnode.vers;
                };
              t.store.Bnode.write_node h
                { n with Bnode.keys = []; vals = []; vers = []; dead = true };
              Instrument.commit t.ctx);
          unlock t rh;
          unlock t h;
          true
        end
        else begin
          unlock t h;
          walk (rh, rn)
        end
      end
      else begin
        lock t rh;
        unlock t h;
        walk (rh, t.store.Bnode.read_node rh)
      end
  in
  let root = locked_root t in
  if Bnode.leaf (snd root) then begin
    unlock t (fst root);
    false
  end
  else walk (leftmost_leaf root)

(* Unlink one dead child from its parent.  Removing entry [i] hands its key
   range to entry [i+1], so it is sound only when child [i+1] is the dead
   node's direct chain successor — the sibling that absorbed its pairs.  (A
   split can interpose a new entry between a dead child and its absorber, in
   which case the dead entry must stay: it still routes through its right
   link.)  Returns true when an unlink was committed. *)
let try_unlink t =
  let remove_entry n i =
    let rec drop_nth i = function
      | [] -> []
      | _ :: rest when i = 0 -> rest
      | x :: rest -> x :: drop_nth (i - 1) rest
    in
    {
      n with
      Bnode.keys = drop_nth i n.Bnode.keys;
      children = drop_nth i n.Bnode.children;
    }
  in
  let removable n =
    (* index i with children[i] dead and children[i+1] its absorber *)
    let rec go i = function
      | c :: (next :: _ as rest) ->
        let cn = t.store.Bnode.read_node c in
        if cn.Bnode.dead && cn.Bnode.right = Some next then Some i
        else go (i + 1) rest
      | [ _ ] | [] -> None
    in
    go 0 n.Bnode.children
  in
  (* scan one level: [h] locked, internal *)
  let rec scan_level (h, n) =
    match removable n with
    | Some i ->
      t.store.Bnode.write_node_commit h (remove_entry n i);
      unlock t h;
      true
    | None -> (
      match n.Bnode.right with
      | Some rh ->
        lock t rh;
        unlock t h;
        scan_level (rh, t.store.Bnode.read_node rh)
      | None ->
        unlock t h;
        false)
  in
  (* descend the leftmost spine, trying each internal level *)
  let rec levels (h, n) =
    if Bnode.leaf n then begin
      unlock t h;
      false
    end
    else begin
      let ch = List.hd n.Bnode.children in
      (* remember where the next level starts before scanning this one *)
      lock t ch;
      let cn = t.store.Bnode.read_node ch in
      if scan_level (h, n) then begin
        unlock t ch;
        true
      end
      else levels (ch, cn)
    end
  in
  levels (locked_root t)

let compress t =
  let body () =
    let merged = try_merge t in
    let acted = merged || try_unlink t in
    if not acted then Instrument.commit t.ctx;
    Repr.Unit
  in
  ignore (Instrument.op t.ctx "compress" [] body)

(* --- view ---------------------------------------------------------------- *)

let viewdef : View.t =
  View.Full
    (fun lookup ->
      let node_of h =
        match lookup (Bnode.var h) with
        | Some r -> ( try Some (Bnode.of_repr r) with Repr.Parse_error _ -> None)
        | None -> None
      in
      let pairs = ref [] in
      let visited = Hashtbl.create 32 in
      let rec chain h =
        if not (Hashtbl.mem visited h) then begin
          Hashtbl.replace visited h ();
          match node_of h with
          | None -> ()
          | Some n ->
            if not n.Bnode.dead then begin
              let rec collect keys vals vers =
                match (keys, vals, vers) with
                | [], [], [] -> ()
                | k :: ks, v :: vs, r :: rs ->
                  pairs :=
                    (Repr.Int k, Repr.Pair (Repr.Int v, Repr.Int r)) :: !pairs;
                  collect ks vs rs
                | _ -> ()  (* malformed shadow node: contribute nothing *)
              in
              collect n.Bnode.keys n.Bnode.vals n.Bnode.vers
            end;
            Option.iter chain n.Bnode.right
        end
      in
      let rec leftmost h =
        match node_of h with
        | Some n when not (Bnode.leaf n) -> leftmost (List.hd n.Bnode.children)
        | Some _ | None -> h
      in
      (match lookup "tree.root" with
      | Some (Repr.Int rid) -> chain (leftmost rid)
      | Some _ | None -> ());
      View.canonical_of_assoc !pairs)

(* --- specification ------------------------------------------------------- *)

module IntMap = Map.Make (Int)

module S = struct
  (* key -> (value, version); the version counts overwrites since the key
     was (re-)inserted, mirroring §7.2.4's view *)
  type state = (int * int) IntMap.t

  let name = "blink-tree"
  let init () = IntMap.empty

  let kind = function
    | "insert" | "delete" -> Spec.Mutator
    | "lookup" -> Spec.Observer
    | "compress" -> Spec.Internal
    | m -> invalid_arg ("blink-tree spec: unknown method " ^ m)

  let bad fmt = Printf.ksprintf (fun m -> Error m) fmt

  let apply st ~mid ~args ~ret =
    match (mid, args, ret) with
    | "insert", [ Repr.Int k; Repr.Int v ], Repr.Unit ->
      let ver = match IntMap.find_opt k st with Some (_, r) -> r + 1 | None -> 1 in
      Ok (IntMap.add k (v, ver) st)
    | "delete", [ Repr.Int k ], Repr.Bool true ->
      if IntMap.mem k st then Ok (IntMap.remove k st)
      else bad "delete(%d) returned true but %d is not in the tree" k k
    | "delete", [ Repr.Int k ], Repr.Bool false ->
      if IntMap.mem k st then bad "delete(%d) returned false but %d is in the tree" k k
      else Ok st
    | "compress", [], Repr.Unit -> Ok st
    | mid, _, _ -> bad "no %s transition matches the observed arguments/return" mid

  let observe st ~mid ~args ~ret =
    match (mid, args, ret) with
    | "lookup", [ Repr.Int k ], Repr.Int v ->
      (match IntMap.find_opt k st with Some (v', _) -> v' = v | None -> false)
    | "lookup", [ Repr.Int k ], Repr.Unit -> not (IntMap.mem k st)
    | "delete", [ Repr.Int k ], Repr.Bool false -> not (IntMap.mem k st)
    | "compress", [], Repr.Unit -> true
    | _ -> false

  let view st =
    View.canonical_of_assoc
      (IntMap.fold
         (fun k (v, r) acc -> (Repr.Int k, Repr.Pair (Repr.Int v, Repr.Int r)) :: acc)
         st [])

  let snapshot st = st

  let save st =
    Some
      (Repr.List
         (IntMap.fold
            (fun k (v, r) acc ->
              Repr.Pair (Repr.Int k, Repr.Pair (Repr.Int v, Repr.Int r)) :: acc)
            st []))

  let load = function
    | Repr.List kvs ->
      List.fold_left
        (fun st -> function
          | Repr.Pair (Repr.Int k, Repr.Pair (Repr.Int v, Repr.Int r)) ->
            IntMap.add k (v, r) st
          | v -> invalid_arg ("blink-tree spec: bad saved entry " ^ Repr.to_string v))
        IntMap.empty kvs
    | v -> invalid_arg ("blink-tree spec: bad saved state " ^ Repr.to_string v)
end

let spec : Spec.t = (module S)

(* --- unsafe inspection ---------------------------------------------------- *)

let unsafe_contents t =
  let pairs = ref [] in
  let visited = Hashtbl.create 32 in
  let rec leftmost h =
    let n = t.store.Bnode.read_node h in
    if Bnode.leaf n then h else leftmost (List.hd n.Bnode.children)
  in
  let rec chain h =
    if not (Hashtbl.mem visited h) then begin
      Hashtbl.replace visited h ();
      let n = t.store.Bnode.read_node h in
      if not n.Bnode.dead then
        List.iter2 (fun k v -> pairs := (k, v) :: !pairs) n.Bnode.keys n.Bnode.vals;
      Option.iter chain n.Bnode.right
    end
  in
  chain (leftmost (Cell.peek t.root));
  List.sort compare !pairs

let unsafe_height t =
  (t.store.Bnode.read_node (Cell.peek t.root)).Bnode.level + 1
