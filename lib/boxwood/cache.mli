(** Boxwood's Cache module (paper Fig. 8, §7.2.1–7.2.2).

    The cache sits between clients (the B-link tree) and the
    {!Chunk_manager}, holding per-handle entries that are [`None], [`Clean]
    or [`Dirty].  [write] follows the three paths of Fig. 8 (new entry /
    clean entry / dirty entry), each with its own commit point; [flush]
    writes dirty entries back to the chunk manager and marks them clean;
    [evict] drops an entry, writing it back first only when dirty — a clean
    entry is trusted to match stable storage.

    The injectable bug is exactly §7.2.2: on the dirty-entry path the
    in-place [COPY-TO-CACHE] runs without [LOCK(clean)], so a concurrent
    [flush] can read a half-copied buffer, push the corrupt bytes to the
    chunk manager and mark the entry clean.  The corruption is masked while
    the entry stays cached and surfaces when a clean [evict] drops it — view
    refinement reports it at that commit, and the runtime invariant
    {!invariant_clean_matches_chunk} reports it already at the flush.

    All buffers have the fixed length [buf_size]; [write] pads or truncates
    its argument.  To use the cache as an unverified substrate (for the
    B-link tree), instantiate it on a context whose log has level [`None]:
    scheduling behaviour is preserved while no events are recorded. *)

type bug = Unprotected_dirty_copy

type t

val create :
  ?bugs:bug list -> buf_size:int -> Vyrd.Instrument.ctx -> Chunk_manager.t -> t

(** Fig. 8 WRITE. *)
val write : t -> int -> string -> unit

(** Read-through (no cache fill): cached bytes, else chunk bytes padded to
    [buf_size] (or [""] if never written). *)
val read : t -> int -> string

(** Like {!read}, but a miss installs a clean entry (the usual cache-fill
    discipline).  Still an observer: the entry it installs holds exactly the
    chunk's bytes, so the abstract store — and hence [viewI] — is unchanged
    by the fill. *)
val read_fill : t -> int -> string

(** Fig. 8 FLUSH: write back every dirty entry, mark clean.  Internal
    method — the abstract store is unchanged. *)
val flush : t -> unit

(** Drop handle [h]'s entry (writing back first when dirty).  Internal. *)
val evict : t -> int -> unit

(** [viewdef ~chunks ~buf_size] — abstract store contents: cache entry if
    present, else chunk bytes. *)
val viewdef : chunks:int -> buf_size:int -> Vyrd.View.t

(** Incremental variant of {!viewdef} (§6.4): a write to any
    [cache.*[h]]/[chunk[h]] variable dirties only key [h]. *)
val viewdef_keyed : Vyrd.View.t

(** Paper invariant (i): a clean entry's bytes equal the chunk's bytes. *)
val invariant_clean_matches_chunk : chunks:int -> buf_size:int -> Vyrd.Checker.invariant

(** Specification: the abstract store, a map from handle to bytes. *)
val spec : chunks:int -> Vyrd.Spec.t

(** Seeded mutant ({!Vyrd_faults.Faults}): when armed, [flush] marks dirty
    entries clean without writing them back — the chunk store keeps stale
    bytes that a later clean evict re-exposes.  The clean-matches-chunk
    invariant catches it already at the flush. *)
val fault_stale_writeback : Vyrd_faults.Faults.t

(** Seeded lock-order inversion ([Deadlock] kind): when armed, [flush] takes
    the chunk-manager lock before [LOCK(clean)] — opposite to the read/evict
    paths.  Some schedules deadlock; {!Vyrd_analysis.Lockgraph} flags the
    cycle from a single non-deadlocking [`Full] trace. *)
val fault_lock_order_inversion : Vyrd_faults.Faults.t

(** Gate-protected benign inversion ([Benign] kind): [write] takes
    [gate -> order_a -> order_b] while [flush] takes
    [gate -> order_b -> order_a].  The shared gate makes the ABBA cycle
    unreachable, so armed runs stay correct and no detector may fire. *)
val fault_gated_inversion : Vyrd_faults.Faults.t

(** Seeded unreleased lock ([Leak] kind): when armed, [flush] acquires a
    stray instrumented lock and never releases it.  Runs still complete
    (reentrant mutex, no other path touches it) with correct results; the
    resource-leak temporal monitor must convict at stream end with the
    still-held set. *)
val fault_unreleased_lock : Vyrd_faults.Faults.t
