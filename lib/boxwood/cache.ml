open Vyrd
module Sched = Vyrd_sched.Sched
module Cell = Instrument.Cell
module Faults = Vyrd_faults.Faults

(* Seeded mutant (lib/faults): FLUSH marks dirty entries clean without
   writing them back, so the chunk store silently keeps stale bytes.  The
   corruption is latent — the clean entry still masks the chunk — until an
   evict drops the entry and re-exposes the stale chunk: exactly the paper's
   §7.2.2 scenario of corrupted state sitting in the store long before any
   return value shows it.  The runtime invariant "a clean entry matches the
   chunk manager" (§7.2.1) catches it already at the flush. *)
let fault_stale_writeback =
  Faults.define ~name:"cache.stale_writeback" ~subject:"Cache"
    ~description:
      "flush marks dirty entries clean without writing them back; the chunk \
       store keeps stale bytes that a later evict re-exposes as a stale read"
    ()

(* Seeded lock-order inversion: every other path that touches both locks
   (READ on a missing entry, EVICT of a dirty entry) acquires LOCK(clean)
   and only then the chunk manager's lock; the armed FLUSH wraps its body in
   the chunk-manager lock *first*.  A worker blocked in READ holding "clean"
   and the flush daemon holding "chunkmgr" then deadlock — some schedules
   genuinely hang (Explore finds them), and any single healthy `Full trace
   exhibiting both orders gives Lockgraph its clean->chunkmgr->clean cycle. *)
let fault_lock_order_inversion =
  Faults.define ~kind:Faults.Deadlock ~name:"cache.lock_order_inversion"
    ~subject:"Cache"
    ~description:
      "flush acquires the chunk-manager lock before LOCK(clean), opposite \
       to the read/evict paths; schedules exist that deadlock, and the \
       lock-order graph flags the inversion from one non-deadlocking trace"
    ()

(* Benign counterpart, pinning the analysis' false-positive rate: the same
   ABBA shape on two dedicated locks, but every inverted section runs under
   a common gate lock, so no interleaving can actually deadlock.  Armed runs
   stay correct and no detector may fire — Lockgraph's gate suppression must
   classify the cycle as benign. *)
let fault_gated_inversion =
  Faults.define ~kind:Faults.Benign ~name:"cache.gated_lock_inversion"
    ~subject:"Cache"
    ~description:
      "write takes gate->order_a->order_b while flush takes \
       gate->order_b->order_a; the common gate makes the inversion \
       unreachable, so the lock-order graph must stay silent"
    ()

(* Ground truth for the resource-leak temporal monitor: a lock acquired and
   never released.  Reentrancy keeps later armed flushes from blocking on
   their own abandoned acquisition, and no other path touches [stray], so
   armed runs complete with correct results — only the monitor's
   end-of-stream resolution can see the still-held lock. *)
let fault_unreleased_lock =
  Faults.define ~kind:Faults.Leak ~semantic:false
    ~name:"cache.unreleased_lock" ~subject:"Cache"
    ~description:
      "flush acquires a stray instrumented lock and returns without \
       releasing it; the resource-leak monitor must convict at stream end \
       with the still-held set while refinement stays clean"
    ()

type bug = Unprotected_dirty_copy

type entry_state = Absent | Clean | Dirty

type entry = { state : entry_state Cell.t; data : char Cell.t array }

type t = {
  ctx : Instrument.ctx;
  cm : Chunk_manager.t;
  reclaim : Sched.rwlock;
  clean_lock : Sched.mutex;  (* Fig. 8's LOCK(clean) *)
  (* instrumented locks used only by the armed [fault_gated_inversion] *)
  gate : Sched.mutex;
  order_a : Sched.mutex;
  order_b : Sched.mutex;
  (* instrumented lock used only by the armed [fault_unreleased_lock] *)
  stray : Sched.mutex;
  entries : entry array;
  buf_size : int;
  bugs : bug list;
}

let state_var h = Printf.sprintf "cache.state[%d]" h
let data_var h j = Printf.sprintf "cache.data[%d][%d]" h j

let state_repr = function
  | Absent -> Repr.Str "none"
  | Clean -> Repr.Str "clean"
  | Dirty -> Repr.Str "dirty"

let create ?(bugs = []) ~buf_size ctx cm =
  let entry h =
    {
      state = Cell.make ctx ~name:(state_var h) ~repr:state_repr Absent;
      data =
        Array.init buf_size (fun j ->
            Cell.make ctx ~name:(data_var h j)
              ~repr:(fun c -> Repr.Str (String.make 1 c))
              '\000');
    }
  in
  {
    ctx;
    cm;
    reclaim = ctx.Instrument.sched.Sched.new_rwlock ~name:"reclaim" ();
    clean_lock = Instrument.mutex ctx ~name:"clean";
    gate = Instrument.mutex ctx ~name:"gate";
    order_a = Instrument.mutex ctx ~name:"order_a";
    order_b = Instrument.mutex ctx ~name:"order_b";
    stray = Instrument.mutex ctx ~name:"stray";
    entries = Array.init (Chunk_manager.handles cm) entry;
    buf_size;
    bugs;
  }

let entry t h =
  if h < 0 || h >= Array.length t.entries then
    invalid_arg (Printf.sprintf "cache: no handle %d" h);
  t.entries.(h)

let pad t s =
  let n = String.length s in
  if n = t.buf_size then s
  else if n > t.buf_size then String.sub s 0 t.buf_size
  else s ^ String.make (t.buf_size - n) '\000'

(* Fig. 8's COPY-TO-CACHE: an in-place byte-by-byte copy. *)
let copy_to_cache t e data =
  let data = pad t data in
  Array.iteri (fun j cell -> Cell.set cell data.[j]) e.data

(* Live read of an entry's buffer — deliberately not atomic: a concurrent
   in-place copy yields a torn mix, which is the corruption of §7.2.2. *)
let read_entry e = String.init (Array.length e.data) (fun j -> Cell.get e.data.(j))

let buggy t = List.mem Unprotected_dirty_copy t.bugs

(* Fig. 8 WRITE.  Three commit points: publishing a new entry on the dirty
   list, republishing a clean entry as dirty, and completing the in-place
   copy to an already-dirty entry. *)
let write t h data =
  let body () =
    if Faults.enabled fault_gated_inversion then
      (* gate -> order_a -> order_b; flush does the opposite inner order
         under the same gate, from a different thread *)
      Sched.with_lock t.gate (fun () ->
          Sched.with_lock t.order_a (fun () ->
              Sched.with_lock t.order_b (fun () -> ())));
    t.reclaim.Sched.begin_read ();
    let e = entry t h in
    t.clean_lock.Sched.lock ();
    (match Cell.get e.state with
    | Absent | Clean ->
      Instrument.with_block t.ctx (fun () ->
          copy_to_cache t e data;
          Cell.set_and_commit e.state Dirty);
      t.clean_lock.Sched.unlock ()
    | Dirty ->
      if buggy t then begin
        (* BUG (§7.2.2): the copy to the dirty entry is not protected by
           LOCK(clean); a concurrent FLUSH can interleave. *)
        t.clean_lock.Sched.unlock ();
        Instrument.with_block t.ctx (fun () ->
            copy_to_cache t e data;
            Instrument.commit t.ctx)
      end
      else begin
        Instrument.with_block t.ctx (fun () ->
            copy_to_cache t e data;
            Instrument.commit t.ctx);
        t.clean_lock.Sched.unlock ()
      end);
    t.reclaim.Sched.end_read ();
    Repr.Unit
  in
  ignore (Instrument.op t.ctx "write" [ Repr.Int h; Repr.Str (pad t data) ] body)

let read t h =
  let body () =
    t.reclaim.Sched.begin_read ();
    let e = entry t h in
    let v =
      Sched.with_lock t.clean_lock (fun () ->
          match Cell.get e.state with
          | Absent ->
            let s = Chunk_manager.read t.cm h in
            if s = "" then "" else pad t s
          | Clean | Dirty -> read_entry e)
    in
    t.reclaim.Sched.end_read ();
    Repr.Str v
  in
  match Instrument.op t.ctx "read" [ Repr.Int h ] body with
  | Repr.Str s -> s
  | _ -> assert false

let read_fill t h =
  let body () =
    t.reclaim.Sched.begin_read ();
    let e = entry t h in
    let v =
      Sched.with_lock t.clean_lock (fun () ->
          match Cell.get e.state with
          | Absent ->
            let s = Chunk_manager.read t.cm h in
            if s = "" then ""
            else begin
              (* install a clean entry holding exactly the chunk bytes;
                 view-neutral, so no commit action *)
              let s = pad t s in
              copy_to_cache t e s;
              Cell.set e.state Clean;
              s
            end
          | Clean | Dirty -> read_entry e)
    in
    t.reclaim.Sched.end_read ();
    Repr.Str v
  in
  match Instrument.op t.ctx "read" [ Repr.Int h ] body with
  | Repr.Str s -> s
  | _ -> assert false

(* Fig. 8 FLUSH: one internal execution, one commit; the abstract store is
   unchanged (dirty bytes become chunk bytes but keep masking them). *)
let flush t =
  let body () =
    if Faults.enabled fault_unreleased_lock then
      (* MUTANT: acquire and never release — the unlock is simply missing.
         Each armed flush re-acquires reentrantly, so the run completes;
         the stream just ends with [stray] held. *)
      t.stray.Sched.lock ();
    if Faults.enabled fault_gated_inversion then
      (* gate -> order_b -> order_a: inverted w.r.t. [write], but benign —
         the shared gate serializes the two sections *)
      Sched.with_lock t.gate (fun () ->
          Sched.with_lock t.order_b (fun () ->
              Sched.with_lock t.order_a (fun () -> ())));
    let flush_entries () =
      Sched.with_lock t.clean_lock (fun () ->
          Instrument.with_block t.ctx (fun () ->
              Array.iteri
                (fun h e ->
                  if Cell.get e.state = Dirty then begin
                    if not (Faults.enabled fault_stale_writeback) then
                      Chunk_manager.write t.cm h (read_entry e);
                    Cell.set e.state Clean
                  end)
                t.entries;
              Instrument.commit t.ctx))
    in
    if Faults.enabled fault_lock_order_inversion then
      (* MUTANT: take the chunk-manager lock *before* LOCK(clean) — the
         opposite of every read/evict path.  The nested Chunk_manager.write
         re-acquisition is reentrant, so the armed flush itself is fine; the
         hazard is the inverted order against concurrent readers. *)
      Sched.with_lock (Chunk_manager.lock t.cm) flush_entries
    else flush_entries ();
    Repr.Unit
  in
  ignore (Instrument.op t.ctx "flush" [] body)

let evict t h =
  let body () =
    t.reclaim.Sched.begin_write ();
    let e = entry t h in
    Sched.with_lock t.clean_lock (fun () ->
        match Cell.get e.state with
        | Absent -> Instrument.commit t.ctx
        | Clean ->
          (* trusted to match the chunk — no write-back; with a corrupted
             chunk this commit is where view refinement fires *)
          Cell.set_and_commit e.state Absent
        | Dirty ->
          Instrument.with_block t.ctx (fun () ->
              Chunk_manager.write t.cm h (read_entry e);
              Cell.set e.state Absent;
              Instrument.commit t.ctx));
    t.reclaim.Sched.end_write ();
    Repr.Unit
  in
  ignore (Instrument.op t.ctx "evict" [ Repr.Int h ] body)

(* Views ------------------------------------------------------------------ *)

let lookup_state lookup h =
  match lookup (state_var h) with
  | Some (Repr.Str "clean") -> Clean
  | Some (Repr.Str "dirty") -> Dirty
  | Some _ | None -> Absent

let lookup_entry_bytes lookup ~buf_size h =
  String.init buf_size (fun j ->
      match lookup (data_var h j) with
      | Some (Repr.Str s) when String.length s = 1 -> s.[0]
      | _ -> '\000')

let pad_to n s =
  let l = String.length s in
  if l = 0 then ""
  else if l >= n then String.sub s 0 n
  else s ^ String.make (n - l) '\000'

let lookup_chunk_bytes lookup ~buf_size h =
  match lookup (Chunk_manager.var h) with
  | Some (Repr.Str s) -> pad_to buf_size s
  | Some _ | None -> ""

let abstract_value lookup ~buf_size h =
  match lookup_state lookup h with
  | Clean | Dirty -> lookup_entry_bytes lookup ~buf_size h
  | Absent -> lookup_chunk_bytes lookup ~buf_size h

(* Handles never written map to the empty string and are omitted, so the
   Full and Keyed views and the specification all agree on the canonical
   form: the assoc of written handles only. *)
let viewdef ~chunks ~buf_size : View.t =
  View.Full
    (fun lookup ->
      View.canonical_of_assoc
        (List.filter_map
           (fun h ->
             match abstract_value lookup ~buf_size h with
             | "" -> None
             | v -> Some (Repr.Int h, Repr.Str v))
           (List.init chunks Fun.id)))

(* Keyed view: every cache/chunk variable names its handle between the first
   '[' and the following ']'. *)
let handle_of_var var =
  match String.index_opt var '[' with
  | None -> None
  | Some i -> (
    match String.index_from_opt var i ']' with
    | None -> None
    | Some j -> int_of_string_opt (String.sub var (i + 1) (j - i - 1)))

let viewdef_keyed : View.t =
  View.Keyed
    {
      keys_of_var =
        (fun var ->
          match handle_of_var var with Some h -> [ Repr.Int h ] | None -> []);
      project =
        (fun lookup key ->
          match key with
          | Repr.Int h ->
            (* infer the buffer size from the entry cells present; chunk
               bytes carry their own length *)
            let rec size j =
              if lookup (data_var h j) = None then j else size (j + 1)
            in
            let buf_size = size 0 in
            let v =
              match lookup_state lookup h with
              | Clean | Dirty -> lookup_entry_bytes lookup ~buf_size h
              | Absent -> (
                match lookup (Chunk_manager.var h) with
                | Some (Repr.Str s) ->
                  if s = "" then "" else pad_to (max buf_size (String.length s)) s
                | Some _ | None -> "")
            in
            if v = "" then None else Some (Repr.Str v)
          | _ -> None);
    }

let invariant_clean_matches_chunk ~chunks ~buf_size : Checker.invariant =
  ( "clean cache entry matches chunk manager",
    fun lookup ->
      List.for_all
        (fun h ->
          match lookup_state lookup h with
          | Clean ->
            lookup_entry_bytes lookup ~buf_size h
            = lookup_chunk_bytes lookup ~buf_size h
          | Dirty | Absent -> true)
        (List.init chunks Fun.id) )

(* Specification: the abstract data store. ------------------------------- *)

module IntMap = Map.Make (Int)

let spec ~chunks : Spec.t =
  let module S = struct
    type state = string IntMap.t

    let name = "cache+chunk store"
    let init () = IntMap.empty

    let kind = function
      | "write" -> Spec.Mutator
      | "read" -> Spec.Observer
      | "flush" | "evict" -> Spec.Internal
      | m -> invalid_arg ("cache spec: unknown method " ^ m)

    let bad fmt = Printf.ksprintf (fun m -> Error m) fmt
    let contents st h = match IntMap.find_opt h st with Some s -> s | None -> ""

    let apply st ~mid ~args ~ret =
      match (mid, args, ret) with
      | "write", [ Repr.Int h; Repr.Str d ], Repr.Unit ->
        if h >= 0 && h < chunks then Ok (IntMap.add h d st)
        else bad "write to unknown handle %d" h
      | "flush", [], Repr.Unit -> Ok st
      | "evict", [ Repr.Int _ ], Repr.Unit -> Ok st
      | mid, _, _ -> bad "no %s transition matches the observed arguments/return" mid

    let observe st ~mid ~args ~ret =
      match (mid, args, ret) with
      | "read", [ Repr.Int h ], Repr.Str s -> s = contents st h
      | ("flush" | "evict"), _, Repr.Unit -> true
      | _ -> false

    let view st =
      View.canonical_of_assoc
        (IntMap.fold
           (fun h s acc -> if s = "" then acc else (Repr.Int h, Repr.Str s) :: acc)
           st [])

    let snapshot st = st

    let save st =
      Some
        (Repr.List
           (IntMap.fold (fun h s acc -> Repr.Pair (Repr.Int h, Repr.Str s) :: acc) st []))

    let load = function
      | Repr.List kvs ->
        List.fold_left
          (fun st -> function
            | Repr.Pair (Repr.Int h, Repr.Str s) -> IntMap.add h s st
            | v -> invalid_arg ("cache spec: bad saved entry " ^ Repr.to_string v))
          IntMap.empty kvs
      | v -> invalid_arg ("cache spec: bad saved state " ^ Repr.to_string v)
  end in
  (module S)
