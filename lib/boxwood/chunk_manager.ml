open Vyrd
module Sched = Vyrd_sched.Sched
module Cell = Instrument.Cell

type chunk = { data : string Cell.t; ver : int Cell.t }

type t = { lock : Sched.mutex; chunks : chunk array }

let var h = Printf.sprintf "chunk[%d]" h

let create ~chunks ctx =
  let chunk h =
    {
      data = Cell.make ctx ~name:(var h) ~repr:(fun s -> Repr.Str s) "";
      ver = Cell.make_silent ctx ~name:(Printf.sprintf "chunkver[%d]" h) 0;
    }
  in
  (* an instrumented mutex: acquire/release events reach `Full logs, which
     is what the lock-order-graph analysis consumes *)
  { lock = Instrument.mutex ctx ~name:"chunkmgr"; chunks = Array.init chunks chunk }

let handles t = Array.length t.chunks

let lock t = t.lock

let get t h =
  if h < 0 || h >= handles t then
    invalid_arg (Printf.sprintf "chunk_manager: no handle %d" h);
  t.chunks.(h)

let read t h =
  let c = get t h in
  Sched.with_lock t.lock (fun () -> Cell.get c.data)

let write t h data =
  let c = get t h in
  Sched.with_lock t.lock (fun () ->
      Cell.set c.data data;
      Cell.set c.ver (Cell.get c.ver + 1))

let version t h =
  let c = get t h in
  Sched.with_lock t.lock (fun () -> Cell.get c.ver)
