type 'a t = {
  buf : 'a option array;
  mutable head : int;  (* next pop *)
  mutable tail : int;  (* next push *)
  mutable size : int;
  mutable is_closed : bool;
  mutable high : int;
  mutable stall : int;  (* ns producers spent blocked *)
  mutable dropped : int;  (* pushes after close *)
  lock : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
}

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  {
    buf = Array.make capacity None;
    head = 0;
    tail = 0;
    size = 0;
    is_closed = false;
    high = 0;
    stall = 0;
    dropped = 0;
    lock = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
  }

let capacity t = Array.length t.buf

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let enqueue t x =
  t.buf.(t.tail) <- Some x;
  t.tail <- (t.tail + 1) mod Array.length t.buf;
  t.size <- t.size + 1;
  if t.size > t.high then t.high <- t.size;
  Condition.signal t.not_empty

(* Blocks (holding [lock] released inside [Condition.wait]) until at least
   one slot is free or the ring closes; charges the wait to [stall].  The
   clock is monotonicized ({!Mclock}) so a wall-clock step can never make
   the cumulative stall negative. *)
let await_room t =
  if t.size = Array.length t.buf then begin
    let t0 = Mclock.now_ns () in
    while t.size = Array.length t.buf && not t.is_closed do
      Condition.wait t.not_full t.lock
    done;
    t.stall <- t.stall + (Mclock.now_ns () - t0)
  end

let push t x =
  locked t (fun () ->
      if t.is_closed then t.dropped <- t.dropped + 1
      else begin
        await_room t;
        if t.is_closed then t.dropped <- t.dropped + 1 else enqueue t x
      end)

let push_batch t ?(pos = 0) ?len src =
  let len = match len with Some l -> l | None -> Array.length src - pos in
  if pos < 0 || len < 0 || pos + len > Array.length src then
    invalid_arg "Ring.push_batch: slice out of bounds";
  let i = ref pos in
  let remaining = ref len in
  while !remaining > 0 do
    locked t (fun () ->
        if t.is_closed then begin
          t.dropped <- t.dropped + !remaining;
          remaining := 0
        end
        else begin
          await_room t;
          if t.is_closed then begin
            t.dropped <- t.dropped + !remaining;
            remaining := 0
          end
          else begin
            (* one lock acquisition moves as many elements as fit *)
            let cap = Array.length t.buf in
            let n = min (cap - t.size) !remaining in
            for _ = 1 to n do
              t.buf.(t.tail) <- Some src.(!i);
              t.tail <- (t.tail + 1) mod cap;
              incr i
            done;
            t.size <- t.size + n;
            if t.size > t.high then t.high <- t.size;
            remaining := !remaining - n;
            if n = 1 then Condition.signal t.not_empty
            else Condition.broadcast t.not_empty
          end
        end)
  done

let try_push t x =
  locked t (fun () ->
      if t.is_closed || t.size = Array.length t.buf then false
      else begin
        enqueue t x;
        true
      end)

let pop t =
  locked t (fun () ->
      while t.size = 0 && not t.is_closed do
        Condition.wait t.not_empty t.lock
      done;
      if t.size = 0 then None
      else begin
        let x = t.buf.(t.head) in
        t.buf.(t.head) <- None;
        t.head <- (t.head + 1) mod Array.length t.buf;
        t.size <- t.size - 1;
        Condition.signal t.not_full;
        x
      end)

let pop_batch t dest =
  let max_n = Array.length dest in
  if max_n = 0 then invalid_arg "Ring.pop_batch: empty destination";
  locked t (fun () ->
      while t.size = 0 && not t.is_closed do
        Condition.wait t.not_empty t.lock
      done;
      let cap = Array.length t.buf in
      let n = min t.size max_n in
      for k = 0 to n - 1 do
        dest.(k) <- t.buf.(t.head);
        t.buf.(t.head) <- None;
        t.head <- (t.head + 1) mod cap
      done;
      t.size <- t.size - n;
      if n = 1 then Condition.signal t.not_full
      else if n > 1 then Condition.broadcast t.not_full;
      n)

let close t =
  locked t (fun () ->
      if not t.is_closed then begin
        t.is_closed <- true;
        Condition.broadcast t.not_empty;
        Condition.broadcast t.not_full
      end)

let closed t = locked t (fun () -> t.is_closed)
let length t = locked t (fun () -> t.size)
let high_water t = locked t (fun () -> t.high)
let stall_ns t = locked t (fun () -> t.stall)
let rejected t = locked t (fun () -> t.dropped)
