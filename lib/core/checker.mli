(** The runtime refinement checker (paper §4–§5).

    The checker is an incremental state machine: {!feed} it the events of a
    log in order (offline after the run, or online as they are appended) and
    it maintains the witness interleaving and the specification run.

    Checking logic, in brief:
    - mutator commits are serialized in commit-action order; each commit's
      specification transition is resolved as soon as the method's return
      value is known (the paper's "looking ahead in the execution");
    - observers are validated against every specification state whose commit
      ordinal falls in their call–return window (Fig. 7); an execution of a
      {e mutator} that never reached a commit action performed no transition
      and is validated the same way (exceptional terminations, §1);
    - in [`View] mode, [viewI] is recomputed from the shadow replay at each
      commit (after publishing that thread's commit block) and compared with
      [viewS] of the specification state the transition produces.

    The first violation freezes the checker; statistics record how many
    method executions had been checked — the paper's time-to-detection
    metric.

    [`View] mode presumes the log was recorded at level [`View] (or
    [`Full]): with call/return/commit-only logs the shadow replay would stay
    empty and every mutation would look like a view mismatch, so {!check}
    (and {!Online.start}) reject such logs up front with [Invalid_argument]
    rather than reporting spurious violations. *)

type mode = [ `Io | `View ]

type t

(** A named predicate over the replayed implementation state, checked at
    every commit action — the paper's runtime invariants for Boxwood's cache
    (§7.2.1).  Requires view-level logging but works in either mode. *)
type invariant = string * (View.lookup -> bool)

(** [create ~mode ?view ?invariants spec] builds a checker.
    @param view required when [mode = `View]. *)
val create : ?mode:mode -> ?view:View.t -> ?invariants:invariant list -> Spec.t -> t

(** [require_view_level ~who log] rejects logs recorded below level [`View]
    — the configuration against which view-mode checking can only produce
    spurious mismatches.  [who] prefixes the error message.
    @raise Invalid_argument on [`None]/[`Io]-level logs. *)
val require_view_level : who:string -> Log.t -> unit

(** [feed t ev] processes one event.  Returns the first violation when this
    event triggers it; afterwards the checker ignores further events. *)
val feed : t -> Event.t -> Report.violation option

(** Current report; also usable mid-stream. *)
val report : t -> Report.t

val violation : t -> Report.violation option

(** Methods fully checked so far. *)
val methods_checked : t -> int

(** Key projections performed by a [Keyed] view (ablation instrumentation). *)
val view_projections : t -> int

(** [snapshot t] serializes the checker's complete mid-stream state: the
    commit-order cursor, the retained specification-state window, queued
    commits awaiting their return values, still-open method executions,
    pending observers — an observer whose call straddles the checkpoint
    keeps its full eligible-state window [o_start..o_end] (§4.3), so after
    a restore it is still admitted against {e any} in-window state, exactly
    as in an uninterrupted run — the shadow replay (incl. open commit
    blocks), and the statistics counters.

    Returns [None] when a violation has already been found (a frozen
    checker has nothing to resume) or when the specification's [save]
    declines.  Restoring into a checker created with the same
    [mode]/[view]/[invariants]/spec arguments and feeding the remaining
    suffix yields the same verdict, fail position and statistics as an
    uninterrupted run. *)
val snapshot : t -> Repr.t option

(** [restore t repr] replaces [t]'s state with a snapshot.  [t] must have
    been created with the same arguments as the snapshotting checker.
    @raise Ckpt.Malformed (or [Invalid_argument] from the spec's [load])
    when [repr] is not a usable snapshot; [t] may then be partially
    mutated — discard it and fall back to an older checkpoint or a fresh
    full-replay checker. *)
val restore : t -> Repr.t -> unit

(** [check ?mode ?view log spec] runs a whole log through a fresh checker.
    @raise Invalid_argument when [mode = `View] and [log] was recorded below
    level [`View] — view refinement cannot be checked on such a log. *)
val check :
  ?mode:mode -> ?view:View.t -> ?invariants:invariant list -> Log.t -> Spec.t -> Report.t

(** [check_indexed] is {!check} plus the log index of the event at which the
    violation (if any) was detected — the same index a {!Farm} lane records
    in [sr_fail_index], and the quantity the differential harness compares
    against {!Reference.check_indexed}. *)
val check_indexed :
  ?mode:mode ->
  ?view:View.t ->
  ?invariants:invariant list ->
  Log.t ->
  Spec.t ->
  Report.t * int option
