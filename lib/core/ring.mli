(** Bounded blocking ring buffer with backpressure.

    The hand-off between the instrumented program and a verification domain
    (paper §4.2's separate verification thread).  Unlike {!Squeue}, capacity
    is fixed at creation: a producer that outruns its consumer blocks in
    {!push} until space frees up, so the queue can never grow without limit
    — the memory bound the streaming pipeline depends on.

    Designed for one producer and one consumer (the log lock already
    serializes producers), but safe under any number of each.  Occupancy
    high-water mark and cumulative producer stall time are recorded for the
    metrics layer. *)

type 'a t

(** [create ~capacity ()] allocates a ring holding at most [capacity]
    elements.  @raise Invalid_argument when [capacity <= 0]. *)
val create : capacity:int -> unit -> 'a t

val capacity : 'a t -> int

(** [push t x] enqueues [x], blocking while the ring is full.  After
    {!close}, pushes are dropped silently (counted in {!rejected}) — the
    drain protocol closes the ring only once producers have finished, so a
    late push is a stray event, not data loss worth crashing over. *)
val push : 'a t -> 'a -> unit

(** [try_push t x] never blocks; [false] when the ring was full or closed. *)
val try_push : 'a t -> 'a -> bool

(** [push_batch t src ~pos ~len] enqueues [src.(pos .. pos+len-1)] in order,
    amortizing one lock acquisition over every run of elements that fits in
    the free space — the per-event mutex handshake of {!push} collapses to
    roughly one per [capacity] elements under a keeping-up consumer.  Blocks
    like {!push} while the ring is full; after {!close}, the rest of the
    slice is dropped and counted in {!rejected}.  [pos] defaults to [0],
    [len] to the rest of the array.
    @raise Invalid_argument when the slice is out of bounds. *)
val push_batch : 'a t -> ?pos:int -> ?len:int -> 'a array -> unit

(** [pop t] dequeues, blocking while the ring is empty; [None] once the ring
    is closed {e and} drained. *)
val pop : 'a t -> 'a option

(** [pop_batch t dest] dequeues up to [Array.length dest] elements in one
    lock acquisition, filling [dest.(0 .. n-1)] with [Some x] slots (the
    consumer-side mirror of {!push_batch}).  Blocks while the ring is empty;
    returns [0] only once the ring is closed {e and} drained.  [dest] slots
    beyond [n-1] are left untouched.
    @raise Invalid_argument when [dest] is empty. *)
val pop_batch : 'a t -> 'a option array -> int

(** [close t] ends the stream: blocked producers give up, and consumers see
    [None] after draining the remaining elements.  Idempotent. *)
val close : 'a t -> unit

val closed : 'a t -> bool
val length : 'a t -> int

(** {1 Instrumentation for the metrics layer} *)

(** Highest occupancy ever observed — never exceeds [capacity]. *)
val high_water : 'a t -> int

(** Cumulative nanoseconds producers spent blocked in {!push} /
    {!push_batch}, measured with the monotonicized clock ({!Mclock}) —
    never negative, even across wall-clock steps. *)
val stall_ns : 'a t -> int

(** Pushes dropped because the ring was already closed. *)
val rejected : 'a t -> int
