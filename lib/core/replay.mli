(** Shadow replay of the implementation state (paper §5.1–5.2).

    The verification thread reconstructs the shared variables in
    [supp(viewI)] from logged [Write] events.  Commit blocks make the
    reconstruction match the paper's τ → τ′ transformation: writes performed
    inside an open commit block are buffered and become visible only at that
    thread's commit action (or, if the block commits nothing, at its end),
    so [viewI] computed at {e another} thread's commit never sees a dirty
    half-updated state. *)

type t

exception Ill_formed of string

val create : unit -> t

(** [write t tid var v] records a shared write: applied immediately, or
    buffered if [tid] has an open, not-yet-committed commit block. *)
val write : t -> Vyrd_sched.Tid.t -> string -> Repr.t -> unit

(** @raise Ill_formed on nested commit blocks. *)
val block_begin : t -> Vyrd_sched.Tid.t -> unit

(** Ends [tid]'s commit block, publishing any writes still buffered.
    @raise Ill_formed if no block is open. *)
val block_end : t -> Vyrd_sched.Tid.t -> unit

(** [commit t tid] publishes the buffered writes of [tid]'s open commit
    block, if any; writes after the commit (still inside the block) apply
    immediately.  A no-op for threads without an open block. *)
val commit : t -> Vyrd_sched.Tid.t -> unit

(** Committed (visible) value of a variable. *)
val lookup : t -> string -> Repr.t option

val fold : (string -> Repr.t -> 'a -> 'a) -> t -> 'a -> 'a

(** [take_dirty t] returns the variables whose visible value changed since
    the previous call, and resets the dirty set (incremental views, §6.4). *)
val take_dirty : t -> string list

(** [snapshot t] serializes the whole replay — visible variables {e and}
    open commit blocks with their buffered writes — so a checkpoint taken
    while a thread is mid-commit-block replays identically. *)
val snapshot : t -> Repr.t

(** [restore t repr] replaces [t]'s contents with a snapshot.  All restored
    variables are marked dirty, so the next view recomputation rebuilds any
    incremental projection table from scratch (the checker also resets the
    cached tables themselves).
    @raise Ckpt.Malformed when [repr] is not a replay snapshot. *)
val restore : t -> Repr.t -> unit
