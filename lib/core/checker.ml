module Tid = Vyrd_sched.Tid
module Vec = Vyrd_sched.Vec

type mode = [ `Io | `View ]

type t = {
  c_feed : Event.t -> Report.violation option;
  c_report : unit -> Report.t;
  c_violation : unit -> Report.violation option;
  c_methods : unit -> int;
  c_projections : unit -> int;
  c_snapshot : unit -> Repr.t option;
  c_restore : Repr.t -> unit;
}

(* One committed mutator execution waiting for its specification transition.
   Transitions happen in commit order; [ret] arrives with the method's
   return event. *)
type pending_commit = {
  pc_tid : Tid.t;
  pc_mid : string;
  pc_args : Repr.t list;
  pc_kind : Spec.kind;
  mutable pc_ret : Repr.t option;
  pc_view_i : Repr.t option;  (* viewI snapshot taken at the commit action *)
}

(* An observer whose return value still awaits a matching spec state.
   Eligible state ordinals are [o_start..o_end] (Fig. 7). *)
type pending_observer = {
  o_exec : Report.exec;
  o_start : int;
  o_end : int;
  mutable o_next : int;
}

type open_exec = {
  oe_mid : string;
  oe_args : Repr.t list;
  oe_kind : Spec.kind;
  oe_start : int;  (* commits logged when the call was made *)
  mutable oe_commit : pending_commit option;
}

type invariant = string * (View.lookup -> bool)

let create ?(mode = `Io) ?view ?(invariants = []) (spec : Spec.t) : t =
  let module Sp = (val spec) in
  let view_eval =
    match (mode, view) with
    | `Io, _ -> None
    | `View, Some v -> Some (View.make_eval v)
    | `View, None -> invalid_arg "Checker.create: `View mode requires a view definition"
  in
  (* Specification states are kept only while an observer window may still
     need them: [state_window] holds states [base .. base + length - 1],
     where index i is the state after the first i commits of the witness
     interleaving.  The prefix below every live observer's cursor is pruned
     periodically, so memory stays bounded on long runs. *)
  let state_window : Sp.state Vec.t = Vec.create () in
  let state_base = ref 0 in
  Vec.push state_window (Sp.snapshot (Sp.init ()));
  let state_at i =
    if i < !state_base then
      invalid_arg (Printf.sprintf "checker: state %d already pruned (base %d)" i !state_base)
    else Vec.get state_window (i - !state_base)
  in
  let push_state s = Vec.push state_window s in
  let replay = Replay.create () in
  let open_execs : (Tid.t, open_exec) Hashtbl.t = Hashtbl.create 16 in
  let pending_commits : pending_commit Queue.t = Queue.create () in
  let pending_observers : pending_observer Vec.t = Vec.create () in
  let commits_logged = ref 0 in
  let commits_resolved = ref 0 in
  let events_processed = ref 0 in
  let methods_checked = ref 0 in
  let per_method : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let count_method mid =
    incr methods_checked;
    Hashtbl.replace per_method mid
      (1 + Option.value ~default:0 (Hashtbl.find_opt per_method mid))
  in
  let violation = ref None in
  let fail v = if !violation = None then violation := Some v in
  let exec_of ~tid ~mid ~args ~ret : Report.exec =
    { e_tid = tid; e_mid = mid; e_args = args; e_ret = ret }
  in
  let ill_formed ?event reason = fail (Report.Ill_formed { event; reason }) in

  (* Advance one pending observer as far as current resolution allows;
     true when it reached a verdict and should be dropped. *)
  let step_observer (o : pending_observer) =
    let limit = min !commits_resolved o.o_end in
    let rec go () =
      if o.o_next > o.o_end then begin
        fail (Report.Observer_violation { exec = o.o_exec; window = (o.o_start, o.o_end) });
        true
      end
      else if o.o_next > limit then false (* wait for more resolutions *)
      else begin
        let s = state_at o.o_next in
        let ret = Option.get o.o_exec.e_ret in
        if Sp.observe s ~mid:o.o_exec.e_mid ~args:o.o_exec.e_args ~ret then begin
          count_method o.o_exec.e_mid;
          true
        end
        else begin
          o.o_next <- o.o_next + 1;
          go ()
        end
      end
    in
    go ()
  in
  let prune_states () =
    (* keep from the lowest index any live observer may still test — either
       a pending observer's cursor or the window start of an execution that
       has not returned yet; the current state is always retained *)
    let lowest =
      Vec.fold_left
        (fun acc (o : pending_observer) -> min acc o.o_next)
        !commits_resolved pending_observers
    in
    let lowest =
      Hashtbl.fold (fun _ oe acc -> min acc oe.oe_start) open_execs lowest
    in
    let drop = lowest - !state_base in
    if drop > 1024 then begin
      Vec.drop_prefix state_window drop;
      state_base := lowest
    end
  in
  let advance_observers () =
    let i = ref 0 in
    while !violation = None && !i < Vec.length pending_observers do
      if step_observer (Vec.get pending_observers !i) then
        ignore (Vec.swap_remove pending_observers !i)
      else incr i
    done;
    prune_states ()
  in

  (* Resolve specification transitions for committed executions whose return
     value has arrived, in commit order. *)
  let rec resolve () =
    if !violation = None then
      match Queue.peek_opt pending_commits with
      | Some pc when pc.pc_ret <> None ->
        ignore (Queue.pop pending_commits);
        let ret = Option.get pc.pc_ret in
        let ordinal = !commits_resolved + 1 in
        let cur = state_at !commits_resolved in
        let exec = exec_of ~tid:pc.pc_tid ~mid:pc.pc_mid ~args:pc.pc_args ~ret:(Some ret) in
        (match Sp.apply cur ~mid:pc.pc_mid ~args:pc.pc_args ~ret with
        | Error reason -> fail (Report.Io_violation { exec; commit_ordinal = ordinal; reason })
        | Ok next ->
          push_state (Sp.snapshot next);
          commits_resolved := ordinal;
          (match pc.pc_view_i with
          | Some view_i ->
            let view_s = Sp.view next in
            if not (Repr.equal view_i view_s) then
              fail
                (Report.View_violation { exec; commit_ordinal = ordinal; view_i; view_s })
          | None -> ());
          if !violation = None then begin
            count_method pc.pc_mid;
            advance_observers ();
            resolve ()
          end)
      | Some _ | None -> ()
  in

  let on_call ev tid mid args =
    match Hashtbl.find_opt open_execs tid with
    | Some open_e ->
      ill_formed ~event:ev
        (Printf.sprintf "%s called %s while %s is still executing"
           (Tid.to_string tid) mid open_e.oe_mid)
    | None ->
      (match Sp.kind mid with
      | kind ->
        Hashtbl.replace open_execs tid
          { oe_mid = mid; oe_args = args; oe_kind = kind; oe_start = !commits_logged;
            oe_commit = None }
      | exception Invalid_argument m -> ill_formed ~event:ev m)
  in

  let on_commit ev tid =
    match Hashtbl.find_opt open_execs tid with
    | None ->
      ill_formed ~event:ev
        (Tid.to_string tid ^ " committed outside any method execution")
    | Some oe -> (
      match oe.oe_kind with
      | Spec.Observer ->
        ill_formed ~event:ev
          (Printf.sprintf "observer %s carries a commit annotation" oe.oe_mid)
      | Spec.Mutator | Spec.Internal ->
        if oe.oe_commit <> None then
          ill_formed ~event:ev
            (Printf.sprintf "%s has two commit actions in one execution of %s"
               (Tid.to_string tid) oe.oe_mid)
        else begin
          Replay.commit replay tid;
          let view_i = Option.map (fun ev' -> View.recompute ev' replay) view_eval in
          (match
             List.find_opt
               (fun (_, pred) -> not (pred (Replay.lookup replay)))
               invariants
           with
          | Some (name, _) ->
            fail
              (Report.Invariant_violation
                 {
                   exec =
                     exec_of ~tid ~mid:oe.oe_mid ~args:oe.oe_args ~ret:None;
                   commit_ordinal = !commits_logged + 1;
                   invariant = name;
                 })
          | None -> ());
          incr commits_logged;
          let pc =
            { pc_tid = tid; pc_mid = oe.oe_mid; pc_args = oe.oe_args;
              pc_kind = oe.oe_kind; pc_ret = None; pc_view_i = view_i }
          in
          Queue.push pc pending_commits;
          oe.oe_commit <- Some pc
        end)
  in

  let on_return ev tid mid value =
    match Hashtbl.find_opt open_execs tid with
    | None ->
      ill_formed ~event:ev (Tid.to_string tid ^ " returned from " ^ mid ^ " without a call")
    | Some oe when oe.oe_mid <> mid ->
      ill_formed ~event:ev
        (Printf.sprintf "%s returned from %s while executing %s" (Tid.to_string tid)
           mid oe.oe_mid)
    | Some oe -> (
      Hashtbl.remove open_execs tid;
      let as_observer () =
        let o =
          { o_exec = exec_of ~tid ~mid ~args:oe.oe_args ~ret:(Some value);
            o_start = oe.oe_start;
            o_end = !commits_logged;
            o_next = oe.oe_start }
        in
        if not (step_observer o) then Vec.push pending_observers o
      in
      match (oe.oe_kind, oe.oe_commit) with
      | (Spec.Mutator | Spec.Internal), Some pc ->
        pc.pc_ret <- Some value;
        resolve ()
      | (Spec.Mutator | Spec.Internal), None ->
        (* An execution that never committed performed no transition: it is
           checked like an observer (window semantics).  The specification's
           [observe] rejects return values that would have required a
           mutation, so a genuinely missing commit annotation still
           surfaces as a violation. *)
        as_observer ()
      | Spec.Observer, _ -> as_observer ())
  in

  let feed ev =
    if !violation = None then begin
      incr events_processed;
      (try
         match ev with
         | Event.Call { tid; mid; args } -> on_call ev tid mid args
         | Event.Return { tid; mid; value } -> on_return ev tid mid value
         | Event.Commit { tid } -> on_commit ev tid
         | Event.Write { tid; var; value } -> Replay.write replay tid var value
         | Event.Block_begin { tid } -> Replay.block_begin replay tid
         | Event.Block_end { tid } -> Replay.block_end replay tid
         | Event.Read _ | Event.Acquire _ | Event.Release _ -> ()
       with Replay.Ill_formed reason -> ill_formed ~event:ev reason);
      !violation
    end
    else None
  in
  (* ---------------------------------------------------------- checkpoints

     A snapshot captures everything [feed] consults: the witness cursor
     ([commits_logged]/[commits_resolved]), the retained specification-state
     window with its base ordinal, the commit queue, still-open method
     executions, pending observers (an observer whose call straddles the
     checkpoint keeps its whole [o_start..o_end] window, §4.3), the shadow
     replay including open commit blocks, and the statistics.  The keyed
     view cache is NOT serialized: restore resets it and the replay restore
     marks every variable dirty, so the first recomputation rebuilds it. *)
  let format_tag = "checker/1" in
  let kind_code = function Spec.Mutator -> 0 | Spec.Observer -> 1 | Spec.Internal -> 2 in
  let kind_of_code = function
    | 0 -> Spec.Mutator
    | 1 -> Spec.Observer
    | 2 -> Spec.Internal
    | n -> Ckpt.malformed "checker snapshot: unknown method kind %d" n
  in
  let snapshot () =
    if !violation <> None then None
    else
      match
        List.rev
          (Vec.fold_left
             (fun acc s ->
               match Sp.save s with Some r -> r :: acc | None -> raise_notrace Exit)
             [] state_window)
      with
      | exception Exit -> None (* the specification does not checkpoint *)
      | states ->
        let enc_pc pc =
          Repr.List
            [ Repr.Int pc.pc_tid; Repr.Str pc.pc_mid; Repr.List pc.pc_args;
              Repr.Int (kind_code pc.pc_kind); Ckpt.of_opt pc.pc_ret;
              Ckpt.of_opt pc.pc_view_i ]
        in
        let pcs =
          List.rev (Queue.fold (fun acc pc -> enc_pc pc :: acc) [] pending_commits)
        in
        let oes =
          Hashtbl.fold (fun tid oe acc -> (tid, oe) :: acc) open_execs []
          |> List.sort compare
          |> List.map (fun (tid, oe) ->
                 Repr.List
                   [ Repr.Int tid; Repr.Str oe.oe_mid; Repr.List oe.oe_args;
                     Repr.Int (kind_code oe.oe_kind); Repr.Int oe.oe_start;
                     Repr.Bool (oe.oe_commit <> None) ])
        in
        let obs =
          List.rev
            (Vec.fold_left
               (fun acc (o : pending_observer) ->
                 Repr.List
                   [ Repr.Int o.o_exec.Report.e_tid; Repr.Str o.o_exec.Report.e_mid;
                     Repr.List o.o_exec.Report.e_args;
                     Ckpt.of_opt o.o_exec.Report.e_ret; Repr.Int o.o_start;
                     Repr.Int o.o_end; Repr.Int o.o_next ]
                 :: acc)
               [] pending_observers)
        in
        let pm =
          Hashtbl.fold (fun mid n acc -> (mid, n) :: acc) per_method []
          |> List.sort compare
          |> List.map (fun (mid, n) -> Repr.Pair (Repr.Str mid, Repr.Int n))
        in
        Some
          (Ckpt.tagged format_tag
             (Repr.List
                [ Repr.Int !events_processed; Repr.Int !commits_logged;
                  Repr.Int !commits_resolved; Repr.Int !methods_checked;
                  Repr.List pm; Repr.Int !state_base; Repr.List states;
                  Repr.List pcs; Repr.List oes; Repr.List obs;
                  Replay.snapshot replay ]))
  in
  let restore repr =
    match Ckpt.list (Ckpt.untag format_tag repr) with
    | [ ep; cl; cr; mc; pm; sb; states; pcs; oes; obs; rp ] ->
      (* parse (and validate) everything before mutating, so most malformed
         checkpoints reject without touching the checker *)
      let ep = Ckpt.int ep and cl = Ckpt.int cl and cr = Ckpt.int cr in
      let mc = Ckpt.int mc and sb = Ckpt.int sb in
      let states =
        List.map
          (fun r ->
            match Sp.load r with
            | s -> s
            | exception Invalid_argument m ->
              Ckpt.malformed "checker snapshot: state load: %s" m)
          (Ckpt.list states)
      in
      if ep < 0 || sb < 0 || cr > cl || cr < sb then
        Ckpt.malformed "checker snapshot: inconsistent cursor counters";
      if List.length states <> cr - sb + 1 then
        Ckpt.malformed "checker snapshot: state window of %d states for ordinals %d..%d"
          (List.length states) sb cr;
      let dec_pc r =
        match Ckpt.list r with
        | [ tid; mid; args; kind; ret; view_i ] ->
          { pc_tid = Ckpt.int tid; pc_mid = Ckpt.str mid; pc_args = Ckpt.list args;
            pc_kind = kind_of_code (Ckpt.int kind); pc_ret = Ckpt.opt ret;
            pc_view_i = Ckpt.opt view_i }
        | _ -> Ckpt.malformed "checker snapshot: bad pending commit"
      in
      let pcs = List.map dec_pc (Ckpt.list pcs) in
      (* a pending commit whose return has not arrived belongs to exactly
         one still-open execution of the same thread: re-link the alias *)
      let pc_by_tid = Hashtbl.create 8 in
      List.iter
        (fun pc ->
          if pc.pc_ret = None then begin
            if Hashtbl.mem pc_by_tid pc.pc_tid then
              Ckpt.malformed "checker snapshot: two open commits on %s"
                (Tid.to_string pc.pc_tid);
            Hashtbl.replace pc_by_tid pc.pc_tid pc
          end)
        pcs;
      let dec_oe r =
        match Ckpt.list r with
        | [ tid; mid; args; kind; start; has_commit ] ->
          let tid = Ckpt.int tid in
          let start = Ckpt.int start in
          if start < sb then
            Ckpt.malformed "checker snapshot: execution window start %d below base %d"
              start sb;
          let commit =
            if Ckpt.bool has_commit then (
              match Hashtbl.find_opt pc_by_tid tid with
              | Some pc -> Some pc
              | None ->
                Ckpt.malformed "checker snapshot: open execution on %s has no commit"
                  (Tid.to_string tid))
            else None
          in
          ( tid,
            { oe_mid = Ckpt.str mid; oe_args = Ckpt.list args;
              oe_kind = kind_of_code (Ckpt.int kind); oe_start = start;
              oe_commit = commit } )
        | _ -> Ckpt.malformed "checker snapshot: bad open execution"
      in
      let oes = List.map dec_oe (Ckpt.list oes) in
      let dec_ob r =
        match Ckpt.list r with
        | [ tid; mid; args; ret; start; end_; next ] ->
          let ret =
            match Ckpt.opt ret with
            | Some v -> Some v
            | None -> Ckpt.malformed "checker snapshot: observer without return value"
          in
          let o =
            { o_exec =
                { Report.e_tid = Ckpt.int tid; e_mid = Ckpt.str mid;
                  e_args = Ckpt.list args; e_ret = ret };
              o_start = Ckpt.int start; o_end = Ckpt.int end_;
              o_next = Ckpt.int next }
          in
          if o.o_next < sb || o.o_next < o.o_start || o.o_end > cl then
            Ckpt.malformed "checker snapshot: observer window outside retained states";
          o
        | _ -> Ckpt.malformed "checker snapshot: bad pending observer"
      in
      let obs = List.map dec_ob (Ckpt.list obs) in
      let pm =
        List.map
          (fun r ->
            let m, n = Ckpt.pair r in
            (Ckpt.str m, Ckpt.int n))
          (Ckpt.list pm)
      in
      violation := None;
      events_processed := ep;
      commits_logged := cl;
      commits_resolved := cr;
      methods_checked := mc;
      Hashtbl.reset per_method;
      List.iter (fun (m, n) -> Hashtbl.replace per_method m n) pm;
      state_base := sb;
      Vec.clear state_window;
      List.iter (Vec.push state_window) states;
      Queue.clear pending_commits;
      List.iter (fun pc -> Queue.push pc pending_commits) pcs;
      Hashtbl.reset open_execs;
      List.iter (fun (tid, oe) -> Hashtbl.replace open_execs tid oe) oes;
      Vec.clear pending_observers;
      List.iter (Vec.push pending_observers) obs;
      Replay.restore replay rp;
      Option.iter View.reset view_eval
    | _ -> Ckpt.malformed "checker snapshot: bad payload shape"
  in

  let report () : Report.t =
    let stats : Report.stats =
      { events_processed = !events_processed;
        methods_checked = !methods_checked;
        commits_resolved = !commits_resolved;
        per_method =
          Hashtbl.fold (fun mid n acc -> (mid, n) :: acc) per_method []
          |> List.sort compare;
        queue_high_water = 0 }
    in
    match !violation with
    | Some v -> { outcome = Report.Fail v; stats }
    | None -> { outcome = Report.Pass; stats }
  in
  {
    c_feed = feed;
    c_report = report;
    c_violation = (fun () -> !violation);
    c_methods = (fun () -> !methods_checked);
    c_projections =
      (fun () -> match view_eval with Some e -> View.projections e | None -> 0);
    c_snapshot = snapshot;
    c_restore = restore;
  }

let feed t ev = t.c_feed ev
let report t = t.c_report ()
let violation t = t.c_violation ()
let methods_checked t = t.c_methods ()
let view_projections t = t.c_projections ()
let snapshot t = t.c_snapshot ()
let restore t repr = t.c_restore repr

(* `View mode presumes write events: against a call/return/commit-only log
   the shadow replay stays empty and every mutation would surface as a
   spurious view mismatch.  Fail fast with a configuration error instead. *)
let require_view_level ~who log =
  if not (Log.records_writes log) then
    invalid_arg
      (Printf.sprintf
         "%s: `View mode requires a log recorded at level `View or `Full (this \
          log records at `%s); re-record the run at `View or check in `Io mode"
         who
         (match Log.level log with
         | `None -> "None"
         | `Io -> "Io"
         | `View -> "View"
         | `Full -> "Full"))

let check ?mode ?view ?invariants log spec =
  (match mode with Some `View -> require_view_level ~who:"Checker.check" log | _ -> ());
  let t = create ?mode ?view ?invariants spec in
  Log.iter (fun ev -> ignore (feed t ev)) log;
  report t

let check_indexed ?mode ?view ?invariants log spec =
  (match mode with
  | Some `View -> require_view_level ~who:"Checker.check_indexed" log
  | _ -> ());
  let t = create ?mode ?view ?invariants spec in
  let idx = ref 0 in
  let fail_at = ref None in
  Log.iter
    (fun ev ->
      (match feed t ev with
      | Some _ when !fail_at = None -> fail_at := Some !idx
      | _ -> ());
      incr idx)
    log;
  (report t, !fail_at)
