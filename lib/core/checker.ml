module Tid = Vyrd_sched.Tid
module Vec = Vyrd_sched.Vec

type mode = [ `Io | `View ]

type t = {
  c_feed : Event.t -> Report.violation option;
  c_report : unit -> Report.t;
  c_violation : unit -> Report.violation option;
  c_methods : unit -> int;
  c_projections : unit -> int;
}

(* One committed mutator execution waiting for its specification transition.
   Transitions happen in commit order; [ret] arrives with the method's
   return event. *)
type pending_commit = {
  pc_tid : Tid.t;
  pc_mid : string;
  pc_args : Repr.t list;
  pc_kind : Spec.kind;
  mutable pc_ret : Repr.t option;
  pc_view_i : Repr.t option;  (* viewI snapshot taken at the commit action *)
}

(* An observer whose return value still awaits a matching spec state.
   Eligible state ordinals are [o_start..o_end] (Fig. 7). *)
type pending_observer = {
  o_exec : Report.exec;
  o_start : int;
  o_end : int;
  mutable o_next : int;
}

type open_exec = {
  oe_mid : string;
  oe_args : Repr.t list;
  oe_kind : Spec.kind;
  oe_start : int;  (* commits logged when the call was made *)
  mutable oe_commit : pending_commit option;
}

type invariant = string * (View.lookup -> bool)

let create ?(mode = `Io) ?view ?(invariants = []) (spec : Spec.t) : t =
  let module Sp = (val spec) in
  let view_eval =
    match (mode, view) with
    | `Io, _ -> None
    | `View, Some v -> Some (View.make_eval v)
    | `View, None -> invalid_arg "Checker.create: `View mode requires a view definition"
  in
  (* Specification states are kept only while an observer window may still
     need them: [state_window] holds states [base .. base + length - 1],
     where index i is the state after the first i commits of the witness
     interleaving.  The prefix below every live observer's cursor is pruned
     periodically, so memory stays bounded on long runs. *)
  let state_window : Sp.state Vec.t = Vec.create () in
  let state_base = ref 0 in
  Vec.push state_window (Sp.snapshot (Sp.init ()));
  let state_at i =
    if i < !state_base then
      invalid_arg (Printf.sprintf "checker: state %d already pruned (base %d)" i !state_base)
    else Vec.get state_window (i - !state_base)
  in
  let push_state s = Vec.push state_window s in
  let replay = Replay.create () in
  let open_execs : (Tid.t, open_exec) Hashtbl.t = Hashtbl.create 16 in
  let pending_commits : pending_commit Queue.t = Queue.create () in
  let pending_observers : pending_observer Vec.t = Vec.create () in
  let commits_logged = ref 0 in
  let commits_resolved = ref 0 in
  let events_processed = ref 0 in
  let methods_checked = ref 0 in
  let per_method : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let count_method mid =
    incr methods_checked;
    Hashtbl.replace per_method mid
      (1 + Option.value ~default:0 (Hashtbl.find_opt per_method mid))
  in
  let violation = ref None in
  let fail v = if !violation = None then violation := Some v in
  let exec_of ~tid ~mid ~args ~ret : Report.exec =
    { e_tid = tid; e_mid = mid; e_args = args; e_ret = ret }
  in
  let ill_formed ?event reason = fail (Report.Ill_formed { event; reason }) in

  (* Advance one pending observer as far as current resolution allows;
     true when it reached a verdict and should be dropped. *)
  let step_observer (o : pending_observer) =
    let limit = min !commits_resolved o.o_end in
    let rec go () =
      if o.o_next > o.o_end then begin
        fail (Report.Observer_violation { exec = o.o_exec; window = (o.o_start, o.o_end) });
        true
      end
      else if o.o_next > limit then false (* wait for more resolutions *)
      else begin
        let s = state_at o.o_next in
        let ret = Option.get o.o_exec.e_ret in
        if Sp.observe s ~mid:o.o_exec.e_mid ~args:o.o_exec.e_args ~ret then begin
          count_method o.o_exec.e_mid;
          true
        end
        else begin
          o.o_next <- o.o_next + 1;
          go ()
        end
      end
    in
    go ()
  in
  let prune_states () =
    (* keep from the lowest index any live observer may still test — either
       a pending observer's cursor or the window start of an execution that
       has not returned yet; the current state is always retained *)
    let lowest =
      Vec.fold_left
        (fun acc (o : pending_observer) -> min acc o.o_next)
        !commits_resolved pending_observers
    in
    let lowest =
      Hashtbl.fold (fun _ oe acc -> min acc oe.oe_start) open_execs lowest
    in
    let drop = lowest - !state_base in
    if drop > 1024 then begin
      let keep = Vec.length state_window - drop in
      let kept = Vec.sub_list state_window ~pos:drop ~len:keep in
      Vec.clear state_window;
      List.iter (Vec.push state_window) kept;
      state_base := lowest
    end
  in
  let advance_observers () =
    let i = ref 0 in
    while !violation = None && !i < Vec.length pending_observers do
      if step_observer (Vec.get pending_observers !i) then
        ignore (Vec.swap_remove pending_observers !i)
      else incr i
    done;
    prune_states ()
  in

  (* Resolve specification transitions for committed executions whose return
     value has arrived, in commit order. *)
  let rec resolve () =
    if !violation = None then
      match Queue.peek_opt pending_commits with
      | Some pc when pc.pc_ret <> None ->
        ignore (Queue.pop pending_commits);
        let ret = Option.get pc.pc_ret in
        let ordinal = !commits_resolved + 1 in
        let cur = state_at !commits_resolved in
        let exec = exec_of ~tid:pc.pc_tid ~mid:pc.pc_mid ~args:pc.pc_args ~ret:(Some ret) in
        (match Sp.apply cur ~mid:pc.pc_mid ~args:pc.pc_args ~ret with
        | Error reason -> fail (Report.Io_violation { exec; commit_ordinal = ordinal; reason })
        | Ok next ->
          push_state (Sp.snapshot next);
          commits_resolved := ordinal;
          (match pc.pc_view_i with
          | Some view_i ->
            let view_s = Sp.view next in
            if not (Repr.equal view_i view_s) then
              fail
                (Report.View_violation { exec; commit_ordinal = ordinal; view_i; view_s })
          | None -> ());
          if !violation = None then begin
            count_method pc.pc_mid;
            advance_observers ();
            resolve ()
          end)
      | Some _ | None -> ()
  in

  let on_call ev tid mid args =
    match Hashtbl.find_opt open_execs tid with
    | Some open_e ->
      ill_formed ~event:ev
        (Printf.sprintf "%s called %s while %s is still executing"
           (Tid.to_string tid) mid open_e.oe_mid)
    | None ->
      (match Sp.kind mid with
      | kind ->
        Hashtbl.replace open_execs tid
          { oe_mid = mid; oe_args = args; oe_kind = kind; oe_start = !commits_logged;
            oe_commit = None }
      | exception Invalid_argument m -> ill_formed ~event:ev m)
  in

  let on_commit ev tid =
    match Hashtbl.find_opt open_execs tid with
    | None ->
      ill_formed ~event:ev
        (Tid.to_string tid ^ " committed outside any method execution")
    | Some oe -> (
      match oe.oe_kind with
      | Spec.Observer ->
        ill_formed ~event:ev
          (Printf.sprintf "observer %s carries a commit annotation" oe.oe_mid)
      | Spec.Mutator | Spec.Internal ->
        if oe.oe_commit <> None then
          ill_formed ~event:ev
            (Printf.sprintf "%s has two commit actions in one execution of %s"
               (Tid.to_string tid) oe.oe_mid)
        else begin
          Replay.commit replay tid;
          let view_i = Option.map (fun ev' -> View.recompute ev' replay) view_eval in
          (match
             List.find_opt
               (fun (_, pred) -> not (pred (Replay.lookup replay)))
               invariants
           with
          | Some (name, _) ->
            fail
              (Report.Invariant_violation
                 {
                   exec =
                     exec_of ~tid ~mid:oe.oe_mid ~args:oe.oe_args ~ret:None;
                   commit_ordinal = !commits_logged + 1;
                   invariant = name;
                 })
          | None -> ());
          incr commits_logged;
          let pc =
            { pc_tid = tid; pc_mid = oe.oe_mid; pc_args = oe.oe_args;
              pc_kind = oe.oe_kind; pc_ret = None; pc_view_i = view_i }
          in
          Queue.push pc pending_commits;
          oe.oe_commit <- Some pc
        end)
  in

  let on_return ev tid mid value =
    match Hashtbl.find_opt open_execs tid with
    | None ->
      ill_formed ~event:ev (Tid.to_string tid ^ " returned from " ^ mid ^ " without a call")
    | Some oe when oe.oe_mid <> mid ->
      ill_formed ~event:ev
        (Printf.sprintf "%s returned from %s while executing %s" (Tid.to_string tid)
           mid oe.oe_mid)
    | Some oe -> (
      Hashtbl.remove open_execs tid;
      let as_observer () =
        let o =
          { o_exec = exec_of ~tid ~mid ~args:oe.oe_args ~ret:(Some value);
            o_start = oe.oe_start;
            o_end = !commits_logged;
            o_next = oe.oe_start }
        in
        if not (step_observer o) then Vec.push pending_observers o
      in
      match (oe.oe_kind, oe.oe_commit) with
      | (Spec.Mutator | Spec.Internal), Some pc ->
        pc.pc_ret <- Some value;
        resolve ()
      | (Spec.Mutator | Spec.Internal), None ->
        (* An execution that never committed performed no transition: it is
           checked like an observer (window semantics).  The specification's
           [observe] rejects return values that would have required a
           mutation, so a genuinely missing commit annotation still
           surfaces as a violation. *)
        as_observer ()
      | Spec.Observer, _ -> as_observer ())
  in

  let feed ev =
    if !violation = None then begin
      incr events_processed;
      (try
         match ev with
         | Event.Call { tid; mid; args } -> on_call ev tid mid args
         | Event.Return { tid; mid; value } -> on_return ev tid mid value
         | Event.Commit { tid } -> on_commit ev tid
         | Event.Write { tid; var; value } -> Replay.write replay tid var value
         | Event.Block_begin { tid } -> Replay.block_begin replay tid
         | Event.Block_end { tid } -> Replay.block_end replay tid
         | Event.Read _ | Event.Acquire _ | Event.Release _ -> ()
       with Replay.Ill_formed reason -> ill_formed ~event:ev reason);
      !violation
    end
    else None
  in
  let report () : Report.t =
    let stats : Report.stats =
      { events_processed = !events_processed;
        methods_checked = !methods_checked;
        commits_resolved = !commits_resolved;
        per_method =
          Hashtbl.fold (fun mid n acc -> (mid, n) :: acc) per_method []
          |> List.sort compare;
        queue_high_water = 0 }
    in
    match !violation with
    | Some v -> { outcome = Report.Fail v; stats }
    | None -> { outcome = Report.Pass; stats }
  in
  {
    c_feed = feed;
    c_report = report;
    c_violation = (fun () -> !violation);
    c_methods = (fun () -> !methods_checked);
    c_projections =
      (fun () -> match view_eval with Some e -> View.projections e | None -> 0);
  }

let feed t ev = t.c_feed ev
let report t = t.c_report ()
let violation t = t.c_violation ()
let methods_checked t = t.c_methods ()
let view_projections t = t.c_projections ()

(* `View mode presumes write events: against a call/return/commit-only log
   the shadow replay stays empty and every mutation would surface as a
   spurious view mismatch.  Fail fast with a configuration error instead. *)
let require_view_level ~who log =
  if not (Log.records_writes log) then
    invalid_arg
      (Printf.sprintf
         "%s: `View mode requires a log recorded at level `View or `Full (this \
          log records at `%s); re-record the run at `View or check in `Io mode"
         who
         (match Log.level log with
         | `None -> "None"
         | `Io -> "Io"
         | `View -> "View"
         | `Full -> "Full"))

let check ?mode ?view ?invariants log spec =
  (match mode with Some `View -> require_view_level ~who:"Checker.check" log | _ -> ());
  let t = create ?mode ?view ?invariants spec in
  Log.iter (fun ev -> ignore (feed t ev)) log;
  report t
