type 'impl ops = {
  az_name : string;
  az_create : unit -> 'impl;
  az_copy : 'impl -> 'impl;
  az_kind : string -> Spec.kind;
  az_apply : 'impl -> mid:string -> args:Repr.t list -> ret:Repr.t -> (unit, string) result;
  az_observe : 'impl -> mid:string -> args:Repr.t list -> ret:Repr.t -> bool;
  az_view : 'impl -> Repr.t;
}

let spec (type i) (ops : i ops) : Spec.t =
  let module M = struct
    type state = i

    let name = ops.az_name
    let init () = ops.az_create ()
    let kind = ops.az_kind

    (* [apply] must not destroy the argument state: the checker keeps a
       history of states for observer windows, so we mutate a copy. *)
    let apply state ~mid ~args ~ret =
      let next = ops.az_copy state in
      match ops.az_apply next ~mid ~args ~ret with
      | Ok () -> Ok next
      | Error _ as e -> e

    let observe state ~mid ~args ~ret = ops.az_observe state ~mid ~args ~ret
    let view state = ops.az_view state
    let snapshot state = ops.az_copy state

    (* An atomized imperative structure has no serializer for its internal
       representation; checkpointing degrades to full replay. *)
    let save _ = None
    let load _ = invalid_arg (ops.az_name ^ ": atomized specs do not checkpoint")
  end in
  (module M : Spec.S)
