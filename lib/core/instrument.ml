module Sched = Vyrd_sched.Sched
module Faults = Vyrd_faults.Faults

(* Seeded mutant (lib/faults): commit blocks silently lose their brackets,
   so the replayer publishes each write as it happens and a concurrent
   commit observes half-published state — e.g. one valid bit of an
   insert_pair (Fig. 4).  Detected as a view violation at the intervening
   commit. *)
let fault_dropped_block =
  Faults.define ~semantic:false ~name:"instrument.dropped_block"
    ~subject:"Multiset-Vector"
    ~description:
      "with_block emits no commit-block brackets; multi-write commit blocks \
       replay write-by-write and concurrent commits see half-published state"
    ()

type ctx = { sched : Sched.t; log : Log.t }

let make sched log = { sched; log }
let tid ctx = ctx.sched.Sched.self ()

let call ctx mid args =
  if Log.records_io ctx.log then
    Log.append ctx.log (Event.Call { tid = tid ctx; mid; args })

let return_ ctx mid value =
  if Log.records_io ctx.log then
    Log.append ctx.log (Event.Return { tid = tid ctx; mid; value })

let commit ctx =
  if Log.records_io ctx.log then Log.append ctx.log (Event.Commit { tid = tid ctx })

let block_begin ctx =
  if Log.records_writes ctx.log then
    Log.append ctx.log (Event.Block_begin { tid = tid ctx })

let block_end ctx =
  if Log.records_writes ctx.log then
    Log.append ctx.log (Event.Block_end { tid = tid ctx })

let with_block_brackets ctx f =
  block_begin ctx;
  match f () with
  | v ->
    block_end ctx;
    v
  | exception e ->
    block_end ctx;
    raise e

let with_block ctx f =
  if Faults.enabled fault_dropped_block then f () else with_block_brackets ctx f

let op ctx mid args body =
  call ctx mid args;
  let value = body () in
  return_ ctx mid value;
  value

module Cell = struct
  type 'a t = {
    cell_name : string;
    mutable value : 'a;
    repr : ('a -> Repr.t) option;
    ctx : ctx;
  }

  let make ctx ~name ~repr init = { cell_name = name; value = init; repr = Some repr; ctx }
  let make_silent ctx ~name init = { cell_name = name; value = init; repr = None; ctx }

  let get c =
    c.ctx.sched.Sched.yield ();
    if c.repr <> None && Log.records_reads c.ctx.log then
      Log.append c.ctx.log
        (Event.Read { tid = c.ctx.sched.Sched.self (); var = c.cell_name });
    c.value

  let write_logged c v =
    match c.repr with
    | Some repr when Log.records_writes c.ctx.log ->
      Sched.atomic c.ctx.sched (fun () ->
          c.value <- v;
          Log.append c.ctx.log
            (Event.Write
               { tid = c.ctx.sched.Sched.self (); var = c.cell_name; value = repr v }))
    | Some _ | None -> c.value <- v

  let set c v =
    c.ctx.sched.Sched.yield ();
    write_logged c v

  let set_and_commit c v =
    c.ctx.sched.Sched.yield ();
    Sched.atomic c.ctx.sched (fun () ->
        let tid = c.ctx.sched.Sched.self () in
        (match c.repr with
        | Some repr when Log.records_writes c.ctx.log ->
          c.value <- v;
          Log.append c.ctx.log
            (Event.Write { tid; var = c.cell_name; value = repr v })
        | Some _ | None -> c.value <- v);
        if Log.records_io c.ctx.log then Log.append c.ctx.log (Event.Commit { tid }))

  let peek c = c.value
  let poke c v = write_logged c v
  let name c = c.cell_name
end

let log_write ctx ~var value =
  if Log.records_writes ctx.log then
    Log.append ctx.log (Event.Write { tid = tid ctx; var; value })

let log_write_commit ctx ~var value =
  Sched.atomic ctx.sched (fun () ->
      let tid = tid ctx in
      if Log.records_writes ctx.log then
        Log.append ctx.log (Event.Write { tid; var; value });
      if Log.records_io ctx.log then Log.append ctx.log (Event.Commit { tid }))

let mutex ctx ~name =
  let inner = ctx.sched.Sched.new_mutex ~name () in
  let log_full ev = if Log.records_reads ctx.log then Log.append ctx.log ev in
  {
    inner with
    Sched.lock =
      (fun () ->
        inner.Sched.lock ();
        log_full (Event.Acquire { tid = tid ctx; lock = name }));
    Sched.unlock =
      (fun () ->
        log_full (Event.Release { tid = tid ctx; lock = name });
        inner.Sched.unlock ());
    Sched.try_lock =
      (fun () ->
        let ok = inner.Sched.try_lock () in
        if ok then log_full (Event.Acquire { tid = tid ctx; lock = name });
        ok);
  }
