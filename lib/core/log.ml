module Vec = Vyrd_sched.Vec

type level = [ `None | `Io | `View | `Full ]

type t = {
  lvl : level;
  events : Event.t Vec.t;
  lock : Mutex.t;
  listeners : (Event.t -> unit) Vec.t;
}

let create ?(level = `View) () =
  { lvl = level; events = Vec.create (); lock = Mutex.create (); listeners = Vec.create () }

let level t = t.lvl

let rank = function `None -> 0 | `Io -> 1 | `View -> 2 | `Full -> 3

let required : Event.t -> level = function
  | Event.Call _ | Event.Return _ | Event.Commit _ -> `Io
  | Event.Write _ | Event.Block_begin _ | Event.Block_end _ -> `View
  | Event.Read _ | Event.Acquire _ | Event.Release _ -> `Full

let admits lvl ev = rank lvl >= rank (required ev)
let records_io t = rank t.lvl >= rank `Io
let records_writes t = rank t.lvl >= rank `View
let records_reads t = rank t.lvl >= rank `Full

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let append t ev =
  if admits t.lvl ev then
    locked t (fun () ->
        Vec.push t.events ev;
        Vec.iter (fun f -> f ev) t.listeners)

let length t = locked t (fun () -> Vec.length t.events)
let get t i = locked t (fun () -> Vec.get t.events i)
let events t = locked t (fun () -> Vec.to_list t.events)
let iter f t = List.iter f (events t)
let subscribe t f = locked t (fun () -> Vec.push t.listeners f)

let level_to_string = function
  | `None -> "none"
  | `Io -> "io"
  | `View -> "view"
  | `Full -> "full"

let level_of_string = function
  | "none" -> Some `None
  | "io" -> Some `Io
  | "view" -> Some `View
  | "full" -> Some `Full
  | _ -> None

let header_prefix = "# vyrd-log level="

let to_channel oc t =
  output_string oc header_prefix;
  output_string oc (level_to_string t.lvl);
  output_char oc '\n';
  List.iter
    (fun ev ->
      output_string oc (Event.to_line ev);
      output_char oc '\n')
    (events t)

let to_file path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc t)

let of_events evs =
  let t = create ~level:`Full () in
  List.iter (append t) evs;
  t

(* The header records the level the log was recorded at, so a deserialized
   log keeps its identity — `View-mode checking can then reject an
   `Io-recorded log instead of reporting spurious mismatches.  Headerless
   input (pre-header logs, hand-written event lists) reads at `Full so no
   event is ever dropped; '#' lines are comments either way. *)
let of_channel ic =
  let t = ref None in
  let get_log () =
    match !t with
    | Some log -> log
    | None ->
      let log = create ~level:`Full () in
      t := Some log;
      log
  in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if String.length line > 0 then
         if line.[0] = '#' then begin
           match
             if String.starts_with ~prefix:header_prefix line then
               level_of_string
                 (String.sub line (String.length header_prefix)
                    (String.length line - String.length header_prefix))
             else None
           with
           | Some lvl when !t = None -> t := Some (create ~level:lvl ())
           | Some _ | None -> ()
         end
         else append (get_log ()) (Event.of_line line)
     done
   with End_of_file -> ());
  get_log ()

let of_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)
