module Vec = Vyrd_sched.Vec

type level = [ `None | `Io | `View | `Full ]

type t = {
  lvl : level;
  events : Event.t Vec.t;
  lock : Mutex.t;
  listeners : (Event.t -> unit) Vec.t;
  dropped : int Atomic.t;
}

let create ?(level = `View) () =
  { lvl = level; events = Vec.create (); lock = Mutex.create (); listeners = Vec.create ();
    dropped = Atomic.make 0 }

let level t = t.lvl

let rank = function `None -> 0 | `Io -> 1 | `View -> 2 | `Full -> 3

let required : Event.t -> level = function
  | Event.Call _ | Event.Return _ | Event.Commit _ -> `Io
  | Event.Write _ | Event.Block_begin _ | Event.Block_end _ -> `View
  | Event.Read _ | Event.Acquire _ | Event.Release _ -> `Full

let admits lvl ev = rank lvl >= rank (required ev)
let records_io t = rank t.lvl >= rank `Io
let records_writes t = rank t.lvl >= rank `View
let records_reads t = rank t.lvl >= rank `Full

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let append t ev =
  if admits t.lvl ev then
    locked t (fun () ->
        Vec.push t.events ev;
        Vec.iter (fun f -> f ev) t.listeners)
  else Atomic.incr t.dropped

let length t = locked t (fun () -> Vec.length t.events)
let get t i = locked t (fun () -> Vec.get t.events i)
let dropped t = Atomic.get t.dropped
let events t = locked t (fun () -> Vec.to_list t.events)

let snapshot t =
  locked t (fun () -> Array.init (Vec.length t.events) (Vec.get t.events))

(* Events are append-only, so a traversal can release the lock between
   fixed-size batches: concurrent appends land behind the cursor and are
   picked up by a later batch, and the mutex is never held across user
   code — unlike the old [events]-based [iter], which copied the whole
   vector to a list under the lock on every call. *)
let fold f acc t =
  let chunk = 1024 in
  let rec go acc pos =
    let batch =
      locked t (fun () ->
          let n = Vec.length t.events in
          if pos >= n then []
          else Vec.sub_list t.events ~pos ~len:(min chunk (n - pos)))
    in
    match batch with
    | [] -> acc
    | l -> go (List.fold_left f acc l) (pos + List.length l)
  in
  go acc 0

let iter f t = fold (fun () ev -> f ev) () t
let subscribe t f = locked t (fun () -> Vec.push t.listeners f)

let level_to_string = function
  | `None -> "none"
  | `Io -> "io"
  | `View -> "view"
  | `Full -> "full"

let level_of_string = function
  | "none" -> Some `None
  | "io" -> Some `Io
  | "view" -> Some `View
  | "full" -> Some `Full
  | _ -> None

let header_prefix = "# vyrd-log level="

let to_channel oc t =
  output_string oc header_prefix;
  output_string oc (level_to_string t.lvl);
  output_char oc '\n';
  iter
    (fun ev ->
      output_string oc (Event.to_line ev);
      output_char oc '\n')
    t

let to_file path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc t)

let of_events evs =
  let t = create ~level:`Full () in
  List.iter (append t) evs;
  t

exception Parse_error of { line : int; message : string }

(* The header records the level the log was recorded at, so a deserialized
   log keeps its identity — `View-mode checking can then reject an
   `Io-recorded log instead of reporting spurious mismatches.  Headerless
   input (pre-header logs, hand-written event lists) reads at `Full so no
   event is ever dropped; '#' lines are comments either way. *)
let of_channel ic =
  let t = ref None in
  let get_log () =
    match !t with
    | Some log -> log
    | None ->
      let log = create ~level:`Full () in
      t := Some log;
      log
  in
  let lineno = ref 0 in
  (try
     while true do
       let line = String.trim (input_line ic) in
       incr lineno;
       if String.length line > 0 then
         if line.[0] = '#' then begin
           match
             if String.starts_with ~prefix:header_prefix line then
               level_of_string
                 (String.sub line (String.length header_prefix)
                    (String.length line - String.length header_prefix))
             else None
           with
           | Some lvl when !t = None -> t := Some (create ~level:lvl ())
           | Some _ | None -> ()
         end
         else
           match Event.of_line line with
           | ev -> append (get_log ()) ev
           | exception Repr.Parse_error message ->
             raise (Parse_error { line = !lineno; message })
     done
   with End_of_file -> ());
  get_log ()

let of_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)
