(** Monotonicized wall clock.

    [Unix.gettimeofday] is the only timer the environment provides, and it
    can step backwards (NTP).  [now_ns] clamps it against a process-wide
    high-water mark, so for any two calls [a] then [b] (in any domains),
    [b - a >= 0].  Suitable for cumulative elapsed-time accounting such as
    {!Ring.stall_ns}; not a calendar clock. *)

val now_ns : unit -> int
